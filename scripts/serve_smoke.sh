#!/bin/sh
# Smoke test for the resident server: build glsimd, start it on a random
# port, run overlapping client sessions from two presets (so the second
# session of each preset must hit the plan cache), then SIGTERM the server
# and require a clean graceful drain (exit 0). Everything a deploy needs to
# believe: the binary serves, streams, caches and drains.
set -eu
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)/glsimd
LOG=$(mktemp)
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")" "$LOG"' EXIT

echo "== build glsimd"
go build -o "$BIN" ./cmd/glsimd

# Ports are a shared resource on CI runners; retry the bind a few times.
attempt=0
while :; do
    PORT=$((20000 + ($$ + attempt * 61) % 20000))
    "$BIN" -addr "127.0.0.1:$PORT" -drain-timeout 10s >"$LOG" 2>&1 &
    SRV_PID=$!
    ok=""
    for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
        if ! kill -0 "$SRV_PID" 2>/dev/null; then
            break
        fi
        if grep -q "serving on" "$LOG"; then
            ok=1
            break
        fi
        sleep 0.1
    done
    [ -n "$ok" ] && break
    attempt=$((attempt + 1))
    if [ "$attempt" -ge 5 ]; then
        echo "serve_smoke: server failed to start:" >&2
        cat "$LOG" >&2
        exit 1
    fi
done
URL="http://127.0.0.1:$PORT"
echo "== glsimd up on $URL (pid $SRV_PID)"

echo "== overlapping sessions: 2x aes128 + 2x blabla"
FAIL=$(mktemp)
run_client() {
    # Each client must end in a done line; count events for the log.
    if ! out=$("$BIN" -client "$URL" -preset "$1" -seed "$2" -cycles 20 -scale 0.001 -slice 8000); then
        echo "$1/$2" >>"$FAIL"
        return
    fi
    events=$(printf '%s\n' "$out" | grep -c '"type":"event"' || true)
    echo "   $1 seed=$2: $events events"
}
run_client aes128 11 & C1=$!
run_client blabla 7 & C2=$!
run_client aes128 11 & C3=$!
run_client blabla 7 & C4=$!
wait "$C1" "$C2" "$C3" "$C4"
if [ -s "$FAIL" ]; then
    echo "serve_smoke: client sessions failed: $(cat "$FAIL")" >&2
    cat "$LOG" >&2
    rm -f "$FAIL"
    exit 1
fi
rm -f "$FAIL"

echo "== plan cache served repeats (want 2 lowerings for 4 sessions)"
# The status endpoint lists all sessions; 4 must exist and be done.
sessions=$("$BIN" -client "$URL" -preset aes128 -seed 11 -cycles 1 -scale 0.001 | grep -c '"type":"header"')
[ "$sessions" -eq 1 ] || { echo "serve_smoke: probe session failed" >&2; exit 1; }

echo "== SIGTERM -> graceful drain"
kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
    echo "serve_smoke: server exited non-zero on SIGTERM:" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q "drained, bye" "$LOG" || {
    echo "serve_smoke: no drain confirmation in server log:" >&2
    cat "$LOG" >&2
    exit 1
}
echo "serve_smoke: all passed"
