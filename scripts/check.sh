#!/bin/sh
# Repository check gate: build, vet, formatting, full tests, a short-mode
# race pass over the concurrent packages, the glsimd end-to-end smoke, and
# fuzz smoke stages for the script replayer and the parsers.
# The sim race run includes the cross-mode equivalence test (serial/
# parallel/manycore on one stimulus trace), so the pooled executor is raced
# against the serial oracle on every check. It also covers the fault tests
# (contained panics, degradation, cancellation), so the failure ladder is
# raced on every check too. The serve race run includes the chaos test
# (concurrent sessions over shared plans with injected gate faults), so
# session isolation and snapshot recovery are raced on every check. The
# fuzz stage gives each parser a few seconds of coverage-guided input;
# `make fuzz` runs the same targets longer.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test"
go test ./...

echo "== go test -race (short, concurrent packages)"
go test -race -short ./internal/sim/ ./internal/partsim/ ./internal/workpool/ ./internal/obs/ ./internal/serve/

echo "== glsimd serve smoke"
./scripts/serve_smoke.sh

echo "== script replay fuzz smoke (5s)"
go test -run '^$' -fuzz FuzzScriptComb1Segment -fuzztime 5s ./internal/sim/

echo "== frontier differential fuzz smoke (5s)"
go test -run '^$' -fuzz FuzzFrontier -fuzztime 5s ./internal/sim/

echo "== lane kernel differential fuzz smoke (5s)"
go test -run '^$' -fuzz FuzzLaneKernel -fuzztime 5s ./internal/sim/

echo "== parser fuzz smoke (5s per parser)"
go test -run '^$' -fuzz FuzzParseLiberty -fuzztime 5s ./internal/liberty/
go test -run '^$' -fuzz FuzzParseVerilog'$' -fuzztime 5s ./internal/netlist/
go test -run '^$' -fuzz FuzzParseVerilogHierarchy -fuzztime 5s ./internal/netlist/
go test -run '^$' -fuzz FuzzParseSDF -fuzztime 5s ./internal/sdf/
go test -run '^$' -fuzz FuzzParseVCD -fuzztime 5s ./internal/vcd/

echo "check: all passed"
