#!/bin/sh
# Repository check gate: build, vet, formatting, full tests, and a
# short-mode race pass over the concurrent packages. The sim race run
# includes the cross-mode equivalence test (serial/parallel/manycore on one
# stimulus trace), so the pooled executor is raced against the serial oracle
# on every check.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test"
go test ./...

echo "== go test -race (short, concurrent packages)"
go test -race -short ./internal/sim/ ./internal/partsim/ ./internal/workpool/

echo "check: all passed"
