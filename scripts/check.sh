#!/bin/sh
# Repository check gate: build, vet, formatting, full tests, and a
# short-mode race pass over the two concurrent simulators.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test"
go test ./...

echo "== go test -race (short, concurrent simulators)"
go test -race -short ./internal/sim/ ./internal/partsim/

echo "check: all passed"
