#!/bin/sh
# Regression gate over the bench-smoke report: re-run the Figure 8 smoke
# benchmark with the same recipe `make bench-smoke` uses and compare it
# against the committed baseline, failing on >10% runtime regressions
# (per-sample *_ns fields and the per-phase wall-time breakdown).
#
# Usage: scripts/bench_compare.sh [baseline.json [candidate.json]]
# With no candidate given, a fresh one is produced into a temp file.
set -eu
cd "$(dirname "$0")/.."

base=${1:-BENCH_smoke.json}
cand=${2:-}

if [ ! -f "$base" ]; then
    echo "bench_compare: baseline $base not found (run 'make bench-smoke' first)" >&2
    exit 2
fi

if [ -z "$cand" ]; then
    cand=$(mktemp "${TMPDIR:-/tmp}/bench_smoke.XXXXXX.json")
    trap 'rm -f "$cand"' EXIT
    echo "== bench-smoke candidate run"
    go run ./cmd/experiments -fig8 -scale 0.005 -cycles 60 -threadlist 1,2,4 -json "$cand"
fi

echo "== benchcmp $base -> $cand"
go run ./cmd/benchcmp "$base" "$cand"
