// Package gatesim is a general-purpose gate-level simulator with
// partition-agnostic parallelism — a from-scratch Go reproduction of
// Guo et al., "General-Purpose Gate-Level Simulation with Partition-Agnostic
// Parallelism" (DAC 2023).
//
// The library lives under internal/: see internal/sim for the stable-time
// engine (the paper's core contribution), internal/truthtab for the
// bitmask-DP library compiler, internal/refsim and internal/partsim for the
// sequential and partition-based baselines, and internal/gen plus
// internal/harness for the benchmark suite and the experiment drivers.
// The binaries under cmd/ expose the complete flow; the benchmarks in this
// package regenerate every table and figure of the paper's evaluation
// (see EXPERIMENTS.md).
package gatesim
