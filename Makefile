.PHONY: check build test bench bench-smoke bench-compare serve-smoke fmt fuzz

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench . -benchtime 1x ./...

# One cheap pass over the Figure 8 scalability rows (the parallel ones that
# exercise the persistent worker pool), then the machine-readable report:
# BENCH_smoke.json records runtimes plus the engine's scheduling counters
# (pool_spawned staying at the worker count across rows is the no-churn
# invariant). -lanes 8 adds one multi-stimulus lane point (an 8-lane run vs
# 8 sequential scalar runs) under the report's "lane" field.
bench-smoke:
	go test -run '^$$' -bench BenchmarkFig8 -benchtime 1x .
	go run ./cmd/experiments -fig8 -scale 0.005 -cycles 60 -threadlist 1,2,4 -lanes 8 -json BENCH_smoke.json

# Re-run the smoke benchmark and diff it against the committed
# BENCH_smoke.json, failing on >10% runtime regressions (see
# scripts/bench_compare.sh and cmd/benchcmp).
bench-compare:
	./scripts/bench_compare.sh

# End-to-end smoke of the resident server: build glsimd, serve, run
# overlapping client sessions from two presets, SIGTERM, require a clean
# drain (see scripts/serve_smoke.sh). check.sh runs this too.
serve-smoke:
	./scripts/serve_smoke.sh

fmt:
	gofmt -w .

# Longer coverage-guided runs of the parser and engine-differential fuzz
# targets (check.sh runs the same targets for 5s each as a smoke stage).
# Crashers are written to the package's testdata/fuzz/ directory and replay
# as regular tests.
FUZZTIME ?= 60s
fuzz:
	go test -run '^$$' -fuzz FuzzScriptComb1Segment -fuzztime $(FUZZTIME) ./internal/sim/
	go test -run '^$$' -fuzz FuzzFrontier -fuzztime $(FUZZTIME) ./internal/sim/
	go test -run '^$$' -fuzz FuzzLaneKernel -fuzztime $(FUZZTIME) ./internal/sim/
	go test -run '^$$' -fuzz FuzzParseLiberty -fuzztime $(FUZZTIME) ./internal/liberty/
	go test -run '^$$' -fuzz FuzzParseVerilog$$ -fuzztime $(FUZZTIME) ./internal/netlist/
	go test -run '^$$' -fuzz FuzzParseVerilogHierarchy -fuzztime $(FUZZTIME) ./internal/netlist/
	go test -run '^$$' -fuzz FuzzParseSDF -fuzztime $(FUZZTIME) ./internal/sdf/
	go test -run '^$$' -fuzz FuzzParseVCD -fuzztime $(FUZZTIME) ./internal/vcd/
