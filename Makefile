.PHONY: check build test bench fmt

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench . -benchtime 1x ./...

fmt:
	gofmt -w .
