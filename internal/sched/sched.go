// Package sched defines the canonical output-event scheduling semantics
// shared by every simulator in this repository (the stable-time engine, the
// sequential reference simulator, and the partition-based baseline). Keeping
// these rules in one place is what makes their committed event streams
// comparable bit-for-bit, which in turn is how the parallel engine is
// verified against the sequential oracle.
//
// The semantics are the common inertial-delay model:
//
//   - a newly computed output transition at time te cancels every pending
//     (not yet committed) transition scheduled at or after te;
//   - a transition to the value the output would already have at te is
//     dropped;
//   - pending transitions become committed (visible downstream, immutable)
//     once the gate's input time frontier guarantees no future cancellation.
package sched

import (
	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/sdf"
)

// DelayFor selects the arc delay for a transition to value v: rise delay
// toward 1, fall delay toward 0, and the pessimistic maximum toward X/Z.
func DelayFor(d sdf.Delay, v logic.Value) int64 {
	switch v.ToKleene() {
	case logic.V1:
		return d.Rise
	case logic.V0:
		return d.Fall
	default:
		return d.Max()
	}
}

// Output tracks the pending (cancellable) transitions of one output pin.
// The zero value is not ready; use Reset to set the initial value.
type Output struct {
	pend []event.Event // pending transitions, strictly increasing time
	last logic.Value   // value after all committed transitions
}

// Reset initializes the output to the given committed value with no pending
// transitions.
func (o *Output) Reset(v logic.Value) {
	o.pend = o.pend[:0]
	o.last = v
}

// Committed returns the value after all committed transitions.
func (o *Output) Committed() logic.Value { return o.last }

// Projected returns the value the output will have after all pending
// transitions.
func (o *Output) Projected() logic.Value {
	if len(o.pend) > 0 {
		return o.pend[len(o.pend)-1].Val
	}
	return o.last
}

// Schedule records a computed transition to v at time te, applying inertial
// cancellation. Scheduling a value equal to the projected value at te is a
// no-op. te must be strictly greater than the last committed time (the
// commit rule guarantees this).
func (o *Output) Schedule(te int64, v logic.Value) {
	// Cancel pending transitions at or after te.
	for len(o.pend) > 0 && o.pend[len(o.pend)-1].Time >= te {
		o.pend = o.pend[:len(o.pend)-1]
	}
	if o.Projected() == v {
		return
	}
	o.pend = append(o.pend, event.Event{Time: te, Val: v})
}

// CommitThrough commits every pending transition with time <= t, invoking
// emit for each in time order. Committed transitions are final.
func (o *Output) CommitThrough(t int64, emit func(event.Event)) {
	n := 0
	for n < len(o.pend) && o.pend[n].Time <= t {
		emit(o.pend[n])
		o.last = o.pend[n].Val
		n++
	}
	if n > 0 {
		o.pend = append(o.pend[:0], o.pend[n:]...)
	}
}

// NextPending returns the time of the earliest pending transition.
func (o *Output) NextPending() (int64, bool) {
	if len(o.pend) == 0 {
		return 0, false
	}
	return o.pend[0].Time, true
}

// PendingCount returns the number of pending transitions.
func (o *Output) PendingCount() int { return len(o.pend) }

// PendingAt returns the k-th pending transition (0 = earliest) without
// removing it. Used by simulators that must peek at finalized transitions
// before their local commit time (cross-partition sends).
func (o *Output) PendingAt(k int) (int64, logic.Value) {
	return o.pend[k].Time, o.pend[k].Val
}

// PopFront removes and returns the earliest pending transition, updating the
// committed value. It panics when no transition is pending; pair it with
// NextPending.
func (o *Output) PopFront() event.Event {
	e := o.pend[0]
	o.last = e.Val
	o.pend = o.pend[:copy(o.pend, o.pend[1:])]
	return e
}

// Pend exposes the pending transitions, earliest first. The slice aliases
// internal storage: copy it before mutating the Output.
func (o *Output) Pend() []event.Event { return o.pend }

// Restore sets the committed value and pending list in one step, for
// simulators that snapshot and resume scheduling state.
func (o *Output) Restore(last logic.Value, pend []event.Event) {
	o.last = last
	o.pend = append(o.pend[:0], pend...)
}
