package sched

import (
	"math/rand"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/sdf"
)

func TestDelayFor(t *testing.T) {
	d := sdf.Delay{Rise: 30, Fall: 20}
	if DelayFor(d, logic.V1) != 30 || DelayFor(d, logic.V0) != 20 {
		t.Error("rise/fall selection wrong")
	}
	if DelayFor(d, logic.VX) != 30 || DelayFor(d, logic.VZ) != 30 {
		t.Error("X should use max")
	}
	if DelayFor(d, logic.VR) != 30 || DelayFor(d, logic.VF) != 20 {
		t.Error("edges settle before delay selection")
	}
}

func collect(o *Output, through int64) []event.Event {
	var out []event.Event
	o.CommitThrough(through, func(e event.Event) { out = append(out, e) })
	return out
}

func TestScheduleBasic(t *testing.T) {
	var o Output
	o.Reset(logic.V0)
	o.Schedule(10, logic.V1)
	o.Schedule(20, logic.V0)
	got := collect(&o, 100)
	if len(got) != 2 || got[0] != (event.Event{Time: 10, Val: logic.V1}) || got[1] != (event.Event{Time: 20, Val: logic.V0}) {
		t.Fatalf("got %+v", got)
	}
	if o.Committed() != logic.V0 {
		t.Errorf("committed = %v", o.Committed())
	}
}

func TestScheduleDedup(t *testing.T) {
	var o Output
	o.Reset(logic.V1)
	o.Schedule(10, logic.V1) // same as committed: dropped
	if o.PendingCount() != 0 {
		t.Error("redundant schedule kept")
	}
	o.Schedule(10, logic.V0)
	o.Schedule(15, logic.V0) // same as projected: dropped
	if o.PendingCount() != 1 {
		t.Error("projected dedup failed")
	}
}

func TestInertialCancellation(t *testing.T) {
	var o Output
	o.Reset(logic.V0)
	o.Schedule(10, logic.V1)
	o.Schedule(20, logic.V0)
	// An earlier transition cancels everything at or after it.
	o.Schedule(15, logic.V1)
	got := collect(&o, 100)
	// After cancellation at 15: pend was [(10,1)], projected 1, so (15,1)
	// is redundant: only (10,1) remains.
	if len(got) != 1 || got[0].Time != 10 {
		t.Fatalf("got %+v", got)
	}
}

func TestInertialGlitchSuppression(t *testing.T) {
	// A pulse shorter than the delay difference collapses.
	var o Output
	o.Reset(logic.V0)
	o.Schedule(50, logic.V1)
	o.Schedule(48, logic.V0) // cancels the 50 rise; redundant vs committed 0
	if o.PendingCount() != 0 {
		t.Errorf("pending = %d", o.PendingCount())
	}
}

func TestCommitThroughPartial(t *testing.T) {
	var o Output
	o.Reset(logic.V0)
	o.Schedule(10, logic.V1)
	o.Schedule(20, logic.V0)
	o.Schedule(30, logic.V1)
	got := collect(&o, 20)
	if len(got) != 2 {
		t.Fatalf("got %+v", got)
	}
	if next, ok := o.NextPending(); !ok || next != 30 {
		t.Errorf("NextPending = %d %v", next, ok)
	}
	if o.Committed() != logic.V0 || o.Projected() != logic.V1 {
		t.Errorf("committed %v projected %v", o.Committed(), o.Projected())
	}
}

// Property: committed streams are strictly time-ordered and never contain
// two consecutive equal values, whatever the schedule/commit interleaving.
func TestCommittedStreamInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var o Output
		o.Reset(logic.V0)
		var stream []event.Event
		emit := func(e event.Event) { stream = append(stream, e) }
		frontier := int64(0)
		for op := 0; op < 500; op++ {
			if rng.Intn(3) > 0 {
				te := frontier + 1 + rng.Int63n(50)
				o.Schedule(te, logic.Value(rng.Intn(3)))
			} else {
				frontier += rng.Int63n(30)
				o.CommitThrough(frontier, emit)
			}
		}
		last := event.Event{Time: -1, Val: logic.V0}
		for i, e := range stream {
			if e.Time <= last.Time && i > 0 {
				t.Fatalf("trial %d: non-increasing times %d then %d", trial, last.Time, e.Time)
			}
			if i > 0 && e.Val == last.Val {
				t.Fatalf("trial %d: duplicate value %v at %d", trial, e.Val, e.Time)
			}
			last = e
		}
		// First committed value differs from the initial value.
		if len(stream) > 0 && stream[0].Val == logic.V0 {
			t.Fatalf("trial %d: first transition is not a change", trial)
		}
	}
}

func TestPopFront(t *testing.T) {
	var o Output
	o.Reset(logic.V0)
	o.Schedule(10, logic.V1)
	o.Schedule(20, logic.V0)
	if te, ok := o.NextPending(); !ok || te != 10 {
		t.Fatal("NextPending wrong")
	}
	e := o.PopFront()
	if e.Time != 10 || o.Committed() != logic.V1 || o.PendingCount() != 1 {
		t.Fatalf("PopFront: %+v committed=%v", e, o.Committed())
	}
}

func TestPendRestore(t *testing.T) {
	var o Output
	o.Reset(logic.V0)
	o.Schedule(10, logic.V1)
	o.Schedule(20, logic.V0)
	saved := append([]event.Event(nil), o.Pend()...)
	var o2 Output
	o2.Restore(logic.V0, saved)
	if o2.PendingCount() != 2 || o2.Projected() != logic.V0 || o2.Committed() != logic.V0 {
		t.Fatalf("restore wrong: %d pending", o2.PendingCount())
	}
	e := o2.PopFront()
	if e.Time != 10 || e.Val != logic.V1 {
		t.Fatalf("restored pop: %+v", e)
	}
}
