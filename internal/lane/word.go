// Package lane implements the bit-parallel multi-stimulus value layer
// (GATSPI-style word parallelism): the 4-value steady-state logic of up to
// 32 independent stimulus lanes packed into one uint64, two bits per lane,
// so one pass over the netlist evaluates every lane at once.
//
// Encoding: lane l occupies bits [2l, 2l+1] and holds logic.Value & 3 —
// V0=00, V1=01, VX=10, VZ=11. Only the four steady values are ever stored;
// edge markers settle before packing and U is carried out-of-band (the
// engine's watermarks are shared across lanes, so "undetermined" is a
// property of a net's time range, not of one lane's value).
//
// Lane subsets are addressed by uint32 masks (bit l = lane l). Spread
// widens a mask to the word domain; the Kleene ops work on bit planes (the
// even "low" plane and the odd "high" plane), giving branch-free all-lane
// evaluation that matches logic.And/Or/Not/Xor lane for lane.
package lane

import (
	"math/bits"

	"gatesim/internal/logic"
)

// MaxLanes is the lane capacity of one Word (2 bits per lane in a uint64).
const MaxLanes = 32

// Word packs one 4-value logic value per lane.
type Word uint64

// loPlanes masks the low (even) bit of every lane.
const loPlanes = 0x5555555555555555

// Broadcast returns a word holding v in every lane. v must be steady; the
// two low bits are taken.
func Broadcast(v logic.Value) Word {
	return Word(uint64(v&3) * loPlanes)
}

// Get returns lane l's value.
func (w Word) Get(l int) logic.Value {
	return logic.Value((w >> (2 * uint(l))) & 3)
}

// Set returns w with lane l replaced by v (low two bits).
func (w Word) Set(l int, v logic.Value) Word {
	sh := 2 * uint(l)
	return (w &^ (3 << sh)) | Word(v&3)<<sh
}

// Spread widens a lane mask to the word domain: both bits of every selected
// lane set.
func Spread(mask uint32) Word {
	x := uint64(mask)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & loPlanes
	return Word(x | x<<1)
}

// Merge returns w with the masked lanes replaced by o's lanes.
func (w Word) Merge(o Word, mask uint32) Word {
	s := Spread(mask)
	return (w &^ s) | (o & s)
}

// DiffMask returns the lanes on which a and b differ.
func DiffMask(a, b Word) uint32 {
	d := uint64(a ^ b)
	d = (d | d>>1) & loPlanes
	d = (d | d>>1) & 0x3333333333333333
	d = (d | d>>2) & 0x0F0F0F0F0F0F0F0F
	d = (d | d>>4) & 0x00FF00FF00FF00FF
	d = (d | d>>8) & 0x0000FFFF0000FFFF
	d = (d | d>>16) & 0x00000000FFFFFFFF
	return uint32(d)
}

// Uniform reports whether every lane in mask (nonzero) holds the same
// value, returning that value.
func (w Word) Uniform(mask uint32) (logic.Value, bool) {
	v := w.Get(bits.TrailingZeros32(mask))
	if (w^Broadcast(v))&Spread(mask) != 0 {
		return v, false
	}
	return v, true
}

// planes splits a word into its low and high bit planes, both normalized to
// the even positions.
func planes(w Word) (lo, hi uint64) {
	return uint64(w) & loPlanes, (uint64(w) >> 1) & loPlanes
}

// Not returns the lane-wise Kleene negation (Z reads as X, as in logic.Not).
func Not(a Word) Word {
	lo, hi := planes(a)
	is0 := ^lo & ^hi & loPlanes
	return Word(is0 | hi<<1)
}

// And returns the lane-wise Kleene conjunction (0 dominates X).
func And(a, b Word) Word {
	loA, hiA := planes(a)
	loB, hiB := planes(b)
	is1 := (loA &^ hiA) & (loB &^ hiB)
	is0 := (^loA &^ hiA & loPlanes) | (^loB &^ hiB & loPlanes)
	outX := loPlanes &^ (is0 | is1)
	return Word(is1 | outX<<1)
}

// Or returns the lane-wise Kleene disjunction (1 dominates X).
func Or(a, b Word) Word {
	loA, hiA := planes(a)
	loB, hiB := planes(b)
	is1 := (loA &^ hiA) | (loB &^ hiB)
	is0 := (^loA &^ hiA & loPlanes) & (^loB &^ hiB & loPlanes)
	outX := loPlanes &^ (is0 | is1)
	return Word(is1 | outX<<1)
}

// Xor returns the lane-wise Kleene exclusive-or.
func Xor(a, b Word) Word {
	loA, hiA := planes(a)
	loB, hiB := planes(b)
	u := hiA | hiB
	out1 := (loA ^ loB) &^ u
	return Word(out1 | u<<1)
}
