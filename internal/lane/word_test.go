package lane

import (
	"math/rand"
	"testing"

	"gatesim/internal/logic"
)

// steady is the full packable alphabet.
var steady = []logic.Value{logic.V0, logic.V1, logic.VX, logic.VZ}

func TestGetSetBroadcast(t *testing.T) {
	for _, v := range steady {
		w := Broadcast(v)
		for l := 0; l < MaxLanes; l++ {
			if got := w.Get(l); got != v {
				t.Fatalf("Broadcast(%v).Get(%d) = %v", v, l, got)
			}
		}
	}
	var w Word
	for l := 0; l < MaxLanes; l++ {
		w = w.Set(l, steady[l%len(steady)])
	}
	for l := 0; l < MaxLanes; l++ {
		if got := w.Get(l); got != steady[l%len(steady)] {
			t.Fatalf("Set/Get lane %d: got %v want %v", l, got, steady[l%len(steady)])
		}
	}
	// Set must not disturb neighbours.
	w2 := w.Set(7, logic.VZ)
	for l := 0; l < MaxLanes; l++ {
		want := steady[l%len(steady)]
		if l == 7 {
			want = logic.VZ
		}
		if got := w2.Get(l); got != want {
			t.Fatalf("Set(7) disturbed lane %d: got %v want %v", l, got, want)
		}
	}
}

// TestOpsExhaustive checks every Kleene op against the scalar logic package
// for all value pairs, with the pair rotated across every lane position.
func TestOpsExhaustive(t *testing.T) {
	for li := 0; li < MaxLanes; li++ {
		for _, a := range steady {
			for _, b := range steady {
				// Fill all other lanes with a different pair to catch
				// cross-lane bleed.
				wa := Broadcast(steady[(li+1)%4]).Set(li, a)
				wb := Broadcast(steady[(li+2)%4]).Set(li, b)
				check := func(name string, got Word, want logic.Value) {
					t.Helper()
					if g := got.Get(li); g != want {
						t.Fatalf("%s(%v,%v) lane %d = %v, want %v", name, a, b, li, g, want)
					}
				}
				check("And", And(wa, wb), logic.And(a, b))
				check("Or", Or(wa, wb), logic.Or(a, b))
				check("Xor", Xor(wa, wb), logic.Xor(a, b))
				check("Not", Not(wa), logic.Not(a))
			}
		}
	}
}

func TestSpreadMergeDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 2000; iter++ {
		var a, b Word
		for l := 0; l < MaxLanes; l++ {
			a = a.Set(l, steady[rng.Intn(4)])
			b = b.Set(l, steady[rng.Intn(4)])
		}
		mask := rng.Uint32()
		m := a.Merge(b, mask)
		var wantDiff uint32
		for l := 0; l < MaxLanes; l++ {
			want := a.Get(l)
			if mask&(1<<uint(l)) != 0 {
				want = b.Get(l)
			}
			if got := m.Get(l); got != want {
				t.Fatalf("Merge lane %d: got %v want %v", l, got, want)
			}
			if a.Get(l) != b.Get(l) {
				wantDiff |= 1 << uint(l)
			}
		}
		if got := DiffMask(a, b); got != wantDiff {
			t.Fatalf("DiffMask = %08x, want %08x", got, wantDiff)
		}
	}
	if Spread(0) != 0 {
		t.Fatalf("Spread(0) != 0")
	}
	if Spread(0xFFFFFFFF) != Word(^uint64(0)) {
		t.Fatalf("Spread(all) != all-ones")
	}
}

func TestUniform(t *testing.T) {
	w := Broadcast(logic.V1)
	if v, ok := w.Uniform(0xFFFFFFFF); !ok || v != logic.V1 {
		t.Fatalf("uniform broadcast: %v %v", v, ok)
	}
	w = w.Set(13, logic.V0)
	if _, ok := w.Uniform(0xFFFFFFFF); ok {
		t.Fatalf("non-uniform word reported uniform")
	}
	// Lane 13 excluded from the mask: uniform again.
	if v, ok := w.Uniform(0xFFFFFFFF &^ (1 << 13)); !ok || v != logic.V1 {
		t.Fatalf("masked uniform: %v %v", v, ok)
	}
	// Mask of just lane 13.
	if v, ok := w.Uniform(1 << 13); !ok || v != logic.V0 {
		t.Fatalf("single-lane uniform: %v %v", v, ok)
	}
}

func TestStore(t *testing.T) {
	var s Store
	const n = 4 * storePageSize
	for i := 0; i < n; i++ {
		s.Append(uint32(i*2654435761), Broadcast(steady[i%4]).Set(i%MaxLanes, steady[(i+1)%4]))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		m, w := s.At(int64(i))
		if m != uint32(i*2654435761) {
			t.Fatalf("entry %d mask mismatch", i)
		}
		want := Broadcast(steady[i%4]).Set(i%MaxLanes, steady[(i+1)%4])
		if w != want {
			t.Fatalf("entry %d word mismatch", i)
		}
	}
}
