package lane

import "sync/atomic"

// Entry is one lane-vector event: the full post-change word on a net plus
// the mask of lanes that actually changed at that time.
type Entry struct {
	Mask uint32
	Word Word
}

// storePageSize matches event.PageSize so a store page covers exactly one
// queue page worth of events.
const storePageSize = 32

type storePage struct {
	masks [storePageSize]uint32
	words [storePageSize]Word
}

// Store is the append-only lane side channel of one event queue: entry i
// carries the changed-lane mask and merged lane word of the queue's event
// at absolute index i. Lane mode never trims or restores queues, so store
// indices coincide with queue indices from zero and pages are never freed.
//
// Concurrency mirrors the queue's publication protocol with the roles
// swapped: the single writer fills the entry BEFORE its q.Append, whose
// atomic end-store is the release point; a reader that has observed
// i < q.Len() may call At(i). The page directory itself is published with
// an atomic pointer (copy-on-grow), so directory growth is safe against
// concurrent readers of already-published entries.
type Store struct {
	dir atomic.Pointer[[]*storePage]
	n   int64 // entries appended; single-writer private
}

// Append records the entry for the next queue index. Call strictly before
// the paired queue Append that publishes it.
func (s *Store) Append(mask uint32, w Word) {
	pi, off := int(s.n/storePageSize), int(s.n%storePageSize)
	dir := s.dir.Load()
	if dir == nil || pi >= len(*dir) {
		var nd []*storePage
		if dir != nil {
			nd = append(nd, *dir...)
		}
		nd = append(nd, new(storePage))
		s.dir.Store(&nd)
		dir = &nd
	}
	pg := (*dir)[pi]
	pg.masks[off] = mask
	pg.words[off] = w
	s.n++
}

// At returns entry i. The caller must have observed the paired queue's
// length exceed i first.
func (s *Store) At(i int64) (uint32, Word) {
	dir := s.dir.Load()
	pg := (*dir)[i/storePageSize]
	return pg.masks[i%storePageSize], pg.words[i%storePageSize]
}

// Len returns the number of entries appended. Writer-side bookkeeping
// only; readers bound their indices by the paired queue's length.
func (s *Store) Len() int64 { return s.n }
