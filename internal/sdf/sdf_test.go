package sdf

import (
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
)

const sampleSDF = `
(DELAYFILE
 (SDFVERSION "3.0")
 (DESIGN "top")
 (DATE "2026-07-06")
 (TIMESCALE 1ns)
 (CELL (CELLTYPE "NAND2") (INSTANCE u1)
  (DELAY (ABSOLUTE
    (IOPATH A Y (0.05:0.06:0.07) (0.04:0.05:0.06))
    (IOPATH B Y (0.08) (0.09))
  ))
 )
 (CELL (CELLTYPE "DFF_P") (INSTANCE ff0)
  (DELAY (ABSOLUTE
    (IOPATH CLK Q (0.12) (0.13))
  ))
 )
)
`

func buildSmall(t *testing.T) *netlist.Netlist {
	t.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("top", lib)
	for _, p := range []string{"a", "b", "clk"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("u1", "NAND2", map[string]string{"A": "a", "B": "b", "Y": "n1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("ff0", "DFF_P", map[string]string{"CLK": "clk", "D": "n1", "Q": "q"}); err != nil {
		t.Fatal(err)
	}
	qid, _ := nl.Net("q")
	nl.MarkOutput(qid)
	return nl
}

func TestParseSDF(t *testing.T) {
	f, err := Parse(sampleSDF)
	if err != nil {
		t.Fatal(err)
	}
	if f.Design != "top" || f.Timescale != 1000 {
		t.Errorf("header: %+v", f)
	}
	if len(f.Cells) != 2 {
		t.Fatalf("cells: %d", len(f.Cells))
	}
	p := f.Cells[0].Paths[0]
	// typ value 0.06 ns = 60 ps
	if p.From != "A" || p.To != "Y" || p.Delay.Rise != 60 || p.Delay.Fall != 50 {
		t.Errorf("path: %+v", p)
	}
	// single-value triple
	if f.Cells[0].Paths[1].Delay.Rise != 80 || f.Cells[0].Paths[1].Delay.Fall != 90 {
		t.Errorf("path: %+v", f.Cells[0].Paths[1])
	}
}

func TestApply(t *testing.T) {
	nl := buildSmall(t)
	f, err := Parse(sampleSDF)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Apply(f, nl, Delay{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Arc(0, 0, 0); got.Rise != 60 || got.Fall != 50 {
		t.Errorf("u1 A->Y: %+v", got)
	}
	if got := d.Arc(0, 0, 1); got.Rise != 80 {
		t.Errorf("u1 B->Y: %+v", got)
	}
	// ff0 CLK->Q annotated, D->Q falls back to the default.
	if got := d.Arc(1, 0, 0); got.Rise != 120 {
		t.Errorf("ff0 CLK->Q: %+v", got)
	}
	if got := d.Arc(1, 0, 1); got.Rise != 10 {
		t.Errorf("ff0 D->Q default: %+v", got)
	}
	if d.MinPositive != 10 {
		t.Errorf("MinPositive = %d", d.MinPositive)
	}
	if got := d.MinArc(0, 0); got != 50 {
		t.Errorf("MinArc(u1, Y) = %d", got)
	}
}

func TestApplyErrors(t *testing.T) {
	nl := buildSmall(t)
	bad1 := `(DELAYFILE (TIMESCALE 1ps) (CELL (CELLTYPE "NAND2") (INSTANCE nope)
	  (DELAY (ABSOLUTE (IOPATH A Y (1) (1))))))`
	f, err := Parse(bad1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(f, nl, Delay{}); err == nil {
		t.Error("unknown instance should fail")
	}
	bad2 := `(DELAYFILE (TIMESCALE 1ps) (CELL (CELLTYPE "INV") (INSTANCE u1)
	  (DELAY (ABSOLUTE (IOPATH A Y (1) (1))))))`
	f, _ = Parse(bad2)
	if _, err := Apply(f, nl, Delay{}); err == nil {
		t.Error("cell type mismatch should fail")
	}
	bad3 := `(DELAYFILE (TIMESCALE 1ps) (CELL (CELLTYPE "NAND2") (INSTANCE u1)
	  (DELAY (ABSOLUTE (IOPATH A Q (1) (1))))))`
	f, _ = Parse(bad3)
	if _, err := Apply(f, nl, Delay{}); err == nil {
		t.Error("bad pin should fail")
	}
}

func TestUniform(t *testing.T) {
	nl := buildSmall(t)
	d := Uniform(nl, 100)
	if got := d.Arc(0, 0, 1); got.Rise != 100 || got.Fall != 100 {
		t.Errorf("uniform arc: %+v", got)
	}
	if d.MinPositive != 100 {
		t.Errorf("MinPositive = %d", d.MinPositive)
	}
}

func TestRoundTrip(t *testing.T) {
	nl := buildSmall(t)
	f, err := Parse(sampleSDF)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Apply(f, nl, Delay{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	out := Write(FromNetlist(nl, d))
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	d2, err := Apply(f2, nl, Delay{999, 999})
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 2; cell++ {
		inst := &nl.Instances[cell]
		for out := range inst.Type.Outputs {
			if inst.OutNets[out] < 0 {
				continue // unconnected outputs are not written to SDF
			}
			for in := range inst.Type.Inputs {
				a, b := d.Arc(netlist.CellID(cell), out, in), d2.Arc(netlist.CellID(cell), out, in)
				if a != b {
					t.Errorf("arc (%d,%d,%d): %+v vs %+v", cell, out, in, a, b)
				}
			}
		}
	}
}

func TestParseTimescaleVariants(t *testing.T) {
	cases := map[string]int64{"1ps": 1, "10ps": 10, "1ns": 1000, "0.1ns": 100, "1us": 1000000}
	for s, want := range cases {
		got, err := parseTimescale(s)
		if err != nil || got != want {
			t.Errorf("parseTimescale(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := parseTimescale("1s"); err == nil {
		t.Error("1s should be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`(DELAYFILE`,
		`(DELAYFILE (TIMESCALE 1xs))`,
		`(DELAYFILE (CELL (DELAY (ABSOLUTE (IOPATH A Y (x)))))`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestFromLibrary(t *testing.T) {
	src := `library (t) {
  time_unit : "1ns";
  cell (G) {
    pin (A) { direction : input; }
    pin (B) { direction : input; }
    pin (Y) { direction : output; function : "A & B";
      timing () { related_pin : "A";
        cell_rise (scalar) { values ("0.12"); }
        cell_fall (scalar) { values ("0.10"); }
      }
      timing () { related_pin : "B";
        cell_rise (tbl) { values ("0.05, 0.20, 0.30"); }
      }
    }
  }
}`
	lib, err := liberty.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if lib.TimeUnitPS != 1000 {
		t.Fatalf("time unit: %v", lib.TimeUnitPS)
	}
	nl := netlist.New("t", lib)
	nl.MarkInput(nl.AddNet("a"))
	nl.MarkInput(nl.AddNet("b"))
	if _, err := nl.AddInstance("g", "G", map[string]string{"A": "a", "B": "b", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	d := FromLibrary(nl, Delay{Rise: 7, Fall: 7})
	// A->Y: 0.12ns/0.10ns => 120/100 ps.
	if got := d.Arc(0, 0, 0); got.Rise != 120 || got.Fall != 100 {
		t.Errorf("A->Y: %+v", got)
	}
	// B->Y: rise = max table value 0.30ns = 300 ps, fall mirrors rise.
	if got := d.Arc(0, 0, 1); got.Rise != 300 || got.Fall != 300 {
		t.Errorf("B->Y: %+v", got)
	}
	// Both arcs are annotated, so the smallest delay in the design is 100.
	if d.MinPositive != 100 {
		t.Errorf("MinPositive: %d", d.MinPositive)
	}
}
