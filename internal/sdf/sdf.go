// Package sdf reads and writes the subset of the Standard Delay Format used
// by delay-annotated gate-level simulation: absolute IOPATH delays per cell
// instance, with rise and fall times. Delays are carried as integer
// picoseconds throughout the simulator.
package sdf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gatesim/internal/netlist"
)

// Delay is one timing arc's rise and fall delay in picoseconds.
type Delay struct {
	Rise int64
	Fall int64
}

// Max returns the larger of rise and fall.
func (d Delay) Max() int64 {
	if d.Rise > d.Fall {
		return d.Rise
	}
	return d.Fall
}

// Min returns the smaller of rise and fall.
func (d Delay) Min() int64 {
	if d.Rise < d.Fall {
		return d.Rise
	}
	return d.Fall
}

// IOPath is one (input pin -> output pin) delay of a cell instance.
type IOPath struct {
	From, To string
	Delay    Delay
}

// Cell is the annotation of one instance.
type Cell struct {
	CellType string
	Instance string
	Paths    []IOPath
}

// File is a parsed SDF file.
type File struct {
	Design    string
	Timescale int64 // picoseconds per SDF time unit
	Cells     []Cell
}

// Parse reads SDF text.
func Parse(src string) (*File, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) cur() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) expect(tok string) error {
	if p.cur() != tok {
		return fmt.Errorf("sdf: expected %q, got %q", tok, p.cur())
	}
	p.pos++
	return nil
}

func tokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sdf: unterminated string")
			}
			toks = append(toks, src[i:j+1]) // keep quotes to mark strings
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r()", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Timescale: 1}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expect("DELAYFILE"); err != nil {
		return nil, err
	}
	for p.cur() == "(" {
		p.pos++
		switch key := p.cur(); key {
		case "CELL":
			p.pos++
			cell, err := p.parseCell(f.Timescale)
			if err != nil {
				return nil, err
			}
			f.Cells = append(f.Cells, *cell)
		case "DESIGN":
			p.pos++
			f.Design = unquote(p.cur())
			p.pos++
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case "TIMESCALE":
			p.pos++
			ts, err := parseTimescale(unquote(p.cur()))
			if err != nil {
				return nil, err
			}
			f.Timescale = ts
			p.pos++
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		default:
			// Skip unknown header groups (SDFVERSION, DATE, VENDOR, ...).
			if err := p.skipGroup(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return f, nil
}

// skipGroup consumes tokens until the matching close paren (the open paren
// and keyword were already consumed).
func (p *parser) skipGroup() error {
	depth := 1
	for depth > 0 {
		switch p.cur() {
		case "(":
			depth++
		case ")":
			depth--
		case "":
			return fmt.Errorf("sdf: unexpected EOF while skipping group")
		}
		p.pos++
	}
	return nil
}

func (p *parser) parseCell(timescale int64) (*Cell, error) {
	c := &Cell{}
	for p.cur() == "(" {
		p.pos++
		switch p.cur() {
		case "CELLTYPE":
			p.pos++
			c.CellType = unquote(p.cur())
			p.pos++
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case "INSTANCE":
			p.pos++
			if p.cur() != ")" {
				c.Instance = unquote(p.cur())
				p.pos++
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case "DELAY":
			p.pos++
			if err := p.parseDelay(c, timescale); err != nil {
				return nil, err
			}
		default:
			if err := p.skipGroup(); err != nil {
				return nil, err
			}
		}
	}
	return c, p.expect(")")
}

func (p *parser) parseDelay(c *Cell, timescale int64) error {
	for p.cur() == "(" {
		p.pos++
		switch p.cur() {
		case "ABSOLUTE", "INCREMENT":
			p.pos++
			for p.cur() == "(" {
				p.pos++
				if p.cur() != "IOPATH" {
					if err := p.skipGroup(); err != nil {
						return err
					}
					continue
				}
				p.pos++
				path := IOPath{From: p.cur()}
				p.pos++
				path.To = p.cur()
				p.pos++
				rise, err := p.parseTriple(timescale)
				if err != nil {
					return err
				}
				fall := rise
				if p.cur() == "(" {
					fall, err = p.parseTriple(timescale)
					if err != nil {
						return err
					}
				}
				path.Delay = Delay{Rise: rise, Fall: fall}
				c.Paths = append(c.Paths, path)
				if err := p.expect(")"); err != nil {
					return err
				}
			}
			if err := p.expect(")"); err != nil {
				return err
			}
		default:
			if err := p.skipGroup(); err != nil {
				return err
			}
		}
	}
	return p.expect(")")
}

// parseTriple reads "(min:typ:max)" or "(v)" and returns the typ value in
// picoseconds.
func (p *parser) parseTriple(timescale int64) (int64, error) {
	if err := p.expect("("); err != nil {
		return 0, err
	}
	raw := p.cur()
	p.pos++
	if err := p.expect(")"); err != nil {
		return 0, err
	}
	parts := strings.Split(raw, ":")
	pick := parts[0]
	if len(parts) == 3 {
		pick = parts[1]
	}
	v, err := strconv.ParseFloat(pick, 64)
	if err != nil {
		return 0, fmt.Errorf("sdf: bad delay value %q", raw)
	}
	return int64(v*float64(timescale) + 0.5), nil
}

func parseTimescale(s string) (int64, error) {
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, " ", "")
	mult := int64(1)
	var numPart string
	switch {
	case strings.HasSuffix(s, "ps"):
		numPart = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		numPart, mult = s[:len(s)-2], 1000
	case strings.HasSuffix(s, "us"):
		numPart, mult = s[:len(s)-2], 1000_000
	default:
		return 0, fmt.Errorf("sdf: unsupported timescale %q", s)
	}
	n, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("sdf: bad timescale %q", s)
	}
	return int64(n * float64(mult)), nil
}

// Write renders the file as SDF text with a 1ps timescale.
func Write(f *File) string {
	var b strings.Builder
	b.WriteString("(DELAYFILE\n  (SDFVERSION \"3.0\")\n")
	if f.Design != "" {
		fmt.Fprintf(&b, "  (DESIGN %q)\n", f.Design)
	}
	b.WriteString("  (TIMESCALE 1ps)\n")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "  (CELL (CELLTYPE %q) (INSTANCE %s)\n    (DELAY (ABSOLUTE\n", c.CellType, c.Instance)
		for _, p := range c.Paths {
			fmt.Fprintf(&b, "      (IOPATH %s %s (%d) (%d))\n", p.From, p.To, p.Delay.Rise, p.Delay.Fall)
		}
		b.WriteString("    ))\n  )\n")
	}
	b.WriteString(")\n")
	return b.String()
}

// Delays is the dense per-instance annotation the simulator consumes:
// Arc(cell, out, in) in picoseconds.
type Delays struct {
	// perInstance[cell][out*numInputs+in]
	perInstance [][]Delay
	numInputs   []int
	// MinPositive is the smallest nonzero arc delay in the design (0 when
	// every arc is zero); used as conservative lookahead by partsim.
	MinPositive int64
}

// Arc returns the delay of the (in -> out) arc of the given instance.
func (d *Delays) Arc(cell netlist.CellID, out, in int) Delay {
	return d.perInstance[cell][out*d.numInputs[cell]+in]
}

// MinArc returns the smallest delay across all arcs into the given output.
func (d *Delays) MinArc(cell netlist.CellID, out int) int64 {
	n := d.numInputs[cell]
	if n == 0 {
		return 0
	}
	min := int64(1<<62 - 1)
	for in := 0; in < n; in++ {
		if v := d.perInstance[cell][out*n+in].Min(); v < min {
			min = v
		}
	}
	return min
}

// Uniform builds an annotation giving every arc the same rise/fall delay —
// the "no SDF annotation" configuration of the paper's Figure 8.
func Uniform(nl *netlist.Netlist, delay int64) *Delays {
	d := newDelays(nl, Delay{delay, delay})
	if delay > 0 {
		d.MinPositive = delay
	}
	return d
}

func newDelays(nl *netlist.Netlist, def Delay) *Delays {
	d := &Delays{
		perInstance: make([][]Delay, len(nl.Instances)),
		numInputs:   make([]int, len(nl.Instances)),
	}
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		ni, no := len(inst.Type.Inputs), len(inst.Type.Outputs)
		d.numInputs[i] = ni
		arcs := make([]Delay, ni*no)
		for k := range arcs {
			arcs[k] = def
		}
		d.perInstance[i] = arcs
	}
	return d
}

// Apply matches the parsed file against the netlist and produces the dense
// annotation. Arcs not mentioned in the file keep the default delay.
// Instances named in the file but absent from the netlist are an error, as
// are pins that do not exist on the cell.
func Apply(f *File, nl *netlist.Netlist, def Delay) (*Delays, error) {
	d := newDelays(nl, def)
	byName := make(map[string]netlist.CellID, len(nl.Instances))
	for i := range nl.Instances {
		byName[nl.Instances[i].Name] = netlist.CellID(i)
	}
	for _, c := range f.Cells {
		id, ok := byName[c.Instance]
		if !ok {
			return nil, fmt.Errorf("sdf: instance %q not in netlist", c.Instance)
		}
		inst := &nl.Instances[id]
		if c.CellType != "" && c.CellType != inst.Type.Name {
			return nil, fmt.Errorf("sdf: instance %q is %s in netlist but %s in SDF",
				c.Instance, inst.Type.Name, c.CellType)
		}
		ni := len(inst.Type.Inputs)
		for _, p := range c.Paths {
			in := pinIndexOf(inst.Type.Inputs, p.From)
			out := pinIndexOf(inst.Type.Outputs, p.To)
			if in < 0 || out < 0 {
				return nil, fmt.Errorf("sdf: instance %q: no arc %s -> %s on cell %s",
					c.Instance, p.From, p.To, inst.Type.Name)
			}
			d.perInstance[id][out*ni+in] = p.Delay
		}
	}
	d.MinPositive = 0
	for _, arcs := range d.perInstance {
		for _, a := range arcs {
			if v := a.Min(); v > 0 && (d.MinPositive == 0 || v < d.MinPositive) {
				d.MinPositive = v
			}
		}
	}
	return d, nil
}

func pinIndexOf(pins []string, name string) int {
	for i, p := range pins {
		if p == name {
			return i
		}
	}
	return -1
}

// FromNetlist builds an SDF File out of a dense annotation, for writing.
func FromNetlist(nl *netlist.Netlist, d *Delays) *File {
	f := &File{Design: nl.Name, Timescale: 1}
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		c := Cell{CellType: inst.Type.Name, Instance: inst.Name}
		for out, outPin := range inst.Type.Outputs {
			if inst.OutNets[out] < 0 {
				continue
			}
			for in, inPin := range inst.Type.Inputs {
				c.Paths = append(c.Paths, IOPath{
					From:  inPin,
					To:    outPin,
					Delay: d.Arc(netlist.CellID(i), out, in),
				})
			}
		}
		if len(c.Paths) > 0 {
			f.Cells = append(f.Cells, c)
		}
	}
	sort.Slice(f.Cells, func(a, b int) bool { return f.Cells[a].Instance < f.Cells[b].Instance })
	return f
}

// FromLibrary builds a delay annotation from the Liberty timing arcs parsed
// into the cell library (worst-case cell_rise/cell_fall per pin pair),
// scaled by the library time unit into picoseconds. Arcs without library
// timing get the default; every delay is clamped to >= 1 ps. This is the
// "no SDF available" fallback used by tools.
func FromLibrary(nl *netlist.Netlist, def Delay) *Delays {
	d := newDelays(nl, def)
	unit := nl.Lib.TimeUnitPS
	if unit <= 0 {
		unit = 1000
	}
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		ni := len(inst.Type.Inputs)
		for out, outPin := range inst.Type.Outputs {
			pin := inst.Type.Pin(outPin)
			for _, arc := range pin.Timing {
				in := pinIndexOf(inst.Type.Inputs, arc.RelatedPin)
				if in < 0 {
					continue
				}
				rise := int64(arc.Rise*unit + 0.5)
				fall := int64(arc.Fall*unit + 0.5)
				if rise < 1 {
					rise = 1
				}
				if fall < 1 {
					fall = 1
				}
				d.perInstance[i][out*ni+in] = Delay{Rise: rise, Fall: fall}
			}
		}
	}
	d.MinPositive = 0
	for _, arcs := range d.perInstance {
		for _, a := range arcs {
			if v := a.Min(); v > 0 && (d.MinPositive == 0 || v < d.MinPositive) {
				d.MinPositive = v
			}
		}
	}
	return d
}
