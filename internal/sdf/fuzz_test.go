package sdf

// Fuzz target for the SDF parser: arbitrary input must produce either a
// parsed file or an error — never a panic. scripts/check.sh runs this as a
// short smoke stage; `make fuzz` runs it longer.

import "testing"

func FuzzParseSDF(f *testing.F) {
	f.Add(sampleSDF)
	f.Add(`(DELAYFILE (SDFVERSION "3.0") (TIMESCALE 10ps))`)
	f.Add(`(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE a.b.c) (DELAY (ABSOLUTE (IOPATH A Y (1:2:3))))))`)
	f.Add(`(DELAYFILE (TIMESCALE 1 ns) (CELL`)
	f.Add(`(DELAYFILE (CELL (DELAY (ABSOLUTE (IOPATH A Y () ())))))`)
	f.Add(`)))((`)
	f.Fuzz(func(t *testing.T, src string) {
		if file, err := Parse(src); err == nil && file == nil {
			t.Error("Parse: nil file without error")
		}
	})
}
