// Package levelize computes the combinational levelization of a netlist
// (paper §III-D.1): after deleting every edge that passes *through* a
// sequential element (its outputs depend on internal state, not
// combinationally on its inputs), the remaining graph of combinational
// dependencies is acyclic and can be sorted into levels whose members are
// mutually independent — the units of oblivious parallelism in Algorithm 2.
//
// Sequential cells form a dedicated level that every sweep processes first:
// their output events are generated from input events of the *previous*
// sweep, which is exactly the fixpoint iteration that replaces cross-cycle
// ordering.
package levelize

import (
	"fmt"
	"strings"

	"gatesim/internal/netlist"
)

// Levelization is the parallel execution plan for one netlist.
type Levelization struct {
	// Sequential holds every sequential instance; they are processed as the
	// first "level" of each sweep (mutually independent by construction,
	// since their internal input->output edges are removed).
	Sequential []netlist.CellID
	// Levels holds the combinational instances in topological levels: every
	// combinational arc goes from a lower level (or a sequential output or
	// primary input) to a higher level.
	Levels [][]netlist.CellID
	// LevelOf[cell] is the level index of a combinational cell, or -1 for
	// sequential cells.
	LevelOf []int
}

// Compute levelizes the netlist. It returns an error describing a cycle if
// the design contains a purely combinational loop (which the stable-time
// mechanism cannot break — only loops through sequential elements are
// legal).
func Compute(nl *netlist.Netlist) (*Levelization, error) {
	n := len(nl.Instances)
	lv := &Levelization{LevelOf: make([]int, n)}

	// indegree over combinational instances: one count per input driven by
	// another *combinational* instance.
	indeg := make([]int, n)
	isSeq := make([]bool, n)
	for i := range nl.Instances {
		isSeq[i] = nl.Instances[i].Type.IsSequential()
		lv.LevelOf[i] = -1
	}
	for i := range nl.Instances {
		if isSeq[i] {
			lv.Sequential = append(lv.Sequential, netlist.CellID(i))
			continue
		}
		for _, nid := range nl.Instances[i].InNets {
			drv := nl.Nets[nid].Driver
			if drv >= 0 && !isSeq[drv] {
				indeg[i]++
			}
		}
	}

	// Kahn's algorithm, level by level.
	current := make([]netlist.CellID, 0)
	for i := 0; i < n; i++ {
		if !isSeq[i] && indeg[i] == 0 {
			current = append(current, netlist.CellID(i))
		}
	}
	placed := len(lv.Sequential)
	level := 0
	for len(current) > 0 {
		lv.Levels = append(lv.Levels, current)
		var next []netlist.CellID
		for _, id := range current {
			lv.LevelOf[id] = level
			placed++
			inst := &nl.Instances[id]
			for _, out := range inst.OutNets {
				if out < 0 {
					continue
				}
				for _, load := range nl.Nets[out].Fanout {
					if isSeq[load.Cell] {
						continue
					}
					indeg[load.Cell]--
					if indeg[load.Cell] == 0 {
						next = append(next, load.Cell)
					}
				}
			}
		}
		current = next
		level++
	}
	if placed != n {
		return nil, fmt.Errorf("levelize: %s", describeCycle(nl, indeg, isSeq))
	}
	return lv, nil
}

// describeCycle reports one combinational loop for diagnostics.
func describeCycle(nl *netlist.Netlist, indeg []int, isSeq []bool) string {
	// Any instance with remaining indegree is on or downstream of a cycle;
	// walk predecessors until a repeat.
	start := netlist.CellID(-1)
	for i := range indeg {
		if !isSeq[i] && indeg[i] > 0 {
			start = netlist.CellID(i)
			break
		}
	}
	if start < 0 {
		return "combinational cycle detected"
	}
	seen := make(map[netlist.CellID]int)
	var path []netlist.CellID
	cur := start
	for {
		if at, ok := seen[cur]; ok {
			names := make([]string, 0, len(path)-at+1)
			for _, id := range path[at:] {
				names = append(names, nl.Instances[id].Name)
			}
			names = append(names, nl.Instances[cur].Name)
			return "combinational cycle: " + strings.Join(names, " -> ")
		}
		seen[cur] = len(path)
		path = append(path, cur)
		// Move to any unsatisfied combinational predecessor.
		moved := false
		for _, nid := range nl.Instances[cur].InNets {
			drv := nl.Nets[nid].Driver
			if drv >= 0 && !isSeq[drv] && indeg[drv] > 0 {
				cur = drv
				moved = true
				break
			}
		}
		if !moved {
			// Predecessors all placed yet indegree > 0 cannot happen; be safe.
			return "combinational cycle involving " + nl.Instances[cur].Name
		}
	}
}

// NumCells returns the total number of instances covered by the plan.
func (lv *Levelization) NumCells() int {
	n := len(lv.Sequential)
	for _, l := range lv.Levels {
		n += len(l)
	}
	return n
}

// MaxWidth returns the size of the widest combinational level — an upper
// bound on usable oblivious parallelism.
func (lv *Levelization) MaxWidth() int {
	w := len(lv.Sequential)
	for _, l := range lv.Levels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}
