package levelize

import (
	"math/rand"
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
)

// chain builds in0 -> INV -> INV -> ... -> out
func buildChain(t *testing.T, n int) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("chain", liberty.MustBuiltin())
	if err := nl.MarkInput(nl.AddNet("n0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := nl.AddInstance(
			"u"+itoa(i), "INV",
			map[string]string{"A": "n" + itoa(i), "Y": "n" + itoa(i+1)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return nl
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestLevelizeChain(t *testing.T) {
	nl := buildChain(t, 10)
	lv, err := Compute(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Levels) != 10 {
		t.Fatalf("levels: %d", len(lv.Levels))
	}
	for i, l := range lv.Levels {
		if len(l) != 1 || lv.LevelOf[l[0]] != i {
			t.Fatalf("level %d: %v", i, l)
		}
	}
	if lv.NumCells() != 10 || lv.MaxWidth() != 1 {
		t.Errorf("NumCells=%d MaxWidth=%d", lv.NumCells(), lv.MaxWidth())
	}
}

func TestLevelizeSequentialLoop(t *testing.T) {
	// FF feedback loop: q -> INV -> d -> FF -> q. Legal because the loop
	// passes through a sequential element.
	nl := netlist.New("loop", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("clk"))
	if _, err := nl.AddInstance("inv", "INV", map[string]string{"A": "q", "Y": "d"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("ff", "DFF_P", map[string]string{"CLK": "clk", "D": "d", "Q": "q"}); err != nil {
		t.Fatal(err)
	}
	lv, err := Compute(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Sequential) != 1 || len(lv.Levels) != 1 {
		t.Fatalf("seq=%v levels=%v", lv.Sequential, lv.Levels)
	}
	if lv.LevelOf[1] != -1 { // the FF
		t.Error("sequential cell should have level -1")
	}
}

func TestLevelizeCombinationalCycle(t *testing.T) {
	// Two NAND gates cross-coupled without a sequential cell: must be
	// rejected with a cycle diagnostic.
	nl := netlist.New("sr", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("s"))
	nl.MarkInput(nl.AddNet("r"))
	if _, err := nl.AddInstance("g1", "NAND2", map[string]string{"A": "s", "B": "q2", "Y": "q1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g2", "NAND2", map[string]string{"A": "r", "B": "q1", "Y": "q2"}); err != nil {
		t.Fatal(err)
	}
	_, err := Compute(nl)
	if err == nil {
		t.Fatal("combinational cycle must be rejected")
	}
	if got := err.Error(); !contains(got, "cycle") || !contains(got, "g1") {
		t.Errorf("diagnostic not helpful: %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: on random acyclic circuits, every combinational arc goes
// strictly level-up, and every instance appears exactly once.
func TestLevelizeProperty(t *testing.T) {
	lib := liberty.MustBuiltin()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		nl := netlist.New("rand", lib)
		nl.MarkInput(nl.AddNet("clk"))
		nl.MarkInput(nl.AddNet("pi0"))
		nl.MarkInput(nl.AddNet("pi1"))
		avail := []string{"pi0", "pi1"}
		nGates := 30 + rng.Intn(50)
		for i := 0; i < nGates; i++ {
			out := "w" + itoa(i)
			pick := func() string { return avail[rng.Intn(len(avail))] }
			var err error
			switch rng.Intn(4) {
			case 0:
				_, err = nl.AddInstance("g"+itoa(i), "INV", map[string]string{"A": pick(), "Y": out})
			case 1:
				_, err = nl.AddInstance("g"+itoa(i), "NAND2", map[string]string{"A": pick(), "B": pick(), "Y": out})
			case 2:
				_, err = nl.AddInstance("g"+itoa(i), "DFF_P", map[string]string{"CLK": "clk", "D": pick(), "Q": out})
			case 3:
				_, err = nl.AddInstance("g"+itoa(i), "DLATCH_H", map[string]string{"GATE": pick(), "D": pick(), "Q": out})
			}
			if err != nil {
				t.Fatal(err)
			}
			avail = append(avail, out)
		}
		lv, err := Compute(nl)
		if err != nil {
			t.Fatal(err)
		}
		if lv.NumCells() != nGates {
			t.Fatalf("trial %d: NumCells=%d, want %d", trial, lv.NumCells(), nGates)
		}
		seen := make(map[netlist.CellID]bool)
		for _, id := range lv.Sequential {
			seen[id] = true
		}
		for _, l := range lv.Levels {
			for _, id := range l {
				if seen[id] {
					t.Fatalf("trial %d: cell %d appears twice", trial, id)
				}
				seen[id] = true
			}
		}
		// Arc property.
		for i := range nl.Instances {
			if nl.Instances[i].Type.IsSequential() {
				continue
			}
			for _, nid := range nl.Instances[i].InNets {
				drv := nl.Nets[nid].Driver
				if drv < 0 || nl.Instances[drv].Type.IsSequential() {
					continue
				}
				if lv.LevelOf[drv] >= lv.LevelOf[i] {
					t.Fatalf("trial %d: arc %d(level %d) -> %d(level %d) not level-up",
						trial, drv, lv.LevelOf[drv], i, lv.LevelOf[i])
				}
			}
		}
	}
}
