// Package timing implements dynamic timing verification on simulation event
// streams: setup and hold checks at every flip-flop capture edge. This is
// the first of the signoff tasks the paper's conclusion proposes to
// integrate with the simulator ("such as power analysis and timing analysis
// engines"); package stats provides the other.
//
// The checker subscribes to the nets feeding sequential elements and is fed
// the globally time-ordered committed event stream (for example from
// sim.Engine.RunStream). It detects each cell's active clock edges through
// the same Liberty clocked_on semantics the simulator compiles, so gated
// and inverted clocks are handled for free.
package timing

import (
	"fmt"
	"sort"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/truthtab"
)

// Kind distinguishes the two checks.
type Kind uint8

const (
	Setup Kind = iota
	Hold
)

func (k Kind) String() string {
	if k == Setup {
		return "setup"
	}
	return "hold"
}

// Violation is one failed check.
type Violation struct {
	Kind     Kind
	Instance string
	DataPin  string
	// ClockEdge and DataEdge are the event times involved.
	ClockEdge int64
	DataEdge  int64
	// Slack is negative: the margin by which the requirement failed.
	Slack int64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violation at %s.%s: data %d vs clock edge %d (slack %d ps)",
		v.Kind, v.Instance, v.DataPin, v.DataEdge, v.ClockEdge, v.Slack)
}

// Margins are the required windows in picoseconds.
type Margins struct {
	Setup int64 // data must be stable this long before the capture edge
	Hold  int64 // ... and this long after it
}

// Checker performs streaming setup/hold verification.
type Checker struct {
	margins Margins

	// Per watched sequential instance:
	cells []checkCell
	// net -> subscriptions
	subs map[netlist.NetID][]sub

	violations []Violation
}

type checkCell struct {
	name      string
	clockedOn *logic.Expr
	// clock expression variable values (by clockedOn.Vars() order).
	clkVals []logic.Value
	// data pins: net plus pin name plus last change time.
	lastEdge int64 // last active capture edge (min64 when none)
	data     []dataPin
}

type dataPin struct {
	pin        string
	lastChange int64
}

type sub struct {
	cell int32
	// role: -1..: index into clkVals when >= 0 encodes clock var index;
	// otherwise ^dataIndex.
	clkVar  int32 // -1 if not part of the clock expression
	dataIdx int32 // -1 if not a data pin
}

const minTime = -(int64(1) << 62)

// NewChecker builds a checker for every flip-flop in the netlist. Latches
// and statetable cells are skipped (their timing constraints are
// level-sensitive and out of scope).
func NewChecker(nl *netlist.Netlist, lib *truthtab.CompiledLibrary, margins Margins) (*Checker, error) {
	c := &Checker{margins: margins, subs: make(map[netlist.NetID][]sub)}
	for gi := range nl.Instances {
		inst := &nl.Instances[gi]
		ff := inst.Type.FF
		if ff == nil {
			continue
		}
		tab := lib.Tables[inst.Type.Name]
		if tab == nil {
			return nil, fmt.Errorf("timing: cell %s not compiled", inst.Type.Name)
		}
		cellIdx := int32(len(c.cells))
		cc := checkCell{
			name:      inst.Name,
			clockedOn: ff.ClockedOn,
			clkVals:   make([]logic.Value, len(ff.ClockedOn.Vars())),
			lastEdge:  minTime,
		}
		for i := range cc.clkVals {
			cc.clkVals[i] = logic.VX
		}
		// Map pins: clock-expression variables and next_state data inputs.
		clkVars := ff.ClockedOn.Vars()
		dataVars := map[string]bool{}
		for _, v := range ff.NextState.Vars() {
			dataVars[v] = true
		}
		for pi, pin := range inst.Type.Inputs {
			nid := inst.InNets[pi]
			s := sub{cell: cellIdx, clkVar: -1, dataIdx: -1}
			for vi, v := range clkVars {
				if v == pin {
					s.clkVar = int32(vi)
				}
			}
			if dataVars[pin] && s.clkVar < 0 {
				s.dataIdx = int32(len(cc.data))
				cc.data = append(cc.data, dataPin{pin: pin, lastChange: minTime})
			}
			if s.clkVar >= 0 || s.dataIdx >= 0 {
				c.subs[nid] = append(c.subs[nid], s)
			}
		}
		c.cells = append(c.cells, cc)
	}
	return c, nil
}

// WatchedNets returns the nets the checker needs events for, sorted.
func (c *Checker) WatchedNets() []netlist.NetID {
	out := make([]netlist.NetID, 0, len(c.subs))
	for nid := range c.subs {
		out = append(out, nid)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Observe consumes one committed event. Events must arrive in nondecreasing
// global time order.
func (c *Checker) Observe(nid netlist.NetID, ev event.Event) {
	for _, s := range c.subs[nid] {
		cc := &c.cells[s.cell]
		if s.clkVar >= 0 {
			c.observeClock(cc, int(s.clkVar), ev)
		}
		if s.dataIdx >= 0 {
			c.observeData(cc, int(s.dataIdx), ev)
		}
	}
}

func (c *Checker) observeClock(cc *checkCell, varIdx int, ev event.Event) {
	before := cc.clkVals[varIdx]
	after := ev.Val.Settle()
	// Active edge: clocked_on evaluates 0 -> 1 across this change.
	eb := evalClk(cc, varIdx, before)
	ea := evalClk(cc, varIdx, after)
	cc.clkVals[varIdx] = after
	if !(eb == logic.V0 && ea == logic.V1) {
		return
	}
	t := ev.Time
	cc.lastEdge = t
	for di := range cc.data {
		d := &cc.data[di]
		if d.lastChange == minTime {
			continue
		}
		if gap := t - d.lastChange; gap < c.margins.Setup {
			c.violations = append(c.violations, Violation{
				Kind: Setup, Instance: cc.name, DataPin: d.pin,
				ClockEdge: t, DataEdge: d.lastChange, Slack: gap - c.margins.Setup,
			})
		}
	}
}

func evalClk(cc *checkCell, varIdx int, v logic.Value) logic.Value {
	old := cc.clkVals[varIdx]
	cc.clkVals[varIdx] = v
	r := cc.clockedOn.EvalVec(cc.clkVals)
	cc.clkVals[varIdx] = old
	return r
}

func (c *Checker) observeData(cc *checkCell, dataIdx int, ev event.Event) {
	d := &cc.data[dataIdx]
	d.lastChange = ev.Time
	if cc.lastEdge == minTime {
		return
	}
	if gap := ev.Time - cc.lastEdge; gap < c.margins.Hold {
		c.violations = append(c.violations, Violation{
			Kind: Hold, Instance: cc.name, DataPin: d.pin,
			ClockEdge: cc.lastEdge, DataEdge: ev.Time, Slack: gap - c.margins.Hold,
		})
	}
}

// Violations returns the recorded violations in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// Summary renders a short report.
func (c *Checker) Summary(max int) string {
	if len(c.violations) == 0 {
		return "timing: no setup/hold violations\n"
	}
	out := fmt.Sprintf("timing: %d violations\n", len(c.violations))
	for i, v := range c.violations {
		if i >= max {
			out += fmt.Sprintf("  ... and %d more\n", len(c.violations)-max)
			break
		}
		out += "  " + v.String() + "\n"
	}
	return out
}
