package timing

import (
	"strings"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/truthtab"
)

func build(t *testing.T) (*netlist.Netlist, *truthtab.CompiledLibrary) {
	t.Helper()
	lib := liberty.MustBuiltin()
	cl, err := truthtab.CompileLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	nl := netlist.New("t", lib)
	for _, p := range []string{"clk", "d", "clkn", "dn"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("ffp", "DFF_P", map[string]string{"CLK": "clk", "D": "d", "Q": "q1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("ffn", "DFF_N", map[string]string{"CLK_N": "clkn", "D": "dn", "Q": "q2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("lat", "DLATCH_H", map[string]string{"GATE": "clk", "D": "d", "Q": "q3"}); err != nil {
		t.Fatal(err)
	}
	return nl, cl
}

func TestCheckerSetupHold(t *testing.T) {
	nl, cl := build(t)
	ck, err := NewChecker(nl, cl, Margins{Setup: 100, Hold: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Latches are skipped: only the two FFs' nets are watched.
	watched := ck.WatchedNets()
	if len(watched) != 4 {
		t.Fatalf("watched: %v", watched)
	}

	clk, _ := nl.Net("clk")
	d, _ := nl.Net("d")
	ob := func(nid netlist.NetID, tm int64, v logic.Value) {
		ck.Observe(nid, event.Event{Time: tm, Val: v})
	}
	// Clean cycle: d changes 500 before edge, next change 200 after.
	ob(clk, 0, logic.V0)
	ob(d, 500, logic.V1)
	ob(clk, 1000, logic.V1) // rising edge, setup gap 500 >= 100: ok
	ob(d, 1200, logic.V0)   // hold gap 200 >= 50: ok
	ob(clk, 1500, logic.V0)
	if len(ck.Violations()) != 0 {
		t.Fatalf("unexpected violations: %v", ck.Violations())
	}
	// Setup violation: d changes 30 before the edge.
	ob(d, 1970, logic.V1)
	ob(clk, 2000, logic.V1)
	// Hold violation: d changes 20 after the edge.
	ob(d, 2020, logic.V0)
	ob(clk, 2500, logic.V0)
	vs := ck.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations: %v", vs)
	}
	if vs[0].Kind != Setup || vs[0].Slack != 30-100 || vs[0].Instance != "ffp" {
		t.Errorf("setup violation wrong: %+v", vs[0])
	}
	if vs[1].Kind != Hold || vs[1].Slack != 20-50 || vs[1].DataPin != "D" {
		t.Errorf("hold violation wrong: %+v", vs[1])
	}
	if !strings.Contains(ck.Summary(10), "2 violations") {
		t.Error("summary wrong")
	}
}

func TestCheckerNegativeEdgeCell(t *testing.T) {
	nl, cl := build(t)
	ck, err := NewChecker(nl, cl, Margins{Setup: 100, Hold: 50})
	if err != nil {
		t.Fatal(err)
	}
	clkn, _ := nl.Net("clkn")
	dn, _ := nl.Net("dn")
	ob := func(nid netlist.NetID, tm int64, v logic.Value) {
		ck.Observe(nid, event.Event{Time: tm, Val: v})
	}
	ob(clkn, 0, logic.V1)
	ob(dn, 980, logic.V1)
	ob(clkn, 1000, logic.V0) // falling edge = active for DFF_N: setup gap 20
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Kind != Setup || vs[0].Instance != "ffn" {
		t.Fatalf("negative-edge violation missing: %v", vs)
	}
	// A rising edge on CLK_N must NOT be an active edge.
	ob(dn, 1490, logic.V0)
	ob(clkn, 1500, logic.V1)
	if len(ck.Violations()) != 1 {
		t.Fatalf("rising edge of negedge clock must not check: %v", ck.Violations())
	}
}

func TestCheckerCleanRun(t *testing.T) {
	nl, cl := build(t)
	ck, err := NewChecker(nl, cl, Margins{Setup: 10, Hold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := ck.Summary(5); !strings.Contains(got, "no setup/hold violations") {
		t.Errorf("summary: %q", got)
	}
}

// TestCheckerGatedClock verifies the checker follows a gated clock net:
// edges on GCLK (not the root clock) are the capture events.
func TestCheckerGatedClock(t *testing.T) {
	lib := liberty.MustBuiltin()
	cl, err := truthtab.CompileLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	nl := netlist.New("t", lib)
	for _, p := range []string{"clk", "en", "d"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("icg", "CLKGATE", map[string]string{"CLK": "clk", "GATE": "en", "GCLK": "gclk"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("ff", "DFF_P", map[string]string{"CLK": "gclk", "D": "d", "Q": "q"}); err != nil {
		t.Fatal(err)
	}
	ck, err := NewChecker(nl, cl, Margins{Setup: 100, Hold: 50})
	if err != nil {
		t.Fatal(err)
	}
	gclk, _ := nl.Net("gclk")
	d, _ := nl.Net("d")
	ob := func(nid netlist.NetID, tm int64, v logic.Value) {
		ck.Observe(nid, event.Event{Time: tm, Val: v})
	}
	ob(gclk, 0, logic.V0)
	ob(d, 970, logic.V1)
	ob(gclk, 1000, logic.V1) // gated capture edge: setup gap 30 < 100
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Instance != "ff" || vs[0].Kind != Setup {
		t.Fatalf("gated clock violation: %v", vs)
	}
}
