// Package event implements the per-net event storage of the simulator:
// first-in-first-out queues of (time, value) signal changes, stored in
// fixed-size pages.
//
// This reproduces the paper's GPU paging mechanism (§III-D.3) in a form that
// serves the same purpose on a garbage-collected runtime: every 32 events
// form a page, pages are allocated from a shared pool in large blocks, and
// pages released by a queue are kept on that queue's own free list and
// reused by the same pin — mirroring "the deallocated memory pages still
// belong to the pin it was allocated to". The result is allocation-free
// steady-state simulation regardless of trace length.
package event

import (
	"sync"
	"sync/atomic"

	"gatesim/internal/logic"
)

// PageSize is the number of events per page (the paper groups 32).
const PageSize = 32

// Event is one signal change.
type Event struct {
	Time int64
	Val  logic.Value
}

type page struct {
	times [PageSize]int64
	vals  [PageSize]logic.Value
	next  atomic.Pointer[page]
}

// Pool hands out pages in blocks; it is safe for concurrent use. The zero
// value is ready to use.
type Pool struct {
	mu    sync.Mutex
	block []page
	next  int64 // index into block, guarded by mu

	allocated atomic.Int64 // total pages ever handed out (for stats)
}

// Block sizing: the first block holds poolBlockPages pages, and each
// refill doubles the previous block so a long run amortizes to O(log n)
// block allocations, capped at poolBlockPagesMax (64K pages = 2M events)
// to bound the step size.
const (
	poolBlockPages    = 1024
	poolBlockPagesMax = 64 * 1024
)

// get returns a fresh page.
func (p *Pool) get() *page {
	p.mu.Lock()
	if int(p.next) >= len(p.block) {
		grow := len(p.block) * 2
		if grow < poolBlockPages {
			grow = poolBlockPages
		}
		if grow > poolBlockPagesMax {
			grow = poolBlockPagesMax
		}
		p.block = make([]page, grow)
		p.next = 0
	}
	pg := &p.block[p.next]
	p.next++
	p.mu.Unlock()
	p.allocated.Add(1)
	return pg
}

// AllocatedPages reports how many pages were ever handed out.
func (p *Pool) AllocatedPages() int64 { return p.allocated.Load() }

// Queue is a FIFO of events on one net.
//
// Events are addressed by a monotonically increasing absolute index:
// Append assigns indices 0, 1, 2, ...; TrimTo releases storage for a prefix
// but indices never shift. Exactly one goroutine may append at a time (each
// net has one driver gate), but readers — Len, At, cursors, the watermark
// accessors — may run concurrently with that driver: Append publishes each
// event with a release store of the end index, so a reader that observes
// index i < Len() sees the fully written event and page links behind it.
// TrimTo and Init/InitAt are excluded from this guarantee and must not
// overlap any other access (the engine trims only between sweeps).
//
// Beyond the event list the queue carries the net's stable-time state:
// DeterminedUntil is the time up to which the net's value is known (the
// paper's "stable time" watermark), and the value before the first retained
// event is kept so reads never fall off the front.
type Queue struct {
	pool *Pool

	head atomic.Pointer[page] // page containing index start
	tail *page                // page containing index end-1 (nil when empty)
	free *page                // per-pin free list (paper: freed pages stay with the pin)

	start    int64        // absolute index of first retained event
	end      atomic.Int64 // absolute index one past the last event
	headSkip int          // offset of index `start` within head page
	tailBase int64        // absolute index of tail.times[0] (valid when tail != nil)

	baseVal logic.Value // value of the net before event index `start`

	// gen counts trims (and re-inits): it increments whenever storage that a
	// cursor may reference is released. Cursors record the generation they
	// were seeked under; a mismatch forces a re-seek instead of reading a
	// page that may have been recycled through the free list. Plain field:
	// TrimTo and InitAt are already excluded from concurrent access.
	gen uint32

	// det is the exclusive time up to which the value of this net is
	// determined; at and beyond it the net reads as U. Maintained by the
	// simulator through DeterminedUntil/SetDeterminedUntil.
	det atomic.Int64
}

// NewQueue creates a queue with the given initial value (the net's value at
// the beginning of time) backed by the pool.
func NewQueue(pool *Pool, initial logic.Value) *Queue {
	q := new(Queue)
	q.Init(pool, initial)
	return q
}

// Init makes q an empty queue with the given initial value backed by the
// pool, replacing any previous state. It exists so callers can keep queues
// by value in one flat slice instead of allocating each with NewQueue.
func (q *Queue) Init(pool *Pool, initial logic.Value) {
	q.InitAt(pool, initial, 0)
}

// InitAt is Init with the first appended event receiving absolute index
// start (see NewQueueAt).
func (q *Queue) InitAt(pool *Pool, initial logic.Value, start int64) {
	q.pool = pool
	q.head.Store(nil)
	q.tail = nil
	q.free = nil
	q.start = start
	q.end.Store(start)
	q.headSkip = 0
	q.tailBase = 0
	q.baseVal = initial
	q.gen++ // any surviving cursor must re-seek, never read recycled pages
	q.det.Store(0)
}

// DeterminedUntil returns the exclusive time up to which the net's value is
// determined (the stable-time watermark): the value is known for every time
// strictly below the watermark and undetermined (U) from it onward.
//
// Exclusivity fixes the wakeup boundary when the watermark moves from wOld
// to wNew. A reader whose own determination frontier (gate.detUntil, also
// exclusive) equals wOld was blocked precisely on this net's instant wOld —
// the first time the old watermark left undetermined — so the advance
// unblocks it: frontiers at exactly wOld must be woken. A frontier at
// wOld-1 (or anywhere below) was already looking at a determined instant
// and is stalled on something else; this advance gives it nothing. Hence
// sim's markLoads marks readers with detUntil >= wOld, strictly-greater is
// not enough and greater-equal-wNew is too late (see sim/gate.go markLoads
// and TestMarkLoadsBoundary).
func (q *Queue) DeterminedUntil() int64 { return q.det.Load() }

// SetDeterminedUntil advances (or rewinds, during snapshot restore) the
// stable-time watermark. Only the net's driver may call it.
func (q *Queue) SetDeterminedUntil(t int64) { q.det.Store(t) }

// Len returns the absolute index one past the last event.
func (q *Queue) Len() int64 { return q.end.Load() }

// Start returns the absolute index of the first retained event.
func (q *Queue) Start() int64 { return q.start }

// BaseVal returns the net value immediately before event Start().
func (q *Queue) BaseVal() logic.Value { return q.baseVal }

// Append adds an event. Time must not decrease versus the previous event.
func (q *Queue) Append(t int64, v logic.Value) {
	end := q.end.Load()
	if q.tail == nil || end-q.tailBase == PageSize {
		pg := q.takePage()
		if q.tail == nil {
			// tail == nil implies start == end and headSkip == 0 (a fresh
			// queue, or TrimTo consumed everything), so only the head pointer
			// needs setting.
			q.head.Store(pg)
			q.tail = pg
		} else {
			q.tail.next.Store(pg)
			q.tail = pg
		}
		q.tailBase = end
	}
	off := end - q.tailBase
	q.tail.times[off] = t
	q.tail.vals[off] = v
	q.end.Store(end + 1) // publication point for concurrent readers
}

func (q *Queue) takePage() *page {
	if q.free != nil {
		pg := q.free
		q.free = pg.next.Load()
		pg.next.Store(nil)
		return pg
	}
	return q.pool.get()
}

// At returns the event at absolute index i, with ok=false when i lies
// outside [Start(), Len()). This is the accessor for code whose index may
// come from outside the queue's own invariants (external consumers of
// sim.Engine.Events, stale read marks, snapshot tooling): an out-of-range
// index reports failure instead of crashing the process.
func (q *Queue) At(i int64) (Event, bool) {
	if i < q.start || i >= q.end.Load() {
		return Event{}, false
	}
	return q.at(i), true
}

// MustAt is At for callers that have already established i ∈ [Start(),
// Len()) — typically loops bounded by those accessors. It panics on an
// out-of-range index; that panic marks a caller bug, never a data-dependent
// condition.
func (q *Queue) MustAt(i int64) Event {
	if i < q.start || i >= q.end.Load() {
		panic("event: MustAt index out of range (caller violated its bounds check)")
	}
	return q.at(i)
}

// at reads event i without bounds checking; callers must have validated i.
func (q *Queue) at(i int64) Event {
	// Walk from head. Consumers overwhelmingly read near their cursor and
	// the prefix is trimmed regularly, so the walk is short; the engine
	// additionally caches (page, index) cursors via Cursor.
	pg := q.head.Load()
	idx := q.start - int64(q.headSkip) // absolute index of pg.times[0]
	for i-idx >= PageSize {
		pg = pg.next.Load()
		idx += PageSize
	}
	return Event{Time: pg.times[i-idx], Val: pg.vals[i-idx]}
}

// LastTime returns the time of the last event, or min64 when no event was
// ever appended. Driver-only: it touches the tail page directly.
func (q *Queue) LastTime() int64 {
	end := q.end.Load()
	if end == q.start {
		return -1 << 62
	}
	return q.tail.times[end-1-q.tailBase]
}

// LastVal returns the value after the last event (or the base value when
// empty). Driver-only: it touches the tail page directly.
func (q *Queue) LastVal() logic.Value {
	end := q.end.Load()
	if end == q.start {
		return q.baseVal
	}
	return q.tail.vals[end-1-q.tailBase]
}

// TrimTo releases events with absolute index < keep. The value before the
// new start is preserved as the base value. Fully consumed pages return to
// the queue's free list. Must not run concurrently with any other access.
func (q *Queue) TrimTo(keep int64) {
	end := q.end.Load()
	if keep > end {
		keep = end
	}
	if keep <= q.start {
		return
	}
	// Record the value right before `keep`; keep-1 ∈ [start, end) was just
	// established above.
	q.baseVal = q.at(keep - 1).Val
	// Release whole pages that fall entirely before keep.
	pgStart := q.start - int64(q.headSkip)
	for {
		pg := q.head.Load()
		if pg == nil || pgStart+PageSize > keep {
			break
		}
		q.head.Store(pg.next.Load())
		if q.head.Load() == nil {
			q.tail = nil
		}
		pg.next.Store(q.free)
		q.free = pg
		pgStart += PageSize
	}
	q.start = keep
	q.gen++ // invalidate cursors: released pages may be recycled by Append
	if q.head.Load() == nil {
		// Everything gone; reset offsets so the next Append starts cleanly.
		q.headSkip = 0
		if keep == end {
			q.tail = nil
		}
	} else {
		q.headSkip = int(keep - pgStart)
	}
}

// Cursor is a cached read position into a queue, letting a consumer read
// sequential events in O(1) without re-walking the page list.
type Cursor struct {
	pg     *page
	pgBase int64  // absolute index of pg.times[0]
	gen    uint32 // queue trim generation the cached page belongs to
	Idx    int64  // next absolute index to read
}

// NewCursor positions a cursor at absolute index idx (>= q.Start()).
func (q *Queue) NewCursor(idx int64) Cursor {
	c := Cursor{Idx: idx}
	c.seek(q)
	return c
}

func (c *Cursor) seek(q *Queue) {
	if c.Idx < q.start {
		// The cursor points below the retained prefix: TrimTo released the
		// events it was reading. Silently re-seeking would return a wrong
		// event (the old behaviour was "undefined"); the caller violated the
		// retention contract (readMarks / baseCur bound every TrimTo), so
		// fail loudly at the point of damage.
		panic("event: cursor invalidated by TrimTo (Idx below retained start)")
	}
	c.pg = q.head.Load()
	c.pgBase = q.start - int64(q.headSkip)
	c.gen = q.gen
	for c.pg != nil && c.Idx-c.pgBase >= PageSize {
		c.pg = c.pg.next.Load()
		c.pgBase += PageSize
	}
}

// Peek returns the event at the cursor without advancing; the cursor must
// be in [q.Start(), q.Len()) and belong to q. A cursor that survived a
// TrimTo re-seeks (its cached page may have been recycled); if the trim
// released the cursor's own position, Peek panics instead of returning an
// event from a recycled page.
func (c *Cursor) Peek(q *Queue) Event {
	if c.pg == nil || c.gen != q.gen || c.Idx < c.pgBase || c.Idx-c.pgBase >= PageSize {
		c.seek(q)
	}
	return Event{Time: c.pg.times[c.Idx-c.pgBase], Val: c.pg.vals[c.Idx-c.pgBase]}
}

// Advance moves the cursor one event forward.
func (c *Cursor) Advance() {
	c.Idx++
	if c.pg != nil && c.Idx-c.pgBase >= PageSize {
		c.pg = c.pg.next.Load()
		c.pgBase += PageSize
	}
}

// NewQueueAt creates a queue whose first appended event receives absolute
// index start — used when reconstructing queues from snapshots so that
// consumer cursors (which store absolute indices) stay valid.
func NewQueueAt(pool *Pool, initial logic.Value, start int64) *Queue {
	q := new(Queue)
	q.InitAt(pool, initial, start)
	return q
}

// SeekAfter positions a cursor at the first event with Time > t and returns
// the net's value at time t (after every event with Time <= t). Whole pages
// are skipped by their last retained event — the paged layout doubles as a
// change-point index, so the walk is O(pages), not O(events). Reader-safe
// like At: it only follows published links below Len().
func (q *Queue) SeekAfter(t int64) (Cursor, logic.Value) {
	val := q.baseVal
	end := q.end.Load()
	c := Cursor{pg: q.head.Load(), pgBase: q.start - int64(q.headSkip), gen: q.gen, Idx: q.start}
	for c.pg != nil && c.Idx < end {
		last := c.pgBase + PageSize - 1
		if last > end-1 {
			last = end - 1
		}
		if c.pg.times[last-c.pgBase] <= t {
			// Every retained event on this page is at or below t: take the
			// page's final value and hop to the next page in one step.
			val = c.pg.vals[last-c.pgBase]
			c.Idx = last + 1
			if c.Idx >= end {
				break
			}
			c.pg = c.pg.next.Load()
			c.pgBase += PageSize
			continue
		}
		for c.pg.times[c.Idx-c.pgBase] <= t {
			val = c.pg.vals[c.Idx-c.pgBase]
			c.Idx++
		}
		break
	}
	return c, val
}

// Reader is a persistent per-consumer read position that answers monotone
// value queries in O(changes in window): ValueAt(q, t) costs one cursor
// advance per event between the previous query time and t, instead of a
// re-walk from the consumer's last retained position. A reader survives
// TrimTo — if the trim released its position it restarts from the base
// value via SeekAfter (page-skipping), and a backward query time likewise
// restarts rather than failing. The zero value is ready to use.
type Reader struct {
	cur   Cursor
	val   logic.Value
	lastT int64
	ok    bool
}

// ValueAt returns the net's committed value at time t: the value after
// every event with Time <= t, ignoring the determinedness watermark (the
// caller decides whether t is inside the determined region). Queries on the
// same queue with nondecreasing t are O(events in (lastT, t]); a backward t
// or an invalidating trim costs one page-skipping re-seek.
func (r *Reader) ValueAt(q *Queue, t int64) logic.Value {
	if !r.ok || t < r.lastT || r.cur.Idx < q.start {
		r.cur, r.val = q.SeekAfter(t)
		r.lastT = t
		r.ok = true
		return r.val
	}
	r.lastT = t
	end := q.Len()
	for r.cur.Idx < end {
		ev := r.cur.Peek(q)
		if ev.Time > t {
			break
		}
		r.val = ev.Val
		r.cur.Advance()
	}
	return r.val
}
