package event

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gatesim/internal/logic"
)

func TestQueueBasic(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	if q.Len() != 0 || q.Start() != 0 || q.BaseVal() != logic.V0 {
		t.Fatal("empty queue state wrong")
	}
	if q.LastVal() != logic.V0 {
		t.Error("LastVal of empty queue should be base value")
	}
	q.Append(10, logic.V1)
	q.Append(20, logic.V0)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if e := q.MustAt(0); e.Time != 10 || e.Val != logic.V1 {
		t.Errorf("At(0) = %+v", e)
	}
	if e := q.MustAt(1); e.Time != 20 || e.Val != logic.V0 {
		t.Errorf("At(1) = %+v", e)
	}
	if q.LastTime() != 20 || q.LastVal() != logic.V0 {
		t.Errorf("last: %d %v", q.LastTime(), q.LastVal())
	}
}

func TestQueueManyPages(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	n := int64(PageSize*7 + 13)
	for i := int64(0); i < n; i++ {
		q.Append(i*5, logic.Value(i%2))
	}
	if q.Len() != n {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := int64(0); i < n; i++ {
		if e := q.MustAt(i); e.Time != i*5 || e.Val != logic.Value(i%2) {
			t.Fatalf("At(%d) = %+v", i, e)
		}
	}
}

func TestQueueTrim(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.VX)
	for i := int64(0); i < 100; i++ {
		q.Append(i, logic.Value(i%4))
	}
	q.TrimTo(50)
	if q.Start() != 50 || q.Len() != 100 {
		t.Fatalf("after trim: start=%d len=%d", q.Start(), q.Len())
	}
	if q.BaseVal() != logic.Value(49%4) {
		t.Errorf("BaseVal = %v", q.BaseVal())
	}
	for i := int64(50); i < 100; i++ {
		if e := q.MustAt(i); e.Time != i {
			t.Fatalf("At(%d) = %+v", i, e)
		}
	}
	// Trimming backwards is a no-op.
	q.TrimTo(10)
	if q.Start() != 50 {
		t.Error("backwards trim must be a no-op")
	}
	// Trim everything, including beyond the end (clamped).
	q.TrimTo(200)
	if q.Start() != 100 || q.Len() != 100 {
		t.Fatalf("full trim: start=%d len=%d", q.Start(), q.Len())
	}
	if q.BaseVal() != logic.Value(99%4) {
		t.Errorf("BaseVal after full trim = %v", q.BaseVal())
	}
	// Trim on the now-empty queue must not panic.
	q.TrimTo(300)
	// Appending after a full trim keeps indices monotone.
	q.Append(1000, logic.V1)
	if q.Len() != 101 || q.MustAt(100).Time != 1000 {
		t.Fatalf("append after trim: len=%d", q.Len())
	}
}

func TestQueuePageRecycling(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	// Fill and trim repeatedly; page demand must stabilize because freed
	// pages return to this queue's free list (the paper's per-pin pools).
	for round := 0; round < 50; round++ {
		for i := 0; i < PageSize*4; i++ {
			q.Append(int64(round*1000+i), logic.V1)
		}
		q.TrimTo(q.Len())
	}
	if got := pool.AllocatedPages(); got > 8 {
		t.Errorf("pool allocated %d pages; recycling is not working", got)
	}
}

func TestPoolBlockGeometricGrowth(t *testing.T) {
	var pool Pool
	// Drain pages without recycling and watch the backing blocks: each
	// refill must double the previous block, capped at poolBlockPagesMax.
	wantBlocks := []int{poolBlockPages, 2 * poolBlockPages, 4 * poolBlockPages}
	total := 0
	for _, want := range wantBlocks {
		pool.get()
		if len(pool.block) != want {
			t.Fatalf("after refill: block holds %d pages, want %d", len(pool.block), want)
		}
		for i := 1; i < want; i++ {
			pool.get()
		}
		total += want
		if got := pool.AllocatedPages(); got != int64(total) {
			t.Fatalf("AllocatedPages = %d, want %d", got, total)
		}
	}
	// The cap: growth stops doubling at poolBlockPagesMax.
	big := &Pool{block: make([]page, poolBlockPagesMax), next: poolBlockPagesMax}
	big.get()
	if len(big.block) != poolBlockPagesMax {
		t.Fatalf("capped refill: block holds %d pages, want %d", len(big.block), poolBlockPagesMax)
	}
}

func TestQueueTrimMidPage(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	for i := int64(0); i < PageSize*3; i++ {
		q.Append(i, logic.Value(i%2))
	}
	q.TrimTo(PageSize + 7) // mid-page
	if q.Start() != PageSize+7 {
		t.Fatalf("start = %d", q.Start())
	}
	for i := q.Start(); i < q.Len(); i++ {
		if e := q.MustAt(i); e.Time != i {
			t.Fatalf("At(%d).Time = %d", i, e.Time)
		}
	}
	// Continue appending across page boundaries.
	for i := int64(PageSize * 3); i < PageSize*6; i++ {
		q.Append(i, logic.V0)
	}
	for i := q.Start(); i < q.Len(); i++ {
		if e := q.MustAt(i); e.Time != i {
			t.Fatalf("after more appends At(%d).Time = %d", i, e.Time)
		}
	}
}

func TestCursorSequentialRead(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	n := int64(PageSize*5 + 3)
	for i := int64(0); i < n; i++ {
		q.Append(i*2, logic.Value(i%2))
	}
	c := q.NewCursor(0)
	for i := int64(0); i < n; i++ {
		e := c.Peek(q)
		if e.Time != i*2 {
			t.Fatalf("cursor at %d: %+v", i, e)
		}
		c.Advance()
	}
	if c.Idx != n {
		t.Errorf("cursor idx = %d", c.Idx)
	}
}

func TestCursorReadWhileAppending(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	c := q.NewCursor(0)
	for i := int64(0); i < PageSize*3; i++ {
		q.Append(i, logic.V1)
		if e := c.Peek(q); e.Time != i {
			t.Fatalf("peek after append %d: %+v", i, e)
		}
		c.Advance()
	}
}

func TestAtOutOfRangeReportsNotOK(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	q.Append(1, logic.V1)
	if _, ok := q.At(5); ok {
		t.Error("At(5) on a 1-event queue reported ok")
	}
	if _, ok := q.At(-1); ok {
		t.Error("At(-1) reported ok")
	}
	if ev, ok := q.At(0); !ok || ev.Time != 1 || ev.Val != logic.V1 {
		t.Errorf("At(0) = %+v, %v", ev, ok)
	}
}

func TestMustAtPanicsOutOfRange(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	q.Append(1, logic.V1)
	defer func() {
		if recover() == nil {
			t.Error("MustAt out of range should panic")
		}
	}()
	q.MustAt(5)
}

// Property test: a queue behaves exactly like a plain slice under a random
// interleaving of appends and trims.
func TestQueueMatchesSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var pool Pool
		q := NewQueue(&pool, logic.VX)
		var model []Event
		modelStart := int64(0)
		now := int64(0)
		for op := 0; op < 2000; op++ {
			if rng.Intn(4) != 0 { // append
				now += int64(rng.Intn(3))
				e := Event{Time: now, Val: logic.Value(rng.Intn(4))}
				q.Append(e.Time, e.Val)
				model = append(model, e)
			} else { // trim, sometimes beyond the end
				keep := rng.Int63n(int64(len(model)) + 3)
				q.TrimTo(keep)
				if keep > int64(len(model)) {
					keep = int64(len(model))
				}
				if keep > modelStart {
					modelStart = keep
				}
			}
			// Verify a few random reads.
			if int64(len(model)) > modelStart {
				i := modelStart + rng.Int63n(int64(len(model))-modelStart)
				if got := q.MustAt(i); got != model[i] {
					t.Fatalf("trial %d op %d: At(%d) = %+v, model %+v", trial, op, i, got, model[i])
				}
			}
			if q.Len() != int64(len(model)) || q.Start() != modelStart {
				t.Fatalf("trial %d op %d: len/start %d/%d vs model %d/%d",
					trial, op, q.Len(), q.Start(), len(model), modelStart)
			}
		}
	}
}

// Property (testing/quick): append preserves FIFO order and At agrees with
// LastTime/LastVal for arbitrary monotone time sequences.
func TestQueueFIFOQuick(t *testing.T) {
	f := func(deltas []uint8, vals []uint8) bool {
		var pool Pool
		q := NewQueue(&pool, logic.V0)
		now := int64(0)
		n := len(deltas)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			now += int64(deltas[i])
			q.Append(now, logic.Value(vals[i]%4))
		}
		if q.Len() != int64(n) {
			return false
		}
		prev := int64(-1)
		for i := int64(0); i < q.Len(); i++ {
			e := q.MustAt(i)
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		if n > 0 {
			last := q.MustAt(int64(n - 1))
			if q.LastTime() != last.Time || q.LastVal() != last.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewQueueAt(t *testing.T) {
	var pool Pool
	q := NewQueueAt(&pool, logic.V1, 40)
	if q.Start() != 40 || q.Len() != 40 || q.BaseVal() != logic.V1 {
		t.Fatalf("initial: start=%d len=%d", q.Start(), q.Len())
	}
	q.Append(100, logic.V0)
	if q.Len() != 41 {
		t.Fatalf("len after append: %d", q.Len())
	}
	if e := q.MustAt(40); e.Time != 100 || e.Val != logic.V0 {
		t.Fatalf("At(40) = %+v", e)
	}
	c := q.NewCursor(40)
	if e := c.Peek(q); e.Time != 100 {
		t.Fatalf("cursor peek: %+v", e)
	}
}

// TestCursorTrimInvalidation pins the hardened TrimTo contract: a cursor
// whose position survives a trim re-seeks correctly even though its cached
// page was released and recycled by later appends, and a cursor whose
// position the trim released panics loudly on the next Peek instead of
// returning an event from a recycled page (the old "behaviour is
// undefined").
func TestCursorTrimInvalidation(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.V0)
	n := int64(PageSize * 4)
	for i := int64(0); i < n; i++ {
		q.Append(i*10, logic.Value(i%2))
	}
	live := q.NewCursor(PageSize * 3) // survives the trim
	dead := q.NewCursor(PageSize * 1) // released by the trim
	if e := dead.Peek(q); e.Time != PageSize*1*10 {
		t.Fatalf("pre-trim peek: %+v", e)
	}
	q.TrimTo(PageSize * 3)
	// Recycle the released pages so a stale cursor's cached page now holds
	// unrelated events.
	for i := n; i < n+PageSize*3; i++ {
		q.Append(i*10, logic.V1)
	}
	if e := live.Peek(q); e.Time != PageSize*3*10 {
		t.Errorf("surviving cursor read a recycled page: %+v", e)
	}
	live.Advance()
	if e := live.Peek(q); e.Time != (PageSize*3+1)*10 {
		t.Errorf("surviving cursor after advance: %+v", e)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Peek on a trim-invalidated cursor must panic")
			}
		}()
		dead.Peek(q)
	}()
}

// TestSeekAfterAndReader pins the change-point index and the persistent
// reader: SeekAfter answers a point-in-time value with page skipping, and
// Reader answers monotone queries incrementally, surviving trims and
// backward query times by re-seeking.
func TestSeekAfterAndReader(t *testing.T) {
	var pool Pool
	q := NewQueue(&pool, logic.VX)
	n := int64(PageSize*5 + 7)
	for i := int64(0); i < n; i++ {
		q.Append(i*10, logic.Value(i%3))
	}
	model := func(tm int64) logic.Value {
		v := logic.VX
		for i := int64(0); i < n; i++ {
			if i*10 > tm {
				break
			}
			v = logic.Value(i % 3)
		}
		return v
	}
	for _, tm := range []int64{-1, 0, 5, 10, 155, PageSize * 10, n*10 - 10, n * 10, n * 100} {
		_, v := q.SeekAfter(tm)
		if v != model(tm) {
			t.Errorf("SeekAfter(%d) value = %v, want %v", tm, v, model(tm))
		}
	}
	var r Reader
	for tm := int64(0); tm < n*10+20; tm += 7 {
		if v := r.ValueAt(q, tm); v != model(tm) {
			t.Fatalf("ValueAt(%d) = %v, want %v", tm, v, model(tm))
		}
	}
	// Backward query restarts.
	if v := r.ValueAt(q, 25); v != model(25) {
		t.Errorf("backward ValueAt(25) = %v, want %v", v, model(25))
	}
	// A trim that releases the reader's position restarts from the new base.
	r2 := Reader{}
	if v := r2.ValueAt(q, 15); v != model(15) {
		t.Fatal("reader warmup")
	}
	q.TrimTo(PageSize * 2)
	// Below the retained window only the folded base value survives — the
	// same answer the pre-hardening O(events) scan gave.
	if v := r2.ValueAt(q, 20); v != q.BaseVal() {
		t.Errorf("post-trim ValueAt(20) = %v, want base %v", v, q.BaseVal())
	}
	if v := r2.ValueAt(q, PageSize*2*10+5); v != model(PageSize*2*10+5) {
		t.Errorf("post-trim ValueAt(in-window) = %v, want %v", v, model(PageSize*2*10+5))
	}
	if v := r2.ValueAt(q, n*10); v != model(n*10) {
		t.Errorf("post-trim ValueAt(end) = %v, want %v", v, model(n*10))
	}
}
