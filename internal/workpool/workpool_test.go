package workpool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryItem(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 63, 256, 1000} {
		hits := make([]atomic.Int32, max(n, 1))
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := 0; i < n; i++ {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: item %d executed %d times", n, i, got)
			}
		}
	}
}

func TestRunManyRoundsReuseWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	var sum atomic.Int64
	for round := 0; round < 500; round++ {
		p.Run(16, func(i int) { sum.Add(int64(i)) })
	}
	if got, want := sum.Load(), int64(500*16*15/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	st := p.Stats()
	if st.Spawned != 3 {
		t.Errorf("spawned %d helpers across 500 rounds, want 3", st.Spawned)
	}
	if st.Rounds != 500 {
		t.Errorf("rounds = %d, want 500", st.Rounds)
	}
}

func TestParallelismOneRunsInline(t *testing.T) {
	p := New(1)
	n := runtime.NumGoroutine()
	ran := 0
	p.Run(10, func(int) { ran++ })
	if ran != 10 {
		t.Fatalf("ran %d items", ran)
	}
	if got := runtime.NumGoroutine(); got > n {
		t.Errorf("inline pool grew goroutines: %d -> %d", n, got)
	}
	p.Close() // no-op on a never-started pool
}

func TestCloseJoinsAndRestarts(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	before := runtime.NumGoroutine()
	p.Run(64, func(int) {})
	if p.Stats().Spawned == 0 {
		t.Fatal("pool never started helpers")
	}
	p.Close()
	// Close joins via WaitGroup, so the helpers are gone synchronously —
	// but unrelated goroutines (earlier tests' workers, runtime helpers)
	// wind down asynchronously, so poll instead of sampling once.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked across Close: %d -> %d", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(time.Millisecond)
	}
	p.Close() // idempotent
	// The pool restarts lazily after Close.
	var hits atomic.Int64
	p.Run(64, func(int) { hits.Add(1) })
	if hits.Load() != 64 {
		t.Fatalf("post-Close round ran %d/64 items", hits.Load())
	}
	if st := p.Stats(); st.Spawned != 6 {
		t.Errorf("spawned = %d after restart, want 6", st.Spawned)
	}
	p.Close()
}

func TestRunContainsFnPanic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	var hits atomic.Int64
	err := p.Run(256, func(i int) {
		if i == 97 {
			panic("boom")
		}
		hits.Add(1)
	})
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("Run returned %v, want *PanicError", err)
	}
	if pe.Value != "boom" || pe.Item != 97 || !pe.Started {
		t.Errorf("PanicError = %+v, want value boom, item 97, started", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	if got := hits.Load(); got != 255 {
		t.Errorf("round completed %d/255 surviving items", got)
	}
	// The pool survives a contained panic: the next round is clean.
	hits.Store(0)
	if err := p.Run(64, func(int) { hits.Add(1) }); err != nil {
		t.Fatalf("round after contained panic: %v", err)
	}
	if hits.Load() != 64 {
		t.Fatalf("post-panic round ran %d/64 items", hits.Load())
	}
}

func TestFaultHookPanicIsNotStarted(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	var ran [8]atomic.Bool
	p.FaultHook = func(item int) {
		if item == 3 {
			panic("worker died")
		}
	}
	err := p.Run(8, func(i int) { ran[i].Store(true) })
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("Run returned %v, want *PanicError", err)
	}
	if pe.Started {
		t.Error("hook panic reported Started=true; item never ran")
	}
	if pe.Item != 3 {
		t.Errorf("PanicError.Item = %d, want 3", pe.Item)
	}
	if ran[3].Load() {
		t.Error("item 3 ran despite the pre-item hook panic")
	}
	for i := 0; i < 8; i++ {
		if i != 3 && !ran[i].Load() {
			t.Errorf("item %d skipped", i)
		}
	}
	p.FaultHook = nil
}

func TestContainedPanicLeaksNoWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	before := runtime.NumGoroutine()
	p := New(4)
	for round := 0; round < 20; round++ {
		p.Run(64, func(i int) {
			if i%17 == 0 {
				panic(i)
			}
		})
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across panicking rounds: %d -> %d", before, after)
	}
}

func TestFaultHookStallDelaysButCompletes(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	var stalled atomic.Int64
	p.FaultHook = func(item int) {
		if item == 0 {
			stalled.Add(1)
			time.Sleep(20 * time.Millisecond)
		}
	}
	var hits atomic.Int64
	if err := p.Run(64, func(int) { hits.Add(1) }); err != nil {
		t.Fatalf("stalled round errored: %v", err)
	}
	if hits.Load() != 64 {
		t.Fatalf("stalled round ran %d/64 items", hits.Load())
	}
	if stalled.Load() == 0 {
		t.Error("stall hook never fired")
	}
	p.FaultHook = nil
}

func TestInlinePoolContainsPanic(t *testing.T) {
	p := New(1)
	defer p.Close()
	ran := 0
	err := p.Run(4, func(i int) {
		if i == 1 {
			panic("inline boom")
		}
		ran++
	})
	pe, ok := err.(*PanicError)
	if !ok || pe.Value != "inline boom" || pe.Item != 1 {
		t.Fatalf("inline Run returned %v, want contained item-1 panic", err)
	}
	if ran != 3 {
		t.Fatalf("inline round completed %d/3 surviving items", ran)
	}
}

func TestParkedHelpersWake(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	p.Run(64, func(int) {})
	// Give every helper time to exhaust its spin budget and park.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Parks < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Stats().Parks < 3 {
		t.Skip("helpers did not park under scheduler load; nothing to verify")
	}
	// A round dispatched against parked helpers must still complete.
	var hits atomic.Int64
	p.Run(256, func(int) { hits.Add(1) })
	if hits.Load() != 256 {
		t.Fatalf("round against parked helpers ran %d/256 items", hits.Load())
	}
}
