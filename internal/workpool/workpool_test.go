package workpool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryItem(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 63, 256, 1000} {
		hits := make([]atomic.Int32, max(n, 1))
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := 0; i < n; i++ {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: item %d executed %d times", n, i, got)
			}
		}
	}
}

func TestRunManyRoundsReuseWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	var sum atomic.Int64
	for round := 0; round < 500; round++ {
		p.Run(16, func(i int) { sum.Add(int64(i)) })
	}
	if got, want := sum.Load(), int64(500*16*15/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	st := p.Stats()
	if st.Spawned != 3 {
		t.Errorf("spawned %d helpers across 500 rounds, want 3", st.Spawned)
	}
	if st.Rounds != 500 {
		t.Errorf("rounds = %d, want 500", st.Rounds)
	}
}

func TestParallelismOneRunsInline(t *testing.T) {
	p := New(1)
	n := runtime.NumGoroutine()
	ran := 0
	p.Run(10, func(int) { ran++ })
	if ran != 10 {
		t.Fatalf("ran %d items", ran)
	}
	if got := runtime.NumGoroutine(); got > n {
		t.Errorf("inline pool grew goroutines: %d -> %d", n, got)
	}
	p.Close() // no-op on a never-started pool
}

func TestCloseJoinsAndRestarts(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	before := runtime.NumGoroutine()
	p.Run(64, func(int) {})
	if p.Stats().Spawned == 0 {
		t.Fatal("pool never started helpers")
	}
	p.Close()
	// Close joins via WaitGroup, so the helpers are gone synchronously.
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across Close: %d -> %d", before, after)
	}
	p.Close() // idempotent
	// The pool restarts lazily after Close.
	var hits atomic.Int64
	p.Run(64, func(int) { hits.Add(1) })
	if hits.Load() != 64 {
		t.Fatalf("post-Close round ran %d/64 items", hits.Load())
	}
	if st := p.Stats(); st.Spawned != 6 {
		t.Errorf("spawned = %d after restart, want 6", st.Spawned)
	}
	p.Close()
}

func TestParkedHelpersWake(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := New(4)
	defer p.Close()
	p.Run(64, func(int) {})
	// Give every helper time to exhaust its spin budget and park.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Parks < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Stats().Parks < 3 {
		t.Skip("helpers did not park under scheduler load; nothing to verify")
	}
	// A round dispatched against parked helpers must still complete.
	var hits atomic.Int64
	p.Run(256, func(int) { hits.Add(1) })
	if hits.Load() != 256 {
		t.Fatalf("round against parked helpers ran %d/256 items", hits.Load())
	}
}
