// Package workpool provides the persistent spin-then-park worker pool shared
// by the level-parallel engine executor and the partitioned simulator's stage
// scans.
//
// The paper's Algorithm 2 runs each combinational level as an independent
// parallel batch; forking fresh goroutines per batch costs levels × sweeps ×
// slices launches per run — the overhead persistent GPU kernels avoid. This
// pool starts its helper goroutines once (lazily, on the first round) and
// reuses them for every subsequent round: the coordinator publishes a round,
// helpers claim work items off an atomic index, and between rounds they spin
// briefly before parking on a condition variable. Steady-state dispatch
// therefore creates zero goroutines and, when rounds arrive back-to-back,
// performs no scheduler transitions at all.
package workpool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"gatesim/internal/obs"
)

// spinRounds is how many scheduler yields a helper burns waiting for the
// next round before parking. Rounds arriving within the spin window (the
// common case: consecutive levels of one sweep) cost no futex traffic.
const spinRounds = 64

// PanicError is the containment record for a panic that escaped a work
// item. Workers run items under recover(), so a panicking fn (or FaultHook)
// kills neither the worker goroutine nor the process: the first panic of a
// round is captured here and returned from Run, and the round still runs to
// completion so coordinator-side barriers stay safe.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // goroutine stack at the panic point
	Item  int    // work item whose execution panicked
	// Started reports whether fn(Item) began executing. False means the
	// panic came from the FaultHook before the item ran: the item's work was
	// never attempted (and, for idempotent work lists, can be redone
	// serially). True means fn died mid-item and its partial effects are
	// suspect.
	Started bool
}

func (e *PanicError) Error() string {
	phase := "during"
	if !e.Started {
		phase = "before"
	}
	return fmt.Sprintf("workpool: panic %s item %d: %v", phase, e.Item, e.Value)
}

// round is the immutable-per-dispatch work descriptor. Each dispatch
// allocates a fresh one so a helper that wakes late and loads a stale
// pointer only ever sees exhausted counters — never a recycled round.
type round struct {
	n    int64
	fn   func(int)
	idx  atomic.Int64 // next work item to claim
	left atomic.Int64 // items not yet completed

	fail atomic.Pointer[PanicError] // first contained panic of the round
}

// Stats is a snapshot of the pool's scheduling counters.
type Stats struct {
	Spawned int64 // helper goroutines ever created
	Rounds  int64 // rounds dispatched to helpers
	Wakes   int64 // helpers woken from a parked state
	Parks   int64 // times a helper gave up spinning and parked
}

// Pool is a persistent spin-then-park worker pool. The zero value is not
// usable; construct with New. One goroutine (the coordinator) calls Run and
// Close; any number of helper goroutines serve rounds. A Pool whose
// parallelism is 1 never starts helpers and runs every round inline.
type Pool struct {
	helpers int // goroutines beyond the coordinator

	// FaultHook, when non-nil, runs before every work item on the worker
	// about to execute it. It exists for chaos testing only: a hook that
	// panics simulates a dying worker (contained like any other panic, with
	// Started=false), a hook that sleeps simulates a stalled or late-woken
	// worker. Set it before the first Run and never change it concurrently
	// with one.
	FaultHook func(item int)

	mu      sync.Mutex
	cond    *sync.Cond
	started bool
	closing bool
	wg      sync.WaitGroup

	epoch  atomic.Uint64 // bumped once per round; helpers spin on it
	closed atomic.Bool   // mirror of closing for spinning helpers

	cur  atomic.Pointer[round]
	done chan struct{} // one signal per round, sent by the finisher

	spawned atomic.Int64
	rounds  atomic.Int64
	wakes   atomic.Int64
	parks   atomic.Int64

	// obs mirrors of the counters above; nil (the default) is the disabled
	// path. Set once via Observe before the first Run.
	obsSpawned *obs.Counter
	obsRounds  *obs.Counter
	obsWakes   *obs.Counter
	obsParks   *obs.Counter
}

// New returns a pool with the given total parallelism (coordinator
// included); parallelism-1 helper goroutines are started lazily on the
// first Run that can use them.
func New(parallelism int) *Pool {
	if parallelism < 1 {
		parallelism = 1
	}
	p := &Pool{helpers: parallelism - 1, done: make(chan struct{}, 1)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Parallelism reports the total worker count, coordinator included.
func (p *Pool) Parallelism() int { return p.helpers + 1 }

// Observe mirrors the pool's scheduling counters into obs instruments so
// claim/park/wake activity shows up in metric reports and trace counter
// tracks. Any (or all) counters may be nil — a nil instrument's record site
// is a single pointer test. Call before the first Run, like FaultHook.
func (p *Pool) Observe(spawned, rounds, wakes, parks *obs.Counter) {
	p.obsSpawned, p.obsRounds = spawned, rounds
	p.obsWakes, p.obsParks = wakes, parks
}

// Stats returns a snapshot of the scheduling counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Spawned: p.spawned.Load(),
		Rounds:  p.rounds.Load(),
		Wakes:   p.wakes.Load(),
		Parks:   p.parks.Load(),
	}
}

// Run executes fn(0) … fn(n-1) across the pool and returns when all calls
// have completed. The coordinator participates, so Run makes progress even
// with every helper parked. Distinct invocations fn(i) may run concurrently;
// Run itself must only be called from the coordinating goroutine.
//
// Panics inside fn (or the FaultHook) are contained: the worker recovers,
// the round still completes every remaining item, and Run returns the first
// captured panic as a *PanicError. A nil return means every item executed
// without panicking.
func (p *Pool) Run(n int, fn func(int)) error {
	if n <= 0 {
		return nil
	}
	if p.helpers == 0 || n == 1 {
		r := &round{n: int64(n), fn: fn}
		for i := 0; i < n; i++ {
			p.runItem(r, int64(i))
		}
		if pe := r.fail.Load(); pe != nil {
			return pe
		}
		return nil
	}
	p.ensureStarted()
	r := &round{n: int64(n), fn: fn}
	r.left.Store(int64(n))
	p.cur.Store(r)
	p.rounds.Add(1)
	p.obsRounds.Inc()
	// The epoch bump is the publication point: helpers that observe it (by
	// spinning or by waking) load the round pointer afterwards. Bumping
	// under the mutex pairs with the recheck helpers do before parking, so
	// a round can never slip between "checked epoch" and "parked".
	p.mu.Lock()
	p.epoch.Add(1)
	p.mu.Unlock()
	p.cond.Broadcast()
	p.serve(r)
	<-p.done
	if pe := r.fail.Load(); pe != nil {
		return pe
	}
	return nil
}

// serve claims and runs work items until the round is exhausted, signalling
// completion if this worker finishes the last item.
func (p *Pool) serve(r *round) {
	for {
		i := r.idx.Add(1) - 1
		if i >= r.n {
			return
		}
		p.runItem(r, i)
		if r.left.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// runItem executes one work item under recover. A panic — whether from the
// chaos FaultHook or from fn itself — is recorded on the round (first one
// wins) instead of unwinding the worker, so the completion accounting the
// caller's barrier depends on is never lost.
func (p *Pool) runItem(r *round, i int64) {
	started := false
	defer func() {
		if v := recover(); v != nil {
			r.fail.CompareAndSwap(nil, &PanicError{
				Value: v, Stack: debug.Stack(), Item: int(i), Started: started,
			})
		}
	}()
	if h := p.FaultHook; h != nil {
		h(int(i))
	}
	started = true
	r.fn(int(i))
}

// Close parks-out and joins every helper goroutine. It is idempotent and
// must not overlap a Run call. The pool remains usable: a later Run simply
// starts fresh helpers.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.closing = true
	p.closed.Store(true)
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	p.mu.Lock()
	p.started = false
	p.closing = false
	p.closed.Store(false)
	p.mu.Unlock()
}

func (p *Pool) ensureStarted() {
	p.mu.Lock()
	if !p.started {
		p.started = true
		for i := 0; i < p.helpers; i++ {
			p.wg.Add(1)
			p.spawned.Add(1)
			p.obsSpawned.Inc()
			go p.helper(p.epoch.Load())
		}
	}
	p.mu.Unlock()
}

// helper is the long-lived worker loop: await a round, serve it, repeat.
func (p *Pool) helper(seen uint64) {
	defer p.wg.Done()
	for {
		e, ok := p.await(seen)
		if !ok {
			return
		}
		seen = e
		if r := p.cur.Load(); r != nil {
			p.serve(r)
		}
	}
}

// await spins briefly for an epoch change, then parks on the condition
// variable. It returns the new epoch, or ok=false when the pool is closing.
func (p *Pool) await(seen uint64) (uint64, bool) {
	for spin := 0; spin < spinRounds; spin++ {
		if e := p.epoch.Load(); e != seen {
			return e, true
		}
		if p.closed.Load() {
			return 0, false
		}
		runtime.Gosched()
	}
	p.mu.Lock()
	p.parks.Add(1)
	p.obsParks.Inc()
	for p.epoch.Load() == seen && !p.closing {
		p.cond.Wait()
	}
	e := p.epoch.Load()
	closing := p.closing
	p.mu.Unlock()
	if e != seen {
		p.wakes.Add(1)
		p.obsWakes.Inc()
		return e, true
	}
	return 0, !closing
}
