package liberty

import (
	"fmt"
	"sync"
)

// BuiltinSource is a self-contained Liberty library in the spirit of the
// sky130 standard cells. It covers the gate types the paper's benchmarks
// exercise: the usual combinational gates, positive- and negative-edge
// flip-flops with asynchronous set/reset, enable and scan variants, high-
// and low-transparent latches, an integrated clock-gating cell, and an SR
// latch expressed as a statetable. Areas are loosely based on relative
// sky130 cell sizes and feed the toy STA's delay model.
const BuiltinSource = `
library (gatesim_builtin) {
  /* ---- combinational ---- */
  cell (BUF) {
    area : 1.25;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "A"; }
  }
  cell (INV) {
    area : 1.0;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!A"; }
  }
  cell (CLKBUF) {
    area : 1.5;
    pin (A) { direction : input; capacitance : 1.2; }
    pin (Y) { direction : output; function : "A"; }
  }
  cell (NAND2) {
    area : 1.25;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!(A & B)"; }
  }
  cell (NAND3) {
    area : 1.5;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (C) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!(A & B & C)"; }
  }
  cell (NOR2) {
    area : 1.25;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!(A | B)"; }
  }
  cell (NOR3) {
    area : 1.5;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (C) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!(A | B | C)"; }
  }
  cell (AND2) {
    area : 1.5;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "A & B"; }
  }
  cell (OR2) {
    area : 1.5;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "A | B"; }
  }
  cell (XOR2) {
    area : 2.0;
    pin (A) { direction : input; capacitance : 1.2; }
    pin (B) { direction : input; capacitance : 1.2; }
    pin (Y) { direction : output; function : "A ^ B"; }
  }
  cell (XNOR2) {
    area : 2.0;
    pin (A) { direction : input; capacitance : 1.2; }
    pin (B) { direction : input; capacitance : 1.2; }
    pin (Y) { direction : output; function : "!(A ^ B)"; }
  }
  cell (AOI21) {
    area : 1.75;
    pin (A1) { direction : input; capacitance : 1.0; }
    pin (A2) { direction : input; capacitance : 1.0; }
    pin (B)  { direction : input; capacitance : 1.0; }
    pin (Y)  { direction : output; function : "!((A1 & A2) | B)"; }
  }
  cell (AOI22) {
    area : 2.0;
    pin (A1) { direction : input; capacitance : 1.0; }
    pin (A2) { direction : input; capacitance : 1.0; }
    pin (B1) { direction : input; capacitance : 1.0; }
    pin (B2) { direction : input; capacitance : 1.0; }
    pin (Y)  { direction : output; function : "!((A1 & A2) | (B1 & B2))"; }
  }
  cell (OAI21) {
    area : 1.75;
    pin (A1) { direction : input; capacitance : 1.0; }
    pin (A2) { direction : input; capacitance : 1.0; }
    pin (B)  { direction : input; capacitance : 1.0; }
    pin (Y)  { direction : output; function : "!((A1 | A2) & B)"; }
  }
  cell (OAI22) {
    area : 2.0;
    pin (A1) { direction : input; capacitance : 1.0; }
    pin (A2) { direction : input; capacitance : 1.0; }
    pin (B1) { direction : input; capacitance : 1.0; }
    pin (B2) { direction : input; capacitance : 1.0; }
    pin (Y)  { direction : output; function : "!((A1 | A2) & (B1 | B2))"; }
  }
  cell (MUX2) {
    area : 2.25;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (S) { direction : input; capacitance : 1.1; }
    pin (Y) { direction : output; function : "(S & B) | (!S & A)"; }
  }
  cell (HA) {
    area : 3.0;
    pin (A)    { direction : input; capacitance : 1.0; }
    pin (B)    { direction : input; capacitance : 1.0; }
    pin (SUM)  { direction : output; function : "A ^ B"; }
    pin (COUT) { direction : output; function : "A & B"; }
  }
  cell (FA) {
    area : 4.0;
    pin (A)    { direction : input; capacitance : 1.0; }
    pin (B)    { direction : input; capacitance : 1.0; }
    pin (CIN)  { direction : input; capacitance : 1.0; }
    pin (SUM)  { direction : output; function : "A ^ B ^ CIN"; }
    pin (COUT) { direction : output; function : "(A & B) | (A & CIN) | (B & CIN)"; }
  }
  cell (NAND4) {
    area : 2.0;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (C) { direction : input; capacitance : 1.0; }
    pin (D) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!(A & B & C & D)"; }
  }
  cell (NOR4) {
    area : 2.0;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (C) { direction : input; capacitance : 1.0; }
    pin (D) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "!(A | B | C | D)"; }
  }
  cell (AND3) {
    area : 1.75;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (C) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "A & B & C"; }
  }
  cell (OR3) {
    area : 1.75;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (C) { direction : input; capacitance : 1.0; }
    pin (Y) { direction : output; function : "A | B | C"; }
  }
  cell (AOI211) {
    area : 2.0;
    pin (A1) { direction : input; capacitance : 1.0; }
    pin (A2) { direction : input; capacitance : 1.0; }
    pin (B)  { direction : input; capacitance : 1.0; }
    pin (C)  { direction : input; capacitance : 1.0; }
    pin (Y)  { direction : output; function : "!((A1 & A2) | B | C)"; }
  }
  cell (OAI211) {
    area : 2.0;
    pin (A1) { direction : input; capacitance : 1.0; }
    pin (A2) { direction : input; capacitance : 1.0; }
    pin (B)  { direction : input; capacitance : 1.0; }
    pin (C)  { direction : input; capacitance : 1.0; }
    pin (Y)  { direction : output; function : "!((A1 | A2) & B & C)"; }
  }
  cell (MUX4) {
    area : 4.0;
    pin (A)  { direction : input; capacitance : 1.0; }
    pin (B)  { direction : input; capacitance : 1.0; }
    pin (C)  { direction : input; capacitance : 1.0; }
    pin (D)  { direction : input; capacitance : 1.0; }
    pin (S0) { direction : input; capacitance : 1.1; }
    pin (S1) { direction : input; capacitance : 1.1; }
    pin (Y)  { direction : output; function : "(!S1 & !S0 & A) | (!S1 & S0 & B) | (S1 & !S0 & C) | (S1 & S0 & D)"; }
  }
  cell (TIEHI) {
    area : 0.75;
    pin (Y) { direction : output; function : "1"; }
  }
  cell (TIELO) {
    area : 0.75;
    pin (Y) { direction : output; function : "0"; }
  }

  /* ---- flip-flops ---- */
  cell (DFF_P) {
    area : 5.0;
    ff (IQ, IQN) {
      next_state : "D";
      clocked_on : "CLK";
    }
    pin (CLK) { direction : input; capacitance : 1.0; clock : true; }
    pin (D)   { direction : input; capacitance : 1.0; }
    pin (Q)   { direction : output; function : "IQ"; }
    pin (QN)  { direction : output; function : "IQN"; }
  }
  cell (DFF_N) {
    area : 5.0;
    ff (IQ, IQN) {
      next_state : "D";
      clocked_on : "!CLK_N";
    }
    pin (CLK_N) { direction : input; capacitance : 1.0; clock : true; }
    pin (D)     { direction : input; capacitance : 1.0; }
    pin (Q)     { direction : output; function : "IQ"; }
    pin (QN)    { direction : output; function : "IQN"; }
  }
  cell (DFF_PR) {
    area : 5.5;
    ff (IQ, IQN) {
      next_state : "D";
      clocked_on : "CLK";
      clear : "!RESET_B";
    }
    pin (CLK)     { direction : input; capacitance : 1.0; clock : true; }
    pin (D)       { direction : input; capacitance : 1.0; }
    pin (RESET_B) { direction : input; capacitance : 1.0; }
    pin (Q)       { direction : output; function : "IQ"; }
    pin (QN)      { direction : output; function : "IQN"; }
  }
  cell (DFF_PS) {
    area : 5.5;
    ff (IQ, IQN) {
      next_state : "D";
      clocked_on : "CLK";
      preset : "!SET_B";
    }
    pin (CLK)   { direction : input; capacitance : 1.0; clock : true; }
    pin (D)     { direction : input; capacitance : 1.0; }
    pin (SET_B) { direction : input; capacitance : 1.0; }
    pin (Q)     { direction : output; function : "IQ"; }
    pin (QN)    { direction : output; function : "IQN"; }
  }
  /* The Fig. 5 cell: negative-edge DFF with low-enable set and reset. */
  cell (DFF_NSR) {
    area : 6.0;
    ff (IQ, IQN) {
      next_state : "D";
      clocked_on : "!CLK_N";
      clear : "!RESET_B";
      preset : "!SET_B";
      clear_preset_var1 : L;
      clear_preset_var2 : L;
    }
    pin (CLK_N)   { direction : input; capacitance : 1.0; clock : true; }
    pin (D)       { direction : input; capacitance : 1.0; }
    pin (SET_B)   { direction : input; capacitance : 1.0; }
    pin (RESET_B) { direction : input; capacitance : 1.0; }
    pin (Q)       { direction : output; function : "IQ"; }
    pin (QN)      { direction : output; function : "IQN"; }
  }
  /* Scan flip-flop: mux between functional D and scan-in SI. */
  cell (SDFF_P) {
    area : 6.5;
    ff (IQ, IQN) {
      next_state : "(SE & SI) | (!SE & D)";
      clocked_on : "CLK";
    }
    pin (CLK) { direction : input; capacitance : 1.0; clock : true; }
    pin (D)   { direction : input; capacitance : 1.0; }
    pin (SI)  { direction : input; capacitance : 1.0; }
    pin (SE)  { direction : input; capacitance : 1.0; }
    pin (Q)   { direction : output; function : "IQ"; }
    pin (QN)  { direction : output; function : "IQN"; }
  }
  /* Enable flip-flop: holds state while EN is low. */
  cell (DFFE_P) {
    area : 6.0;
    ff (IQ, IQN) {
      next_state : "(EN & D) | (!EN & IQ)";
      clocked_on : "CLK";
    }
    pin (CLK) { direction : input; capacitance : 1.0; clock : true; }
    pin (D)   { direction : input; capacitance : 1.0; }
    pin (EN)  { direction : input; capacitance : 1.0; }
    pin (Q)   { direction : output; function : "IQ"; }
    pin (QN)  { direction : output; function : "IQN"; }
  }

  /* ---- latches ---- */
  cell (DLATCH_H) {
    area : 3.5;
    latch (IQ, IQN) {
      data_in : "D";
      enable : "GATE";
    }
    pin (GATE) { direction : input; capacitance : 1.0; }
    pin (D)    { direction : input; capacitance : 1.0; }
    pin (Q)    { direction : output; function : "IQ"; }
  }
  cell (DLATCH_L) {
    area : 3.5;
    latch (IQ, IQN) {
      data_in : "D";
      enable : "!GATE_N";
    }
    pin (GATE_N) { direction : input; capacitance : 1.0; }
    pin (D)      { direction : input; capacitance : 1.0; }
    pin (Q)      { direction : output; function : "IQ"; }
  }
  cell (DLATCH_HR) {
    area : 4.0;
    latch (IQ, IQN) {
      data_in : "D";
      enable : "GATE";
      clear : "!RESET_B";
    }
    pin (GATE)    { direction : input; capacitance : 1.0; }
    pin (D)       { direction : input; capacitance : 1.0; }
    pin (RESET_B) { direction : input; capacitance : 1.0; }
    pin (Q)       { direction : output; function : "IQ"; }
  }

  /* Integrated clock gate: low-transparent latch on the enable plus an AND.
     While CLK is high the latch holds, so glitches on GATE cannot slip
     through; GCLK pulses only when the latched enable is high. */
  cell (CLKGATE) {
    area : 4.5;
    latch (IQ, IQN) {
      data_in : "GATE";
      enable : "!CLK";
    }
    pin (CLK)  { direction : input; capacitance : 1.2; clock : true; }
    pin (GATE) { direction : input; capacitance : 1.0; }
    pin (GCLK) { direction : output; function : "CLK & IQ"; }
  }

  /* JK flip-flop expressed as a statetable with edge tokens: hold, reset,
     set and toggle behaviour, exercising edge-sensitive statetable rows
     including current-state matching for the toggle. */
  cell (JKFF) {
    area : 6.0;
    statetable ("CK J K", "IQ") {
      table : "R L L : - : N ,                R L H : - : L ,                R H L : - : H ,                R H H : L : H ,                R H H : H : L ,                F - - : - : N ,                L - - : - : N ,                H - - : - : N ";
    }
    pin (CK) { direction : input; capacitance : 1.0; clock : true; }
    pin (J)  { direction : input; capacitance : 1.0; }
    pin (K)  { direction : input; capacitance : 1.0; }
    pin (Q)  { direction : output; function : "IQ"; }
  }

  /* NOR-style SR latch expressed as a statetable: exercises the general
     state-table path of the library compiler. */
  cell (SRLATCH) {
    area : 3.0;
    statetable ("S R", "IQ") {
      table : "H L : - : H , \
               L H : - : L , \
               L L : - : N , \
               H H : - : X ";
    }
    pin (S)  { direction : input; capacitance : 1.0; }
    pin (R)  { direction : input; capacitance : 1.0; }
    pin (Q)  { direction : output; function : "IQ"; }
  }
}
`

var (
	builtinOnce sync.Once
	builtinLib  *Library
	builtinErr  error
)

// Builtin parses and returns the built-in library. The result is cached;
// callers must not mutate it.
func Builtin() (*Library, error) {
	builtinOnce.Do(func() {
		builtinLib, builtinErr = Parse(BuiltinSource)
	})
	return builtinLib, builtinErr
}

// MustBuiltin is Builtin for tests and examples; it panics on parse failure.
// Production paths (glsim, the harness) use Builtin and surface the error.
func MustBuiltin() *Library {
	lib, err := Builtin()
	if err != nil {
		panic(fmt.Sprintf("liberty: built-in library is corrupt: %v", err))
	}
	return lib
}
