package liberty

import (
	"strings"
	"testing"

	"gatesim/internal/logic"
)

func TestParseASTBasic(t *testing.T) {
	src := `
library (test) {
  time_unit : "1ps";
  cell (INV) {
    area : 1.0;
    pin (A) { direction : input; }
    pin (Y) { direction : output; function : "!A"; }
  }
}`
	g, err := ParseAST(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "library" || len(g.Args) != 1 || g.Args[0] != "test" {
		t.Fatalf("library header wrong: %+v", g)
	}
	if v, ok := g.Attr("time_unit"); !ok || v != "1ps" {
		t.Errorf("time_unit = %q, %v", v, ok)
	}
	cells := g.SubGroups("cell")
	if len(cells) != 1 || cells[0].Args[0] != "INV" {
		t.Fatalf("cells wrong: %+v", cells)
	}
	pins := cells[0].SubGroups("pin")
	if len(pins) != 2 {
		t.Fatalf("pins wrong: %+v", pins)
	}
}

func TestParseASTComplexAttr(t *testing.T) {
	src := `library (t) { capacitive_load_unit (1, pf); cell (X) { pin (Y) { direction : output; function : "1"; } } }`
	g, err := ParseAST(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range g.Attrs {
		if a.Name == "capacitive_load_unit" {
			found = true
			if len(a.Args) != 2 || a.Args[0] != "1" || a.Args[1] != "pf" {
				t.Errorf("complex attr args = %v", a.Args)
			}
		}
	}
	if !found {
		t.Error("complex attribute not parsed")
	}
}

func TestParseASTComments(t *testing.T) {
	src := `
/* header comment
   spanning lines */
library (t) {
  // line comment
  cell (B) { /* inline */ area : 2.0;
    pin (Y) { direction : output; function : "0"; }
  }
}`
	lib, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Cells["B"].Area != 2.0 {
		t.Errorf("area = %v", lib.Cells["B"].Area)
	}
}

func TestParseASTErrors(t *testing.T) {
	bad := []string{
		``,
		`library (t) {`,
		`library (t) } {`,
		`library (t) { cell (X) { pin (Y) { direction output; } } }`,
		`library (t) { "str" : x; }`,
		`library (t) { /* unterminated`,
		`library (t) { s : "unterminated }`,
	}
	for _, src := range bad {
		if _, err := ParseAST(src); err == nil {
			t.Errorf("ParseAST(%q) should fail", src)
		}
	}
}

func TestParseSemanticErrors(t *testing.T) {
	bad := []string{
		// not a library
		`cell (X) { pin (Y) { direction : output; function : "1"; } }`,
		// missing direction
		`library (t) { cell (X) { pin (Y) { function : "1"; } } }`,
		// output without function
		`library (t) { cell (X) { pin (Y) { direction : output; } } }`,
		// ff missing clocked_on
		`library (t) { cell (X) { ff (IQ, IQN) { next_state : "D"; }
		   pin (D) { direction : input; } pin (Q) { direction : output; function : "IQ"; } } }`,
		// both ff and latch
		`library (t) { cell (X) {
		   ff (IQ, IQN) { next_state : "D"; clocked_on : "C"; }
		   latch (IP, IPN) { data_in : "D"; enable : "E"; }
		   pin (D) { direction : input; } pin (C) { direction : input; }
		   pin (E) { direction : input; } pin (Q) { direction : output; function : "IQ"; } } }`,
		// bad function expression
		`library (t) { cell (X) { pin (Y) { direction : output; function : "A &"; } pin (A) { direction : input; } } }`,
		// statetable with wrong token count
		`library (t) { cell (X) { statetable ("S R", "IQ") { table : "H : - : H"; }
		   pin (S) { direction : input; } pin (R) { direction : input; }
		   pin (Q) { direction : output; function : "IQ"; } } }`,
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail to parse", i)
		}
	}
}

func TestBuiltinParses(t *testing.T) {
	lib, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) < 25 {
		t.Fatalf("builtin library too small: %d cells", len(lib.Cells))
	}
	for _, want := range []string{"INV", "NAND2", "AOI21", "DFF_P", "DFF_NSR", "SDFF_P", "DLATCH_H", "CLKGATE", "SRLATCH", "FA", "TIEHI"} {
		if lib.Cells[want] == nil {
			t.Errorf("builtin missing cell %s", want)
		}
	}
}

// TestCorruptLibraryErrorsCleanly checks that a damaged library source is a
// returned error, never a panic — the guarantee MustBuiltin's panic message
// relies on and the property the fuzz targets defend.
func TestCorruptLibraryErrorsCleanly(t *testing.T) {
	for i, corrupt := range []string{
		BuiltinSource[:len(BuiltinSource)/2], // truncated mid-group
		strings.Replace(BuiltinSource, "function", "(", 1),
		strings.Replace(BuiltinSource, "library", "notalibrary", 1),
	} {
		if _, err := Parse(corrupt); err == nil {
			t.Errorf("case %d: corrupt source parsed without error", i)
		}
	}
}

func TestBuiltinDFFNSR(t *testing.T) {
	lib := MustBuiltin()
	c := lib.Cells["DFF_NSR"]
	if c.FF == nil {
		t.Fatal("DFF_NSR has no ff group")
	}
	if got := c.StateVars(); len(got) != 2 || got[0] != "IQ" || got[1] != "IQN" {
		t.Errorf("StateVars = %v", got)
	}
	if c.FF.Clear == nil || c.FF.Preset == nil {
		t.Fatal("clear/preset missing")
	}
	if c.FF.ClearPresetVar1 != logic.V0 || c.FF.ClearPresetVar2 != logic.V0 {
		t.Errorf("clear_preset vars = %v %v", c.FF.ClearPresetVar1, c.FF.ClearPresetVar2)
	}
	if got := c.FF.ClockedOn.Eval(map[string]logic.Value{"CLK_N": logic.V0}); got != logic.V1 {
		t.Errorf("clocked_on with CLK_N=0 = %v, want 1 (negative edge sensing)", got)
	}
	if !c.IsSequential() {
		t.Error("DFF_NSR should be sequential")
	}
	if c.Pin("CLK_N") == nil || !c.Pin("CLK_N").IsClock {
		t.Error("CLK_N should be a clock pin")
	}
}

func TestBuiltinSRLatchStatetable(t *testing.T) {
	lib := MustBuiltin()
	c := lib.Cells["SRLATCH"]
	if c.Table == nil {
		t.Fatal("SRLATCH has no statetable")
	}
	if len(c.Table.Inputs) != 2 || len(c.Table.States) != 1 {
		t.Fatalf("statetable dims: %v %v", c.Table.Inputs, c.Table.States)
	}
	if len(c.Table.Rows) != 4 {
		t.Fatalf("statetable rows: %d", len(c.Table.Rows))
	}
	r := c.Table.Rows[2] // L L : - : N
	if r.Inputs[0] != STLow || r.Inputs[1] != STLow || r.Cur[0] != STDontCare || r.Next[0] != STNoChange {
		t.Errorf("row 2 parsed wrong: %+v", r)
	}
}

func TestBuiltinCombinationalFunctions(t *testing.T) {
	lib := MustBuiltin()
	cases := []struct {
		cell string
		env  map[string]logic.Value
		pin  string
		want logic.Value
	}{
		{"NAND2", map[string]logic.Value{"A": logic.V1, "B": logic.V1}, "Y", logic.V0},
		{"NAND2", map[string]logic.Value{"A": logic.V0, "B": logic.V1}, "Y", logic.V1},
		{"AOI21", map[string]logic.Value{"A1": logic.V1, "A2": logic.V1, "B": logic.V0}, "Y", logic.V0},
		{"AOI21", map[string]logic.Value{"A1": logic.V1, "A2": logic.V0, "B": logic.V0}, "Y", logic.V1},
		{"MUX2", map[string]logic.Value{"A": logic.V1, "B": logic.V0, "S": logic.V0}, "Y", logic.V1},
		{"MUX2", map[string]logic.Value{"A": logic.V1, "B": logic.V0, "S": logic.V1}, "Y", logic.V0},
		{"FA", map[string]logic.Value{"A": logic.V1, "B": logic.V1, "CIN": logic.V0}, "SUM", logic.V0},
		{"FA", map[string]logic.Value{"A": logic.V1, "B": logic.V1, "CIN": logic.V0}, "COUT", logic.V1},
		{"TIEHI", nil, "Y", logic.V1},
		{"TIELO", nil, "Y", logic.V0},
	}
	for _, c := range cases {
		cell := lib.Cells[c.cell]
		if cell == nil {
			t.Fatalf("missing cell %s", c.cell)
		}
		got := cell.Pin(c.pin).Function.Eval(c.env)
		if got != c.want {
			t.Errorf("%s.%s under %v = %v, want %v", c.cell, c.pin, c.env, got, c.want)
		}
	}
}

func TestCellPinLookup(t *testing.T) {
	lib := MustBuiltin()
	c := lib.Cells["MUX2"]
	if c.Pin("S") == nil || c.Pin("nope") != nil {
		t.Error("Pin lookup broken")
	}
	if len(c.Inputs) != 3 || len(c.Outputs) != 1 {
		t.Errorf("MUX2 inputs=%v outputs=%v", c.Inputs, c.Outputs)
	}
}

func TestLibraryCellNamesSorted(t *testing.T) {
	lib := MustBuiltin()
	names := lib.CellNames()
	if len(names) != len(lib.Cells) {
		t.Fatal("CellNames length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) >= 0 {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestIgnoresUnknownGroups(t *testing.T) {
	src := `
library (t) {
  operating_conditions (typ) { process : 1; temperature : 25; }
  cell (G) {
    area : 1.0;
    pin (A) { direction : input;
      timing () { related_pin : "A"; cell_rise (tbl) { values ("0.1, 0.2"); } }
    }
    pin (Y) { direction : output; function : "A"; }
    leakage_power () { value : 0.1; }
  }
}`
	lib, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Cells["G"] == nil || lib.Cells["G"].Pin("Y").Function == nil {
		t.Error("cell with unknown groups not parsed")
	}
}
