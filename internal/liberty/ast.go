package liberty

import "fmt"

// Group is a node of the generic Liberty AST:
//
//	name (arg, arg, ...) { attribute : value ; subgroup (...) { ... } }
//
// Attribute values are kept as raw strings (quotes stripped); the semantic
// layer interprets the ones it knows about.
type Group struct {
	Name   string
	Args   []string
	Attrs  []Attr
	Groups []*Group
}

// Attr is a simple or complex attribute of a group. Complex attributes
// (`values ("a", "b");`) store their arguments in Args with Value empty.
type Attr struct {
	Name  string
	Value string
	Args  []string
}

// Attr returns the value of the first simple attribute with the given name
// and whether it was present.
func (g *Group) Attr(name string) (string, bool) {
	for _, a := range g.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SubGroups returns all direct subgroups with the given name.
func (g *Group) SubGroups(name string) []*Group {
	var out []*Group
	for _, sg := range g.Groups {
		if sg.Name == name {
			out = append(out, sg)
		}
	}
	return out
}

// SubGroup returns the first direct subgroup with the given name, or nil.
func (g *Group) SubGroup(name string) *Group {
	for _, sg := range g.Groups {
		if sg.Name == name {
			return sg
		}
	}
	return nil
}

type parser struct {
	lex *lexer
	tok token
	err error
}

// ParseAST parses Liberty source into its generic group AST. The root group
// is normally `library (name) { ... }`.
func ParseAST(src string) (*Group, error) {
	p := &parser{lex: newLexer(src)}
	p.advance()
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("liberty: line %d: trailing input %s", p.tok.line, p.tok)
	}
	return g, nil
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	p.tok, p.err = p.lex.next()
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.err != nil {
		return token{}, p.err
	}
	if p.tok.kind != k {
		return token{}, fmt.Errorf("liberty: line %d: expected %s, got %s", p.tok.line, what, p.tok)
	}
	t := p.tok
	p.advance()
	return t, p.err
}

func (p *parser) parseGroup() (*Group, error) {
	name, err := p.expect(tokIdent, "group name")
	if err != nil {
		return nil, err
	}
	g := &Group{Name: name.text}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRParen {
		switch p.tok.kind {
		case tokIdent, tokString, tokNumber:
			g.Args = append(g.Args, p.tok.text)
			p.advance()
		case tokComma:
			p.advance()
		default:
			return nil, fmt.Errorf("liberty: line %d: unexpected %s in group args", p.tok.line, p.tok)
		}
		if p.err != nil {
			return nil, p.err
		}
	}
	p.advance() // ')'
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.kind == tokEOF {
			return nil, fmt.Errorf("liberty: unexpected EOF in group %s", g.Name)
		}
		if err := p.parseStatement(g); err != nil {
			return nil, err
		}
	}
	p.advance() // '}'
	return g, p.err
}

// parseStatement parses one `name : value ;`, `name (args) ;` or
// `name (args) { ... }` inside a group body.
func (p *parser) parseStatement(g *Group) error {
	name, err := p.expect(tokIdent, "attribute or group name")
	if err != nil {
		return err
	}
	switch p.tok.kind {
	case tokColon:
		p.advance()
		if p.tok.kind != tokIdent && p.tok.kind != tokString && p.tok.kind != tokNumber {
			return fmt.Errorf("liberty: line %d: expected attribute value, got %s", p.tok.line, p.tok)
		}
		g.Attrs = append(g.Attrs, Attr{Name: name.text, Value: p.tok.text})
		p.advance()
		if p.tok.kind == tokSemi {
			p.advance()
		}
		return p.err
	case tokLParen:
		// Could be a complex attribute or a subgroup; decide by what follows
		// the closing paren.
		var args []string
		p.advance()
		for p.tok.kind != tokRParen {
			switch p.tok.kind {
			case tokIdent, tokString, tokNumber:
				args = append(args, p.tok.text)
				p.advance()
			case tokComma:
				p.advance()
			default:
				return fmt.Errorf("liberty: line %d: unexpected %s in args", p.tok.line, p.tok)
			}
			if p.err != nil {
				return p.err
			}
		}
		p.advance() // ')'
		if p.tok.kind == tokLBrace {
			p.advance()
			sub := &Group{Name: name.text, Args: args}
			for p.tok.kind != tokRBrace {
				if p.err != nil {
					return p.err
				}
				if p.tok.kind == tokEOF {
					return fmt.Errorf("liberty: unexpected EOF in group %s", sub.Name)
				}
				if err := p.parseStatement(sub); err != nil {
					return err
				}
			}
			p.advance() // '}'
			g.Groups = append(g.Groups, sub)
			return p.err
		}
		g.Attrs = append(g.Attrs, Attr{Name: name.text, Args: args})
		if p.tok.kind == tokSemi {
			p.advance()
		}
		return p.err
	}
	return fmt.Errorf("liberty: line %d: expected ':' or '(' after %q, got %s", p.tok.line, name.text, p.tok)
}
