package liberty

// Fuzz targets for the Liberty parser: arbitrary input must produce either a
// parsed library or an error — never a panic. scripts/check.sh runs these as
// a short smoke stage; `make fuzz` runs them longer.

import "testing"

// fuzzLibertySeed is a compact library covering every construct the parser
// handles: simple attributes, function strings, ff/latch groups, and an
// edge-sensitive statetable with line continuations. The full BuiltinSource
// is deliberately NOT a seed — at ~13 KB it starves the fuzz mutator (single-
// digit execs/sec); unit tests already parse it via Builtin().
const fuzzLibertySeed = `library (seed) {
  time_unit : "1ns";
  cell (MUX2) {
    area : 2.25;
    pin (A) { direction : input; capacitance : 1.0; }
    pin (B) { direction : input; capacitance : 1.0; }
    pin (S) { direction : input; capacitance : 1.1; }
    pin (Y) { direction : output; function : "(S & B) | (!S & A)"; }
  }
  cell (DFF_PR) {
    ff (IQ, IQN) {
      next_state : "D";
      clocked_on : "CLK";
      clear : "!RESET_B";
    }
    pin (CLK)     { direction : input; clock : true; }
    pin (D)       { direction : input; }
    pin (RESET_B) { direction : input; }
    pin (Q)       { direction : output; function : "IQ"; }
  }
  cell (DLATCH) {
    latch (IQ, IQN) {
      data_in : "D";
      enable : "GATE";
    }
    pin (GATE) { direction : input; }
    pin (D)    { direction : input; }
    pin (Q)    { direction : output; function : "IQ"; }
  }
  cell (SRLATCH) {
    statetable ("S R", "IQ") {
      table : "H L : - : H , \
               L H : - : L , \
               L L : - : N , \
               H H : - : X ";
    }
    pin (S) { direction : input; }
    pin (R) { direction : input; }
    pin (Q) { direction : output; function : "IQ"; }
  }
}`

func FuzzParseLiberty(f *testing.F) {
	f.Add(fuzzLibertySeed)
	f.Add(`library (l) { cell (INV) { pin (A) { direction : input; } pin (Y) { direction : output; function : "!A"; } } }`)
	f.Add(`library (l) { cell (FF) { ff (IQ, IQN) { next_state : "D"; clocked_on : "CK"; } pin (D) { direction : input; } } }`)
	f.Add(`library (broken) { cell (X) { pin (A) { direction : `)
	f.Add(`/* comment only */`)
	f.Add("library(l){cell(C){pin(Y){function:\"(A&B)|!C\";}}}")
	f.Fuzz(func(t *testing.T, src string) {
		if g, err := ParseAST(src); err == nil && g == nil {
			t.Error("ParseAST: nil group without error")
		}
		if lib, err := Parse(src); err == nil && lib == nil {
			t.Error("Parse: nil library without error")
		}
	})
}
