// Package liberty parses the subset of the Liberty (.lib) cell-library
// format needed for gate-level simulation: cell groups with pin directions
// and functions, and the sequential-element groups ff, latch and statetable.
//
// The parser is deliberately forgiving about attributes and groups it does
// not understand (timing arcs, power tables, operating conditions, ...): it
// parses them into the generic AST and the semantic layer ignores them, so
// real-world libraries load without modification.
package liberty

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokColon
	tokSemi
	tokComma
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("liberty: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// next returns the next token, skipping whitespace, comments and line
// continuations.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\\': // line continuation
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errorf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scanToken() (token, error) {
	c := l.src[l.pos]
	line := l.line
	switch c {
	case '{':
		l.pos++
		return token{tokLBrace, "{", line}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", line}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", line}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", line}, nil
	case ':':
		l.pos++
		return token{tokColon, ":", line}, nil
	case ';':
		l.pos++
		return token{tokSemi, ";", line}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", line}, nil
	case '"':
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				l.line++
			}
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++ // skip escaped char (commonly \ at end of line)
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated string")
		}
		text := l.src[start:l.pos]
		l.pos++ // closing quote
		// Remove line continuations inside strings (statetable rows).
		text = strings.ReplaceAll(text, "\\\n", "\n")
		return token{tokString, text, line}, nil
	}
	if isNumStart(c) {
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && isNumChar(l.src[l.pos]) {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], line}, nil
	}
	if isWordChar(c) {
		start := l.pos
		for l.pos < len(l.src) && isWordChar(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], line}, nil
	}
	return token{}, l.errorf("unexpected character %q", c)
}

func isNumStart(c byte) bool { return (c >= '0' && c <= '9') || c == '-' || c == '+' }

func isNumChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+'
}

func isWordChar(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
		c == '_' || c == '.' || c == '[' || c == ']' || c == '!' || c == '\''
}
