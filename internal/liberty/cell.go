package liberty

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gatesim/internal/logic"
)

// Direction of a pin.
type Direction uint8

const (
	DirInput Direction = iota
	DirOutput
	DirInout
	DirInternal
)

func (d Direction) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	default:
		return "internal"
	}
}

// Pin is a cell pin.
type Pin struct {
	Name     string
	Dir      Direction
	Function *logic.Expr // output function; may reference inputs and state vars
	Cap      float64     // input capacitance (arbitrary units)
	IsClock  bool        // pin declared with `clock : true`
	Timing   []TimingArc // delay arcs into this (output) pin
}

// FF models a Liberty `ff (var1, var2) { ... }` group.
type FF struct {
	Var1, Var2 string // state variable names, conventionally IQ and IQN
	NextState  *logic.Expr
	ClockedOn  *logic.Expr
	Clear      *logic.Expr // asynchronous clear, active when it evaluates to 1
	Preset     *logic.Expr // asynchronous preset, active when it evaluates to 1
	// Values of Var1/Var2 when clear and preset are simultaneously active.
	ClearPresetVar1 logic.Value
	ClearPresetVar2 logic.Value
}

// Latch models a Liberty `latch (var1, var2) { ... }` group.
type Latch struct {
	Var1, Var2      string
	DataIn          *logic.Expr
	Enable          *logic.Expr // transparent while it evaluates to 1
	Clear           *logic.Expr
	Preset          *logic.Expr
	ClearPresetVar1 logic.Value
	ClearPresetVar2 logic.Value
}

// StateTableToken is one symbol of a statetable row.
type StateTableToken uint8

const (
	STLow      StateTableToken = iota // L
	STHigh                            // H
	STDontCare                        // - (input) or unspecified
	STRise                            // R
	STFall                            // F
	STNoChange                        // N (next-state: hold current value)
	STUnknown                         // X
)

// StateTableRow is one row: input conditions, current-state conditions, and
// the resulting next state per state variable.
type StateTableRow struct {
	Inputs []StateTableToken
	Cur    []StateTableToken
	Next   []StateTableToken
}

// StateTable models a Liberty `statetable ("inputs", "states") { table: ... }`.
type StateTable struct {
	Inputs []string
	States []string
	Rows   []StateTableRow
}

// Cell is the simulation-relevant model of one library cell.
type Cell struct {
	Name    string
	Area    float64
	Pins    []Pin
	Inputs  []string // input pin names in declaration order
	Outputs []string // output pin names in declaration order
	FF      *FF
	Latch   *Latch
	Table   *StateTable
}

// IsSequential reports whether the cell holds internal state.
func (c *Cell) IsSequential() bool { return c.FF != nil || c.Latch != nil || c.Table != nil }

// StateVars returns the internal state variable names of the cell, in a
// canonical order (empty for combinational cells).
func (c *Cell) StateVars() []string {
	switch {
	case c.FF != nil:
		return seqVars(c.FF.Var1, c.FF.Var2)
	case c.Latch != nil:
		return seqVars(c.Latch.Var1, c.Latch.Var2)
	case c.Table != nil:
		return c.Table.States
	}
	return nil
}

func seqVars(v1, v2 string) []string {
	vars := []string{}
	if v1 != "" {
		vars = append(vars, v1)
	}
	if v2 != "" {
		vars = append(vars, v2)
	}
	return vars
}

// Pin returns the pin with the given name, or nil.
func (c *Cell) Pin(name string) *Pin {
	for i := range c.Pins {
		if c.Pins[i].Name == name {
			return &c.Pins[i]
		}
	}
	return nil
}

// Library is a parsed cell library.
type Library struct {
	Name  string
	Cells map[string]*Cell
	// TimeUnitPS is picoseconds per library time unit (from time_unit,
	// default 1000 = 1ns, the Liberty default).
	TimeUnitPS float64
}

// CellNames returns the sorted cell names, for deterministic iteration.
func (l *Library) CellNames() []string {
	names := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse parses Liberty source text into a Library.
func Parse(src string) (*Library, error) {
	ast, err := ParseAST(src)
	if err != nil {
		return nil, err
	}
	if ast.Name != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", ast.Name)
	}
	lib := &Library{Cells: make(map[string]*Cell), TimeUnitPS: 1000}
	if len(ast.Args) > 0 {
		lib.Name = ast.Args[0]
	}
	if tu, ok := ast.Attr("time_unit"); ok {
		if ps, err := parseTimeUnit(tu); err == nil {
			lib.TimeUnitPS = ps
		}
	}
	for _, cg := range ast.SubGroups("cell") {
		cell, err := parseCell(cg)
		if err != nil {
			return nil, err
		}
		lib.Cells[cell.Name] = cell
	}
	return lib, nil
}

func parseCell(g *Group) (*Cell, error) {
	if len(g.Args) != 1 {
		return nil, fmt.Errorf("liberty: cell group needs exactly one name argument")
	}
	c := &Cell{Name: g.Args[0]}
	if a, ok := g.Attr("area"); ok {
		if f, err := strconv.ParseFloat(a, 64); err == nil {
			c.Area = f
		}
	}
	for _, pg := range g.SubGroups("pin") {
		if len(pg.Args) != 1 {
			return nil, fmt.Errorf("liberty: cell %s: pin group needs one name", c.Name)
		}
		p := Pin{Name: pg.Args[0]}
		dir, _ := pg.Attr("direction")
		switch dir {
		case "input":
			p.Dir = DirInput
		case "output":
			p.Dir = DirOutput
		case "inout":
			p.Dir = DirInout
		case "internal":
			p.Dir = DirInternal
		default:
			return nil, fmt.Errorf("liberty: cell %s pin %s: missing or bad direction %q", c.Name, p.Name, dir)
		}
		if v, ok := pg.Attr("capacitance"); ok {
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				p.Cap = f
			}
		}
		if v, ok := pg.Attr("clock"); ok && v == "true" {
			p.IsClock = true
		}
		if fn, ok := pg.Attr("function"); ok {
			e, err := logic.ParseExpr(fn)
			if err != nil {
				return nil, fmt.Errorf("liberty: cell %s pin %s: %v", c.Name, p.Name, err)
			}
			p.Function = e
		}
		for _, tg := range pg.SubGroups("timing") {
			if arc, ok := parseTimingArc(tg); ok {
				p.Timing = append(p.Timing, arc)
			}
		}
		c.Pins = append(c.Pins, p)
		switch p.Dir {
		case DirInput:
			c.Inputs = append(c.Inputs, p.Name)
		case DirOutput:
			c.Outputs = append(c.Outputs, p.Name)
		}
	}
	if ffg := g.SubGroup("ff"); ffg != nil {
		ff, err := parseFF(c.Name, ffg)
		if err != nil {
			return nil, err
		}
		c.FF = ff
	}
	if lg := g.SubGroup("latch"); lg != nil {
		l, err := parseLatch(c.Name, lg)
		if err != nil {
			return nil, err
		}
		c.Latch = l
	}
	if st := g.SubGroup("statetable"); st != nil {
		tab, err := parseStateTable(c.Name, st)
		if err != nil {
			return nil, err
		}
		c.Table = tab
	}
	if n := boolToInt(c.FF != nil) + boolToInt(c.Latch != nil) + boolToInt(c.Table != nil); n > 1 {
		return nil, fmt.Errorf("liberty: cell %s: multiple sequential groups", c.Name)
	}
	// Every output needs a function; sequential outputs reference state vars.
	for _, out := range c.Outputs {
		if c.Pin(out).Function == nil {
			return nil, fmt.Errorf("liberty: cell %s output %s has no function", c.Name, out)
		}
	}
	return c, nil
}

// parseTimeUnit converts "1ns"/"10ps"-style units to picoseconds.
func parseTimeUnit(s string) (float64, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	var num string
	switch {
	case strings.HasSuffix(s, "ps"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		num, mult = s[:len(s)-2], 1000
	case strings.HasSuffix(s, "us"):
		num, mult = s[:len(s)-2], 1e6
	default:
		return 0, fmt.Errorf("liberty: unsupported time_unit %q", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, err
	}
	return f * mult, nil
}

// parseTimingArc extracts the worst rise/fall delay from a timing group.
// Both scalar values (`cell_rise (scalar) { values ("0.12"); }`) and tables
// (the maximum entry) are supported; groups without delays (constraint
// checks, tristate arcs) are skipped.
func parseTimingArc(g *Group) (TimingArc, bool) {
	arc := TimingArc{}
	if rp, ok := g.Attr("related_pin"); ok {
		arc.RelatedPin = strings.Trim(rp, `"`)
	} else {
		return arc, false
	}
	read := func(name string) (float64, bool) {
		sub := g.SubGroup(name)
		if sub == nil {
			return 0, false
		}
		max := 0.0
		found := false
		for _, a := range sub.Attrs {
			if a.Name != "values" {
				continue
			}
			for _, chunk := range a.Args {
				for _, fstr := range strings.Fields(strings.NewReplacer(",", " ", "\\", " ").Replace(chunk)) {
					if f, err := strconv.ParseFloat(fstr, 64); err == nil {
						found = true
						if f > max {
							max = f
						}
					}
				}
			}
		}
		return max, found
	}
	rise, okR := read("cell_rise")
	fall, okF := read("cell_fall")
	if !okR && !okF {
		return arc, false
	}
	if !okR {
		rise = fall
	}
	if !okF {
		fall = rise
	}
	arc.Rise, arc.Fall = rise, fall
	return arc, true
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func parseSeqExpr(cell string, g *Group, attr string, required bool) (*logic.Expr, error) {
	v, ok := g.Attr(attr)
	if !ok {
		if required {
			return nil, fmt.Errorf("liberty: cell %s: %s group missing %s", cell, g.Name, attr)
		}
		return nil, nil
	}
	e, err := logic.ParseExpr(v)
	if err != nil {
		return nil, fmt.Errorf("liberty: cell %s %s.%s: %v", cell, g.Name, attr, err)
	}
	return e, nil
}

func parseCPVar(g *Group, attr string) logic.Value {
	v, ok := g.Attr(attr)
	if !ok {
		return logic.VX
	}
	switch strings.ToUpper(v) {
	case "L":
		return logic.V0
	case "H":
		return logic.V1
	}
	return logic.VX
}

func parseFF(cell string, g *Group) (*FF, error) {
	ff := &FF{}
	if len(g.Args) > 0 {
		ff.Var1 = g.Args[0]
	}
	if len(g.Args) > 1 {
		ff.Var2 = g.Args[1]
	}
	var err error
	if ff.NextState, err = parseSeqExpr(cell, g, "next_state", true); err != nil {
		return nil, err
	}
	if ff.ClockedOn, err = parseSeqExpr(cell, g, "clocked_on", true); err != nil {
		return nil, err
	}
	if ff.Clear, err = parseSeqExpr(cell, g, "clear", false); err != nil {
		return nil, err
	}
	if ff.Preset, err = parseSeqExpr(cell, g, "preset", false); err != nil {
		return nil, err
	}
	ff.ClearPresetVar1 = parseCPVar(g, "clear_preset_var1")
	ff.ClearPresetVar2 = parseCPVar(g, "clear_preset_var2")
	return ff, nil
}

func parseLatch(cell string, g *Group) (*Latch, error) {
	l := &Latch{}
	if len(g.Args) > 0 {
		l.Var1 = g.Args[0]
	}
	if len(g.Args) > 1 {
		l.Var2 = g.Args[1]
	}
	var err error
	// data_in/enable may be absent for pure set/reset latches.
	if l.DataIn, err = parseSeqExpr(cell, g, "data_in", false); err != nil {
		return nil, err
	}
	if l.Enable, err = parseSeqExpr(cell, g, "enable", false); err != nil {
		return nil, err
	}
	if (l.DataIn == nil) != (l.Enable == nil) {
		return nil, fmt.Errorf("liberty: cell %s: latch needs both data_in and enable or neither", cell)
	}
	if l.Clear, err = parseSeqExpr(cell, g, "clear", false); err != nil {
		return nil, err
	}
	if l.Preset, err = parseSeqExpr(cell, g, "preset", false); err != nil {
		return nil, err
	}
	l.ClearPresetVar1 = parseCPVar(g, "clear_preset_var1")
	l.ClearPresetVar2 = parseCPVar(g, "clear_preset_var2")
	return l, nil
}

func parseStateTable(cell string, g *Group) (*StateTable, error) {
	if len(g.Args) != 2 {
		return nil, fmt.Errorf("liberty: cell %s: statetable needs (\"inputs\", \"states\")", cell)
	}
	st := &StateTable{
		Inputs: strings.Fields(g.Args[0]),
		States: strings.Fields(g.Args[1]),
	}
	raw, ok := g.Attr("table")
	if !ok {
		return nil, fmt.Errorf("liberty: cell %s: statetable missing table attribute", cell)
	}
	// Rows are separated by commas or newlines; fields inside a row are
	// separated by ':' into input part, current-state part, next-state part.
	for _, rowSrc := range strings.FieldsFunc(raw, func(r rune) bool { return r == ',' || r == '\n' }) {
		rowSrc = strings.TrimSpace(rowSrc)
		if rowSrc == "" {
			continue
		}
		parts := strings.Split(rowSrc, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("liberty: cell %s: statetable row %q needs 3 ':' sections", cell, rowSrc)
		}
		row := StateTableRow{}
		var err error
		if row.Inputs, err = parseSTTokens(parts[0], len(st.Inputs)); err != nil {
			return nil, fmt.Errorf("liberty: cell %s: row %q: %v", cell, rowSrc, err)
		}
		if row.Cur, err = parseSTTokens(parts[1], len(st.States)); err != nil {
			return nil, fmt.Errorf("liberty: cell %s: row %q: %v", cell, rowSrc, err)
		}
		if row.Next, err = parseSTTokens(parts[2], len(st.States)); err != nil {
			return nil, fmt.Errorf("liberty: cell %s: row %q: %v", cell, rowSrc, err)
		}
		st.Rows = append(st.Rows, row)
	}
	if len(st.Rows) == 0 {
		return nil, fmt.Errorf("liberty: cell %s: empty statetable", cell)
	}
	return st, nil
}

func parseSTTokens(s string, want int) ([]StateTableToken, error) {
	fields := strings.Fields(s)
	if len(fields) != want {
		return nil, fmt.Errorf("expected %d tokens, got %d in %q", want, len(fields), s)
	}
	out := make([]StateTableToken, len(fields))
	for i, f := range fields {
		switch strings.ToUpper(f) {
		case "L":
			out[i] = STLow
		case "H":
			out[i] = STHigh
		case "-":
			out[i] = STDontCare
		case "R":
			out[i] = STRise
		case "F":
			out[i] = STFall
		case "N":
			out[i] = STNoChange
		case "X":
			out[i] = STUnknown
		default:
			return nil, fmt.Errorf("bad statetable token %q", f)
		}
	}
	return out, nil
}

// TimingArc is a simplified pin-to-pin delay extracted from a Liberty
// `timing () { ... }` group: the worst (maximum) cell_rise / cell_fall value
// in library time units. It lets designs be simulated with library delays
// when no SDF annotation is available.
type TimingArc struct {
	RelatedPin string
	Rise       float64 // max cell_rise value, library time units
	Fall       float64 // max cell_fall value
}
