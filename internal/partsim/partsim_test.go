package partsim

import (
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

var testLib = mustCompile()

func mustCompile() *truthtab.CompiledLibrary {
	cl, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		panic(err)
	}
	return cl
}

func spec(seed int64) gen.Spec {
	return gen.Spec{
		Name: "p", Seed: seed,
		CombGates: 150, FFs: 30, Latches: 5, ScanFFs: 6, ClockGates: 2,
		Depth: 5, DataInputs: 10, Outputs: 5, ClockPeriodPS: 2000,
	}
}

// runBoth compares partsim against refsim event-for-event on every net.
func runBoth(t *testing.T, seed int64, partitions int, delays func(d *gen.Design) *sdf.Delays) {
	t.Helper()
	d, err := gen.Build(spec(seed))
	if err != nil {
		t.Fatal(err)
	}
	dl := delays(d)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 25, ActivityFactor: 0.6, Seed: seed, ScanBurst: 6})

	ref, err := refsim.New(d.Netlist, testLib, dl)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	ps, err := New(d.Netlist, testLib, dl, Options{Partitions: partitions})
	if err != nil {
		t.Fatal(err)
	}
	got := map[netlist.NetID][]event.Event{}
	pstim := make([]Stim, len(stim))
	for i, s := range stim {
		pstim[i] = Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ps.Run(pstim, func(nid netlist.NetID, ev event.Event) {
		got[nid] = append(got[nid], ev)
	}); err != nil {
		t.Fatal(err)
	}

	for nid := range d.Netlist.Nets {
		w, g := want[netlist.NetID(nid)], got[netlist.NetID(nid)]
		if len(w) != len(g) {
			t.Fatalf("seed %d P=%d net %s: %d vs %d events\nwant %v\ngot  %v",
				seed, partitions, d.Netlist.Nets[nid].Name, len(w), len(g), w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("seed %d P=%d net %s event %d: %+v vs %+v",
					seed, partitions, d.Netlist.Nets[nid].Name, i, w[i], g[i])
			}
		}
	}
	if ps.Stats().Rounds == 0 {
		t.Error("no rounds executed")
	}
}

func sdfDelays(d *gen.Design) *sdf.Delays  { return gen.Delays(d, 7) }
func unitDelays(d *gen.Design) *sdf.Delays { return sdf.Uniform(d.Netlist, 100) }

func TestMatchesRefsimSDF(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		runBoth(t, int64(p), p, sdfDelays)
	}
}

func TestMatchesRefsimUnitDelay(t *testing.T) {
	for _, p := range []int{2, 5} {
		runBoth(t, 11, p, unitDelays)
	}
}

// TestLookaheadDrivesRounds demonstrates the Figure 8 mechanism: with SDF
// annotation the conservative lookahead collapses and the round count
// explodes relative to uniform delays on the same design and stimulus.
func TestLookaheadDrivesRounds(t *testing.T) {
	d, err := gen.Build(spec(3))
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.7, Seed: 3, ScanBurst: 5})
	run := func(dl *sdf.Delays) int64 {
		ps, err := New(d.Netlist, testLib, dl, Options{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		pstim := make([]Stim, len(stim))
		for i, s := range stim {
			pstim[i] = Stim{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		if err := ps.Run(pstim, nil); err != nil {
			t.Fatal(err)
		}
		return ps.Stats().Rounds
	}
	sdfRounds := run(gen.Delays(d, 7))
	unitRounds := run(sdf.Uniform(d.Netlist, 100))
	if sdfRounds <= unitRounds {
		t.Errorf("SDF rounds (%d) should exceed unit-delay rounds (%d)", sdfRounds, unitRounds)
	}
	t.Logf("rounds: SDF=%d unit=%d (ratio %.1fx)", sdfRounds, unitRounds, float64(sdfRounds)/float64(unitRounds))
}

func TestRejectsZeroDelay(t *testing.T) {
	d, err := gen.Build(spec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(d.Netlist, testLib, sdf.Uniform(d.Netlist, 0), Options{Partitions: 2}); err == nil {
		t.Error("zero delays must be rejected")
	}
}

func TestRejectsBadStim(t *testing.T) {
	d, err := gen.Build(spec(1))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	// ffq0 is an internal driven net.
	nid, ok := d.Netlist.Net("ffq0")
	if !ok {
		t.Fatal("no ffq0")
	}
	if err := ps.Run([]Stim{{Net: nid, Time: 0, Val: 1}}, nil); err == nil {
		t.Error("stimulus on internal net must fail")
	}
}

// TestPartitionQualityMatters reproduces the paper's §II claim that
// partition-based simulators are "highly reliant on the quality of the
// circuit partition": a round-robin (bad) partition must exchange far more
// cross-partition events than a contiguous (locality-preserving) one, while
// producing identical results.
func TestPartitionQualityMatters(t *testing.T) {
	d, err := gen.Build(spec(13))
	if err != nil {
		t.Fatal(err)
	}
	dl := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.6, Seed: 13, ScanBurst: 6})
	run := func(strategy Strategy) (int64, map[netlist.NetID][]event.Event) {
		ps, err := New(d.Netlist, testLib, dl, Options{Partitions: 4, Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		got := map[netlist.NetID][]event.Event{}
		pstim := make([]Stim, len(stim))
		for i, s := range stim {
			pstim[i] = Stim{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		if err := ps.Run(pstim, func(nid netlist.NetID, ev event.Event) {
			got[nid] = append(got[nid], ev)
		}); err != nil {
			t.Fatal(err)
		}
		return ps.Stats().CrossMessages, got
	}
	goodMsgs, goodEvents := run(StrategyContiguous)
	badMsgs, badEvents := run(StrategyRoundRobin)
	if badMsgs <= goodMsgs {
		t.Errorf("round-robin cross messages (%d) should exceed contiguous (%d)", badMsgs, goodMsgs)
	}
	t.Logf("cross messages: contiguous=%d round-robin=%d (%.1fx)", goodMsgs, badMsgs, float64(badMsgs)/float64(goodMsgs))
	// Partition quality must never change results.
	for nid := range d.Netlist.Nets {
		g, b := goodEvents[netlist.NetID(nid)], badEvents[netlist.NetID(nid)]
		if len(g) != len(b) {
			t.Fatalf("net %s: %d vs %d events across strategies", d.Netlist.Nets[nid].Name, len(g), len(b))
		}
		for i := range g {
			if g[i] != b[i] {
				t.Fatalf("net %s event %d differs across strategies", d.Netlist.Nets[nid].Name, i)
			}
		}
	}
}
