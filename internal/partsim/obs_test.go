package partsim

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/obs"
)

func buildStim(t *testing.T, seed int64) (*gen.Design, []Stim) {
	t.Helper()
	d, err := gen.Build(spec(seed))
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.6, Seed: seed, ScanBurst: 6})
	pstim := make([]Stim, len(stim))
	for i, s := range stim {
		pstim[i] = Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	return d, pstim
}

// TestStatsPollDuringRunCtx is the concurrent-access proof for the
// partitioned simulator's counters: a goroutine hammers Stats() while RunCtx
// runs rounds across the worker pool. Under -race (scripts/check.sh) any
// non-atomic counter access is reported.
func TestStatsPollDuringRunCtx(t *testing.T) {
	d, pstim := buildStim(t, 21)
	ps, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := ps.Stats()
			if s.Rounds < last.Rounds || s.Events < last.Events {
				t.Errorf("stats went backwards: %+v then %+v", last, s)
				return
			}
			last = s
		}
	}()

	err = ps.RunCtx(context.Background(), pstim, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if s := ps.Stats(); s.Rounds == 0 || s.Events == 0 {
		t.Errorf("expected nonzero rounds/events, got %+v", s)
	}
}

// TestTraceAndMetrics runs an instrumented partitioned simulation and
// checks the recorded trace validates as Chrome trace-event JSON with
// per-round and per-phase spans, and that the registry counters agree with
// the simulator's Stats.
func TestTraceAndMetrics(t *testing.T) {
	d, pstim := buildStim(t, 17)
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	ps, err := New(d.Netlist, testLib, gen.Delays(d, 7),
		Options{Partitions: 4, Metrics: reg, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Run(pstim, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	spans := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" {
			spans[ev.Name]++
		}
	}
	st := ps.Stats()
	if spans["round"] != int(st.Rounds) {
		t.Errorf("round spans = %d, Stats().Rounds = %d", spans["round"], st.Rounds)
	}
	if spans["stage"] == 0 || spans["process"] == 0 {
		t.Errorf("missing stage/process phase spans: %v", spans)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["partsim.rounds"]; got != st.Rounds {
		t.Errorf("partsim.rounds counter = %d, Stats().Rounds = %d", got, st.Rounds)
	}
	if got := snap.Counters["partsim.events"]; got != st.Events {
		t.Errorf("partsim.events counter = %d, Stats().Events = %d", got, st.Events)
	}
	if got := snap.Counters["partsim.cross_msgs"]; got != st.CrossMessages {
		t.Errorf("partsim.cross_msgs counter = %d, Stats().CrossMessages = %d", got, st.CrossMessages)
	}
	if hs, ok := snap.Histograms["partsim.round_ns"]; !ok || hs.Count != st.Rounds {
		t.Errorf("partsim.round_ns count = %+v, want %d observations", hs, st.Rounds)
	}
	if snap.Counters["partsim.pool.rounds"] == 0 {
		t.Error("partsim.pool.rounds counter never incremented")
	}
}
