package partsim

// Run-control tests for the partitioned simulator: cancellation at round
// boundaries, pool-death degradation, and sticky failure on contained
// partition panics. Runs under -race via scripts/check.sh.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/netlist"
	"gatesim/internal/refsim"
	"gatesim/internal/workpool"
)

func buildCase(t *testing.T, seed int64) (*gen.Design, []Stim) {
	t.Helper()
	d, err := gen.Build(spec(seed))
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.6, Seed: seed, ScanBurst: 5})
	pstim := make([]Stim, len(stim))
	for i, s := range stim {
		pstim[i] = Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	return d, pstim
}

// TestRunCtxPreCancelled checks an expired context aborts before any round.
func TestRunCtxPreCancelled(t *testing.T) {
	d, pstim := buildCase(t, 31)
	ps, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = ps.RunCtx(ctx, pstim, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the chain, got %v", err)
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Op != "run" {
		t.Fatalf("not a *partsim.Error{Op: run}: %v", err)
	}
	if ps.Stats().Rounds != 0 {
		t.Errorf("%d rounds ran under an expired context", ps.Stats().Rounds)
	}
}

// TestRunCtxCancelMidRun cancels from inside the sink (so the cancel lands
// while rounds are executing) and checks the run stops at the next round
// boundary instead of completing.
func TestRunCtxCancelMidRun(t *testing.T) {
	d, pstim := buildCase(t, 32)
	ps, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The sink first sees the up-front stimulus distribution; cancel on the
	// first event emitted by an actual round.
	err = ps.RunCtx(ctx, pstim, func(netlist.NetID, event.Event) {
		if ps.Stats().Rounds > 0 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	roundsAtCancel := ps.Stats().Rounds
	if roundsAtCancel == 0 {
		t.Fatal("cancel landed before any round?")
	}
	// The simulator is not failed — the abort was clean.
	if err := ps.RunCtx(context.Background(), nil, nil); err != nil {
		t.Fatalf("cancelled simulator refused to continue: %v", err)
	}
	if ps.Stats().Rounds <= roundsAtCancel {
		t.Error("continuation made no progress")
	}
}

// TestPoolDeathDegradesToSerial kills one pool round slot before its phase
// item runs and checks the run completes with results identical to refsim,
// recording the downgrade.
func TestPoolDeathDegradesToSerial(t *testing.T) {
	d, pstim := buildCase(t, 33)
	dl := gen.Delays(d, 7)

	ref, err := refsim.New(d.Netlist, testLib, dl)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(pstim))
	for i, s := range pstim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	var fired atomic.Bool
	opts := Options{Partitions: 4, Threads: 4}
	opts.FaultHook = func(item int) {
		if fired.CompareAndSwap(false, true) {
			panic("simulated worker death")
		}
	}
	ps, err := New(d.Netlist, testLib, dl, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := map[netlist.NetID][]event.Event{}
	if err := ps.Run(pstim, func(nid netlist.NetID, ev event.Event) {
		got[nid] = append(got[nid], ev)
	}); err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !fired.Load() {
		t.Fatal("fault hook never fired")
	}
	if ps.Stats().Downgrades != 1 {
		t.Errorf("Downgrades = %d, want 1", ps.Stats().Downgrades)
	}
	for nid := range d.Netlist.Nets {
		w, g := want[netlist.NetID(nid)], got[netlist.NetID(nid)]
		if len(w) != len(g) {
			t.Fatalf("net %s: %d vs %d events", d.Netlist.Nets[nid].Name, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("net %s event %d: %+v vs %+v", d.Netlist.Nets[nid].Name, i, w[i], g[i])
			}
		}
	}
}

// TestPartitionPanicIsSticky drives runPhase's serial containment path
// directly and checks the simulator reports a structured error and refuses
// all further runs: mid-phase heap state cannot be trusted.
func TestPartitionPanicIsSticky(t *testing.T) {
	d, pstim := buildCase(t, 34)
	var fired atomic.Bool
	ps, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	ps.degraded = true // force the serial path; the pool is never touched
	err = ps.runPhase(nil, func(i int) {
		if i == 1 && fired.CompareAndSwap(false, true) {
			panic("partition boom")
		}
	})
	if err == nil {
		t.Fatal("contained partition panic returned nil")
	}
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("cause is not ErrFailed: %v", err)
	}
	var wpe *workpool.PanicError
	if !errors.As(err, &wpe) || wpe.Value != "partition boom" || wpe.Item != 1 {
		t.Fatalf("panic payload missing: %v", err)
	}
	// Sticky: later runs refuse immediately.
	if err := ps.Run(pstim, nil); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed simulator accepted a run: %v", err)
	}
}

// TestPartitionPanicPooled drives the same sticky-failure path through the
// real pool: a phase closure that panics on one partition mid-run.
func TestPartitionPanicPooled(t *testing.T) {
	d, pstim := buildCase(t, 35)
	ps, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Partitions: 4, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the truth table pointers so evaluate panics with a nil
	// dereference on the first gate evaluation — a realistic "corrupt
	// engine state" fault inside partition code.
	for _, part := range ps.parts {
		for li := range part.tabs {
			part.tabs[li] = nil
		}
	}
	err = ps.Run(pstim, nil)
	if err == nil {
		t.Fatal("run over sabotaged partition state returned nil")
	}
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("cause is not ErrFailed: %v", err)
	}
	var wpe *workpool.PanicError
	if !errors.As(err, &wpe) || !wpe.Started {
		t.Fatalf("no started PanicError in chain: %v", err)
	}
	if err := ps.Run(pstim, nil); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed simulator accepted a second run: %v", err)
	}
}
