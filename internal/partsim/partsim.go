// Package partsim is a conservative partition-based parallel gate-level
// simulator in the Chandy–Misra–Bryant tradition — the stand-in for the
// partition-and-synchronize "fine-grained parallelism" mode of commercial
// simulators that the paper's Figure 8 compares against.
//
// The circuit is split into P partitions. Simulation proceeds in globally
// synchronized rounds: each round processes the time window
// [T, T+lookahead), where T is the global minimum next-event time and the
// lookahead is the smallest arc delay in the design — the safe bound on how
// far any partition may run ahead without risking a causality violation
// from a neighbour. Events crossing partitions are exchanged at round
// boundaries, once they are final (immune to inertial cancellation).
//
// This structure is exactly why such simulators degrade under SDF
// annotation: heterogeneous per-arc delays shrink the lookahead to a few
// picoseconds, so each round carries almost no work and the barrier
// overhead dominates — while with uniform ("unit") delays the lookahead
// spans a whole delay quantum and scaling is good. The stable-time engine
// has no such coupling, which is the paper's Figure 8 story.
package partsim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/sched"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
	"gatesim/internal/workpool"
)

// Stim is one primary-input change (same shape as refsim.Stim).
type Stim struct {
	Net  netlist.NetID
	Time int64
	Val  logic.Value
}

// Strategy selects how gates map onto partitions.
type Strategy int

const (
	// StrategyContiguous assigns contiguous instance-ID ranges — decent
	// locality for netlists emitted in topological order (the "reasonable
	// partition" case).
	StrategyContiguous Strategy = iota
	// StrategyRoundRobin scatters adjacent gates across partitions — the
	// deliberately bad partition that the paper warns partition-based
	// simulators degrade under (every net becomes a boundary net).
	StrategyRoundRobin
)

// Options configure the partitioned simulator.
type Options struct {
	Partitions int // number of logic processors (default: Threads)
	Threads    int // worker goroutines (default: Partitions)
	Strategy   Strategy
	// FaultHook, when non-nil, is installed as the per-Run worker pool's
	// chaos hook (workpool.Pool.FaultHook). Test-only; see the
	// fault-containment tests.
	FaultHook func(item int)
	// Metrics, when non-nil, receives the simulator's obs counters and
	// round histogram (partsim.* names). Nil keeps every record site on the
	// ~1 ns nil-instrument path (see internal/obs).
	Metrics *obs.Registry
	// Trace, when non-nil, records a span per round and per stage/process
	// phase in Chrome/Perfetto trace-event form.
	Trace *obs.Trace
}

// ErrFailed is the sentinel wrapped by every error returned from a
// simulator that contained a panic inside partition code: the partition
// heaps and net views are suspect, so the simulator refuses further runs.
// Match with errors.Is(err, ErrFailed).
var ErrFailed = errors.New("partsim: simulator failed by an earlier contained panic")

// Error is the structured error returned by the run-control paths. It wraps
// the cause (context.Canceled/DeadlineExceeded, ErrFailed, or a
// *workpool.PanicError) so errors.Is/As see through it.
type Error struct {
	Op    string // "run" or "phase"
	Cause error
}

func (e *Error) Error() string { return fmt.Sprintf("partsim: %s: %v", e.Op, e.Cause) }
func (e *Error) Unwrap() error { return e.Cause }

// Simulator is a partition-based conservative parallel simulator.
type Simulator struct {
	p         *plan.Plan
	nl        *netlist.Netlist
	lookahead int64
	threads   int // worker parallelism for the per-Run pool
	parts     []*partition
	partOf    []int32 // per gate
	// netReaders[nid] = partitions having loads on the net.
	netReaders [][]int32
	owner      []int32 // partition owning the net's driver (-1 for PI)

	// Cumulative counters in atomic form: the coordinator writes them, but
	// Stats() may be polled from any goroutine mid-run (the obs debug
	// endpoint does).
	rounds        atomic.Int64
	events        atomic.Int64
	crossMessages atomic.Int64
	downgrades    atomic.Int64

	obs simObs

	opts Options // retained for the per-Run pool (FaultHook, Threads)
	// degraded is set after a pool infrastructure failure; every later
	// phase runs serially.
	degraded bool
	// failed is the sticky error of a contained partition-code panic:
	// mid-phase partition state (heaps, net views) cannot be trusted, so
	// the simulator refuses further work.
	failed *Error
}

// Stats is a snapshot of the simulator's cumulative counters. Safe to take
// from any goroutine while a run is in flight.
type Stats struct {
	// Rounds executed (the scalability metric: more rounds = more barriers).
	Rounds int64
	Events int64
	// CrossMessages counts events sent between partitions — the partition-
	// quality metric.
	CrossMessages int64
	// Downgrades counts pool→serial degradations: a worker died outside
	// partition code, so the remaining phases of this simulator run on the
	// calling goroutine. At most 1 per simulator.
	Downgrades int64
}

// Stats returns a snapshot of the cumulative counters.
func (s *Simulator) Stats() Stats {
	return Stats{
		Rounds:        s.rounds.Load(),
		Events:        s.events.Load(),
		CrossMessages: s.crossMessages.Load(),
		Downgrades:    s.downgrades.Load(),
	}
}

// simObs bundles the simulator's observability instruments; nil
// Options.Metrics/Trace yield nil instruments (see internal/obs).
type simObs struct {
	trace *obs.Trace
	tid   int

	rounds      *obs.Counter
	events      *obs.Counter
	crossMsgs   *obs.Counter
	downgrades  *obs.Counter
	stallRounds *obs.Counter
	roundNS     *obs.Histogram
}

func newSimObs(o Options) simObs {
	m := o.Metrics
	return simObs{
		trace:       o.Trace,
		tid:         o.Trace.Thread("partsim"),
		rounds:      m.Counter("partsim.rounds"),
		events:      m.Counter("partsim.events"),
		crossMsgs:   m.Counter("partsim.cross_msgs"),
		downgrades:  m.Counter("partsim.downgrades"),
		stallRounds: m.Counter("partsim.stall_rounds"),
		roundNS:     m.Histogram("partsim.round_ns"),
	}
}

type partition struct {
	id    int32
	gates []netlist.CellID

	// Per-gate state (indexed by dense local index).
	localIdx map[netlist.CellID]int32
	tabs     []*truthtab.Table
	inVals   [][]logic.Value
	states   [][]logic.Value
	semOut   [][]logic.Value
	outs     [][]sched.Output
	sentUpTo [][]int64 // per gate per output: cross events finalized below this
	isBorder []bool    // has loads outside the partition
	border   []int32   // local indices of border gates (stageCross scan list)
	touched  []int64

	netVal map[netlist.NetID]logic.Value // local view of nets it reads/writes

	wakes   wakeHeap // local commit wakeups (time, local gate)
	inbox   changeHeap
	outMsgs [][]msg // staged per-target-partition messages of this round

	emitted []emit // events committed this round (for the sink)
}

type msg struct {
	t   int64
	net netlist.NetID
	v   logic.Value
}

type emit struct {
	t   int64
	net netlist.NetID
	v   logic.Value
}

// New builds the partitioned simulator. Partitioning is by contiguous
// instance-ID ranges, which preserves the generator's structural locality —
// a realistic "decent but untuned" partition, matching how FGP behaves
// without manual tuning (§IV-C).
func New(nl *netlist.Netlist, lib *truthtab.CompiledLibrary, delays *sdf.Delays, opts Options) (*Simulator, error) {
	p, err := plan.Build(nl, lib, delays)
	if err != nil {
		return nil, err
	}
	return NewFromPlan(p, opts)
}

// NewFromPlan builds the partitioned simulator over a prebuilt plan, which
// stays read-only and shareable with the other simulators.
func NewFromPlan(p *plan.Plan, opts Options) (*Simulator, error) {
	nl := p.Netlist
	if opts.Partitions <= 0 {
		opts.Partitions = 4
	}
	if opts.Partitions > len(nl.Instances) {
		opts.Partitions = len(nl.Instances)
	}
	if opts.Partitions < 1 {
		opts.Partitions = 1
	}
	if opts.Threads <= 0 {
		opts.Threads = opts.Partitions
	}
	for _, tab := range p.Tables {
		if tab.NumInputs > 16 || tab.NumOutputs > 8 || tab.NumStates > 8 {
			return nil, fmt.Errorf("partsim: cell %s exceeds supported pin/state counts", tab.Cell.Name)
		}
	}
	s := &Simulator{p: p, nl: nl, threads: opts.Threads, opts: opts}
	s.obs = newSimObs(opts)
	s.lookahead = p.Delays.MinPositive
	if s.lookahead < 1 {
		return nil, fmt.Errorf("partsim: all delays must be >= 1 ps")
	}

	n := len(nl.Instances)
	s.partOf = make([]int32, n)
	switch opts.Strategy {
	case StrategyRoundRobin:
		for i := 0; i < n; i++ {
			s.partOf[i] = int32(i % opts.Partitions)
		}
	default:
		per := (n + opts.Partitions - 1) / opts.Partitions
		for i := 0; i < n; i++ {
			s.partOf[i] = int32(i / per)
		}
	}
	for p := 0; p < opts.Partitions; p++ {
		part := &partition{id: int32(len(s.parts)), localIdx: make(map[netlist.CellID]int32)}
		s.parts = append(s.parts, part)
	}
	for i := 0; i < n; i++ {
		part := s.parts[s.partOf[i]]
		part.localIdx[netlist.CellID(i)] = int32(len(part.gates))
		part.gates = append(part.gates, netlist.CellID(i))
	}
	// Drop empty partitions (more partitions than gates).
	kept := s.parts[:0]
	for _, part := range s.parts {
		if len(part.gates) > 0 {
			part.id = int32(len(kept))
			kept = append(kept, part)
		}
	}
	s.parts = kept
	for _, part := range s.parts {
		for _, gid := range part.gates {
			s.partOf[gid] = part.id
		}
	}

	// Net topology per partition, from the plan's fanout CSR.
	s.netReaders = make([][]int32, len(nl.Nets))
	s.owner = make([]int32, len(nl.Nets))
	for nid := range nl.Nets {
		if drv := nl.Nets[nid].Driver; drv >= 0 {
			s.owner[nid] = s.partOf[drv]
		} else {
			s.owner[nid] = -1
		}
		seen := map[int32]bool{}
		for k := p.FanOff[nid]; k < p.FanOff[nid+1]; k++ {
			rp := s.partOf[p.FanCell[k]]
			if !seen[rp] {
				seen[rp] = true
				s.netReaders[nid] = append(s.netReaders[nid], rp)
			}
		}
	}

	// Per-partition gate state.
	for _, part := range s.parts {
		m := len(part.gates)
		part.tabs = make([]*truthtab.Table, m)
		part.inVals = make([][]logic.Value, m)
		part.states = make([][]logic.Value, m)
		part.semOut = make([][]logic.Value, m)
		part.outs = make([][]sched.Output, m)
		part.sentUpTo = make([][]int64, m)
		part.isBorder = make([]bool, m)
		part.touched = make([]int64, m)
		part.netVal = make(map[netlist.NetID]logic.Value)
		part.outMsgs = make([][]msg, len(s.parts))
		for li, gid := range part.gates {
			tab := p.Table(gid)
			part.tabs[li] = tab
			part.inVals[li] = make([]logic.Value, tab.NumInputs)
			copy(part.inVals[li], p.InInit[p.InOff[gid]:p.InOff[gid+1]])
			part.states[li] = append([]logic.Value(nil), p.StateInit[p.StateOff[gid]:p.StateOff[gid+1]]...)
			part.semOut[li] = append([]logic.Value(nil), p.OutInit[p.OutOff[gid]:p.OutOff[gid+1]]...)
			part.outs[li] = make([]sched.Output, tab.NumOutputs)
			part.sentUpTo[li] = make([]int64, tab.NumOutputs)
			for o := range part.outs[li] {
				part.outs[li][o].Reset(part.semOut[li][o])
			}
			part.touched[li] = -1
			for _, onid := range p.GateOutputs(gid) {
				if onid < 0 {
					continue
				}
				for _, rp := range s.netReaders[onid] {
					if rp != part.id {
						part.isBorder[li] = true
					}
				}
			}
			if part.isBorder[li] {
				part.border = append(part.border, int32(li))
			}
		}
	}

	// Initialize per-partition net views from the shared fixpoint.
	for nid, v := range p.NetInit {
		for _, rp := range s.netReaders[nid] {
			s.parts[rp].netVal[netlist.NetID(nid)] = v
		}
		if s.owner[nid] >= 0 {
			s.parts[s.owner[nid]].netVal[netlist.NetID(nid)] = v
		}
	}
	return s, nil
}

// Sink receives committed events; events for one net arrive in time order.
type Sink func(nid netlist.NetID, ev event.Event)

// Run simulates the stimulus to completion. It is RunCtx without
// cancellation.
func (s *Simulator) Run(stim []Stim, sink Sink) error {
	return s.RunCtx(context.Background(), stim, sink)
}

// RunCtx is Run under a context: cancellation and deadline are checked at
// every round boundary (between barrier-synchronized windows), so an
// expired context aborts within one round. Committed events already handed
// to the sink stay valid; the run itself is abandoned.
func (s *Simulator) RunCtx(ctx context.Context, stim []Stim, sink Sink) error {
	if s.failed != nil {
		return s.failed
	}
	for _, st := range stim {
		if int(st.Net) >= len(s.p.IsPI) || !s.p.IsPI[st.Net] {
			return fmt.Errorf("partsim: stimulus on non-input net %d", st.Net)
		}
	}
	sort.SliceStable(stim, func(a, b int) bool { return stim[a].Time < stim[b].Time })
	// Distribute stimuli into the inboxes of reading partitions up front,
	// dropping no-op changes (PI nets only ever change via stimulus, so the
	// coordinator can dedup without consulting partitions).
	piVal := make(map[netlist.NetID]logic.Value)
	for _, st := range stim {
		v := st.Val.Settle()
		prev, seen := piVal[st.Net]
		if !seen {
			prev = logic.VX
		}
		if prev == v {
			continue
		}
		piVal[st.Net] = v
		for _, rp := range s.netReaders[st.Net] {
			s.parts[rp].inbox.push(msg{t: st.Time, net: st.Net, v: v})
		}
		s.events.Add(1)
		s.obs.events.Inc()
		if sink != nil {
			sink(st.Net, event.Event{Time: st.Time, Val: v})
		}
	}

	// One persistent spin-then-park pool serves every round of this Run:
	// both parallel phases dispatch onto it instead of forking 2×P
	// goroutines per round — with SDF-shrunk lookahead windows that was
	// millions of spawns per simulation. The phase closures are allocated
	// once and read the current round bounds through captured variables,
	// which the pool's round publication orders for the workers.
	pool := workpool.New(min(s.threads, len(s.parts)))
	pool.FaultHook = s.opts.FaultHook
	m := s.opts.Metrics
	pool.Observe(m.Counter("partsim.pool.spawned"), m.Counter("partsim.pool.rounds"),
		m.Counter("partsim.pool.wakes"), m.Counter("partsim.pool.parks"))
	defer pool.Close()
	// Per-round timing only runs with observability on: rounds can number in
	// the millions under SDF-shrunk lookahead, where even a clock read per
	// round would register.
	obsOn := s.opts.Metrics != nil || s.obs.trace != nil
	var T, windowEnd int64
	stagePhase := func(i int) { s.parts[i].stageCross(s, windowEnd) }
	processPhase := func(i int) { s.parts[i].process(s, T, windowEnd) }
	for {
		// Cancellation is honored at round boundaries: between rounds every
		// staged message has been delivered and every committed event
		// emitted, so aborting here leaves no half-exchanged state.
		if err := ctx.Err(); err != nil {
			return &Error{Op: "run", Cause: err}
		}

		// Global minimum next time across partitions.
		T = int64(1) << 62
		for _, p := range s.parts {
			if t := p.nextTime(); t < T {
				T = t
			}
		}
		if T >= 1<<62 {
			return nil
		}
		windowEnd = T + s.lookahead
		s.rounds.Add(1)
		s.obs.rounds.Inc()
		var roundStart time.Time
		if obsOn {
			roundStart = time.Now()
			s.obs.trace.Begin(s.obs.tid, "round")
		}

		// Phase 1 (parallel): finalize and stage cross-partition events with
		// te < T + lookahead (they are immune to cancellation because no
		// evaluation can happen before T anywhere). This is the CMB
		// null-message exchange.
		s.obs.trace.Begin(s.obs.tid, "stage")
		err := s.runPhase(pool, stagePhase)
		s.obs.trace.End(s.obs.tid)
		if err != nil {
			s.obs.trace.End(s.obs.tid) // round
			return err
		}
		// Barrier: deliver staged messages before anyone processes the
		// window — an event can be both finalized and due within the same
		// round (uniform delays put everything on one lattice).
		var crossed int64
		for _, from := range s.parts {
			for tgt, msgs := range from.outMsgs {
				crossed += int64(len(msgs))
				for _, m := range msgs {
					s.parts[tgt].inbox.push(m)
				}
				from.outMsgs[tgt] = from.outMsgs[tgt][:0]
			}
		}
		s.crossMessages.Add(crossed)
		s.obs.crossMsgs.Add(crossed)

		// Phase 2 (parallel): process the window [T, windowEnd).
		s.obs.trace.Begin(s.obs.tid, "process")
		err = s.runPhase(pool, processPhase)
		s.obs.trace.End(s.obs.tid)
		if err != nil {
			s.obs.trace.End(s.obs.tid) // round
			return err
		}
		// Emit committed events.
		var emitted int64
		for _, p := range s.parts {
			emitted += int64(len(p.emitted))
			if sink != nil {
				for _, em := range p.emitted {
					sink(em.net, event.Event{Time: em.t, Val: em.v})
				}
			}
			p.emitted = p.emitted[:0]
		}
		s.events.Add(emitted)
		s.obs.events.Add(emitted)
		if obsOn {
			// A round that committed nothing is a lookahead stall: the window
			// was too narrow to carry any work past the barrier.
			if emitted == 0 {
				s.obs.stallRounds.Inc()
			}
			s.obs.roundNS.Observe(time.Since(roundStart).Nanoseconds())
			s.obs.trace.End(s.obs.tid) // round
		}
	}
}

// runPhase dispatches one barrier phase (stage or process) over all
// partitions, containing failures:
//
//   - A panic inside partition code (Started=true, or any serial-path
//     panic) is fatal to the simulator: phases mutate heaps and net views
//     in place, so a half-executed phase item cannot be redone. The error
//     is sticky — later RunCtx calls return it immediately.
//   - A worker that dies before its phase item ran (Started=false: the
//     chaos FaultHook or a spawn-path failure) loses no partition work, and
//     both phases are idempotent for partitions that already completed the
//     window (stageCross skips below the sentUpTo watermark; process
//     returns once nextTime reaches windowEnd). The simulator downgrades to
//     serial execution for the remainder of its life and re-runs the phase
//     on the calling goroutine.
func (s *Simulator) runPhase(pool *workpool.Pool, fn func(int)) error {
	if !s.degraded {
		err := pool.Run(len(s.parts), fn)
		if err == nil {
			return nil
		}
		pe := err.(*workpool.PanicError)
		if pe.Started {
			s.failed = &Error{Op: "phase", Cause: fmt.Errorf("%w: %w", ErrFailed, pe)}
			return s.failed
		}
		s.degraded = true
		s.downgrades.Add(1)
		s.obs.downgrades.Inc()
	}
	for i := range s.parts {
		if pe := contain(fn, i); pe != nil {
			s.failed = &Error{Op: "phase", Cause: fmt.Errorf("%w: %w", ErrFailed, pe)}
			return s.failed
		}
	}
	return nil
}

// contain runs one phase item under recover, mirroring the pool's
// containment on the serial path.
func contain(fn func(int), i int) (pe *workpool.PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = &workpool.PanicError{Value: v, Item: i, Started: true}
		}
	}()
	fn(i)
	return nil
}

// nextTime returns the earliest thing this partition knows about.
func (p *partition) nextTime() int64 {
	t := int64(1) << 62
	if p.inbox.len() > 0 && p.inbox.top().t < t {
		t = p.inbox.top().t
	}
	if p.wakes.len() > 0 && p.wakes.top().time < t {
		t = p.wakes.top().time
	}
	return t
}

// stageCross finalizes pending transitions of border gates below
// windowEnd + lookahead... precisely: transitions with te < windowStart +
// lookahead are final at round start; we conservatively stage only those,
// which is exactly the CMB null-message bound.
func (p *partition) stageCross(s *Simulator, windowEnd int64) {
	final := windowEnd // = T + lookahead
	outNet, outOff := s.p.OutNet, s.p.OutOff
	for _, li := range p.border {
		gid := p.gates[li]
		outB := outOff[gid]
		for o := range p.outs[li] {
			nid := outNet[outB+int32(o)]
			if nid < 0 {
				continue
			}
			// Peek pendings below `final` that were not yet sent. We cannot
			// pop them (local commit still needs them), so we track a
			// per-output sent watermark and scan the pending list.
			out := &p.outs[li][o]
			for k := 0; k < out.PendingCount(); k++ {
				te, v := out.PendingAt(k)
				if te >= final {
					break
				}
				if te < p.sentUpTo[li][o] {
					continue
				}
				for _, rp := range s.netReaders[nid] {
					if rp != p.id {
						p.outMsgs[rp] = append(p.outMsgs[rp], msg{t: te, net: nid, v: v})
					}
				}
			}
			if final > p.sentUpTo[li][o] {
				p.sentUpTo[li][o] = final
			}
		}
	}
}

// process runs the partition's event loop for times in [T, windowEnd).
func (p *partition) process(s *Simulator, T, windowEnd int64) {
	var changed []netlist.NetID
	var evalSet []int32
	for {
		t := p.nextTime()
		if t >= windowEnd {
			return
		}
		changed = changed[:0]
		// Inbox changes (stimulus + cross events) due now.
		for p.inbox.len() > 0 && p.inbox.top().t == t {
			m := p.inbox.pop()
			if p.netVal[m.net] == m.v {
				continue
			}
			p.netVal[m.net] = m.v
			changed = append(changed, m.net)
		}
		// Local commits due now.
		for p.wakes.len() > 0 && p.wakes.top().time == t {
			w := p.wakes.pop()
			outB := s.p.OutOff[p.gates[w.gate]]
			for o := range p.outs[w.gate] {
				out := &p.outs[w.gate][o]
				for {
					te, ok := out.NextPending()
					if !ok || te > t {
						break
					}
					ev := out.PopFront()
					nid := s.p.OutNet[outB+int32(o)]
					if nid < 0 {
						continue
					}
					p.netVal[nid] = ev.Val
					changed = append(changed, nid)
					p.emitted = append(p.emitted, emit{t: ev.Time, net: nid, v: ev.Val})
				}
			}
		}
		if len(changed) == 0 {
			continue
		}
		evalSet = evalSet[:0]
		for _, nid := range changed {
			for k := s.p.FanOff[nid]; k < s.p.FanOff[nid+1]; k++ {
				li, ok := p.localIdx[s.p.FanCell[k]]
				if !ok {
					continue
				}
				if p.touched[li] != t {
					p.touched[li] = t
					evalSet = append(evalSet, li)
				}
			}
		}
		for _, li := range evalSet {
			p.evaluate(s, li, t)
		}
	}
}

func (p *partition) evaluate(s *Simulator, li int32, t int64) {
	gid := p.gates[li]
	if s.p.KernelOf[s.p.TableOf[gid]] == truthtab.ClassComb1 {
		p.evalComb1(s, li, t)
		return
	}
	inNets := s.p.GateInputs(gid)
	tab := p.tabs[li]
	inVals := p.inVals[li]
	ni := len(inNets)
	arcB := int(s.p.ArcOff[gid])

	var qIns [16]logic.Value
	var evIn [16]int
	nEv := 0
	for i, nid := range inNets {
		cur := p.netVal[nid]
		if cur != inVals[i] {
			evIn[nEv] = i
			nEv++
			if tab.EdgeSensitive[i] {
				qIns[i] = logic.EdgeCode(inVals[i], cur)
			} else {
				qIns[i] = cur
			}
		} else {
			qIns[i] = cur
		}
	}
	var qOuts, qNext [8]logic.Value
	tab.LookupInto(qIns[:ni], p.states[li], qOuts[:tab.NumOutputs], qNext[:tab.NumStates])

	for o := 0; o < tab.NumOutputs; o++ {
		nv := qOuts[o]
		if nv == p.semOut[li][o] {
			continue
		}
		d := int64(1) << 62
		for k := 0; k < nEv; k++ {
			if ad := sched.DelayFor(s.p.Arcs[arcB+o*ni+evIn[k]], nv); ad < d {
				d = ad
			}
		}
		p.outs[li][o].Schedule(t+d, nv)
		p.semOut[li][o] = nv
		p.wakes.push(wake{time: t + d, gate: li})
	}
	for k := 0; k < nEv; k++ {
		inVals[evIn[k]] = p.netVal[inNets[evIn[k]]]
	}
	copy(p.states[li], qNext[:tab.NumStates])
}

// evalComb1 is the ClassComb1 kernel (see refsim.evalComb1): one packed-LUT
// probe over the raw partition-local net values, single output, no edge
// coding or state, with the same delay-selection rules as the generic path.
func (p *partition) evalComb1(s *Simulator, li int32, t int64) {
	gid := p.gates[li]
	inNets := s.p.GateInputs(gid)
	lut := s.p.LUTs[s.p.TableOf[gid]]
	inVals := p.inVals[li]
	arcB := int(s.p.ArcOff[gid])

	idx := 0
	var evIn [truthtab.MaxPackedInputs]int
	nEv := 0
	for i, nid := range inNets {
		cur := p.netVal[nid]
		if cur != inVals[i] {
			evIn[nEv] = i
			nEv++
			inVals[i] = cur
		}
		idx |= int(cur) << (3 * i)
	}
	nv := lut.Data[idx]
	if nv == p.semOut[li][0] {
		return
	}
	var d int64
	if s.p.ArcUniform[gid] && nEv > 0 {
		d = sched.DelayFor(s.p.Arcs[arcB], nv)
	} else {
		d = int64(1) << 62
		for k := 0; k < nEv; k++ {
			if ad := sched.DelayFor(s.p.Arcs[arcB+evIn[k]], nv); ad < d {
				d = ad
			}
		}
	}
	p.outs[li][0].Schedule(t+d, nv)
	p.semOut[li][0] = nv
	p.wakes.push(wake{time: t + d, gate: li})
}

// --- small heaps ---

type wake struct {
	time int64
	gate int32
}

type wakeHeap struct{ a []wake }

func (h *wakeHeap) len() int  { return len(h.a) }
func (h *wakeHeap) top() wake { return h.a[0] }
func (h *wakeHeap) push(w wake) {
	h.a = append(h.a, w)
	i := len(h.a) - 1
	for i > 0 {
		pi := (i - 1) / 2
		if h.a[pi].time <= h.a[i].time {
			break
		}
		h.a[i], h.a[pi] = h.a[pi], h.a[i]
		i = pi
	}
}
func (h *wakeHeap) pop() wake {
	w := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < last && h.a[l].time < h.a[m].time {
			m = l
		}
		if r < last && h.a[r].time < h.a[m].time {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return w
}

type changeHeap struct{ a []msg }

func (h *changeHeap) len() int { return len(h.a) }
func (h *changeHeap) top() msg { return h.a[0] }
func (h *changeHeap) push(m msg) {
	h.a = append(h.a, m)
	i := len(h.a) - 1
	for i > 0 {
		pi := (i - 1) / 2
		if !msgLess(h.a[i], h.a[pi]) {
			break
		}
		h.a[i], h.a[pi] = h.a[pi], h.a[i]
		i = pi
	}
}
func (h *changeHeap) pop() msg {
	m := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, mi := 2*i+1, 2*i+2, i
		if l < last && msgLess(h.a[l], h.a[mi]) {
			mi = l
		}
		if r < last && msgLess(h.a[r], h.a[mi]) {
			mi = r
		}
		if mi == i {
			break
		}
		h.a[i], h.a[mi] = h.a[mi], h.a[i]
		i = mi
	}
	return m
}

// msgLess orders inbox messages by time, then net, so that same-net
// messages pop in injection order per time (values are strictly changing
// per net per time by construction).
func msgLess(a, b msg) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.net < b.net
}
