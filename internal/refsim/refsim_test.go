package refsim

import (
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

var testLib = func() *truthtab.CompiledLibrary {
	cl, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		panic(err)
	}
	return cl
}()

func TestInverterDelay(t *testing.T) {
	nl := netlist.New("t", liberty.MustBuiltin())
	if err := nl.MarkInput(nl.AddNet("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g", "INV", map[string]string{"A": "a", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, testLib, sdf.Uniform(nl, 25))
	if err != nil {
		t.Fatal(err)
	}
	y, _ := nl.Net("y")
	got := Collect{}
	err = s.Run([]Stim{
		{Net: 0, Time: 100, Val: logic.V0},
		{Net: 0, Time: 200, Val: logic.V1},
	}, got.Add)
	if err != nil {
		t.Fatal(err)
	}
	want := []event.Event{{Time: 125, Val: logic.V1}, {Time: 225, Val: logic.V0}}
	if len(got[y]) != 2 || got[y][0] != want[0] || got[y][1] != want[1] {
		t.Fatalf("y events: %v", got[y])
	}
	if s.NetValue(y) != logic.V0 {
		t.Errorf("final value %v", s.NetValue(y))
	}
}

func TestInertialGlitchSuppression(t *testing.T) {
	// NAND2 with rise 60 / fall 10: a short low pulse computed from two
	// input changes collapses when the later (falling-delay) transition
	// lands before the earlier (rising-delay) one.
	nl := netlist.New("t", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("a"))
	nl.MarkInput(nl.AddNet("b"))
	if _, err := nl.AddInstance("g", "NAND2", map[string]string{"A": "a", "B": "b", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	f := &sdf.File{Timescale: 1, Cells: []sdf.Cell{{
		CellType: "NAND2", Instance: "g",
		Paths: []sdf.IOPath{
			{From: "A", To: "Y", Delay: sdf.Delay{Rise: 60, Fall: 10}},
			{From: "B", To: "Y", Delay: sdf.Delay{Rise: 60, Fall: 10}},
		},
	}}}
	delays, err := sdf.Apply(f, nl, sdf.Delay{Rise: 1, Fall: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := nl.Net("y")
	got := Collect{}
	// a=1,b=1 at t=100 -> y falls at 110. a->0 at 200 -> y rises at 260.
	// a->1 again at 210 -> y falls at 220, cancelling the 260 rise: the
	// output pulse never happens.
	err = s.Run([]Stim{
		{Net: 0, Time: 100, Val: logic.V1},
		{Net: 1, Time: 100, Val: logic.V1},
		{Net: 0, Time: 200, Val: logic.V0},
		{Net: 0, Time: 210, Val: logic.V1},
	}, got.Add)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[y]) != 1 || got[y][0].Time != 110 || got[y][0].Val != logic.V0 {
		t.Fatalf("y events: %v (glitch not suppressed)", got[y])
	}
}

func TestAsyncResetDominates(t *testing.T) {
	nl := netlist.New("t", liberty.MustBuiltin())
	for _, p := range []string{"clk", "d", "rb"} {
		nl.MarkInput(nl.AddNet(p))
	}
	if _, err := nl.AddInstance("ff", "DFF_PR", map[string]string{
		"CLK": "clk", "D": "d", "RESET_B": "rb", "Q": "q"}); err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, testLib, sdf.Uniform(nl, 20))
	if err != nil {
		t.Fatal(err)
	}
	clk, _ := nl.Net("clk")
	d, _ := nl.Net("d")
	rb, _ := nl.Net("rb")
	q, _ := nl.Net("q")
	got := Collect{}
	err = s.Run([]Stim{
		{Net: rb, Time: 0, Val: logic.V0},
		{Net: d, Time: 0, Val: logic.V1},
		{Net: clk, Time: 0, Val: logic.V0},
		{Net: clk, Time: 500, Val: logic.V1}, // capture blocked by reset
		{Net: clk, Time: 1000, Val: logic.V0},
		{Net: rb, Time: 1200, Val: logic.V1},
		{Net: clk, Time: 1500, Val: logic.V1}, // captures d=1
	}, got.Add)
	if err != nil {
		t.Fatal(err)
	}
	evs := got[q]
	if len(evs) != 2 {
		t.Fatalf("q events: %v", evs)
	}
	if evs[0] != (event.Event{Time: 20, Val: logic.V0}) {
		t.Errorf("reset event: %+v", evs[0])
	}
	if evs[1] != (event.Event{Time: 1520, Val: logic.V1}) {
		t.Errorf("capture event: %+v", evs[1])
	}
}

func TestRunValidation(t *testing.T) {
	nl := netlist.New("t", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("a"))
	if _, err := nl.AddInstance("g", "INV", map[string]string{"A": "a", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(nl, testLib, sdf.Uniform(nl, 0)); err == nil {
		t.Error("zero delay must be rejected")
	}
	s, err := New(nl, testLib, sdf.Uniform(nl, 5))
	if err != nil {
		t.Fatal(err)
	}
	y, _ := nl.Net("y")
	if err := s.Run([]Stim{{Net: y, Time: 0, Val: logic.V1}}, nil); err == nil {
		t.Error("stimulus on driven net must fail")
	}
}

func TestConstantConeInitialization(t *testing.T) {
	// TIEHI -> INV: the INV output must already be 0 before any stimulus
	// (the shared initial-conditions fixpoint), producing no events.
	nl := netlist.New("t", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("unused"))
	if _, err := nl.AddInstance("t1", "TIEHI", map[string]string{"Y": "one"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g", "INV", map[string]string{"A": "one", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, testLib, sdf.Uniform(nl, 5))
	if err != nil {
		t.Fatal(err)
	}
	got := Collect{}
	if err := s.Run(nil, got.Add); err != nil {
		t.Fatal(err)
	}
	y, _ := nl.Net("y")
	if len(got[y]) != 0 {
		t.Errorf("constant cone produced events: %v", got[y])
	}
	if s.NetValue(y) != logic.V0 {
		t.Errorf("y initial value %v, want 0", s.NetValue(y))
	}
}
