// Package refsim is a classical sequential event-driven gate-level
// simulator: one global time-ordered queue, gates evaluated when their
// inputs commit events, inertial output scheduling.
//
// It plays two roles in this repository:
//
//   - the stand-in for the single-threaded commercial simulator (Synopsys
//     VCS) in the paper's Table II / Figure 8 comparisons, and
//   - the golden oracle: it shares the truth tables, edge-coding and
//     scheduling rules with the stable-time engine, so the two must produce
//     byte-identical committed event streams. Any divergence is a bug, and
//     the test suite checks this on randomized circuits and stimuli.
//
// All arc delays must be >= 1 ps; zero-delay arcs would require delta-cycle
// iteration within one timestamp, which this simulator (deliberately) does
// not implement.
package refsim

import (
	"fmt"
	"sort"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/sched"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

// Stim is one primary-input change.
type Stim struct {
	Net  netlist.NetID
	Time int64
	Val  logic.Value
}

// Sink receives each committed event, in global time order per net.
type Sink func(nid netlist.NetID, ev event.Event)

// Simulator is a single-run sequential simulator for one netlist. All
// per-gate state lives in flat arrays addressed by the plan's slot offsets.
type Simulator struct {
	p  *plan.Plan
	nl *netlist.Netlist

	netVal  []logic.Value
	inVals  []logic.Value  // per input slot
	states  []logic.Value  // per state slot
	semOut  []logic.Value  // per output slot
	outs    []sched.Output // per output slot
	touched []int64        // per-gate timestamp of last queueing into eval set

	heap wakeHeap

	// Stats. Plain fields are fine here: the simulator is single-threaded
	// and the fields are read after Run returns.
	Evaluations int64
	Events      int64

	// Observability sinks (nil-safe; see Observe). The hot loop keeps its
	// plain counters above — obs sees per-run deltas, not per-event adds.
	obsMetrics *obs.Registry
	obsTrace   *obs.Trace
	obsTid     int
}

// Observe attaches observability sinks: each Run records a span on the
// trace, folds its evaluation/event counts into the refsim.* counters, and
// observes its wall time in refsim.run_ns. Either argument may be nil.
// Call before Run.
func (s *Simulator) Observe(m *obs.Registry, tr *obs.Trace) {
	s.obsMetrics = m
	s.obsTrace = tr
	s.obsTid = tr.Thread("refsim")
}

// New lowers the design and prepares a simulator. The compiled library must
// cover every cell type. To share the lowering with other simulators, use
// plan.Build + NewFromPlan.
func New(nl *netlist.Netlist, lib *truthtab.CompiledLibrary, delays *sdf.Delays) (*Simulator, error) {
	p, err := plan.Build(nl, lib, delays)
	if err != nil {
		return nil, err
	}
	return NewFromPlan(p)
}

// NewFromPlan prepares a simulator over a prebuilt plan, which stays
// read-only and shareable.
func NewFromPlan(p *plan.Plan) (*Simulator, error) {
	for _, tab := range p.Tables {
		if tab.NumInputs > 16 || tab.NumOutputs > 8 || tab.NumStates > 8 {
			return nil, fmt.Errorf("refsim: cell %s exceeds supported pin/state counts", tab.Cell.Name)
		}
	}
	// Validate the >=1ps delay requirement.
	for g := 0; g < p.NumGates(); g++ {
		id := netlist.CellID(g)
		ni, no := p.NumIn(id), p.NumOut(id)
		for o := 0; o < no; o++ {
			for in := 0; in < ni; in++ {
				if d := p.Arc(id, o, in); d.Min() < 1 {
					return nil, fmt.Errorf("refsim: instance %s arc %d->%d has delay < 1 ps",
						p.Netlist.Instances[g].Name, in, o)
				}
			}
		}
	}
	s := &Simulator{p: p, nl: p.Netlist}
	s.netVal = append([]logic.Value(nil), p.NetInit...)
	s.inVals = append([]logic.Value(nil), p.InInit...)
	s.states = append([]logic.Value(nil), p.StateInit...)
	s.semOut = append([]logic.Value(nil), p.OutInit...)
	s.outs = make([]sched.Output, len(p.OutNet))
	for o := range s.outs {
		s.outs[o].Reset(s.semOut[o])
	}
	s.touched = make([]int64, p.NumGates())
	for i := range s.touched {
		s.touched[i] = -1
	}
	return s, nil
}

// Run simulates the stimulus to completion (until no scheduled event
// remains) and streams committed events to sink. Stimuli must target
// primary inputs and may be unsorted; they are sorted stably by time.
func (s *Simulator) Run(stim []Stim, sink Sink) error {
	for _, st := range stim {
		if int(st.Net) >= len(s.nl.Nets) || !s.nl.Nets[st.Net].IsInput {
			return fmt.Errorf("refsim: stimulus on non-input net %d", st.Net)
		}
	}
	if s.obsMetrics != nil || s.obsTrace != nil {
		start := time.Now()
		evals, events := s.Evaluations, s.Events
		s.obsTrace.Begin(s.obsTid, "refsim.run")
		defer func() {
			s.obsTrace.End(s.obsTid)
			m := s.obsMetrics
			m.Counter("refsim.evaluations").Add(s.Evaluations - evals)
			m.Counter("refsim.events").Add(s.Events - events)
			m.Histogram("refsim.run_ns").Observe(time.Since(start).Nanoseconds())
		}()
	}
	sort.SliceStable(stim, func(a, b int) bool { return stim[a].Time < stim[b].Time })

	var (
		changedNets []netlist.NetID
		evalSet     []netlist.CellID
		stimPos     int
	)
	for stimPos < len(stim) || s.heap.len() > 0 {
		// Next timestamp.
		t := int64(1) << 62
		if stimPos < len(stim) {
			t = stim[stimPos].Time
		}
		if s.heap.len() > 0 && s.heap.top().time < t {
			t = s.heap.top().time
		}

		// Commit phase: apply stimulus and due output transitions.
		changedNets = changedNets[:0]
		for stimPos < len(stim) && stim[stimPos].Time == t {
			st := stim[stimPos]
			stimPos++
			v := st.Val.Settle()
			if s.netVal[st.Net] == v {
				continue
			}
			s.netVal[st.Net] = v
			changedNets = append(changedNets, st.Net)
			s.Events++
			if sink != nil {
				sink(st.Net, event.Event{Time: t, Val: v})
			}
		}
		for s.heap.len() > 0 && s.heap.top().time == t {
			w := s.heap.pop()
			outB := int(s.p.OutOff[w.gate])
			no := int(s.p.OutOff[w.gate+1]) - outB
			for o := 0; o < no; o++ {
				out := &s.outs[outB+o]
				for {
					te, ok := out.NextPending()
					if !ok || te > t {
						break
					}
					ev := out.PopFront()
					nid := s.p.OutNet[outB+o]
					if nid < 0 {
						continue
					}
					s.netVal[nid] = ev.Val
					changedNets = append(changedNets, nid)
					s.Events++
					if sink != nil {
						sink(nid, ev)
					}
				}
			}
		}
		if len(changedNets) == 0 {
			continue // stale wakeup
		}

		// Evaluate phase: each gate fed by a changed net, once.
		evalSet = evalSet[:0]
		for _, nid := range changedNets {
			for k := s.p.FanOff[nid]; k < s.p.FanOff[nid+1]; k++ {
				cell := s.p.FanCell[k]
				if s.touched[cell] != t {
					s.touched[cell] = t
					evalSet = append(evalSet, cell)
				}
			}
		}
		for _, gid := range evalSet {
			s.evaluate(gid, t)
		}
	}
	return nil
}

// evaluate performs one truth-table query for the gate at time t, using the
// exact same edge coding, delay selection, and scheduling rules as the
// stable-time engine. ClassComb1 gates take the packed-LUT fast path.
func (s *Simulator) evaluate(gid netlist.CellID, t int64) {
	if s.p.KernelOf[s.p.TableOf[gid]] == truthtab.ClassComb1 {
		s.evalComb1(gid, t)
		return
	}
	p := s.p
	inB := int(p.InOff[gid])
	ni := int(p.InOff[gid+1]) - inB
	outB := int(p.OutOff[gid])
	no := int(p.OutOff[gid+1]) - outB
	stB := int(p.StateOff[gid])
	ns := int(p.StateOff[gid+1]) - stB
	tab := p.Tables[p.TableOf[gid]]
	arcB := int(p.ArcOff[gid])
	inNets := p.InNet[inB : inB+ni]
	inVals := s.inVals[inB : inB+ni]
	s.Evaluations++

	// Query vector and changed-input set.
	var qIns [16]logic.Value
	var evIn [16]int
	nEv := 0
	for i, nid := range inNets {
		cur := s.netVal[nid]
		if cur != inVals[i] {
			evIn[nEv] = i
			nEv++
			if tab.EdgeSensitive[i] {
				qIns[i] = logic.EdgeCode(inVals[i], cur)
			} else {
				qIns[i] = cur
			}
		} else {
			qIns[i] = cur
		}
	}
	var qOuts, qNext [8]logic.Value
	tab.LookupInto(qIns[:ni], s.states[stB:stB+ns], qOuts[:no], qNext[:ns])

	for o := 0; o < no; o++ {
		nv := qOuts[o]
		if nv == s.semOut[outB+o] {
			continue
		}
		d := int64(1) << 62
		for k := 0; k < nEv; k++ {
			if ad := sched.DelayFor(p.Arcs[arcB+o*ni+evIn[k]], nv); ad < d {
				d = ad
			}
		}
		s.outs[outB+o].Schedule(t+d, nv)
		s.semOut[outB+o] = nv
		s.heap.push(wake{time: t + d, gate: gid})
	}
	for k := 0; k < nEv; k++ {
		inVals[evIn[k]] = s.netVal[inNets[evIn[k]]]
	}
	copy(s.states[stB:stB+ns], qNext[:ns])
}

// evalComb1 is the ClassComb1 kernel: single output, no state, no edge
// coding, so the query collapses to one packed-LUT probe over the raw net
// values (settled values index 3-bit fields directly). Delay selection and
// scheduling match the generic path exactly; when the plan proved every arc
// delay equal, the per-changed-input minimum scan collapses to the first arc.
func (s *Simulator) evalComb1(gid netlist.CellID, t int64) {
	p := s.p
	inB := int(p.InOff[gid])
	ni := int(p.InOff[gid+1]) - inB
	outB := int(p.OutOff[gid])
	lut := p.LUTs[p.TableOf[gid]]
	arcB := int(p.ArcOff[gid])
	inNets := p.InNet[inB : inB+ni]
	inVals := s.inVals[inB : inB+ni]
	s.Evaluations++

	idx := 0
	var evIn [truthtab.MaxPackedInputs]int
	nEv := 0
	for i, nid := range inNets {
		cur := s.netVal[nid]
		if cur != inVals[i] {
			evIn[nEv] = i
			nEv++
			inVals[i] = cur
		}
		idx |= int(cur) << (3 * i)
	}
	nv := lut.Data[idx]
	if nv == s.semOut[outB] {
		return
	}
	var d int64
	if p.ArcUniform[gid] && nEv > 0 {
		d = sched.DelayFor(p.Arcs[arcB], nv)
	} else {
		d = int64(1) << 62
		for k := 0; k < nEv; k++ {
			if ad := sched.DelayFor(p.Arcs[arcB+evIn[k]], nv); ad < d {
				d = ad
			}
		}
	}
	s.outs[outB].Schedule(t+d, nv)
	s.semOut[outB] = nv
	s.heap.push(wake{time: t + d, gate: gid})
}

// NetValue returns the current value of a net (after Run, the final value).
func (s *Simulator) NetValue(nid netlist.NetID) logic.Value { return s.netVal[nid] }

// Collect is a convenience sink that gathers all events per net.
type Collect map[netlist.NetID][]event.Event

// Add returns a Sink that appends into c.
func (c Collect) Add(nid netlist.NetID, ev event.Event) {
	c[nid] = append(c[nid], ev)
}

// wake is a heap entry: re-examine a gate's pending outputs at `time`.
type wake struct {
	time int64
	gate netlist.CellID
}

// wakeHeap is a plain binary min-heap by time (ties broken by gate id for
// determinism, though order within a timestamp is not observable).
type wakeHeap struct {
	a []wake
}

func (h *wakeHeap) len() int  { return len(h.a) }
func (h *wakeHeap) top() wake { return h.a[0] }
func (h *wakeHeap) push(w wake) {
	h.a = append(h.a, w)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !wakeLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *wakeHeap) pop() wake {
	w := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && wakeLess(h.a[l], h.a[m]) {
			m = l
		}
		if r < last && wakeLess(h.a[r], h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return w
}

func wakeLess(a, b wake) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.gate < b.gate
}
