package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gatesim/internal/gen"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/sim"
)

// LaneBenchConfig controls the multi-stimulus lane measurement: one
// lane-mode run carrying Lanes independently seeded stimulus vectors,
// against the honest baseline — the same Lanes traces run sequentially
// through scalar engines at one thread.
type LaneBenchConfig struct {
	Preset string
	Scale  float64
	Cycles int
	Lanes  int
	// Threads is the lane run's thread count (the scalar baseline always
	// runs serial: the comparison is one pass vs N passes, not parallelism).
	Threads int
	Seed    int64
	// Metrics/Trace, when non-nil, instrument the lane run.
	Metrics *obs.Registry
	Trace   *obs.Trace
}

// LaneBenchResult is one measured lane point.
type LaneBenchResult struct {
	Lanes   int
	Threads int
	// LaneWall is the wall time of the single lane-mode run (all lanes).
	LaneWall time.Duration
	// ScalarWall is the summed wall time of the sequential scalar runs.
	ScalarWall time.Duration
	// VisitsLane / Events are the lane run's counters.
	VisitsLane int64
	Events     int64
	// Speedup is the aggregate ratio ScalarWall / LaneWall: how many times
	// faster the lane run delivers the same Lanes committed streams.
	Speedup float64
	// LaneThroughput is committed events x lanes per second of lane wall
	// time — the lane run's aggregate delivery rate across all carried
	// stimulus vectors.
	LaneThroughput float64
}

// LaneBench measures one lane point on a generated preset. Stimuli come
// from gen.LaneStimuli (shared clock/reset/scan schedule, per-lane data
// seeds), so the lanes exercise the case the lane engine is built for:
// mostly shared change points with diverging data.
func LaneBench(ctx context.Context, cfg LaneBenchConfig) (LaneBenchResult, error) {
	if cfg.Lanes <= 1 {
		return LaneBenchResult{}, fmt.Errorf("harness: LaneBench needs Lanes > 1, got %d", cfg.Lanes)
	}
	p, err := gen.PresetByName(cfg.Preset)
	if err != nil {
		return LaneBenchResult{}, err
	}
	d, err := gen.Build(p.Spec(cfg.Scale, cfg.Seed))
	if err != nil {
		return LaneBenchResult{}, err
	}
	lib, err := CompiledBuiltin()
	if err != nil {
		return LaneBenchResult{}, err
	}
	delays := gen.Delays(d, cfg.Seed)
	pl, err := plan.Build(d.Netlist, lib, delays)
	if err != nil {
		return LaneBenchResult{}, err
	}
	spec := gen.StimSpec{Cycles: cfg.Cycles, ActivityFactor: 0.6, Seed: cfg.Seed, ScanBurst: 16}
	perLane := gen.LaneStimuli(d, spec, cfg.Lanes)

	res := LaneBenchResult{Lanes: cfg.Lanes, Threads: cfg.Threads}

	// Baseline: the same traces, one scalar streamed run each, serial.
	for _, stim := range perLane {
		wall, _, err := timeEngine(ctx, d, pl, stim, sim.Options{Mode: sim.ModeSerial})
		if err != nil {
			return LaneBenchResult{}, err
		}
		res.ScalarWall += wall
	}

	// Lane run: all traces merged into one pass.
	changes := make([][]sim.Change, len(perLane))
	for l, cs := range perLane {
		changes[l] = make([]sim.Change, len(cs))
		for i, c := range cs {
			changes[l][i] = sim.Change{Net: c.Net, Time: c.Time, Val: c.Val}
		}
	}
	merged, err := sim.MergeLaneChanges(changes)
	if err != nil {
		return LaneBenchResult{}, err
	}
	mode := sim.ModeSerial
	if cfg.Threads > 1 {
		mode = sim.ModeParallel
	}
	e, err := sim.NewFromPlan(pl, sim.Options{
		Mode: mode, Threads: cfg.Threads, Lanes: cfg.Lanes,
		Metrics: cfg.Metrics, Trace: cfg.Trace,
	})
	if err != nil {
		return LaneBenchResult{}, err
	}
	defer e.Close()
	start := time.Now()
	if err := e.RunLaneStreamCtx(ctx, merged, sim.LaneStreamConfig{
		SlicePS: 16 * d.Spec.ClockPeriodPS,
	}); err != nil {
		return LaneBenchResult{}, fmt.Errorf("harness: lane run (%d lanes): %w", cfg.Lanes, err)
	}
	res.LaneWall = time.Since(start)
	st := e.Stats()
	res.VisitsLane = st.VisitsLane
	res.Events = st.EventsCommitted
	if res.LaneWall > 0 {
		res.Speedup = float64(res.ScalarWall) / float64(res.LaneWall)
		res.LaneThroughput = float64(res.Events) * float64(res.Lanes) / res.LaneWall.Seconds()
	}
	return res, nil
}

// LaneBenchPoint is the JSON shape of a lane point inside the bench-smoke
// report. Reports written before lane mode lack it entirely; benchcmp
// treats one-sided absence as a schema gap.
type LaneBenchPoint struct {
	Lanes       int   `json:"lanes"`
	Threads     int   `json:"threads"`
	LaneRunNS   int64 `json:"lane_run_ns"`
	ScalarRunNS int64 `json:"scalar_run_ns"`
	VisitsLane  int64 `json:"visits_lane"`
	// LaneThroughput is committed events x lanes per second of lane wall.
	LaneThroughput  float64 `json:"lane_throughput"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
}

// Point flattens the result for the report.
func (r LaneBenchResult) Point() LaneBenchPoint {
	return LaneBenchPoint{
		Lanes: r.Lanes, Threads: r.Threads,
		LaneRunNS: r.LaneWall.Nanoseconds(), ScalarRunNS: r.ScalarWall.Nanoseconds(),
		VisitsLane: r.VisitsLane, LaneThroughput: r.LaneThroughput, SpeedupVsScalar: r.Speedup,
	}
}

// FormatLaneBench renders one lane point for the terminal.
func FormatLaneBench(preset string, rows []LaneBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-stimulus lanes on %s (baseline: same traces run sequentially, scalar, 1 thread)\n", preset)
	fmt.Fprintf(&b, "%7s %8s %12s %12s %12s %12s %10s\n", "#Lanes", "Threads", "Lane(s)", "Scalar(s)", "VisitsLane", "Mev*lane/s", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %8d %12.3f %12.3f %12d %12.2f %9.2fx\n",
			r.Lanes, r.Threads, r.LaneWall.Seconds(), r.ScalarWall.Seconds(), r.VisitsLane, r.LaneThroughput/1e6, r.Speedup)
	}
	return b.String()
}
