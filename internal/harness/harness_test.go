package harness

import (
	"context"
	"strings"
	"testing"
)

func TestTable1Smoke(t *testing.T) {
	rows, err := Table1(0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Cells <= 0 || r.Nets <= 0 || r.Pins <= r.Cells {
			t.Errorf("row %s implausible: %+v", r.Name, r)
		}
	}
	out := FormatTable1(rows, 0.002)
	for _, name := range []string{"aes128", "leon2", "#Cells"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %q in:\n%s", name, out)
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	rows, err := Table2(context.Background(), Table2Config{
		Scale: 0.004, Presets: []string{"blabla"},
		ShortCycles: 20, LongCycles: 40, Threads: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Ref <= 0 || r.Ours1T <= 0 || r.OursNT <= 0 || r.Hybrid <= 0 {
			t.Errorf("missing timings: %+v", r)
		}
		if r.Events == 0 {
			t.Error("no events simulated")
		}
	}
	out := FormatTable2(rows, 2)
	if !strings.Contains(out, "blabla") || !strings.Contains(out, "Avg.") {
		t.Errorf("format:\n%s", out)
	}
}

func TestFig8Smoke(t *testing.T) {
	pts, err := Fig8(context.Background(), Fig8Config{
		Preset: "blabla", Scale: 0.004, Cycles: 15, Threads: []int{1, 2}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %d", len(pts))
	}
	for _, p := range pts {
		if p.PartSDF <= 0 || p.OursSDF <= 0 || p.PartUnit <= 0 || p.OursUnit <= 0 {
			t.Errorf("missing timings: %+v", p)
		}
		if p.PartRoundsSDF == 0 {
			t.Error("no rounds recorded")
		}
	}
	out := FormatFig8("blabla", pts)
	if !strings.Contains(out, "FIGURE 8") {
		t.Errorf("format:\n%s", out)
	}
}

func TestLibcompSmoke(t *testing.T) {
	r, err := Libcomp(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells != 60 || r.Entries == 0 || r.Duration <= 0 {
		t.Errorf("result: %+v", r)
	}
	if !strings.Contains(FormatLibcomp(r), "60 cells") {
		t.Error("format wrong")
	}
}

func TestParallelismSmoke(t *testing.T) {
	r, err := Parallelism(context.Background(), "blabla", 0.004, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Levels == 0 || r.MaxWidth == 0 || r.EngineSweepsSDF == 0 {
		t.Errorf("row: %+v", r)
	}
	if r.PartRoundsSDF <= r.PartRoundsUnit {
		t.Errorf("SDF rounds (%d) should exceed unit rounds (%d)", r.PartRoundsSDF, r.PartRoundsUnit)
	}
	out := FormatParallelism([]ParallelismRow{r})
	if !strings.Contains(out, "blabla") {
		t.Error("format wrong")
	}
}
