package harness

import (
	"context"
	"os"
	"strconv"
	"testing"
)

// TestLaneBench runs a tiny lane point end to end: the measurement must
// produce a populated result and the lane run must actually be in lane
// mode (visits_lane > 0).
func TestLaneBench(t *testing.T) {
	res, err := LaneBench(context.Background(), LaneBenchConfig{
		Preset: "blabla", Scale: 0.01, Cycles: 20, Lanes: 4, Threads: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VisitsLane == 0 {
		t.Error("lane run recorded no lane visits")
	}
	if res.LaneWall <= 0 || res.ScalarWall <= 0 || res.Speedup <= 0 || res.LaneThroughput <= 0 {
		t.Errorf("unpopulated result: %+v", res)
	}
	if res.Lanes != 4 || res.Threads != 1 {
		t.Errorf("config not echoed: %+v", res)
	}
	if _, err := LaneBench(context.Background(), LaneBenchConfig{Preset: "blabla", Lanes: 1}); err == nil {
		t.Error("Lanes=1 accepted")
	}
}

// BenchmarkLane32 is the profiling entry for the 32-lane aes256 point:
//
//	go test -run '^$' -bench BenchmarkLane32 -benchtime 1x -cpuprofile cpu.out ./internal/harness/
//
// LANEBENCH_SCALE / LANEBENCH_CYCLES / LANEBENCH_LANES / LANEBENCH_THREADS
// override the smoke shape.
func BenchmarkLane32(b *testing.B) {
	scale := 0.005
	if s := os.Getenv("LANEBENCH_SCALE"); s != "" {
		scale, _ = strconv.ParseFloat(s, 64)
	}
	cycles := 60
	if s := os.Getenv("LANEBENCH_CYCLES"); s != "" {
		cycles, _ = strconv.Atoi(s)
	}
	lanes := 32
	if s := os.Getenv("LANEBENCH_LANES"); s != "" {
		lanes, _ = strconv.Atoi(s)
	}
	threads := 1
	if s := os.Getenv("LANEBENCH_THREADS"); s != "" {
		threads, _ = strconv.Atoi(s)
	}
	for i := 0; i < b.N; i++ {
		res, err := LaneBench(context.Background(), LaneBenchConfig{
			Preset: "aes256", Scale: scale, Cycles: cycles, Lanes: lanes, Threads: threads, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup")
		b.ReportMetric(float64(res.VisitsLane), "visits_lane")
	}
}
