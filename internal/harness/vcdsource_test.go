package harness

import (
	"io"
	"strings"
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/sim"
	"gatesim/internal/vcd"
)

func TestVCDSource(t *testing.T) {
	nl := netlist.New("top", liberty.MustBuiltin())
	for _, p := range []string{"a", "b"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("g", "AND2", map[string]string{"A": "a", "B": "b", "Y": "y"}); err != nil {
		t.Fatal(err)
	}

	src := `$timescale 1ps $end
$scope module top $end
$var wire 1 ! a $end
$var wire 1 " b $end
$upscope $end
$enddefinitions $end
#0
0!
0"
#10
1!
1!
#20
1"
0"
1"
`
	r, err := vcd.NewReader(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewVCDSource(r, nl)
	if err != nil {
		t.Fatal(err)
	}
	var got []sim.Change
	for {
		c, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	// Duplicate same-time changes collapse to the last value.
	a, _ := nl.Net("a")
	b, _ := nl.Net("b")
	want := []sim.Change{
		{Net: a, Time: 0, Val: 0}, {Net: b, Time: 0, Val: 0},
		{Net: a, Time: 10, Val: 1},
		{Net: b, Time: 20, Val: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("changes: %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("change %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestVCDSourceUnknownSignal(t *testing.T) {
	nl := netlist.New("top", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("a"))
	src := "$var wire 1 ! nosuch $end\n$enddefinitions $end\n"
	r, err := vcd.NewReader(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVCDSource(r, nl); err == nil {
		t.Error("unknown signal must fail")
	}
}
