// Package harness drives the paper's experiments end to end and formats
// results in the shape of its tables and figures. The same entry points are
// used by cmd/experiments and by the repository's benchmarks, so numbers in
// EXPERIMENTS.md can be regenerated with one command.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/partsim"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/truthtab"
	"gatesim/internal/vcd"
)

// CompiledBuiltin returns the compiled builtin library (cached). Both the
// library parse and the truth-table compile can fail; the error is cached
// alongside the result, so every caller sees the same outcome.
func CompiledBuiltin() (*truthtab.CompiledLibrary, error) {
	compiledOnce.Do(func() {
		lib, err := liberty.Builtin()
		if err != nil {
			compiledErr = fmt.Errorf("harness: builtin library: %w", err)
			return
		}
		cl, err := truthtab.CompileLibrary(lib)
		if err != nil {
			compiledErr = fmt.Errorf("harness: compiling builtin library: %w", err)
			return
		}
		compiled = cl
	})
	return compiled, compiledErr
}

var (
	compiledOnce sync.Once
	compiled     *truthtab.CompiledLibrary
	compiledErr  error
)

// ---------------------------------------------------------------- Table I

// Table1Row is one benchmark statistics line.
type Table1Row struct {
	Name       string
	Process    string
	Cells      int
	Nets       int
	Pins       int
	Sequential int
	PaperCells int
}

// Table1 builds every preset at the given scale and reports its statistics.
func Table1(scale float64, seed int64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(gen.Presets))
	for _, p := range gen.Presets {
		d, err := gen.Build(p.Spec(scale, seed))
		if err != nil {
			return nil, fmt.Errorf("harness: building %s: %w", p.Name, err)
		}
		st := d.Netlist.Stats()
		rows = append(rows, Table1Row{
			Name: p.Name, Process: p.Process,
			Cells: st.Cells, Nets: st.Nets, Pins: st.Pins,
			Sequential: d.Netlist.SequentialCount(),
			PaperCells: p.FullCells,
		})
	}
	return rows, nil
}

// FormatTable1 renders rows like the paper's Table I.
func FormatTable1(rows []Table1Row, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: Benchmark statistics (scale %.3g of the paper's designs)\n", scale)
	fmt.Fprintf(&b, "%-14s %-8s %9s %9s %9s %7s %12s\n",
		"Benchmark", "Process", "#Cells", "#Nets", "#Pins", "#Seq", "paper#Cells")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s %9d %9d %9d %7d %12d\n",
			r.Name, r.Process, r.Cells, r.Nets, r.Pins, r.Sequential, r.PaperCells)
	}
	return b.String()
}

// --------------------------------------------------------------- Table II

// Table2Config controls the runtime-comparison experiment.
type Table2Config struct {
	Scale       float64  // design scale vs the paper
	Presets     []string // nil = all seven
	ShortCycles int      // paper: 1000 (activity 0.8)
	LongCycles  int      // paper: 10000 (activity 0.5)
	Threads     int      // "24 CPUs" column; 0 = GOMAXPROCS
	Seed        int64
	// Metrics/Trace, when non-nil, are handed to every timed simulator so
	// one registry/trace accumulates the whole experiment. Leave nil for
	// clean timing runs (the disabled path costs ~1 ns per record site).
	Metrics *obs.Registry
	Trace   *obs.Trace
}

// Table2Row is one line of the runtime comparison.
type Table2Row struct {
	Benchmark string
	Trace     string
	Cycles    int
	Activity  float64

	Ref      time.Duration // sequential reference ("VCS execute")
	Ours1T   time.Duration
	OursNT   time.Duration
	Manycore time.Duration // GPU-analogue executor
	Hybrid   time.Duration // auto-selected mode

	Events int64
}

// Speedups relative to the sequential reference.
func (r Table2Row) Speedup1T() float64   { return ratio(r.Ref, r.Ours1T) }
func (r Table2Row) SpeedupNT() float64   { return ratio(r.Ref, r.OursNT) }
func (r Table2Row) SpeedupHyb() float64  { return ratio(r.Ref, r.Hybrid) }
func (r Table2Row) SpeedupMany() float64 { return ratio(r.Ref, r.Manycore) }

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table2 runs the full comparison. This is the expensive experiment; tune
// Scale and cycle counts to the time budget. The context is threaded into
// every timed simulation, so cancellation aborts mid-experiment with the
// rows completed so far discarded.
func Table2(ctx context.Context, cfg Table2Config) ([]Table2Row, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.ShortCycles <= 0 {
		cfg.ShortCycles = 200
	}
	if cfg.LongCycles <= 0 {
		cfg.LongCycles = 10 * cfg.ShortCycles
	}
	names := cfg.Presets
	if names == nil {
		for _, p := range gen.Presets {
			names = append(names, p.Name)
		}
	}
	var rows []Table2Row
	for _, name := range names {
		p, err := gen.PresetByName(name)
		if err != nil {
			return nil, err
		}
		d, err := gen.Build(p.Spec(cfg.Scale, cfg.Seed))
		if err != nil {
			return nil, err
		}
		delays := gen.Delays(d, cfg.Seed)
		// One lowering per preset, shared by every simulator and trace below:
		// the comparison times simulation, not repeated construction.
		lib, err := CompiledBuiltin()
		if err != nil {
			return nil, err
		}
		pl, err := plan.Build(d.Netlist, lib, delays)
		if err != nil {
			return nil, err
		}
		traces := []struct {
			label  string
			cycles int
			af     float64
		}{
			{"short", cfg.ShortCycles, 0.8},
			{"long", cfg.LongCycles, 0.5},
		}
		for _, tr := range traces {
			stim := gen.Stimuli(d, gen.StimSpec{
				Cycles: tr.cycles, ActivityFactor: tr.af, Seed: cfg.Seed, ScanBurst: 16,
			})
			row := Table2Row{Benchmark: name, Trace: tr.label, Cycles: tr.cycles, Activity: tr.af}

			var events int64
			if row.Ref, events, err = timeRefsim(pl, stim, cfg.Metrics, cfg.Trace); err != nil {
				return nil, err
			}
			row.Events = events
			ob := func(mode sim.Mode, threads int) sim.Options {
				return sim.Options{Mode: mode, Threads: threads, Metrics: cfg.Metrics, Trace: cfg.Trace}
			}
			if row.Ours1T, _, err = timeEngine(ctx, d, pl, stim, ob(sim.ModeSerial, 0)); err != nil {
				return nil, err
			}
			if row.OursNT, _, err = timeEngine(ctx, d, pl, stim, ob(sim.ModeParallel, cfg.Threads)); err != nil {
				return nil, err
			}
			if row.Manycore, _, err = timeEngine(ctx, d, pl, stim, ob(sim.ModeManycore, cfg.Threads)); err != nil {
				return nil, err
			}
			if row.Hybrid, _, err = timeEngine(ctx, d, pl, stim, ob(sim.ModeAuto, cfg.Threads)); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func timeRefsim(pl *plan.Plan, stim []gen.Change, m *obs.Registry, tr *obs.Trace) (time.Duration, int64, error) {
	ref, err := refsim.NewFromPlan(pl)
	if err != nil {
		return 0, 0, fmt.Errorf("harness: building refsim: %w", err)
	}
	if m != nil || tr != nil {
		ref.Observe(m, tr)
	}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	start := time.Now()
	if err := ref.Run(rstim, nil); err != nil {
		return 0, 0, fmt.Errorf("harness: refsim run: %w", err)
	}
	return time.Since(start), ref.Events, nil
}

// timeEngine runs one full streamed simulation and reports wall time plus
// the engine counters (sweep/level wall time, pool wake/park/spawn), so
// callers can separate scheduling overhead from useful work. The engine's
// worker pool is released before returning: a harness run creates many
// engines back to back and must not accumulate parked goroutines.
func timeEngine(ctx context.Context, d *gen.Design, pl *plan.Plan, stim []gen.Change, opts sim.Options) (time.Duration, sim.Stats, error) {
	e, err := sim.NewFromPlan(pl, opts)
	if err != nil {
		return 0, sim.Stats{}, fmt.Errorf("harness: building engine: %w", err)
	}
	defer e.Close()
	changes := make([]sim.Change, len(stim))
	for i, s := range stim {
		changes[i] = sim.Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	slice := 16 * d.Spec.ClockPeriodPS
	start := time.Now()
	if err := e.RunStreamCtx(ctx, sim.NewSliceSource(changes), sim.StreamConfig{SlicePS: slice}); err != nil {
		return 0, sim.Stats{}, fmt.Errorf("harness: engine run (%v, %d threads): %w", opts.Mode, opts.Threads, err)
	}
	return time.Since(start), e.Stats(), nil
}

// FormatTable2 renders rows like the paper's Table II.
func FormatTable2(rows []Table2Row, threads int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: Runtime comparison (reference = sequential event-driven simulator standing in for 1-CPU VCS)\n")
	fmt.Fprintf(&b, "%-14s %-6s %7s %4s | %10s %10s %10s %10s %10s | %7s %7s %7s\n",
		"Benchmark", "Trace", "#Cycles", "AF",
		"Ref(s)", "1CPU(s)", fmt.Sprintf("%dCPU(s)", threads), "Many(s)", "Hybrid(s)",
		"x1CPU", fmt.Sprintf("x%dCPU", threads), "xHyb")
	var s1, sn, sh float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-6s %7d %4.1f | %10.3f %10.3f %10.3f %10.3f %10.3f | %6.2fx %6.2fx %6.2fx\n",
			r.Benchmark, r.Trace, r.Cycles, r.Activity,
			r.Ref.Seconds(), r.Ours1T.Seconds(), r.OursNT.Seconds(), r.Manycore.Seconds(), r.Hybrid.Seconds(),
			r.Speedup1T(), r.SpeedupNT(), r.SpeedupHyb())
		s1 += r.Speedup1T()
		sn += r.SpeedupNT()
		sh += r.SpeedupHyb()
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-14s %-6s %7s %4s | %10s %10s %10s %10s %10s | %6.2fx %6.2fx %6.2fx\n",
			"Avg.", "", "", "", "", "", "", "", "", s1/n, sn/n, sh/n)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Config controls the scalability experiment.
type Fig8Config struct {
	Preset  string
	Scale   float64
	Cycles  int
	Threads []int // e.g. 1,2,4,8,16
	Seed    int64
	// Metrics/Trace, when non-nil, are handed to every timed simulator (see
	// Table2Config).
	Metrics *obs.Registry
	Trace   *obs.Trace
}

// Fig8Point is one (threads, runtime) sample for each simulator/annotation.
type Fig8Point struct {
	Threads int

	PartUnit time.Duration // partition-based, uniform delays ("no SDF")
	PartSDF  time.Duration // partition-based, SDF delays
	OursUnit time.Duration
	OursSDF  time.Duration

	PartRoundsSDF int64 // lockstep rounds: the mechanism behind the curve

	// OursSDFStats are the engine counters of the SDF run: sweep/level wall
	// time and the worker-pool wake/park/spawn counts, separating scheduling
	// overhead from useful work at each thread count.
	OursSDFStats sim.Stats
}

// Fig8 measures runtime versus thread count for the partition-based
// baseline (VCS-FGP stand-in) and the stable-time engine, with and without
// SDF annotation — the paper's Figure 8. Cancellation via ctx aborts
// between (and, at sweep/round granularity, within) timed runs.
func Fig8(ctx context.Context, cfg Fig8Config) ([]Fig8Point, error) {
	p, err := gen.PresetByName(cfg.Preset)
	if err != nil {
		return nil, err
	}
	d, err := gen.Build(p.Spec(cfg.Scale, cfg.Seed))
	if err != nil {
		return nil, err
	}
	sdfDelays := gen.Delays(d, cfg.Seed)
	unitDelays := sdf.Uniform(d.Netlist, 120)
	// One structural lowering, re-annotated for the unit-delay series; both
	// plans are shared across every thread count and simulator below.
	lib, err := CompiledBuiltin()
	if err != nil {
		return nil, err
	}
	planSDF, err := plan.Build(d.Netlist, lib, sdfDelays)
	if err != nil {
		return nil, err
	}
	planUnit := planSDF.WithDelays(unitDelays)
	stim := gen.Stimuli(d, gen.StimSpec{
		Cycles: cfg.Cycles, ActivityFactor: 0.6, Seed: cfg.Seed, ScanBurst: 16,
	})

	var points []Fig8Point
	for _, th := range cfg.Threads {
		pt := Fig8Point{Threads: th}
		if pt.PartUnit, _, err = timePartsim(ctx, planUnit, stim, th, cfg.Metrics, cfg.Trace); err != nil {
			return nil, err
		}
		if pt.PartSDF, pt.PartRoundsSDF, err = timePartsim(ctx, planSDF, stim, th, cfg.Metrics, cfg.Trace); err != nil {
			return nil, err
		}
		mode := sim.ModeParallel
		if th == 1 {
			mode = sim.ModeSerial
		}
		opts := sim.Options{Mode: mode, Threads: th, Metrics: cfg.Metrics, Trace: cfg.Trace}
		if pt.OursUnit, _, err = timeEngine(ctx, d, planUnit, stim, opts); err != nil {
			return nil, err
		}
		if pt.OursSDF, pt.OursSDFStats, err = timeEngine(ctx, d, planSDF, stim, opts); err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

func timePartsim(ctx context.Context, pl *plan.Plan, stim []gen.Change, threads int, m *obs.Registry, tr *obs.Trace) (time.Duration, int64, error) {
	ps, err := partsim.NewFromPlan(pl, partsim.Options{Partitions: threads, Metrics: m, Trace: tr})
	if err != nil {
		return 0, 0, fmt.Errorf("harness: building partsim: %w", err)
	}
	pstim := make([]partsim.Stim, len(stim))
	for i, s := range stim {
		pstim[i] = partsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	start := time.Now()
	if err := ps.RunCtx(ctx, pstim, nil); err != nil {
		return 0, 0, fmt.Errorf("harness: partsim run (%d partitions): %w", threads, err)
	}
	return time.Since(start), ps.Stats().Rounds, nil
}

// FormatFig8 renders the two series of Figure 8 as text, with the engine's
// scheduling counters (pool goroutines spawned, wakes, parks) alongside each
// SDF sample: zero spawns beyond the first warm row is the signature of the
// persistent pool.
func FormatFig8(preset string, points []Fig8Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 8: Runtime scalability on %s (seconds; lower is better)\n", preset)
	fmt.Fprintf(&b, "%8s | %14s %14s | %14s %14s | %12s | %7s %8s %8s\n",
		"threads", "part. no-SDF", "ours no-SDF", "part. SDF", "ours SDF", "part rounds",
		"spawns", "wakes", "parks")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d | %14.3f %14.3f | %14.3f %14.3f | %12d | %7d %8d %8d\n",
			p.Threads, p.PartUnit.Seconds(), p.OursUnit.Seconds(),
			p.PartSDF.Seconds(), p.OursSDF.Seconds(), p.PartRoundsSDF,
			p.OursSDFStats.PoolSpawned, p.OursSDFStats.PoolWakes, p.OursSDFStats.PoolParks)
	}
	return b.String()
}

// ---------------------------------------------------------- bench-smoke

// BenchSmokeReport is the machine-readable record `make bench-smoke`
// writes to BENCH_smoke.json: one Fig 8 run at a small scale, with the
// engine's scheduling counters per thread count. CI keeps it cheap and
// diffable; the invariant to watch is PoolSpawned staying at the worker
// count (no per-sweep goroutine churn) while PoolRounds tracks sweeps.
type BenchSmokeReport struct {
	Preset  string            `json:"preset"`
	Scale   float64           `json:"scale"`
	Cycles  int               `json:"cycles"`
	Seed    int64             `json:"seed"`
	GoMaxP  int               `json:"gomaxprocs"`
	Samples []BenchSmokePoint `json:"samples"`

	// PhaseNS breaks the run's wall time down by instrumented phase (sweep,
	// level, checkpoint, slice, partsim round, …) — the sum of each *_ns
	// histogram in the obs registry the run recorded into.
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	// Metrics is the full obs snapshot of the run, making this report a
	// strict superset of the pre-obs schema.
	Metrics *obs.Report `json:"metrics,omitempty"`

	// Lane, when present, records one multi-stimulus lane point (see
	// LaneBench): a single lane-mode run against the same traces run
	// sequentially through scalar engines. Absent in reports written before
	// lane mode; benchcmp tolerates the schema gap.
	Lane *LaneBenchPoint `json:"lane,omitempty"`
}

// BenchSmokePoint flattens one Fig8Point for JSON consumers.
type BenchSmokePoint struct {
	Threads int `json:"threads"`

	PartUnitNS int64 `json:"part_unit_ns"`
	PartSDFNS  int64 `json:"part_sdf_ns"`
	OursUnitNS int64 `json:"ours_unit_ns"`
	OursSDFNS  int64 `json:"ours_sdf_ns"`

	PartRoundsSDF int64 `json:"part_rounds_sdf"`

	// Engine counters of the SDF run.
	Sweeps      int64 `json:"sweeps"`
	PoolSpawned int64 `json:"pool_spawned"`
	PoolRounds  int64 `json:"pool_rounds"`
	PoolWakes   int64 `json:"pool_wakes"`
	PoolParks   int64 `json:"pool_parks"`
	LevelsFused int64 `json:"levels_fused"`
	SweepNS     int64 `json:"sweep_ns"`
	LevelNS     int64 `json:"level_ns"`

	// Compiled-segment counters of the SDF run: scripts in the schedule and
	// clean-segment scans skipped via the dirty bitset. Absent (zero) in
	// reports written before the script engine; benchcmp tolerates the
	// schema gap.
	ScriptSegments  int64 `json:"script_segments,omitempty"`
	SegmentsSkipped int64 `json:"segments_skipped,omitempty"`

	// Frontier counters of the SDF run: visits that committed no events
	// (the waste the frontier plane attacks), staged-net watermark commits
	// the frontier pass published, and LUT probes the idle walks' memo
	// skipped. RelaxedNets is the retired predecessor counter — kept in the
	// schema so benchcmp renders old baselines as a gap instead of a zero
	// regression; new reports never populate it. Absent (zero) counters in
	// reports from other eras are schema gaps benchcmp tolerates.
	VisitsWatermarkOnly int64 `json:"visits_watermark_only,omitempty"`
	RelaxedNets         int64 `json:"relax_nets,omitempty"`
	FrontierCommits     int64 `json:"frontier_commits,omitempty"`
	QueriesSaved        int64 `json:"queries_saved,omitempty"`

	// SpeedupVsT1 is this sample's ours_sdf speedup relative to the
	// report's threads=1 sample (1.0 for the t=1 row itself; 0 when the
	// report has no t=1 sample to normalize against).
	SpeedupVsT1 float64 `json:"speedup_vs_t1,omitempty"`

	// Visit/query split by kernel class (see sim.Stats.VisitsByKernel):
	// how much of the run the packed-LUT comb kernel served vs the generic
	// sequential interpreter.
	VisitsComb1  int64 `json:"visits_comb1"`
	VisitsSeq    int64 `json:"visits_seq"`
	QueriesComb1 int64 `json:"queries_comb1"`
	QueriesSeq   int64 `json:"queries_seq"`
}

// BenchSmoke runs Fig8 with the given config and folds the points into the
// report shape. A nil cfg.Metrics is replaced with a fresh registry so the
// report always carries the phase breakdown and metric snapshot.
func BenchSmoke(ctx context.Context, cfg Fig8Config) (BenchSmokeReport, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	pts, err := Fig8(ctx, cfg)
	if err != nil {
		return BenchSmokeReport{}, err
	}
	rep := BenchSmokeReport{
		Preset: cfg.Preset, Scale: cfg.Scale, Cycles: cfg.Cycles, Seed: cfg.Seed,
		GoMaxP: runtime.GOMAXPROCS(0),
	}
	for _, p := range pts {
		st := p.OursSDFStats
		rep.Samples = append(rep.Samples, BenchSmokePoint{
			Threads:             p.Threads,
			PartUnitNS:          p.PartUnit.Nanoseconds(),
			PartSDFNS:           p.PartSDF.Nanoseconds(),
			OursUnitNS:          p.OursUnit.Nanoseconds(),
			OursSDFNS:           p.OursSDF.Nanoseconds(),
			PartRoundsSDF:       p.PartRoundsSDF,
			Sweeps:              st.Sweeps,
			PoolSpawned:         st.PoolSpawned,
			PoolRounds:          st.PoolRounds,
			PoolWakes:           st.PoolWakes,
			PoolParks:           st.PoolParks,
			LevelsFused:         st.LevelsFused,
			SweepNS:             st.SweepNS,
			LevelNS:             st.LevelNS,
			ScriptSegments:      st.ScriptSegments,
			SegmentsSkipped:     st.SegmentsSkipped,
			VisitsWatermarkOnly: st.VisitsWatermarkOnly,
			FrontierCommits:     st.FrontierCommits,
			QueriesSaved:        st.QueriesSaved,
			VisitsComb1:         st.VisitsByKernel[truthtab.ClassComb1],
			VisitsSeq:           st.VisitsByKernel[truthtab.ClassSeq],
			QueriesComb1:        st.QueriesByKernel[truthtab.ClassComb1],
			QueriesSeq:          st.QueriesByKernel[truthtab.ClassSeq],
		})
	}
	// Normalize each sample's ours_sdf time against the t=1 sample, giving
	// the report its speedup-vs-threads curve without consumers re-deriving
	// it from raw times.
	var t1ns int64
	for _, s := range rep.Samples {
		if s.Threads == 1 {
			t1ns = s.OursSDFNS
			break
		}
	}
	if t1ns > 0 {
		for i := range rep.Samples {
			if ns := rep.Samples[i].OursSDFNS; ns > 0 {
				rep.Samples[i].SpeedupVsT1 = float64(t1ns) / float64(ns)
			}
		}
	}
	snap := cfg.Metrics.Snapshot()
	rep.PhaseNS = snap.PhaseNS()
	rep.Metrics = &snap
	return rep, nil
}

// WriteBenchSmoke serializes the report as indented JSON.
func WriteBenchSmoke(w io.Writer, rep BenchSmokeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ------------------------------------------------------- Library compile

// LibcompResult reports the §III-B compilation claim measurement.
type LibcompResult struct {
	Cells    int
	Duration time.Duration
	Entries  int
	Bytes    int
}

// Libcomp generates a synthetic library of n cells, compiles it with the
// bitmask DP, and reports time and table sizes (paper: 1000 cells in ~1 s
// using ~50 MB).
func Libcomp(n int, seed int64) (LibcompResult, error) {
	src := gen.LibrarySource(n, seed)
	lib, err := liberty.Parse(src)
	if err != nil {
		return LibcompResult{}, err
	}
	start := time.Now()
	cl, err := truthtab.CompileLibrary(lib)
	if err != nil {
		return LibcompResult{}, err
	}
	dur := time.Since(start)
	st := cl.Stats()
	return LibcompResult{Cells: st.Cells, Duration: dur, Entries: st.Entries, Bytes: st.Bytes}, nil
}

// FormatLibcomp renders the result.
func FormatLibcomp(r LibcompResult) string {
	return fmt.Sprintf("library compilation: %d cells in %v (%d table entries, %.1f MB)\n",
		r.Cells, r.Duration.Round(time.Millisecond), r.Entries, float64(r.Bytes)/1e6)
}

// VCDNetMap resolves VCD signal names onto netlist nets, for drivers that
// feed waveform stimuli into a simulator.
func VCDNetMap(nl *netlist.Netlist, signals []string) ([]netlist.NetID, error) {
	out := make([]netlist.NetID, len(signals))
	for i, name := range signals {
		nid, ok := nl.Net(name)
		if !ok {
			return nil, fmt.Errorf("harness: VCD signal %q is not a net in %s", name, nl.Name)
		}
		out[i] = nid
	}
	return out, nil
}

// VCDSource adapts a VCD reader into a simulation stimulus source. Changes
// within one VCD timestamp for the same signal collapse to the last value
// (VCD semantics); each timestamp's changes are emitted in net-id order.
type VCDSource struct {
	r    *vcd.Reader
	nets []netlist.NetID

	pending   vcd.Change
	havePend  bool
	batch     []sim.Change
	batchPos  int
	exhausted bool
}

// NewVCDSource binds reader signals onto netlist nets by name.
func NewVCDSource(r *vcd.Reader, nl *netlist.Netlist) (*VCDSource, error) {
	nets, err := VCDNetMap(nl, r.Signals())
	if err != nil {
		return nil, err
	}
	return &VCDSource{r: r, nets: nets}, nil
}

// Next implements sim.StimulusSource.
func (s *VCDSource) Next() (sim.Change, error) {
	for s.batchPos >= len(s.batch) {
		if s.exhausted {
			return sim.Change{}, io.EOF
		}
		if err := s.fillBatch(); err != nil {
			return sim.Change{}, err
		}
	}
	c := s.batch[s.batchPos]
	s.batchPos++
	return c, nil
}

// fillBatch gathers all changes sharing the next timestamp.
func (s *VCDSource) fillBatch() error {
	s.batch = s.batch[:0]
	s.batchPos = 0
	if !s.havePend {
		c, err := s.r.Next()
		if err == io.EOF {
			s.exhausted = true
			return nil
		}
		if err != nil {
			return err
		}
		s.pending = c
		s.havePend = true
	}
	t := s.pending.Time
	last := make(map[netlist.NetID]logic.Value)
	var order []netlist.NetID
	for s.havePend && s.pending.Time == t {
		nid := s.nets[s.pending.Sig]
		if _, seen := last[nid]; !seen {
			order = append(order, nid)
		}
		last[nid] = s.pending.Val
		c, err := s.r.Next()
		if err == io.EOF {
			s.havePend = false
			s.exhausted = true
		} else if err != nil {
			return err
		} else {
			s.pending = c
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	for _, nid := range order {
		s.batch = append(s.batch, sim.Change{Net: nid, Time: t, Val: last[nid]})
	}
	return nil
}

// ParallelismRow quantifies the parallelism each simulator can exploit on a
// design, independent of host hardware — the mechanism behind Figure 8:
// the stable-time engine exposes wide independent levels with one barrier
// per level per sweep, while the conservative partition baseline's round
// count explodes once SDF annotation shrinks its lookahead.
type ParallelismRow struct {
	Preset string
	Cells  int
	Pins   int

	Levels   int // combinational depth (barriers per sweep)
	MaxWidth int // widest level = peak oblivious parallelism
	AvgWidth float64

	EngineSweepsSDF int64 // our barrier count for the whole run
	PartRoundsSDF   int64 // partition-baseline lockstep rounds, SDF delays
	PartRoundsUnit  int64 // ... with uniform delays
	LookaheadSDFPS  int64
	LookaheadUnitPS int64
}

// Parallelism measures the structural parallelism metrics for one preset.
func Parallelism(ctx context.Context, preset string, scale float64, cycles int, seed int64) (ParallelismRow, error) {
	p, err := gen.PresetByName(preset)
	if err != nil {
		return ParallelismRow{}, err
	}
	d, err := gen.Build(p.Spec(scale, seed))
	if err != nil {
		return ParallelismRow{}, err
	}
	row := ParallelismRow{Preset: preset}
	st := d.Netlist.Stats()
	row.Cells, row.Pins = st.Cells, st.Pins

	sdfDelays := gen.Delays(d, seed)
	unitDelays := sdf.Uniform(d.Netlist, 120)
	row.LookaheadSDFPS = sdfDelays.MinPositive
	row.LookaheadUnitPS = unitDelays.MinPositive
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: cycles, ActivityFactor: 0.6, Seed: seed, ScanBurst: 16})

	lib, err := CompiledBuiltin()
	if err != nil {
		return ParallelismRow{}, err
	}
	planSDF, err := plan.Build(d.Netlist, lib, sdfDelays)
	if err != nil {
		return ParallelismRow{}, err
	}
	planUnit := planSDF.WithDelays(unitDelays)
	e, err := sim.NewFromPlan(planSDF, sim.Options{Mode: sim.ModeSerial})
	if err != nil {
		return ParallelismRow{}, err
	}
	defer e.Close()
	lv := e.Levelization()
	row.Levels = len(lv.Levels)
	row.MaxWidth = lv.MaxWidth()
	if row.Levels > 0 {
		total := 0
		for _, l := range lv.Levels {
			total += len(l)
		}
		row.AvgWidth = float64(total) / float64(row.Levels)
	}
	changes := make([]sim.Change, len(stim))
	for i, s := range stim {
		changes[i] = sim.Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := e.RunStreamCtx(ctx, sim.NewSliceSource(changes), sim.StreamConfig{SlicePS: 16 * d.Spec.ClockPeriodPS}); err != nil {
		return ParallelismRow{}, err
	}
	row.EngineSweepsSDF = e.Stats().Sweeps

	for _, dl := range []struct {
		pl  *plan.Plan
		out *int64
	}{{planSDF, &row.PartRoundsSDF}, {planUnit, &row.PartRoundsUnit}} {
		ps, err := partsim.NewFromPlan(dl.pl, partsim.Options{Partitions: 4})
		if err != nil {
			return ParallelismRow{}, err
		}
		pstim := make([]partsim.Stim, len(stim))
		for i, s := range stim {
			pstim[i] = partsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		if err := ps.RunCtx(ctx, pstim, nil); err != nil {
			return ParallelismRow{}, err
		}
		*dl.out = ps.Stats().Rounds
	}
	return row, nil
}

// FormatParallelism renders rows.
func FormatParallelism(rows []ParallelismRow) string {
	var b strings.Builder
	b.WriteString("Structural parallelism (hardware-independent Figure 8 drivers)\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %7s %9s %9s | %12s %14s %14s\n",
		"preset", "cells", "pins", "levels", "maxWidth", "avgWidth",
		"our sweeps", "part rnds SDF", "part rnds unit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %7d %9d %9.1f | %12d %14d %14d\n",
			r.Preset, r.Cells, r.Pins, r.Levels, r.MaxWidth, r.AvgWidth,
			r.EngineSweepsSDF, r.PartRoundsSDF, r.PartRoundsUnit)
	}
	return b.String()
}
