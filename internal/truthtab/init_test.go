package truthtab

import (
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

func computeIC(t *testing.T, nl *netlist.Netlist) *InitialConditions {
	t.Helper()
	cl, err := CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		t.Fatal(err)
	}
	ic, err := ComputeInitialConditions(nl, cl)
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestInitialConditionsConstantCone(t *testing.T) {
	nl := netlist.New("t", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("a"))
	must := func(name, cell string, conns map[string]string) {
		t.Helper()
		if _, err := nl.AddInstance(name, cell, conns); err != nil {
			t.Fatal(err)
		}
	}
	must("t1", "TIEHI", map[string]string{"Y": "one"})
	must("t0", "TIELO", map[string]string{"Y": "zero"})
	must("g1", "INV", map[string]string{"A": "one", "Y": "n1"})             // 0
	must("g2", "NAND2", map[string]string{"A": "one", "B": "a", "Y": "n2"}) // !a = X
	must("g3", "OR2", map[string]string{"A": "one", "B": "a", "Y": "n3"})   // 1 despite X
	must("g4", "AND2", map[string]string{"A": "zero", "B": "a", "Y": "n4"}) // 0 despite X

	ic := computeIC(t, nl)
	check := func(name string, want logic.Value) {
		t.Helper()
		nid, ok := nl.Net(name)
		if !ok {
			t.Fatalf("no net %s", name)
		}
		if got := ic.NetVals[nid]; got != want {
			t.Errorf("init(%s) = %v, want %v", name, got, want)
		}
	}
	check("one", logic.V1)
	check("zero", logic.V0)
	check("n1", logic.V0)
	check("n2", logic.VX)
	check("n3", logic.V1)
	check("n4", logic.V0)
	check("a", logic.VX) // primary inputs stay X
}

func TestInitialConditionsTiedReset(t *testing.T) {
	// An FF whose async reset is tied active initializes to 0 even though
	// clock and data are unknown.
	nl := netlist.New("t", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("clk"))
	nl.MarkInput(nl.AddNet("d"))
	if _, err := nl.AddInstance("t0", "TIELO", map[string]string{"Y": "rb"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("ff", "DFF_PR", map[string]string{
		"CLK": "clk", "D": "d", "RESET_B": "rb", "Q": "q", "QN": "qn"}); err != nil {
		t.Fatal(err)
	}
	ic := computeIC(t, nl)
	q, _ := nl.Net("q")
	qn, _ := nl.Net("qn")
	if ic.NetVals[q] != logic.V0 || ic.NetVals[qn] != logic.V1 {
		t.Errorf("tied-reset FF init: q=%v qn=%v", ic.NetVals[q], ic.NetVals[qn])
	}
	// The FF's internal state also settles.
	if ic.States[1][0] != logic.V0 {
		t.Errorf("state: %v", ic.States[1])
	}
}

func TestInitialConditionsOscillatorLocksToX(t *testing.T) {
	// A determined ring oscillator out of constants: INV loop through a
	// transparent latch held open by TIEHI. The fixpoint cannot settle; the
	// oscillating nets must lock to X instead of failing.
	nl := netlist.New("t", liberty.MustBuiltin())
	nl.MarkInput(nl.AddNet("unused"))
	if _, err := nl.AddInstance("th", "TIEHI", map[string]string{"Y": "en"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("lat", "DLATCH_H", map[string]string{
		"GATE": "en", "D": "fb", "Q": "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("inv", "INV", map[string]string{"A": "q", "Y": "fb"}); err != nil {
		t.Fatal(err)
	}
	ic := computeIC(t, nl)
	q, _ := nl.Net("q")
	fb, _ := nl.Net("fb")
	// Both loop nets end X (either they stayed X naturally or were locked).
	if ic.NetVals[q] != logic.VX || ic.NetVals[fb] != logic.VX {
		t.Errorf("oscillator nets: q=%v fb=%v", ic.NetVals[q], ic.NetVals[fb])
	}
	en, _ := nl.Net("en")
	if ic.NetVals[en] != logic.V1 {
		t.Errorf("en = %v", ic.NetVals[en])
	}
}
