// Package truthtab implements the stability-aware library compilation of the
// paper (§III-B): it turns a Liberty cell description into an extended truth
// table over the alphabet {0,1,X,Z} ∪ {R,F} (edge-sensitive inputs) ∪ {U}
// (undetermined), using the bitmask dynamic program of Algorithm 1 to fill
// the rows containing U symbols.
//
// The table answers, in O(1), the only question the simulator ever asks:
// given the current (possibly partially undetermined) input values, edge
// markers, and internal state, what are the output values and the next
// internal state — and are they determined?
package truthtab

import (
	"fmt"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
)

// semantics is the exact behavioural model of one cell, used to generate the
// preliminary (fully determined) truth table rows. It is the ground truth
// the bitmask DP extends.
type semantics struct {
	cell   *liberty.Cell
	inputs []string // cell input pins, in order
	states []string // internal state variables, in order
	vars   []string // inputs ++ states: the shared variable ordering

	outputs []*logic.Expr // per cell output, over vars
	// Sequential control expressions over vars (nil when absent).
	nextState *logic.Expr
	clockedOn *logic.Expr
	dataIn    *logic.Expr
	enable    *logic.Expr
	clear     *logic.Expr
	preset    *logic.Expr
	cpVar1    logic.Value
	cpVar2    logic.Value
	isFF      bool
	isLatch   bool
	table     *liberty.StateTable

	// edgeSensitive[i] is true when input i participates in edge detection
	// (appears in clocked_on, or under an R/F token in a statetable).
	edgeSensitive []bool
}

func newSemantics(cell *liberty.Cell) (*semantics, error) {
	s := &semantics{
		cell:   cell,
		inputs: cell.Inputs,
		states: cell.StateVars(),
	}
	s.vars = append(append([]string{}, s.inputs...), s.states...)
	s.edgeSensitive = make([]bool, len(s.inputs))

	align := func(e *logic.Expr, what string) (*logic.Expr, error) {
		if e == nil {
			return nil, nil
		}
		r, err := e.RenameVars(s.vars)
		if err != nil {
			return nil, fmt.Errorf("truthtab: cell %s %s: %v", cell.Name, what, err)
		}
		return r, nil
	}

	var err error
	for _, out := range cell.Outputs {
		var oe *logic.Expr
		if oe, err = align(cell.Pin(out).Function, "output "+out); err != nil {
			return nil, err
		}
		s.outputs = append(s.outputs, oe)
	}
	switch {
	case cell.FF != nil:
		s.isFF = true
		ff := cell.FF
		if s.nextState, err = align(ff.NextState, "next_state"); err != nil {
			return nil, err
		}
		if s.clockedOn, err = align(ff.ClockedOn, "clocked_on"); err != nil {
			return nil, err
		}
		if s.clear, err = align(ff.Clear, "clear"); err != nil {
			return nil, err
		}
		if s.preset, err = align(ff.Preset, "preset"); err != nil {
			return nil, err
		}
		s.cpVar1, s.cpVar2 = ff.ClearPresetVar1, ff.ClearPresetVar2
		// Inputs feeding the clock expression are edge-sensitive.
		s.markEdgeSensitive(ff.ClockedOn.Vars())
	case cell.Latch != nil:
		s.isLatch = true
		l := cell.Latch
		if s.dataIn, err = align(l.DataIn, "data_in"); err != nil {
			return nil, err
		}
		if s.enable, err = align(l.Enable, "enable"); err != nil {
			return nil, err
		}
		if s.clear, err = align(l.Clear, "clear"); err != nil {
			return nil, err
		}
		if s.preset, err = align(l.Preset, "preset"); err != nil {
			return nil, err
		}
		s.cpVar1, s.cpVar2 = l.ClearPresetVar1, l.ClearPresetVar2
	case cell.Table != nil:
		s.table = cell.Table
		if len(s.table.Inputs) != len(s.inputs) {
			// The statetable may list inputs in a different order or subset;
			// map each statetable input onto the cell input index.
			// (Handled below in any case; here we only validate names.)
		}
		for _, name := range s.table.Inputs {
			if indexOf(s.inputs, name) < 0 {
				return nil, fmt.Errorf("truthtab: cell %s: statetable input %q is not a cell input", cell.Name, name)
			}
		}
		for ri, row := range s.table.Rows {
			for ti, tok := range row.Inputs {
				if tok == liberty.STRise || tok == liberty.STFall {
					idx := indexOf(s.inputs, s.table.Inputs[ti])
					s.edgeSensitive[idx] = true
					_ = ri
				}
			}
		}
	}
	return s, nil
}

func (s *semantics) markEdgeSensitive(names []string) {
	for _, n := range names {
		if i := indexOf(s.inputs, n); i >= 0 {
			s.edgeSensitive[i] = true
		}
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// eval computes the cell reaction for fully determined stimuli: ins may
// contain steady values and R/F edge markers (on edge-sensitive inputs),
// cur holds the steady current state. It returns the output values and the
// next state values. All results are steady (0/1/X/Z), never U.
func (s *semantics) eval(ins, cur []logic.Value) (outs, next []logic.Value) {
	n := len(s.inputs)
	// before/after vectors over vars = inputs ++ states.
	before := make([]logic.Value, len(s.vars))
	after := make([]logic.Value, len(s.vars))
	for i, v := range ins {
		before[i] = v.Before()
		after[i] = v.Settle()
	}
	for i, v := range cur {
		before[n+i] = v
		after[n+i] = v
	}

	next = append([]logic.Value(nil), cur...)
	switch {
	case s.isFF:
		eb := s.clockedOn.EvalVec(before)
		ea := s.clockedOn.EvalVec(after)
		captured := s.nextState.EvalVec(after)
		clkKnown := (eb == logic.V0 || eb == logic.V1) && (ea == logic.V0 || ea == logic.V1)
		var v1 logic.Value
		switch {
		case eb == logic.V0 && ea == logic.V1:
			v1 = captured
		case clkKnown: // steady, falling, or no edge: hold
			v1 = cur[0]
		default: // clock involves X: the edge may or may not have happened
			v1 = logic.Merge(cur[0], captured)
		}
		next[0] = v1
		if len(next) > 1 {
			next[1] = logic.Not(v1)
		}
		s.applyAsync(after, cur, next)
	case s.isLatch:
		if s.enable != nil {
			en := s.enable.EvalVec(after)
			d := s.dataIn.EvalVec(after)
			var v1 logic.Value
			switch en {
			case logic.V1:
				v1 = d
			case logic.V0:
				v1 = cur[0]
			default:
				v1 = logic.Merge(cur[0], d)
			}
			next[0] = v1
			if len(next) > 1 {
				next[1] = logic.Not(v1)
			}
		}
		s.applyAsync(after, cur, next)
	case s.table != nil:
		next = s.evalStateTable(ins, cur)
		for i := n; i < len(after); i++ {
			// after-vector states for output evaluation updated below
			_ = i
		}
	}

	// Outputs observe the post-update state.
	for i, nv := range next {
		after[n+i] = nv
	}
	outs = make([]logic.Value, len(s.outputs))
	for i, oe := range s.outputs {
		outs[i] = oe.EvalVec(after)
	}
	return outs, next
}

// applyAsync overrides next with asynchronous clear/preset behaviour.
func (s *semantics) applyAsync(after, cur, next []logic.Value) {
	if s.clear == nil && s.preset == nil {
		return
	}
	cl, pr := logic.V0, logic.V0
	if s.clear != nil {
		cl = s.clear.EvalVec(after)
	}
	if s.preset != nil {
		pr = s.preset.EvalVec(after)
	}
	force := func(v1, v2 logic.Value, certain bool) {
		if certain {
			next[0] = v1
			if len(next) > 1 {
				next[1] = v2
			}
			return
		}
		next[0] = logic.Merge(next[0], v1)
		if len(next) > 1 {
			next[1] = logic.Merge(next[1], v2)
		}
	}
	switch {
	case cl == logic.V1 && pr == logic.V1:
		force(s.cpVar1, s.cpVar2, true)
	case cl == logic.V1 && pr == logic.V0:
		force(logic.V0, logic.V1, true)
	case pr == logic.V1 && cl == logic.V0:
		force(logic.V1, logic.V0, true)
	case cl == logic.V1: // pr is X
		force(logic.Merge(s.cpVar1, logic.V0), logic.Merge(s.cpVar2, logic.V1), true)
	case pr == logic.V1: // cl is X
		force(logic.Merge(s.cpVar1, logic.V1), logic.Merge(s.cpVar2, logic.V0), true)
	case cl == logic.V0 && pr == logic.V0:
		// neither active
	case cl != logic.V0 && pr != logic.V0: // both X
		force(logic.VX, logic.VX, false)
	case cl != logic.V0: // cl X, pr 0
		force(logic.V0, logic.V1, false)
	default: // pr X, cl 0
		force(logic.V1, logic.V0, false)
	}
}

// evalStateTable evaluates the statetable. X/Z symbols on inputs or current
// states are handled by enumerating their {0,1} refinements and merging the
// resulting next states, which is far less pessimistic than treating X as
// "matches nothing". Edge markers pass through unchanged.
func (s *semantics) evalStateTable(ins, cur []logic.Value) []logic.Value {
	// Collect the X/Z positions to refine: inputs first, then states.
	var xin, xcur []int
	for i, v := range ins {
		if v == logic.VX || v == logic.VZ {
			xin = append(xin, i)
		}
	}
	for i, v := range cur {
		if v == logic.VX || v == logic.VZ {
			xcur = append(xcur, i)
		}
	}
	k := len(xin) + len(xcur)
	if k == 0 {
		return s.evalStateTableExact(ins, cur)
	}
	if k > 10 { // give up: everything unknown
		next := make([]logic.Value, len(s.states))
		for i := range next {
			next[i] = logic.VX
		}
		return next
	}
	rIns := append([]logic.Value(nil), ins...)
	rCur := append([]logic.Value(nil), cur...)
	var merged []logic.Value
	for m := 0; m < 1<<k; m++ {
		for bi, i := range xin {
			rIns[i] = logic.Value(m >> bi & 1)
		}
		for bi, i := range xcur {
			rCur[i] = logic.Value(m >> (len(xin) + bi) & 1)
		}
		next := s.evalStateTableExact(rIns, rCur)
		if merged == nil {
			merged = next
			continue
		}
		for i := range merged {
			merged[i] = logic.Merge(merged[i], next[i])
		}
	}
	return merged
}

// evalStateTableExact matches rows in order; the first matching row wins.
// With no matching row the next state is conservatively X.
func (s *semantics) evalStateTableExact(ins, cur []logic.Value) []logic.Value {
	next := make([]logic.Value, len(s.states))
	for i := range next {
		next[i] = logic.VX
	}
	// Map statetable input order onto cell input order.
	for _, row := range s.table.Rows {
		if !s.rowMatches(row, ins, cur) {
			continue
		}
		for i, tok := range row.Next {
			switch tok {
			case liberty.STLow:
				next[i] = logic.V0
			case liberty.STHigh:
				next[i] = logic.V1
			case liberty.STNoChange:
				next[i] = cur[i]
			default:
				next[i] = logic.VX
			}
		}
		return next
	}
	return next
}

func (s *semantics) rowMatches(row liberty.StateTableRow, ins, cur []logic.Value) bool {
	for ti, tok := range row.Inputs {
		idx := indexOf(s.inputs, s.table.Inputs[ti])
		if !stTokenMatches(tok, ins[idx]) {
			return false
		}
	}
	for i, tok := range row.Cur {
		if !stTokenMatches(tok, cur[i]) {
			return false
		}
	}
	return true
}

func stTokenMatches(tok liberty.StateTableToken, v logic.Value) bool {
	switch tok {
	case liberty.STDontCare:
		return true
	case liberty.STLow:
		return v == logic.V0
	case liberty.STHigh:
		return v == logic.V1
	case liberty.STRise:
		return v == logic.VR
	case liberty.STFall:
		return v == logic.VF
	case liberty.STUnknown:
		return v == logic.VX || v == logic.VZ
	}
	return false
}
