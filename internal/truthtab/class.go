package truthtab

import "gatesim/internal/logic"

// Class partitions compiled tables into kernel classes. The simulators
// lower the classification once per plan (plan.KernelOf) and dispatch each
// gate visit to a class-specialized evaluation path, instead of sending
// every gate through the generic sequential interpreter.
type Class uint8

const (
	// ClassSeq is the generic fallback: any table with internal state,
	// edge-sensitive inputs, multiple outputs, or too many inputs to pack
	// into a dense LUT. Evaluated by the full truth-table interpreter.
	ClassSeq Class = iota
	// ClassComb1 is a single-output, zero-state table with no edge-sensitive
	// inputs and at most MaxPackedInputs inputs — the vast majority of gates
	// in synthesized netlists. Evaluated through a PackedLUT: one dense
	// array probe, no edge coding, no state or multi-output machinery.
	ClassComb1
	// NumClasses sizes per-class dispatch tables and counters.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassSeq:
		return "seq"
	case ClassComb1:
		return "comb1"
	}
	return "class?"
}

// MaxPackedInputs caps the packed LUT's footprint: 3 bits per input gives
// 2^(3*6) = 256 KiB per distinct 6-input table, interned per plan. Larger
// combinational cells fall back to ClassSeq.
const MaxPackedInputs = 6

// Class reports the kernel class of the table.
func (t *Table) Class() Class {
	if t.NumStates != 0 || t.NumOutputs != 1 || t.NumInputs > MaxPackedInputs {
		return ClassSeq
	}
	for _, es := range t.EdgeSensitive {
		if es {
			return ClassSeq
		}
	}
	return ClassComb1
}

// PackedLUT is the dense single-output form of a ClassComb1 table.
//
// The index uses the raw logic.Value bytes of the non-edge query alphabet —
// {V0,V1,VX,VZ,VU} = {0,1,2,3,6} — which all fit in 3 bits, so a row index
// is just the input values shifted into consecutive 3-bit fields with no
// per-value code translation on the hot path. Slots whose fields decode to
// values outside the alphabet (4, 5, 7) are unreachable and hold VU.
type PackedLUT struct {
	NumInputs int
	Data      []logic.Value // 1 << (3*NumInputs) entries

	// AllU reports that the all-inputs-undetermined row is VU. True for
	// every input-sensitive function (false only for constants), it is a
	// value-independent fact: whenever a probe's expired set covers all
	// inputs the verdict is U regardless of soft values, so idle walks
	// skip that probe entirely — for single-input cells this is every
	// expiry probe they would ever issue.
	AllU bool
}

// Index computes the packed row index for steady/U input values.
func (l *PackedLUT) Index(ins []logic.Value) int {
	idx := 0
	for i, v := range ins {
		idx |= int(v) << (3 * i)
	}
	return idx
}

// Lookup returns the output value for the given steady/U input values.
func (l *PackedLUT) Lookup(ins []logic.Value) logic.Value {
	return l.Data[l.Index(ins)]
}

// Bytes returns the memory footprint of the LUT payload.
func (l *PackedLUT) Bytes() int { return len(l.Data) }

// packAlphabet is the full query alphabet of a non-edge-sensitive input:
// the four settled values plus undetermined.
var packAlphabet = [5]logic.Value{logic.V0, logic.V1, logic.VX, logic.VZ, logic.VU}

// PackLUT builds the packed dense LUT by enumerating the query alphabet
// through the generic lookup path. It returns nil when the table is not
// ClassComb1.
func (t *Table) PackLUT() *PackedLUT {
	if t.Class() != ClassComb1 {
		return nil
	}
	l := &PackedLUT{
		NumInputs: t.NumInputs,
		Data:      make([]logic.Value, 1<<(3*t.NumInputs)),
	}
	for i := range l.Data {
		l.Data[i] = logic.VU
	}
	ins := make([]logic.Value, t.NumInputs)
	outs := make([]logic.Value, 1)
	var fill func(dim, idx int)
	fill = func(dim, idx int) {
		if dim == t.NumInputs {
			t.LookupInto(ins, nil, outs, nil)
			l.Data[idx] = outs[0]
			return
		}
		for _, v := range packAlphabet {
			ins[dim] = v
			fill(dim+1, idx|int(v)<<(3*dim))
		}
	}
	fill(0, 0)
	allU := 0
	for i := 0; i < t.NumInputs; i++ {
		allU |= int(logic.VU) << (3 * i)
	}
	l.AllU = l.Data[allU] == logic.VU
	return l
}
