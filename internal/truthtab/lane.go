package truthtab

import (
	"math/bits"

	"gatesim/internal/lane"
	"gatesim/internal/logic"
)

// LanePackedLUT evaluates every stimulus lane of a ClassComb1 cell through
// its PackedLUT in one call. Undetermined inputs are shared across lanes
// (watermarks are per-net, not per-lane), so an expired input contributes
// the same VU field to every lane's row index; per-lane values come from
// the packed words.
type LanePackedLUT struct {
	LUT *PackedLUT
}

// LookupLanes probes the LUT for every lane in laneMask. ins holds one
// word per input; inputs flagged in expired present VU to all lanes and
// their words are ignored. It returns the output word (lanes outside
// laneMask are zero; lanes whose probe returned VU hold a placeholder) and
// the mask of lanes whose output is undetermined — the caller treats any
// nonzero undet as a stop-before-consume frontier, so placeholder bits are
// never observed.
//
// When every active lane presents the same row — common under shared
// clock/reset stimulus — one probe is broadcast to all lanes.
func (l LanePackedLUT) LookupLanes(ins []lane.Word, expired uint32, laneMask uint32) (out lane.Word, undet uint32) {
	n := l.LUT.NumInputs
	data := l.LUT.Data
	base := 0
	uniform := true
	for i := 0; i < n; i++ {
		if expired&(1<<uint(i)) != 0 {
			base |= int(logic.VU) << (3 * i)
			continue
		}
		if uniform {
			if _, ok := ins[i].Uniform(laneMask); !ok {
				uniform = false
			}
		}
	}
	if uniform {
		idx := base
		ref := bits.TrailingZeros32(laneMask)
		for i := 0; i < n; i++ {
			if expired&(1<<uint(i)) == 0 {
				idx |= int(ins[i].Get(ref)) << (3 * i)
			}
		}
		if v := data[idx]; v != logic.VU {
			return lane.Broadcast(v), 0
		}
		return lane.Broadcast(logic.VX), laneMask
	}
	for m := laneMask; m != 0; m &= m - 1 {
		ln := bits.TrailingZeros32(m)
		idx := base
		for i := 0; i < n; i++ {
			if expired&(1<<uint(i)) == 0 {
				idx |= int(ins[i].Get(ln)) << (3 * i)
			}
		}
		v := data[idx]
		if v == logic.VU {
			undet |= 1 << uint(ln)
			v = logic.VX
		}
		out = out.Set(ln, v)
	}
	return out, undet
}
