package truthtab

import (
	"fmt"

	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

// InitialConditions computes the pre-time-zero fixpoint of a netlist: the
// value every net, every internal state and every output holds before any
// stimulus. Primary inputs and state variables start at X; constant cells
// (tie-highs/lows) and anything they imply — decode logic, FFs held by a
// tied-active asynchronous reset, shut clock gates — settle to determined
// values. All simulators share this so their event streams stay comparable:
// the first committed event on a net is a change *from this value*.
//
// Iteration is monotone in the information order (inputs only ever gain
// definiteness), except through determined transparent loops (a ring
// oscillator wired out of constants), which cannot settle; such nets are
// forced to X after an iteration cap.
type InitialConditions struct {
	// NetVals is the per-net initial value.
	NetVals []logic.Value
	// Per gate (instance index): internal state and output pin values at
	// the fixpoint.
	States [][]logic.Value
	Outs   [][]logic.Value
}

// ComputeInitialConditions runs the fixpoint for the netlist over the
// compiled library.
func ComputeInitialConditions(nl *netlist.Netlist, cl *CompiledLibrary) (*InitialConditions, error) {
	n := len(nl.Instances)
	ic := &InitialConditions{
		NetVals: make([]logic.Value, len(nl.Nets)),
		States:  make([][]logic.Value, n),
		Outs:    make([][]logic.Value, n),
	}
	nets := ic.NetVals
	for i := range nets {
		nets[i] = logic.VX
	}
	tabs := make([]*Table, n)
	for gi := range nl.Instances {
		inst := &nl.Instances[gi]
		tab := cl.Tables[inst.Type.Name]
		if tab == nil {
			return nil, fmt.Errorf("truthtab: cell type %s not compiled", inst.Type.Name)
		}
		tabs[gi] = tab
		ic.States[gi] = make([]logic.Value, tab.NumStates)
		ic.Outs[gi] = make([]logic.Value, tab.NumOutputs)
		for k := range ic.States[gi] {
			ic.States[gi][k] = logic.VX
		}
	}

	ins := make([]logic.Value, 16)
	outs := make([]logic.Value, 8)
	next := make([]logic.Value, 8)
	locked := make([]bool, len(nl.Nets))

	sweep := func() bool {
		changed := false
		for gi := range nl.Instances {
			inst := &nl.Instances[gi]
			tab := tabs[gi]
			for pi, nid := range inst.InNets {
				ins[pi] = nets[nid]
			}
			tab.LookupInto(ins[:tab.NumInputs], ic.States[gi], outs[:tab.NumOutputs], next[:tab.NumStates])
			for k := 0; k < tab.NumStates; k++ {
				if ic.States[gi][k] != next[k] {
					ic.States[gi][k] = next[k]
					changed = true
				}
			}
			for o := 0; o < tab.NumOutputs; o++ {
				if ic.Outs[gi][o] != outs[o] {
					ic.Outs[gi][o] = outs[o]
					changed = true
				}
				nid := inst.OutNets[o]
				if nid >= 0 && !locked[nid] && nets[nid] != outs[o] {
					nets[nid] = outs[o]
					changed = true
				}
			}
		}
		return changed
	}

	// The longest constant-propagation chain is bounded by the gate count,
	// but settles far faster in practice; cap generously, then lock
	// oscillating nets to X and settle once more.
	const cap = 200
	converged := false
	for i := 0; i < cap; i++ {
		if !sweep() {
			converged = true
			break
		}
	}
	if !converged {
		prev := append([]logic.Value(nil), nets...)
		sweep()
		for nid := range nets {
			if nets[nid] != prev[nid] {
				nets[nid] = logic.VX
				locked[nid] = true
			}
		}
		for i := 0; i < cap; i++ {
			if !sweep() {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("truthtab: initial conditions did not settle")
		}
	}
	return ic, nil
}
