package truthtab

import (
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
)

func compileBuiltin(t testing.TB) *CompiledLibrary {
	t.Helper()
	cl, err := CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestClassBuiltinCells pins the classification of representative builtin
// cells and checks the class invariants for every cell: ClassComb1 exactly
// for small single-output stateless non-edge-sensitive tables, and a packed
// LUT exists exactly for ClassComb1.
func TestClassBuiltinCells(t *testing.T) {
	cl := compileBuiltin(t)
	want := map[string]Class{
		"NAND2":  ClassComb1,
		"INV":    ClassComb1,
		"MUX4":   ClassComb1, // 6 inputs: at the packing cap
		"AOI211": ClassComb1,
		"TIEHI":  ClassComb1, // 0 inputs
		"HA":     ClassSeq,   // stateless but two outputs
		"FA":     ClassSeq,
		"DFF_P":  ClassSeq,
		"DLATCH": ClassSeq,
		"JKFF":   ClassSeq,
	}
	for name, w := range want {
		tab := cl.Tables[name]
		if tab == nil {
			if name == "DLATCH" { // builtin names DLATCH_H/DLATCH_L
				continue
			}
			t.Fatalf("builtin cell %s missing", name)
		}
		if got := tab.Class(); got != w {
			t.Errorf("%s: class %v, want %v", name, got, w)
		}
	}
	for name, tab := range cl.Tables {
		expect := tab.NumStates == 0 && tab.NumOutputs == 1 && tab.NumInputs <= MaxPackedInputs
		for _, es := range tab.EdgeSensitive {
			if es {
				expect = false
			}
		}
		if got := tab.Class() == ClassComb1; got != expect {
			t.Errorf("%s: ClassComb1=%v, want %v", name, got, expect)
		}
		lut := tab.PackLUT()
		if (lut != nil) != (tab.Class() == ClassComb1) {
			t.Errorf("%s: PackLUT nil-ness disagrees with class %v", name, tab.Class())
		}
		if lut != nil && len(lut.Data) != 1<<(3*tab.NumInputs) {
			t.Errorf("%s: LUT size %d, want %d", name, len(lut.Data), 1<<(3*tab.NumInputs))
		}
	}
}

// TestPackedLUTMatchesLookupExhaustive is the differential property test of
// the LUT packing: for every packable builtin cell, every input vector over
// the full query alphabet {0,1,X,Z,U}^n must produce exactly the value the
// generic LookupInto path produces (at most 5^6 = 15625 rows per cell).
func TestPackedLUTMatchesLookupExhaustive(t *testing.T) {
	cl := compileBuiltin(t)
	packable := 0
	for _, name := range cl.Library.CellNames() {
		tab := cl.Tables[name]
		lut := tab.PackLUT()
		if lut == nil {
			continue
		}
		packable++
		ins := make([]logic.Value, tab.NumInputs)
		outs := make([]logic.Value, 1)
		var walk func(dim int)
		walk = func(dim int) {
			if dim == tab.NumInputs {
				tab.LookupInto(ins, nil, outs, nil)
				if got := lut.Lookup(ins); got != outs[0] {
					t.Fatalf("%s%v: packed %v, generic %v", name, ins, got, outs[0])
				}
				return
			}
			for _, v := range packAlphabet {
				ins[dim] = v
				walk(dim + 1)
			}
		}
		walk(0)
	}
	if packable == 0 {
		t.Fatal("no packable builtin cells — classification broken")
	}
}

// FuzzPackedLUT drives random (cell, input vector) pairs through both
// evaluation paths. Redundant with the exhaustive test above for the
// builtin library, but keeps a coverage-guided harness around for future
// cells and for the index arithmetic itself.
func FuzzPackedLUT(f *testing.F) {
	cl, err := CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		f.Fatal(err)
	}
	names := cl.Library.CellNames()
	var tabs []*Table
	var luts []*PackedLUT
	for _, name := range names {
		if lut := cl.Tables[name].PackLUT(); lut != nil {
			tabs = append(tabs, cl.Tables[name])
			luts = append(luts, lut)
		}
	}
	f.Add([]byte{0, 1, 2, 3, 4, 0})
	f.Add([]byte{7, 4, 4, 4, 4, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		k := int(data[0]) % len(tabs)
		tab, lut := tabs[k], luts[k]
		ins := make([]logic.Value, tab.NumInputs)
		for i := range ins {
			b := byte(0)
			if i+1 < len(data) {
				b = data[i+1]
			}
			ins[i] = packAlphabet[int(b)%len(packAlphabet)]
		}
		outs := make([]logic.Value, 1)
		tab.LookupInto(ins, nil, outs, nil)
		if got := lut.Lookup(ins); got != outs[0] {
			t.Fatalf("%s%v: packed %v, generic %v", tab.Cell.Name, ins, got, outs[0])
		}
	})
}
