package truthtab

import (
	"encoding/binary"
	"io"
)

// DigestInto writes a canonical byte serialization of the compiled table to
// w: cell name, dimensions, edge-sensitivity flags and the full extended
// truth-table contents. Two tables with equal serializations behave
// identically under every Lookup/LookupInto query, so content hashes built
// over this stream (plan.Digest) may treat table equality as behavioural
// equality. The stream is independent of compile-time incidentals (map
// iteration, pointer identity).
func (t *Table) DigestInto(w io.Writer) {
	writeString(w, t.Cell.Name)
	writeInts(w, t.NumInputs, t.NumStates, t.NumOutputs)
	for _, es := range t.EdgeSensitive {
		writeBool(w, es)
	}
	writeInts(w, t.radix...)
	// data is []logic.Value (one byte each); write it verbatim.
	buf := make([]byte, len(t.data))
	for i, v := range t.data {
		buf[i] = byte(v)
	}
	w.Write(buf)
}

func writeString(w io.Writer, s string) {
	writeInts(w, len(s))
	io.WriteString(w, s)
}

func writeBool(w io.Writer, b bool) {
	v := byte(0)
	if b {
		v = 1
	}
	w.Write([]byte{v})
}

func writeInts(w io.Writer, vs ...int) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		w.Write(buf[:])
	}
}
