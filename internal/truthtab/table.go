package truthtab

import (
	"fmt"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
)

// Table is the compiled extended truth table of one cell.
//
// The table is indexed by a mixed-radix code over the cell's input pins
// followed by its internal state variables. Each dimension has a number of
// *determined* choices — 6 (0,1,X,Z,R,F) for edge-sensitive inputs, 4
// (0,1,X,Z) otherwise — plus one extra code for U, which always takes the
// highest code in the dimension. Each entry stores the output pin values
// followed by the next internal state values; any of them may be U when the
// outcome genuinely depends on an undetermined dimension.
type Table struct {
	Cell *liberty.Cell

	NumInputs  int
	NumStates  int
	NumOutputs int

	// EdgeSensitive[i] reports whether input i must be presented as R/F at
	// the instant of a 0->1 / 1->0 transition (it participates in edge
	// detection inside the cell).
	EdgeSensitive []bool

	radix  []int // per dimension, including the U code
	stride []int
	data   []logic.Value // len = Size() * entryWidth
}

// MaxTableEntries bounds the size of one cell's extended table; cells larger
// than this (too many inputs/states) are rejected at compile time.
const MaxTableEntries = 1 << 24

// valueCode maps a logic value to its code in a dimension with the given
// radix (radix 7 = edge-sensitive input, 5 = plain input or state).
// It returns -1 for values invalid in that dimension.
func valueCode(v logic.Value, radix int) int {
	switch v {
	case logic.V0, logic.V1, logic.VX, logic.VZ:
		return int(v)
	case logic.VR:
		if radix == 7 {
			return 4
		}
	case logic.VF:
		if radix == 7 {
			return 5
		}
	case logic.VU:
		return radix - 1
	}
	return -1
}

// codeValue is the inverse of valueCode.
func codeValue(code, radix int) logic.Value {
	if code == radix-1 {
		return logic.VU
	}
	switch code {
	case 0, 1, 2, 3:
		return logic.Value(code)
	case 4:
		return logic.VR
	case 5:
		return logic.VF
	}
	return logic.VU
}

// Compile builds the extended truth table for a cell: it generates the
// preliminary table from the cell semantics and then runs the bitmask DP of
// Algorithm 1 (generalized to treat internal states as DP dimensions too, so
// rows with a U current state are also filled).
func Compile(cell *liberty.Cell) (*Table, error) {
	sem, err := newSemantics(cell)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Cell:          cell,
		NumInputs:     len(sem.inputs),
		NumStates:     len(sem.states),
		NumOutputs:    len(sem.outputs),
		EdgeSensitive: sem.edgeSensitive,
	}
	dims := t.NumInputs + t.NumStates
	if dims > 20 {
		return nil, fmt.Errorf("truthtab: cell %s has %d dimensions, too many", cell.Name, dims)
	}
	t.radix = make([]int, dims)
	for i := 0; i < t.NumInputs; i++ {
		if sem.edgeSensitive[i] {
			t.radix[i] = 7
		} else {
			t.radix[i] = 5
		}
	}
	for i := 0; i < t.NumStates; i++ {
		t.radix[t.NumInputs+i] = 5
	}
	t.stride = make([]int, dims)
	size := 1
	for i := dims - 1; i >= 0; i-- {
		t.stride[i] = size
		size *= t.radix[i]
		if size > MaxTableEntries {
			return nil, fmt.Errorf("truthtab: cell %s table exceeds %d entries", cell.Name, MaxTableEntries)
		}
	}
	w := t.entryWidth()
	t.data = make([]logic.Value, size*w)
	for i := range t.data {
		t.data[i] = logic.VU
	}

	t.fillPreliminary(sem)
	t.runBitmaskDP()
	return t, nil
}

func (t *Table) entryWidth() int { return t.NumOutputs + t.NumStates }

// Size returns the number of table entries (rows).
func (t *Table) Size() int {
	if len(t.radix) == 0 {
		return 1
	}
	return t.stride[0] * t.radix[0]
}

// Bytes returns the memory footprint of the table payload.
func (t *Table) Bytes() int { return len(t.data) }

// fillPreliminary enumerates every fully determined row (no U anywhere) and
// fills it from the exact cell semantics. This is step (b) of Fig. 5.
func (t *Table) fillPreliminary(sem *semantics) {
	dims := len(t.radix)
	codes := make([]int, dims)
	ins := make([]logic.Value, t.NumInputs)
	cur := make([]logic.Value, t.NumStates)
	w := t.entryWidth()
	for {
		// Decode codes into values; determined codes only (code < radix-1).
		idx := 0
		for i, c := range codes {
			idx += c * t.stride[i]
		}
		for i := 0; i < t.NumInputs; i++ {
			ins[i] = codeValue(codes[i], t.radix[i])
		}
		for i := 0; i < t.NumStates; i++ {
			cur[i] = codeValue(codes[t.NumInputs+i], 5)
		}
		outs, next := sem.eval(ins, cur)
		e := t.data[idx*w : idx*w+w]
		copy(e, outs)
		copy(e[t.NumOutputs:], next)

		// Advance the mixed-radix counter over determined codes.
		i := dims - 1
		for ; i >= 0; i-- {
			codes[i]++
			if codes[i] < t.radix[i]-1 { // exclude the U code
				break
			}
			codes[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// runBitmaskDP is Algorithm 1: for every subset s of dimensions marked U
// (enumerated from small to large), and every assignment of the remaining
// dimensions, the row is determined iff all choices of the lowest U
// dimension lead to identical content.
func (t *Table) runBitmaskDP() {
	dims := len(t.radix)
	w := t.entryWidth()
	content := make([]logic.Value, w)
	detCodes := make([]int, dims)

	for s := 1; s < (1 << dims); s++ {
		first := lowestBit(s)
		// Base index contribution of the U dimensions.
		baseU := 0
		for i := 0; i < dims; i++ {
			if s&(1<<i) != 0 {
				baseU += (t.radix[i] - 1) * t.stride[i]
			}
		}
		// Enumerate determined assignments of dimensions outside s.
		free := make([]int, 0, dims)
		for i := 0; i < dims; i++ {
			if s&(1<<i) == 0 {
				free = append(free, i)
			}
		}
		for i := range detCodes {
			detCodes[i] = 0
		}
		for {
			idx := baseU
			for _, d := range free {
				idx += detCodes[d] * t.stride[d]
			}
			// Compare contents across all determined choices of `first`,
			// with `first`'s U contribution removed. The comparison is per
			// component: one undetermined output must not poison a sibling
			// output or state that all refinements agree on.
			probe := idx - (t.radix[first]-1)*t.stride[first]
			for v := 0; v < t.radix[first]-1; v++ {
				e := t.data[(probe+v*t.stride[first])*w : (probe+v*t.stride[first])*w+w]
				if v == 0 {
					copy(content, e)
					continue
				}
				for k := 0; k < w; k++ {
					if content[k] != e[k] {
						content[k] = logic.VU
					}
				}
			}
			copy(t.data[idx*w:idx*w+w], content)

			// Advance counter over free dims.
			j := len(free) - 1
			for ; j >= 0; j-- {
				d := free[j]
				detCodes[d]++
				if detCodes[d] < t.radix[d]-1 {
					break
				}
				detCodes[d] = 0
			}
			if j < 0 {
				break
			}
		}
	}
}

func lowestBit(s int) int {
	for i := 0; ; i++ {
		if s&(1<<i) != 0 {
			return i
		}
	}
}

// Index computes the flat row index for the given input and state values.
// Inputs may carry R/F (edge-sensitive dims only) and U; states may carry U.
// It returns an error for values invalid in their dimension.
func (t *Table) Index(ins, states []logic.Value) (int, error) {
	if len(ins) != t.NumInputs || len(states) != t.NumStates {
		return 0, fmt.Errorf("truthtab: %s: want %d inputs and %d states, got %d and %d",
			t.Cell.Name, t.NumInputs, t.NumStates, len(ins), len(states))
	}
	idx := 0
	for i, v := range ins {
		c := valueCode(v, t.radix[i])
		if c < 0 {
			return 0, fmt.Errorf("truthtab: %s input %d: invalid value %v", t.Cell.Name, i, v)
		}
		idx += c * t.stride[i]
	}
	for i, v := range states {
		c := valueCode(v, 5)
		if c < 0 {
			return 0, fmt.Errorf("truthtab: %s state %d: invalid value %v", t.Cell.Name, i, v)
		}
		idx += c * t.stride[t.NumInputs+i]
	}
	return idx, nil
}

// LookupInto is the hot-path query: it writes the output values into outs
// and the next state values into next (both must have the right length),
// reading the row selected by ins/states. It panics on invalid values, which
// cannot occur for values produced by the simulator.
func (t *Table) LookupInto(ins, states, outs, next []logic.Value) {
	idx := 0
	for i, v := range ins {
		idx += valueCode(v, t.radix[i]) * t.stride[i]
	}
	base := t.NumInputs
	for i, v := range states {
		idx += valueCode(v, 5) * t.stride[base+i]
	}
	w := t.entryWidth()
	e := t.data[idx*w : idx*w+w]
	copy(outs, e[:t.NumOutputs])
	copy(next, e[t.NumOutputs:])
}

// Lookup is the allocating convenience form of LookupInto.
func (t *Table) Lookup(ins, states []logic.Value) (outs, next []logic.Value, err error) {
	idx, err := t.Index(ins, states)
	if err != nil {
		return nil, nil, err
	}
	w := t.entryWidth()
	e := t.data[idx*w : idx*w+w]
	outs = append([]logic.Value(nil), e[:t.NumOutputs]...)
	next = append([]logic.Value(nil), e[t.NumOutputs:]...)
	return outs, next, nil
}

// CompiledLibrary holds the compiled tables for every cell of a library.
type CompiledLibrary struct {
	Library *liberty.Library
	Tables  map[string]*Table
}

// CompileLibrary compiles every cell of the library (paper: "compilation of
// a large cell library with 1000 cells takes only 1 second").
func CompileLibrary(lib *liberty.Library) (*CompiledLibrary, error) {
	cl := &CompiledLibrary{Library: lib, Tables: make(map[string]*Table, len(lib.Cells))}
	for _, name := range lib.CellNames() {
		t, err := Compile(lib.Cells[name])
		if err != nil {
			return nil, err
		}
		cl.Tables[name] = t
	}
	return cl, nil
}

// Stats summarises a compiled library.
type Stats struct {
	Cells   int
	Entries int
	Bytes   int
}

// Stats returns aggregate table sizes.
func (cl *CompiledLibrary) Stats() Stats {
	var s Stats
	s.Cells = len(cl.Tables)
	for _, t := range cl.Tables {
		s.Entries += t.Size()
		s.Bytes += t.Bytes()
	}
	return s
}
