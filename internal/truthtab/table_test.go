package truthtab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
)

func compileCell(t *testing.T, name string) *Table {
	t.Helper()
	lib := liberty.MustBuiltin()
	cell := lib.Cells[name]
	if cell == nil {
		t.Fatalf("no cell %s", name)
	}
	tab, err := Compile(cell)
	if err != nil {
		t.Fatalf("Compile(%s): %v", name, err)
	}
	return tab
}

func lookup(t *testing.T, tab *Table, ins, states []logic.Value) (outs, next []logic.Value) {
	t.Helper()
	outs, next, err := tab.Lookup(ins, states)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	return outs, next
}

func vs(s string) []logic.Value {
	out := make([]logic.Value, len(s))
	for i := 0; i < len(s); i++ {
		v, err := logic.ParseValue(s[i])
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

func TestCombinationalTables(t *testing.T) {
	cases := []struct {
		cell string
		ins  string
		want string // outputs
	}{
		{"INV", "0", "1"},
		{"INV", "1", "0"},
		{"INV", "X", "X"},
		{"INV", "U", "U"},
		{"NAND2", "11", "0"},
		{"NAND2", "0U", "1"}, // 0 dominates: stable despite U input
		{"NAND2", "1U", "U"},
		{"NOR2", "1U", "0"},
		{"OR2", "1U", "1"}, // the paper's gated-clock stability case
		{"AND2", "0U", "0"},
		{"XOR2", "1U", "U"}, // XOR is never stable under U
		{"MUX2", "11U", "U"},
		{"MUX2", "110", "1"}, // S=0 selects A... pins are A,B,S
		{"MUX2", "UU0", "U"},
		{"MUX2", "1U0", "1"}, // S=0: B is don't-care
		{"FA", "110", "01"},  // SUM, COUT
		{"FA", "UU1", "UU"},
		{"FA", "U00", "U0"}, // COUT determined, SUM not
		{"TIEHI", "", "1"},
		{"TIELO", "", "0"},
	}
	for _, c := range cases {
		tab := compileCell(t, c.cell)
		outs, next := lookup(t, tab, vs(c.ins), nil)
		if got := logic.FormatValues(outs); got != c.want {
			t.Errorf("%s(%s) = %s, want %s", c.cell, c.ins, got, c.want)
		}
		if len(next) != 0 {
			t.Errorf("%s should have no state", c.cell)
		}
	}
}

// TestFig6AOI21Rows checks the truth-table facts the paper's Fig. 6 event
// trace relies on: AOI21 with A1=1, A2=U, B=1 is a stable 0, while
// A1=1, A2=U, B=0 is undetermined.
func TestFig6AOI21Rows(t *testing.T) {
	tab := compileCell(t, "AOI21") // inputs A1, A2, B
	outs, _ := lookup(t, tab, vs("1U1"), nil)
	if outs[0] != logic.V0 {
		t.Errorf("AOI21(1,U,1) = %v, want 0", outs[0])
	}
	outs, _ = lookup(t, tab, vs("1U0"), nil)
	if outs[0] != logic.VU {
		t.Errorf("AOI21(1,U,0) = %v, want U", outs[0])
	}
	outs, _ = lookup(t, tab, vs("0U0"), nil)
	if outs[0] != logic.V1 {
		t.Errorf("AOI21(0,U,0) = %v, want 1", outs[0])
	}
}

// TestFig5DFFCompilation checks the extended-table rows called out in the
// paper's Fig. 5 for the negative-edge DFF with low-enable set/reset.
// Cell DFF_NSR inputs (declaration order): CLK_N, D, SET_B, RESET_B;
// states IQ, IQN.
func TestFig5DFFCompilation(t *testing.T) {
	tab := compileCell(t, "DFF_NSR")
	if tab.NumInputs != 4 || tab.NumStates != 2 || tab.NumOutputs != 2 {
		t.Fatalf("dims: %d inputs %d states %d outputs", tab.NumInputs, tab.NumStates, tab.NumOutputs)
	}
	if !tab.EdgeSensitive[0] || tab.EdgeSensitive[1] || tab.EdgeSensitive[2] || tab.EdgeSensitive[3] {
		t.Fatalf("edge sensitivity: %v", tab.EdgeSensitive)
	}

	// Fig 5(c) row 1: CLK_N stays 0, D undetermined, no set/reset: hold.
	outs, next := lookup(t, tab, vs("0U11"), vs("10"))
	if logic.FormatValues(outs) != "10" || logic.FormatValues(next) != "10" {
		t.Errorf("hold row: outs=%s next=%s", logic.FormatValues(outs), logic.FormatValues(next))
	}
	// Falling edge with determined D captures D.
	outs, next = lookup(t, tab, vs("F111"), vs("01"))
	if logic.FormatValues(outs) != "10" || logic.FormatValues(next) != "10" {
		t.Errorf("capture row: outs=%s next=%s", logic.FormatValues(outs), logic.FormatValues(next))
	}
	// Fig 5(c) row 5: falling edge with undetermined D: all undetermined.
	outs, next = lookup(t, tab, vs("FU11"), vs("01"))
	if logic.FormatValues(outs) != "UU" || logic.FormatValues(next) != "UU" {
		t.Errorf("U-capture row: outs=%s next=%s", logic.FormatValues(outs), logic.FormatValues(next))
	}
	// Rising edge of CLK_N (negedge cell): no capture even with U data.
	outs, next = lookup(t, tab, vs("RU11"), vs("01"))
	if logic.FormatValues(outs) != "01" || logic.FormatValues(next) != "01" {
		t.Errorf("rising row: outs=%s next=%s", logic.FormatValues(outs), logic.FormatValues(next))
	}
	// Asynchronous reset dominates everything, even an undetermined clock.
	outs, next = lookup(t, tab, vs("UU10"), vs("UU"))
	if logic.FormatValues(outs) != "01" || logic.FormatValues(next) != "01" {
		t.Errorf("async reset row: outs=%s next=%s", logic.FormatValues(outs), logic.FormatValues(next))
	}
	// Set and reset both low: clear_preset_var1/var2 say both go low.
	outs, next = lookup(t, tab, vs("UU00"), vs("UU"))
	if logic.FormatValues(next) != "00" {
		t.Errorf("set+reset row: next=%s", logic.FormatValues(next))
	}
	// Undetermined clock with determined D that equals the held state:
	// output remains determined (capture would not change anything).
	outs, next = lookup(t, tab, vs("U111"), vs("10"))
	if logic.FormatValues(outs) != "10" {
		t.Errorf("benign-U-clock row: outs=%s", logic.FormatValues(outs))
	}
	// Undetermined clock with D opposite the state: undetermined.
	outs, _ = lookup(t, tab, vs("U011"), vs("10"))
	if logic.FormatValues(outs) != "UU" {
		t.Errorf("harmful-U-clock row: outs=%s", logic.FormatValues(outs))
	}
}

func TestDFFPosedgeBasics(t *testing.T) {
	tab := compileCell(t, "DFF_P") // inputs CLK, D
	// Rising edge captures.
	_, next := lookup(t, tab, vs("R1"), vs("00"))
	if logic.FormatValues(next) != "10" {
		t.Errorf("posedge capture: %s", logic.FormatValues(next))
	}
	// High clock holds; D may be undetermined.
	outs, next := lookup(t, tab, vs("1U"), vs("10"))
	if logic.FormatValues(outs) != "10" || logic.FormatValues(next) != "10" {
		t.Errorf("hold: outs=%s next=%s", logic.FormatValues(outs), logic.FormatValues(next))
	}
	// Falling edge holds.
	_, next = lookup(t, tab, vs("FU"), vs("01"))
	if logic.FormatValues(next) != "01" {
		t.Errorf("falling hold: %s", logic.FormatValues(next))
	}
	// X clock with conflicting D poisons the state.
	_, next = lookup(t, tab, vs("X1"), vs("00"))
	if next[0] != logic.VX {
		t.Errorf("X clock should poison state: %s", logic.FormatValues(next))
	}
}

func TestScanFFStability(t *testing.T) {
	tab := compileCell(t, "SDFF_P") // inputs CLK, D, SI, SE
	// Scan mode (SE=1): functional D is don't-care even at a capture edge.
	_, next := lookup(t, tab, vs("RU11"), vs("00"))
	if logic.FormatValues(next) != "10" {
		t.Errorf("scan capture with U D: %s", logic.FormatValues(next))
	}
	// Functional mode (SE=0): SI is don't-care.
	_, next = lookup(t, tab, vs("R0U0"), vs("11"))
	if logic.FormatValues(next) != "01" {
		t.Errorf("functional capture with U SI: %s", logic.FormatValues(next))
	}
	// Undetermined SE at an edge with agreeing D and SI: Kleene evaluation
	// of (SE&SI)|(!SE&D) cannot see that both branches agree, so the X
	// refinement of SE yields X and the row is undetermined. This pessimism
	// matches enumeration-based compilation (the paper's Algorithm 1).
	_, next = lookup(t, tab, vs("R11U"), vs("00"))
	if logic.FormatValues(next) != "UU" {
		t.Errorf("U SE at capture edge: %s", logic.FormatValues(next))
	}
}

func TestEnableFFHoldStability(t *testing.T) {
	tab := compileCell(t, "DFFE_P") // inputs CLK, D, EN
	// EN=0 at a clock edge: D is don't-care, state recirculates.
	_, next := lookup(t, tab, vs("RU0"), vs("10"))
	if logic.FormatValues(next) != "10" {
		t.Errorf("disabled capture: %s", logic.FormatValues(next))
	}
	// EN=1 at edge captures D.
	_, next = lookup(t, tab, vs("R01"), vs("10"))
	if logic.FormatValues(next) != "01" {
		t.Errorf("enabled capture: %s", logic.FormatValues(next))
	}
}

func TestLatchTransparency(t *testing.T) {
	tab := compileCell(t, "DLATCH_H") // inputs GATE, D
	// Transparent: follows D.
	outs, next := lookup(t, tab, vs("11"), vs("00"))
	if outs[0] != logic.V1 || next[0] != logic.V1 {
		t.Errorf("transparent: outs=%v next=%v", outs, next)
	}
	// Opaque: holds regardless of D (the paper's latch stable-time case).
	outs, next = lookup(t, tab, vs("0U"), vs("10"))
	if outs[0] != logic.V1 || next[0] != logic.V1 {
		t.Errorf("opaque hold: outs=%v next=%v", outs, next)
	}
	// Undetermined gate with D equal to state: still determined.
	outs, _ = lookup(t, tab, vs("U1"), vs("10"))
	if outs[0] != logic.V1 {
		t.Errorf("benign U gate: %v", outs[0])
	}
	// Undetermined gate with conflicting D: undetermined.
	outs, _ = lookup(t, tab, vs("U0"), vs("10"))
	if outs[0] != logic.VU {
		t.Errorf("harmful U gate: %v", outs[0])
	}
}

// TestClockGateStability reproduces the Fig. 4 scenario at table level: the
// CLKGATE cell's output is a stable 0 while the latched enable is 0, no
// matter what the clock does.
func TestClockGateStability(t *testing.T) {
	tab := compileCell(t, "CLKGATE") // inputs CLK, GATE
	// Latched enable IQ=0, clock undetermined: GCLK = CLK & 0 = 0 stable.
	outs, next := lookup(t, tab, vs("U0"), vs("00"))
	if outs[0] != logic.V0 {
		t.Errorf("gated-off clock should be stable 0, got %v", outs[0])
	}
	_ = next
	// CLK low (latch transparent): GCLK = 0, and enable updates from GATE.
	outs, next = lookup(t, tab, vs("01"), vs("00"))
	if outs[0] != logic.V0 || next[0] != logic.V1 {
		t.Errorf("transparent phase: outs=%v next=%v", outs, next)
	}
	// CLK high with latched enable 1: GCLK = 1.
	outs, _ = lookup(t, tab, vs("1U"), vs("10"))
	if outs[0] != logic.V1 {
		t.Errorf("enabled high phase: %v", outs[0])
	}
}

func TestSRLatchStatetable(t *testing.T) {
	tab := compileCell(t, "SRLATCH") // inputs S, R
	_, next := lookup(t, tab, vs("10"), vs("0"))
	if next[0] != logic.V1 {
		t.Errorf("set: %v", next[0])
	}
	_, next = lookup(t, tab, vs("01"), vs("1"))
	if next[0] != logic.V0 {
		t.Errorf("reset: %v", next[0])
	}
	_, next = lookup(t, tab, vs("00"), vs("1"))
	if next[0] != logic.V1 {
		t.Errorf("hold: %v", next[0])
	}
	_, next = lookup(t, tab, vs("11"), vs("0"))
	if next[0] != logic.VX {
		t.Errorf("forbidden: %v", next[0])
	}
	// Hold is stable under U on the *other* input only when holding:
	// S=0, R=U: could be hold or reset; if state is 0 both agree.
	_, next = lookup(t, tab, vs("0U"), vs("0"))
	if next[0] != logic.V0 {
		t.Errorf("benign U: %v", next[0])
	}
	// If state is 1, reset would change it: undetermined.
	_, next = lookup(t, tab, vs("0U"), vs("1"))
	if next[0] != logic.VU {
		t.Errorf("harmful U: %v", next[0])
	}
}

// Property: every determined entry of the extended table is consistent with
// the exact semantics under every full determinization of its U dimensions.
func TestDPSoundnessProperty(t *testing.T) {
	lib := liberty.MustBuiltin()
	rng := rand.New(rand.NewSource(42))
	for _, name := range []string{"NAND2", "AOI21", "MUX2", "DFF_P", "DFF_NSR", "SDFF_P", "DLATCH_H", "CLKGATE", "SRLATCH", "FA"} {
		cell := lib.Cells[name]
		tab, err := Compile(cell)
		if err != nil {
			t.Fatal(err)
		}
		sem, err := newSemantics(cell)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			ins := make([]logic.Value, tab.NumInputs)
			states := make([]logic.Value, tab.NumStates)
			anyU := false
			for i := range ins {
				ins[i] = randomDimValue(rng, tab.EdgeSensitive[i], true)
				anyU = anyU || ins[i] == logic.VU
			}
			for i := range states {
				states[i] = randomDimValue(rng, false, true)
				anyU = anyU || states[i] == logic.VU
			}
			outs, next, err := tab.Lookup(ins, states)
			if err != nil {
				t.Fatal(err)
			}
			if !anyU {
				// Fully determined: must equal semantics exactly.
				wantOuts, wantNext := sem.eval(ins, states)
				if logic.FormatValues(outs) != logic.FormatValues(wantOuts) ||
					logic.FormatValues(next) != logic.FormatValues(wantNext) {
					t.Fatalf("%s(%s|%s): table %s|%s, semantics %s|%s", name,
						logic.FormatValues(ins), logic.FormatValues(states),
						logic.FormatValues(outs), logic.FormatValues(next),
						logic.FormatValues(wantOuts), logic.FormatValues(wantNext))
				}
				continue
			}
			// Determinize the U dims a few random ways; every determined
			// table output must match the semantics of each refinement.
			for d := 0; d < 5; d++ {
				rIns := make([]logic.Value, len(ins))
				rStates := make([]logic.Value, len(states))
				for i, v := range ins {
					if v == logic.VU {
						rIns[i] = randomDimValue(rng, tab.EdgeSensitive[i], false)
					} else {
						rIns[i] = v
					}
				}
				for i, v := range states {
					if v == logic.VU {
						rStates[i] = randomDimValue(rng, false, false)
					} else {
						rStates[i] = v
					}
				}
				wantOuts, wantNext := sem.eval(rIns, rStates)
				for k, v := range outs {
					if v != logic.VU && v != wantOuts[k] {
						t.Fatalf("%s: row (%s|%s) claims out[%d]=%v but refinement (%s|%s) gives %v",
							name, logic.FormatValues(ins), logic.FormatValues(states), k, v,
							logic.FormatValues(rIns), logic.FormatValues(rStates), wantOuts[k])
					}
				}
				for k, v := range next {
					if v != logic.VU && v != wantNext[k] {
						t.Fatalf("%s: row (%s|%s) claims next[%d]=%v but refinement gives %v",
							name, logic.FormatValues(ins), logic.FormatValues(states), k, v, wantNext[k])
					}
				}
			}
		}
	}
}

// Property: the DP is also complete at the first level — a row with exactly
// one U dim is U only if two determinizations genuinely disagree.
func TestDPCompletenessSingleU(t *testing.T) {
	lib := liberty.MustBuiltin()
	for _, name := range []string{"NAND2", "MUX2", "DFF_P", "DLATCH_H"} {
		cell := lib.Cells[name]
		tab, _ := Compile(cell)
		sem, _ := newSemantics(cell)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			ins := make([]logic.Value, tab.NumInputs)
			states := make([]logic.Value, tab.NumStates)
			for i := range ins {
				ins[i] = randomDimValue(rng, tab.EdgeSensitive[i], false)
			}
			for i := range states {
				states[i] = randomDimValue(rng, false, false)
			}
			dim := rng.Intn(tab.NumInputs)
			saved := ins[dim]
			ins[dim] = logic.VU
			outs, _, _ := tab.Lookup(ins, states)
			ins[dim] = saved

			// Compute the set of outcomes across all choices of dim.
			choices := []logic.Value{logic.V0, logic.V1, logic.VX, logic.VZ}
			if tab.EdgeSensitive[dim] {
				choices = append(choices, logic.VR, logic.VF)
			}
			for k := range outs {
				allSame := true
				var first logic.Value
				for ci, c := range choices {
					ins2 := append([]logic.Value(nil), ins...)
					ins2[dim] = c
					o, _ := sem.eval(ins2, states)
					if ci == 0 {
						first = o[k]
					} else if o[k] != first {
						allSame = false
					}
				}
				if allSame && outs[k] == logic.VU {
					t.Fatalf("%s: out[%d] is U but all refinements agree on %v", name, k, first)
				}
				if !allSame && outs[k] != logic.VU {
					t.Fatalf("%s: out[%d]=%v but refinements disagree", name, k, outs[k])
				}
			}
		}
	}
}

func randomDimValue(rng *rand.Rand, edge, allowU bool) logic.Value {
	choices := []logic.Value{logic.V0, logic.V1, logic.VX, logic.VZ}
	if edge {
		choices = append(choices, logic.VR, logic.VF)
	}
	if allowU {
		choices = append(choices, logic.VU, logic.VU) // bias toward U
	}
	return choices[rng.Intn(len(choices))]
}

func TestCompileLibraryBuiltin(t *testing.T) {
	lib := liberty.MustBuiltin()
	cl, err := CompileLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Tables) != len(lib.Cells) {
		t.Fatalf("compiled %d of %d cells", len(cl.Tables), len(lib.Cells))
	}
	st := cl.Stats()
	if st.Cells != len(lib.Cells) || st.Entries == 0 || st.Bytes == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestIndexErrors(t *testing.T) {
	tab := compileCell(t, "NAND2")
	if _, err := tab.Index(vs("1"), nil); err == nil {
		t.Error("short input vector should error")
	}
	if _, err := tab.Index(vs("1R"), nil); err == nil {
		t.Error("edge on non-edge-sensitive input should error")
	}
	if _, _, err := tab.Lookup(vs("11"), vs("0")); err == nil {
		t.Error("states on combinational cell should error")
	}
}

func TestTableSizeAccounting(t *testing.T) {
	tab := compileCell(t, "DFF_NSR")
	// dims: CLK_N edge (7) + 3 plain inputs (5^3) + 2 states (5^2)
	want := 7 * 5 * 5 * 5 * 5 * 5
	if tab.Size() != want {
		t.Errorf("Size = %d, want %d", tab.Size(), want)
	}
	if tab.Bytes() != want*(2+2) {
		t.Errorf("Bytes = %d", tab.Bytes())
	}
}

// TestStatetableEdgeTokens exercises the statetable path with R/F edge
// tokens: a DFF expressed purely as a state table.
func TestStatetableEdgeTokens(t *testing.T) {
	src := `library (t) {
  cell (STDFF) {
    statetable ("CK D", "IQ") {
      table : "R L : - : L , \
               R H : - : H , \
               F - : - : N , \
               L - : - : N , \
               H - : - : N ";
    }
    pin (CK) { direction : input; }
    pin (D)  { direction : input; }
    pin (Q)  { direction : output; function : "IQ"; }
  }
}`
	lib, err := liberty.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compile(lib.Cells["STDFF"])
	if err != nil {
		t.Fatal(err)
	}
	if !tab.EdgeSensitive[0] || tab.EdgeSensitive[1] {
		t.Fatalf("edge sensitivity: %v", tab.EdgeSensitive)
	}
	// Rising edge captures D.
	_, next, err := tab.Lookup(vs("R1"), vs("0"))
	if err != nil {
		t.Fatal(err)
	}
	if next[0] != logic.V1 {
		t.Errorf("capture: %v", next[0])
	}
	// Steady low clock holds even with undetermined D.
	_, next, _ = tab.Lookup(vs("0U"), vs("1"))
	if next[0] != logic.V1 {
		t.Errorf("hold with U data: %v", next[0])
	}
	// Falling edge holds too (explicit F row).
	_, next, _ = tab.Lookup(vs("FU"), vs("0"))
	if next[0] != logic.V0 {
		t.Errorf("falling edge: %v", next[0])
	}
	// Rising edge with undetermined D is undetermined.
	_, next, _ = tab.Lookup(vs("RU"), vs("0"))
	if next[0] != logic.VU {
		t.Errorf("U capture: %v", next[0])
	}
}

// Property (testing/quick): valueCode/codeValue are inverse bijections on
// every dimension radix.
func TestValueCodeRoundTripQuick(t *testing.T) {
	f := func(code uint8, edge bool) bool {
		radix := 5
		if edge {
			radix = 7
		}
		c := int(code) % radix
		v := codeValue(c, radix)
		return valueCode(v, radix) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): refining U inputs never flips a determined
// table output (information monotonicity of the compiled tables).
func TestTableMonotonicityQuick(t *testing.T) {
	tab := compileCell(t, "AOI22")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := make([]logic.Value, tab.NumInputs)
		for i := range ins {
			ins[i] = randomDimValue(rng, false, true)
		}
		outs, _, err := tab.Lookup(ins, nil)
		if err != nil {
			return false
		}
		// Refine one U input (if any) and compare.
		for i, v := range ins {
			if v != logic.VU {
				continue
			}
			refined := append([]logic.Value(nil), ins...)
			refined[i] = randomDimValue(rng, false, false)
			outs2, _, err := tab.Lookup(refined, nil)
			if err != nil {
				return false
			}
			for k := range outs {
				if outs[k] != logic.VU && outs2[k] != outs[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
