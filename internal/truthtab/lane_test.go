package truthtab

import (
	"sort"
	"testing"

	"gatesim/internal/lane"
	"gatesim/internal/logic"
)

// TestLanePackedLUTExhaustive differentially tests LookupLanes against the
// scalar PackedLUT for every builtin comb1 cell: for every expired-input
// subset, every combination of the four settled values on the live inputs
// is evaluated, with combinations packed many-per-word so lanes hold
// genuinely different rows.
func TestLanePackedLUTExhaustive(t *testing.T) {
	cl := compileBuiltin(t)
	names := make([]string, 0, len(cl.Tables))
	for name := range cl.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	settled := []logic.Value{logic.V0, logic.V1, logic.VX, logic.VZ}
	comb1 := 0
	for _, name := range names {
		tab := cl.Tables[name]
		if tab.Class() != ClassComb1 {
			continue
		}
		comb1++
		lut := tab.PackLUT()
		llut := LanePackedLUT{LUT: lut}
		n := lut.NumInputs
		t.Run(name, func(t *testing.T) {
			for exp := uint32(0); exp < 1<<uint(n); exp++ {
				live := []int{}
				for i := 0; i < n; i++ {
					if exp&(1<<uint(i)) == 0 {
						live = append(live, i)
					}
				}
				nCombos := 1
				for range live {
					nCombos *= len(settled)
				}
				// Pack combos into lane words, lane.MaxLanes at a time.
				for lo := 0; lo < nCombos; lo += lane.MaxLanes {
					hi := lo + lane.MaxLanes
					if hi > nCombos {
						hi = nCombos
					}
					lanes := hi - lo
					laneMask := uint32(1)<<uint(lanes) - 1
					ins := make([]lane.Word, n)
					// Poison expired inputs' words: they must be ignored.
					for i := 0; i < n; i++ {
						if exp&(1<<uint(i)) != 0 {
							ins[i] = lane.Broadcast(logic.VZ)
						}
					}
					scalarIns := make([][]logic.Value, lanes)
					for ln := 0; ln < lanes; ln++ {
						combo := lo + ln
						row := make([]logic.Value, n)
						for i := 0; i < n; i++ {
							row[i] = logic.VU
						}
						for _, i := range live {
							row[i] = settled[combo%len(settled)]
							combo /= len(settled)
							ins[i] = ins[i].Set(ln, row[i])
						}
						scalarIns[ln] = row
					}
					out, undet := llut.LookupLanes(ins, exp, laneMask)
					for ln := 0; ln < lanes; ln++ {
						want := lut.Lookup(scalarIns[ln])
						if want == logic.VU {
							if undet&(1<<uint(ln)) == 0 {
								t.Fatalf("exp=%b lane %d (%v): scalar VU but lane determined %v",
									exp, ln, scalarIns[ln], out.Get(ln))
							}
							continue
						}
						if undet&(1<<uint(ln)) != 0 {
							t.Fatalf("exp=%b lane %d (%v): scalar %v but lane undetermined",
								exp, ln, scalarIns[ln], want)
						}
						if got := out.Get(ln); got != want {
							t.Fatalf("exp=%b lane %d (%v): lane %v, scalar %v",
								exp, ln, scalarIns[ln], got, want)
						}
					}
				}
			}
		})
	}
	if comb1 == 0 {
		t.Fatal("builtin library has no comb1 cells")
	}
}

// TestLanePackedLUTUniformFastPath pins the broadcast fast path: uniform
// words must produce the same result as the per-lane slow path.
func TestLanePackedLUTUniformFastPath(t *testing.T) {
	cl := compileBuiltin(t)
	settled := []logic.Value{logic.V0, logic.V1, logic.VX, logic.VZ}
	for name, tab := range cl.Tables {
		if tab.Class() != ClassComb1 {
			continue
		}
		lut := tab.PackLUT()
		llut := LanePackedLUT{LUT: lut}
		n := lut.NumInputs
		for combo := 0; combo < 1<<(2*uint(n)); combo++ {
			ins := make([]lane.Word, n)
			row := make([]logic.Value, n)
			c := combo
			for i := 0; i < n; i++ {
				row[i] = settled[c%4]
				c /= 4
				ins[i] = lane.Broadcast(row[i])
			}
			out, undet := llut.LookupLanes(ins, 0, 0xFFFFFFFF)
			want := lut.Lookup(row)
			for ln := 0; ln < lane.MaxLanes; ln++ {
				if want == logic.VU {
					if undet&(1<<uint(ln)) == 0 {
						t.Fatalf("%s %v lane %d: want undet", name, row, ln)
					}
				} else if got := out.Get(ln); got != want || undet != 0 {
					t.Fatalf("%s %v lane %d: got %v undet=%x want %v", name, row, ln, got, undet, want)
				}
			}
		}
	}
}
