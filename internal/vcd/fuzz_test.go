package vcd

// Fuzz target for the VCD reader: arbitrary input must produce either parsed
// changes or an error — never a panic. scripts/check.sh runs this as a short
// smoke stage; `make fuzz` runs it longer.

import (
	"strings"
	"testing"
)

func FuzzParseVCD(f *testing.F) {
	f.Add(sample)
	f.Add("$enddefinitions $end\n#0\n")
	f.Add("$timescale 100ps $end\n$var wire 1 ! a $end\n$enddefinitions $end\n#1\n1!\nb0 !\n")
	f.Add("$scope module m $end\n$var wire 1 % q $end\n$upscope $end\n$enddefinitions $end\n$dumpvars\nx%\n$end\n#3\nz%\n")
	f.Add("#5\n1!")
	f.Add("$var wire")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := NewReader(strings.NewReader(src))
		if err != nil {
			return
		}
		if _, err := r.ReadAll(); err != nil {
			return
		}
	})
}
