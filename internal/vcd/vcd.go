// Package vcd reads and writes Value Change Dump waveforms for scalar
// signals. The reader streams changes one at a time so that arbitrarily long
// stimulus files can drive the simulator's streamed signal I/O (paper
// §III-D.2); the writer emits simulation results.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gatesim/internal/logic"
)

// Change is one signal transition.
type Change struct {
	Time int64 // picoseconds
	Sig  int   // index into the signal table
	Val  logic.Value
}

// Reader streams a VCD file.
type Reader struct {
	s         *bufio.Scanner
	signals   []string
	idToSig   map[string]int
	timescale int64
	now       int64
	pending   []string // unconsumed tokens of the current line
}

// NewReader parses the VCD header; changes are then streamed via Next.
func NewReader(src io.Reader) (*Reader, error) {
	r := &Reader{
		s:         bufio.NewScanner(src),
		idToSig:   make(map[string]int),
		timescale: 1,
	}
	r.s.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if err := r.parseHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

// Signals returns the declared signal names, in declaration order; scoped
// names are joined with dots ("top.clk" becomes "clk" only when the scope is
// the sole root module).
func (r *Reader) Signals() []string { return r.signals }

// Timescale returns picoseconds per VCD time unit.
func (r *Reader) Timescale() int64 { return r.timescale }

func (r *Reader) parseHeader() error {
	var scope []string
	for {
		tok, err := r.nextToken()
		if err != nil {
			return fmt.Errorf("vcd: unexpected EOF in header")
		}
		switch tok {
		case "$timescale":
			body, err := r.collectUntilEnd()
			if err != nil {
				return err
			}
			ts, err := parseTimescale(strings.Join(body, ""))
			if err != nil {
				return err
			}
			r.timescale = ts
		case "$scope":
			body, err := r.collectUntilEnd()
			if err != nil {
				return err
			}
			if len(body) >= 2 {
				scope = append(scope, body[1])
			}
		case "$upscope":
			if _, err := r.collectUntilEnd(); err != nil {
				return err
			}
			if len(scope) > 0 {
				scope = scope[:len(scope)-1]
			}
		case "$var":
			body, err := r.collectUntilEnd()
			if err != nil {
				return err
			}
			// $var wire 1 <id> <name> [range] $end
			if len(body) < 4 {
				return fmt.Errorf("vcd: malformed $var: %v", body)
			}
			if body[1] != "1" {
				return fmt.Errorf("vcd: only 1-bit signals supported, got width %s for %s", body[1], body[3])
			}
			id := body[2]
			name := strings.Join(body[3:], "")
			if _, dup := r.idToSig[id]; dup {
				return fmt.Errorf("vcd: duplicate id code %q", id)
			}
			r.idToSig[id] = len(r.signals)
			r.signals = append(r.signals, name)
		case "$enddefinitions":
			_, err := r.collectUntilEnd()
			return err
		case "$comment", "$date", "$version":
			if _, err := r.collectUntilEnd(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("vcd: unexpected token %q in header", tok)
		}
	}
}

func (r *Reader) nextToken() (string, error) {
	for len(r.pending) == 0 {
		if !r.s.Scan() {
			if err := r.s.Err(); err != nil {
				return "", err
			}
			return "", io.EOF
		}
		r.pending = strings.Fields(r.s.Text())
	}
	tok := r.pending[0]
	r.pending = r.pending[1:]
	return tok, nil
}

func (r *Reader) collectUntilEnd() ([]string, error) {
	var body []string
	for {
		tok, err := r.nextToken()
		if err != nil {
			return nil, fmt.Errorf("vcd: unexpected EOF before $end")
		}
		if tok == "$end" {
			return body, nil
		}
		body = append(body, tok)
	}
}

// Next returns the next value change, or io.EOF at the end of the dump.
// Times are already scaled to picoseconds.
func (r *Reader) Next() (Change, error) {
	for {
		tok, err := r.nextToken()
		if err != nil {
			return Change{}, err
		}
		switch tok[0] {
		case '#':
			var t int64
			if _, err := fmt.Sscanf(tok, "#%d", &t); err != nil {
				return Change{}, fmt.Errorf("vcd: bad timestamp %q", tok)
			}
			t *= r.timescale
			if t < r.now {
				return Change{}, fmt.Errorf("vcd: time goes backwards at %q", tok)
			}
			r.now = t
		case '$': // $dumpvars, $end, ...
			continue
		case '0', '1', 'x', 'X', 'z', 'Z':
			v, _ := logic.ParseValue(tok[0])
			sig, ok := r.idToSig[tok[1:]]
			if !ok {
				return Change{}, fmt.Errorf("vcd: unknown id code %q", tok[1:])
			}
			return Change{Time: r.now, Sig: sig, Val: v}, nil
		case 'b', 'B':
			// 1-bit vector form: "b0 <id>".
			bits := tok[1:]
			idTok, err := r.nextToken()
			if err != nil {
				return Change{}, fmt.Errorf("vcd: vector change missing id")
			}
			if len(bits) != 1 {
				return Change{}, fmt.Errorf("vcd: only 1-bit vectors supported, got %q", tok)
			}
			v, perr := logic.ParseValue(bits[0])
			if perr != nil {
				return Change{}, perr
			}
			sig, ok := r.idToSig[idTok]
			if !ok {
				return Change{}, fmt.Errorf("vcd: unknown id code %q", idTok)
			}
			return Change{Time: r.now, Sig: sig, Val: v}, nil
		default:
			return Change{}, fmt.Errorf("vcd: unexpected token %q", tok)
		}
	}
}

// ReadAll drains the reader; convenient for tests and small files.
func (r *Reader) ReadAll() ([]Change, error) {
	var out []Change
	for {
		c, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
}

func parseTimescale(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	var num string
	switch {
	case strings.HasSuffix(s, "ps"):
		num = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		num, mult = s[:len(s)-2], 1000
	case strings.HasSuffix(s, "us"):
		num, mult = s[:len(s)-2], 1000_000
	default:
		return 0, fmt.Errorf("vcd: unsupported timescale %q", s)
	}
	var n int64
	if _, err := fmt.Sscanf(num, "%d", &n); err != nil {
		return 0, fmt.Errorf("vcd: bad timescale %q", s)
	}
	return n * mult, nil
}

// Writer emits a VCD file with 1ps resolution.
type Writer struct {
	w       *bufio.Writer
	ids     []string
	now     int64
	started bool
	err     error
}

// NewWriter writes the header for the given scalar signal names and returns
// a Writer whose Change method appends transitions (times must not
// decrease).
func NewWriter(dst io.Writer, module string, signals []string) *Writer {
	w := &Writer{w: bufio.NewWriter(dst), now: -1}
	fmt.Fprintf(w.w, "$timescale 1ps $end\n$scope module %s $end\n", module)
	w.ids = make([]string, len(signals))
	for i, name := range signals {
		w.ids[i] = idCode(i)
		fmt.Fprintf(w.w, "$var wire 1 %s %s $end\n", w.ids[i], name)
	}
	fmt.Fprintf(w.w, "$upscope $end\n$enddefinitions $end\n")
	return w
}

// idCode generates the compact printable identifier VCD uses (base-94).
func idCode(i int) string {
	var b []byte
	for {
		b = append(b, byte(33+i%94))
		i /= 94
		if i == 0 {
			break
		}
		i--
	}
	return string(b)
}

// Change appends one transition.
func (w *Writer) Change(t int64, sig int, v logic.Value) error {
	if w.err != nil {
		return w.err
	}
	if t < w.now {
		w.err = fmt.Errorf("vcd: time goes backwards (%d after %d)", t, w.now)
		return w.err
	}
	if t != w.now || !w.started {
		fmt.Fprintf(w.w, "#%d\n", t)
		w.now = t
		w.started = true
	}
	c := v.Settle()
	if !c.IsSteady() {
		c = logic.VX
	}
	if _, err := fmt.Fprintf(w.w, "%s%s\n", strings.ToLower(c.String()), w.ids[sig]); err != nil {
		w.err = err
	}
	return w.err
}

// Flush completes the file.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}
