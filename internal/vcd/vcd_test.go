package vcd

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gatesim/internal/logic"
)

const sample = `$date today $end
$version gatesim $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 1 " d $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
0"
$end
#5
1!
b1 "
#10
0!
x"
`

func TestReaderBasic(t *testing.T) {
	r, err := NewReader(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Signals(); len(got) != 2 || got[0] != "clk" || got[1] != "d" {
		t.Fatalf("signals: %v", got)
	}
	if r.Timescale() != 1000 {
		t.Errorf("timescale: %d", r.Timescale())
	}
	chs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []Change{
		{0, 0, logic.V0}, {0, 1, logic.V0},
		{5000, 0, logic.V1}, {5000, 1, logic.V1},
		{10000, 0, logic.V0}, {10000, 1, logic.VX},
	}
	if len(chs) != len(want) {
		t.Fatalf("changes: %v", chs)
	}
	for i, c := range chs {
		if c != want[i] {
			t.Errorf("change %d: %+v, want %+v", i, c, want[i])
		}
	}
}

func TestReaderErrors(t *testing.T) {
	bad := []string{
		"$var wire 1 ! x $end",                      // no enddefinitions
		"$timescale 1s $end $enddefinitions $end",   // bad timescale
		"$scope module m $end $var wire 8 ! b $end", // wide vector
		"$enddefinitions $end\n#5\n#2\n",            // handled below (time back)
	}
	for _, src := range bad[:3] {
		if _, err := NewReader(strings.NewReader(src)); err == nil {
			t.Errorf("NewReader(%q) should fail", src)
		}
	}
	r, err := NewReader(strings.NewReader("$enddefinitions $end\n#5\n#2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); err == nil {
		t.Error("backwards time should fail")
	}
	r, _ = NewReader(strings.NewReader("$enddefinitions $end\n#5\n1?\n"))
	if _, err := r.ReadAll(); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	sigs := []string{"a", "b", "c"}
	var buf bytes.Buffer
	w := NewWriter(&buf, "top", sigs)
	rng := rand.New(rand.NewSource(3))
	var want []Change
	now := int64(0)
	for i := 0; i < 500; i++ {
		now += int64(rng.Intn(3)) * 7
		c := Change{Time: now, Sig: rng.Intn(3), Val: logic.Value(rng.Intn(3))}
		want = append(want, c)
		if err := w.Change(c.Time, c.Sig, c.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("change %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestWriterMonotonicity(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "top", []string{"a"})
	if err := w.Change(10, 0, logic.V1); err != nil {
		t.Fatal(err)
	}
	if err := w.Change(5, 0, logic.V0); err == nil {
		t.Error("backwards time should fail")
	}
}

func TestWriterNormalizesValues(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "top", []string{"a"})
	w.Change(0, 0, logic.VR) // settles to 1
	w.Change(1, 0, logic.VU) // becomes x
	w.Flush()
	out := buf.String()
	if !strings.Contains(out, "1!") || !strings.Contains(out, "x!") {
		t.Errorf("output:\n%s", out)
	}
}

func TestIDCode(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for j := 0; j < len(id); j++ {
			if id[j] < 33 || id[j] > 126 {
				t.Fatalf("unprintable id byte %d", id[j])
			}
		}
	}
	if idCode(0) != "!" || len(idCode(93)) != 1 || len(idCode(94)) != 2 {
		t.Errorf("base-94 encoding wrong: %q %q %q", idCode(0), idCode(93), idCode(94))
	}
}
