package gen

import (
	"sort"
	"testing"

	"gatesim/internal/levelize"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
)

func TestBuildDeterministic(t *testing.T) {
	spec := Spec{Name: "x", Seed: 42, CombGates: 200, FFs: 30, Latches: 4,
		ScanFFs: 8, ClockGates: 2, Depth: 6, DataInputs: 10, Outputs: 4}
	d1, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	v1 := netlist.WriteVerilog(d1.Netlist)
	v2 := netlist.WriteVerilog(d2.Netlist)
	if v1 != v2 {
		t.Error("same spec must generate identical netlists")
	}
	if s1, s2 := d1.Netlist.Stats(), d2.Netlist.Stats(); s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestBuildStructure(t *testing.T) {
	spec := Spec{Name: "x", Seed: 1, CombGates: 300, FFs: 45, Latches: 6,
		ScanFFs: 10, ClockGates: 3, Depth: 8, DataInputs: 12, Outputs: 6}
	d, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	nl := d.Netlist
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sequential census.
	wantSeq := spec.FFs + spec.Latches + spec.ScanFFs + spec.ClockGates
	if got := nl.SequentialCount(); got != wantSeq {
		t.Errorf("sequential cells: %d, want %d", got, wantSeq)
	}
	// The design must levelize (no combinational cycles).
	lv, err := levelize.Compute(nl)
	if err != nil {
		t.Fatal(err)
	}
	if lv.NumCells() != len(nl.Instances) {
		t.Error("levelization incomplete")
	}
	// Ports present.
	if len(nl.PortsIn) != 3+spec.DataInputs {
		t.Errorf("inputs: %d", len(nl.PortsIn))
	}
	if len(d.Outs) != spec.Outputs {
		t.Errorf("outputs: %d", len(d.Outs))
	}
	// Outputs are distinct.
	seen := map[netlist.NetID]bool{}
	for _, o := range d.Outs {
		if seen[o] {
			t.Error("duplicate primary output")
		}
		seen[o] = true
	}
	// The generated netlist round-trips through the Verilog writer/parser.
	src := netlist.WriteVerilog(nl)
	nl2, err := netlist.ParseVerilog(src, liberty.MustBuiltin())
	if err != nil {
		t.Fatalf("generated verilog does not re-parse: %v", err)
	}
	if nl.Stats() != nl2.Stats() {
		t.Error("verilog round-trip changes stats")
	}
}

func TestDelaysPositiveAndDeterministic(t *testing.T) {
	d, err := Build(Spec{Name: "x", Seed: 3, CombGates: 100, FFs: 10,
		Depth: 4, DataInputs: 6, Outputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	dl1 := Delays(d, 9)
	dl2 := Delays(d, 9)
	for i := range d.Netlist.Instances {
		inst := &d.Netlist.Instances[i]
		for o := range inst.Type.Outputs {
			if inst.OutNets[o] < 0 {
				continue
			}
			for in := range inst.Type.Inputs {
				a1 := dl1.Arc(netlist.CellID(i), o, in)
				a2 := dl2.Arc(netlist.CellID(i), o, in)
				if a1 != a2 {
					t.Fatalf("delays not deterministic at %d/%d/%d", i, o, in)
				}
				if a1.Min() < 1 {
					t.Fatalf("delay < 1ps at %d/%d/%d: %+v", i, o, in, a1)
				}
			}
		}
	}
	if dl1.MinPositive < 1 {
		t.Error("MinPositive must be >= 1")
	}
}

func TestSDFTextParses(t *testing.T) {
	d, err := Build(Spec{Name: "x", Seed: 3, CombGates: 50, FFs: 6,
		Depth: 3, DataInputs: 4, Outputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := SDFText(d, 9)
	f, err := sdf.Parse(text)
	if err != nil {
		t.Fatalf("generated SDF does not parse: %v", err)
	}
	if _, err := sdf.Apply(f, d.Netlist, sdf.Delay{Rise: 1, Fall: 1}); err != nil {
		t.Fatalf("generated SDF does not apply: %v", err)
	}
}

func TestStimuliWellFormed(t *testing.T) {
	d, err := Build(Spec{Name: "x", Seed: 5, CombGates: 80, FFs: 12, ScanFFs: 4,
		Depth: 4, DataInputs: 8, Outputs: 2, ClockPeriodPS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	stim := Stimuli(d, StimSpec{Cycles: 50, ActivityFactor: 0.5, Seed: 5, ScanBurst: 10})
	// Strictly increasing per net; all targets are primary inputs.
	last := map[netlist.NetID]int64{}
	counts := map[netlist.NetID]int{}
	for _, s := range stim {
		if !d.Netlist.Nets[s.Net].IsInput {
			t.Fatalf("stimulus on non-input %s", d.Netlist.Nets[s.Net].Name)
		}
		if lt, ok := last[s.Net]; ok && s.Time <= lt {
			t.Fatalf("non-increasing stimulus on %s: %d after %d",
				d.Netlist.Nets[s.Net].Name, s.Time, lt)
		}
		last[s.Net] = s.Time
		counts[s.Net]++
	}
	// Clock toggles twice per cycle.
	if got := counts[d.Clk]; got != 2*50+1 {
		t.Errorf("clock events: %d", got)
	}
	// Reset rises exactly once after the initial assertion.
	if got := counts[d.RstN]; got != 2 {
		t.Errorf("reset events: %d", got)
	}
	// Activity factor controls data event volume (rough band).
	dataEvents := 0
	for _, nid := range d.Data {
		dataEvents += counts[nid] - 1 // minus the t=0 init
	}
	expect := float64(len(d.Data)) * 50 * 0.5
	if float64(dataEvents) < expect*0.7 || float64(dataEvents) > expect*1.3 {
		t.Errorf("data events %d, expected about %.0f", dataEvents, expect)
	}
	if EndTime(d, StimSpec{Cycles: 50}) <= last[d.Clk] {
		t.Error("EndTime must clear the last clock event")
	}
}

// TestStimuliGloballySorted pins the source-side ordering contract:
// consumers (slice streaming, snapshot-resume cuts, lane merging) rely on
// the trace being globally time-sorted, not just per net.
func TestStimuliGloballySorted(t *testing.T) {
	d, err := Build(Spec{Name: "x", Seed: 9, CombGates: 80, FFs: 12, ScanFFs: 4,
		Depth: 4, DataInputs: 8, Outputs: 2, ClockPeriodPS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	stim := Stimuli(d, StimSpec{Cycles: 40, ActivityFactor: 0.8, Seed: 3, ScanBurst: 8})
	for i := 1; i < len(stim); i++ {
		if stim[i].Time < stim[i-1].Time {
			t.Fatalf("stimulus %d at t=%d after t=%d: trace not globally sorted",
				i, stim[i].Time, stim[i-1].Time)
		}
	}
}

// TestLaneStimuliIndependentSeeds: each lane shares the clock/reset/scan
// schedule but gets its own data activity.
func TestLaneStimuliIndependentSeeds(t *testing.T) {
	d, err := Build(Spec{Name: "x", Seed: 9, CombGates: 80, FFs: 12, ScanFFs: 4,
		Depth: 4, DataInputs: 8, Outputs: 2, ClockPeriodPS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	spec := StimSpec{Cycles: 20, ActivityFactor: 0.6, Seed: 11, ScanBurst: 8}
	lanes := LaneStimuli(d, spec, 4)
	if len(lanes) != 4 {
		t.Fatalf("lanes: %d", len(lanes))
	}
	clockOf := func(cs []Change) []Change {
		var out []Change
		for _, c := range cs {
			if c.Net == d.Clk {
				out = append(out, c)
			}
		}
		return out
	}
	c0 := clockOf(lanes[0])
	differ := false
	for l := 1; l < 4; l++ {
		cl := clockOf(lanes[l])
		if len(cl) != len(c0) {
			t.Fatalf("lane %d clock schedule diverged: %d vs %d events", l, len(cl), len(c0))
		}
		for i := range c0 {
			if cl[i] != c0[i] {
				t.Fatalf("lane %d clock event %d: %+v vs %+v", l, i, cl[i], c0[i])
			}
		}
		if len(lanes[l]) != len(lanes[0]) {
			differ = true // different toggle counts ⇒ different data streams
		}
		for i := range lanes[l] {
			if i < len(lanes[0]) && lanes[l][i] != lanes[0][i] {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Error("all lanes produced identical stimulus; seeds not independent")
	}
}

func TestActivityFactorMonotone(t *testing.T) {
	d, err := Build(Spec{Name: "x", Seed: 5, CombGates: 60, FFs: 8,
		Depth: 3, DataInputs: 10, Outputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	count := func(af float64) int {
		return len(Stimuli(d, StimSpec{Cycles: 40, ActivityFactor: af, Seed: 1}))
	}
	if !(count(0.1) < count(0.5) && count(0.5) < count(0.9)) {
		t.Errorf("activity factor not monotone: %d %d %d", count(0.1), count(0.5), count(0.9))
	}
}

func TestPresets(t *testing.T) {
	if len(Presets) != 7 {
		t.Fatalf("expected the 7 Table I presets, got %d", len(Presets))
	}
	names := map[string]bool{}
	for _, p := range Presets {
		names[p.Name] = true
	}
	for _, want := range []string{"aes128", "aes256", "jpeg_encoder", "blabla", "picorv32a", "netcard", "leon2"} {
		if !names[want] {
			t.Errorf("missing preset %s", want)
		}
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset should error")
	}
	p, err := PresetByName("picorv32a")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(p.Spec(0.02, 1))
	if err != nil {
		t.Fatal(err)
	}
	got := len(d.Netlist.Instances)
	want := int(float64(p.FullCells) * 0.02)
	if got < want*7/10 || got > want*13/10 {
		t.Errorf("scaled instance count %d, target %d", got, want)
	}
}

func TestPresetCellCountsSorted(t *testing.T) {
	// Sanity: Table I numbers increase from blabla to leon2 when sorted.
	counts := make([]int, 0)
	for _, p := range Presets {
		counts = append(counts, p.FullCells)
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	if sorted[len(sorted)-1] != 1616370 {
		t.Errorf("leon2 should be the largest, got max %d", sorted[len(sorted)-1])
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{}); err == nil {
		t.Error("empty spec should fail")
	}
}

func TestLibrarySourceCompiles(t *testing.T) {
	src := LibrarySource(60, 3)
	lib, err := liberty.Parse(src)
	if err != nil {
		t.Fatalf("generated library does not parse: %v", err)
	}
	if len(lib.Cells) != 60 {
		t.Fatalf("cells: %d", len(lib.Cells))
	}
	seq := 0
	for _, c := range lib.Cells {
		if c.IsSequential() {
			seq++
		}
	}
	if seq == 0 {
		t.Error("synthetic library should contain sequential cells")
	}
	// Deterministic per seed.
	if LibrarySource(60, 3) != src {
		t.Error("LibrarySource must be deterministic")
	}
	if LibrarySource(60, 4) == src {
		t.Error("different seeds should differ")
	}
}
