package gen

import (
	"fmt"
	"sort"
)

// Preset describes one benchmark family from the paper's Table I. FullCells
// is the original design's cell count; building at Scale s targets
// approximately FullCells*s instances with the family's structural flavour.
type Preset struct {
	Name      string
	Process   string // the PDK the paper mapped the design to
	FullCells int    // Table I "#Cells"
	FullNets  int    // Table I "#Nets"
	FullPins  int    // Table I "#Pins"

	seqRatio   float64 // sequential elements per cell
	scanRatio  float64 // share of sequential cells on scan chains
	latchRatio float64 // share of sequential cells that are latches
	depth      int     // combinational depth
	clockGates int     // ICG count at full scale
	periodPS   int64
	period2PS  int64 // second clock domain (0 = single clock)
}

// Presets mirrors Table I of the paper.
var Presets = []Preset{
	{Name: "aes128", Process: "130nm", FullCells: 138457, FullNets: 148997, FullPins: 211045,
		seqRatio: 0.06, scanRatio: 0.15, latchRatio: 0.02, depth: 14, clockGates: 40, periodPS: 4000},
	{Name: "aes256", Process: "130nm", FullCells: 189262, FullNets: 207414, FullPins: 290955,
		seqRatio: 0.06, scanRatio: 0.15, latchRatio: 0.02, depth: 16, clockGates: 56, periodPS: 4000},
	{Name: "jpeg_encoder", Process: "130nm", FullCells: 167960, FullNets: 176737, FullPins: 238216,
		seqRatio: 0.10, scanRatio: 0.10, latchRatio: 0.03, depth: 22, clockGates: 48, periodPS: 5000},
	{Name: "blabla", Process: "130nm", FullCells: 35689, FullNets: 39853, FullPins: 55568,
		seqRatio: 0.12, scanRatio: 0.10, latchRatio: 0.02, depth: 12, clockGates: 12, periodPS: 3000},
	{Name: "picorv32a", Process: "130nm", FullCells: 40208, FullNets: 43047, FullPins: 58676,
		seqRatio: 0.16, scanRatio: 0.25, latchRatio: 0.02, depth: 15, clockGates: 16, periodPS: 3500},
	{Name: "netcard", Process: "14nm", FullCells: 1496720, FullNets: 1498555, FullPins: 3901343,
		seqRatio: 0.25, scanRatio: 0.20, latchRatio: 0.04, depth: 18, clockGates: 400, periodPS: 1500, period2PS: 2740},
	{Name: "leon2", Process: "14nm", FullCells: 1616370, FullNets: 1616984, FullPins: 4178874,
		seqRatio: 0.22, scanRatio: 0.25, latchRatio: 0.03, depth: 20, clockGates: 420, periodPS: 1500, period2PS: 2260},
}

// PresetByName returns the preset with the given name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, len(Presets))
	for _, p := range Presets {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, names)
}

// Spec instantiates the preset at the given scale (1.0 = the paper's size).
// Every sequential driver adds one buffer instance, so the structural counts
// are solved to make total instances approximate FullCells*scale.
func (p Preset) Spec(scale float64, seed int64) Spec {
	target := float64(p.FullCells) * scale
	if target < 60 {
		target = 60
	}
	// total ~= comb + seq + seqBuffers(=seq) + clock tree overhead
	seq := target * p.seqRatio
	comb := target - 2*seq
	if comb < 20 {
		comb = 20
	}
	scan := seq * p.scanRatio
	latch := seq * p.latchRatio
	ffs := seq - scan - latch
	cg := int(float64(p.clockGates)*scale + 0.5)
	if cg < 1 {
		cg = 1
	}
	ins := int(target/200) + 8
	outs := ins / 2
	if outs < 2 {
		outs = 2
	}
	return Spec{
		Name:           p.Name,
		Seed:           seed,
		CombGates:      int(comb),
		FFs:            int(ffs),
		Latches:        int(latch),
		ScanFFs:        int(scan),
		ClockGates:     cg,
		Depth:          p.depth,
		DataInputs:     ins,
		Outputs:        outs,
		ClockPeriodPS:  p.periodPS,
		ClockPeriod2PS: p.period2PS,
	}
}
