// Package gen generates synthetic gate-level benchmarks, stimuli and delay
// annotations. It replaces the paper's benchmark suite (TAU'15 designs and
// million-gate netlists retargeted to proprietary 130nm/14nm PDKs with
// OpenSTA delays — none of which are redistributable) with parameterized
// circuits that preserve what matters to the simulation algorithms:
//
//   - cyclic sequential structure (FF feedback through combinational cones),
//   - the general sequential elements the paper targets: gated clocks, scan
//     chains, latches, asynchronous resets, enable flip-flops,
//   - realistic depth/fanout profiles and per-arc delay spread,
//   - stimuli with controlled activity factors and scan injection (§IV-A).
//
// Generation is deterministic per seed.
package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
)

// Spec parameterizes one synthetic design.
type Spec struct {
	Name string
	Seed int64

	// Structure.
	CombGates  int // combinational gate count
	FFs        int // plain/reset/enable flip-flops
	Latches    int // transparent latches (timing borrowing)
	ScanFFs    int // scan flip-flops, linked into chains
	ClockGates int // integrated clock-gating cells
	Depth      int // target combinational depth (layers)
	DataInputs int // primary data inputs
	Outputs    int // primary outputs

	// Timing.
	ClockPeriodPS int64 // nominal clock period (for stimulus generation)
	// ClockPeriod2PS enables a second, asynchronous clock domain with the
	// given period (0 = single-clock design). A slice of the FFs moves into
	// the second domain, and 2-FF synchronizers guard the crossings back.
	ClockPeriod2PS int64
}

// Design bundles the generated netlist with the names the stimulus
// generator needs.
type Design struct {
	Spec    Spec
	Netlist *netlist.Netlist

	Clk    netlist.NetID
	Clk2   netlist.NetID // second clock domain (-1 when disabled)
	RstN   netlist.NetID
	ScanEn netlist.NetID
	Data   []netlist.NetID // primary data inputs
	Outs   []netlist.NetID // primary outputs
}

// Build generates the design. The same spec always yields the same netlist.
func Build(spec Spec) (*Design, error) {
	if spec.CombGates < 1 || spec.Depth < 1 || spec.DataInputs < 1 {
		return nil, fmt.Errorf("gen: spec needs at least one gate, layer and input")
	}
	if spec.ClockPeriodPS <= 0 {
		spec.ClockPeriodPS = 1000
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	lib := liberty.MustBuiltin()
	nl := netlist.New(spec.Name, lib)
	d := &Design{Spec: spec, Netlist: nl}

	// Primary inputs.
	d.Clk = nl.AddNet("clk")
	d.RstN = nl.AddNet("rst_n")
	d.ScanEn = nl.AddNet("scan_en")
	d.Clk2 = -1
	pins := []netlist.NetID{d.Clk, d.RstN, d.ScanEn}
	if spec.ClockPeriod2PS > 0 {
		d.Clk2 = nl.AddNet("clk2")
		pins = append(pins, d.Clk2)
	}
	for _, p := range pins {
		if err := nl.MarkInput(p); err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.DataInputs; i++ {
		nid := nl.AddNet(fmt.Sprintf("in%d", i))
		if err := nl.MarkInput(nid); err != nil {
			return nil, err
		}
		d.Data = append(d.Data, nid)
	}

	b := &builder{nl: nl, rng: rng}

	// Clock tree: a couple of buffer stages plus gated branches.
	rootClk := b.inst("CLKBUF", "clkbuf_root", "A", net(nl, d.Clk))
	gatedClks := make([]string, 0, spec.ClockGates)
	for i := 0; i < spec.ClockGates; i++ {
		// The gate control net is created now and driven from the
		// combinational cloud after it exists (state-dependent gating).
		ctl := fmt.Sprintf("cg_ctl%d", i)
		gclk := fmt.Sprintf("cg%d_gclk", i)
		b.instName(fmt.Sprintf("cg%d", i), "CLKGATE", "CLK", rootClk, "GATE", ctl, "GCLK", gclk)
		gatedClks = append(gatedClks, gclk)
	}

	// State elements. Their Q nets are sources for the combinational cloud;
	// their D nets are sinks produced by the cloud.
	type seqCell struct {
		dNet string // net the cloud must drive (for FFs/latches)
		qNet string
	}
	var seqs []seqCell
	clk2Root := ""
	if spec.ClockPeriod2PS > 0 {
		clk2Root = b.inst("CLKBUF", "clkbuf2_root", "A", "clk2")
	}
	pickClk := func(i int) string {
		if clk2Root != "" && i%5 == 2 { // a fifth of FFs live in domain 2
			return clk2Root
		}
		if len(gatedClks) > 0 && i%4 == 0 { // a quarter of FFs are gated
			return gatedClks[rng.Intn(len(gatedClks))]
		}
		return rootClk
	}

	for i := 0; i < spec.FFs; i++ {
		dn := fmt.Sprintf("ffd%d", i)
		qn := fmt.Sprintf("ffq%d", i)
		switch i % 3 {
		case 0: // async reset FF: gives the design a determined start state
			b.instName(fmt.Sprintf("ff%d", i), "DFF_PR",
				"CLK", pickClk(i), "D", dn, "RESET_B", "rst_n", "Q", qn)
		case 1:
			b.instName(fmt.Sprintf("ff%d", i), "DFF_P",
				"CLK", pickClk(i), "D", dn, "Q", qn)
		default:
			if i%6 == 5 {
				// JK flip-flop (statetable cell): J from the cloud, K from
				// the reset (hold while in reset, then J/hold mix).
				b.instName(fmt.Sprintf("ff%d", i), "JKFF",
					"CK", pickClk(i), "J", dn, "K", "rst_n", "Q", qn)
				seqs = append(seqs, seqCell{dNet: dn, qNet: qn})
				continue
			}
			en := fmt.Sprintf("ffen%d", i)
			b.instName(fmt.Sprintf("ff%d", i), "DFFE_P",
				"CLK", pickClk(i), "D", dn, "EN", en, "Q", qn)
			b.pendingEnables = append(b.pendingEnables, en)
		}
		seqs = append(seqs, seqCell{dNet: dn, qNet: qn})
	}

	// Scan chains: SDFFs chained SI <- previous Q; functional D from cloud.
	prevScanQ := "scan_en" // head of chain shifts in the enable (just a bit source)
	for i := 0; i < spec.ScanFFs; i++ {
		dn := fmt.Sprintf("sfd%d", i)
		qn := fmt.Sprintf("sfq%d", i)
		b.instName(fmt.Sprintf("sff%d", i), "SDFF_P",
			"CLK", rootClk, "D", dn, "SI", prevScanQ, "SE", "scan_en", "Q", qn)
		prevScanQ = qn
		seqs = append(seqs, seqCell{dNet: dn, qNet: qn})
	}

	// Clock-domain crossings back into domain 1 are guarded by classic
	// 2-FF synchronizers; their outputs join the cloud sources.
	if clk2Root != "" {
		for i := 0; i < 2; i++ {
			src := fmt.Sprintf("ffq%d", 2+5*i) // a domain-2 FF output (i%5==2)
			if 2+5*i >= spec.FFs {
				break
			}
			meta := fmt.Sprintf("sync%d_meta", i)
			out := fmt.Sprintf("sync%d_q", i)
			b.instName(fmt.Sprintf("sync%d_a", i), "DFF_P", "CLK", rootClk, "D", src, "Q", meta)
			b.instName(fmt.Sprintf("sync%d_b", i), "DFF_P", "CLK", rootClk, "D", meta, "Q", out)
			seqs = append(seqs, seqCell{dNet: "", qNet: out})
		}
	}

	// Latches for timing borrowing: transparent on the low clock phase.
	clkInv := b.inst("INV", "clk_inv", "A", rootClk)
	for i := 0; i < spec.Latches; i++ {
		dn := fmt.Sprintf("lad%d", i)
		qn := fmt.Sprintf("laq%d", i)
		b.instName(fmt.Sprintf("lat%d", i), "DLATCH_H",
			"GATE", clkInv, "D", dn, "Q", qn)
		seqs = append(seqs, seqCell{dNet: dn, qNet: qn})
	}

	// Combinational cloud: `Depth` layers of random gates. Layer 0 draws
	// from PIs and sequential outputs; later layers also from earlier layers.
	sources := make([]string, 0, len(d.Data)+len(seqs))
	for _, nid := range d.Data {
		sources = append(sources, nl.Nets[nid].Name)
	}
	for _, s := range seqs {
		sources = append(sources, s.qNet)
	}
	layers := make([][]string, spec.Depth)
	perLayer := spec.CombGates / spec.Depth
	if perLayer == 0 {
		perLayer = 1
	}
	gateID := 0
	for layer := 0; layer < spec.Depth; layer++ {
		count := perLayer
		if layer == spec.Depth-1 {
			count = spec.CombGates - perLayer*(spec.Depth-1)
			if count <= 0 {
				count = perLayer
			}
		}
		pool := sources
		if layer > 0 {
			// Mix: mostly previous layer, some long arcs from sources.
			pool = append(append([]string{}, layers[layer-1]...), sources...)
		}
		outs := make([]string, 0, count)
		for g := 0; g < count; g++ {
			pick := func() string { return pool[rng.Intn(len(pool))] }
			name := fmt.Sprintf("g%d", gateID)
			gateID++
			var out string
			switch rng.Intn(13) {
			case 0:
				out = b.inst("INV", name, "A", pick())
			case 1:
				out = b.inst("NAND2", name, "A", pick(), "B", pick())
			case 2:
				out = b.inst("NOR2", name, "A", pick(), "B", pick())
			case 3:
				out = b.inst("AND2", name, "A", pick(), "B", pick())
			case 4:
				out = b.inst("OR2", name, "A", pick(), "B", pick())
			case 5:
				out = b.inst("XOR2", name, "A", pick(), "B", pick())
			case 6:
				out = b.inst("AOI21", name, "A1", pick(), "A2", pick(), "B", pick())
			case 7:
				out = b.inst("OAI21", name, "A1", pick(), "A2", pick(), "B", pick())
			case 8:
				out = b.inst("MUX2", name, "A", pick(), "B", pick(), "S", pick())
			case 9:
				out = b.inst("NAND4", name, "A", pick(), "B", pick(), "C", pick(), "D", pick())
			case 10:
				out = b.inst("AOI211", name, "A1", pick(), "A2", pick(), "B", pick(), "C", pick())
			case 11:
				out = b.inst("OR3", name, "A", pick(), "B", pick(), "C", pick())
			default:
				out = b.inst("XNOR2", name, "A", pick(), "B", pick())
			}
			outs = append(outs, out)
		}
		layers[layer] = outs
	}
	if b.err != nil {
		return nil, b.err
	}
	lastLayer := layers[spec.Depth-1]

	// Wire the cloud back into sequential inputs, clock-gate controls and
	// enables: the feedback loops the paper is about.
	pickBack := func() string { return lastLayer[rng.Intn(len(lastLayer))] }
	for _, s := range seqs {
		if s.dNet == "" {
			continue // synchronizer stages have fixed D wiring
		}
		b.instName("drv_"+s.dNet, "BUF", "A", pickBack(), "Y", s.dNet)
	}
	for i := 0; i < spec.ClockGates; i++ {
		b.instName(fmt.Sprintf("drv_cg_ctl%d", i), "BUF", "A", pickBack(), "Y", fmt.Sprintf("cg_ctl%d", i))
	}
	for _, en := range b.pendingEnables {
		b.instName("drv_"+en, "BUF", "A", pickBack(), "Y", en)
	}

	// Primary outputs (distinct nets).
	seen := make(map[netlist.NetID]bool)
	for i := 0; len(d.Outs) < spec.Outputs && i < spec.Outputs*10; i++ {
		src := pickBack()
		if i < len(seqs) && i%2 == 1 {
			src = seqs[i].qNet
		}
		nid, _ := nl.Net(src)
		if seen[nid] {
			continue
		}
		seen[nid] = true
		nl.MarkOutput(nid)
		d.Outs = append(d.Outs, nid)
	}
	if b.err != nil {
		return nil, b.err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func net(nl *netlist.Netlist, id netlist.NetID) string { return nl.Nets[id].Name }

// builder accumulates instances and the first error.
type builder struct {
	nl             *netlist.Netlist
	rng            *rand.Rand
	err            error
	pendingEnables []string
}

// inst places a cell whose single output net is auto-named "<name>_Y" and
// returned. Pin arguments alternate name, net.
func (b *builder) inst(cellType, name string, pins ...string) string {
	out := name + "_Y"
	cell := b.nl.Lib.Cells[cellType]
	if cell == nil {
		if b.err == nil {
			b.err = fmt.Errorf("gen: unknown cell %s", cellType)
		}
		return out
	}
	all := append(append([]string{}, pins...), cell.Outputs[0], out)
	b.instName(name, cellType, all...)
	return out
}

// instName places a cell with fully explicit pin connections.
func (b *builder) instName(name, cellType string, pins ...string) string {
	if b.err != nil {
		return name
	}
	conns := make(map[string]string, len(pins)/2)
	for i := 0; i+1 < len(pins); i += 2 {
		conns[pins[i]] = pins[i+1]
	}
	if _, err := b.nl.AddInstance(name, cellType, conns); err != nil {
		b.err = err
	}
	return name
}

// Delays builds the toy-STA delay annotation: per-arc delays derived from
// cell drive strength (area) and fanout load, with deterministic jitter.
// All delays are >= 1 ps. This stands in for the paper's OpenSTA+SDF flow.
func Delays(d *Design, seed int64) *sdf.Delays {
	nl := d.Netlist
	rng := rand.New(rand.NewSource(seed ^ 0x5f3759df))
	file := &sdf.File{Design: nl.Name, Timescale: 1}
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		cell := sdf.Cell{CellType: inst.Type.Name, Instance: inst.Name}
		base := int64(20 + inst.Type.Area*12)
		for o, outPin := range inst.Type.Outputs {
			nid := inst.OutNets[o]
			if nid < 0 {
				continue
			}
			load := int64(len(nl.Nets[nid].Fanout)) * 6
			for in, inPin := range inst.Type.Inputs {
				rise := base + load + int64(rng.Intn(30)) + int64(in*3)
				fall := rise - 5 + int64(rng.Intn(11))
				if rise < 1 {
					rise = 1
				}
				if fall < 1 {
					fall = 1
				}
				cell.Paths = append(cell.Paths, sdf.IOPath{
					From: inPin, To: outPin,
					Delay: sdf.Delay{Rise: rise, Fall: fall},
				})
			}
		}
		if len(cell.Paths) > 0 {
			file.Cells = append(file.Cells, cell)
		}
	}
	delays, err := sdf.Apply(file, nl, sdf.Delay{Rise: 1, Fall: 1})
	if err != nil {
		// Impossible by construction; fall back to uniform rather than panic.
		return sdf.Uniform(nl, 10)
	}
	return delays
}

// SDFText renders the toy-STA annotation as an SDF file.
func SDFText(d *Design, seed int64) string {
	return sdf.Write(sdf.FromNetlist(d.Netlist, Delays(d, seed)))
}

// Change is one stimulus event.
type Change struct {
	Net  netlist.NetID
	Time int64
	Val  logic.Value
}

// StimSpec parameterizes stimulus generation.
type StimSpec struct {
	Cycles         int
	ActivityFactor float64 // fraction of data inputs toggled per cycle
	Seed           int64
	ResetCycles    int // cycles to hold rst_n low at the start (default 2)
	ScanBurst      int // every ScanBurst cycles, raise scan_en for one cycle
}

// Stimuli generates the input trace: a free-running clock, an initial
// reset pulse, random data toggles at the given activity factor (injected
// shortly after each rising edge), and periodic scan-enable bursts that
// shift the scan chains (§IV-A: "insert random signals to the scan chain
// FFs to mimic the test scenario"). Events are strictly increasing per net
// and the returned trace is globally time-sorted (stable, so per-net order
// is preserved): consumers can inject or slice it directly without
// re-sorting.
func Stimuli(d *Design, spec StimSpec) []Change {
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x9e3779b9))
	period := d.Spec.ClockPeriodPS
	if spec.ResetCycles == 0 {
		spec.ResetCycles = 2
	}
	var out []Change
	add := func(nid netlist.NetID, t int64, v logic.Value) {
		out = append(out, Change{Net: nid, Time: t, Val: v})
	}

	// Initial values at t=0.
	add(d.Clk, 0, logic.V0)
	if d.Clk2 >= 0 {
		add(d.Clk2, 0, logic.V0)
	}
	add(d.RstN, 0, logic.V0)
	add(d.ScanEn, 0, logic.V0)
	dataVal := make([]logic.Value, len(d.Data))
	for i, nid := range d.Data {
		dataVal[i] = logic.Value(rng.Intn(2))
		add(nid, 0, dataVal[i])
	}

	// Second clock domain: free-running at its own (asynchronous) period.
	if d.Clk2 >= 0 && d.Spec.ClockPeriod2PS > 0 {
		p2 := d.Spec.ClockPeriod2PS
		end := int64(spec.Cycles) * period
		for t := p2 / 2; t < end; t += p2 {
			add(d.Clk2, t, logic.V1)
			if t+p2/2 < end {
				add(d.Clk2, t+p2/2, logic.V0)
			}
		}
	}

	scanOn := false
	for c := 0; c < spec.Cycles; c++ {
		t0 := int64(c)*period + period/2 // rising edge of cycle c
		add(d.Clk, t0, logic.V1)
		add(d.Clk, t0+period/2, logic.V0)
		if c == spec.ResetCycles {
			add(d.RstN, t0+period/4, logic.V1)
		}
		if spec.ScanBurst > 0 && c > spec.ResetCycles {
			if c%spec.ScanBurst == 0 && !scanOn {
				add(d.ScanEn, t0+period/4, logic.V1)
				scanOn = true
			} else if scanOn {
				add(d.ScanEn, t0+period/4, logic.V0)
				scanOn = false
			}
		}
		// Data toggles shortly after the edge.
		for i, nid := range d.Data {
			if rng.Float64() < spec.ActivityFactor {
				dataVal[i] = logic.Not(dataVal[i])
				add(nid, t0+period/8+int64(i%7), dataVal[i])
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out
}

// LaneStimuli generates one stimulus trace per lane in the pattern-set
// model: every lane shares the full schedule — clock, reset, scan, and
// which data inputs toggle at which times (selection drawn once from
// spec.Seed) — while the data values diverge through per-lane initial
// vectors (lane l seeds its values with Seed+l). Each cycle thus applies
// one input vector per lane at identical change points, which is the
// workload the lane engine is built for: a lane-mode run replays one
// shared schedule instead of a per-lane union. The result feeds
// sim.MergeLaneChanges for a lane-mode run, or a scalar engine one lane at
// a time for the reference.
func LaneStimuli(d *Design, spec StimSpec, lanes int) [][]Change {
	selRng := rand.New(rand.NewSource(spec.Seed ^ 0x9e3779b9))
	period := d.Spec.ClockPeriodPS
	if spec.ResetCycles == 0 {
		spec.ResetCycles = 2
	}
	out := make([][]Change, lanes)
	// addAll emits a shared-schedule event carrying the same value in every
	// lane (clock, reset, scan enable).
	addAll := func(nid netlist.NetID, t int64, v logic.Value) {
		for l := range out {
			out[l] = append(out[l], Change{Net: nid, Time: t, Val: v})
		}
	}

	// Initial values at t=0: control nets shared, data vectors per lane.
	addAll(d.Clk, 0, logic.V0)
	if d.Clk2 >= 0 {
		addAll(d.Clk2, 0, logic.V0)
	}
	addAll(d.RstN, 0, logic.V0)
	addAll(d.ScanEn, 0, logic.V0)
	dataVal := make([][]logic.Value, lanes)
	for l := range dataVal {
		vr := rand.New(rand.NewSource((spec.Seed + int64(l)) ^ 0x51c64e6d))
		dataVal[l] = make([]logic.Value, len(d.Data))
		for i, nid := range d.Data {
			dataVal[l][i] = logic.Value(vr.Intn(2))
			out[l] = append(out[l], Change{Net: nid, Time: 0, Val: dataVal[l][i]})
		}
	}

	if d.Clk2 >= 0 && d.Spec.ClockPeriod2PS > 0 {
		p2 := d.Spec.ClockPeriod2PS
		end := int64(spec.Cycles) * period
		for t := p2 / 2; t < end; t += p2 {
			addAll(d.Clk2, t, logic.V1)
			if t+p2/2 < end {
				addAll(d.Clk2, t+p2/2, logic.V0)
			}
		}
	}

	scanOn := false
	for c := 0; c < spec.Cycles; c++ {
		t0 := int64(c)*period + period/2
		addAll(d.Clk, t0, logic.V1)
		addAll(d.Clk, t0+period/2, logic.V0)
		if c == spec.ResetCycles {
			addAll(d.RstN, t0+period/4, logic.V1)
		}
		if spec.ScanBurst > 0 && c > spec.ResetCycles {
			if c%spec.ScanBurst == 0 && !scanOn {
				addAll(d.ScanEn, t0+period/4, logic.V1)
				scanOn = true
			} else if scanOn {
				addAll(d.ScanEn, t0+period/4, logic.V0)
				scanOn = false
			}
		}
		// Shared toggle selection; a selected input flips in every lane, so
		// the per-net change points align exactly and values stay divergent.
		for i, nid := range d.Data {
			if selRng.Float64() < spec.ActivityFactor {
				t := t0 + period/8 + int64(i%7)
				for l := range out {
					dataVal[l][i] = logic.Not(dataVal[l][i])
					out[l] = append(out[l], Change{Net: nid, Time: t, Val: dataVal[l][i]})
				}
			}
		}
	}
	for l := range out {
		cs := out[l]
		sort.SliceStable(cs, func(a, b int) bool { return cs[a].Time < cs[b].Time })
	}
	return out
}

// EndTime returns a horizon past the last stimulus event plus a full cycle
// of settling room.
func EndTime(d *Design, spec StimSpec) int64 {
	return (int64(spec.Cycles) + 2) * d.Spec.ClockPeriodPS
}

// LibrarySource generates a Liberty library with approximately nCells cells:
// randomized combinational functions over 1-4 inputs plus flip-flop and
// latch variants. It supports the paper's library-compilation claim
// ("compilation of a large cell library with 1000 cells takes only 1
// second") with a library of realistic shape.
func LibrarySource(nCells int, seed int64) string {
	rng := rand.New(rand.NewSource(seed ^ 0x1234567))
	var b strings.Builder
	b.WriteString("library (gatesim_synth) {\n")
	vars := []string{"A", "B", "C", "D"}
	var expr func(depth, nvars int) string
	expr = func(depth, nvars int) string {
		if depth == 0 || rng.Intn(3) == 0 {
			return vars[rng.Intn(nvars)]
		}
		switch rng.Intn(4) {
		case 0:
			return "(" + expr(depth-1, nvars) + " & " + expr(depth-1, nvars) + ")"
		case 1:
			return "(" + expr(depth-1, nvars) + " | " + expr(depth-1, nvars) + ")"
		case 2:
			return "(" + expr(depth-1, nvars) + " ^ " + expr(depth-1, nvars) + ")"
		default:
			return "!(" + expr(depth-1, nvars) + ")"
		}
	}
	for i := 0; i < nCells; i++ {
		switch {
		case i%5 == 4: // sequential variants
			if i%2 == 0 {
				fmt.Fprintf(&b, `  cell (SYNFF_%d) {
    area : %0.2f;
    ff (IQ, IQN) { next_state : "D"; clocked_on : "CLK"; clear : "!RB"; }
    pin (CLK) { direction : input; clock : true; }
    pin (D)  { direction : input; }
    pin (RB) { direction : input; }
    pin (Q)  { direction : output; function : "IQ"; }
  }
`, i, 4.0+float64(i%7))
			} else {
				fmt.Fprintf(&b, `  cell (SYNLAT_%d) {
    area : %0.2f;
    latch (IQ, IQN) { data_in : "D"; enable : "G"; }
    pin (G) { direction : input; }
    pin (D) { direction : input; }
    pin (Q) { direction : output; function : "IQ"; }
  }
`, i, 3.0+float64(i%5))
			}
		default:
			nv := 1 + rng.Intn(4)
			fmt.Fprintf(&b, "  cell (SYNC_%d) {\n    area : %0.2f;\n", i, 1.0+float64(i%9)/4)
			for v := 0; v < nv; v++ {
				fmt.Fprintf(&b, "    pin (%s) { direction : input; capacitance : 1.0; }\n", vars[v])
			}
			fmt.Fprintf(&b, "    pin (Y) { direction : output; function : \"%s\"; }\n  }\n", expr(2+rng.Intn(2), nv))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// BuildCounter generates an n-bit synchronous binary up-counter with
// asynchronous reset: bit i toggles when all lower bits are 1
// (d[i] = q[i] XOR carry[i-1], carry[i] = carry[i-1] AND q[i]).
// Unlike the random benchmark circuits, its exact cycle-by-cycle behaviour
// is computable, which makes it the repository's end-to-end functional
// oracle: after k clock cycles the register must read k (mod 2^n).
func BuildCounter(bits int) (*Design, error) {
	if bits < 1 || bits > 62 {
		return nil, fmt.Errorf("gen: counter bits must be in [1,62]")
	}
	lib := liberty.MustBuiltin()
	nl := netlist.New(fmt.Sprintf("counter%d", bits), lib)
	d := &Design{Spec: Spec{Name: nl.Name, ClockPeriodPS: 2000}, Netlist: nl}
	d.Clk = nl.AddNet("clk")
	d.RstN = nl.AddNet("rst_n")
	for _, p := range []netlist.NetID{d.Clk, d.RstN} {
		if err := nl.MarkInput(p); err != nil {
			return nil, err
		}
	}
	b := &builder{nl: nl}
	carry := "" // carry into bit i; bit 0 always toggles
	for i := 0; i < bits; i++ {
		q := fmt.Sprintf("q%d", i)
		dn := fmt.Sprintf("d%d", i)
		if i == 0 {
			// d0 = !q0
			b.instName("tgl0", "INV", "A", q, "Y", dn)
		} else {
			b.instName(fmt.Sprintf("tgl%d", i), "XOR2", "A", q, "B", carry, "Y", dn)
		}
		b.instName(fmt.Sprintf("ff%d", i), "DFF_PR",
			"CLK", "clk", "D", dn, "RESET_B", "rst_n", "Q", q)
		// carry[i] = carry[i-1] & q[i] (carry[0] = q0)
		switch i {
		case 0:
			carry = q
		default:
			nc := fmt.Sprintf("c%d", i)
			b.instName(fmt.Sprintf("cand%d", i), "AND2", "A", carry, "B", q, "Y", nc)
			carry = nc
		}
		nid, _ := nl.Net(q)
		nl.MarkOutput(nid)
		d.Outs = append(d.Outs, nid)
	}
	if b.err != nil {
		return nil, b.err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// CounterStimuli produces the clock/reset trace for a counter run: reset
// asserted for the first cycle, then `cycles` rising edges.
func CounterStimuli(d *Design, cycles int) []Change {
	period := d.Spec.ClockPeriodPS
	var out []Change
	out = append(out,
		Change{Net: d.Clk, Time: 0, Val: logic.V0},
		Change{Net: d.RstN, Time: 0, Val: logic.V0},
		Change{Net: d.RstN, Time: period / 4, Val: logic.V1},
	)
	for c := 0; c < cycles; c++ {
		t0 := int64(c)*period + period/2
		out = append(out,
			Change{Net: d.Clk, Time: t0, Val: logic.V1},
			Change{Net: d.Clk, Time: t0 + period/2, Val: logic.V0},
		)
	}
	return out
}
