package netlist

// Fuzz targets for the structural-Verilog parsers: arbitrary input must
// produce either a netlist or an error — never a panic, and never an
// unbounded allocation (vector ranges are width-capped). scripts/check.sh
// runs these as a short smoke stage; `make fuzz` runs them longer.

import (
	"testing"

	"gatesim/internal/liberty"
)

const fuzzHierSrc = `
module ha (input a, input b, output s, output c);
  XOR2 x (.A(a), .B(b), .Y(s));
  AND2 g (.A(a), .B(b), .Y(c));
endmodule
module top (input x, input y, output sum, output cout);
  ha h0 (.a(x), .b(y), .s(sum), .c(cout));
endmodule
`

func FuzzParseVerilog(f *testing.F) {
	f.Add(sampleVerilog)
	f.Add("module m (a, b, y);\n input a, b;\n output y;\n OR2 g (.A(a), .B(b), .Y(y));\nendmodule")
	f.Add(`module m (input [3:0] d, output q); INV u (.A(d[2]), .Y(q)); endmodule`)
	f.Add(`module m (input a); wire \esc.aped ; BUF u (.A(a), .Y(\esc.aped )); endmodule`)
	f.Add(`module m (input [1:0);`)
	f.Add(`module`)
	lib := liberty.MustBuiltin()
	f.Fuzz(func(t *testing.T, src string) {
		if nl, err := ParseVerilog(src, lib); err == nil {
			if nl == nil {
				t.Fatal("nil netlist without error")
			}
			if err := nl.Validate(); err != nil {
				t.Errorf("accepted netlist fails validation: %v", err)
			}
		}
	})
}

func FuzzParseVerilogHierarchy(f *testing.F) {
	f.Add(fuzzHierSrc)
	f.Add("module leaf (input a, output y);\n INV i (.A(a), .Y(y));\nendmodule\nmodule top (input a, output y);\n leaf l (.a(a), .y(y));\nendmodule")
	f.Add(`module a (input x, output y); a inner (.x(x), .y(y)); endmodule`)
	f.Add(`module m (input a, output y); INV i (.A(a), .Y(y)); endmodule junk`)
	lib := liberty.MustBuiltin()
	f.Fuzz(func(t *testing.T, src string) {
		if nl, err := ParseVerilogHierarchy(src, lib, ""); err == nil {
			if nl == nil {
				t.Fatal("nil netlist without error")
			}
			if err := nl.Validate(); err != nil {
				t.Errorf("accepted netlist fails validation: %v", err)
			}
		}
	})
}
