package netlist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gatesim/internal/liberty"
)

// ParseVerilog parses a flattened structural-Verilog module against the
// given cell library. Supported constructs:
//
//   - one module with an ANSI (`module m(input a, output [3:0] y);`) or
//     non-ANSI (`module m(a, y); input a; output [3:0] y;`) header;
//   - `wire`, `input`, `output` declarations, scalar or vector ([msb:lsb]);
//   - instantiations with named port connections:
//     `NAND2 u1 (.A(n1), .B(bus[2]), .Y(n3));`
//
// Vector declarations expand into scalar nets named name[i]. Behavioural
// constructs (assign, always, expressions in port connections) are rejected:
// this is a gate-level netlist parser, not a Verilog front end.
func ParseVerilog(src string, lib *liberty.Library) (*Netlist, error) {
	toks, err := vlogTokens(src)
	if err != nil {
		return nil, err
	}
	p := &vlogParser{toks: toks, lib: lib}
	return p.parseModule()
}

type vlogToken struct {
	text string
	line int
}

func vlogTokens(src string) ([]vlogToken, error) {
	var toks []vlogToken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			j := strings.Index(src[i+2:], "*/")
			if j < 0 {
				return nil, fmt.Errorf("verilog: line %d: unterminated comment", line)
			}
			line += strings.Count(src[i:i+2+j+2], "\n")
			i += 2 + j + 2
		case c == '(' || c == ')' || c == ';' || c == ',' || c == '.' || c == '[' || c == ']' || c == ':':
			toks = append(toks, vlogToken{string(c), line})
			i++
		case c == '\\': // escaped identifier: up to whitespace
			j := i + 1
			for j < len(src) && src[j] != ' ' && src[j] != '\t' && src[j] != '\n' {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("verilog: line %d: empty escaped identifier", line)
			}
			toks = append(toks, vlogToken{src[i+1 : j], line})
			i = j
		case isVlogIdent(c) || (c >= '0' && c <= '9'):
			j := i
			for j < len(src) && (isVlogIdent(src[j]) || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			toks = append(toks, vlogToken{src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isVlogIdent(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

type vlogParser struct {
	toks []vlogToken
	pos  int
	lib  *liberty.Library
}

func (p *vlogParser) cur() vlogToken {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return vlogToken{"", -1}
}

func (p *vlogParser) errf(format string, args ...any) error {
	return fmt.Errorf("verilog: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *vlogParser) accept(text string) bool {
	if p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *vlogParser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %q", text, p.cur().text)
	}
	return nil
}

func (p *vlogParser) ident() (string, error) {
	t := p.cur()
	if t.line < 0 || t.text == "" || !isVlogIdent(t.text[0]) {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// maxVectorWidth bounds [msb:lsb] ranges so a malformed or hostile netlist
// cannot make expandVec allocate one net name per bit of an absurd bus.
const maxVectorWidth = 1 << 20

// parseRange parses an optional [msb:lsb] and returns (msb, lsb, present).
func (p *vlogParser) parseRange() (int, int, bool, error) {
	if !p.accept("[") {
		return 0, 0, false, nil
	}
	msb, err := strconv.Atoi(p.cur().text)
	if err != nil {
		return 0, 0, false, p.errf("bad vector bound %q", p.cur().text)
	}
	p.pos++
	if err := p.expect(":"); err != nil {
		return 0, 0, false, err
	}
	lsb, err := strconv.Atoi(p.cur().text)
	if err != nil {
		return 0, 0, false, p.errf("bad vector bound %q", p.cur().text)
	}
	p.pos++
	if err := p.expect("]"); err != nil {
		return 0, 0, false, err
	}
	width := msb - lsb
	if width < 0 {
		width = -width
	}
	if width >= maxVectorWidth {
		return 0, 0, false, p.errf("vector [%d:%d] exceeds %d bits", msb, lsb, maxVectorWidth)
	}
	return msb, lsb, true, nil
}

// netRef parses a net reference: name or name[idx].
func (p *vlogParser) netRef() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.accept("[") {
		idx := p.cur().text
		if _, err := strconv.Atoi(idx); err != nil {
			return "", p.errf("bad bit select %q", idx)
		}
		p.pos++
		if err := p.expect("]"); err != nil {
			return "", err
		}
		return name + "[" + idx + "]", nil
	}
	return name, nil
}

func expandVec(name string, msb, lsb int, vec bool) []string {
	if !vec {
		return []string{name}
	}
	lo, hi := lsb, msb
	if lo > hi {
		lo, hi = hi, lo
	}
	out := make([]string, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

func (p *vlogParser) parseModule() (*Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	modName, err := p.ident()
	if err != nil {
		return nil, err
	}
	nl := New(modName, p.lib)

	declare := func(dir string, nets []string) error {
		for _, name := range nets {
			id := nl.AddNet(name)
			switch dir {
			case "input":
				if err := nl.MarkInput(id); err != nil {
					return err
				}
			case "output":
				nl.MarkOutput(id)
			}
		}
		return nil
	}

	// Header port list.
	if p.accept("(") {
		for !p.accept(")") {
			if p.accept(",") {
				continue
			}
			dir := ""
			if t := p.cur().text; t == "input" || t == "output" {
				dir = t
				p.pos++
			}
			p.accept("wire") // `input wire [..] x` style
			msb, lsb, vec, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if dir != "" {
				if err := declare(dir, expandVec(name, msb, lsb, vec)); err != nil {
					return nil, err
				}
			}
			// Non-ANSI headers list bare names; directions come later.
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	for {
		t := p.cur()
		switch t.text {
		case "endmodule":
			p.pos++
			if err := nl.Validate(); err != nil {
				return nil, err
			}
			return nl, nil
		case "input", "output", "wire":
			p.pos++
			msb, lsb, vec, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			for {
				name, err := p.ident()
				if err != nil {
					return nil, err
				}
				if err := declare(t.text, expandVec(name, msb, lsb, vec)); err != nil {
					return nil, err
				}
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "assign", "always", "initial", "reg":
			return nil, p.errf("behavioural construct %q not supported in gate-level netlists", t.text)
		case "":
			return nil, p.errf("unexpected end of file, missing endmodule")
		default:
			// Cell instantiation: TYPE name ( .PIN(net), ... ) ;
			cellType := t.text
			p.pos++
			instName, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			conns := make(map[string]string)
			for !p.accept(")") {
				if p.accept(",") {
					continue
				}
				if err := p.expect("."); err != nil {
					return nil, err
				}
				pin, err := p.ident()
				if err != nil {
					return nil, err
				}
				if err := p.expect("("); err != nil {
					return nil, err
				}
				netName := ""
				if p.cur().text != ")" {
					netName, err = p.netRef()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				if _, dup := conns[pin]; dup {
					return nil, p.errf("instance %s connects pin %s twice", instName, pin)
				}
				conns[pin] = netName
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			if _, err := nl.AddInstance(instName, cellType, conns); err != nil {
				return nil, err
			}
		}
	}
}

// WriteVerilog renders the netlist back as structural Verilog with an ANSI
// header. Nets named like vector bits (n[3]) are emitted as escaped scalar
// identifiers to keep the writer simple and the output round-trippable.
func WriteVerilog(n *Netlist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (", n.Name)
	first := true
	for _, id := range n.PortsIn {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "input %s", escapeVlog(n.Nets[id].Name))
	}
	for _, id := range n.PortsOut {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "output %s", escapeVlog(n.Nets[id].Name))
	}
	b.WriteString(");\n")

	ports := make(map[NetID]bool)
	for _, id := range n.PortsIn {
		ports[id] = true
	}
	for _, id := range n.PortsOut {
		ports[id] = true
	}
	var wires []string
	for i := range n.Nets {
		if !ports[NetID(i)] {
			wires = append(wires, escapeVlog(n.Nets[i].Name))
		}
	}
	sort.Strings(wires)
	for _, w := range wires {
		fmt.Fprintf(&b, "  wire %s;\n", w)
	}

	for i := range n.Instances {
		inst := &n.Instances[i]
		fmt.Fprintf(&b, "  %s %s (", inst.Type.Name, escapeVlog(inst.Name))
		firstPin := true
		emit := func(pin string, net NetID) {
			if net < 0 {
				return
			}
			if !firstPin {
				b.WriteString(", ")
			}
			firstPin = false
			fmt.Fprintf(&b, ".%s(%s)", pin, escapeVlog(n.Nets[net].Name))
		}
		for pi, pin := range inst.Type.Inputs {
			emit(pin, inst.InNets[pi])
		}
		for pi, pin := range inst.Type.Outputs {
			emit(pin, inst.OutNets[pi])
		}
		b.WriteString(");\n")
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// escapeVlog emits an escaped identifier when the name contains characters
// that are not valid in a simple Verilog identifier.
func escapeVlog(name string) string {
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !isVlogIdent(c) && !(c >= '0' && c <= '9') {
			return "\\" + name + " "
		}
	}
	return name
}
