package netlist

import (
	"strings"
	"testing"

	"gatesim/internal/liberty"
)

const hierSrc = `
// A two-level hierarchy: top instantiates two half adders.
module ha (input a, input b, output s, output c);
  XOR2 x (.A(a), .B(b), .Y(s));
  AND2 g (.A(a), .B(b), .Y(c));
endmodule

module top (input x, input y, input cin, output sum, output cout);
  wire s1, c1, c2;
  ha ha0 (.a(x), .b(y), .s(s1), .c(c1));
  ha ha1 (.a(s1), .b(cin), .s(sum), .c(c2));
  OR2 orc (.A(c1), .B(c2), .Y(cout));
endmodule
`

func TestHierarchyFlatten(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl, err := ParseVerilogHierarchy(hierSrc, lib, "")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "top" {
		t.Errorf("top detection: %q", nl.Name)
	}
	// 2 HAs x 2 gates + 1 OR = 5 instances.
	if len(nl.Instances) != 5 {
		t.Fatalf("instances: %d", len(nl.Instances))
	}
	names := map[string]bool{}
	for i := range nl.Instances {
		names[nl.Instances[i].Name] = true
	}
	for _, want := range []string{"ha0/x", "ha0/g", "ha1/x", "ha1/g", "orc"} {
		if !names[want] {
			t.Errorf("missing flattened instance %s (have %v)", want, names)
		}
	}
	// Port binding: ha0's s output drives net s1 of top, not a local net.
	s1, ok := nl.Net("s1")
	if !ok {
		t.Fatal("net s1 missing")
	}
	if nl.Nets[s1].Driver < 0 || nl.Instances[nl.Nets[s1].Driver].Name != "ha0/x" {
		t.Errorf("s1 driver wrong")
	}
	if len(nl.PortsIn) != 3 || len(nl.PortsOut) != 2 {
		t.Errorf("ports: %d in, %d out", len(nl.PortsIn), len(nl.PortsOut))
	}
	// It is a full adder: the flattened netlist must levelize and validate.
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyExplicitTop(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl, err := ParseVerilogHierarchy(hierSrc, lib, "ha")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "ha" || len(nl.Instances) != 2 {
		t.Errorf("explicit top: %s with %d instances", nl.Name, len(nl.Instances))
	}
}

func TestHierarchyDeepNesting(t *testing.T) {
	src := `
module leaf (input a, output y);
  INV i0 (.A(a), .Y(y));
endmodule
module mid (input a, output y);
  wire m;
  leaf l0 (.a(a), .y(m));
  leaf l1 (.a(m), .y(y));
endmodule
module top (input a, output y);
  wire m;
  mid m0 (.a(a), .y(m));
  mid m1 (.a(m), .y(y));
endmodule
`
	nl, err := ParseVerilogHierarchy(src, liberty.MustBuiltin(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Instances) != 4 {
		t.Fatalf("instances: %d", len(nl.Instances))
	}
	found := false
	for i := range nl.Instances {
		if nl.Instances[i].Name == "m1/l0/i0" {
			found = true
		}
	}
	if !found {
		t.Error("deep hierarchical name m1/l0/i0 missing")
	}
}

func TestHierarchyErrors(t *testing.T) {
	lib := liberty.MustBuiltin()
	cases := map[string]string{
		"recursion": `
module a (input x, output y); a inner (.x(x), .y(y)); endmodule`,
		"unknown type": `
module top (input x, output y); NOPE u (.A(x), .Y(y)); endmodule`,
		"unconnected submodule input": `
module sub (input a, output y); INV i (.A(a), .Y(y)); endmodule
module top (input x, output y); sub s (.y(y)); endmodule`,
		"duplicate modules": `
module m (input a, output y); INV i (.A(a), .Y(y)); endmodule
module m (input a, output y); BUF i (.A(a), .Y(y)); endmodule`,
		"module shadows cell": `
module INV (input a, output y); BUF i (.A(a), .Y(y)); endmodule
module top (input x, output y); INV u (.A(x), .Y(y)); endmodule`,
		"two tops": `
module t1 (input a, output y); INV i (.A(a), .Y(y)); endmodule
module t2 (input a, output y); BUF i (.A(a), .Y(y)); endmodule`,
	}
	for name, src := range cases {
		if _, err := ParseVerilogHierarchy(src, lib, ""); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// "two tops" is fine when one is named explicitly.
	if _, err := ParseVerilogHierarchy(cases["two tops"], lib, "t1"); err != nil {
		t.Errorf("explicit top should resolve ambiguity: %v", err)
	}
}

func TestHierarchySingleModuleMatchesFlatParser(t *testing.T) {
	src := `
module m (input a, input b, output y);
  wire n;
  NAND2 g1 (.A(a), .B(b), .Y(n));
  INV g2 (.A(n), .Y(y));
endmodule`
	lib := liberty.MustBuiltin()
	h, err := ParseVerilogHierarchy(src, lib, "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseVerilog(src, lib)
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats() != f.Stats() {
		t.Errorf("hierarchy %+v vs flat %+v", h.Stats(), f.Stats())
	}
}

func TestHierNameHelper(t *testing.T) {
	if got := HierName("a", "b", "c"); got != "a/b/c" {
		t.Errorf("HierName = %q", got)
	}
	if !strings.Contains(HierName("u0", "n1"), "/") {
		t.Error("separator missing")
	}
}
