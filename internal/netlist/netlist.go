// Package netlist models a gate-level netlist: library cell instances wired
// by nets, with primary input and output ports. It includes a parser and a
// writer for the structural-Verilog subset that gate-level netlists use
// (named port connections, scalar and vector declarations).
package netlist

import (
	"fmt"
	"sort"

	"gatesim/internal/liberty"
)

// NetID identifies a net within one Netlist.
type NetID int32

// CellID identifies an instance within one Netlist.
type CellID int32

// Load is one input pin fed by a net.
type Load struct {
	Cell CellID
	// InIdx is the index into the cell type's Inputs slice.
	InIdx int32
}

// Net is one wire. A net has at most one driver: either a primary input
// (Driver == -1, IsInput true) or output OutIdx of instance Driver.
type Net struct {
	Name    string
	Driver  CellID // -1 when undriven or primary input
	OutIdx  int32
	IsInput bool // primary input port
	Fanout  []Load
}

// Instance is one placed library cell.
type Instance struct {
	Name string
	Type *liberty.Cell
	// InNets[i] is the net on Type.Inputs[i]; OutNets[i] on Type.Outputs[i].
	// A value of -1 means unconnected.
	InNets  []NetID
	OutNets []NetID
}

// Netlist is a flattened gate-level design.
type Netlist struct {
	Name      string
	Lib       *liberty.Library
	Instances []Instance
	Nets      []Net
	PortsIn   []NetID
	PortsOut  []NetID

	netByName map[string]NetID
}

// New creates an empty netlist over the given library.
func New(name string, lib *liberty.Library) *Netlist {
	return &Netlist{Name: name, Lib: lib, netByName: make(map[string]NetID)}
}

// AddNet creates a net with the given name, or returns the existing one.
func (n *Netlist) AddNet(name string) NetID {
	if id, ok := n.netByName[name]; ok {
		return id
	}
	id := NetID(len(n.Nets))
	n.Nets = append(n.Nets, Net{Name: name, Driver: -1})
	n.netByName[name] = id
	return id
}

// Net returns the net with the given name and whether it exists.
func (n *Netlist) Net(name string) (NetID, bool) {
	id, ok := n.netByName[name]
	return id, ok
}

// MarkInput declares a net as a primary input port.
func (n *Netlist) MarkInput(id NetID) error {
	net := &n.Nets[id]
	if net.Driver >= 0 {
		return fmt.Errorf("netlist: input port %s is also driven by an instance", net.Name)
	}
	if !net.IsInput {
		net.IsInput = true
		n.PortsIn = append(n.PortsIn, id)
	}
	return nil
}

// MarkOutput declares a net as a primary output port.
func (n *Netlist) MarkOutput(id NetID) {
	for _, o := range n.PortsOut {
		if o == id {
			return
		}
	}
	n.PortsOut = append(n.PortsOut, id)
}

// AddInstance places a cell. conns maps pin names to net names; nets are
// created on demand. Unconnected input pins are an error; unconnected
// outputs are allowed (their pin entry stays -1).
func (n *Netlist) AddInstance(instName, cellType string, conns map[string]string) (CellID, error) {
	cell := n.Lib.Cells[cellType]
	if cell == nil {
		return -1, fmt.Errorf("netlist: instance %s: unknown cell type %s", instName, cellType)
	}
	id := CellID(len(n.Instances))
	inst := Instance{
		Name:    instName,
		Type:    cell,
		InNets:  make([]NetID, len(cell.Inputs)),
		OutNets: make([]NetID, len(cell.Outputs)),
	}
	for i := range inst.InNets {
		inst.InNets[i] = -1
	}
	for i := range inst.OutNets {
		inst.OutNets[i] = -1
	}
	// First pass: validate every connection without mutating any net, so a
	// failed AddInstance leaves the netlist untouched. Walk pins in the
	// cell's declared order, not the conns map: on-demand net creation below
	// assigns NetIDs in walk order, and netlist construction must be
	// deterministic (identical sources must digest to identical plan-cache
	// keys).
	type action struct {
		pin     *liberty.Pin
		netName string
		idx     int
	}
	var actions []action
	newDrivers := make(map[string]bool)
	ordered := make([]string, 0, len(conns))
	for _, pin := range cell.Inputs {
		if _, ok := conns[pin]; ok {
			ordered = append(ordered, pin)
		}
	}
	for _, pin := range cell.Outputs {
		if _, ok := conns[pin]; ok {
			ordered = append(ordered, pin)
		}
	}
	if len(ordered) < len(conns) {
		// Keep unknown-pin connections in the walk so they still error.
		known := make(map[string]bool, len(ordered))
		for _, p := range ordered {
			known[p] = true
		}
		extra := make([]string, 0, len(conns)-len(ordered))
		for pin := range conns {
			if !known[pin] {
				extra = append(extra, pin)
			}
		}
		sort.Strings(extra)
		ordered = append(ordered, extra...)
	}
	for _, pin := range ordered {
		netName := conns[pin]
		if netName == "" {
			continue // explicitly unconnected: .Y()
		}
		p := cell.Pin(pin)
		if p == nil {
			return -1, fmt.Errorf("netlist: instance %s: cell %s has no pin %s", instName, cellType, pin)
		}
		switch p.Dir {
		case liberty.DirInput:
			idx := pinIndex(cell.Inputs, pin)
			actions = append(actions, action{p, netName, idx})
			inst.InNets[idx] = 0 // provisional: marks "will be connected"
		case liberty.DirOutput:
			if existing, ok := n.netByName[netName]; ok {
				net := &n.Nets[existing]
				if net.Driver >= 0 || net.IsInput {
					return -1, fmt.Errorf("netlist: net %s has multiple drivers (%s.%s)", netName, instName, pin)
				}
			}
			if newDrivers[netName] {
				return -1, fmt.Errorf("netlist: net %s has multiple drivers within instance %s", netName, instName)
			}
			newDrivers[netName] = true
			actions = append(actions, action{p, netName, pinIndex(cell.Outputs, pin)})
		default:
			return -1, fmt.Errorf("netlist: instance %s: pin %s has unsupported direction", instName, pin)
		}
	}
	for i, pin := range cell.Inputs {
		if inst.InNets[i] == -1 {
			return -1, fmt.Errorf("netlist: instance %s: input pin %s unconnected", instName, pin)
		}
	}
	// Second pass: apply.
	for _, a := range actions {
		nid := n.AddNet(a.netName)
		if a.pin.Dir == liberty.DirInput {
			inst.InNets[a.idx] = nid
			n.Nets[nid].Fanout = append(n.Nets[nid].Fanout, Load{Cell: id, InIdx: int32(a.idx)})
		} else {
			inst.OutNets[a.idx] = nid
			n.Nets[nid].Driver = id
			n.Nets[nid].OutIdx = int32(a.idx)
		}
	}
	n.Instances = append(n.Instances, inst)
	return id, nil
}

func pinIndex(pins []string, name string) int {
	for i, p := range pins {
		if p == name {
			return i
		}
	}
	return -1
}

// Validate checks structural sanity: every net must be driven by a primary
// input or an instance output (floating nets with fanout are an error), and
// port lists must be consistent.
func (n *Netlist) Validate() error {
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.Driver < 0 && !net.IsInput && len(net.Fanout) > 0 {
			return fmt.Errorf("netlist: net %s is floating (no driver, %d loads)", net.Name, len(net.Fanout))
		}
	}
	return nil
}

// Stats are the Table I columns.
type Stats struct {
	Cells int
	Nets  int
	Pins  int
}

// Stats counts cells, nets and pins (connected instance pins plus ports).
func (n *Netlist) Stats() Stats {
	s := Stats{Cells: len(n.Instances), Nets: len(n.Nets)}
	for i := range n.Instances {
		inst := &n.Instances[i]
		s.Pins += len(inst.InNets)
		for _, o := range inst.OutNets {
			if o >= 0 {
				s.Pins++
			}
		}
	}
	s.Pins += len(n.PortsIn) + len(n.PortsOut)
	return s
}

// SequentialCount returns the number of sequential instances.
func (n *Netlist) SequentialCount() int {
	c := 0
	for i := range n.Instances {
		if n.Instances[i].Type.IsSequential() {
			c++
		}
	}
	return c
}
