package netlist

import (
	"strings"
	"testing"

	"gatesim/internal/liberty"
)

func TestAddInstanceBasic(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl := New("top", lib)
	a := nl.AddNet("a")
	b := nl.AddNet("b")
	if err := nl.MarkInput(a); err != nil {
		t.Fatal(err)
	}
	if err := nl.MarkInput(b); err != nil {
		t.Fatal(err)
	}
	id, err := nl.AddInstance("u1", "NAND2", map[string]string{"A": "a", "B": "b", "Y": "y"})
	if err != nil {
		t.Fatal(err)
	}
	yid, ok := nl.Net("y")
	if !ok {
		t.Fatal("net y not created")
	}
	nl.MarkOutput(yid)
	if nl.Nets[yid].Driver != id || nl.Nets[yid].OutIdx != 0 {
		t.Errorf("driver wrong: %+v", nl.Nets[yid])
	}
	if len(nl.Nets[a].Fanout) != 1 || nl.Nets[a].Fanout[0].Cell != id {
		t.Errorf("fanout wrong: %+v", nl.Nets[a].Fanout)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Cells != 1 || st.Nets != 3 || st.Pins != 3+3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestAddInstanceErrors(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl := New("top", lib)
	nl.MarkInput(nl.AddNet("a"))

	if _, err := nl.AddInstance("u1", "NOPE", map[string]string{}); err == nil {
		t.Error("unknown cell type should fail")
	}
	if _, err := nl.AddInstance("u1", "INV", map[string]string{"Q": "a"}); err == nil {
		t.Error("unknown pin should fail")
	}
	if _, err := nl.AddInstance("u1", "INV", map[string]string{"Y": "y"}); err == nil {
		t.Error("unconnected input should fail")
	}
	if _, err := nl.AddInstance("u1", "INV", map[string]string{"A": "a", "Y": "a"}); err == nil {
		t.Error("driving a primary input should fail")
	}
	if _, err := nl.AddInstance("u2", "INV", map[string]string{"A": "a", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("u3", "INV", map[string]string{"A": "a", "Y": "y"}); err == nil {
		t.Error("multiple drivers should fail")
	}
}

func TestValidateFloating(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl := New("top", lib)
	nl.MarkInput(nl.AddNet("a"))
	if _, err := nl.AddInstance("u1", "NAND2", map[string]string{"A": "a", "B": "float", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err == nil {
		t.Error("floating net with fanout should fail validation")
	}
}

func TestSequentialCount(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl := New("top", lib)
	nl.MarkInput(nl.AddNet("clk"))
	nl.MarkInput(nl.AddNet("d"))
	if _, err := nl.AddInstance("ff", "DFF_P", map[string]string{"CLK": "clk", "D": "d", "Q": "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g", "INV", map[string]string{"A": "q", "Y": "qi"}); err != nil {
		t.Fatal(err)
	}
	if got := nl.SequentialCount(); got != 1 {
		t.Errorf("SequentialCount = %d", got)
	}
}

const sampleVerilog = `
// a tiny design
module top (input clk, input [1:0] d, output q);
  wire n1;
  wire \odd.name ;
  NAND2 u1 (.A(d[0]), .B(d[1]), .Y(n1));
  INV u2 (.A(n1), .Y(\odd.name ));
  DFF_P ff0 (.CLK(clk), .D(\odd.name ), .Q(q), .QN());
endmodule
`

func TestParseVerilogANSI(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl, err := ParseVerilog(sampleVerilog, lib)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "top" {
		t.Errorf("module name %q", nl.Name)
	}
	if len(nl.PortsIn) != 3 { // clk, d[0], d[1]
		t.Errorf("inputs: %d", len(nl.PortsIn))
	}
	if len(nl.PortsOut) != 1 {
		t.Errorf("outputs: %d", len(nl.PortsOut))
	}
	if len(nl.Instances) != 3 {
		t.Errorf("instances: %d", len(nl.Instances))
	}
	if _, ok := nl.Net("d[1]"); !ok {
		t.Error("vector bit d[1] missing")
	}
	if _, ok := nl.Net("odd.name"); !ok {
		t.Error("escaped identifier missing")
	}
	// The unconnected QN output must be tolerated.
	ff := nl.Instances[2]
	if ff.OutNets[1] != -1 {
		t.Errorf("QN should be unconnected, got %d", ff.OutNets[1])
	}
}

func TestParseVerilogNonANSI(t *testing.T) {
	src := `
module m (a, b, y);
  input a, b;
  output y;
  OR2 g (.A(a), .B(b), .Y(y));
endmodule`
	nl, err := ParseVerilog(src, liberty.MustBuiltin())
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.PortsIn) != 2 || len(nl.PortsOut) != 1 {
		t.Errorf("ports: %d in %d out", len(nl.PortsIn), len(nl.PortsOut))
	}
}

func TestParseVerilogErrors(t *testing.T) {
	lib := liberty.MustBuiltin()
	bad := []string{
		`module m (input a); assign y = a; endmodule`,
		`module m (input a); NOPE u (.A(a)); endmodule`,
		`module m (input a); INV u (.A(a), .A(a), .Y(y)); endmodule`,
		`module m (input a); INV u (.A(a), .Y(y));`, // missing endmodule
		`module m (input a); INV u (.Q(a), .Y(y)); endmodule`,
		`module m (input a,); wire [x:0] w; endmodule`,
	}
	for _, src := range bad {
		if _, err := ParseVerilog(src, lib); err == nil {
			t.Errorf("should fail: %q", src)
		}
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl, err := ParseVerilog(sampleVerilog, lib)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteVerilog(nl)
	nl2, err := ParseVerilog(out, lib)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	s1, s2 := nl.Stats(), nl2.Stats()
	if s1 != s2 {
		t.Errorf("round trip stats: %+v vs %+v", s1, s2)
	}
	if len(nl2.PortsIn) != len(nl.PortsIn) || len(nl2.PortsOut) != len(nl.PortsOut) {
		t.Error("round trip ports differ")
	}
	// Same instance structure.
	for i := range nl.Instances {
		if nl.Instances[i].Type.Name != nl2.Instances[i].Type.Name {
			t.Errorf("instance %d type differs", i)
		}
		for pi, net := range nl.Instances[i].InNets {
			if nl.Nets[net].Name != nl2.Nets[nl2.Instances[i].InNets[pi]].Name {
				t.Errorf("instance %d input %d net differs", i, pi)
			}
		}
	}
	if !strings.Contains(out, "endmodule") {
		t.Error("writer output malformed")
	}
}
