package netlist

import (
	"fmt"
	"strings"

	"gatesim/internal/liberty"
)

// Gate-level netlists from synthesis are frequently hierarchical: a top
// module instantiating user-defined submodules that eventually bottom out
// in library cells. The simulator operates on a flattened design, so this
// file provides multi-module parsing plus recursive flattening with
// hierarchical instance/net names joined by '/'.

// module is the parsed-but-unresolved form of one Verilog module.
type module struct {
	name  string
	ports []modPort
	insts []modInst
	nets  map[string]bool // declared wires and ports
}

type modPort struct {
	name string
	dir  string // "input", "output" or "" (unresolved non-ANSI)
}

type modInst struct {
	typeName string
	instName string
	conns    map[string]string // pin -> net expression
	line     int
}

// ParseVerilogHierarchy parses source containing one or more modules and
// flattens the design rooted at top (or the single module when top is "").
// Submodule instances expand recursively; their internal nets and instances
// get hierarchical names ("u_core/u_alu/n42"). Library cells always win a
// name clash with modules.
func ParseVerilogHierarchy(src string, lib *liberty.Library, top string) (*Netlist, error) {
	mods, err := parseModules(src)
	if err != nil {
		return nil, err
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("verilog: no modules in source")
	}
	byName := make(map[string]*module, len(mods))
	for _, m := range mods {
		if _, dup := byName[m.name]; dup {
			return nil, fmt.Errorf("verilog: duplicate module %q", m.name)
		}
		if lib.Cells[m.name] != nil {
			return nil, fmt.Errorf("verilog: module %q collides with a library cell", m.name)
		}
		byName[m.name] = m
	}
	if top == "" {
		if len(mods) == 1 {
			top = mods[0].name
		} else {
			// The top is the module nobody instantiates.
			instantiated := map[string]bool{}
			for _, m := range mods {
				for _, in := range m.insts {
					instantiated[in.typeName] = true
				}
			}
			for _, m := range mods {
				if !instantiated[m.name] {
					if top != "" {
						return nil, fmt.Errorf("verilog: ambiguous top (%s and %s); pass one explicitly", top, m.name)
					}
					top = m.name
				}
			}
			if top == "" {
				return nil, fmt.Errorf("verilog: no top module (instantiation cycle?)")
			}
		}
	}
	root := byName[top]
	if root == nil {
		return nil, fmt.Errorf("verilog: top module %q not found", top)
	}

	nl := New(top, lib)
	// Top-level ports become primary inputs/outputs.
	for _, p := range root.ports {
		id := nl.AddNet(p.name)
		switch p.dir {
		case "input":
			if err := nl.MarkInput(id); err != nil {
				return nil, err
			}
		case "output":
			nl.MarkOutput(id)
		default:
			return nil, fmt.Errorf("verilog: top port %s has no direction", p.name)
		}
	}
	if err := flatten(nl, byName, root, "", map[string]bool{top: true}, func(local string) string { return local }); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// flatten expands one module instance. mapNet resolves a net name local to
// this module onto a flattened net name.
func flatten(nl *Netlist, mods map[string]*module, m *module, prefix string, onPath map[string]bool, mapNet func(string) string) error {
	for _, in := range m.insts {
		if cell := nl.Lib.Cells[in.typeName]; cell != nil {
			conns := make(map[string]string, len(in.conns))
			for pin, netName := range in.conns {
				if netName == "" {
					conns[pin] = ""
					continue
				}
				conns[pin] = mapNet(netName)
			}
			if _, err := nl.AddInstance(prefix+in.instName, in.typeName, conns); err != nil {
				return err
			}
			continue
		}
		sub := mods[in.typeName]
		if sub == nil {
			return fmt.Errorf("verilog: instance %s%s: unknown cell or module %q", prefix, in.instName, in.typeName)
		}
		if onPath[sub.name] {
			return fmt.Errorf("verilog: recursive instantiation of module %q", sub.name)
		}
		// Bind submodule ports to the parent's nets; internal nets get the
		// hierarchical prefix.
		binding := make(map[string]string, len(sub.ports))
		for _, p := range sub.ports {
			expr, connected := in.conns[p.name]
			if !connected || expr == "" {
				if p.dir == "input" {
					return fmt.Errorf("verilog: instance %s%s: input port %s unconnected", prefix, in.instName, p.name)
				}
				continue // unconnected output: submodule net stays local
			}
			binding[p.name] = mapNet(expr)
		}
		subPrefix := prefix + in.instName + "/"
		subMap := func(local string) string {
			if bound, ok := binding[local]; ok {
				return bound
			}
			return subPrefix + local
		}
		onPath[sub.name] = true
		if err := flatten(nl, mods, sub, subPrefix, onPath, subMap); err != nil {
			return err
		}
		delete(onPath, sub.name)
	}
	return nil
}

// parseModules tokenizes and splits the source into modules, reusing the
// flat parser's tokenizer but deferring cell/module resolution.
func parseModules(src string) ([]*module, error) {
	toks, err := vlogTokens(src)
	if err != nil {
		return nil, err
	}
	p := &vlogParser{toks: toks}
	var mods []*module
	for p.cur().line >= 0 && p.cur().text != "" {
		m, err := p.parseModuleGeneric()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	return mods, nil
}

// parseModuleGeneric parses one module into the unresolved form.
func (p *vlogParser) parseModuleGeneric() (*module, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	m := &module{name: name, nets: make(map[string]bool)}
	dirOf := make(map[string]string)
	var portOrder []string

	declare := func(dir string, names []string) {
		for _, n := range names {
			m.nets[n] = true
			if dir != "" {
				if _, seen := dirOf[n]; !seen {
					portOrder = append(portOrder, n)
				}
				dirOf[n] = dir
			}
		}
	}

	if p.accept("(") {
		for !p.accept(")") {
			if p.accept(",") {
				continue
			}
			dir := ""
			if t := p.cur().text; t == "input" || t == "output" {
				dir = t
				p.pos++
			}
			p.accept("wire")
			msb, lsb, vec, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			pname, err := p.ident()
			if err != nil {
				return nil, err
			}
			names := expandVec(pname, msb, lsb, vec)
			if dir == "" {
				// Non-ANSI: remember the port order; direction comes later.
				for _, n := range names {
					portOrder = append(portOrder, n)
					dirOf[n] = ""
				}
			}
			declare(dir, names)
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	for {
		t := p.cur()
		switch t.text {
		case "endmodule":
			p.pos++
			for _, n := range portOrder {
				d := dirOf[n]
				if d == "" {
					return nil, fmt.Errorf("verilog: line %d: port %s of %s has no direction", t.line, n, m.name)
				}
				m.ports = append(m.ports, modPort{name: n, dir: d})
			}
			return m, nil
		case "input", "output", "wire":
			p.pos++
			msb, lsb, vec, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			for {
				n, err := p.ident()
				if err != nil {
					return nil, err
				}
				names := expandVec(n, msb, lsb, vec)
				if t.text == "wire" {
					declare("", names)
					// wires are not ports
					for _, nm := range names {
						if _, isPort := dirOf[nm]; isPort && dirOf[nm] == "" {
							// A `wire` redeclaration of a port keeps it a port.
							continue
						}
					}
				} else {
					for _, nm := range names {
						if d, seen := dirOf[nm]; !seen || d == "" {
							if !seen {
								portOrder = append(portOrder, nm)
							}
							dirOf[nm] = t.text
						}
					}
					declare(t.text, names)
				}
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "assign", "always", "initial", "reg":
			return nil, fmt.Errorf("verilog: line %d: behavioural construct %q not supported", t.line, t.text)
		case "":
			return nil, fmt.Errorf("verilog: unexpected end of file in module %s", m.name)
		default:
			inst := modInst{typeName: t.text, conns: map[string]string{}, line: t.line}
			p.pos++
			iname, err := p.ident()
			if err != nil {
				return nil, err
			}
			inst.instName = iname
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for !p.accept(")") {
				if p.accept(",") {
					continue
				}
				if err := p.expect("."); err != nil {
					return nil, err
				}
				pin, err := p.ident()
				if err != nil {
					return nil, err
				}
				if err := p.expect("("); err != nil {
					return nil, err
				}
				netName := ""
				if p.cur().text != ")" {
					netName, err = p.netRef()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				if _, dup := inst.conns[pin]; dup {
					return nil, fmt.Errorf("verilog: line %d: instance %s connects pin %s twice", t.line, iname, pin)
				}
				inst.conns[pin] = netName
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			m.insts = append(m.insts, inst)
		}
	}
}

// HierName joins hierarchical path components the way flattening does.
func HierName(parts ...string) string { return strings.Join(parts, "/") }
