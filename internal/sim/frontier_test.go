package sim

import (
	"bytes"
	"fmt"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
)

// runCollectSliced is runCollect with the advance split into horizon slices,
// the way RunStream drives the engine. The slicing is what exercises the
// frontier plane: each Advance past the injected events moves primary-input
// watermarks with no new events, and quiet comb clouds downstream must be
// settled through staged frontier commits rather than re-visits.
func runCollectSliced(t *testing.T, p *plan.Plan, stim []gen.Change, opts Options, slice, end int64) map[netlist.NetID][]event.Event {
	t.Helper()
	e, err := NewFromPlan(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	for h := slice; h < end; h += slice {
		if err := e.Advance(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	return collectEngine(e)
}

// TestFrontierMixedEquivalence checks, on the mixed-kernel fixture under
// sliced advances, that the frontier-enabled engine matches both the
// reference simulator and the bit-exact A/B baseline (DisableFrontier)
// across all execution modes, with and without compiled scripts.
func TestFrontierMixedEquivalence(t *testing.T) {
	force4Procs(t)
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	ref, err := refsim.NewFromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{ModeSerial, ModeParallel, ModeManycore} {
		for _, scripts := range []bool{false, true} {
			opts := pooledOpts(mode)
			opts.DisableScripts = !scripts
			fronted := runCollectSliced(t, p, stim, opts, 2000, 30000)
			label := fmt.Sprintf("mode=%v scripts=%v", mode, scripts)
			diffStreams(t, nl, want, fronted, label+" frontier vs refsim")

			opts.DisableFrontier = true
			baseline := runCollectSliced(t, p, stim, opts, 2000, 30000)
			diffStreams(t, nl, fronted, baseline, label+" frontier vs disabled")
		}
	}
}

// TestFrontierGeneratedEquivalence repeats the frontier-on/off stream
// comparison on larger generated designs (FFs, latches, scan chains, clock
// gates, deep comb clouds) across seeds, under sliced advances.
func TestFrontierGeneratedEquivalence(t *testing.T) {
	force4Procs(t)
	for seed := int64(0); seed < 3; seed++ {
		d, err := gen.Build(smallSpec(seed + 900))
		if err != nil {
			t.Fatal(err)
		}
		delays := gen.Delays(d, 7)
		p, err := plan.Build(d.Netlist, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.7, Seed: seed, ScanBurst: 5})
		for _, mode := range []Mode{ModeSerial, ModeParallel} {
			opts := pooledOpts(mode)
			fronted := runCollectSliced(t, p, stim, opts, 4000, 48000)
			opts.DisableFrontier = true
			baseline := runCollectSliced(t, p, stim, opts, 4000, 48000)
			diffStreams(t, d.Netlist, fronted, baseline, fmt.Sprintf("seed=%d mode=%v frontier vs disabled", seed, mode))
		}
	}
}

// frontierBoundaryFixture builds a fanout-2 net for the markLoads boundary
// test: i0 -> inv0 -> n0, with n0 read by two further inverters.
func frontierBoundaryFixture(t *testing.T) (*netlist.Netlist, *sdf.Delays) {
	t.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("boundary", lib)
	if err := nl.MarkInput(nl.AddNet("i0")); err != nil {
		t.Fatal(err)
	}
	for _, inst := range [][3]string{
		{"inv0", "i0", "n0"},
		{"invA", "n0", "ya"},
		{"invB", "n0", "yb"},
	} {
		if _, err := nl.AddInstance(inst[0], "INV", map[string]string{"A": inst[1], "Y": inst[2]}); err != nil {
			t.Fatal(err)
		}
	}
	return nl, sdf.Uniform(nl, 10)
}

// cellByName resolves an instance name to its CellID.
func cellByName(t *testing.T, nl *netlist.Netlist, name string) netlist.CellID {
	t.Helper()
	for i := range nl.Instances {
		if nl.Instances[i].Name == name {
			return netlist.CellID(i)
		}
	}
	t.Fatalf("instance %s missing", name)
	return -1
}

// TestMarkLoadsBoundary pins the wakeup boundary of a watermark-only
// advance against DeterminedUntil's exclusive semantics (event/queue.go): a
// reader whose determination frontier sits exactly at the old watermark was
// blocked on precisely the first newly-determined instant and must be
// marked; a reader one below it was stalled on something else and must not
// be. The frontier plane applies the same boundary at commit time, against
// the minimum folded watermark of the coalesced moves.
func TestMarkLoadsBoundary(t *testing.T) {
	nl, delays := frontierBoundaryFixture(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	n0, ok := nl.Net("n0")
	if !ok {
		t.Fatal("net n0 missing")
	}

	// Flag-based marks (DisableScripts) so the dirty state is directly
	// observable; frontier disabled to exercise the baseline branch.
	e, err := NewFromPlan(p, Options{Mode: ModeSerial, DisableScripts: true, DisableFrontier: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	invA, invB := cellByName(t, nl, "invA"), cellByName(t, nl, "invB")

	const wOld = 100
	setup := func() {
		for _, c := range []netlist.CellID{invA, invB} {
			e.gate[c].dirty.Store(false)
		}
		e.gate[invA].detUntil.Store(wOld)     // waiting exactly at the old watermark
		e.gate[invB].detUntil.Store(wOld - 1) // stalled below it, on something else
	}

	setup()
	e.markLoads(n0, wOld, false)
	if !e.gate[invA].dirty.Load() {
		t.Error("reader with detUntil == wOld not marked by a watermark-only advance")
	}
	if e.gate[invB].dirty.Load() {
		t.Error("reader with detUntil == wOld-1 marked by a watermark-only advance")
	}

	// New events wake every reader regardless of frontier.
	setup()
	e.markLoads(n0, wOld, true)
	if !e.gate[invA].dirty.Load() || !e.gate[invB].dirty.Load() {
		t.Error("new events must mark every reader")
	}

	// The frontier path stages the *net*, not its readers: one O(1) staging
	// per watermark move, deduped by the netMark staged encoding, with
	// repeated moves min-folding
	// the old watermark onto the same staging. The reader boundary is applied
	// later, by the drain's frontierCommit, against the folded minimum. The
	// engine is run to completion first so the readers hold a quiet soft
	// snapshot — a reader that still needs a real visit is marked, not staged.
	r, err := NewFromPlan(p, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.front.on {
		t.Fatal("frontier not armed on a default engine")
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	stagedNets := func() (n int64) {
		for _, l := range r.front.netLen {
			n += l
		}
		return n
	}
	stagedCells := func() (n int64) {
		for _, l := range r.front.cellLen {
			n += l
		}
		return n
	}
	rA, rB := cellByName(t, nl, "invA"), cellByName(t, nl, "invB")
	r.gate[rA].detUntil.Store(wOld)
	r.gate[rB].detUntil.Store(wOld - 1)

	r.markLoads(n0, wOld, false)
	if got := stagedNets(); got != 1 {
		t.Fatalf("staged nets = %d after one watermark-only advance, want 1", got)
	}
	if got := r.front.netMark[n0]; got != wOld {
		t.Errorf("netMark = %d after staging, want %d", got, wOld)
	}
	if got := stagedCells(); got != 0 {
		t.Errorf("staged cells = %d before any drain, want 0 (staging is per net)", got)
	}

	// A second move on the same net coalesces: no new staging, and the mark
	// keeps the minimum wOld so the commit filter covers the earliest move.
	r.markLoads(n0, wOld+5, false)
	if got := stagedNets(); got != 1 {
		t.Fatalf("staged nets = %d after duplicate staging, want 1 (netMark dedup)", got)
	}
	if got := r.front.netMark[n0]; got != wOld {
		t.Errorf("netMark = %d after a later move folded in, want min %d", got, wOld)
	}

	// Drain the staging by hand, the way frontierPass does, and check the
	// commit applies the baseline boundary to the eligible reader cloud:
	// the reader at the folded mark is staged for a walk, the reader below
	// it is untouched, and restaging is deduped by the cellState staged bit.
	w := r.front.netMark[n0]
	r.front.netMark[n0] = frontierUnstaged
	r.frontierCommit(n0, w)
	if got := stagedCells(); got != 1 {
		t.Fatalf("staged cells = %d after the commit, want 1", got)
	}
	if r.front.cellState[rA]&1 == 0 {
		t.Error("reader with detUntil == wOld not staged by the frontier commit")
	}
	if r.front.cellState[rB]&1 != 0 {
		t.Error("reader with detUntil == wOld-1 staged by the frontier commit")
	}
	r.frontierCommit(n0, w)
	if got := stagedCells(); got != 1 {
		t.Fatalf("staged cells = %d after a duplicate commit, want 1 (cellState dedup)", got)
	}
}

// TestFrontierCounters checks the new observability: FrontierCommits counts
// drained net stagings, QueriesSaved counts LUT probes the determinedness
// memo skipped, VisitsWatermarkOnly counts visits that committed no events,
// the obs counters mirror the Stats fields, and the A/B switch really turns
// the plane off.
func TestFrontierCounters(t *testing.T) {
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	reg := obs.NewRegistry()
	e, err := NewFromPlan(p, Options{Mode: ModeSerial, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	for h := int64(2000); h < 30000; h += 2000 {
		if err := e.Advance(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.FrontierCommits == 0 {
		t.Error("sliced run committed no frontier nets; the plane never engaged")
	}
	if st.VisitsWatermarkOnly == 0 {
		t.Error("no watermark-only visits counted")
	}
	if st.VisitsWatermarkOnly > st.Visits {
		t.Errorf("VisitsWatermarkOnly %d exceeds Visits %d", st.VisitsWatermarkOnly, st.Visits)
	}
	if st.QueriesSaved < 0 {
		t.Errorf("QueriesSaved = %d, want >= 0", st.QueriesSaved)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim.frontier_commits"]; got != st.FrontierCommits {
		t.Errorf("sim.frontier_commits counter = %d, Stats = %d", got, st.FrontierCommits)
	}
	if got := snap.Counters["sim.queries_saved"]; got != st.QueriesSaved {
		t.Errorf("sim.queries_saved counter = %d, Stats = %d", got, st.QueriesSaved)
	}
	if got := snap.Counters["sim.visits_watermark_only"]; got != st.VisitsWatermarkOnly {
		t.Errorf("sim.visits_watermark_only counter = %d, Stats = %d", got, st.VisitsWatermarkOnly)
	}

	off, err := NewFromPlan(p, Options{Mode: ModeSerial, DisableFrontier: true})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	for _, s := range stim {
		if err := off.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := off.Finish(); err != nil {
		t.Fatal(err)
	}
	ost := off.Stats()
	if ost.FrontierCommits != 0 {
		t.Errorf("DisableFrontier still committed %d nets", ost.FrontierCommits)
	}
	if ost.QueriesSaved != 0 {
		t.Errorf("DisableFrontier still saved %d queries (memo only runs on walks)", ost.QueriesSaved)
	}
}

// TestFrontierSegmentSkipNoLostWakeup is the clean-segment interplay proof:
// a script segment skipped on a zero dirty population must never strand a
// staged frontier entry. Multi-slice pooled and manycore runs on a
// generated design must both commit frontier nets and (on the
// dirty-filtered path) skip segments, while the committed streams stay
// identical to the frontier-off baseline — a stranded staging would leave a
// frontier behind and diverge. Run under -race via scripts/check.sh.
func TestFrontierSegmentSkipNoLostWakeup(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(1234))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	p, err := plan.Build(d.Netlist, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.5, Seed: 9, ScanBurst: 5})

	baseOpts := pooledOpts(ModeParallel)
	baseOpts.DisableFrontier = true
	baseline := runCollectSliced(t, p, stim, baseOpts, 4000, 48000)

	for _, mode := range []Mode{ModeParallel, ModeManycore} {
		opts := pooledOpts(mode)
		e, err := NewFromPlan(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stim {
			if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
				t.Fatal(err)
			}
		}
		for h := int64(4000); h < 48000; h += 4000 {
			if err := e.Advance(h); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Finish(); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.FrontierCommits == 0 {
			t.Errorf("mode=%v: no frontier commits; fixture does not exercise the interplay", mode)
		}
		// Only dirty-filtered rounds skip clean segments; the oblivious
		// manycore scan visits everything.
		if mode == ModeParallel && st.SegmentsSkipped == 0 {
			t.Error("pooled run skipped no segments; fixture does not exercise the interplay")
		}
		diffStreams(t, d.Netlist, baseline, collectEngine(e), fmt.Sprintf("mode=%v frontier+skips vs baseline", mode))
		for nid := range d.Netlist.Nets {
			if w := e.Events(netlist.NetID(nid)).DeterminedUntil(); w != TimeInf {
				t.Fatalf("mode=%v: net %s watermark %d after Finish; a wakeup was lost", mode, d.Netlist.Nets[nid].Name, w)
			}
		}
		e.Close()
	}
}

// TestFrontierLaneEquivalence lifts the old "lane mode forces relaxation
// off" restriction: a lane run with the frontier plane on must produce
// per-lane streams byte-identical to the DisableFrontier baseline on every
// net and every lane, and the plane must actually engage (commits counted)
// so the comparison is not vacuous.
func TestFrontierLaneEquivalence(t *testing.T) {
	d, err := gen.Build(smallSpec(4321))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	const lanes = 8
	perLaneG := gen.LaneStimuli(d, gen.StimSpec{Cycles: 15, ActivityFactor: 0.6, Seed: 3, ScanBurst: 5}, lanes)
	perLane := make([][]Change, lanes)
	for l, cs := range perLaneG {
		perLane[l] = make([]Change, len(cs))
		for i, c := range cs {
			perLane[l][i] = Change{Net: c.Net, Time: c.Time, Val: c.Val}
		}
	}
	merged, err := MergeLaneChanges(perLane)
	if err != nil {
		t.Fatal(err)
	}

	run := func(opts Options) *Engine {
		t.Helper()
		opts.Lanes = lanes
		e, err := New(d.Netlist, testLib, delays, opts)
		if err != nil {
			t.Fatal(err)
		}
		// A small slice forces watermark-only advances between stimulus
		// bursts, which is what stages frontier nets.
		if err := e.RunLaneStream(merged, LaneStreamConfig{SlicePS: d.Spec.ClockPeriodPS / 2}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	on := run(Options{Mode: ModeSerial})
	defer on.Close()
	off := run(Options{Mode: ModeSerial, DisableFrontier: true})
	defer off.Close()
	if on.Stats().FrontierCommits == 0 {
		t.Error("lane run committed no frontier nets; the lane lift is untested")
	}
	for nid := range d.Netlist.Nets {
		for l := 0; l < lanes; l++ {
			got := on.LaneEvents(netlist.NetID(nid), l)
			want := off.LaneEvents(netlist.NetID(nid), l)
			if len(got) != len(want) {
				t.Fatalf("net %s lane %d: frontier %d events vs baseline %d\nwant %v\ngot  %v",
					d.Netlist.Nets[nid].Name, l, len(got), len(want), want, got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("net %s lane %d event %d: got %+v want %+v",
						d.Netlist.Nets[nid].Name, l, i, got[i], want[i])
				}
			}
		}
	}
}

// FuzzFrontier builds random comb1-only netlists and checks the
// frontier-enabled engine against the DisableFrontier baseline under sliced
// advances: the committed event streams must be byte-identical.
func FuzzFrontier(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 5})
	f.Add([]byte{1, 4, 1, 7, 2, 9, 0, 2, 1, 3, 2, 8, 0, 1, 1, 6})
	f.Add(bytes.Repeat([]byte{2, 5, 0, 3}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("not enough bytes for a gate")
		}
		nl, err := fuzzCombNetlist(data)
		if err != nil {
			t.Skip(err)
		}
		p, err := plan.Build(nl, testLib, sdf.Uniform(nl, int64(1+data[0]%9)))
		if err != nil {
			t.Skip(err)
		}
		var stim []gen.Change
		for i := 0; i < 3; i++ {
			nid, ok := nl.Net(fmt.Sprintf("i%d", i))
			if !ok {
				t.Fatalf("input i%d missing", i)
			}
			step := int64(200 + 100*int(data[i%len(data)]%7))
			for c := int64(0); c < 8; c++ {
				stim = append(stim, gen.Change{Net: nid, Time: 500 + int64(i)*130 + c*step, Val: logic.Value(c % 2)})
			}
		}
		slice := int64(700 + 300*int(data[len(data)-1]%5))
		fronted := runCollectSliced(t, p, stim, Options{Mode: ModeSerial}, slice, 12000)
		baseline := runCollectSliced(t, p, stim, Options{Mode: ModeSerial, DisableFrontier: true}, slice, 12000)
		diffStreams(t, nl, fronted, baseline, "fuzz frontier vs disabled")
	})
}
