package sim

// Fault-containment, watchdog, and cancellation tests — the run-control
// acceptance suite. Everything here also runs under -race via
// scripts/check.sh.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
)

// faultChain builds the 4-gate inverter chain used by the poisoning tests.
func faultChain(t *testing.T) (*netlist.Netlist, *sdf.Delays) {
	t.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("faultchain", lib)
	if err := nl.MarkInput(nl.AddNet("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("buf", "BUF", map[string]string{"A": "a", "Y": "n0"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := nl.AddInstance(fmt.Sprintf("inv%d", i), "INV",
			map[string]string{"A": fmt.Sprintf("n%d", i), "Y": fmt.Sprintf("n%d", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	return nl, sdf.Uniform(nl, 10)
}

// ringLatch builds the oscillating fixture: a resettable transparent latch
// whose D input is the inversion of its own Q. Once the reset releases with
// the latch enabled, the loop toggles forever — the classic netlist the
// convergence watchdog exists for. (A purely combinational ring would be
// rejected by levelization; routing it through a latch is how such loops
// reach the engine in practice.)
func ringLatch(t *testing.T) (*netlist.Netlist, *sdf.Delays) {
	t.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("ringlatch", lib)
	for _, p := range []string{"en", "rst_n"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("lat", "DLATCH_HR",
		map[string]string{"GATE": "en", "D": "nd", "RESET_B": "rst_n", "Q": "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("inv", "INV", map[string]string{"A": "q", "Y": "nd"}); err != nil {
		t.Fatal(err)
	}
	return nl, sdf.Uniform(nl, 10)
}

func startRing(t *testing.T, e *Engine, nl *netlist.Netlist) {
	t.Helper()
	en, _ := nl.Net("en")
	rst, _ := nl.Net("rst_n")
	if err := e.Inject(en, 5, logic.V1); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(rst, 10, logic.V0); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(rst, 100, logic.V1); err != nil {
		t.Fatal(err)
	}
}

func instanceByName(t *testing.T, nl *netlist.Netlist, name string) netlist.CellID {
	t.Helper()
	for i := range nl.Instances {
		if nl.Instances[i].Name == name {
			return netlist.CellID(i)
		}
	}
	t.Fatalf("no instance %q", name)
	return -1
}

// TestGatePanicPoisonsSerial injects a panic into one gate's visit on the
// serial path and checks the full poisoning contract: structured first
// report with coordinates and stack, ErrPoisoned on every later call,
// Checkpoint a no-op, Close clean.
func TestGatePanicPoisonsSerial(t *testing.T) {
	nl, delays := faultChain(t)
	victim := netlist.CellID(-1)
	opts := Options{Mode: ModeSerial}
	opts.GateHook = func(g netlist.CellID) {
		if g == victim {
			panic("injected gate fault")
		}
	}
	e, err := New(nl, testLib, delays, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	victim = instanceByName(t, nl, "inv1")

	a, _ := nl.Net("a")
	if err := e.Inject(a, 100, logic.V0); err != nil {
		t.Fatal(err)
	}
	err = e.Advance(1000)
	if err == nil {
		t.Fatal("Advance with a panicking gate returned nil")
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SimError: %v", err, err)
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Errorf("first report does not match ErrPoisoned: %v", err)
	}
	if se.Panic == nil {
		t.Fatal("SimError.Panic is nil")
	}
	if se.Panic.Value != "injected gate fault" {
		t.Errorf("Panic.Value = %v", se.Panic.Value)
	}
	if len(se.Panic.Stack) == 0 {
		t.Error("Panic.Stack is empty")
	}
	if se.Panic.Gate != victim || se.Panic.GateName != "inv1" || se.Panic.CellType != "INV" {
		t.Errorf("coordinates: gate=%d name=%q cell=%q", se.Panic.Gate, se.Panic.GateName, se.Panic.CellType)
	}

	// Every later run-control call answers ErrPoisoned.
	if err := e.Advance(2000); !errors.Is(err, ErrPoisoned) {
		t.Errorf("Advance after poison: %v", err)
	}
	if err := e.Inject(a, 5000, logic.V1); !errors.Is(err, ErrPoisoned) {
		t.Errorf("Inject after poison: %v", err)
	}
	if err := e.RunStream(NewSliceSource(nil), StreamConfig{}); !errors.Is(err, ErrPoisoned) {
		t.Errorf("RunStream after poison: %v", err)
	}
	if err := e.SaveSnapshot(&bytes.Buffer{}); !errors.Is(err, ErrPoisoned) {
		t.Errorf("SaveSnapshot after poison: %v", err)
	}
	if e.Err() == nil || !errors.Is(e.Err(), ErrPoisoned) {
		t.Errorf("Err() = %v", e.Err())
	}
	cp := e.Stats().Checkpoints
	e.Checkpoint() // must be a no-op, not a crash
	if e.Stats().Checkpoints != cp {
		t.Error("Checkpoint ran on a poisoned engine")
	}
}

// TestGatePanicPooledNoLeak poisons a pooled engine mid-round and checks
// the round still completes (the segment barrier survives the dying chunk),
// the error carries coordinates, and Close joins every worker.
func TestGatePanicPooledNoLeak(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 10, ActivityFactor: 0.7, Seed: 3, ScanBurst: 4})

	before := runtime.NumGoroutine()
	var tripped atomic.Int64
	tripped.Store(-1)
	opts := pooledOpts(ModeParallel)
	opts.GateHook = func(g netlist.CellID) {
		// Panic on the first visit that happens to run; remember which.
		if tripped.CompareAndSwap(-1, int64(g)) {
			panic("pooled gate fault")
		}
	}
	e, err := New(d.Netlist, testLib, delays, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	err = e.Finish()
	var se *SimError
	if !errors.As(err, &se) || se.Panic == nil {
		t.Fatalf("pooled panic not reported as *SimError with PanicInfo: %v", err)
	}
	if se.Panic.Gate != netlist.CellID(tripped.Load()) {
		t.Errorf("reported gate %d, panicked gate %d", se.Panic.Gate, tripped.Load())
	}
	if want := d.Netlist.Instances[se.Panic.Gate].Name; se.Panic.GateName != want {
		t.Errorf("GateName %q, want %q", se.Panic.GateName, want)
	}
	if len(se.Panic.Stack) == 0 {
		t.Error("stack missing from pooled panic report")
	}
	if err := e.Finish(); !errors.Is(err, ErrPoisoned) {
		t.Errorf("Finish after poison: %v", err)
	}
	e.Close()
	checkNoLeak(t, before, "poisoned Close")
}

// TestPoolFaultDegradesToSerial kills one worker slot before it runs any
// gate code (the chaos FaultHook) and checks graceful degradation: the run
// completes with results identical to a clean serial run, and the downgrade
// is recorded in Stats.
func TestPoolFaultDegradesToSerial(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(23))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 15, ActivityFactor: 0.7, Seed: 5, ScanBurst: 4})

	// Reference: a clean serial run.
	ref, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, s := range stim {
		if err := ref.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Finish(); err != nil {
		t.Fatal(err)
	}

	var fired atomic.Bool
	opts := pooledOpts(ModeParallel)
	opts.FaultHook = func(item int) {
		if fired.CompareAndSwap(false, true) {
			panic("simulated worker death")
		}
	}
	e, err := New(d.Netlist, testLib, delays, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !fired.Load() {
		t.Fatal("fault hook never fired (pool path not taken)")
	}
	if got := e.Stats().Downgrades; got != 1 {
		t.Errorf("Downgrades = %d, want 1", got)
	}
	diffStreams(t, d.Netlist, collectEngine(ref), collectEngine(e), "degraded-vs-serial")
}

// TestWatchdogOscillation trips MaxSweeps on the latch ring in both serial
// and pooled modes and checks the report names the moving gates/nets and
// that the engine stays resumable (not poisoned, keeps making progress).
func TestWatchdogOscillation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"serial", Options{Mode: ModeSerial, MaxSweeps: 60}},
		{"pooled", func() Options { o := pooledOpts(ModeParallel); o.MaxSweeps = 60; return o }()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "pooled" {
				force4Procs(t)
			}
			nl, delays := ringLatch(t)
			e, err := New(nl, testLib, delays, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			startRing(t, e, nl)

			err = e.Advance(1_000_000)
			if err == nil {
				t.Fatal("oscillating ring converged?")
			}
			if !errors.Is(err, ErrNoConvergence) {
				t.Fatalf("cause is not ErrNoConvergence: %v", err)
			}
			var se *SimError
			if !errors.As(err, &se) || se.Oscillation == nil {
				t.Fatalf("no OscillationReport: %v", err)
			}
			rep := se.Oscillation
			if rep.Sweeps != 60 || len(rep.Gates) == 0 {
				t.Fatalf("report: sweeps=%d gates=%d", rep.Sweeps, len(rep.Gates))
			}
			names := map[string]bool{}
			nets := 0
			for _, g := range rep.Gates {
				names[g.Name] = true
				nets += len(g.Nets)
			}
			if !names["lat"] && !names["inv"] {
				t.Errorf("report names %v, want the ring members", names)
			}
			if nets == 0 {
				t.Error("report names no moving nets")
			}

			// Watchdog trips do not poison: the engine keeps working and a
			// second advance continues the oscillation from where the first
			// budget ran out.
			if e.Err() != nil {
				t.Fatalf("watchdog poisoned the engine: %v", e.Err())
			}
			q, _ := nl.Net("q")
			wmBefore := e.Events(q).DeterminedUntil()
			err = e.Advance(1_000_000)
			if !errors.Is(err, ErrNoConvergence) {
				t.Fatalf("second advance: %v", err)
			}
			if wmAfter := e.Events(q).DeterminedUntil(); wmAfter <= wmBefore {
				t.Errorf("no progress across watchdog trips: watermark %d -> %d", wmBefore, wmAfter)
			}
		})
	}
}

// TestAdvanceCtxPreCancelled checks that an already-expired context aborts
// before any sweep runs and leaves the engine fully resumable.
func TestAdvanceCtxPreCancelled(t *testing.T) {
	nl, delays := faultChain(t)
	e, err := New(nl, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a, _ := nl.Net("a")
	if err := e.Inject(a, 100, logic.V0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = e.AdvanceCtx(ctx, 1000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the chain, got %v", err)
	}
	var se *SimError
	if !errors.As(err, &se) || se.Op != "advance" {
		t.Fatalf("not a *SimError{Op: advance}: %v", err)
	}
	if got := e.Stats().Sweeps; got != 0 {
		t.Errorf("%d sweeps ran under an expired context", got)
	}
	if e.Err() != nil {
		t.Fatalf("cancellation poisoned the engine: %v", e.Err())
	}

	// Resume without the context: the run completes and the waveform is the
	// usual chain response (n3 = 1 at 140 for a=0 at 100).
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	n3, _ := nl.Net("n3")
	q := e.Events(n3)
	if q.Len() == 0 || q.MustAt(0).Time != 140 || q.MustAt(0).Val != logic.V1 {
		t.Errorf("post-cancel resume produced wrong waveform")
	}
}

// TestCancellationStopsOscillation cancels mid-run (from inside a gate
// visit, so the cancel lands while a sweep is executing) and checks the
// engine notices at the next sweep boundary instead of spinning forever on
// the unbounded default sweep budget.
func TestCancellationStopsOscillation(t *testing.T) {
	nl, delays := ringLatch(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visits atomic.Int64
	opts := Options{Mode: ModeSerial} // default MaxSweeps: effectively unbounded
	opts.GateHook = func(netlist.CellID) {
		if visits.Add(1) == 25 {
			cancel()
		}
	}
	e, err := New(nl, testLib, delays, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	startRing(t, e, nl)

	err = e.AdvanceCtx(ctx, 1_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if e.Err() != nil {
		t.Fatalf("cancellation poisoned the engine: %v", e.Err())
	}
	// The abort is at a sweep boundary: the visit counter must be close to
	// the trigger point, not thousands of sweeps later.
	if v := visits.Load(); v > 30 {
		t.Errorf("run kept sweeping after cancel: %d visits", v)
	}
}

// TestLoadSnapshotClearsPoison checks the sanctioned recovery path: a
// poisoned engine refuses snapshots, but restoring a known-good snapshot
// replaces all state and clears the poison.
func TestLoadSnapshotClearsPoison(t *testing.T) {
	nl, delays := faultChain(t)
	var armed atomic.Bool
	opts := Options{Mode: ModeSerial}
	opts.GateHook = func(netlist.CellID) {
		if armed.Load() {
			panic("armed fault")
		}
	}
	e, err := New(nl, testLib, delays, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a, _ := nl.Net("a")
	if err := e.Inject(a, 100, logic.V0); err != nil {
		t.Fatal(err)
	}
	if err := e.Advance(500); err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := e.SaveSnapshot(&good); err != nil {
		t.Fatal(err)
	}

	armed.Store(true)
	if err := e.Inject(a, 600, logic.V1); err != nil {
		t.Fatal(err)
	}
	if err := e.Advance(1000); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("armed advance: %v", err)
	}
	if err := e.SaveSnapshot(&bytes.Buffer{}); !errors.Is(err, ErrPoisoned) {
		t.Errorf("poisoned engine saved a snapshot: %v", err)
	}

	armed.Store(false)
	if err := e.LoadSnapshot(&good); err != nil {
		t.Fatal(err)
	}
	if e.Err() != nil {
		t.Fatalf("LoadSnapshot left poison in place: %v", e.Err())
	}
	if err := e.Inject(a, 600, logic.V1); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(); err != nil {
		t.Fatalf("restored engine cannot run: %v", err)
	}
	n3, _ := nl.Net("n3")
	q := e.Events(n3)
	last := q.MustAt(q.Len() - 1)
	if last.Time != 640 || last.Val != logic.V0 {
		t.Errorf("restored run waveform: last event %+v, want {640 0}", last)
	}
}
