package sim

import (
	"sync/atomic"

	"gatesim/internal/event"
	"gatesim/internal/lane"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/sched"
	"gatesim/internal/truthtab"
)

// gateState is the persistent per-instance simulation state. It holds only
// scalars: everything sized by pin count lives in the engine's flat slot
// arrays (indexed through the plan's InOff/OutOff/StateOff layouts), and
// everything a visit derives beyond the base checkpoint lives in per-worker
// scratch — so a visit is a pure function of (base state, current net
// queues), and late events below a previously probed time are handled
// simply by re-deriving.
type gateState struct {
	// baseNow is the last change point folded into the base checkpoint
	// (engine slot arrays baseCur/baseVals/baseStates/semBase).
	baseNow int64

	detUntil atomic.Int64 // determination frontier of the last visit

	// Soft-resume snapshot validity: the scratch end-state of the last
	// visit is kept in the engine's soft* slot arrays. A new visit resumes
	// from there unless an event arrived below softNow (late events under a
	// previously-probed region), in which case it re-derives from the hard
	// base. This turns steady-state visits from O(window) into O(new work).
	softValid bool
	softNow   int64

	// blocked records that the last visit left unconsumed input events —
	// work only a real visit may pick up. The frontier commit reads it
	// (from the cache line it already holds for detUntil) to keep such
	// readers on the dirty path without re-scanning their input queues; a
	// stale value is safe either way, because the walk-time fallback
	// re-checks the queues themselves (frontierNeedsVisit).
	blocked bool

	// Idle-walk determinedness memo, valid only while the gate's soft
	// input values are unchanged (every real visit path zeroes both; so
	// does LoadSnapshot). maskDet is the largest expired-input set the LUT
	// was proven determined under; maskUndet is the smallest set proven
	// undetermined (0 = none recorded — an expiry set is never empty).
	// Soundness is the antitone property the watermark machinery already
	// relies on (determination is monotone under refinement): determined
	// under S stays determined — with the same value — under any S' ⊆ S,
	// and undetermined under S stays undetermined under any S' ⊇ S. The
	// idle walks discard the probe's non-U value, so determinedness alone
	// decides the walk and a memo hit reproduces the probe's control flow
	// exactly (streams are identical by construction, not just confluence).
	// maskDet is replaced only by a superset and maskUndet only by a
	// subset: a union of determined sets is not necessarily determined.
	maskDet   uint32
	maskUndet uint32

	// futureMin is the earliest time at which the last visit left work
	// behind — an unconsumed input event or an uncommitted pending output
	// transition — or TimeInf when it left none. Consuming work at time t
	// can only create events at or after t, so converge's creep-stop treats
	// a gate whose future work lies at or beyond the advance horizon as
	// quiescent for that horizon: its work is blocked on watermarks the
	// current inputs cannot move (typically the next slice's clock edges),
	// not on the watermark creep of stable loops. Requiring global
	// quiescence here instead livelocks: one horizon-blocked gate keeps the
	// stop rule off while a stable feedback ring creeps its watermarks one
	// arc delay per sweep, forever.
	futureMin int64

	dirty atomic.Bool
}

// scratch is per-worker reusable visit state, sized for the largest gate.
type scratch struct {
	cur    []event.Cursor
	vals   []logic.Value
	states []logic.Value
	sem    []logic.Value
	qIns   []logic.Value
	qOuts  []logic.Value
	qNext  []logic.Value
	outs   []sched.Output
	evIn   []int
	// Lane-mode twins (allocated only when Options.Lanes > 1): per-input
	// lane words, the per-point event words and changed-lane masks, one
	// sched.Output per (output, lane), and per-lane query buffers for the
	// generic interpreter path.
	laneVals   []lane.Word
	qWords     []lane.Word
	evMask     []uint32
	laneOuts   []sched.Output // [out*lanes + lane]
	laneSem    []lane.Word
	laneStates []lane.Word
	laneQOuts  []logic.Value // [out*lanes + lane]
	laneQNext  []logic.Value // [state*lanes + lane]
	lanePendK  []int         // [lane] soft-pend commit prefix counters
	// wm is the per-walk input watermark snapshot for the idle kernels: one
	// coherent read per input per walk instead of one atomic load per input
	// per expiry (conservative under concurrent advancement — a fresher
	// watermark is picked up by the staging its move files).
	wm []int64
	// visit counters, split per kernel class and merged into Engine.stats at
	// sweep end to avoid atomic traffic in the hot loop. visitsWMOnly
	// counts the visits that committed no events — the watermark-only share
	// the frontier plane exists to eliminate (see Stats.VisitsWatermarkOnly).
	// queriesSaved counts LUT probes the idle walks' determinedness memo
	// skipped (see gateState.maskDet).
	visits       [truthtab.NumClasses]int64
	queries      [truthtab.NumClasses]int64
	visitsWMOnly int64
	visitsLane   int64
	queriesSaved int64
	events       int64
}

func newScratch(e *Engine) *scratch {
	maxIn, maxOut, maxState := e.p.MaxInputs, e.p.MaxOutputs, e.p.MaxStates
	sc := &scratch{
		cur:    make([]event.Cursor, maxIn),
		vals:   make([]logic.Value, maxIn),
		states: make([]logic.Value, maxState),
		sem:    make([]logic.Value, maxOut),
		qIns:   make([]logic.Value, maxIn),
		qOuts:  make([]logic.Value, maxOut),
		qNext:  make([]logic.Value, maxState),
		outs:   make([]sched.Output, maxOut),
		evIn:   make([]int, 0, maxIn),
		wm:     make([]int64, maxIn),
	}
	if L := e.lanes; L > 1 {
		sc.laneVals = make([]lane.Word, maxIn)
		sc.qWords = make([]lane.Word, maxIn)
		sc.evMask = make([]uint32, maxIn)
		sc.laneOuts = make([]sched.Output, maxOut*L)
		sc.laneSem = make([]lane.Word, maxOut)
		sc.laneStates = make([]lane.Word, maxState)
		sc.laneQOuts = make([]logic.Value, maxOut*L)
		sc.laneQNext = make([]logic.Value, maxState*L)
		sc.lanePendK = make([]int, L)
	}
	return sc
}

// visit replays the gate's change points from its base checkpoint, commits
// newly determined output events, and advances output watermarks. It
// returns true when anything downstream-visible changed.
func (e *Engine) visit(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	no := int(p.OutOff[id+1]) - outB
	stB := int(p.StateOff[id])
	ns := int(p.StateOff[id+1]) - stB
	tab := p.Tables[p.TableOf[id]]
	arcB := int(p.ArcOff[id])
	inQ := e.inQ[inB : inB+ni]
	outQ := e.outQ[outB : outB+no]
	softCur := e.softCur[inB : inB+ni]
	lastCommitted := e.lastCommitted[outB : outB+no]
	committedUntil := e.committedUntil[outB : outB+no]
	softPend := e.softPend[outB : outB+no]
	minArc := p.MinArc[outB : outB+no]
	sc.visits[truthtab.ClassSeq]++

	// Resume from the soft snapshot when sound: no unconsumed event may lie
	// below the snapshot point. If additionally there are no unconsumed
	// events at all, take the idle fast path: only watermark expiries can
	// matter, and a determined expiry query provably changes nothing.
	resume := g.softValid
	idle := resume
	if resume {
		for i := 0; i < ni; i++ {
			q := inQ[i]
			if softCur[i] < q.Len() {
				idle = false
				if q.MustAt(softCur[i]).Time < g.softNow {
					resume = false
					break
				}
			}
		}
	}
	if resume && idle {
		return e.idleVisit(id, sc)
	}
	var now int64
	if resume {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(softCur[i])
			sc.vals[i] = e.softVals[inB+i]
		}
		copy(sc.states, e.softStates[stB:stB+ns])
		copy(sc.sem, e.softSem[outB:outB+no])
		for o := 0; o < no; o++ {
			sc.outs[o].Restore(lastCommitted[o], softPend[o])
		}
		now = g.softNow
	} else {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(e.baseCur[inB+i])
			sc.vals[i] = e.baseVals[inB+i]
		}
		copy(sc.states, e.baseStates[stB:stB+ns])
		copy(sc.sem, e.semBase[outB:outB+no])
		for o := 0; o < no; o++ {
			sc.outs[o].Reset(lastCommitted[o])
		}
		now = g.baseNow
	}
	detUntil := TimeInf
	for {
		// Next change point: earliest unconsumed event or stable-time
		// expiry strictly after `now`.
		t := TimeInf
		for i := 0; i < ni; i++ {
			q := inQ[i]
			if sc.cur[i].Idx < q.Len() {
				if et := sc.cur[i].Peek(q).Time; et < t {
					t = et
				}
			}
			if w := q.DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}

		// Build the query vector.
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			q := inQ[i]
			if sc.cur[i].Idx < q.Len() {
				if ev := sc.cur[i].Peek(q); ev.Time == t {
					if tab.EdgeSensitive[i] {
						sc.qIns[i] = logic.EdgeCode(sc.vals[i], ev.Val)
					} else {
						sc.qIns[i] = ev.Val.Settle()
					}
					sc.evIn = append(sc.evIn, i)
					continue
				}
			}
			if t >= q.DeterminedUntil() {
				sc.qIns[i] = logic.VU
			} else {
				sc.qIns[i] = sc.vals[i]
			}
		}
		tab.LookupInto(sc.qIns[:ni], sc.states[:ns], sc.qOuts[:no], sc.qNext[:ns])
		sc.queries[truthtab.ClassSeq]++

		undet := false
		for _, v := range sc.qOuts[:no] {
			if v == logic.VU {
				undet = true
				break
			}
		}
		if !undet {
			for _, v := range sc.qNext[:ns] {
				if v == logic.VU {
					undet = true
					break
				}
			}
		}
		if undet {
			detUntil = t
			break
		}

		// Consume the change point into scratch.
		if len(sc.evIn) > 0 {
			for o := 0; o < no; o++ {
				nv := sc.qOuts[o]
				if nv == sc.sem[o] {
					continue
				}
				d := int64(1) << 62
				for _, i := range sc.evIn {
					if ad := sched.DelayFor(p.Arcs[arcB+o*ni+i], nv); ad < d {
						d = ad
					}
				}
				sc.outs[o].Schedule(t+d, nv)
				sc.sem[o] = nv
			}
			for _, i := range sc.evIn {
				sc.vals[i] = sc.cur[i].Peek(inQ[i]).Val.Settle()
				sc.cur[i].Advance()
			}
		}
		copy(sc.states[:ns], sc.qNext[:ns])
		now = t
	}
	g.detUntil.Store(detUntil)

	// Commit determined output transitions and advance watermarks.
	progress := false
	for o := 0; o < no; o++ {
		limit := detUntil
		if limit < TimeInf {
			limit += minArc[o]
			if limit > TimeInf {
				limit = TimeInf
			}
		}
		commitThrough := limit - 1
		q := outQ[o]
		newEvents := false
		for {
			te, ok := sc.outs[o].NextPending()
			if !ok || te > commitThrough {
				break
			}
			ev := sc.outs[o].PopFront()
			if ev.Time > committedUntil[o] {
				if q != nil {
					q.Append(ev.Time, ev.Val)
					newEvents = true
					sc.events++
				}
				lastCommitted[o] = ev.Val
			}
		}
		if commitThrough > committedUntil[o] {
			committedUntil[o] = commitThrough
		}
		wOld := int64(-1)
		if q != nil && q.DeterminedUntil() < limit {
			wOld = q.DeterminedUntil()
			q.SetDeterminedUntil(limit)
		}
		if newEvents || wOld >= 0 {
			progress = true
			e.markLoads(p.OutNet[outB+o], wOld, newEvents)
		}
	}

	futureMin := int64(TimeInf)
	for o := 0; o < no; o++ {
		if te, ok := sc.outs[o].NextPending(); ok && te < futureMin {
			futureMin = te
		}
	}
	for i := 0; i < ni; i++ {
		if sc.cur[i].Idx < inQ[i].Len() {
			if et := sc.cur[i].Peek(inQ[i]).Time; et < futureMin {
				futureMin = et
			}
		}
	}
	g.futureMin = futureMin

	// Save the soft snapshot for the next visit.
	g.softNow = now
	for i := 0; i < ni; i++ {
		softCur[i] = sc.cur[i].Idx
		e.softVals[inB+i] = sc.vals[i]
	}
	copy(e.softStates[stB:stB+ns], sc.states[:ns])
	copy(e.softSem[outB:outB+no], sc.sem[:no])
	for o := 0; o < no; o++ {
		softPend[o] = append(softPend[o][:0], sc.outs[o].Pend()...)
	}
	g.softValid = true
	return progress
}

// idleVisit advances a gate that has no unconsumed input events: it walks
// the stable-time expiries to find the new determination frontier (values
// and states cannot change without events — any determined expiry outcome
// must agree with the "nothing happened" refinement), commits pending
// transitions that the advancing frontier finalizes, and bumps watermarks.
func (e *Engine) idleVisit(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	no := int(p.OutOff[id+1]) - outB
	stB := int(p.StateOff[id])
	ns := int(p.StateOff[id+1]) - stB
	tab := p.Tables[p.TableOf[id]]
	inQ := e.inQ[inB : inB+ni]
	outQ := e.outQ[outB : outB+no]
	lastCommitted := e.lastCommitted[outB : outB+no]
	committedUntil := e.committedUntil[outB : outB+no]
	softPend := e.softPend[outB : outB+no]
	minArc := p.MinArc[outB : outB+no]

	now := g.softNow
	detUntil := TimeInf
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			if w := inQ[i].DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}
		for i := 0; i < ni; i++ {
			if t >= inQ[i].DeterminedUntil() {
				sc.qIns[i] = logic.VU
			} else {
				sc.qIns[i] = e.softVals[inB+i]
			}
		}
		tab.LookupInto(sc.qIns[:ni], e.softStates[stB:stB+ns], sc.qOuts[:no], sc.qNext[:ns])
		sc.queries[truthtab.ClassSeq]++
		undet := false
		for _, v := range sc.qOuts[:no] {
			if v == logic.VU {
				undet = true
				break
			}
		}
		if !undet {
			for _, v := range sc.qNext[:ns] {
				if v == logic.VU {
					undet = true
					break
				}
			}
		}
		if undet {
			detUntil = t
			break
		}
		now = t
	}
	g.softNow = now
	g.detUntil.Store(detUntil)

	progress := false
	for o := 0; o < no; o++ {
		limit := detUntil
		if limit < TimeInf {
			limit += minArc[o]
			if limit > TimeInf {
				limit = TimeInf
			}
		}
		commitThrough := limit - 1
		q := outQ[o]
		newEvents := false
		pend := softPend[o]
		k := 0
		for k < len(pend) && pend[k].Time <= commitThrough {
			ev := pend[k]
			k++
			if ev.Time > committedUntil[o] {
				if q != nil {
					q.Append(ev.Time, ev.Val)
					newEvents = true
					sc.events++
				}
				lastCommitted[o] = ev.Val
			}
		}
		if k > 0 {
			softPend[o] = append(pend[:0], pend[k:]...)
		}
		if commitThrough > committedUntil[o] {
			committedUntil[o] = commitThrough
		}
		wOld := int64(-1)
		if q != nil && q.DeterminedUntil() < limit {
			wOld = q.DeterminedUntil()
			q.SetDeterminedUntil(limit)
		}
		if newEvents || wOld >= 0 {
			progress = true
			e.markLoads(p.OutNet[outB+o], wOld, newEvents)
		}
	}

	futureMin := int64(TimeInf)
	for o := 0; o < no; o++ {
		for _, ev := range softPend[o] {
			if ev.Time < futureMin {
				futureMin = ev.Time
			}
		}
	}
	g.futureMin = futureMin
	return progress
}

// markLoads flags gates fed by the net as needing a visit. New events
// always require one; a watermark-only advance matters only to loads whose
// determination frontier was waiting at or beyond the old watermark (wOld;
// pass -1 when the watermark did not move).
//
// The frontier filter is inclusive at the boundary, matching the exclusive
// watermark semantics (event.Queue.DeterminedUntil): a reader whose
// detUntil equals wOld stopped at the first time the net's value was NOT
// determined — time wOld itself — so this advance is exactly what unblocks
// it and it must be marked. A reader with detUntil == wOld-1 stopped while
// the net was still determined at its frontier; it is blocked on something
// else (another input, or a pending output this net cannot finalize) and
// the advance cannot unblock it. TestMarkLoadsBoundary pins both sides.
//
// With the frontier plane on, a watermark-only advance does not scan the
// readers at all: the net is staged in O(1) on the frontier worklist —
// repeated moves coalesce onto one staging carrying their minimum wOld —
// and the drain publishes the accumulated advance to the whole reader
// cloud in one frontier commit, applying this same detUntil >= wOld filter
// per reader at drain time (conservative: detUntil only advances, so a
// drain-time read at worst wakes a reader whose walk is a no-op). Nets
// with no eligible reader at all (plan.FrontNetNone) skip the plane and
// keep the baseline loop.
func (e *Engine) markLoads(nid netlist.NetID, wOld int64, newEvents bool) {
	p := e.p
	if !newEvents && e.front.on && p.NetFront[nid] != plan.FrontNetNone {
		// Watermark-only move (wOld >= 0 by the call sites).
		e.stageFrontierNet(nid, wOld)
		return
	}
	for k := p.FanOff[nid]; k < p.FanOff[nid+1]; k++ {
		cell := p.FanCell[k]
		if newEvents || (wOld >= 0 && e.gate[cell].detUntil.Load() >= wOld) {
			e.markDirty(cell)
		}
	}
}

// checkpoint folds the fully determined, fully committed prefix of the
// gate's change points into its base state so that the event storage below
// it can be trimmed. Called between stream slices, single-threaded per gate
// (but safe to run gates in parallel).
func (e *Engine) checkpoint(id netlist.CellID, sc *scratch) {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	no := int(p.OutOff[id+1]) - outB
	stB := int(p.StateOff[id])
	ns := int(p.StateOff[id+1]) - stB
	tab := p.Tables[p.TableOf[id]]
	inQ := e.inQ[inB : inB+ni]
	baseCur := e.baseCur[inB : inB+ni]
	baseVals := e.baseVals[inB : inB+ni]
	baseStates := e.baseStates[stB : stB+ns]
	semBase := e.semBase[outB : outB+no]
	maxArc := p.MaxArc[id]

	// Safety cutoffs: all inputs still determined, and any output event the
	// folded change points could generate must already be committed.
	cutoff := int64(TimeInf)
	for i := 0; i < ni; i++ {
		if w := inQ[i].DeterminedUntil(); w < cutoff {
			cutoff = w
		}
	}
	for o := 0; o < no; o++ {
		if c := e.committedUntil[outB+o] - maxArc; c+1 < cutoff {
			cutoff = c + 1
		}
	}
	if cutoff <= g.baseNow {
		return
	}

	for i := 0; i < ni; i++ {
		sc.cur[i] = inQ[i].NewCursor(baseCur[i])
	}
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			q := inQ[i]
			if sc.cur[i].Idx < q.Len() {
				if et := sc.cur[i].Peek(q).Time; et < t {
					t = et
				}
			}
		}
		if t >= cutoff {
			break
		}
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			q := inQ[i]
			if sc.cur[i].Idx < q.Len() {
				if ev := sc.cur[i].Peek(q); ev.Time == t {
					if tab.EdgeSensitive[i] {
						sc.qIns[i] = logic.EdgeCode(baseVals[i], ev.Val)
					} else {
						sc.qIns[i] = ev.Val.Settle()
					}
					sc.evIn = append(sc.evIn, i)
					continue
				}
			}
			sc.qIns[i] = baseVals[i]
		}
		tab.LookupInto(sc.qIns[:ni], baseStates, sc.qOuts[:no], sc.qNext[:ns])
		for o := 0; o < no; o++ {
			semBase[o] = sc.qOuts[o]
		}
		copy(baseStates, sc.qNext[:ns])
		for _, i := range sc.evIn {
			baseVals[i] = sc.cur[i].Peek(inQ[i]).Val.Settle()
			sc.cur[i].Advance()
			baseCur[i] = sc.cur[i].Idx
		}
		g.baseNow = t
	}
	// The base may have consumed past the soft snapshot; drop it rather
	// than reason about partial overlap.
	if g.softValid {
		if g.baseNow > g.softNow {
			g.softValid = false
		} else {
			for i := 0; i < ni; i++ {
				if e.softCur[inB+i] < baseCur[i] {
					g.softValid = false
					break
				}
			}
		}
	}
}
