package sim

import (
	"sync/atomic"

	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/sched"
	"gatesim/internal/truthtab"
)

// Compiled-script execution: the plan lowers each sweep segment into a flat
// instruction array (plan.Script) and the engine replays it over a dirty
// bitset — one atomic swap tests-and-clears 64 gates, and a segment whose
// population counter reads zero is skipped without touching its words.
//
// Dirtiness protocol. markDirty sets the gate's bit with a CAS-or that
// returns the old word; only the 0→1 winner increments the segment's
// population. The replay loop swaps each word to zero and decrements the
// population by the word's popcount. The counter therefore never needs a
// clearing store that could race with concurrent marks — a mark that lands
// after its word was swapped leaves bit and count consistent and is served
// next sweep. A skip based on a momentarily-zero counter is equally safe:
// the in-flight mark's bit survives, and the visit that produced the mark
// was itself claimed this sweep, so convergence cannot terminate early.

// orUint64 atomically ors mask into *addr and returns the previous value.
// (sync/atomic gained OrUint64 in Go 1.23; the module targets 1.22.)
func orUint64(addr *uint64, mask uint64) uint64 {
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == mask {
			return old
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return old
		}
	}
}

// markDirty marks one gate for the next scan: the per-gate flag on the
// interpreted schedule, the gate's bitset bit (plus the owning segment's
// population count on a 0→1 transition) on the compiled one. Marks made
// while the relax pass is draining are tallied so converge knows the pass
// owes the next sweep work (see relaxState.draining).
func (e *Engine) markDirty(cell netlist.CellID) {
	if e.relax.draining {
		e.relax.passDirty++
	}
	if e.dirtyBits == nil {
		g := &e.gate[cell]
		if !g.dirty.Load() {
			g.dirty.Store(true)
		}
		return
	}
	bit := e.p.BitOf[cell]
	w := &e.dirtyBits[bit>>6]
	mask := uint64(1) << (uint(bit) & 63)
	if atomic.LoadUint64(w)&mask != 0 {
		return
	}
	if orUint64(w, mask)&mask == 0 {
		atomic.AddInt64(&e.segDirty[e.p.SegOf[cell]], 1)
	}
}

// visitScriptComb1 is visitComb1 replayed from a compiled instruction: the
// same straight-line ClassComb1 evaluation, but every plan-derived operand
// (slot bases, LUT, output net, minArc, the uniform-arc delays) comes
// pre-gathered from the ScriptOp instead of five scattered plan arrays. The
// uniform-delay case is fully branch-free: op.Delay is indexed by the
// settled new output value, matching sched.DelayFor verdict-for-verdict.
// Committed streams are byte-identical to the interpreted path's, which the
// script equivalence tests check.
func (e *Engine) visitScriptComb1(op *plan.ScriptOp, sc *scratch) bool {
	g := &e.gate[op.Gate]
	inB := int(op.InBase)
	ni := int(op.NIn)
	outB := int(op.OutSlot)
	lut := op.LUT
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]
	softCur := e.softCur[inB : inB+ni]
	sc.visits[truthtab.ClassComb1]++

	// Soft-resume / idle checks, exactly as in visit.
	resume := g.softValid
	idle := resume
	if resume {
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if softCur[i] < iq.Len() {
				idle = false
				if iq.MustAt(softCur[i]).Time < g.softNow {
					resume = false
					break
				}
			}
		}
	}
	if resume && idle {
		return e.idleScriptComb1(op, sc)
	}
	out := &sc.outs[0]
	var now int64
	var sem logic.Value
	if resume {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(softCur[i])
			sc.vals[i] = e.softVals[inB+i]
		}
		sem = e.softSem[outB]
		out.Restore(e.lastCommitted[outB], e.softPend[outB])
		now = g.softNow
	} else {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(e.baseCur[inB+i])
			sc.vals[i] = e.baseVals[inB+i]
		}
		sem = e.semBase[outB]
		out.Reset(e.lastCommitted[outB])
		now = g.baseNow
	}
	detUntil := TimeInf
	for {
		// Next change point: earliest unconsumed event or stable-time
		// expiry strictly after `now`.
		t := TimeInf
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if sc.cur[i].Idx < iq.Len() {
				if et := sc.cur[i].Peek(iq).Time; et < t {
					t = et
				}
			}
			if w := iq.DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}

		// Build the packed query index directly: settled values and U are
		// their own 3-bit fields.
		idx := 0
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			v := sc.vals[i]
			if sc.cur[i].Idx < iq.Len() {
				if ev := sc.cur[i].Peek(iq); ev.Time == t {
					v = ev.Val.Settle()
					sc.evIn = append(sc.evIn, i)
					idx |= int(v) << (3 * i)
					continue
				}
			}
			if t >= iq.DeterminedUntil() {
				v = logic.VU
			}
			idx |= int(v) << (3 * i)
		}
		nv := lut.Data[idx]
		sc.queries[truthtab.ClassComb1]++
		if nv == logic.VU {
			detUntil = t
			break
		}

		// Consume the change point.
		if len(sc.evIn) > 0 {
			if nv != sem {
				var d int64
				if op.Uniform {
					d = op.Delay[nv]
				} else {
					arcB := int(op.ArcBase)
					d = int64(1) << 62
					for _, i := range sc.evIn {
						if ad := sched.DelayFor(e.p.Arcs[arcB+i], nv); ad < d {
							d = ad
						}
					}
				}
				out.Schedule(t+d, nv)
				sem = nv
			}
			for _, i := range sc.evIn {
				sc.vals[i] = sc.cur[i].Peek(inQ[i]).Val.Settle()
				sc.cur[i].Advance()
			}
		}
		now = t
	}
	g.detUntil.Store(detUntil)

	// Commit the single output and advance its watermark.
	limit := detUntil
	if limit < TimeInf {
		limit += op.MinArc
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	for {
		te, ok := out.NextPending()
		if !ok || te > commitThrough {
			break
		}
		ev := out.PopFront()
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(op.OutNet, wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	if te, ok := out.NextPending(); ok {
		futureMin = te
	}
	blocked := false
	for i := 0; i < ni; i++ {
		if sc.cur[i].Idx < inQ[i].Len() {
			blocked = true
			if et := sc.cur[i].Peek(inQ[i]).Time; et < futureMin {
				futureMin = et
			}
		}
	}
	g.futureMin = futureMin
	g.blocked = blocked

	// Save the soft snapshot for the next visit.
	g.softNow = now
	for i := 0; i < ni; i++ {
		softCur[i] = sc.cur[i].Idx
		e.softVals[inB+i] = sc.vals[i]
	}
	e.softSem[outB] = sem
	e.softPend[outB] = append(e.softPend[outB][:0], out.Pend()...)
	g.softValid = true
	return progress
}

// idleScriptComb1 is idleComb1 with instruction operands: a
// watermark-expiry-only walk with a packed-LUT probe per expiry and a
// single output to commit from the soft pending list.
func (e *Engine) idleScriptComb1(op *plan.ScriptOp, sc *scratch) bool {
	g := &e.gate[op.Gate]
	inB := int(op.InBase)
	ni := int(op.NIn)
	outB := int(op.OutSlot)
	lut := op.LUT
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]

	now := g.softNow
	detUntil := TimeInf
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			if w := inQ[i].DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}
		idx := 0
		for i := 0; i < ni; i++ {
			v := e.softVals[inB+i]
			if t >= inQ[i].DeterminedUntil() {
				v = logic.VU
			}
			idx |= int(v) << (3 * i)
		}
		sc.queries[truthtab.ClassComb1]++
		if lut.Data[idx] == logic.VU {
			detUntil = t
			break
		}
		now = t
	}
	g.softNow = now
	g.detUntil.Store(detUntil)

	limit := detUntil
	if limit < TimeInf {
		limit += op.MinArc
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	pend := e.softPend[outB]
	k := 0
	for k < len(pend) && pend[k].Time <= commitThrough {
		ev := pend[k]
		k++
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if k > 0 {
		e.softPend[outB] = append(pend[:0], pend[k:]...)
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(op.OutNet, wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	for _, ev := range e.softPend[outB] {
		if ev.Time < futureMin {
			futureMin = ev.Time
		}
	}
	g.futureMin = futureMin
	return progress
}
