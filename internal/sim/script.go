package sim

import (
	"sync/atomic"

	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/sched"
	"gatesim/internal/truthtab"
)

// Compiled-script execution: the plan lowers each sweep segment into a flat
// instruction array (plan.Script) and the engine replays it over a dirty
// bitset — one atomic swap tests-and-clears 64 gates, and a segment whose
// population counter reads zero is skipped without touching its words.
//
// Dirtiness protocol. markDirty sets the gate's bit with a CAS-or that
// returns the old word; only the 0→1 winner increments the segment's
// population. The replay loop swaps each word to zero and decrements the
// population by the word's popcount. The counter therefore never needs a
// clearing store that could race with concurrent marks — a mark that lands
// after its word was swapped leaves bit and count consistent and is served
// next sweep. A skip based on a momentarily-zero counter is equally safe:
// the in-flight mark's bit survives, and the visit that produced the mark
// was itself claimed this sweep, so convergence cannot terminate early.

// orUint64 atomically ors mask into *addr and returns the previous value.
// (sync/atomic gained OrUint64 in Go 1.23; the module targets 1.22.)
func orUint64(addr *uint64, mask uint64) uint64 {
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == mask {
			return old
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return old
		}
	}
}

// markDirty marks one gate for the next scan: the per-gate flag on the
// interpreted schedule, the gate's bitset bit (plus the owning segment's
// population count on a 0→1 transition) on the compiled one. Marks made
// while the frontier pass is draining are tallied so converge knows the
// pass owes the next sweep work (see frontierState.draining).
func (e *Engine) markDirty(cell netlist.CellID) {
	if e.front.draining {
		e.front.passDirty++
	}
	if e.dirtyBits == nil {
		g := &e.gate[cell]
		if !g.dirty.Load() {
			g.dirty.Store(true)
		}
		return
	}
	bit := e.p.BitOf[cell]
	w := &e.dirtyBits[bit>>6]
	mask := uint64(1) << (uint(bit) & 63)
	if atomic.LoadUint64(w)&mask != 0 {
		return
	}
	if orUint64(w, mask)&mask == 0 {
		atomic.AddInt64(&e.segDirty[e.p.SegOf[cell]], 1)
	}
}

// visitScriptComb1 is visitComb1 replayed from a compiled instruction: the
// same straight-line ClassComb1 evaluation, but every plan-derived operand
// (slot bases, LUT, output net, minArc, the uniform-arc delays) comes
// pre-gathered from the ScriptOp instead of five scattered plan arrays. The
// uniform-delay case is fully branch-free: op.Delay is indexed by the
// settled new output value, matching sched.DelayFor verdict-for-verdict.
// Committed streams are byte-identical to the interpreted path's, which the
// script equivalence tests check.
func (e *Engine) visitScriptComb1(op *plan.ScriptOp, sc *scratch) bool {
	g := &e.gate[op.Gate]
	inB := int(op.InBase)
	ni := int(op.NIn)
	outB := int(op.OutSlot)
	lut := op.LUT
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]
	softCur := e.softCur[inB : inB+ni]
	sc.visits[truthtab.ClassComb1]++

	// Soft-resume / idle checks, exactly as in visit.
	resume := g.softValid
	idle := resume
	if resume {
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if softCur[i] < iq.Len() {
				idle = false
				if iq.MustAt(softCur[i]).Time < g.softNow {
					resume = false
					break
				}
			}
		}
	}
	if resume && idle {
		return e.idleScriptComb1(op, sc)
	}
	// A real visit may change the soft input values the idle walks' memo
	// was proven against; drop it (cheap, and stale masks are unsound).
	g.maskDet, g.maskUndet = 0, 0
	out := &sc.outs[0]
	var now int64
	var sem logic.Value
	if resume {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(softCur[i])
			sc.vals[i] = e.softVals[inB+i]
		}
		sem = e.softSem[outB]
		out.Restore(e.lastCommitted[outB], e.softPend[outB])
		now = g.softNow
	} else {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(e.baseCur[inB+i])
			sc.vals[i] = e.baseVals[inB+i]
		}
		sem = e.semBase[outB]
		out.Reset(e.lastCommitted[outB])
		now = g.baseNow
	}
	detUntil := TimeInf
	frontOn := e.front.on
	fullU := uint32(0)
	if frontOn && lut.AllU {
		fullU = uint32(1)<<uint(ni) - 1
	}
	for {
		// Next change point: earliest unconsumed event or stable-time
		// expiry strictly after `now`.
		t := TimeInf
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if sc.cur[i].Idx < iq.Len() {
				if et := sc.cur[i].Peek(iq).Time; et < t {
					t = et
				}
			}
			if w := iq.DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}

		// Build the packed query index directly: settled values and U are
		// their own 3-bit fields. exp tracks the expired pins so trailing
		// pure-expiry probes can seed the idle walks' determinedness memo
		// (see visitComb1).
		idx := 0
		var exp uint32
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			v := sc.vals[i]
			if sc.cur[i].Idx < iq.Len() {
				if ev := sc.cur[i].Peek(iq); ev.Time == t {
					v = ev.Val.Settle()
					sc.evIn = append(sc.evIn, i)
					idx |= int(v) << (3 * i)
					continue
				}
			}
			if t >= iq.DeterminedUntil() {
				v = logic.VU
				exp |= 1 << uint(i)
			}
			idx |= int(v) << (3 * i)
		}
		// Every pin expired and the function is input-sensitive: U by
		// construction, no probe needed (see visitComb1; fullU is zero
		// unless the frontier is armed and the LUT qualifies).
		if exp == fullU && fullU != 0 {
			sc.queriesSaved++
			detUntil = t
			break
		}
		nv := lut.Data[idx]
		sc.queries[truthtab.ClassComb1]++
		if nv == logic.VU {
			if frontOn && len(sc.evIn) == 0 && (g.maskUndet == 0 || exp&^g.maskUndet == 0) {
				g.maskUndet = exp
			}
			detUntil = t
			break
		}

		// Consume the change point.
		if len(sc.evIn) > 0 {
			g.maskDet, g.maskUndet = 0, 0
			if nv != sem {
				var d int64
				if op.Uniform {
					d = op.Delay[nv]
				} else {
					arcB := int(op.ArcBase)
					d = int64(1) << 62
					for _, i := range sc.evIn {
						if ad := sched.DelayFor(e.p.Arcs[arcB+i], nv); ad < d {
							d = ad
						}
					}
				}
				out.Schedule(t+d, nv)
				sem = nv
			}
			for _, i := range sc.evIn {
				sc.vals[i] = sc.cur[i].Peek(inQ[i]).Val.Settle()
				sc.cur[i].Advance()
			}
		} else if frontOn && exp&g.maskDet == g.maskDet {
			g.maskDet = exp
		}
		now = t
	}
	g.detUntil.Store(detUntil)

	// Commit the single output and advance its watermark.
	limit := detUntil
	if limit < TimeInf {
		limit += op.MinArc
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	for {
		te, ok := out.NextPending()
		if !ok || te > commitThrough {
			break
		}
		ev := out.PopFront()
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(op.OutNet, wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	if te, ok := out.NextPending(); ok {
		futureMin = te
	}
	blocked := false
	for i := 0; i < ni; i++ {
		if sc.cur[i].Idx < inQ[i].Len() {
			blocked = true
			if et := sc.cur[i].Peek(inQ[i]).Time; et < futureMin {
				futureMin = et
			}
		}
	}
	g.futureMin = futureMin
	g.blocked = blocked

	// Save the soft snapshot for the next visit.
	g.softNow = now
	for i := 0; i < ni; i++ {
		softCur[i] = sc.cur[i].Idx
		e.softVals[inB+i] = sc.vals[i]
	}
	e.softSem[outB] = sem
	e.softPend[outB] = append(e.softPend[outB][:0], out.Pend()...)
	g.softValid = true
	return progress
}

// idleScriptComb1 is idleComb1 with instruction operands: a
// watermark-expiry-only walk with a packed-LUT probe per expiry and a
// single output to commit from the soft pending list.
func (e *Engine) idleScriptComb1(op *plan.ScriptOp, sc *scratch) bool {
	g := &e.gate[op.Gate]
	inB := int(op.InBase)
	ni := int(op.NIn)
	outB := int(op.OutSlot)
	lut := op.LUT
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]

	// Watermark snapshot + determinedness memo, exactly as in idleComb1.
	wm := sc.wm[:ni]
	var expMax uint32
	tLast := int64(0)
	for i := 0; i < ni; i++ {
		w := inQ[i].DeterminedUntil()
		wm[i] = w
		if w < TimeInf {
			expMax |= 1 << uint(i)
			if w > tLast {
				tLast = w
			}
		}
	}
	now := g.softNow
	detUntil := TimeInf
	frontOn := e.front.on
	// Maximal-set shortcut, as in idleComb1: one determined probe with
	// every finite-watermark input expired settles the entire walk.
	full := uint32(1)<<uint(ni) - 1
	if tLast > now && g.maskDet != 0 && !(expMax == full && lut.AllU) &&
		(g.maskUndet == 0 || expMax&g.maskUndet != g.maskUndet) {
		det := false
		if expMax&^g.maskDet == 0 {
			sc.queriesSaved++
			det = true
		} else {
			idx := 0
			for i := 0; i < ni; i++ {
				v := e.softVals[inB+i]
				if expMax&(1<<uint(i)) != 0 {
					v = logic.VU
				}
				idx |= int(v) << (3 * i)
			}
			sc.queries[truthtab.ClassComb1]++
			if lut.Data[idx] != logic.VU {
				det = true
				if expMax&g.maskDet == g.maskDet {
					g.maskDet = expMax
				}
			} else if g.maskUndet == 0 || expMax&^g.maskUndet == 0 {
				g.maskUndet = expMax
			}
		}
		if det {
			now = tLast
		}
	}
	// Incremental probe state, as in idleComb1: exp and the packed index
	// are maintained in place as the walk crosses watermarks instead of
	// being rebuilt O(ni) at every change point.
	exp := uint32(0)
	idx := 0
	for i := 0; i < ni; i++ {
		v := e.softVals[inB+i]
		if now >= wm[i] {
			v = logic.VU
			exp |= 1 << uint(i)
		}
		idx |= int(v) << (3 * i)
	}
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			if w := wm[i]; w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}
		for i := 0; i < ni; i++ {
			if b := uint32(1) << uint(i); exp&b == 0 && t >= wm[i] {
				exp |= b
				idx = idx&^(7<<(3*uint(i))) | int(logic.VU)<<(3*uint(i))
			}
		}
		if frontOn && exp == full && lut.AllU {
			sc.queriesSaved++
			detUntil = t
			break
		}
		if g.maskUndet != 0 && exp&g.maskUndet == g.maskUndet {
			sc.queriesSaved++
			detUntil = t
			break
		}
		if exp&^g.maskDet == 0 {
			sc.queriesSaved++
			now = t
			continue
		}
		sc.queries[truthtab.ClassComb1]++
		if lut.Data[idx] == logic.VU {
			if frontOn && (g.maskUndet == 0 || exp&^g.maskUndet == 0) {
				g.maskUndet = exp
			}
			detUntil = t
			break
		}
		if frontOn && exp&g.maskDet == g.maskDet {
			g.maskDet = exp
		}
		now = t
	}
	g.softNow = now
	g.detUntil.Store(detUntil)

	limit := detUntil
	if limit < TimeInf {
		limit += op.MinArc
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	pend := e.softPend[outB]
	k := 0
	for k < len(pend) && pend[k].Time <= commitThrough {
		ev := pend[k]
		k++
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if k > 0 {
		e.softPend[outB] = append(pend[:0], pend[k:]...)
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(op.OutNet, wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	for _, ev := range e.softPend[outB] {
		if ev.Time < futureMin {
			futureMin = ev.Time
		}
	}
	g.futureMin = futureMin
	return progress
}
