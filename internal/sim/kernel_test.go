package sim

import (
	"fmt"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

// mixedKernelDesign builds a small netlist that exercises both kernel
// classes inside the combinational levels — FA/HA are stateless two-output
// cells (ClassSeq) wired between packable single-output gates (ClassComb1) —
// plus a real sequential phase (DFF).
func mixedKernelDesign(t *testing.T) (*netlist.Netlist, *sdf.Delays) {
	t.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("mixed", lib)
	for _, p := range []string{"a", "b", "cin", "clk"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	add := func(name, cell string, pins map[string]string) {
		t.Helper()
		if _, err := nl.AddInstance(name, cell, pins); err != nil {
			t.Fatal(err)
		}
	}
	add("fa0", "FA", map[string]string{"A": "a", "B": "b", "CIN": "cin", "SUM": "s0", "COUT": "c0"})
	add("inv0", "INV", map[string]string{"A": "s0", "Y": "n0"})
	add("ha0", "HA", map[string]string{"A": "n0", "B": "c0", "SUM": "s1", "COUT": "c1"})
	add("nand0", "NAND2", map[string]string{"A": "s1", "B": "c1", "Y": "n1"})
	add("xor0", "XOR2", map[string]string{"A": "n1", "B": "c0", "Y": "n2"})
	add("ff0", "DFF_P", map[string]string{"CLK": "clk", "D": "n2", "Q": "q0", "QN": "qn0"})
	add("nand1", "NAND2", map[string]string{"A": "q0", "B": "n1", "Y": "out"})
	return nl, sdf.Uniform(nl, 10)
}

func mixedKernelStim(nl *netlist.Netlist, t *testing.T) []gen.Change {
	t.Helper()
	net := func(name string) netlist.NetID {
		nid, ok := nl.Net(name)
		if !ok {
			t.Fatalf("net %s missing", name)
		}
		return nid
	}
	var stim []gen.Change
	for cyc := int64(0); cyc < 12; cyc++ {
		base := 1000 + cyc*2000
		stim = append(stim,
			gen.Change{Net: net("clk"), Time: base, Val: logic.V1},
			gen.Change{Net: net("clk"), Time: base + 1000, Val: logic.V0},
			gen.Change{Net: net("a"), Time: base + 300, Val: logic.Value(cyc % 2)},
			gen.Change{Net: net("b"), Time: base + 500, Val: logic.Value((cyc / 2) % 2)},
			gen.Change{Net: net("cin"), Time: base + 700, Val: logic.Value((cyc / 3) % 2)},
		)
	}
	return stim
}

// runCollect runs one engine over the plan and returns its event streams.
func runCollect(t *testing.T, p *plan.Plan, stim []gen.Change, opts Options) map[netlist.NetID][]event.Event {
	t.Helper()
	e, err := NewFromPlan(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	return collectEngine(e)
}

// TestKernelMixedEquivalence checks, on a fixture whose levels mix both
// kernel classes, that the kernelized engine, the generic-path engine
// (DisableKernels) and the reference simulator produce byte-identical
// committed event streams across all execution modes.
func TestKernelMixedEquivalence(t *testing.T) {
	force4Procs(t)
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	// Reference stream from the (kernelized) event-driven oracle.
	ref, err := refsim.NewFromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{ModeSerial, ModeParallel, ModeManycore} {
		opts := pooledOpts(mode)
		kern := runCollect(t, p, stim, opts)
		diffStreams(t, nl, want, kern, fmt.Sprintf("kernels mode=%v vs refsim", mode))

		opts.DisableKernels = true
		generic := runCollect(t, p, stim, opts)
		diffStreams(t, nl, kern, generic, fmt.Sprintf("mode=%v kernels vs generic", mode))
	}
}

// TestKernelGeneratedEquivalence repeats the kernels-vs-generic stream
// comparison on larger generated designs (FFs, latches, scan chains, clock
// gates and a deep comb cloud) across seeds.
func TestKernelGeneratedEquivalence(t *testing.T) {
	force4Procs(t)
	for seed := int64(0); seed < 3; seed++ {
		d, err := gen.Build(smallSpec(seed + 700))
		if err != nil {
			t.Fatal(err)
		}
		delays := gen.Delays(d, 7)
		p, err := plan.Build(d.Netlist, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.7, Seed: seed, ScanBurst: 5})
		for _, mode := range []Mode{ModeSerial, ModeParallel} {
			opts := pooledOpts(mode)
			kern := runCollect(t, p, stim, opts)
			opts.DisableKernels = true
			generic := runCollect(t, p, stim, opts)
			diffStreams(t, d.Netlist, kern, generic, fmt.Sprintf("seed=%d mode=%v kernels vs generic", seed, mode))
		}
	}
}

// TestKernelCounters checks the per-kernel visit/query split: with kernels
// on both classes are exercised and the splits sum to the totals; with
// kernels off everything lands on ClassSeq. The obs counters must mirror
// the Stats fields.
func TestKernelCounters(t *testing.T) {
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	reg := obs.NewRegistry()
	opts := Options{Mode: ModeSerial, Metrics: reg}
	e, err := NewFromPlan(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.VisitsByKernel[truthtab.ClassComb1] == 0 || st.VisitsByKernel[truthtab.ClassSeq] == 0 {
		t.Fatalf("expected visits in both kernel classes, got %v", st.VisitsByKernel)
	}
	if sum := st.VisitsByKernel[truthtab.ClassSeq] + st.VisitsByKernel[truthtab.ClassComb1]; sum != st.Visits {
		t.Errorf("VisitsByKernel sums to %d, Visits = %d", sum, st.Visits)
	}
	if sum := st.QueriesByKernel[truthtab.ClassSeq] + st.QueriesByKernel[truthtab.ClassComb1]; sum != st.Queries {
		t.Errorf("QueriesByKernel sums to %d, Queries = %d", sum, st.Queries)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim.visits_by_kernel.comb1"]; got != st.VisitsByKernel[truthtab.ClassComb1] {
		t.Errorf("sim.visits_by_kernel.comb1 counter = %d, Stats = %d", got, st.VisitsByKernel[truthtab.ClassComb1])
	}
	if got := snap.Counters["sim.queries_by_kernel.seq"]; got != st.QueriesByKernel[truthtab.ClassSeq] {
		t.Errorf("sim.queries_by_kernel.seq counter = %d, Stats = %d", got, st.QueriesByKernel[truthtab.ClassSeq])
	}

	// Generic path: the same design, all visits on the seq interpreter.
	opts = Options{Mode: ModeSerial, DisableKernels: true}
	g, err := NewFromPlan(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, s := range stim {
		if err := g.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	gst := g.Stats()
	if gst.VisitsByKernel[truthtab.ClassComb1] != 0 {
		t.Errorf("DisableKernels still ran %d comb1 visits", gst.VisitsByKernel[truthtab.ClassComb1])
	}
	if gst.VisitsByKernel[truthtab.ClassSeq] != gst.Visits {
		t.Errorf("DisableKernels: seq visits %d != total %d", gst.VisitsByKernel[truthtab.ClassSeq], gst.Visits)
	}
}

// TestKernelSegments sanity-checks the compiled schedule the engine adopts
// from the plan: stable kernel order within a level, a barrier on each
// level's first bucket except the plan-time fused levels (whose count must
// match Plan.FusedLevels), every gate appearing exactly once, and every
// segment backed by its script.
func TestKernelSegments(t *testing.T) {
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromPlan(p, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	seen := make(map[netlist.CellID]bool)
	lastLevel := -2
	fused := 0
	for i := range e.sweepSegs {
		seg := &e.sweepSegs[i]
		if seg.script == nil || len(seg.script.Ops) == 0 {
			t.Fatalf("segment %d has no script", i)
		}
		if seg.level != lastLevel {
			if !seg.barrier {
				fused++
			}
			if seg.level < lastLevel {
				t.Errorf("segment %d level %d after level %d", i, seg.level, lastLevel)
			}
			lastLevel = seg.level
		} else if seg.barrier {
			t.Errorf("segment %d repeats a barrier inside level %d", i, seg.level)
		}
		for _, op := range seg.script.Ops {
			if seen[op.Gate] {
				t.Fatalf("gate %d appears in two segments", op.Gate)
			}
			seen[op.Gate] = true
			if got := p.Kernel(op.Gate); got != seg.kernel {
				t.Errorf("gate %d class %v in a %v segment", op.Gate, got, seg.kernel)
			}
		}
	}
	if len(seen) != p.NumGates() {
		t.Fatalf("segments cover %d gates, want %d", len(seen), p.NumGates())
	}
	if fused != p.FusedLevels {
		t.Errorf("%d levels open without a barrier, Plan.FusedLevels = %d", fused, p.FusedLevels)
	}
	// The fixture is tiny, so its shallow comb levels must actually fuse —
	// otherwise the fused-schedule case is untested.
	if p.FusedLevels == 0 {
		t.Error("fixture induced no plan-time level fusion")
	}
	// The fixture must actually produce a seq bucket inside a comb level
	// (the HA/FA cells) — otherwise the mixed-level case is untested.
	mixed := false
	for i := range e.sweepSegs {
		if e.sweepSegs[i].level >= 0 && e.sweepSegs[i].kernel == truthtab.ClassSeq {
			mixed = true
		}
	}
	if !mixed {
		t.Error("fixture has no ClassSeq bucket inside a combinational level")
	}
}
