package sim

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
)

// force4Procs raises GOMAXPROCS so Options.withDefaults does not clamp
// Threads to 1 on single-core hosts — without it every "parallel" test
// silently runs serial.
func force4Procs(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// pooledOpts forces every sweep through the worker pool regardless of dirty
// count, so small test designs exercise the parallel machinery.
func pooledOpts(mode Mode) Options {
	return Options{Mode: mode, Threads: 4, SerialBatchThreshold: 1}
}

// checkNoLeak asserts the goroutine count returns to the baseline. Engine
// and pool Close join their workers synchronously, but unrelated runtime
// goroutines (race-detector bookkeeping, finished test machinery) wind down
// asynchronously, so poll briefly instead of comparing a single sample.
func checkNoLeak(t *testing.T, before int, label string) {
	t.Helper()
	after := runtime.NumGoroutine()
	for i := 0; i < 100 && after > before; i++ {
		time.Sleep(2 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines leaked across %s: %d -> %d", label, before, after)
	}
}

// TestCrossModeEquivalencePooled drives the same plan through all three
// modes with pool dispatch forced on and checks each against the reference
// simulator. Run under -race (scripts/check.sh) this doubles as the data-
// race check on concurrent gate visits sharing event queues.
func TestCrossModeEquivalencePooled(t *testing.T) {
	force4Procs(t)
	for seed := int64(0); seed < 3; seed++ {
		d, err := gen.Build(smallSpec(seed + 300))
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.7, Seed: seed, ScanBurst: 5})
		for _, mode := range []Mode{ModeSerial, ModeParallel, ModeManycore} {
			runBoth(t, d, stim, pooledOpts(mode))
		}
	}
}

// TestCloseIdempotentAndLeakFree checks the Engine.Close lifecycle: Close
// joins every pool goroutine synchronously, calling it again is a no-op,
// and a closed engine restarts its pool on the next parallel sweep.
func TestCloseIdempotentAndLeakFree(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 10, ActivityFactor: 0.7, Seed: 2, ScanBurst: 4})

	before := runtime.NumGoroutine()
	e, err := New(d.Netlist, testLib, delays, pooledOpts(ModeParallel))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Advance(10_000); err != nil {
		t.Fatal(err)
	}
	spawned := e.Stats().PoolSpawned
	if spawned == 0 {
		t.Fatal("parallel engine never started its pool")
	}
	e.Close()
	checkNoLeak(t, before, "Close")
	e.Close() // idempotent

	// A closed engine stays usable: the pool restarts lazily.
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().PoolSpawned; got <= spawned {
		t.Errorf("pool did not restart after Close: spawned %d -> %d", spawned, got)
	}
	e.Close()
	checkNoLeak(t, before, "second Close")
}

// TestPoolNoGoroutineChurn is the acceptance regression for the persistent
// pool: after the warm-up sweep, driving arbitrarily many more slices must
// create zero goroutines — rounds are served entirely by the original
// workers. This stimulus set also regresses converge's horizon-aware
// creep-stop: seed 13 produces slices where gates blocked on next-slice
// clock edges coexist with a stable feedback ring, which livelocked the
// global-quiescence rule (see quiescentBelow).
func TestPoolNoGoroutineChurn(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 60, ActivityFactor: 0.7, Seed: 4, ScanBurst: 6})

	e, err := New(d.Netlist, testLib, delays, pooledOpts(ModeParallel))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	slice := int64(4 * d.Spec.ClockPeriodPS)
	pos, start := 0, int64(0)
	advanceSlice := func() {
		t.Helper()
		for pos < len(stim) && stim[pos].Time < start+slice {
			if err := e.Inject(stim[pos].Net, stim[pos].Time, stim[pos].Val); err != nil {
				t.Fatal(err)
			}
			pos++
		}
		if err := e.Advance(start + slice); err != nil {
			t.Fatal(err)
		}
		start += slice
	}

	advanceSlice() // warm-up: first parallel sweep spawns the workers
	warm := e.Stats()
	if warm.PoolSpawned == 0 {
		t.Fatal("pool never started")
	}
	for pos < len(stim) {
		advanceSlice()
	}
	// One extra bounded slice past the last stimulus instead of Finish: this
	// design leaves a transparent-latch loop oscillating once the clocks
	// freeze at end-of-time, and the churn check needs rounds, not eternity.
	advanceSlice()
	st := e.Stats()
	if st.PoolSpawned != warm.PoolSpawned {
		t.Errorf("goroutines created after warm-up: spawned %d -> %d", warm.PoolSpawned, st.PoolSpawned)
	}
	if st.PoolRounds <= warm.PoolRounds {
		t.Errorf("pool unused after warm-up: rounds %d -> %d", warm.PoolRounds, st.PoolRounds)
	}
	if st.Sweeps > 0 && st.SweepNS <= 0 {
		t.Errorf("sweep wall-time not accounted: %+v", st)
	}
}

// buildInvFixture returns an engine over a single inverter a -> y.
func buildInvFixture(t *testing.T) (*Engine, netlist.NetID, netlist.NetID) {
	t.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("dup", lib)
	if err := nl.MarkInput(nl.AddNet("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g", "INV", map[string]string{"A": "a", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	nl.MarkOutput(mustNet(t, nl, "y"))
	e, err := New(nl, testLib, sdf.Uniform(nl, 5), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	return e, mustNet(t, nl, "a"), mustNet(t, nl, "y")
}

func mustNet(t *testing.T, nl *netlist.Netlist, name string) netlist.NetID {
	t.Helper()
	nid, ok := nl.Net(name)
	if !ok {
		t.Fatalf("net %s missing", name)
	}
	return nid
}

// TestInjectDuplicateDumpDropped is the regression for the stimulus-path
// ordering bug: a VCD $dumpvars-style re-assertion of the current value —
// including at the exact time of the last event — must be dropped, not
// rejected; only a genuine value change is held to strict monotonicity.
func TestInjectDuplicateDumpDropped(t *testing.T) {
	e, a, y := buildInvFixture(t)
	if err := e.Inject(a, 10, logic.V1); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(a, 10, logic.V1); err != nil {
		t.Errorf("duplicate same-time same-value inject rejected: %v", err)
	}
	if err := e.Inject(a, 3, logic.V1); err != nil {
		t.Errorf("same-value re-dump below last event rejected: %v", err)
	}
	if err := e.Advance(100); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(a, 50, logic.V1); err != nil {
		t.Errorf("same-value re-dump below watermark rejected: %v", err)
	}
	if err := e.Inject(a, 10, logic.V0); err == nil {
		t.Error("conflicting value at an existing event time must fail")
	}
	if err := e.Inject(a, 200, logic.V0); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	want := []event.Event{{Time: 15, Val: logic.V0}, {Time: 205, Val: logic.V1}}
	q := e.Events(y)
	if q.Len()-q.Start() != int64(len(want)) {
		t.Fatalf("y has %d events, want %d", q.Len()-q.Start(), len(want))
	}
	for i, w := range want {
		if got := q.MustAt(q.Start() + int64(i)); got != w {
			t.Errorf("y event %d: got %+v want %+v", i, got, w)
		}
	}
}

// TestRunStreamDuplicateDumpEntries feeds RunStream a stimulus slice with
// literal duplicate entries — what naive VCD dump concatenation produces —
// and expects the stream to complete with the deduplicated waveform.
func TestRunStreamDuplicateDumpEntries(t *testing.T) {
	e, a, y := buildInvFixture(t)
	src := NewSliceSource([]Change{
		{Net: a, Time: 10, Val: logic.V1},
		{Net: a, Time: 10, Val: logic.V1}, // duplicate $dumpvars entry
		{Net: a, Time: 2000, Val: logic.V0},
		{Net: a, Time: 2000, Val: logic.V0}, // duplicate again
		{Net: a, Time: 3000, Val: logic.V0}, // unchanged re-dump, later slice
	})
	var got []event.Event
	err := e.RunStream(src, StreamConfig{
		SlicePS: 1024,
		Watch:   []netlist.NetID{y},
		OnEvent: func(_ netlist.NetID, ev event.Event) { got = append(got, ev) },
	})
	if err != nil {
		t.Fatalf("RunStream with duplicate dump entries: %v", err)
	}
	want := []event.Event{{Time: 15, Val: logic.V0}, {Time: 2005, Val: logic.V1}}
	if len(got) != len(want) {
		t.Fatalf("streamed %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestSnapshotRestoreRunStream is the regression for the read-mark bug: an
// engine restored from a snapshot has queues whose absolute indices start
// past zero, and RunStream must resume reading from the queue start (and
// recorded read marks), not from index 0.
func TestSnapshotRestoreRunStream(t *testing.T) {
	d, err := gen.Build(smallSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 40, ActivityFactor: 0.6, Seed: 9, ScanBurst: 8})
	watch := d.Outs

	// One-shot reference waveform on the watched nets.
	ref, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stim {
		if err := ref.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Finish(); err != nil {
		t.Fatal(err)
	}
	want := make(map[netlist.NetID][]event.Event)
	for _, nid := range watch {
		q := ref.Events(nid)
		for i := q.Start(); i < q.Len(); i++ {
			want[nid] = append(want[nid], q.MustAt(i))
		}
	}

	// Phase 1: drive the first half manually (inject/advance/flush/
	// checkpoint, mirroring RunStream), then snapshot.
	e1, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[netlist.NetID][]event.Event)
	read := make(map[netlist.NetID]int64)
	slice := int64(4 * d.Spec.ClockPeriodPS)
	half := stim[len(stim)/2].Time
	cut := ((half / slice) + 1) * slice
	pos := 0
	for start := int64(0); start < cut; start += slice {
		for pos < len(stim) && stim[pos].Time < start+slice {
			if err := e1.Inject(stim[pos].Net, stim[pos].Time, stim[pos].Val); err != nil {
				t.Fatal(err)
			}
			pos++
		}
		if err := e1.Advance(start + slice); err != nil {
			t.Fatal(err)
		}
		limit := start + slice
		for _, nid := range watch {
			if w := e1.Events(nid).DeterminedUntil(); w < limit {
				limit = w
			}
		}
		for _, nid := range watch {
			q := e1.Events(nid)
			i := read[nid]
			if i < q.Start() {
				i = q.Start()
			}
			for ; i < q.Len(); i++ {
				ev := q.MustAt(i)
				if ev.Time >= limit {
					break
				}
				got[nid] = append(got[nid], ev)
			}
			read[nid] = i
			e1.SetReadMark(nid, i)
		}
		e1.Checkpoint()
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Trimming must have happened, or the restored queues start at zero and
	// the test exercises nothing.
	trimmed := false
	for _, nid := range watch {
		if e1.Events(nid).Start() > 0 {
			trimmed = true
		}
	}
	if !trimmed {
		t.Fatal("fixture too small: no watched queue was trimmed before the snapshot")
	}

	// Phase 2: restore into a fresh engine and stream the remaining stimuli.
	e2, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	err = e2.RunStream(NewSliceSource(toChanges(stim[pos:])), StreamConfig{
		SlicePS: slice,
		Watch:   watch,
		OnEvent: func(nid netlist.NetID, ev event.Event) { got[nid] = append(got[nid], ev) },
	})
	if err != nil {
		t.Fatalf("RunStream on restored engine: %v", err)
	}

	for _, nid := range watch {
		w, g := want[nid], got[nid]
		if len(w) != len(g) {
			t.Fatalf("net %s: %d events vs %d\nwant %v\ngot  %v",
				d.Netlist.Nets[nid].Name, len(w), len(g), w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("net %s event %d: want %+v got %+v", d.Netlist.Nets[nid].Name, i, w[i], g[i])
			}
		}
	}
}

func toChanges(stim []gen.Change) []Change {
	out := make([]Change, len(stim))
	for i, s := range stim {
		out[i] = Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	return out
}
