package sim

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/lane"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/sched"
	"gatesim/internal/truthtab"
)

// Lane mode: bit-parallel multi-stimulus execution (Options.Lanes > 1).
//
// The engine's time spine — event queues, watermarks, cursors, the
// commit/replay discipline — is unchanged and shared across lanes. What a
// queue event *means* changes: event i on a net is "at this time, the lanes
// in laneStores[nid] entry i's mask changed, to the values in its word".
// Each gate visit replays the shared change points once and evaluates every
// lane at each of them; per-lane scheduling state (semantic values, pending
// output transitions) is kept lane-by-lane so lane l's committed stream is
// exactly what a scalar engine running lane l's stimulus alone would commit.
//
// Correctness argument, per lane l: at every change point the visit
// presents lane l exactly what the scalar replay would present it (its own
// event values, its own current values, and the same shared VU expiries —
// watermarks are per-net and identical), schedules only l's own output
// changes through l's own sched.Output, and stops before consuming at the
// first point where *any* lane's result is undetermined. Stopping early for
// lane l because another lane was undetermined only delays l's commits —
// determination is monotone under watermark refinement, so when the visit
// resumes past the frontier, l's replay produces the same transitions. The
// shared committedUntil guard drops exactly the replay duplicates, as in
// scalar mode, because per-lane replay is deterministic.
//
// Lane mode never checkpoints, trims, or snapshots: stores and queues grow
// with the trace (extraction reads them from index zero), and the lane base
// state stays at the broadcast initial values.

// visitLaneScriptComb1 is visitScriptComb1 over lane words: one pass over
// the shared change points evaluating every lane through the packed LUT
// (truthtab.LanePackedLUT), scheduling per-lane transitions for the lanes
// whose inputs actually changed, and committing the merged per-lane streams
// fan-out into the single output queue + lane store.
func (e *Engine) visitLaneScriptComb1(op *plan.ScriptOp, sc *scratch) bool {
	g := &e.gate[op.Gate]
	inB := int(op.InBase)
	ni := int(op.NIn)
	outB := int(op.OutSlot)
	llut := truthtab.LanePackedLUT{LUT: op.LUT}
	inQ := e.inQ[inB : inB+ni]
	inSt := e.inStore[inB : inB+ni]
	q := e.outQ[outB]
	softCur := e.softCur[inB : inB+ni]
	L := e.lanes
	sc.visits[truthtab.ClassComb1]++
	sc.visitsLane++

	// Soft-resume / idle checks, exactly as in visitScriptComb1.
	resume := g.softValid
	idle := resume
	if resume {
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if softCur[i] < iq.Len() {
				idle = false
				if iq.MustAt(softCur[i]).Time < g.softNow {
					resume = false
					break
				}
			}
		}
	}
	if resume && idle {
		return e.idleLaneScriptComb1(op, sc)
	}
	// A real visit may change the soft lane words the idle walks' memo was
	// proven against; drop it (cheap, and stale masks are unsound).
	g.maskDet, g.maskUndet = 0, 0
	outs := sc.laneOuts[:L]
	var now int64
	var sem lane.Word
	if resume {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(softCur[i])
			sc.laneVals[i] = e.laneSoftVals[inB+i]
		}
		sem = e.laneSoftSem[outB]
		lc := e.laneLastCommitted[outB]
		for ln := 0; ln < L; ln++ {
			outs[ln].Restore(lc.Get(ln), e.laneSoftPend[outB*L+ln])
		}
		now = g.softNow
	} else {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(e.baseCur[inB+i])
			sc.laneVals[i] = e.laneBaseVals[inB+i]
		}
		sem = e.laneSemBase[outB]
		lc := e.laneLastCommitted[outB]
		for ln := 0; ln < L; ln++ {
			outs[ln].Reset(lc.Get(ln))
		}
		now = g.baseNow
	}
	detUntil := TimeInf
	frontOn := e.front.on
	fullU := uint32(0)
	if frontOn && llut.LUT.AllU {
		fullU = uint32(1)<<uint(ni) - 1
	}
	for {
		// Next change point: earliest unconsumed event or stable-time
		// expiry strictly after `now`.
		t := TimeInf
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if sc.cur[i].Idx < iq.Len() {
				if et := sc.cur[i].Peek(iq).Time; et < t {
					t = et
				}
			}
			if w := iq.DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}

		// Gather the per-lane query: event words for inputs changing at t,
		// shared VU fields for expired inputs, current words otherwise.
		var expired uint32
		var evLanes uint32
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if sc.cur[i].Idx < iq.Len() {
				if sc.cur[i].Peek(iq).Time == t {
					m, w := inSt[i].At(sc.cur[i].Idx)
					sc.evMask[i] = m
					sc.qWords[i] = w
					sc.evIn = append(sc.evIn, i)
					evLanes |= m
					continue
				}
			}
			if t >= iq.DeterminedUntil() {
				expired |= 1 << uint(i)
			}
			sc.qWords[i] = sc.laneVals[i]
		}
		// Every pin expired and the function is input-sensitive: U in every
		// lane by construction, no probe needed (see visitComb1; fullU is
		// zero unless the frontier is armed and the LUT qualifies).
		if expired == fullU && fullU != 0 {
			sc.queriesSaved++
			detUntil = t
			break
		}
		// Every active lane is evaluated — not just the changed ones — so
		// the stop-before-consume frontier below can never overrun a quiet
		// lane's own undetermined point and commit a cancellable event.
		outW, undet := llut.LookupLanes(sc.qWords[:ni], expired, e.laneMask)
		sc.queries[truthtab.ClassComb1]++
		if undet != 0 {
			// Event-free probe against the final soft lane words: seed the
			// idle walks' memo (see visitComb1).
			if frontOn && len(sc.evIn) == 0 && (g.maskUndet == 0 || expired&^g.maskUndet == 0) {
				g.maskUndet = expired
			}
			detUntil = t
			break
		}

		// Consume the change point: only lanes with an input event here may
		// schedule (a quiet lane's scalar replay has no change point at t),
		// and only when their semantic output moved.
		if len(sc.evIn) > 0 {
			g.maskDet, g.maskUndet = 0, 0
			changed := evLanes & lane.DiffMask(outW, sem)
			for m := changed; m != 0; m &= m - 1 {
				ln := bits.TrailingZeros32(m)
				nv := outW.Get(ln)
				var d int64
				if op.Uniform {
					d = op.Delay[nv]
				} else {
					arcB := int(op.ArcBase)
					d = int64(1) << 62
					for _, i := range sc.evIn {
						if sc.evMask[i]&(1<<uint(ln)) == 0 {
							continue
						}
						if ad := sched.DelayFor(e.p.Arcs[arcB+i], nv); ad < d {
							d = ad
						}
					}
				}
				outs[ln].Schedule(t+d, nv)
			}
			sem = sem.Merge(outW, changed)
			for _, i := range sc.evIn {
				sc.laneVals[i] = sc.qWords[i]
				sc.cur[i].Advance()
			}
		} else if frontOn && expired&g.maskDet == g.maskDet {
			g.maskDet = expired
		}
		now = t
	}
	g.detUntil.Store(detUntil)

	// Commit the merged per-lane streams and advance the shared watermark.
	limit := detUntil
	if limit < TimeInf {
		limit += op.MinArc
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	newEvents := e.commitLaneOutputs(outB, outs, commitThrough, sc)
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	progress := false
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(op.OutNet, wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	for ln := 0; ln < L; ln++ {
		if te, ok := outs[ln].NextPending(); ok && te < futureMin {
			futureMin = te
		}
	}
	blocked := false
	for i := 0; i < ni; i++ {
		if sc.cur[i].Idx < inQ[i].Len() {
			blocked = true
			if et := sc.cur[i].Peek(inQ[i]).Time; et < futureMin {
				futureMin = et
			}
		}
	}
	g.futureMin = futureMin
	g.blocked = blocked

	// Save the soft snapshot for the next visit.
	g.softNow = now
	for i := 0; i < ni; i++ {
		softCur[i] = sc.cur[i].Idx
		e.laneSoftVals[inB+i] = sc.laneVals[i]
	}
	e.laneSoftSem[outB] = sem
	for ln := 0; ln < L; ln++ {
		e.laneSoftPend[outB*L+ln] = append(e.laneSoftPend[outB*L+ln][:0], outs[ln].Pend()...)
	}
	g.softValid = true
	return progress
}

// idleLaneScriptComb1 is idleScriptComb1 over lane words: a
// watermark-expiry-only walk probing every lane per expiry, and the merged
// soft-pending prefixes to commit.
func (e *Engine) idleLaneScriptComb1(op *plan.ScriptOp, sc *scratch) bool {
	g := &e.gate[op.Gate]
	inB := int(op.InBase)
	ni := int(op.NIn)
	outB := int(op.OutSlot)
	llut := truthtab.LanePackedLUT{LUT: op.LUT}
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]

	// Watermark snapshot + determinedness memo, as in idleComb1. The lane
	// probe's verdict is "determined in every active lane", which is
	// antitone in the expired set exactly like the scalar one (per lane),
	// so the same masks apply to the all-lanes outcome.
	wm := sc.wm[:ni]
	var expMax uint32
	tLast := int64(0)
	for i := 0; i < ni; i++ {
		w := inQ[i].DeterminedUntil()
		wm[i] = w
		if w < TimeInf {
			expMax |= 1 << uint(i)
			if w > tLast {
				tLast = w
			}
		}
	}
	now := g.softNow
	detUntil := TimeInf
	frontOn := e.front.on
	// Maximal-set shortcut, as in idleComb1; the all-lanes verdict is
	// antitone per lane, so one determined-in-every-lane probe with every
	// finite-watermark input expired settles the entire walk.
	full := uint32(1)<<uint(ni) - 1
	if tLast > now && g.maskDet != 0 && !(expMax == full && llut.LUT.AllU) &&
		(g.maskUndet == 0 || expMax&g.maskUndet != g.maskUndet) {
		det := false
		if expMax&^g.maskDet == 0 {
			sc.queriesSaved++
			det = true
		} else {
			// LookupLanes only reads its input words, so the walk probes the
			// engine's soft lane words in place — no per-probe copy.
			sc.queries[truthtab.ClassComb1]++
			if _, undet := llut.LookupLanes(e.laneSoftVals[inB:inB+ni], expMax, e.laneMask); undet == 0 {
				det = true
				if expMax&g.maskDet == g.maskDet {
					g.maskDet = expMax
				}
			} else if g.maskUndet == 0 || expMax&^g.maskUndet == 0 {
				g.maskUndet = expMax
			}
		}
		if det {
			now = tLast
		}
	}
	// Incremental expired set, as in idleComb1: it only grows along the
	// walk, so it is maintained in place instead of being rebuilt O(ni) at
	// every change point. The lane probe takes the set as an argument and
	// reads the engine's soft lane words directly, so there is no packed
	// index (or copy) to maintain.
	expired := uint32(0)
	for i := 0; i < ni; i++ {
		if now >= wm[i] {
			expired |= 1 << uint(i)
		}
	}
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			if w := wm[i]; w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}
		for i := 0; i < ni; i++ {
			if b := uint32(1) << uint(i); expired&b == 0 && t >= wm[i] {
				expired |= b
			}
		}
		if frontOn && expired == full && llut.LUT.AllU {
			sc.queriesSaved++
			detUntil = t
			break
		}
		if g.maskUndet != 0 && expired&g.maskUndet == g.maskUndet {
			sc.queriesSaved++
			detUntil = t
			break
		}
		if expired&^g.maskDet == 0 {
			sc.queriesSaved++
			now = t
			continue
		}
		sc.queries[truthtab.ClassComb1]++
		if _, undet := llut.LookupLanes(e.laneSoftVals[inB:inB+ni], expired, e.laneMask); undet != 0 {
			if frontOn && (g.maskUndet == 0 || expired&^g.maskUndet == 0) {
				g.maskUndet = expired
			}
			detUntil = t
			break
		}
		if frontOn && expired&g.maskDet == g.maskDet {
			g.maskDet = expired
		}
		now = t
	}
	g.softNow = now
	g.detUntil.Store(detUntil)

	limit := detUntil
	if limit < TimeInf {
		limit += op.MinArc
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	newEvents := e.commitLaneSoftPend(outB, commitThrough, sc)
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	progress := false
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(op.OutNet, wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	L := e.lanes
	for ln := 0; ln < L; ln++ {
		for _, ev := range e.laneSoftPend[outB*L+ln] {
			if ev.Time < futureMin {
				futureMin = ev.Time
			}
		}
	}
	g.futureMin = futureMin
	return progress
}

// visitLaneGate is the lane-mode generic (ClassSeq) visit: the scalar
// interpreter run lane-by-lane at the shared change points. A lane
// participates at a point when one of its inputs changed there, or when the
// point is a watermark crossing (which every lane's scalar replay would
// visit — watermarks are shared). Non-participating lanes are untouched:
// their scalar replays have no change point at that time, so their states
// and semantic outputs must not move.
func (e *Engine) visitLaneGate(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	no := int(p.OutOff[id+1]) - outB
	stB := int(p.StateOff[id])
	ns := int(p.StateOff[id+1]) - stB
	tab := p.Tables[p.TableOf[id]]
	arcB := int(p.ArcOff[id])
	inQ := e.inQ[inB : inB+ni]
	inSt := e.inStore[inB : inB+ni]
	outQ := e.outQ[outB : outB+no]
	softCur := e.softCur[inB : inB+ni]
	committedUntil := e.committedUntil[outB : outB+no]
	minArc := p.MinArc[outB : outB+no]
	L := e.lanes
	sc.visits[truthtab.ClassSeq]++
	sc.visitsLane++

	resume := g.softValid
	idle := resume
	if resume {
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if softCur[i] < iq.Len() {
				idle = false
				if iq.MustAt(softCur[i]).Time < g.softNow {
					resume = false
					break
				}
			}
		}
	}
	if resume && idle {
		return e.idleLaneVisit(id, sc)
	}
	var now int64
	if resume {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(softCur[i])
			sc.laneVals[i] = e.laneSoftVals[inB+i]
		}
		copy(sc.laneStates, e.laneSoftStates[stB:stB+ns])
		copy(sc.laneSem, e.laneSoftSem[outB:outB+no])
		for o := 0; o < no; o++ {
			lc := e.laneLastCommitted[outB+o]
			for ln := 0; ln < L; ln++ {
				sc.laneOuts[o*L+ln].Restore(lc.Get(ln), e.laneSoftPend[(outB+o)*L+ln])
			}
		}
		now = g.softNow
	} else {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(e.baseCur[inB+i])
			sc.laneVals[i] = e.laneBaseVals[inB+i]
		}
		copy(sc.laneStates, e.laneBaseStates[stB:stB+ns])
		copy(sc.laneSem, e.laneSemBase[outB:outB+no])
		for o := 0; o < no; o++ {
			lc := e.laneLastCommitted[outB+o]
			for ln := 0; ln < L; ln++ {
				sc.laneOuts[o*L+ln].Reset(lc.Get(ln))
			}
		}
		now = g.baseNow
	}
	detUntil := TimeInf
	for {
		t := TimeInf
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if sc.cur[i].Idx < iq.Len() {
				if et := sc.cur[i].Peek(iq).Time; et < t {
					t = et
				}
			}
			if w := iq.DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}

		// Classify the inputs at t. expiryPoint records whether any input
		// watermark crossing lies in (now, t] — those points exist in every
		// lane's scalar replay, so all lanes participate there.
		var expired uint32
		var evLanes uint32
		expiryPoint := false
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			sc.evMask[i] = 0
			if sc.cur[i].Idx < iq.Len() {
				if sc.cur[i].Peek(iq).Time == t {
					m, w := inSt[i].At(sc.cur[i].Idx)
					sc.evMask[i] = m
					sc.qWords[i] = w
					sc.evIn = append(sc.evIn, i)
					evLanes |= m
					continue
				}
			}
			if w := iq.DeterminedUntil(); w > now && w <= t {
				expiryPoint = true
			}
			if t >= iq.DeterminedUntil() {
				expired |= 1 << uint(i)
			}
		}
		partMask := evLanes
		if expiryPoint {
			partMask = e.laneMask
		}

		// Evaluate every participating lane; stop before consuming anything
		// if any of them comes back undetermined.
		undet := false
		for m := partMask; m != 0 && !undet; m &= m - 1 {
			ln := bits.TrailingZeros32(m)
			for i := 0; i < ni; i++ {
				switch {
				case sc.evMask[i] != 0 && sc.evMask[i]&(1<<uint(ln)) != 0:
					// This lane's own event: edge-code it for edge pins.
					if tab.EdgeSensitive[i] {
						sc.qIns[i] = logic.EdgeCode(sc.laneVals[i].Get(ln), sc.qWords[i].Get(ln))
					} else {
						sc.qIns[i] = sc.qWords[i].Get(ln)
					}
				case expired&(1<<uint(i)) != 0:
					sc.qIns[i] = logic.VU
				default:
					sc.qIns[i] = sc.laneVals[i].Get(ln)
				}
			}
			for s := 0; s < ns; s++ {
				sc.states[s] = sc.laneStates[s].Get(ln)
			}
			tab.LookupInto(sc.qIns[:ni], sc.states[:ns], sc.qOuts[:no], sc.qNext[:ns])
			sc.queries[truthtab.ClassSeq]++
			for o := 0; o < no; o++ {
				if sc.qOuts[o] == logic.VU {
					undet = true
				}
				sc.laneQOuts[o*L+ln] = sc.qOuts[o]
			}
			for s := 0; s < ns; s++ {
				if sc.qNext[s] == logic.VU {
					undet = true
				}
				sc.laneQNext[s*L+ln] = sc.qNext[s]
			}
		}
		if undet {
			detUntil = t
			break
		}

		// Consume: schedule per-lane output changes for event lanes, fold
		// next-states for participating lanes, advance the shared cursors.
		if len(sc.evIn) > 0 {
			for o := 0; o < no; o++ {
				for m := evLanes; m != 0; m &= m - 1 {
					ln := bits.TrailingZeros32(m)
					nv := sc.laneQOuts[o*L+ln]
					if nv == sc.laneSem[o].Get(ln) {
						continue
					}
					d := int64(1) << 62
					for _, i := range sc.evIn {
						if sc.evMask[i]&(1<<uint(ln)) == 0 {
							continue
						}
						if ad := sched.DelayFor(p.Arcs[arcB+o*ni+i], nv); ad < d {
							d = ad
						}
					}
					sc.laneOuts[o*L+ln].Schedule(t+d, nv)
					sc.laneSem[o] = sc.laneSem[o].Set(ln, nv)
				}
			}
			for _, i := range sc.evIn {
				sc.laneVals[i] = sc.qWords[i]
				sc.cur[i].Advance()
			}
		}
		for s := 0; s < ns; s++ {
			w := sc.laneStates[s]
			for m := partMask; m != 0; m &= m - 1 {
				ln := bits.TrailingZeros32(m)
				w = w.Set(ln, sc.laneQNext[s*L+ln])
			}
			sc.laneStates[s] = w
		}
		now = t
	}
	g.detUntil.Store(detUntil)

	progress := false
	for o := 0; o < no; o++ {
		limit := detUntil
		if limit < TimeInf {
			limit += minArc[o]
			if limit > TimeInf {
				limit = TimeInf
			}
		}
		commitThrough := limit - 1
		newEvents := e.commitLaneOutputs(outB+o, sc.laneOuts[o*L:(o+1)*L], commitThrough, sc)
		if commitThrough > committedUntil[o] {
			committedUntil[o] = commitThrough
		}
		q := outQ[o]
		wOld := int64(-1)
		if q != nil && q.DeterminedUntil() < limit {
			wOld = q.DeterminedUntil()
			q.SetDeterminedUntil(limit)
		}
		if newEvents || wOld >= 0 {
			progress = true
			e.markLoads(p.OutNet[outB+o], wOld, newEvents)
		}
	}

	futureMin := int64(TimeInf)
	for o := 0; o < no; o++ {
		for ln := 0; ln < L; ln++ {
			if te, ok := sc.laneOuts[o*L+ln].NextPending(); ok && te < futureMin {
				futureMin = te
			}
		}
	}
	for i := 0; i < ni; i++ {
		if sc.cur[i].Idx < inQ[i].Len() {
			if et := sc.cur[i].Peek(inQ[i]).Time; et < futureMin {
				futureMin = et
			}
		}
	}
	g.futureMin = futureMin

	g.softNow = now
	for i := 0; i < ni; i++ {
		softCur[i] = sc.cur[i].Idx
		e.laneSoftVals[inB+i] = sc.laneVals[i]
	}
	copy(e.laneSoftStates[stB:stB+ns], sc.laneStates[:ns])
	copy(e.laneSoftSem[outB:outB+no], sc.laneSem[:no])
	for o := 0; o < no; o++ {
		for ln := 0; ln < L; ln++ {
			e.laneSoftPend[(outB+o)*L+ln] = append(e.laneSoftPend[(outB+o)*L+ln][:0], sc.laneOuts[o*L+ln].Pend()...)
		}
	}
	g.softValid = true
	return progress
}

// idleLaneVisit is idleVisit over lanes: an expiry-only walk evaluating
// every lane from the soft values/states (nothing is consumed — a
// determined expiry outcome must agree with the "nothing happened"
// refinement in every lane), then merged soft-pend commits.
func (e *Engine) idleLaneVisit(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	no := int(p.OutOff[id+1]) - outB
	stB := int(p.StateOff[id])
	ns := int(p.StateOff[id+1]) - stB
	tab := p.Tables[p.TableOf[id]]
	inQ := e.inQ[inB : inB+ni]
	outQ := e.outQ[outB : outB+no]
	committedUntil := e.committedUntil[outB : outB+no]
	minArc := p.MinArc[outB : outB+no]
	L := e.lanes

	now := g.softNow
	detUntil := TimeInf
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			if w := inQ[i].DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}
		undet := false
		for ln := 0; ln < L && !undet; ln++ {
			for i := 0; i < ni; i++ {
				if t >= inQ[i].DeterminedUntil() {
					sc.qIns[i] = logic.VU
				} else {
					sc.qIns[i] = e.laneSoftVals[inB+i].Get(ln)
				}
			}
			for s := 0; s < ns; s++ {
				sc.states[s] = e.laneSoftStates[stB+s].Get(ln)
			}
			tab.LookupInto(sc.qIns[:ni], sc.states[:ns], sc.qOuts[:no], sc.qNext[:ns])
			sc.queries[truthtab.ClassSeq]++
			for _, v := range sc.qOuts[:no] {
				if v == logic.VU {
					undet = true
					break
				}
			}
			if !undet {
				for _, v := range sc.qNext[:ns] {
					if v == logic.VU {
						undet = true
						break
					}
				}
			}
		}
		if undet {
			detUntil = t
			break
		}
		now = t
	}
	g.softNow = now
	g.detUntil.Store(detUntil)

	progress := false
	for o := 0; o < no; o++ {
		limit := detUntil
		if limit < TimeInf {
			limit += minArc[o]
			if limit > TimeInf {
				limit = TimeInf
			}
		}
		commitThrough := limit - 1
		newEvents := e.commitLaneSoftPend(outB+o, commitThrough, sc)
		if commitThrough > committedUntil[o] {
			committedUntil[o] = commitThrough
		}
		q := outQ[o]
		wOld := int64(-1)
		if q != nil && q.DeterminedUntil() < limit {
			wOld = q.DeterminedUntil()
			q.SetDeterminedUntil(limit)
		}
		if newEvents || wOld >= 0 {
			progress = true
			e.markLoads(p.OutNet[outB+o], wOld, newEvents)
		}
	}

	futureMin := int64(TimeInf)
	for o := 0; o < no; o++ {
		for ln := 0; ln < L; ln++ {
			for _, ev := range e.laneSoftPend[(outB+o)*L+ln] {
				if ev.Time < futureMin {
					futureMin = ev.Time
				}
			}
		}
	}
	g.futureMin = futureMin
	return progress
}

// commitLaneOutputs pops every lane's pending transitions through
// commitThrough off outs (one sched.Output per lane) and appends the merged
// (mask, word) entries to the output's queue + lane store. The shared
// committedUntil guard drops replay duplicates exactly as in scalar mode:
// per-lane replay is deterministic, so a re-derived pop below the guard is
// byte-identical to the one already committed.
func (e *Engine) commitLaneOutputs(outSlot int, outs []sched.Output, commitThrough int64, sc *scratch) bool {
	q := e.outQ[outSlot]
	st := e.outStore[outSlot]
	lc := e.laneLastCommitted[outSlot]
	newEvents := false
	for {
		t := int64(1) << 62
		for ln := range outs {
			if te, ok := outs[ln].NextPending(); ok && te < t {
				t = te
			}
		}
		if t > commitThrough {
			break
		}
		var mask uint32
		w := lc
		for ln := range outs {
			if te, ok := outs[ln].NextPending(); ok && te == t {
				ev := outs[ln].PopFront()
				w = w.Set(ln, ev.Val)
				mask |= 1 << uint(ln)
			}
		}
		if t > e.committedUntil[outSlot] {
			if q != nil {
				// Store entry first: the queue's atomic end-store publishes it.
				st.Append(mask, w)
				q.Append(t, w.Get(0))
				newEvents = true
				sc.events++
			}
			lc = w
		}
	}
	e.laneLastCommitted[outSlot] = lc
	return newEvents
}

// commitLaneSoftPend is commitLaneOutputs over the saved soft-pending lists
// (the idle paths, which have no live sched.Outputs): the per-lane prefixes
// through commitThrough are merged by time, committed, and compacted away.
func (e *Engine) commitLaneSoftPend(outSlot int, commitThrough int64, sc *scratch) bool {
	L := e.lanes
	q := e.outQ[outSlot]
	st := e.outStore[outSlot]
	lc := e.laneLastCommitted[outSlot]
	pendBase := outSlot * L
	k := sc.lanePendK[:L]
	for ln := range k {
		k[ln] = 0
	}
	newEvents := false
	for {
		t := int64(1) << 62
		for ln := 0; ln < L; ln++ {
			pend := e.laneSoftPend[pendBase+ln]
			if k[ln] < len(pend) && pend[k[ln]].Time < t {
				t = pend[k[ln]].Time
			}
		}
		if t > commitThrough {
			break
		}
		var mask uint32
		w := lc
		for ln := 0; ln < L; ln++ {
			pend := e.laneSoftPend[pendBase+ln]
			if k[ln] < len(pend) && pend[k[ln]].Time == t {
				w = w.Set(ln, pend[k[ln]].Val)
				mask |= 1 << uint(ln)
				k[ln]++
			}
		}
		if t > e.committedUntil[outSlot] {
			if q != nil {
				st.Append(mask, w)
				q.Append(t, w.Get(0))
				newEvents = true
				sc.events++
			}
			lc = w
		}
	}
	for ln := 0; ln < L; ln++ {
		if k[ln] > 0 {
			pend := e.laneSoftPend[pendBase+ln]
			e.laneSoftPend[pendBase+ln] = append(pend[:0], pend[k[ln]:]...)
		}
	}
	e.laneLastCommitted[outSlot] = lc
	return newEvents
}

// Lanes returns the number of active stimulus lanes (1 in scalar mode).
func (e *Engine) Lanes() int { return e.lanes }

// InjectLanes appends a lane-vector stimulus event to a primary-input net:
// the lanes in mask change to their values in w at time t. Per-lane
// re-assertions of the current value are dropped (mirroring Inject); if no
// lane genuinely changes the call is a no-op. Times must strictly increase
// per net across the lanes that remain, and must not fall below the net's
// watermark.
func (e *Engine) InjectLanes(nid netlist.NetID, t int64, w lane.Word, mask uint32) error {
	if e.poison != nil {
		return e.poisonError("inject")
	}
	if e.lanes <= 1 {
		return fmt.Errorf("sim: InjectLanes requires lane mode (Options.Lanes > 1)")
	}
	if int(nid) >= len(e.queues) || !e.p.IsPI[nid] {
		return fmt.Errorf("sim: net %d is not a primary input", nid)
	}
	q := &e.queues[nid]
	last := e.laneLast[nid]
	var changed uint32
	merged := last
	for m := mask & e.laneMask; m != 0; m &= m - 1 {
		ln := bits.TrailingZeros32(m)
		v := w.Get(ln).Settle()
		if last.Get(ln) == v {
			continue
		}
		changed |= 1 << uint(ln)
		merged = merged.Set(ln, v)
	}
	if changed == 0 {
		return nil
	}
	if t < q.DeterminedUntil() {
		return fmt.Errorf("sim: inject at %d below watermark %d on %s", t, q.DeterminedUntil(), e.nl.Nets[nid].Name)
	}
	if lt := q.LastTime(); t <= lt {
		return fmt.Errorf("sim: inject at %d not after last event %d on %s", t, lt, e.nl.Nets[nid].Name)
	}
	e.laneStores[nid].Append(changed, merged)
	q.Append(t, merged.Get(0))
	e.laneLast[nid] = merged
	e.markLoads(nid, -1, true)
	return nil
}

// LaneChange is one lane-vector stimulus event for RunLaneStream: the lanes
// in Mask change to their values in Word at Time. Word bits outside Mask
// are ignored.
type LaneChange struct {
	Net  netlist.NetID
	Time int64
	Mask uint32
	Word lane.Word
}

// MergeLaneChanges folds per-lane scalar stimulus traces (perLane[l] is
// lane l's trace, per-net time-ordered) into one lane-vector trace sorted
// by time: one LaneChange per (net, time) carrying the mask and values of
// every lane that changes there. Shared stimulus (clocks, resets) merges
// into single full-mask entries, which is what makes a lane run cost one
// pass.
func MergeLaneChanges(perLane [][]Change) ([]LaneChange, error) {
	if len(perLane) == 0 || len(perLane) > lane.MaxLanes {
		return nil, fmt.Errorf("sim: MergeLaneChanges with %d lanes (1..%d)", len(perLane), lane.MaxLanes)
	}
	type laneEv struct {
		t   int64
		nid netlist.NetID
		ln  int
		v   logic.Value
	}
	n := 0
	for _, cs := range perLane {
		n += len(cs)
	}
	flat := make([]laneEv, 0, n)
	for ln, cs := range perLane {
		for _, c := range cs {
			flat = append(flat, laneEv{c.Time, c.Net, ln, c.Val.Settle()})
		}
	}
	sort.Slice(flat, func(a, b int) bool {
		if flat[a].t != flat[b].t {
			return flat[a].t < flat[b].t
		}
		if flat[a].nid != flat[b].nid {
			return flat[a].nid < flat[b].nid
		}
		return flat[a].ln < flat[b].ln
	})
	var out []LaneChange
	for _, ev := range flat {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Time == ev.t && last.Net == ev.nid {
				last.Mask |= 1 << uint(ev.ln)
				last.Word = last.Word.Set(ev.ln, ev.v)
				continue
			}
		}
		out = append(out, LaneChange{
			Net: ev.nid, Time: ev.t,
			Mask: 1 << uint(ev.ln), Word: lane.Word(0).Set(ev.ln, ev.v),
		})
	}
	return out, nil
}

// LaneStreamConfig configures RunLaneStream.
type LaneStreamConfig struct {
	// SlicePS is the streaming window length (default 65536 ps). Lane mode
	// keeps full event history — slicing here bounds convergence work per
	// window, not memory.
	SlicePS int64
	// Watch lists the nets whose committed lane events are reported.
	// Default: the primary outputs.
	Watch []netlist.NetID
	// OnEvent receives watched lane events in global time order (ties by
	// net id): the changed-lane mask and the full merged word. May be nil.
	OnEvent func(nid netlist.NetID, t int64, mask uint32, w lane.Word)
	// AfterSlice runs at the end of every completed slice, as in
	// StreamConfig.AfterSlice — minus the snapshot legality (lane mode has
	// no snapshots). A non-nil error aborts with a resumable *SimError.
	AfterSlice func(end int64) error
}

// RunLaneStream drives a lane-mode engine from a merged lane-vector
// stimulus trace (see MergeLaneChanges) in streaming slices. It is
// RunLaneStreamCtx without cancellation.
func (e *Engine) RunLaneStream(changes []LaneChange, cfg LaneStreamConfig) error {
	return e.RunLaneStreamCtx(context.Background(), changes, cfg)
}

// RunLaneStreamCtx is RunStreamCtx's lane-mode twin: inject each slice's
// lane changes, converge to the slice horizon, and flush watched lane
// events up to the slowest watched watermark. Unlike the scalar stream it
// never checkpoints: per-lane stream extraction (LaneEvents) needs the full
// event history, so memory grows with the trace.
func (e *Engine) RunLaneStreamCtx(ctx context.Context, changes []LaneChange, cfg LaneStreamConfig) error {
	if e.poison != nil {
		return e.poisonError("stream")
	}
	if e.lanes <= 1 {
		return fmt.Errorf("sim: RunLaneStream requires lane mode (Options.Lanes > 1)")
	}
	if cfg.SlicePS <= 0 {
		cfg.SlicePS = 65536
	}
	watch := cfg.Watch
	if watch == nil {
		watch = e.nl.PortsOut
	}
	read := make(map[netlist.NetID]int64, len(watch))
	for _, nid := range watch {
		read[nid] = e.Events(nid).Start()
	}

	type timedLaneEvent struct {
		nid  netlist.NetID
		t    int64
		mask uint32
		w    lane.Word
	}
	var emitBuf []timedLaneEvent
	flush := func(limit int64) {
		emitBuf = emitBuf[:0]
		for _, nid := range watch {
			q := e.Events(nid)
			st := &e.laneStores[nid]
			i := read[nid]
			for ; i < q.Len(); i++ {
				ev := q.MustAt(i)
				if ev.Time >= limit {
					break
				}
				mask, w := st.At(i)
				emitBuf = append(emitBuf, timedLaneEvent{nid, ev.Time, mask, w})
			}
			read[nid] = i
		}
		if cfg.OnEvent != nil {
			sort.Slice(emitBuf, func(a, b int) bool {
				if emitBuf[a].t != emitBuf[b].t {
					return emitBuf[a].t < emitBuf[b].t
				}
				return emitBuf[a].nid < emitBuf[b].nid
			})
			for _, te := range emitBuf {
				cfg.OnEvent(te.nid, te.t, te.mask, te.w)
			}
		}
	}

	pos := 0
	start := int64(0)
	if len(changes) > 0 {
		start = (changes[0].Time / cfg.SlicePS) * cfg.SlicePS
	}
	for pos < len(changes) {
		end := start + cfg.SlicePS
		sliceStart := time.Now()
		e.obs.trace.Begin(e.obs.tid, "slice")
		for pos < len(changes) && changes[pos].Time < end {
			c := changes[pos]
			pos++
			if err := e.InjectLanes(c.Net, c.Time, c.Word, c.Mask); err != nil {
				e.obs.trace.End(e.obs.tid)
				return err
			}
		}
		if err := e.AdvanceCtx(ctx, end); err != nil {
			e.obs.trace.End(e.obs.tid)
			return err
		}
		limit := end
		for _, nid := range watch {
			if w := e.Events(nid).DeterminedUntil(); w < limit {
				limit = w
			}
		}
		flush(limit)
		e.obs.trace.End(e.obs.tid)
		e.obs.sliceNS.Observe(time.Since(sliceStart).Nanoseconds())
		e.emitSliceCounters(limit)
		if cfg.AfterSlice != nil {
			if err := cfg.AfterSlice(end); err != nil {
				return &SimError{Op: "stream", Cause: err}
			}
		}
		start = end
	}
	if err := e.FinishCtx(ctx); err != nil {
		return err
	}
	flush(TimeInf + 1)
	e.emitSliceCounters(TimeInf)
	return nil
}

// LaneEvents reconstructs lane ln's scalar committed-event stream on a net
// from the queue + lane store: exactly the events a scalar engine running
// lane ln's stimulus alone would have committed there. Lane mode never
// trims, so the whole history is available.
func (e *Engine) LaneEvents(nid netlist.NetID, ln int) []event.Event {
	q := &e.queues[nid]
	st := &e.laneStores[nid]
	var out []event.Event
	for i := q.Start(); i < q.Len(); i++ {
		ev := q.MustAt(i)
		mask, w := st.At(i)
		if mask&(1<<uint(ln)) == 0 {
			continue
		}
		out = append(out, event.Event{Time: ev.Time, Val: w.Get(ln)})
	}
	return out
}
