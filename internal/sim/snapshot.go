package sim

import (
	"encoding/gob"
	"fmt"
	"io"

	"gatesim/internal/logic"
)

// Long signoff simulations benefit from on-disk checkpoints: a run can be
// interrupted and resumed, or forked to explore different stimulus tails.
// A snapshot captures the engine's persistent state — the flat base
// checkpoint and commitment arrays plus per-net retained events and
// watermarks. Scratch state (soft-resume snapshots, dirty flags) is
// recomputed, so snapshots are only valid at quiescent points: after an
// Advance returned and before new stimulus is injected.

// snapshotVersion guards against loading snapshots written by an
// incompatible build. Version 2 stores the flat slot arrays introduced with
// the plan-based engine instead of per-gate records.
const snapshotVersion = 2

type snapshotNet struct {
	BaseVal         logic.Value
	Start           int64
	Times           []int64
	Vals            []logic.Value
	DeterminedUntil int64
}

type snapshot struct {
	Version  int
	Design   string
	NumGates int
	NumNets  int

	// Flat slot arrays in the plan's pin layouts.
	BaseCur        []int64
	BaseVals       []logic.Value
	BaseStates     []logic.Value
	SemBase        []logic.Value
	BaseNow        []int64 // per gate
	LastCommitted  []logic.Value
	CommittedUntil []int64

	Nets      []snapshotNet
	ReadMarks []int64
}

// SaveSnapshot serializes the engine state. Call only between Advance calls
// (never mid-convergence). A poisoned engine refuses to snapshot: the state
// it would capture is suspect.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	if e.poison != nil {
		return e.poisonError("snapshot")
	}
	if e.lanes > 1 {
		return fmt.Errorf("sim: snapshots are not supported in lane mode")
	}
	s := snapshot{
		Version:        snapshotVersion,
		Design:         e.nl.Name,
		NumGates:       len(e.gate),
		NumNets:        len(e.queues),
		BaseCur:        e.baseCur,
		BaseVals:       e.baseVals,
		BaseStates:     e.baseStates,
		SemBase:        e.semBase,
		BaseNow:        make([]int64, len(e.gate)),
		LastCommitted:  e.lastCommitted,
		CommittedUntil: e.committedUntil,
		Nets:           make([]snapshotNet, len(e.queues)),
		ReadMarks:      e.readMarks,
	}
	for i := range e.gate {
		s.BaseNow[i] = e.gate[i].baseNow
	}
	for i := range e.queues {
		q := &e.queues[i]
		sn := snapshotNet{
			BaseVal:         q.BaseVal(),
			Start:           q.Start(),
			DeterminedUntil: q.DeterminedUntil(),
		}
		for k := q.Start(); k < q.Len(); k++ {
			ev := q.MustAt(k)
			sn.Times = append(sn.Times, ev.Time)
			sn.Vals = append(sn.Vals, ev.Val)
		}
		s.Nets[i] = sn
	}
	return gob.NewEncoder(w).Encode(&s)
}

// LoadSnapshot restores state saved by SaveSnapshot into an engine built
// for the *same* netlist and library. All prior engine state is replaced —
// including poison: restoring a known-good snapshot is the sanctioned way
// to bring a poisoned engine back into service.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	if e.lanes > 1 {
		return fmt.Errorf("sim: snapshots are not supported in lane mode")
	}
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("sim: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return fmt.Errorf("sim: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	if s.Design != e.nl.Name || s.NumGates != len(e.gate) || s.NumNets != len(e.queues) {
		return fmt.Errorf("sim: snapshot is for design %q (%d gates, %d nets), engine has %q (%d, %d)",
			s.Design, s.NumGates, s.NumNets, e.nl.Name, len(e.gate), len(e.queues))
	}
	if len(s.BaseCur) != len(e.baseCur) || len(s.BaseStates) != len(e.baseStates) ||
		len(s.SemBase) != len(e.semBase) || len(s.ReadMarks) != len(e.readMarks) {
		return fmt.Errorf("sim: snapshot slot-array shape mismatch")
	}
	copy(e.baseCur, s.BaseCur)
	copy(e.baseVals, s.BaseVals)
	copy(e.baseStates, s.BaseStates)
	copy(e.semBase, s.SemBase)
	copy(e.lastCommitted, s.LastCommitted)
	copy(e.committedUntil, s.CommittedUntil)
	copy(e.readMarks, s.ReadMarks)
	for i := range e.gate {
		g := &e.gate[i]
		g.baseNow = s.BaseNow[i]
		g.softValid = false
		g.futureMin = 0 // conservative until the first visit
		g.detUntil.Store(0)
		// The idle-walk memo was proven against the replaced world's soft
		// values; stale masks would be unsound against the restored state.
		g.maskDet, g.maskUndet = 0, 0
	}
	// Re-mark everything (flags and, with scripts on, the dirty bitset) so
	// the first sweep after the restore rebuilds every soft snapshot. Staged
	// frontier entries belong to the replaced world: drop them.
	e.resetFrontier()
	e.markAllDirty()
	e.lastDirty = len(e.gate)
	for i := range e.queues {
		sn := &s.Nets[i]
		// Rebuild the queue in place: base value, absolute start index,
		// events. Slot pointers in inQ/outQ stay valid because the queue
		// slice itself is reused.
		q := &e.queues[i]
		q.InitAt(&e.pool, sn.BaseVal, sn.Start)
		for k := range sn.Times {
			q.Append(sn.Times[k], sn.Vals[k])
		}
		q.SetDeterminedUntil(sn.DeterminedUntil)
	}
	e.poison = nil
	return nil
}
