package sim

import (
	"encoding/gob"
	"fmt"
	"io"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

// Long signoff simulations benefit from on-disk checkpoints: a run can be
// interrupted and resumed, or forked to explore different stimulus tails.
// A snapshot captures the engine's persistent state — per-gate base
// checkpoints and commitment bookkeeping plus per-net retained events and
// watermarks. Scratch state (soft-resume snapshots, dirty flags) is
// recomputed, so snapshots are only valid at quiescent points: after an
// Advance returned and before new stimulus is injected.

// snapshotVersion guards against loading snapshots written by an
// incompatible build.
const snapshotVersion = 1

type snapshotGate struct {
	BaseCur        []int64
	BaseVals       []logic.Value
	BaseStates     []logic.Value
	SemBase        []logic.Value
	BaseNow        int64
	LastCommitted  []logic.Value
	CommittedUntil []int64
}

type snapshotNet struct {
	BaseVal         logic.Value
	Start           int64
	Times           []int64
	Vals            []logic.Value
	DeterminedUntil int64
}

type snapshot struct {
	Version   int
	Design    string
	NumGates  int
	NumNets   int
	Gates     []snapshotGate
	Nets      []snapshotNet
	ReadMarks map[netlist.NetID]int64
}

// SaveSnapshot serializes the engine state. Call only between Advance calls
// (never mid-convergence).
func (e *Engine) SaveSnapshot(w io.Writer) error {
	s := snapshot{
		Version:   snapshotVersion,
		Design:    e.nl.Name,
		NumGates:  len(e.gate),
		NumNets:   len(e.nets),
		Gates:     make([]snapshotGate, len(e.gate)),
		Nets:      make([]snapshotNet, len(e.nets)),
		ReadMarks: e.readMarks,
	}
	for i := range e.gate {
		g := &e.gate[i]
		s.Gates[i] = snapshotGate{
			BaseCur:        g.baseCur,
			BaseVals:       g.baseVals,
			BaseStates:     g.baseStates,
			SemBase:        g.semBase,
			BaseNow:        g.baseNow,
			LastCommitted:  g.lastCommitted,
			CommittedUntil: g.committedUntil,
		}
	}
	for i := range e.nets {
		q := e.nets[i].q
		sn := snapshotNet{
			BaseVal:         q.BaseVal(),
			Start:           q.Start(),
			DeterminedUntil: q.DeterminedUntil,
		}
		for k := q.Start(); k < q.Len(); k++ {
			ev := q.At(k)
			sn.Times = append(sn.Times, ev.Time)
			sn.Vals = append(sn.Vals, ev.Val)
		}
		s.Nets[i] = sn
	}
	return gob.NewEncoder(w).Encode(&s)
}

// LoadSnapshot restores state saved by SaveSnapshot into an engine built
// for the *same* netlist and library. All prior engine state is replaced.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("sim: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return fmt.Errorf("sim: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	if s.Design != e.nl.Name || s.NumGates != len(e.gate) || s.NumNets != len(e.nets) {
		return fmt.Errorf("sim: snapshot is for design %q (%d gates, %d nets), engine has %q (%d, %d)",
			s.Design, s.NumGates, s.NumNets, e.nl.Name, len(e.gate), len(e.nets))
	}
	for i := range e.gate {
		g := &e.gate[i]
		sg := &s.Gates[i]
		if len(sg.BaseCur) != len(g.baseCur) || len(sg.BaseStates) != len(g.baseStates) ||
			len(sg.SemBase) != len(g.semBase) {
			return fmt.Errorf("sim: snapshot gate %d shape mismatch", i)
		}
		copy(g.baseCur, sg.BaseCur)
		copy(g.baseVals, sg.BaseVals)
		copy(g.baseStates, sg.BaseStates)
		copy(g.semBase, sg.SemBase)
		g.baseNow = sg.BaseNow
		copy(g.lastCommitted, sg.LastCommitted)
		copy(g.committedUntil, sg.CommittedUntil)
		g.softValid = false
		g.hasFutureWork = true // conservative until the first visit
		g.detUntil.Store(0)
		g.dirty.Store(true)
	}
	for i := range e.nets {
		sn := &s.Nets[i]
		// Rebuild the queue: base value, absolute start index, events.
		q := event.NewQueueAt(&e.pool, sn.BaseVal, sn.Start)
		for k := range sn.Times {
			q.Append(sn.Times[k], sn.Vals[k])
		}
		q.DeterminedUntil = sn.DeterminedUntil
		e.nets[i].q = q
	}
	// Re-wire gate queue pointers onto the rebuilt queues.
	for i := range e.gate {
		g := &e.gate[i]
		inst := &e.nl.Instances[i]
		for pi, nid := range inst.InNets {
			g.inQ[pi] = e.nets[nid].q
		}
		for po, nid := range inst.OutNets {
			if nid >= 0 {
				g.outQ[po] = e.nets[nid].q
			}
		}
	}
	e.readMarks = s.ReadMarks
	return nil
}
