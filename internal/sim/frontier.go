package sim

import (
	"math"
	"runtime/debug"
	"sync/atomic"

	"gatesim/internal/netlist"
	"gatesim/internal/plan"
)

// Per-net frontier time plane: watermark advances are committed once per
// net, not once per gate walk.
//
// When a net's watermark moves but the visit committed no new events, the
// only thing a waiting reader would do with a visit is re-run its idle
// expiry walk (idleComb1 and its script/lane twins). The predecessor of
// this file (watermark relax) already replaced those visits with direct
// walks, but it still paid one reader-cloud scan per watermark move: every
// quiet advance re-walked the net's fanout to stage or mark each reader.
// The frontier plane moves that scan to drain time and coalesces it:
// markLoads stages the *net* in O(1) — a flag, a bucket append, and a
// min-fold of the old watermark — and the drain publishes each staged
// net's accumulated advance to its whole reader cloud in one frontier
// commit, however many times the watermark moved since the last drain.
//
// Coalescing is sound because the staged mark keeps the minimum wOld of
// the folded moves: the reader filter {detUntil >= min(wOld_i)} is exactly
// the union of the per-move filters, and reading detUntil at drain time
// instead of move time only widens the filter (detUntil is monotone), which
// at worst stages a reader whose walk is a no-op.
//
// Eligibility and fallback. A reader is walked only when the walk is the
// whole visit: plan.FrontEligible (ClassComb1 — single output, zero state,
// no edge pins, packed LUT) and, at walk time, a valid soft snapshot with
// no unconsumed input events. Anything else — seq kernels, never-visited
// gates, gates with events in flight — falls back to a normal dirty mark,
// exactly the set the baseline would have marked (the detUntil >= wOld
// frontier filter is applied on both paths), so committed event streams
// stay bit-identical to Options.DisableFrontier by sweep confluence. Nets
// with no eligible reader at all (plan.FrontNetNone) skip the plane
// entirely and keep the baseline mark loop in markLoads.
//
// Two-tier worklist. Tier 1 stages nets, bucketed by plan.NetLevel; tier 2
// stages the walkable gates the drain discovers, bucketed by
// plan.FrontLevel (the gate's output-net level), deduped through the
// cellState staged bit so a gate whose inputs move several times between
// drains walks once with every accumulated move batched. Gate staging
// happens only inside the drain — coordinator-only, workers joined — so
// tier 2 needs no atomics ever. Net staging happens on the visit paths:
// plain stores on a single-goroutine engine; under pool workers, the mark
// doubles as the flag — a CAS away from frontierUnstaged wins the bucket
// append (exactly one stager can make that transition per drain cycle),
// and losers min-fold the mark with a CAS loop so a lower wOld never loses
// a wakeup; the drain resets the mark to frontierUnstaged after reading
// it, with the pool joined.
//
// Drain order. The pass walks levels upward; within a level it drains the
// gate bucket first, then the net bucket. A gate walk at FrontLevel lv
// advances its output net at NetLevel lv, staging the net bucket the pass
// is about to drain; a net commit at NetLevel lv stages gates at
// FrontLevel >= lv+1 only (a reader of a level-lv net outputs strictly
// deeper) and dirty-marks ineligible or blocked readers. One monotone pass
// therefore settles every staging it creates — the eligible subgraph is a
// DAG; feedback runs through sequential cells, which always fall back.
//
// Placement. Watermark moves are the bridge that lets an event wave travel
// several levels inside one sweep, so a single-goroutine sweep drains at
// every segment boundary, bounded by the segment's level: only the nets
// the upcoming segment can read (NetLevel <= segment level) are settled,
// and deeper stagings stay bucketed to batch further moves. The
// sequential segment's boundary drains with bound 0 — primary-input moves
// staged by AdvanceCtx and flop-output moves from the previous sweep live
// in net bucket 0, and their seq readers must be marked before the seq
// scan, not after. A full post-sweep pass (inside each converge iteration,
// before the exit checks) drains what the last segments staged. Pooled
// sweeps cannot drain mid-sweep (the coordinator owns the pass) and rely
// on a full pre-loop pass plus the post-sweep placement.
//
// Exit safety. The post-sweep drain leaves both tiers empty at every exit
// check, so converge can never return with a live staging it owed this
// horizon; dirty marks the pass makes are counted in passDirty and owe
// another sweep. The only stagings alive outside converge are the ones
// AdvanceCtx files for primary-input watermark moves, picked up by the
// first boundary (serial) or pre-loop (pooled) drain of the next converge.

// frontierUnstaged is the netMark value of an unstaged net: above every
// real watermark, so any staging's min-fold replaces it.
const frontierUnstaged = int64(math.MaxInt64)

// frontierState is the engine's two-tier frontier worklist. All slices are
// preallocated at construction; the zero value (frontier disabled) keeps
// every field nil.
type frontierState struct {
	on bool
	// serial is set when sweeps run on a single goroutine: net staging may
	// then use plain stores, and drains may read visit-owned gate state
	// (dirty bit, soft snapshot) without synchronization.
	serial bool

	// Tier 1 — staged nets. netMark[n] doubles as the staged flag and the
	// accumulator: frontierUnstaged means unstaged, and the transition away
	// from it (CAS under workers) wins the bucket append; while staged it
	// holds the minimum old watermark of the folded moves, reset to
	// frontierUnstaged by the drain. One array means one cache line per
	// staging, and the encoding is unambiguous because markLoads only
	// stages nets whose watermark moved — wOld is strictly below the new
	// watermark, so it can never equal frontierUnstaged (TimeInf).
	// nets/netLen are per-NetLevel buckets preallocated to the level's
	// staging-eligible net population (NetFront != FrontNetNone), so an
	// append is an index store.
	netMark []int64
	nets    [][]netlist.NetID
	netLen  []int64

	// Tier 2 — staged gate walks, filed by frontier commits only
	// (coordinator-side, so plain ops throughout). cellState[g] packs the
	// staged flag (bit 0) with the gate's walk level, plan.FrontLevel[g]
	// (bits 1+), so the commit's staging hot path touches one array — one
	// cache miss — instead of a flag array plus a plan lookup; cells/cellLen
	// are per-FrontLevel buckets preallocated to the level's eligible
	// population.
	cellState []uint32
	cells     [][]netlist.CellID
	cellLen   []int64

	// staged counts the entries alive in both tiers, so pass entry and the
	// executor's drain check are O(1) instead of an every-level bucket
	// scan. Workers increment it with the net-flag CAS win (atomically);
	// every other access is coordinator-side (or single-goroutine) and
	// plain — the pool join orders them against the worker increments.
	staged int64
	// loLv is the lowest level that may hold a staging, so a bounded
	// boundary drain starts its level walk where the work is. Maintained
	// only on single-goroutine engines (bounded drains are serial-only;
	// pooled engines always drain every level and leave it 0, which is
	// always a safe understatement).
	loLv int
	// draining is set by the coordinator around frontierPass; while set,
	// markDirty counts every mark in passDirty — fallback marks and marks
	// from events the pass commits alike: work the pass owes the next
	// sweep, which converge's exit conditions must see. Workers never run
	// while it is set (the pool round has joined), so both fields are plain.
	draining  bool
	passDirty int64
}

// stageFrontierNet stages one watermark-only net advance: O(1) per move,
// with repeated moves between drains coalescing onto the same staging by
// min-folding the old watermark. Called from markLoads on every visit path
// (workers included), so the pooled variant CASes the flag and min-CASes
// the mark; the flag loser still folds — its move may carry a lower wOld
// than the winner's.
func (e *Engine) stageFrontierNet(nid netlist.NetID, wOld int64) {
	f := &e.front
	if f.serial {
		if m := f.netMark[nid]; m == frontierUnstaged {
			f.netMark[nid] = wOld
			lv := e.p.NetLevel[nid]
			f.nets[lv][f.netLen[lv]] = nid
			f.netLen[lv]++
			f.staged++
			if int(lv) < f.loLv {
				f.loLv = int(lv)
			}
		} else if wOld < m {
			f.netMark[nid] = wOld
		}
		return
	}
	if atomic.CompareAndSwapInt64(&f.netMark[nid], frontierUnstaged, wOld) {
		lv := e.p.NetLevel[nid]
		n := atomic.AddInt64(&f.netLen[lv], 1) - 1
		f.nets[lv][n] = nid
		atomic.AddInt64(&f.staged, 1)
		return
	}
	for {
		old := atomic.LoadInt64(&f.netMark[nid])
		if wOld >= old {
			return
		}
		if atomic.CompareAndSwapInt64(&f.netMark[nid], old, wOld) {
			return
		}
	}
}

// frontierNeedsVisit reports whether an eligible reader cannot be advanced
// by an idle expiry walk right now: it has never been visited (no soft
// snapshot), or input events are waiting that only a real visit may
// consume. The blocked flag stands in for a queue scan — every visit exit
// recomputes it from the same cursors the scan would read, and events
// appended since then always came with an unconditional dirty mark, which
// frontierCell checks before calling here. Reads the gate's visit-owned
// state, so callers must hold single-threaded access to the gate — the
// coordinator mid-drain, or any code on a single-goroutine sweep — and
// must have ruled out a live dirty mark first.
func (e *Engine) frontierNeedsVisit(cell netlist.CellID) bool {
	g := &e.gate[cell]
	return !g.softValid || g.blocked
}

// isDirty reports whether the gate's dirty mark is already set. Requires
// single-threaded access — a single-goroutine engine, or the coordinator
// once the pool round has joined — because the unsynchronized read is only
// meaningful when no claimer can clear the bit concurrently.
func (e *Engine) isDirty(cell netlist.CellID) bool {
	if e.dirtyBits == nil {
		return e.gate[cell].dirty.Load()
	}
	bit := e.p.BitOf[cell]
	return e.dirtyBits[bit>>6]&(uint64(1)<<(uint(bit)&63)) != 0
}

// frontierAllLevels asks frontierPass to drain every level.
const frontierAllLevels = int(^uint(0) >> 1)

// frontierPass drains the staged tiers in one monotone walk up the levels,
// stopping after maxLv (frontierAllLevels drains everything; a single-
// goroutine sweep passes the upcoming segment's level so only the nets
// that segment can read are settled, leaving deeper stagings to batch
// further moves). Within each level the gate bucket drains before the net
// bucket — a walk's own watermark move stages the net bucket the pass is
// about to read, and a net commit stages only strictly deeper gates — so
// every staging the pass creates is reached by the same loop.
// Coordinator-only, after each sweep's pool round has joined. Returns the
// number of dirty marks the pass made — work it owes another sweep — and,
// for a panic inside gate code (the GateHook chaos path included), a
// containment record for the engine to poison on, like a sweep panic.
func (e *Engine) frontierPass(maxLv int) (dirtied int64, rec *panicRecord) {
	f := &e.front
	top := len(f.nets) - 1
	if maxLv < top {
		top = maxLv
	}
	if f.staged == 0 || (f.serial && f.loLv > top) {
		// Nothing staged, or (bounded drain) everything staged is deeper
		// than the bound: the pass would drain nothing, so skip even the
		// containment and stats plumbing — boundary drains run once per
		// segment per sweep and this is their common case.
		return 0, nil
	}
	cur := netlist.CellID(-1)
	f.draining = true
	f.passDirty = 0
	defer func() {
		f.draining = false
		if v := recover(); v != nil {
			rec = &panicRecord{value: v, stack: debug.Stack(), gate: cur, seg: -1}
		}
	}()
	sc := e.exec.scratches[0]
	var commits, walked int64
	lo := 0
	if f.serial {
		lo = f.loLv
	}
	for lv := lo; lv <= top && f.staged > 0; lv++ {
		// Gate bucket first: cellLen[lv] is fixed while it runs — walks
		// stage nets at this level, and commits stage gates strictly above.
		n := f.cellLen[lv]
		walked += n
		for i := int64(0); i < n; i++ {
			cell := f.cells[lv][i]
			f.cellState[cell] &^= 1
			e.frontierCell(cell, &cur, sc)
		}
		f.cellLen[lv] = 0
		// Net bucket: publish each staged net's coalesced advance to its
		// reader cloud. netLen[lv] is fixed here — commits move no
		// watermarks — and the mark reset is safe: no worker runs.
		m := f.netLen[lv]
		for i := int64(0); i < m; i++ {
			nid := f.nets[lv][i]
			wOld := f.netMark[nid]
			f.netMark[nid] = frontierUnstaged
			e.frontierCommit(nid, wOld)
		}
		f.netLen[lv] = 0
		f.staged -= n + m
		commits += m
	}
	if f.serial {
		// Every level through top drained; whatever survives is deeper.
		if f.staged == 0 {
			f.loLv = len(f.nets)
		} else if f.loLv <= top {
			f.loLv = top + 1
		}
	}
	e.stats.frontierCommits.Add(commits)
	e.obs.frontierCommits.Add(commits)
	if walked != 0 {
		// Only walks touch the scratch counters; a nets-only pass has
		// nothing to fold.
		e.exec.mergeStats()
	}
	return f.passDirty, nil
}

// frontierCommit publishes one net's coalesced watermark advance to its
// readers: the planned eligible cloud (plan.FrontCell CSR) is scanned
// once, staging each waiting unblocked reader for a walk and dirty-marking
// the rest; mixed nets additionally scan their full fanout for the
// ineligible readers the CSR excludes. The detUntil filter matches
// markLoads' baseline boundary semantics exactly (inclusive at wOld).
func (e *Engine) frontierCommit(nid netlist.NetID, wOld int64) {
	p := e.p
	f := &e.front
	for k := p.FrontOff[nid]; k < p.FrontOff[nid+1]; k++ {
		cell := p.FrontCell[k]
		// Staged-bit first: a reader already staged by an earlier commit in
		// this pass needs nothing more, and the dense cellState probe spares
		// the gate-struct load — multi-input readers sit in several clouds,
		// so within one pass this is the common repeat case. (A blocked
		// already-staged reader loses nothing: its walk-time fallback makes
		// the same dirty mark this loop would have.)
		st := f.cellState[cell]
		if st&1 != 0 {
			continue
		}
		g := &e.gate[cell]
		if g.detUntil.Load() < wOld {
			continue
		}
		// g.blocked rides the cache line the frontier check just loaded: a
		// reader whose last visit left unconsumed input events needs a real
		// visit. A stale flag is safe either way — the walk-time fallback
		// (frontierNeedsVisit) re-checks the queues themselves.
		if g.blocked {
			e.markDirty(cell)
			continue
		}
		f.cellState[cell] = st | 1
		lv := st >> 1
		f.cells[lv][f.cellLen[lv]] = cell
		f.cellLen[lv]++
		f.staged++
	}
	if p.NetFront[nid] == plan.FrontNetMixed {
		for k := p.FanOff[nid]; k < p.FanOff[nid+1]; k++ {
			cell := p.FanCell[k]
			if p.FrontEligible[cell] {
				continue
			}
			if e.gate[cell].detUntil.Load() >= wOld {
				e.markDirty(cell)
			}
		}
	}
}

// frontierCell runs one staged reader's idle expiry walk — committing any
// soft-pending transitions the advancing frontiers finalize and staging
// its output net when the watermark moved. A reader that turns out to need
// a real visit after all (no soft snapshot yet, or input events committed
// by a lower-level walk in this same pass) falls back to a dirty mark; the
// check happens at walk time, after every lower level settled, so it sees
// the pass's own commits.
func (e *Engine) frontierCell(cell netlist.CellID, cur *netlist.CellID, sc *scratch) {
	p := e.p
	if e.isDirty(cell) {
		// Already owed a visit (an event mark landed after staging); the
		// visit reads the live queues, covering this move too.
		return
	}
	if e.frontierNeedsVisit(cell) {
		e.markDirty(cell)
		return
	}
	*cur = cell
	if hook := e.opts.GateHook; hook != nil {
		hook(cell)
	}
	switch {
	case e.lanes > 1:
		// Lane mode always compiles scripts; the walk is the lane-word idle
		// kernel, probing every lane per expiry.
		sp := &p.Scripts[p.SegOf[cell]]
		e.idleLaneScriptComb1(&sp.Ops[p.BitOf[cell]-sp.BitOff], sc)
	case e.dirtyBits != nil:
		// Compiled schedule: run the walk from the gate's script
		// instruction — same pre-gathered operands the sweep uses, so the
		// pass pays no per-gate plan lookups either.
		sp := &p.Scripts[p.SegOf[cell]]
		e.idleScriptComb1(&sp.Ops[p.BitOf[cell]-sp.BitOff], sc)
	default:
		e.idleComb1(cell, sc)
	}
	*cur = -1
}

// resetFrontier empties both tiers (snapshot restore: the staged state
// belongs to the replaced world; markAllDirty re-derives everything).
func (e *Engine) resetFrontier() {
	f := &e.front
	if !f.on {
		return
	}
	for lv := range f.nets {
		for _, nid := range f.nets[lv][:f.netLen[lv]] {
			f.netMark[nid] = frontierUnstaged
		}
		f.netLen[lv] = 0
		for _, cell := range f.cells[lv][:f.cellLen[lv]] {
			f.cellState[cell] &^= 1
		}
		f.cellLen[lv] = 0
	}
	f.staged = 0
	f.loLv = len(f.nets)
}
