package sim

import (
	"fmt"
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
)

// benchCombNetlist is a feed-forward cloud of packable single-output gates:
// a toggle on the primary input re-visits every gate, so ns/visit isolates
// the per-gate evaluation cost of the chosen path.
func benchCombNetlist(b *testing.B, gates int) *netlist.Netlist {
	b.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("benchcomb", lib)
	if err := nl.MarkInput(nl.AddNet("n0")); err != nil {
		b.Fatal(err)
	}
	net := func(i int) string { return fmt.Sprintf("n%d", i) }
	for i := 1; i <= gates; i++ {
		back5 := i - 5
		if back5 < 0 {
			back5 = 0
		}
		var err error
		switch i % 3 {
		case 0:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", i), "INV",
				map[string]string{"A": net(i - 1), "Y": net(i)})
		case 1:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", i), "NAND2",
				map[string]string{"A": net(i - 1), "B": net(back5), "Y": net(i)})
		default:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", i), "XOR2",
				map[string]string{"A": net(i - 1), "B": net(back5), "Y": net(i)})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	return nl
}

// benchSeqNetlist is a DFF shift register: every clock edge visits every
// flop through the generic interpreter (DFFs are ClassSeq).
func benchSeqNetlist(b *testing.B, gates int) *netlist.Netlist {
	b.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("benchseq", lib)
	for _, p := range []string{"clk", "d0"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < gates; i++ {
		din := "d0"
		if i > 0 {
			din = fmt.Sprintf("q%d", i-1)
		}
		if _, err := nl.AddInstance(fmt.Sprintf("ff%d", i), "DFF_P",
			map[string]string{"CLK": "clk", "D": din, "Q": fmt.Sprintf("q%d", i), "QN": fmt.Sprintf("qn%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	return nl
}

func benchToggle(b *testing.B, nl *netlist.Netlist, toggleNet string, opts Options) {
	b.Helper()
	e, err := New(nl, testLib, sdf.Uniform(nl, 2), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	nid, ok := nl.Net(toggleNet)
	if !ok {
		b.Fatalf("net %s missing", toggleNet)
	}
	// Settle the X-initialized state outside the timed region.
	if err := e.Inject(nid, 500, logic.V0); err != nil {
		b.Fatal(err)
	}
	if err := e.Advance(1000); err != nil {
		b.Fatal(err)
	}
	startVisits := e.Stats().Visits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(1000 + i*5000)
		if err := e.Inject(nid, t, logic.Value(1-i%2)); err != nil {
			b.Fatal(err)
		}
		if err := e.Advance(t + 5000); err != nil {
			b.Fatal(err)
		}
		// Fold and trim as a streaming driver would, so the queues stay
		// bounded and the loop measures steady state rather than growth.
		e.Checkpoint()
	}
	b.StopTimer()
	visits := e.Stats().Visits - startVisits
	if visits > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(visits), "ns/visit")
	}
}

// BenchmarkVisit isolates per-gate visit cost by kernel class. comb runs the
// packed-LUT kernel, comb-generic runs the exact same gates through the
// generic interpreter (Options.DisableKernels), seq runs a DFF shift
// register (always generic). Compare comb vs comb-generic for the kernel
// speedup.
func BenchmarkVisit(b *testing.B) {
	const gates = 512
	comb := benchCombNetlist(b, gates)
	seq := benchSeqNetlist(b, gates)
	b.Run("comb", func(b *testing.B) {
		benchToggle(b, comb, "n0", Options{Mode: ModeSerial})
	})
	b.Run("comb-generic", func(b *testing.B) {
		benchToggle(b, comb, "n0", Options{Mode: ModeSerial, DisableKernels: true})
	})
	b.Run("seq", func(b *testing.B) {
		benchToggle(b, seq, "clk", Options{Mode: ModeSerial})
	})
}
