package sim

import (
	"fmt"
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
)

// benchCombNetlist is a feed-forward cloud of packable single-output gates:
// a toggle on the primary input re-visits every gate, so ns/visit isolates
// the per-gate evaluation cost of the chosen path.
func benchCombNetlist(b *testing.B, gates int) *netlist.Netlist {
	b.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("benchcomb", lib)
	if err := nl.MarkInput(nl.AddNet("n0")); err != nil {
		b.Fatal(err)
	}
	net := func(i int) string { return fmt.Sprintf("n%d", i) }
	for i := 1; i <= gates; i++ {
		back5 := i - 5
		if back5 < 0 {
			back5 = 0
		}
		var err error
		switch i % 3 {
		case 0:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", i), "INV",
				map[string]string{"A": net(i - 1), "Y": net(i)})
		case 1:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", i), "NAND2",
				map[string]string{"A": net(i - 1), "B": net(back5), "Y": net(i)})
		default:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", i), "XOR2",
				map[string]string{"A": net(i - 1), "B": net(back5), "Y": net(i)})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	return nl
}

// benchSeqNetlist is a DFF shift register: every clock edge visits every
// flop through the generic interpreter (DFFs are ClassSeq).
func benchSeqNetlist(b *testing.B, gates int) *netlist.Netlist {
	b.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("benchseq", lib)
	for _, p := range []string{"clk", "d0"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < gates; i++ {
		din := "d0"
		if i > 0 {
			din = fmt.Sprintf("q%d", i-1)
		}
		if _, err := nl.AddInstance(fmt.Sprintf("ff%d", i), "DFF_P",
			map[string]string{"CLK": "clk", "D": din, "Q": fmt.Sprintf("q%d", i), "QN": fmt.Sprintf("qn%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	return nl
}

func benchToggle(b *testing.B, nl *netlist.Netlist, toggleNet string, opts Options) {
	b.Helper()
	benchToggleEvery(b, nl, toggleNet, opts, 1)
}

// benchToggleEvery is benchToggle with a checkpoint cadence: folding every
// iteration keeps queues minimal but its full-design scan dwarfs the sweep
// cost on sparse workloads, so those use a coarser cadence.
func benchToggleEvery(b *testing.B, nl *netlist.Netlist, toggleNet string, opts Options, ckptEvery int) {
	b.Helper()
	e, err := New(nl, testLib, sdf.Uniform(nl, 2), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	nid, ok := nl.Net(toggleNet)
	if !ok {
		b.Fatalf("net %s missing", toggleNet)
	}
	// Settle the X-initialized state outside the timed region.
	if err := e.Inject(nid, 500, logic.V0); err != nil {
		b.Fatal(err)
	}
	if err := e.Advance(1000); err != nil {
		b.Fatal(err)
	}
	startVisits := e.Stats().Visits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(1000 + i*5000)
		if err := e.Inject(nid, t, logic.Value(1-i%2)); err != nil {
			b.Fatal(err)
		}
		if err := e.Advance(t + 5000); err != nil {
			b.Fatal(err)
		}
		// Fold and trim as a streaming driver would, so the queues stay
		// bounded and the loop measures steady state rather than growth.
		if (i+1)%ckptEvery == 0 {
			e.Checkpoint()
		}
	}
	b.StopTimer()
	visits := e.Stats().Visits - startVisits
	if visits > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(visits), "ns/visit")
	}
}

// benchSparseNetlist models the common signoff shape where most of the
// design is quiet: a short active chain off the toggled input feeds a DFF
// whose clock never moves, and the flop's output fans out to a wide cloud
// of gates that settle once and never change again. Per-iteration cost is
// dominated by how cheaply the executor walks past the quiet gates —
// per-gate flag scans on the interpreted path, word/segment skips on the
// script path.
func benchSparseNetlist(b *testing.B, quiet, active int) *netlist.Netlist {
	b.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("benchsparse", lib)
	for _, p := range []string{"n0", "clk"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 1; i <= active; i++ {
		if _, err := nl.AddInstance(fmt.Sprintf("g%d", i), "INV",
			map[string]string{"A": fmt.Sprintf("n%d", i-1), "Y": fmt.Sprintf("n%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("ff0", "DFF_P", map[string]string{
		"CLK": "clk", "D": fmt.Sprintf("n%d", active), "Q": "q0", "QN": "qn0",
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < quiet; i++ {
		if _, err := nl.AddInstance(fmt.Sprintf("w%d", i), "INV",
			map[string]string{"A": "q0", "Y": fmt.Sprintf("wy%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	return nl
}

// BenchmarkScriptReplay compares the compiled script-replay path against
// the interpreted per-gate sweep (Options.DisableScripts) on the same
// netlists. dense re-visits every gate each toggle, isolating replay
// dispatch; sparse keeps ~97% of the gates clean, isolating the cost of
// walking past quiet state (dirty-bitset words vs per-gate flags).
func BenchmarkScriptReplay(b *testing.B) {
	const gates = 512
	dense := benchCombNetlist(b, gates)
	sparse := benchSparseNetlist(b, gates, 16)
	b.Run("dense/scripts", func(b *testing.B) {
		benchToggle(b, dense, "n0", Options{Mode: ModeSerial})
	})
	b.Run("dense/interpreted", func(b *testing.B) {
		benchToggle(b, dense, "n0", Options{Mode: ModeSerial, DisableScripts: true})
	})
	b.Run("sparse/scripts", func(b *testing.B) {
		benchToggleEvery(b, sparse, "n0", Options{Mode: ModeSerial}, 32)
	})
	b.Run("sparse/interpreted", func(b *testing.B) {
		benchToggleEvery(b, sparse, "n0", Options{Mode: ModeSerial, DisableScripts: true}, 32)
	})
}

// BenchmarkVisit isolates per-gate visit cost by kernel class. comb runs the
// packed-LUT kernel, comb-generic runs the exact same gates through the
// generic interpreter (Options.DisableKernels), seq runs a DFF shift
// register (always generic). Compare comb vs comb-generic for the kernel
// speedup.
func BenchmarkVisit(b *testing.B) {
	const gates = 512
	comb := benchCombNetlist(b, gates)
	seq := benchSeqNetlist(b, gates)
	b.Run("comb", func(b *testing.B) {
		benchToggle(b, comb, "n0", Options{Mode: ModeSerial})
	})
	b.Run("comb-generic", func(b *testing.B) {
		benchToggle(b, comb, "n0", Options{Mode: ModeSerial, DisableKernels: true})
	})
	b.Run("seq", func(b *testing.B) {
		benchToggle(b, seq, "clk", Options{Mode: ModeSerial})
	})
}
