package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

var testLib = mustCompile()

func mustCompile() *truthtab.CompiledLibrary {
	cl, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		panic(err)
	}
	return cl
}

// collectEngine drains all committed events per net.
func collectEngine(e *Engine) map[netlist.NetID][]event.Event {
	out := make(map[netlist.NetID][]event.Event)
	for nid := range e.nl.Nets {
		q := e.Events(netlist.NetID(nid))
		for i := q.Start(); i < q.Len(); i++ {
			out[netlist.NetID(nid)] = append(out[netlist.NetID(nid)], q.MustAt(i))
		}
	}
	return out
}

func diffStreams(t *testing.T, nl *netlist.Netlist, want, got map[netlist.NetID][]event.Event, label string) {
	t.Helper()
	for nid := range nl.Nets {
		w, g := want[netlist.NetID(nid)], got[netlist.NetID(nid)]
		if len(w) != len(g) {
			t.Fatalf("%s: net %s: %d events vs %d\nwant %v\ngot  %v",
				label, nl.Nets[nid].Name, len(w), len(g), w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: net %s event %d: want %+v got %+v",
					label, nl.Nets[nid].Name, i, w[i], g[i])
			}
		}
	}
}

func TestInverterChainWaveform(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl := netlist.New("chain", lib)
	if err := nl.MarkInput(nl.AddNet("a")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := nl.AddInstance(fmt.Sprintf("inv%d", i), "INV",
			map[string]string{"A": fmt.Sprintf("n%d", i), "Y": fmt.Sprintf("n%d", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	// n0 is the input: rename by aliasing via a BUF from a.
	if _, err := nl.AddInstance("buf", "BUF", map[string]string{"A": "a", "Y": "n0"}); err != nil {
		t.Fatal(err)
	}
	delays := sdf.Uniform(nl, 10)
	e, err := New(nl, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := nl.Net("a")
	if err := e.Inject(a, 100, logic.V0); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(a, 200, logic.V1); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	// n3 = INV(INV(INV(BUF(a)))): inverted, 40ps later. Initial value X;
	// a=0 at 100 makes n3=1 at 140; a=1 at 200 makes n3=0 at 240.
	n3, _ := nl.Net("n3")
	q := e.Events(n3)
	var got []event.Event
	for i := q.Start(); i < q.Len(); i++ {
		got = append(got, q.MustAt(i))
	}
	want := []event.Event{{Time: 140, Val: logic.V1}, {Time: 240, Val: logic.V0}}
	if len(got) != len(want) {
		t.Fatalf("events: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if q.DeterminedUntil() != TimeInf {
		t.Errorf("final watermark %d, want TimeInf", q.DeterminedUntil())
	}
}

func TestToggleFlipFlop(t *testing.T) {
	// DFF_PR with QN fed back to D: divide-by-two of the clock after reset
	// release.
	lib := liberty.MustBuiltin()
	nl := netlist.New("div2", lib)
	for _, p := range []string{"clk", "rst_n"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("ff", "DFF_PR", map[string]string{
		"CLK": "clk", "D": "qn", "RESET_B": "rst_n", "Q": "q", "QN": "qn"}); err != nil {
		t.Fatal(err)
	}
	q, _ := nl.Net("q")
	nl.MarkOutput(q)
	delays := sdf.Uniform(nl, 50)
	e, err := New(nl, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	clk, _ := nl.Net("clk")
	rst, _ := nl.Net("rst_n")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Inject(clk, 0, logic.V0))
	must(e.Inject(rst, 0, logic.V0))
	must(e.Inject(rst, 250, logic.V1))
	for c := 0; c < 4; c++ {
		must(e.Inject(clk, int64(500+1000*c), logic.V1))
		must(e.Inject(clk, int64(1000+1000*c), logic.V0))
	}
	must(e.Finish())

	qq := e.Events(q)
	var got []event.Event
	for i := qq.Start(); i < qq.Len(); i++ {
		got = append(got, qq.MustAt(i))
	}
	// Reset pulls Q to 0 at 0+50. Edges at 500,1500,2500,3500 toggle Q
	// (capturing QN) with 50ps CLK->Q delay.
	want := []event.Event{
		{Time: 50, Val: logic.V0},
		{Time: 550, Val: logic.V1},
		{Time: 1550, Val: logic.V0},
		{Time: 2550, Val: logic.V1},
		{Time: 3550, Val: logic.V0},
	}
	if len(got) != len(want) {
		t.Fatalf("toggle events: %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestStableTimeThroughClockGate reproduces the Fig. 4 phenomenon at system
// level: with the clock gate shut, the gated clock net is determined (stable
// 0) arbitrarily far beyond the point where ungated activity would stop.
func TestStableTimeThroughClockGate(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl := netlist.New("cg", lib)
	for _, p := range []string{"clk", "en"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nl.AddInstance("cg", "CLKGATE", map[string]string{
		"CLK": "clk", "GATE": "en", "GCLK": "gclk"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("ff", "DFF_P", map[string]string{
		"CLK": "gclk", "D": "d", "Q": "qout"}); err != nil {
		t.Fatal(err)
	}
	if err := nl.MarkInput(nl.AddNet("d")); err != nil {
		t.Fatal(err)
	}
	e, err := New(nl, testLib, sdf.Uniform(nl, 10), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	clk, _ := nl.Net("clk")
	en, _ := nl.Net("en")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Inject(en, 0, logic.V0)) // gate shut
	for c := 0; c < 10; c++ {
		must(e.Inject(clk, int64(c*1000+500), logic.V1))
		must(e.Inject(clk, int64(c*1000+1000), logic.V0))
	}
	must(e.Advance(10_500))

	gclk, _ := nl.Net("gclk")
	wm := e.Events(gclk).DeterminedUntil()
	if wm < 10_500 {
		t.Errorf("gated clock watermark %d; the stable-off gate should keep it determined", wm)
	}
	if got := e.Value(gclk, 9_999); got != logic.V0 {
		t.Errorf("gated clock should be stable 0, got %v", got)
	}
	// The downstream FF's output watermark must also be far along even
	// though D was never driven (it is X, determined).
	qout, _ := nl.Net("qout")
	if wm := e.Events(qout).DeterminedUntil(); wm < 10_000 {
		t.Errorf("gated FF output watermark %d; stable time did not propagate", wm)
	}
}

// runBoth runs the engine (given options) and refsim on the same generated
// design/stimuli and compares all event streams exactly.
func runBoth(t *testing.T, d *gen.Design, stim []gen.Change, opts Options) {
	t.Helper()
	delays := gen.Delays(d, 7)

	ref, err := refsim.New(d.Netlist, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	e, err := New(d.Netlist, testLib, delays, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	got := collectEngine(e)
	diffStreams(t, d.Netlist, want, got, fmt.Sprintf("mode=%v threads=%d", opts.Mode, opts.Threads))

	// Liveness: everything fully determined at the end.
	for nid := range d.Netlist.Nets {
		if len(d.Netlist.Nets[nid].Fanout) == 0 && d.Netlist.Nets[nid].Driver < 0 {
			continue
		}
		if wm := e.Events(netlist.NetID(nid)).DeterminedUntil(); wm != TimeInf {
			t.Fatalf("net %s watermark %d after Finish", d.Netlist.Nets[nid].Name, wm)
		}
	}
}

func smallSpec(seed int64) gen.Spec {
	return gen.Spec{
		Name: "small", Seed: seed,
		CombGates: 120, FFs: 24, Latches: 6, ScanFFs: 8, ClockGates: 2,
		Depth: 5, DataInputs: 8, Outputs: 6, ClockPeriodPS: 2000,
	}
}

func TestEngineMatchesRefsimSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		d, err := gen.Build(smallSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 30, ActivityFactor: 0.6, Seed: seed, ScanBurst: 7})
		runBoth(t, d, stim, Options{Mode: ModeSerial})
	}
}

func TestEngineMatchesRefsimParallel(t *testing.T) {
	for _, threads := range []int{2, 4, 8} {
		d, err := gen.Build(smallSpec(int64(threads)))
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 25, ActivityFactor: 0.7, Seed: 42, ScanBurst: 5})
		runBoth(t, d, stim, Options{Mode: ModeParallel, Threads: threads})
	}
}

func TestEngineMatchesRefsimManycore(t *testing.T) {
	d, err := gen.Build(smallSpec(99))
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 25, ActivityFactor: 0.5, Seed: 1, ScanBurst: 6})
	runBoth(t, d, stim, Options{Mode: ModeManycore, Threads: 4})
}

// TestStreamedMatchesOneShot drives the same stimuli in time slices with
// checkpoints and trimming between them, observing events through read
// marks, and checks the observed stream equals the one-shot run.
func TestStreamedMatchesOneShot(t *testing.T) {
	d, err := gen.Build(smallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 40, ActivityFactor: 0.6, Seed: 3, ScanBurst: 9})

	// One-shot reference run.
	e1, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stim {
		if err := e1.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Finish(); err != nil {
		t.Fatal(err)
	}
	// Only primary outputs are watched in the streamed run.
	want := make(map[netlist.NetID][]event.Event)
	for _, nid := range d.Outs {
		q := e1.Events(nid)
		for i := q.Start(); i < q.Len(); i++ {
			want[nid] = append(want[nid], q.MustAt(i))
		}
	}

	// Streamed run: 4-cycle slices. gen.Stimuli is globally time-sorted.
	e2, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[netlist.NetID][]event.Event)
	read := make(map[netlist.NetID]int64)
	flush := func() {
		for _, nid := range d.Outs {
			q := e2.Events(nid)
			i := read[nid]
			if i < q.Start() {
				t.Fatalf("trimmed below read mark on %s", d.Netlist.Nets[nid].Name)
			}
			for ; i < q.Len(); i++ {
				ev := q.MustAt(i)
				if ev.Time >= q.DeterminedUntil() {
					break
				}
				got[nid] = append(got[nid], ev)
			}
			read[nid] = i
			e2.SetReadMark(nid, i)
		}
	}
	slice := int64(4 * d.Spec.ClockPeriodPS)
	pos := 0
	for start := int64(0); pos < len(stim); start += slice {
		for pos < len(stim) && stim[pos].Time < start+slice {
			if err := e2.Inject(stim[pos].Net, stim[pos].Time, stim[pos].Val); err != nil {
				t.Fatal(err)
			}
			pos++
		}
		if err := e2.Advance(start + slice); err != nil {
			t.Fatal(err)
		}
		flush()
		e2.Checkpoint()
	}
	if err := e2.Finish(); err != nil {
		t.Fatal(err)
	}
	flush()

	for _, nid := range d.Outs {
		w, g := want[nid], got[nid]
		if len(w) != len(g) {
			t.Fatalf("net %s: %d vs %d events\nwant %v\ngot  %v", d.Netlist.Nets[nid].Name, len(w), len(g), w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("net %s event %d: %+v vs %+v", d.Netlist.Nets[nid].Name, i, w[i], g[i])
			}
		}
	}
	// Trimming must actually have reclaimed storage.
	if e2.PoolPages() > e1.PoolPages() {
		t.Logf("note: streamed run used %d pages vs %d one-shot", e2.PoolPages(), e1.PoolPages())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	d, err := gen.Build(smallSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.8, Seed: 8, ScanBurst: 4})
	var prev map[netlist.NetID][]event.Event
	for run := 0; run < 3; run++ {
		e, err := New(d.Netlist, testLib, delays, Options{Mode: ModeParallel, Threads: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stim {
			if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Finish(); err != nil {
			t.Fatal(err)
		}
		got := collectEngine(e)
		if prev != nil {
			diffStreams(t, d.Netlist, prev, got, "determinism")
		}
		prev = got
	}
}

func TestInjectValidation(t *testing.T) {
	lib := liberty.MustBuiltin()
	nl := netlist.New("t", lib)
	if err := nl.MarkInput(nl.AddNet("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g", "INV", map[string]string{"A": "a", "Y": "y"}); err != nil {
		t.Fatal(err)
	}
	e, err := New(nl, testLib, sdf.Uniform(nl, 5), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := nl.Net("a")
	y, _ := nl.Net("y")
	if err := e.Inject(y, 10, logic.V1); err == nil {
		t.Error("injecting a driven net should fail")
	}
	if err := e.Inject(a, 10, logic.V1); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(a, 10, logic.V0); err == nil {
		t.Error("same-time inject should fail")
	}
	if err := e.Inject(a, 5, logic.V0); err == nil {
		t.Error("backwards inject should fail")
	}
	if err := e.Advance(100); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(a, 50, logic.V0); err == nil {
		t.Error("inject below watermark should fail")
	}
	if err := e.Advance(50); err != nil {
		t.Fatal(err) // shrinking horizon is a harmless no-op
	}
}

func TestAutoModeSelection(t *testing.T) {
	d, err := gen.Build(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	e, err := New(d.Netlist, testLib, delays, Options{Mode: ModeAuto, AutoSerialThreshold: 10, AutoPinThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if e.Mode() != ModeManycore {
		t.Errorf("big design should pick manycore, got %v", e.Mode())
	}
	e, err = New(d.Netlist, testLib, delays, Options{Mode: ModeAuto, AutoSerialThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if e.Mode() != ModeSerial {
		t.Errorf("tiny threshold should pick serial, got %v", e.Mode())
	}
}

// TestRunStreamMatchesRefsim drives the full streaming facade and checks
// watched primary-output streams against the sequential oracle.
func TestRunStreamMatchesRefsim(t *testing.T) {
	d, err := gen.Build(smallSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 35, ActivityFactor: 0.6, Seed: 2, ScanBurst: 8})

	ref, err := refsim.New(d.Netlist, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	e, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	changes := make([]Change, len(stim))
	for i, s := range stim {
		changes[i] = Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	got := map[netlist.NetID][]event.Event{}
	lastT := int64(-1)
	err = e.RunStream(NewSliceSource(changes), StreamConfig{
		SlicePS: 3 * d.Spec.ClockPeriodPS,
		OnEvent: func(nid netlist.NetID, ev event.Event) {
			if ev.Time < lastT {
				t.Fatalf("stream emitted out of order: %d after %d", ev.Time, lastT)
			}
			lastT = ev.Time
			got[nid] = append(got[nid], ev)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, nid := range d.Outs {
		w, g := want[nid], got[nid]
		if len(w) != len(g) {
			t.Fatalf("net %s: %d vs %d events", d.Netlist.Nets[nid].Name, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("net %s event %d: %+v vs %+v", d.Netlist.Nets[nid].Name, i, w[i], g[i])
			}
		}
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]Change{{Net: 1, Time: 30}, {Net: 0, Time: 10}, {Net: 2, Time: 20}})
	var times []int64
	for {
		c, err := src.Next()
		if err != nil {
			break
		}
		times = append(times, c.Time)
	}
	if len(times) != 3 || times[0] != 10 || times[2] != 30 {
		t.Errorf("times %v", times)
	}
}

// TestRandomAdvanceSlicing drives the same stimuli with randomized Advance
// boundaries (including degenerate zero-length and repeated horizons) and
// checks the final committed streams equal the one-shot run: slicing must
// never change results, only when they become visible.
func TestRandomAdvanceSlicing(t *testing.T) {
	d, err := gen.Build(smallSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 25, ActivityFactor: 0.7, Seed: 4, ScanBurst: 6})

	oneShot, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stim {
		if err := oneShot.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := oneShot.Finish(); err != nil {
		t.Fatal(err)
	}
	want := collectEngine(oneShot)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		e, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		horizon := int64(0)
		for pos < len(stim) {
			horizon += rng.Int63n(3 * d.Spec.ClockPeriodPS)
			for pos < len(stim) && stim[pos].Time < horizon {
				if err := e.Inject(stim[pos].Net, stim[pos].Time, stim[pos].Val); err != nil {
					t.Fatal(err)
				}
				pos++
			}
			if err := e.Advance(horizon); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				// Re-advancing to the same (or a lower) horizon is a no-op.
				if err := e.Advance(horizon - rng.Int63n(100)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Finish(); err != nil {
			t.Fatal(err)
		}
		got := collectEngine(e)
		diffStreams(t, d.Netlist, want, got, fmt.Sprintf("slicing trial %d", trial))
	}
}

// TestCounterGolden is the end-to-end functional oracle: an n-bit counter
// built from library cells must read exactly k (mod 2^n) after k clock
// edges, through every layer of the stack (library compilation, netlist,
// delays, stable-time engine).
func TestCounterGolden(t *testing.T) {
	const bits = 6
	const cycles = 80 // wraps the 6-bit counter once
	d, err := gen.BuildCounter(bits)
	if err != nil {
		t.Fatal(err)
	}
	delays := sdf.Uniform(d.Netlist, 30)
	for _, mode := range []Mode{ModeSerial, ModeParallel} {
		e, err := New(d.Netlist, testLib, delays, Options{Mode: mode, Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range gen.CounterStimuli(d, cycles) {
			if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Finish(); err != nil {
			t.Fatal(err)
		}
		period := d.Spec.ClockPeriodPS
		for k := 1; k <= cycles; k++ {
			// Sample after edge k's CLK->Q plus the XOR/AND settle time.
			at := int64(k-1)*period + period/2 + 300
			want := int64(k) % (1 << bits)
			var got int64
			for bit, nid := range d.Outs {
				v := e.Value(nid, at)
				switch v {
				case logic.V1:
					got |= 1 << bit
				case logic.V0:
				default:
					t.Fatalf("mode %v: q%d at cycle %d is %v", mode, bit, k, v)
				}
			}
			if got != want {
				t.Fatalf("mode %v: after %d edges counter reads %d, want %d", mode, k, got, want)
			}
		}
	}
}

// TestStreamedMemoryBounded validates the streamed-I/O claim (§III-D.2):
// event-page demand must not grow with trace length, because slices are
// trimmed as the stream advances.
func TestStreamedMemoryBounded(t *testing.T) {
	d, err := gen.Build(smallSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	pages := func(cycles int) int64 {
		e, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: cycles, ActivityFactor: 0.6, Seed: 9, ScanBurst: 7})
		changes := make([]Change, len(stim))
		for i, s := range stim {
			changes[i] = Change{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		if err := e.RunStream(NewSliceSource(changes), StreamConfig{SlicePS: 4 * d.Spec.ClockPeriodPS}); err != nil {
			t.Fatal(err)
		}
		return e.PoolPages()
	}
	short := pages(20)
	long := pages(200)
	if long > short*3 {
		t.Errorf("page demand grows with trace length: %d pages for 20 cycles, %d for 200", short, long)
	}
	t.Logf("pages: 20 cycles -> %d, 200 cycles -> %d", short, long)
}

// TestSnapshotRoundTrip interrupts a run at a converged point, saves a
// snapshot, restores it into a fresh engine, finishes the stimulus there,
// and checks the combined event streams equal an uninterrupted run.
func TestSnapshotRoundTrip(t *testing.T) {
	d, err := gen.Build(smallSpec(47))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 30, ActivityFactor: 0.6, Seed: 5, ScanBurst: 7})

	// Uninterrupted reference.
	ref, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stim {
		if err := ref.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Finish(); err != nil {
		t.Fatal(err)
	}
	want := collectEngine(ref)

	// First half on engine A, snapshot, second half on engine B.
	cut := 15 * d.Spec.ClockPeriodPS
	a, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for ; pos < len(stim) && stim[pos].Time < cut; pos++ {
		if err := a.Inject(stim[pos].Net, stim[pos].Time, stim[pos].Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Advance(cut); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	b, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for ; pos < len(stim); pos++ {
		if err := b.Inject(stim[pos].Net, stim[pos].Time, stim[pos].Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	got := collectEngine(b)
	diffStreams(t, d.Netlist, want, got, "snapshot round trip")
}

func TestSnapshotRejectsWrongDesign(t *testing.T) {
	d1, _ := gen.Build(smallSpec(1))
	d2, _ := gen.Build(gen.Spec{Name: "other", Seed: 2, CombGates: 30, FFs: 4,
		Depth: 3, DataInputs: 4, Outputs: 2})
	e1, err := New(d1.Netlist, testLib, gen.Delays(d1, 7), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(d2.Netlist, testLib, gen.Delays(d2, 7), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e1.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadSnapshot(&buf); err == nil {
		t.Error("loading a foreign snapshot must fail")
	}
	if err := e2.LoadSnapshot(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage must fail to decode")
	}
}

// TestEngineMatchesRefsimMultiClock exercises two asynchronous clock
// domains plus 2-FF synchronizers on the crossings.
func TestEngineMatchesRefsimMultiClock(t *testing.T) {
	spec := smallSpec(71)
	spec.ClockPeriod2PS = 3700 // coprime-ish with the 2000ps main clock
	d, err := gen.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 30, ActivityFactor: 0.6, Seed: 6, ScanBurst: 9})
	runBoth(t, d, stim, Options{Mode: ModeSerial})
	runBoth(t, d, stim, Options{Mode: ModeParallel, Threads: 4})
}

func TestRunStreamEmptyStimulus(t *testing.T) {
	d, err := gen.Build(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = e.RunStream(NewSliceSource(nil), StreamConfig{
		OnEvent: func(nid netlist.NetID, ev event.Event) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	// With no stimulus everything stays at its initial value: no events,
	// but the run must terminate and fully determine the design.
	if count != 0 {
		t.Errorf("events from empty stimulus: %d", count)
	}
	for nid := range d.Netlist.Nets {
		if wm := e.Events(netlist.NetID(nid)).DeterminedUntil(); wm != TimeInf {
			t.Fatalf("net %s not finalized (wm %d)", d.Netlist.Nets[nid].Name, wm)
		}
	}
}

// TestNewFromPlanAllocs pins the flat-array construction guarantee: building
// an engine from a prebuilt plan allocates a fixed number of arrays, not
// O(gates) per-gate slices. The bound is far below the design's gate count,
// so any reintroduction of per-gate allocation trips it immediately.
func TestNewFromPlanAllocs(t *testing.T) {
	d, err := gen.Build(smallSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(d.Netlist, testLib, gen.Delays(d, 7))
	if err != nil {
		t.Fatal(err)
	}
	gates := p.NumGates()
	if gates < 100 {
		t.Fatalf("design too small (%d gates) to distinguish O(arrays) from O(gates)", gates)
	}
	allocs := testing.AllocsPerRun(20, func() {
		e, err := NewFromPlan(p, Options{Mode: ModeSerial})
		if err != nil {
			t.Fatal(err)
		}
		_ = e
	})
	// ~30 allocations today (engine struct, the flat per-slot arrays, the
	// executor and one scratch). 64 leaves headroom while staying far below
	// the gate count.
	if allocs > 64 {
		t.Errorf("NewFromPlan allocates %.0f objects for %d gates; want O(arrays), <= 64", allocs, gates)
	}
	t.Logf("NewFromPlan: %.0f allocs for %d gates, %d nets", allocs, gates, p.NumNets())
}

func TestValueBeyondWatermark(t *testing.T) {
	d, err := gen.Build(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing advanced yet: every value beyond watermark 0 reads U.
	if got := e.Value(d.Clk, 100); got != logic.VU {
		t.Errorf("unadvanced value = %v, want U", got)
	}
}
