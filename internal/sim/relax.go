package sim

import (
	"runtime/debug"
	"sync/atomic"

	"gatesim/internal/netlist"
)

// Batched watermark relaxation: advancing determination frontiers through
// quiet fanout clouds without gate visits.
//
// When a net's watermark moves but the visit committed no new events, the
// only thing a waiting reader would do with a visit is re-run its idle
// expiry walk (idleComb1). Instead of dirtying every such reader — which is
// what made quiet fanout clouds re-visit themselves once per level per
// sweep — markLoads stages the reader on a relax worklist and the engine
// runs the idle walk directly in a drain pass, propagating transitively in
// net-topological order. One drain relaxes a whole quiet cloud; the sweep
// machinery never schedules it.
//
// Eligibility and fallback. A reader is relaxed only when the walk is the
// whole visit: plan.RelaxEligible (ClassComb1 — single output, zero state,
// no edge pins, packed LUT) and, at walk time, a valid soft snapshot with
// no unconsumed input events. Anything else — seq kernels, never-visited
// gates, gates with events in flight — falls back to a normal dirty mark,
// exactly the set the baseline would have marked (the detUntil >= wOld
// frontier filter is applied at staging time on both paths), so committed
// event streams stay bit-identical to Options.DisableWatermarkRelax by
// sweep confluence.
//
// Worklist protocol. The worklist stages gates, not nets: markLoads scans a
// moving net's readers once — the same scan the baseline's mark loop paid —
// and files each eligible waiting reader into a per-level bucket
// (plan.RelaxLevel, its output net's depth), deduped through cellFlag so a
// gate whose inputs move several times in a sweep walks once, with every
// accumulated move batched. Buckets are preallocated to the level's
// eligible population, so a pooled worker stages with one CAS and one
// fetch-add; a single-goroutine sweep stages with plain stores and triages
// through the gate's blocked flag (set by its last visit, on the cache line
// the frontier filter already loaded): a reader whose last visit left
// unconsumed input events is marked for a real visit instead, keeping the
// event cascade in-sweep.
//
// Drain order. The pass processes buckets in increasing level, so every
// input of a walked gate has already settled; a walk's own watermark move
// restages readers at strictly higher levels (the eligible subgraph is a
// DAG — feedback runs through sequential cells, which always fall back),
// picked up later in the same pass.
//
// Placement. Watermark moves are the bridge that lets an event wave travel
// several levels inside one sweep: a level-L move wakes level L+1, whose
// visit wakes L+2, within the same segment scan. Deferring all walks to a
// single post-sweep pass breaks that bridge — each cascade hop costs a full
// extra sweep — so a single-goroutine sweep drains the worklist at every
// segment boundary instead, bounded by the segment's level: only the nets
// the upcoming segment can read (NetLevel <= segment level) are settled,
// and deeper stagings stay bucketed so a gate whose inputs move at several
// lower levels still walks exactly once per sweep — the pass analogue of
// the baseline's one dirty visit per sweep. A full post-sweep pass (still
// inside each converge iteration, before the exit checks) drains what the
// last segments staged, so the iteration count of the baseline is
// preserved. The exit conditions account for the pass: a fallback dirty
// mark means another sweep is owed, and events the pass commits count
// against the creep-stop's events delta. Pooled sweeps cannot drain
// mid-sweep (the coordinator owns the pass) and rely on the post-sweep
// placement alone.
//
// Exit safety. The post-sweep drain leaves every bucket empty at every exit
// check (walk restages land above the level being processed and are reached
// by the same monotone loop), so converge can never return with a live
// entry it owed this horizon. The only entries alive outside converge are
// the ones AdvanceCtx stages for primary-input watermark moves; on a
// single-goroutine engine the first sweep's boundary drains pick each level
// up just before the first segment that can read it — one walk covers the
// stimulus move and the in-sweep cascade alike — while a pooled engine
// drains them with one full pass before its first sweep.

// relaxState is the engine's watermark-relax worklist. All slices are
// preallocated at construction; the zero value (relax disabled) keeps every
// field nil.
type relaxState struct {
	on bool
	// serial is set when sweeps run on a single goroutine: staging may then
	// use plain stores and read a reader's visit-owned state (dirty bit,
	// soft snapshot) for the skip/triage checks a concurrent worker cannot
	// make safely.
	serial bool
	// cellFlag[g] != 0 marks gate g staged; the 0->1 transition (CAS under
	// workers) wins the right to file it. Cleared by the drain.
	cellFlag []uint32
	// cells/cellLen are the per-level staging buckets, indexed by
	// plan.RelaxLevel. Each bucket's backing array holds the level's whole
	// eligible population, so an append is an index store — never a grow.
	// cellLen is advanced with atomic adds under workers, plain otherwise.
	cells   [][]netlist.CellID
	cellLen []int64
	// pending records that a level-bounded drain left staged work above its
	// bound, so the next pass must run even though lower levels look empty.
	// Coordinator-only.
	pending bool
	// draining is set by the coordinator around relaxPass; while set,
	// markDirty counts every mark in passDirty — fallback marks and marks
	// from events the pass commits alike: work the pass owes the next
	// sweep, which converge's exit conditions must see. Workers never run
	// while it is set (the pool round has joined), so both fields are plain.
	draining  bool
	passDirty int64
}

// relaxNeedsVisit reports whether an eligible reader cannot be advanced by
// an idle expiry walk right now: it has never been visited (no soft
// snapshot), or input events are waiting that only a real visit may
// consume. Reads the gate's visit-owned soft state, so callers must hold
// single-threaded access to the gate — the coordinator mid-drain, or any
// code on a single-goroutine sweep.
func (e *Engine) relaxNeedsVisit(cell netlist.CellID) bool {
	if !e.gate[cell].softValid {
		return true
	}
	inB := int(e.p.InOff[cell])
	ni := int(e.p.InOff[cell+1]) - inB
	for i := 0; i < ni; i++ {
		if e.softCur[inB+i] < e.inQ[inB+i].Len() {
			return true
		}
	}
	return false
}

// isDirty reports whether the gate's dirty mark is already set. Requires
// single-threaded access — a single-goroutine engine, or the coordinator
// once the pool round has joined — because the unsynchronized read is only
// meaningful when no claimer can clear the bit concurrently.
func (e *Engine) isDirty(cell netlist.CellID) bool {
	if e.dirtyBits == nil {
		return e.gate[cell].dirty.Load()
	}
	bit := e.p.BitOf[cell]
	return e.dirtyBits[bit>>6]&(uint64(1)<<(uint(bit)&63)) != 0
}

// stageRelaxSerial stages one eligible waiting reader on a single-goroutine
// engine: plain flag store and bucket append, no atomics. The caller has
// already triaged blocked readers via the gate's blocked flag; a staging
// that goes stale anyway (an event mark after staging) is resolved by the
// walk-time checks.
func (e *Engine) stageRelaxSerial(cell netlist.CellID) {
	r := &e.relax
	if r.cellFlag[cell] != 0 {
		return
	}
	r.cellFlag[cell] = 1
	lv := e.p.RelaxLevel[cell]
	r.cells[lv][r.cellLen[lv]] = cell
	r.cellLen[lv]++
	r.pending = true
}

// stageRelax stages one eligible waiting reader from a pool worker: CAS the
// flag, fetch-add the level cursor. No soft-state triage — a worker cannot
// read another gate's visit-owned state — so stale stagings (gates that
// turn out to need a visit) are resolved by the walk-time fallback.
func (e *Engine) stageRelax(cell netlist.CellID) {
	r := &e.relax
	if !atomic.CompareAndSwapUint32(&r.cellFlag[cell], 0, 1) {
		return
	}
	lv := e.p.RelaxLevel[cell]
	n := atomic.AddInt64(&r.cellLen[lv], 1) - 1
	r.cells[lv][n] = cell
}

// relaxAllLevels asks relaxPass to drain every net level.
const relaxAllLevels = int(^uint(0) >> 1)

// relaxPass drains the staged buckets in one monotone walk up the levels,
// stopping after maxLv (relaxAllLevels drains everything; a single-
// goroutine sweep passes the upcoming segment's level so only the nets that
// segment can read are settled, leaving deeper stagings to batch further
// moves). Walk restages land at strictly higher levels and are reached by
// the same loop. Coordinator-only, after each sweep's pool round has
// joined. Returns the number of dirty marks the pass made — work it owes
// another sweep — and, for a panic inside gate code (the GateHook chaos
// path included), a containment record for the engine to poison on, like a
// sweep panic.
func (e *Engine) relaxPass(maxLv int) (dirtied int64, rec *panicRecord) {
	r := &e.relax
	if !r.pending && !e.anyStaged() {
		return 0, nil
	}
	cur := netlist.CellID(-1)
	r.draining = true
	r.passDirty = 0
	defer func() {
		r.draining = false
		if v := recover(); v != nil {
			rec = &panicRecord{value: v, stack: debug.Stack(), gate: cur, seg: -1}
		}
	}()
	sc := e.exec.scratches[0]
	var walked int64
	top := len(r.cells) - 1
	if maxLv < top {
		top = maxLv
	}
	for lv := 0; lv <= top; lv++ {
		// cellLen[lv] is fixed while the level runs: walks only restage
		// readers of their output net, which sit strictly above lv.
		n := r.cellLen[lv]
		for i := int64(0); i < n; i++ {
			cell := r.cells[lv][i]
			r.cellFlag[cell] = 0
			e.relaxCell(cell, &cur, sc)
		}
		r.cellLen[lv] = 0
		walked += n
	}
	r.pending = false
	for lv := top + 1; lv < len(r.cells); lv++ {
		if r.cellLen[lv] > 0 {
			r.pending = true
			break
		}
	}
	e.stats.relaxedNets.Add(walked)
	e.obs.relaxedNets.Add(walked)
	e.exec.mergeStats()
	return r.passDirty, nil
}

// anyStaged reports whether any bucket holds work. Coordinator-only (plain
// reads are safe once the pool round has joined).
func (e *Engine) anyStaged() bool {
	for _, n := range e.relax.cellLen {
		if n > 0 {
			return true
		}
	}
	return false
}

// relaxCell runs one staged reader's idle expiry walk — committing any
// soft-pending transitions the advancing frontiers finalize and restaging
// its output net's readers when the watermark moved. A reader that turns
// out to need a real visit after all (no soft snapshot yet, or input events
// committed by a lower-level walk in this same pass, or a pooled staging
// that raced a visit) falls back to a dirty mark; the check happens at walk
// time, after every lower level settled, so it sees the pass's own commits.
func (e *Engine) relaxCell(cell netlist.CellID, cur *netlist.CellID, sc *scratch) {
	p := e.p
	if e.isDirty(cell) {
		// Already owed a visit (an event mark landed after staging); the
		// visit reads the live queues, covering this move too.
		return
	}
	if e.relaxNeedsVisit(cell) {
		e.markDirty(cell)
		return
	}
	*cur = cell
	if hook := e.opts.GateHook; hook != nil {
		hook(cell)
	}
	if e.dirtyBits != nil {
		// Compiled schedule: run the walk from the gate's script
		// instruction — same pre-gathered operands the sweep uses, so the
		// pass pays no per-gate plan lookups either.
		sp := &p.Scripts[p.SegOf[cell]]
		e.idleScriptComb1(&sp.Ops[p.BitOf[cell]-sp.BitOff], sc)
	} else {
		e.idleComb1(cell, sc)
	}
	*cur = -1
}

// resetRelax empties the worklist (snapshot restore: the staged state
// belongs to the replaced world; markAllDirty re-derives everything).
func (e *Engine) resetRelax() {
	r := &e.relax
	if !r.on {
		return
	}
	for lv := range r.cells {
		n := r.cellLen[lv]
		for _, cell := range r.cells[lv][:n] {
			r.cellFlag[cell] = 0
		}
		r.cellLen[lv] = 0
	}
	r.pending = false
}
