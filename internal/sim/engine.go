// Package sim implements the paper's core contribution: a delay-annotated
// gate-level simulation engine with partition-agnostic parallelism built on
// the stable-time mechanism (§III).
//
// # How it works
//
// Every net carries a queue of committed events plus a watermark
// DeterminedUntil: the net's value is known for every time strictly before
// the watermark and undetermined (U) from it onward — the paper's "stable
// time". Sequential-internal edges are removed, the remaining combinational
// graph is levelized, and each sweep processes the sequential cells followed
// by the combinational levels; gates within a level are independent and run
// in parallel (Algorithm 2).
//
// A gate visit replays its input change points in time order from its last
// checkpoint: real events (presented as R/F edge markers on edge-sensitive
// pins) and stable-time expiries (inputs turning U). Each change point is
// one extended-truth-table query. The visit stops at the first undetermined
// result; everything before it is final under *all* refinements of the U
// inputs, so output transitions up to detUntil+minArcDelay commit
// immediately and the output watermark advances — which is what lets other
// gates keep going without violating causality. Sweeps repeat until no
// watermark moves; the number of sweeps tracks the number of clock cycles in
// the streamed input window, as the paper observes.
package sim

import (
	"fmt"
	"runtime"

	"gatesim/internal/event"
	"gatesim/internal/levelize"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

// TimeInf is the watermark value meaning "determined forever".
const TimeInf = int64(1) << 60

// Mode selects the execution strategy.
type Mode int

const (
	// ModeAuto picks between the other modes from the design size, like the
	// paper's hybrid CPU/GPU mode (§IV-B): oblivious manycore execution for
	// large designs, dirty-set multicore for medium ones, serial for tiny.
	ModeAuto Mode = iota
	// ModeSerial processes dirty gates on the calling goroutine.
	ModeSerial
	// ModeParallel processes each level's dirty gates on a worker pool.
	ModeParallel
	// ModeManycore is the GPU-analogue: oblivious full-level scans without
	// dirty-set bookkeeping, on all available cores.
	ModeManycore
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSerial:
		return "serial"
	case ModeParallel:
		return "parallel"
	case ModeManycore:
		return "manycore"
	}
	return "mode?"
}

// Options configure an Engine.
type Options struct {
	Mode Mode
	// Threads is the worker count for ModeParallel/ModeManycore
	// (0 = GOMAXPROCS).
	Threads int
	// AutoPinThreshold is the pin count above which ModeAuto selects
	// manycore execution (the paper uses 1M pins for the GPU switch).
	AutoPinThreshold int
	// AutoSerialThreshold is the pin count below which ModeAuto stays serial.
	AutoSerialThreshold int
	// MaxSweeps bounds the sweeps of one Advance call (safety valve against
	// livelock bugs; 0 = a generous default).
	MaxSweeps int
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.AutoPinThreshold <= 0 {
		o.AutoPinThreshold = 1_000_000
	}
	if o.AutoSerialThreshold <= 0 {
		o.AutoSerialThreshold = 2_000
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 1 << 30
	}
	return o
}

// Stats are cumulative execution counters.
type Stats struct {
	Sweeps          int64 // level sweeps executed
	Visits          int64 // gate visits
	Queries         int64 // truth-table queries
	EventsCommitted int64 // events appended to net queues
	Checkpoints     int64 // slice-boundary base consolidations
}

// Engine simulates one netlist.
type Engine struct {
	nl     *netlist.Netlist
	lv     *levelize.Levelization
	delays *sdf.Delays
	opts   Options
	mode   Mode // resolved mode (Auto replaced)

	pool event.Pool
	nets []netState
	gate []gateState

	exec      *executor
	stats     Stats
	readMarks map[netlist.NetID]int64
}

type netState struct {
	q *event.Queue
	// dirty marks that the net changed (events or watermark) since its
	// fanout gates last ran. Set by the driver, cleared per-load via the
	// gate's own dirty flag; this one drives PI fanout marking only.
	isPI bool
}

// New builds an engine. The compiled library must cover every cell type in
// the netlist; delays must come from sdf.Apply or sdf.Uniform on the same
// netlist.
func New(nl *netlist.Netlist, lib *truthtab.CompiledLibrary, delays *sdf.Delays, opts Options) (*Engine, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	lv, err := levelize.Compute(nl)
	if err != nil {
		return nil, err
	}
	e := &Engine{nl: nl, lv: lv, delays: delays, opts: opts.withDefaults()}
	e.mode = e.opts.Mode
	if e.mode == ModeAuto {
		pins := nl.Stats().Pins
		switch {
		case pins >= e.opts.AutoPinThreshold:
			e.mode = ModeManycore
		case pins <= e.opts.AutoSerialThreshold:
			e.mode = ModeSerial
		default:
			e.mode = ModeParallel
		}
	}

	// Pre-time-zero fixpoint: constant cones, tied resets and shut clock
	// gates settle to determined initial values shared by every simulator.
	ic, err := truthtab.ComputeInitialConditions(nl, lib)
	if err != nil {
		return nil, err
	}

	e.gate = make([]gateState, len(nl.Instances))
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		tab := lib.Tables[inst.Type.Name]
		if tab == nil {
			return nil, fmt.Errorf("sim: cell type %s not in compiled library", inst.Type.Name)
		}
		if err := e.initGate(netlist.CellID(i), tab, ic); err != nil {
			return nil, err
		}
	}

	// Net queues start at the fixpoint values.
	e.nets = make([]netState, len(nl.Nets))
	for n := range nl.Nets {
		e.nets[n] = netState{q: event.NewQueue(&e.pool, ic.NetVals[n]), isPI: nl.Nets[n].IsInput}
	}

	// Wire gate input/output queue pointers and initial cursors.
	for i := range e.gate {
		g := &e.gate[i]
		inst := &nl.Instances[i]
		for pi, nid := range inst.InNets {
			g.inQ[pi] = e.nets[nid].q
			g.baseCur[pi] = 0
		}
		for po, nid := range inst.OutNets {
			if nid >= 0 {
				g.outQ[po] = e.nets[nid].q
			}
		}
	}

	e.exec = newExecutor(e)
	// Everything starts dirty so the first Advance initializes constant
	// cones (tie cells, reset trees) even before any stimulus.
	for i := range e.gate {
		e.gate[i].dirty.Store(true)
	}
	return e, nil
}

// initGate allocates the per-gate simulation state from the initial-
// conditions fixpoint.
func (e *Engine) initGate(id netlist.CellID, tab *truthtab.Table, ic *truthtab.InitialConditions) error {
	inst := &e.nl.Instances[id]
	ni, no, ns := tab.NumInputs, tab.NumOutputs, tab.NumStates
	g := &e.gate[id]
	g.tab = tab
	g.inQ = make([]*event.Queue, ni)
	g.baseCur = make([]int64, ni)
	g.baseVals = make([]logic.Value, ni)
	g.baseStates = make([]logic.Value, ns)
	g.semBase = make([]logic.Value, no)
	g.outQ = make([]*event.Queue, no)
	g.lastCommitted = make([]logic.Value, no)
	g.committedUntil = make([]int64, no)
	g.minArc = make([]int64, no)
	g.baseNow = -TimeInf

	for pi, nid := range inst.InNets {
		g.baseVals[pi] = ic.NetVals[nid]
	}
	copy(g.baseStates, ic.States[id])
	copy(g.semBase, ic.Outs[id])
	copy(g.lastCommitted, g.semBase)
	for o := range g.committedUntil {
		g.committedUntil[o] = -TimeInf
	}
	g.maxArc = 0
	for o := 0; o < no; o++ {
		g.minArc[o] = e.delays.MinArc(id, o)
		if ni == 0 {
			g.minArc[o] = 0
		}
		for in := 0; in < ni; in++ {
			if d := e.delays.Arc(id, o, in).Max(); d > g.maxArc {
				g.maxArc = d
			}
		}
	}
	_ = inst
	return nil
}

// Mode returns the resolved execution mode.
func (e *Engine) Mode() Mode { return e.mode }

// Stats returns a copy of the cumulative counters.
func (e *Engine) Stats() Stats { return e.stats }

// Netlist returns the simulated netlist.
func (e *Engine) Netlist() *netlist.Netlist { return e.nl }

// Levelization returns the execution plan (for diagnostics and tools).
func (e *Engine) Levelization() *levelize.Levelization { return e.lv }

// PoolPages reports how many event pages were ever allocated.
func (e *Engine) PoolPages() int64 { return e.pool.AllocatedPages() }
