// Package sim implements the paper's core contribution: a delay-annotated
// gate-level simulation engine with partition-agnostic parallelism built on
// the stable-time mechanism (§III).
//
// # How it works
//
// Every net carries a queue of committed events plus a watermark
// DeterminedUntil: the net's value is known for every time strictly before
// the watermark and undetermined (U) from it onward — the paper's "stable
// time". Sequential-internal edges are removed, the remaining combinational
// graph is levelized, and each sweep processes the sequential cells followed
// by the combinational levels; gates within a level are independent and run
// in parallel (Algorithm 2).
//
// A gate visit replays its input change points in time order from its last
// checkpoint: real events (presented as R/F edge markers on edge-sensitive
// pins) and stable-time expiries (inputs turning U). Each change point is
// one extended-truth-table query. The visit stops at the first undetermined
// result; everything before it is final under *all* refinements of the U
// inputs, so output transitions up to detUntil+minArcDelay commit
// immediately and the output watermark advances — which is what lets other
// gates keep going without violating causality. Sweeps repeat until no
// watermark moves; the number of sweeps tracks the number of clock cycles in
// the streamed input window, as the paper observes.
//
// # Execution and lifecycle
//
// Parallel modes run on a persistent spin-then-park worker pool owned by
// the engine (internal/workpool): workers start lazily on the first
// parallel sweep and are reused for every subsequent one — a whole sweep is
// one pool round with a barrier between levels, so steady-state simulation
// creates no goroutines. Engine.Close parks out and joins the workers; it
// is idempotent, and a closed engine restarts its pool on the next parallel
// sweep. Stats exposes the pool's spawn/wake/park counters plus sweep and
// level wall-clock time so scheduling overhead is visible to reports.
//
// # State layout
//
// All per-gate simulation state lives in flat engine-owned arrays indexed
// by the plan's slot offsets (plan.Plan lowers the design once into CSR
// form); gateState itself holds only scalars. Engine construction from a
// prebuilt plan therefore allocates a fixed number of arrays, not O(gates)
// slices.
package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"gatesim/internal/event"
	"gatesim/internal/lane"
	"gatesim/internal/levelize"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

// TimeInf is the watermark value meaning "determined forever".
const TimeInf = int64(1) << 60

// unreadMark is the readMarks value of an unwatched net: high enough never
// to constrain trimming, so Checkpoint needs no per-net branch.
const unreadMark = int64(1) << 62

// Mode selects the execution strategy.
type Mode int

const (
	// ModeAuto picks between the other modes from the design size, like the
	// paper's hybrid CPU/GPU mode (§IV-B): oblivious manycore execution for
	// large designs, dirty-set multicore for medium ones, serial for tiny.
	ModeAuto Mode = iota
	// ModeSerial processes dirty gates on the calling goroutine.
	ModeSerial
	// ModeParallel processes each level's dirty gates on a worker pool.
	ModeParallel
	// ModeManycore is the GPU-analogue: oblivious full-level scans without
	// dirty-set bookkeeping, on all available cores.
	ModeManycore
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSerial:
		return "serial"
	case ModeParallel:
		return "parallel"
	case ModeManycore:
		return "manycore"
	}
	return "mode?"
}

// Options configure an Engine.
type Options struct {
	Mode Mode
	// Threads is the worker count for ModeParallel/ModeManycore
	// (0 = GOMAXPROCS; clamped to GOMAXPROCS from above).
	Threads int
	// AutoPinThreshold is the pin count above which ModeAuto selects
	// manycore execution (the paper uses 1M pins for the GPU switch).
	AutoPinThreshold int
	// AutoSerialThreshold is the pin count below which ModeAuto stays serial.
	AutoSerialThreshold int
	// MaxSweeps is the convergence watchdog: it bounds the sweeps of one
	// Advance call (0 = a generous default). A netlist that genuinely
	// oscillates — e.g. an inverter ring routed through a transparent
	// latch — would otherwise sweep forever; on trip the engine returns a
	// *SimError wrapping ErrNoConvergence whose OscillationReport names the
	// gates and nets still moving. The engine stays resumable: raise the
	// budget and advance again to continue.
	MaxSweeps int
	// SerialBatchThreshold is the expected-work size (dirty gates for a
	// sweep) below which execution stays on the calling goroutine instead
	// of waking the worker pool (0 = a tuned default). Mostly a test knob.
	SerialBatchThreshold int
	// FaultHook, when non-nil, is installed as the worker pool's chaos hook
	// (workpool.Pool.FaultHook): it runs before every pool round slot and
	// may panic (simulated worker death) or sleep (stall). Test-only; see
	// the fault-containment tests.
	FaultHook func(item int)
	// GateHook, when non-nil, runs before every gate visit, on the worker
	// executing the visit. A panic here is indistinguishable from a panic
	// in gate-evaluation code and exercises the containment/poisoning path
	// with exact gate/level coordinates. Test-only.
	GateHook func(gate netlist.CellID)
	// DisableKernels forces every gate through the generic sequential
	// interpreter and the unbucketed level schedule, ignoring the plan's
	// kernel classification. Test/bench knob: it lets the same design run
	// the pre-kernel execution shape for equivalence and speedup checks.
	// It implies DisableScripts (scripts are compiled from the kernel
	// schedule).
	DisableKernels bool
	// DisableScripts keeps the per-gate interpreted sweep: segments scan
	// their gate lists and per-gate dirty flags instead of replaying the
	// plan's compiled scripts over the dirty bitset. The interpreted path
	// is the bit-exact baseline the script equivalence tests diff against.
	DisableScripts bool
	// Lanes is the number of independent stimulus lanes evaluated together
	// (1..lane.MaxLanes; 0 means 1). With Lanes > 1 the engine runs in lane
	// mode: every net carries a lane.Word vector alongside its event queue,
	// comb1 script visits evaluate all lanes branch-free through
	// truthtab.LanePackedLUT, and seq/ineligible cells evaluate each lane
	// through the scalar interpreter at shared change points. Lane mode
	// requires the compiled-script schedule (DisableKernels/DisableScripts
	// reject), drives stimuli through InjectLanes/RunLaneStream (the scalar
	// Inject/RunStream entry points reject), and never checkpoints or
	// snapshots (event history is retained for per-lane stream extraction).
	// The frontier plane participates: quiet watermark advances run the
	// lane-word idle kernel from frontier commits, lane-mask-aware. Lanes =
	// 1 is today's scalar engine, bit-exact and unchanged.
	Lanes int
	// DisableFrontier restores per-reader dirty marks for watermark-only
	// net advances: every waiting reader is re-visited by the sweep
	// machinery instead of being advanced through the per-net frontier
	// plane (see frontier.go). The marking path is the bit-exact baseline
	// the frontier equivalence and fuzz tests diff against. DisableKernels
	// implies it — the frontier walk is the comb1 idle kernel, which the
	// pre-kernel shape must not run.
	DisableFrontier bool
	// Metrics, when non-nil, receives the engine's obs counters and phase
	// histograms (sim.* and pool.* names). Nil keeps every record site on
	// the ~1 ns nil-instrument path (see internal/obs).
	Metrics *obs.Registry
	// Trace, when non-nil, records a span per sweep, level segment, pool
	// round, checkpoint and streamed slice, plus counter tracks, in
	// Chrome/Perfetto trace-event form.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if maxProcs := runtime.GOMAXPROCS(0); o.Threads <= 0 || o.Threads > maxProcs {
		o.Threads = maxProcs
	}
	if o.AutoPinThreshold <= 0 {
		o.AutoPinThreshold = 1_000_000
	}
	if o.AutoSerialThreshold <= 0 {
		o.AutoSerialThreshold = 2_000
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 1 << 30
	}
	if o.SerialBatchThreshold <= 0 {
		o.SerialBatchThreshold = defaultSerialBatchThreshold
	}
	if o.Lanes <= 0 {
		o.Lanes = 1
	}
	return o
}

// Stats are cumulative execution counters. The Pool* group exposes the
// scheduling overhead of the persistent worker pool so harness reports can
// show dispatch cost alongside simulation work.
type Stats struct {
	Sweeps          int64 // level sweeps executed
	Visits          int64 // gate visits
	Queries         int64 // truth-table queries
	EventsCommitted int64 // events appended to net queues
	Checkpoints     int64 // slice-boundary base consolidations

	// VisitsWatermarkOnly counts the visits that committed no events: work
	// whose only possible effect was advancing watermarks (or nothing at
	// all). FrontierCommits counts staged-net watermark publishes the
	// frontier pass drained — each one delivered a net's coalesced advance
	// to its whole reader cloud in one scan (see frontier.go) — and
	// QueriesSaved counts LUT probes the idle walks skipped because a
	// memoized determinedness mask already decided the expiry. Both are 0
	// with DisableFrontier (the masks are only consulted by the idle
	// kernels the frontier plane runs).
	VisitsWatermarkOnly int64
	FrontierCommits     int64
	QueriesSaved        int64

	// VisitsLane counts lane-mode gate visits: each one evaluated every
	// active stimulus lane, so the per-lane visit equivalent is
	// VisitsLane × Options.Lanes. Zero in scalar mode.
	VisitsLane int64

	// VisitsByKernel/QueriesByKernel split Visits/Queries by the kernel
	// class that served them (index by truthtab.Class). With kernels
	// disabled everything lands on truthtab.ClassSeq.
	VisitsByKernel  [truthtab.NumClasses]int64
	QueriesByKernel [truthtab.NumClasses]int64

	PoolSpawned int64 // worker goroutines ever created by the pool
	PoolRounds  int64 // parallel rounds dispatched to the pool
	PoolWakes   int64 // workers woken from a parked state
	PoolParks   int64 // workers that gave up spinning and parked
	LevelsFused int64 // plan-time fused levels crossed without a barrier, summed per sweep
	SweepNS     int64 // wall time inside convergence sweeps
	LevelNS     int64 // wall time inside level-execution rounds

	// ScriptSegments is the number of compiled segment scripts in the
	// active sweep schedule (0 when scripts are disabled).
	// SegmentsSkipped counts segment scans a sweep skipped outright because
	// the segment's dirty-bitset population was zero — the clean-segment
	// fast path that makes quiescent levels cost one load.
	ScriptSegments  int64
	SegmentsSkipped int64

	// Downgrades counts pool→serial degradations: after a worker died
	// outside gate code, the executor abandoned the pool and finished the
	// run serially (graceful degradation instead of a crash or a wrong
	// answer). At most 1 per engine.
	Downgrades int64
}

// engineCounters are the cumulative counters in atomic form. Writers are
// coordinator-side only, but Stats() may be polled from any goroutine (the
// obs debug endpoint does so mid-run), so every field is an atomic rather
// than a plain int64 guarded by nothing.
type engineCounters struct {
	sweeps          atomic.Int64
	visits          atomic.Int64
	queries         atomic.Int64
	visitsBy        [truthtab.NumClasses]atomic.Int64
	queriesBy       [truthtab.NumClasses]atomic.Int64
	visitsWMOnly    atomic.Int64
	visitsLane      atomic.Int64
	frontierCommits atomic.Int64
	queriesSaved    atomic.Int64
	events          atomic.Int64
	checkpoints     atomic.Int64
	levelsFused     atomic.Int64
	segsSkipped     atomic.Int64
	sweepNS         atomic.Int64
	levelNS         atomic.Int64
	downgrades      atomic.Int64
}

// engineObs bundles the engine's observability instruments. It is built
// unconditionally: nil Options.Metrics/Trace yield nil instruments, so the
// record sites below never branch on "is observability on".
type engineObs struct {
	trace *obs.Trace
	tid   int // the engine's coordinator track

	sweeps          *obs.Counter
	events          *obs.Counter
	checkpoints     *obs.Counter
	downgrades      *obs.Counter
	segsSkipped     *obs.Counter
	visitsWMOnly    *obs.Counter
	visitsLane      *obs.Counter
	frontierCommits *obs.Counter
	queriesSaved    *obs.Counter
	lanesActive     *obs.Gauge
	visitsBy        [truthtab.NumClasses]*obs.Counter
	queriesBy       [truthtab.NumClasses]*obs.Counter
	sweepNS         *obs.Histogram
	levelNS         *obs.Histogram
	checkpointNS    *obs.Histogram
	sliceNS         *obs.Histogram
	quiesceNS       *obs.Histogram
	watermark       *obs.Gauge
}

func newEngineObs(o Options) engineObs {
	m := o.Metrics
	eo := engineObs{
		trace:           o.Trace,
		tid:             o.Trace.Thread("sim.engine"),
		sweeps:          m.Counter("sim.sweeps"),
		events:          m.Counter("sim.events_committed"),
		checkpoints:     m.Counter("sim.checkpoints"),
		downgrades:      m.Counter("sim.downgrades"),
		segsSkipped:     m.Counter("sim.segments_skipped"),
		visitsWMOnly:    m.Counter("sim.visits_watermark_only"),
		visitsLane:      m.Counter("sim.visits_lane"),
		frontierCommits: m.Counter("sim.frontier_commits"),
		queriesSaved:    m.Counter("sim.queries_saved"),
		lanesActive:     m.Gauge("sim.lanes_active"),
		sweepNS:         m.Histogram("sim.sweep_ns"),
		levelNS:         m.Histogram("sim.level_ns"),
		checkpointNS:    m.Histogram("sim.checkpoint_ns"),
		sliceNS:         m.Histogram("sim.slice_ns"),
		quiesceNS:       m.Histogram("sim.quiesce_ns"),
		watermark:       m.Gauge("sim.watermark_ps"),
	}
	for c := truthtab.Class(0); c < truthtab.NumClasses; c++ {
		eo.visitsBy[c] = m.Counter("sim.visits_by_kernel." + c.String())
		eo.queriesBy[c] = m.Counter("sim.queries_by_kernel." + c.String())
	}
	return eo
}

// Engine simulates one netlist.
type Engine struct {
	p    *plan.Plan
	nl   *netlist.Netlist
	opts Options
	mode Mode // resolved mode (Auto replaced)

	pool   event.Pool
	queues []event.Queue // one per net, indexed by NetID

	gate []gateState

	// Slot arrays in the plan's pin layouts (see plan.Plan). inQ/outQ cache
	// the queue of the slot's net (nil for unconnected outputs).
	inQ  []*event.Queue
	outQ []*event.Queue

	// Base checkpoint per slot: events with queue index < baseCur[s] are
	// folded into baseVals/baseStates/semBase.
	baseCur    []int64
	baseVals   []logic.Value
	baseStates []logic.Value
	semBase    []logic.Value // semantic (pre-delay) output values at baseNow

	// Committed output waveform tracking per output slot.
	lastCommitted  []logic.Value
	committedUntil []int64

	// Soft-resume snapshots per slot (see gateState).
	softCur    []int64
	softVals   []logic.Value
	softStates []logic.Value
	softSem    []logic.Value
	softPend   [][]event.Event

	// readMarks[nid] is the event index below which an external consumer has
	// finished reading; unwatched nets hold unreadMark.
	readMarks []int64

	// valRd holds one persistent event reader per net for Value queries,
	// allocated on the first Value call (debug/test surface, usually unused).
	valRd []event.Reader

	// kern caches the kernel class per gate (the plan classifies per
	// interned table; the executor dispatches per gate). All ClassSeq under
	// Options.DisableKernels.
	kern []truthtab.Class

	// Compiled-script execution state (nil/empty when scripts are off).
	// dirtyBits is the plan-wide dirty bitset (plan.BitOf layout, segments
	// word-aligned); segDirty[s] is script s's set-bit population, kept by
	// markDirty (increment on a 0→1 bit transition) and the replay loops
	// (decrement by the popcount of each word they swap out), so a clean
	// segment is skipped on one counter load without touching its words.
	dirtyBits []uint64
	segDirty  []int64

	// front is the per-net frontier worklist (see frontier.go); front.on
	// is false with DisableFrontier or DisableKernels.
	front frontierState

	// Lane mode (Options.Lanes > 1). Each net's laneStores entry parallels
	// its event queue index-for-index: entry i holds the changed-lane mask
	// and full merged lane word of the queue's event i (lane mode never
	// trims, so indices coincide from zero). The slot arrays are lane-word
	// twins of the scalar base/soft checkpoint arrays; the base never folds
	// forward (lane mode skips Checkpoint), so laneBase* stay at their
	// broadcast initial values. All empty/zero in scalar mode.
	lanes             int
	laneMask          uint32
	laneStores        []lane.Store // per net
	laneLast          []lane.Word  // per net: current word after all appends (PI injection)
	inStore           []*lane.Store
	outStore          []*lane.Store
	laneBaseVals      []lane.Word
	laneSemBase       []lane.Word
	laneLastCommitted []lane.Word
	laneBaseStates    []lane.Word
	laneSoftVals      []lane.Word
	laneSoftSem       []lane.Word
	laneSoftStates    []lane.Word
	laneSoftPend      [][]event.Event // [outSlot*lanes + lane]

	exec       *executor
	sweepSegs  []execSeg // sequential phase + each comb level's kernel buckets
	scriptSegs int       // compiled scripts in the schedule (Stats.ScriptSegments)
	fusedLevs  int       // plan-time fused levels per sweep (Stats.LevelsFused)
	lastDirty  int       // dirty-gate count of the previous sweep
	stats      engineCounters
	obs        engineObs

	// poison is set when a sweep contained a panic: the committed state may
	// be inconsistent, so every later run-control call returns a SimError
	// wrapping ErrPoisoned and the original cause. Close still releases the
	// pool; LoadSnapshot (a full state replacement) clears it.
	poison *SimError
}

// New lowers the design and builds an engine. The compiled library must
// cover every cell type in the netlist; delays must come from sdf.Apply or
// sdf.Uniform on the same netlist. To share the lowering across simulators
// or runs, use plan.Build + NewFromPlan.
func New(nl *netlist.Netlist, lib *truthtab.CompiledLibrary, delays *sdf.Delays, opts Options) (*Engine, error) {
	p, err := plan.Build(nl, lib, delays)
	if err != nil {
		return nil, err
	}
	return NewFromPlan(p, opts)
}

// NewFromPlan builds an engine over a prebuilt plan. The plan is read-only
// and may be shared with other simulators concurrently.
func NewFromPlan(p *plan.Plan, opts Options) (*Engine, error) {
	e := &Engine{p: p, nl: p.Netlist, opts: opts.withDefaults()}
	if e.opts.Lanes > lane.MaxLanes {
		return nil, fmt.Errorf("sim: Lanes %d exceeds lane.MaxLanes %d", e.opts.Lanes, lane.MaxLanes)
	}
	if e.opts.Lanes > 1 && (e.opts.DisableKernels || e.opts.DisableScripts) {
		return nil, fmt.Errorf("sim: lane mode requires the compiled-script schedule (DisableKernels/DisableScripts unset)")
	}
	e.lanes = e.opts.Lanes
	e.laneMask = uint32(1)<<uint(e.lanes) - 1
	e.obs = newEngineObs(e.opts)
	e.obs.lanesActive.Set(int64(e.lanes))
	e.mode = e.opts.Mode
	if e.mode == ModeAuto {
		switch {
		case p.Pins >= e.opts.AutoPinThreshold:
			e.mode = ModeManycore
		case p.Pins <= e.opts.AutoSerialThreshold:
			e.mode = ModeSerial
		default:
			e.mode = ModeParallel
		}
	}

	// Net queues start at the fixpoint values.
	e.queues = make([]event.Queue, p.NumNets())
	for n := range e.queues {
		e.queues[n].Init(&e.pool, p.NetInit[n])
	}

	nIn, nOut := len(p.InNet), len(p.OutNet)
	e.inQ = make([]*event.Queue, nIn)
	for s, nid := range p.InNet {
		e.inQ[s] = &e.queues[nid]
	}
	e.outQ = make([]*event.Queue, nOut)
	for s, nid := range p.OutNet {
		if nid >= 0 {
			e.outQ[s] = &e.queues[nid]
		}
	}

	e.baseCur = make([]int64, nIn)
	e.baseVals = append([]logic.Value(nil), p.InInit...)
	e.baseStates = append([]logic.Value(nil), p.StateInit...)
	e.semBase = append([]logic.Value(nil), p.OutInit...)
	e.lastCommitted = append([]logic.Value(nil), p.OutInit...)
	e.committedUntil = make([]int64, nOut)
	for s := range e.committedUntil {
		e.committedUntil[s] = -TimeInf
	}
	e.softCur = make([]int64, nIn)
	e.softVals = make([]logic.Value, nIn)
	e.softStates = make([]logic.Value, len(p.StateInit))
	e.softSem = make([]logic.Value, nOut)
	e.softPend = make([][]event.Event, nOut)
	e.readMarks = make([]int64, p.NumNets())
	for n := range e.readMarks {
		e.readMarks[n] = unreadMark
	}

	e.gate = make([]gateState, p.NumGates())
	for i := range e.gate {
		e.gate[i].baseNow = -TimeInf
	}

	if e.lanes > 1 {
		// Lane twins of the slot arrays, every lane starting at the scalar
		// initial value. The per-net stores start empty, aligned with the
		// (untrimmed, unrestored) queues at index zero.
		e.laneStores = make([]lane.Store, p.NumNets())
		e.laneLast = make([]lane.Word, p.NumNets())
		for n := range e.laneLast {
			e.laneLast[n] = lane.Broadcast(p.NetInit[n])
		}
		e.inStore = make([]*lane.Store, nIn)
		for s, nid := range p.InNet {
			e.inStore[s] = &e.laneStores[nid]
		}
		e.outStore = make([]*lane.Store, nOut)
		for s, nid := range p.OutNet {
			if nid >= 0 {
				e.outStore[s] = &e.laneStores[nid]
			}
		}
		e.laneBaseVals = make([]lane.Word, nIn)
		for s, v := range p.InInit {
			e.laneBaseVals[s] = lane.Broadcast(v)
		}
		e.laneSemBase = make([]lane.Word, nOut)
		e.laneLastCommitted = make([]lane.Word, nOut)
		for s, v := range p.OutInit {
			e.laneSemBase[s] = lane.Broadcast(v)
			e.laneLastCommitted[s] = lane.Broadcast(v)
		}
		e.laneBaseStates = make([]lane.Word, len(p.StateInit))
		for s, v := range p.StateInit {
			e.laneBaseStates[s] = lane.Broadcast(v)
		}
		e.laneSoftVals = make([]lane.Word, nIn)
		e.laneSoftSem = make([]lane.Word, nOut)
		e.laneSoftStates = make([]lane.Word, len(p.StateInit))
		e.laneSoftPend = make([][]event.Event, nOut*e.lanes)
	}

	e.kern = make([]truthtab.Class, p.NumGates())
	switch {
	case !e.opts.DisableKernels && !e.opts.DisableScripts:
		// Compiled schedule: each segment replayed from its script over the
		// dirty bitset.
		for i := range e.kern {
			e.kern[i] = p.KernelOf[p.TableOf[i]]
		}
		e.dirtyBits = make([]uint64, p.ScriptWords)
		e.segDirty = make([]int64, len(p.Scripts))
		e.sweepSegs = make([]execSeg, len(p.Scripts))
		for i := range p.Scripts {
			s := &p.Scripts[i]
			e.sweepSegs[i] = execSeg{
				script: s, dirty: &e.segDirty[i],
				kernel: s.Kernel, level: s.Level, barrier: s.Barrier,
				items: int64(s.Words()),
			}
		}
		e.scriptSegs = len(p.Scripts)
		e.fusedLevs = p.FusedLevels
	case !e.opts.DisableKernels:
		// The plan's bucketed schedule, interpreted: each level split into
		// per-kernel runs, first bucket of a group carrying the barrier.
		e.sweepSegs = make([]execSeg, len(p.Segs))
		for i := range p.Segs {
			s := &p.Segs[i]
			e.sweepSegs[i] = execSeg{
				gates:  s.Gates,
				kernel: s.Kernel, level: s.Level, barrier: s.Barrier,
				items: int64(len(s.Gates)),
			}
		}
		for i := range e.kern {
			e.kern[i] = p.KernelOf[p.TableOf[i]]
		}
		e.fusedLevs = p.FusedLevels
	default:
		// Unbucketed fallback: the pre-kernel execution shape, one segment
		// per level in original gate order, every level a barrier.
		e.sweepSegs = make([]execSeg, 0, 1+len(p.Lev.Levels))
		e.sweepSegs = append(e.sweepSegs, execSeg{
			gates: p.Lev.Sequential, level: -1, barrier: true,
			items: int64(len(p.Lev.Sequential)),
		})
		for lv, gates := range p.Lev.Levels {
			e.sweepSegs = append(e.sweepSegs, execSeg{
				gates: gates, level: lv, barrier: true, items: int64(len(gates)),
			})
		}
	}
	// The frontier plane needs the comb1 idle kernel, so the pre-kernel
	// A/B shape (DisableKernels) implies the marking baseline too. Lane
	// mode participates: the walk dispatches to the lane-word idle kernel,
	// so lane gates advance through their lane twins (lane mode always
	// compiles scripts).
	if !e.opts.DisableFrontier && !e.opts.DisableKernels {
		f := &e.front
		f.on = true
		nets := len(p.Netlist.Nets)
		f.netMark = make([]int64, nets)
		for i := range f.netMark {
			f.netMark[i] = frontierUnstaged
		}
		// One staging bucket per level in each tier, preallocated to the
		// level's population — flag dedup guarantees a bucket can never
		// overflow it. The buckets subslice two flat backing arrays so
		// construction stays O(arrays), not O(levels) (TestNewFromPlanAllocs).
		npop := make([]int64, p.NumNetLevels)
		nTot := int64(0)
		for nid := 0; nid < nets; nid++ {
			if p.NetFront[nid] != plan.FrontNetNone {
				npop[p.NetLevel[nid]]++
				nTot++
			}
		}
		f.nets = make([][]netlist.NetID, p.NumNetLevels)
		nBack := make([]netlist.NetID, nTot)
		for lv := range f.nets {
			f.nets[lv], nBack = nBack[:npop[lv]:npop[lv]], nBack[npop[lv]:]
		}
		f.netLen = make([]int64, p.NumNetLevels)
		// cellState pre-bakes each eligible gate's walk level next to the
		// staged bit so the commit hot path never touches plan.FrontLevel.
		f.cellState = make([]uint32, p.NumGates())
		cpop := make([]int64, p.NumNetLevels)
		cTot := int64(0)
		for g := 0; g < p.NumGates(); g++ {
			if p.FrontEligible[g] {
				f.cellState[g] = uint32(p.FrontLevel[g]) << 1
				cpop[p.FrontLevel[g]]++
				cTot++
			}
		}
		f.cells = make([][]netlist.CellID, p.NumNetLevels)
		cBack := make([]netlist.CellID, cTot)
		for lv := range f.cells {
			f.cells[lv], cBack = cBack[:cpop[lv]:cpop[lv]], cBack[cpop[lv]:]
		}
		f.cellLen = make([]int64, p.NumNetLevels)
		f.loLv = p.NumNetLevels
	}
	// Everything starts dirty so the first Advance initializes constant
	// cones (tie cells, reset trees) even before any stimulus.
	e.markAllDirty()
	e.exec = newExecutor(e)
	e.front.serial = e.exec.threads == 1
	e.lastDirty = p.NumGates() // everything starts dirty
	return e, nil
}

// markAllDirty marks every gate for the next sweep: all per-gate dirty
// flags, and — when scripts are on — every valid dirty bit with the
// per-segment populations to match. Stray bits above a script's op count
// stay zero so a word swap never yields an out-of-range op index.
func (e *Engine) markAllDirty() {
	for i := range e.gate {
		e.gate[i].dirty.Store(true)
	}
	if e.dirtyBits == nil {
		return
	}
	p := e.p
	for i := range p.Scripts {
		s := &p.Scripts[i]
		base := int(s.BitOff) >> 6
		n := len(s.Ops)
		for w := 0; n > 0; w++ {
			if n >= 64 {
				atomic.StoreUint64(&e.dirtyBits[base+w], ^uint64(0))
				n -= 64
			} else {
				atomic.StoreUint64(&e.dirtyBits[base+w], uint64(1)<<uint(n)-1)
				n = 0
			}
		}
		atomic.StoreInt64(&e.segDirty[i], int64(len(s.Ops)))
	}
}

// Close parks out and joins the engine's worker-pool goroutines. It is
// idempotent and must not overlap Advance/Finish/Checkpoint. The engine
// stays usable afterwards: the next parallel sweep simply restarts the
// pool. Long-lived processes that build many engines should Close each one
// when done with it.
func (e *Engine) Close() { e.exec.pool.Close() }

// Mode returns the resolved execution mode.
func (e *Engine) Mode() Mode { return e.mode }

// Err reports the engine's poison state: nil while the engine is healthy,
// or the *SimError describing the contained panic that poisoned it. A
// poisoned engine rejects every run-control call with an error wrapping
// ErrPoisoned; Close remains safe, and LoadSnapshot clears the poison.
func (e *Engine) Err() error {
	if e.poison == nil {
		return nil
	}
	return e.poison
}

// Stats returns a snapshot of the cumulative counters, including the worker
// pool's scheduling counters. It is safe to call from any goroutine while a
// run is in flight — the obs debug endpoint polls it live.
func (e *Engine) Stats() Stats {
	ps := e.exec.pool.Stats()
	st := Stats{
		Sweeps:              e.stats.sweeps.Load(),
		Visits:              e.stats.visits.Load(),
		Queries:             e.stats.queries.Load(),
		EventsCommitted:     e.stats.events.Load(),
		Checkpoints:         e.stats.checkpoints.Load(),
		VisitsWatermarkOnly: e.stats.visitsWMOnly.Load(),
		VisitsLane:          e.stats.visitsLane.Load(),
		FrontierCommits:     e.stats.frontierCommits.Load(),
		QueriesSaved:        e.stats.queriesSaved.Load(),
		PoolSpawned:         ps.Spawned,
		PoolRounds:          ps.Rounds,
		PoolWakes:           ps.Wakes,
		PoolParks:           ps.Parks,
		LevelsFused:         e.stats.levelsFused.Load(),
		SweepNS:             e.stats.sweepNS.Load(),
		LevelNS:             e.stats.levelNS.Load(),
		ScriptSegments:      int64(e.scriptSegs),
		SegmentsSkipped:     e.stats.segsSkipped.Load(),
		Downgrades:          e.stats.downgrades.Load(),
	}
	for c := range st.VisitsByKernel {
		st.VisitsByKernel[c] = e.stats.visitsBy[c].Load()
		st.QueriesByKernel[c] = e.stats.queriesBy[c].Load()
	}
	return st
}

// Netlist returns the simulated netlist.
func (e *Engine) Netlist() *netlist.Netlist { return e.nl }

// Plan returns the shared lowered design.
func (e *Engine) Plan() *plan.Plan { return e.p }

// Levelization returns the execution plan (for diagnostics and tools).
func (e *Engine) Levelization() *levelize.Levelization { return e.p.Lev }

// PoolPages reports how many event pages were ever allocated.
func (e *Engine) PoolPages() int64 { return e.pool.AllocatedPages() }
