package sim

import (
	"bytes"
	"fmt"
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
)

// TestScriptMixedEquivalence checks, on the mixed-kernel fixture, that the
// script-replay engine, the interpreted engine (DisableScripts) and the
// reference simulator produce byte-identical committed event streams across
// all execution modes.
func TestScriptMixedEquivalence(t *testing.T) {
	force4Procs(t)
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	ref, err := refsim.NewFromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{ModeSerial, ModeParallel, ModeManycore} {
		opts := pooledOpts(mode)
		scripted := runCollect(t, p, stim, opts)
		diffStreams(t, nl, want, scripted, fmt.Sprintf("scripts mode=%v vs refsim", mode))

		opts.DisableScripts = true
		interp := runCollect(t, p, stim, opts)
		diffStreams(t, nl, scripted, interp, fmt.Sprintf("mode=%v scripts vs interpreted", mode))
	}
}

// TestScriptGeneratedEquivalence repeats the scripts-vs-interpreted stream
// comparison on generated designs (FFs, latches, scan chains, clock gates,
// deep comb cloud) across seeds and modes.
func TestScriptGeneratedEquivalence(t *testing.T) {
	force4Procs(t)
	for seed := int64(0); seed < 3; seed++ {
		d, err := gen.Build(smallSpec(seed + 900))
		if err != nil {
			t.Fatal(err)
		}
		delays := gen.Delays(d, 11)
		p, err := plan.Build(d.Netlist, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.7, Seed: seed, ScanBurst: 5})
		for _, mode := range []Mode{ModeSerial, ModeParallel, ModeManycore} {
			opts := pooledOpts(mode)
			scripted := runCollect(t, p, stim, opts)
			opts.DisableScripts = true
			interp := runCollect(t, p, stim, opts)
			diffStreams(t, d.Netlist, scripted, interp,
				fmt.Sprintf("seed=%d mode=%v scripts vs interpreted", seed, mode))
		}
	}
}

// TestScriptFusedChainPooled drives a deep single-gate-per-level chain —
// the shape plan-time level fusion collapses hardest — through the pooled
// executors and checks the fused script schedule against the reference.
func TestScriptFusedChainPooled(t *testing.T) {
	force4Procs(t)
	lib := liberty.MustBuiltin()
	nl := netlist.New("chain", lib)
	if err := nl.MarkInput(nl.AddNet("n0")); err != nil {
		t.Fatal(err)
	}
	const depth = 24
	for i := 1; i <= depth; i++ {
		if _, err := nl.AddInstance(fmt.Sprintf("g%d", i), "INV",
			map[string]string{"A": fmt.Sprintf("n%d", i-1), "Y": fmt.Sprintf("n%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := plan.Build(nl, testLib, sdf.Uniform(nl, 7))
	if err != nil {
		t.Fatal(err)
	}
	if p.FusedLevels == 0 {
		t.Fatal("deep single-gate chain induced no plan-time level fusion")
	}
	n0, _ := nl.Net("n0")
	var stim []gen.Change
	for i := int64(0); i < 16; i++ {
		stim = append(stim, gen.Change{Net: n0, Time: 1000 + i*400, Val: logic.Value(i % 2)})
	}

	ref, err := refsim.NewFromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeParallel, ModeManycore} {
		got := runCollect(t, p, stim, pooledOpts(mode))
		diffStreams(t, nl, want, got, fmt.Sprintf("fused chain mode=%v vs refsim", mode))
	}
}

// TestScriptCounters checks the script observability: ScriptSegments
// reports the compiled schedule size (zero when scripts are disabled),
// SegmentsSkipped counts clean-segment skips on multi-sweep runs, and the
// obs counter mirrors the Stats field.
func TestScriptCounters(t *testing.T) {
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	reg := obs.NewRegistry()
	e, err := NewFromPlan(p, Options{Mode: ModeSerial, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ScriptSegments == 0 {
		t.Error("scripts on: ScriptSegments = 0")
	}
	if st.SegmentsSkipped == 0 {
		t.Error("multi-sweep run skipped no clean segments")
	}
	if got := reg.Snapshot().Counters["sim.segments_skipped"]; got != st.SegmentsSkipped {
		t.Errorf("sim.segments_skipped counter = %d, Stats = %d", got, st.SegmentsSkipped)
	}

	g, err := NewFromPlan(p, Options{Mode: ModeSerial, DisableScripts: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, s := range stim {
		if err := g.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	gst := g.Stats()
	if gst.ScriptSegments != 0 || gst.SegmentsSkipped != 0 {
		t.Errorf("DisableScripts: ScriptSegments = %d, SegmentsSkipped = %d, want 0, 0",
			gst.ScriptSegments, gst.SegmentsSkipped)
	}
	// Both paths commit the same streams regardless of the counter split.
	diffStreams(t, nl, collectEngine(e), collectEngine(g), "counters fixture scripts vs interpreted")
}

// TestScriptSnapshotCrossRestore saves a snapshot from an engine on one
// execution path and restores it into an engine on the other, in both
// directions. Snapshots capture only persistent slot arrays — no script
// state — so the combined run must match a one-shot reference on either
// path.
func TestScriptSnapshotCrossRestore(t *testing.T) {
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)
	const cut = 12500 // after cycle 5 settles, before cycle 6 begins
	want := runCollect(t, p, stim, Options{Mode: ModeSerial})

	for _, dir := range []struct {
		label      string
		from, into Options
	}{
		{"scripts->interpreted", Options{Mode: ModeSerial}, Options{Mode: ModeSerial, DisableScripts: true}},
		{"interpreted->scripts", Options{Mode: ModeSerial, DisableScripts: true}, Options{Mode: ModeSerial}},
	} {
		e1, err := NewFromPlan(p, dir.from)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stim {
			if s.Time >= cut {
				continue
			}
			if err := e1.Inject(s.Net, s.Time, s.Val); err != nil {
				t.Fatal(err)
			}
		}
		if err := e1.Advance(cut); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e1.SaveSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		e1.Close()

		e2, err := NewFromPlan(p, dir.into)
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.LoadSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		for _, s := range stim {
			if s.Time < cut {
				continue
			}
			if err := e2.Inject(s.Net, s.Time, s.Val); err != nil {
				t.Fatal(err)
			}
		}
		if err := e2.Finish(); err != nil {
			t.Fatal(err)
		}
		diffStreams(t, nl, want, collectEngine(e2), dir.label)
		e2.Close()
	}
}

// fuzzCombNetlist decodes a feed-forward cloud of packable single-output
// gates from fuzz bytes: each pair of bytes adds one INV/NAND2/XOR2 whose
// fanins are drawn from the nets defined so far, so any input is a valid
// acyclic netlist.
func fuzzCombNetlist(data []byte) (*netlist.Netlist, error) {
	lib := liberty.MustBuiltin()
	nl := netlist.New("fuzzcomb", lib)
	nets := []string{"i0", "i1", "i2"}
	for _, in := range nets {
		if err := nl.MarkInput(nl.AddNet(in)); err != nil {
			return nil, err
		}
	}
	const maxGates = 40
	for g := 0; g+1 < len(data)/2 && g < maxGates; g++ {
		kind, pick := data[2*g], data[2*g+1]
		a := nets[int(pick)%len(nets)]
		b := nets[int(pick/3)%len(nets)]
		out := fmt.Sprintf("y%d", g)
		var err error
		switch kind % 3 {
		case 0:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", g), "INV",
				map[string]string{"A": a, "Y": out})
		case 1:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", g), "NAND2",
				map[string]string{"A": a, "B": b, "Y": out})
		default:
			_, err = nl.AddInstance(fmt.Sprintf("g%d", g), "XOR2",
				map[string]string{"A": a, "B": b, "Y": out})
		}
		if err != nil {
			return nil, err
		}
		nets = append(nets, out)
	}
	return nl, nil
}

// FuzzScriptComb1Segment builds random comb1-only netlists and checks the
// compiled script replay against the interpreted path gate for gate: the
// committed event streams must be byte-identical.
func FuzzScriptComb1Segment(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 5})
	f.Add([]byte{1, 4, 1, 7, 2, 9, 0, 2, 1, 3, 2, 8, 0, 1, 1, 6})
	f.Add(bytes.Repeat([]byte{2, 5, 0, 3}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("not enough bytes for a gate")
		}
		nl, err := fuzzCombNetlist(data)
		if err != nil {
			t.Skip(err) // decoded an invalid netlist shape; not a sim bug
		}
		p, err := plan.Build(nl, testLib, sdf.Uniform(nl, int64(1+data[0]%9)))
		if err != nil {
			t.Skip(err)
		}
		// Toggle the three inputs at staggered, byte-derived offsets.
		var stim []gen.Change
		for i := 0; i < 3; i++ {
			nid, ok := nl.Net(fmt.Sprintf("i%d", i))
			if !ok {
				t.Fatalf("input i%d missing", i)
			}
			step := int64(200 + 100*int(data[i%len(data)]%7))
			for c := int64(0); c < 8; c++ {
				stim = append(stim, gen.Change{Net: nid, Time: 500 + int64(i)*130 + c*step, Val: logic.Value(c % 2)})
			}
		}
		scripted := runCollect(t, p, stim, Options{Mode: ModeSerial})
		interp := runCollect(t, p, stim, Options{Mode: ModeSerial, DisableScripts: true})
		diffStreams(t, nl, scripted, interp, "fuzz scripts vs interpreted")
	})
}
