package sim

import (
	"bytes"
	"fmt"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
)

// runCollectSliced is runCollect with the advance split into horizon slices,
// the way RunStream drives the engine. The slicing is what exercises the
// watermark-relax machinery: each Advance past the injected events moves
// primary-input watermarks with no new events, and quiet comb clouds
// downstream must relax rather than re-visit.
func runCollectSliced(t *testing.T, p *plan.Plan, stim []gen.Change, opts Options, slice, end int64) map[netlist.NetID][]event.Event {
	t.Helper()
	e, err := NewFromPlan(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	for h := slice; h < end; h += slice {
		if err := e.Advance(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	return collectEngine(e)
}

// TestRelaxMixedEquivalence checks, on the mixed-kernel fixture under sliced
// advances, that the relax-enabled engine matches both the reference
// simulator and the bit-exact A/B baseline (DisableWatermarkRelax) across
// all execution modes, with and without compiled scripts.
func TestRelaxMixedEquivalence(t *testing.T) {
	force4Procs(t)
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	ref, err := refsim.NewFromPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := refsim.Collect{}
	rstim := make([]refsim.Stim, len(stim))
	for i, s := range stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	if err := ref.Run(rstim, want.Add); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{ModeSerial, ModeParallel, ModeManycore} {
		for _, scripts := range []bool{false, true} {
			opts := pooledOpts(mode)
			opts.DisableScripts = !scripts
			relaxed := runCollectSliced(t, p, stim, opts, 2000, 30000)
			label := fmt.Sprintf("mode=%v scripts=%v", mode, scripts)
			diffStreams(t, nl, want, relaxed, label+" relax vs refsim")

			opts.DisableWatermarkRelax = true
			baseline := runCollectSliced(t, p, stim, opts, 2000, 30000)
			diffStreams(t, nl, relaxed, baseline, label+" relax vs disabled")
		}
	}
}

// TestRelaxGeneratedEquivalence repeats the relax-on/off stream comparison
// on larger generated designs (FFs, latches, scan chains, clock gates, deep
// comb clouds) across seeds, under sliced advances.
func TestRelaxGeneratedEquivalence(t *testing.T) {
	force4Procs(t)
	for seed := int64(0); seed < 3; seed++ {
		d, err := gen.Build(smallSpec(seed + 900))
		if err != nil {
			t.Fatal(err)
		}
		delays := gen.Delays(d, 7)
		p, err := plan.Build(d.Netlist, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.7, Seed: seed, ScanBurst: 5})
		for _, mode := range []Mode{ModeSerial, ModeParallel} {
			opts := pooledOpts(mode)
			relaxed := runCollectSliced(t, p, stim, opts, 4000, 48000)
			opts.DisableWatermarkRelax = true
			baseline := runCollectSliced(t, p, stim, opts, 4000, 48000)
			diffStreams(t, d.Netlist, relaxed, baseline, fmt.Sprintf("seed=%d mode=%v relax vs disabled", seed, mode))
		}
	}
}

// relaxBoundaryFixture builds a fanout-2 net for the markLoads boundary
// test: i0 -> inv0 -> n0, with n0 read by two further inverters.
func relaxBoundaryFixture(t *testing.T) (*netlist.Netlist, *sdf.Delays) {
	t.Helper()
	lib := liberty.MustBuiltin()
	nl := netlist.New("boundary", lib)
	if err := nl.MarkInput(nl.AddNet("i0")); err != nil {
		t.Fatal(err)
	}
	for _, inst := range [][3]string{
		{"inv0", "i0", "n0"},
		{"invA", "n0", "ya"},
		{"invB", "n0", "yb"},
	} {
		if _, err := nl.AddInstance(inst[0], "INV", map[string]string{"A": inst[1], "Y": inst[2]}); err != nil {
			t.Fatal(err)
		}
	}
	return nl, sdf.Uniform(nl, 10)
}

// cellByName resolves an instance name to its CellID.
func cellByName(t *testing.T, nl *netlist.Netlist, name string) netlist.CellID {
	t.Helper()
	for i := range nl.Instances {
		if nl.Instances[i].Name == name {
			return netlist.CellID(i)
		}
	}
	t.Fatalf("instance %s missing", name)
	return -1
}

// TestMarkLoadsBoundary pins the wakeup boundary of a watermark-only
// advance against DeterminedUntil's exclusive semantics (event/queue.go): a
// reader whose determination frontier sits exactly at the old watermark was
// blocked on precisely the first newly-determined instant and must be
// marked; a reader one below it was stalled on something else and must not
// be. The same boundary governs the relax path's staging filter.
func TestMarkLoadsBoundary(t *testing.T) {
	nl, delays := relaxBoundaryFixture(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	n0, ok := nl.Net("n0")
	if !ok {
		t.Fatal("net n0 missing")
	}

	// Flag-based marks (DisableScripts) so the dirty state is directly
	// observable; relax disabled to exercise the baseline branch.
	e, err := NewFromPlan(p, Options{Mode: ModeSerial, DisableScripts: true, DisableWatermarkRelax: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	invA, invB := cellByName(t, nl, "invA"), cellByName(t, nl, "invB")

	const wOld = 100
	setup := func() {
		for _, c := range []netlist.CellID{invA, invB} {
			e.gate[c].dirty.Store(false)
		}
		e.gate[invA].detUntil.Store(wOld)     // waiting exactly at the old watermark
		e.gate[invB].detUntil.Store(wOld - 1) // stalled below it, on something else
	}

	setup()
	e.markLoads(n0, wOld, false)
	if !e.gate[invA].dirty.Load() {
		t.Error("reader with detUntil == wOld not marked by a watermark-only advance")
	}
	if e.gate[invB].dirty.Load() {
		t.Error("reader with detUntil == wOld-1 marked by a watermark-only advance")
	}

	// New events wake every reader regardless of frontier.
	setup()
	e.markLoads(n0, wOld, true)
	if !e.gate[invA].dirty.Load() || !e.gate[invB].dirty.Load() {
		t.Error("new events must mark every reader")
	}

	// The relax path applies the same boundary when staging: an eligible
	// reader at the boundary is staged for a walk; a reader below it
	// contributes nothing; restaging is deduped by cellFlag. The engine is
	// run to completion first so the readers hold a quiet soft snapshot —
	// a reader that still needs a real visit is marked, not staged.
	r, err := NewFromPlan(p, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.relax.on {
		t.Fatal("relax not armed on a default engine")
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	staged := func() (n int64) {
		for _, l := range r.relax.cellLen {
			n += l
		}
		return n
	}
	rA, rB := cellByName(t, nl, "invA"), cellByName(t, nl, "invB")
	r.gate[rA].detUntil.Store(wOld)
	r.gate[rB].detUntil.Store(wOld - 1)
	r.markLoads(n0, wOld, false)
	if got := staged(); got != 1 {
		t.Fatalf("staged cells = %d after one watermark-only advance, want 1", got)
	}
	if r.relax.cellFlag[rA] == 0 {
		t.Error("reader with detUntil == wOld not staged by a watermark-only advance")
	}
	if r.relax.cellFlag[rB] != 0 {
		t.Error("reader with detUntil == wOld-1 staged by a watermark-only advance")
	}
	r.markLoads(n0, wOld+5, false)
	if got := staged(); got != 1 {
		t.Fatalf("staged cells = %d after duplicate staging, want 1 (cellFlag dedup)", got)
	}
}

// TestRelaxCounters checks the new observability: RelaxedNets counts drained
// worklist entries, VisitsWatermarkOnly counts visits that committed no
// events, the obs counters mirror the Stats fields, and the A/B switch
// really turns the pass off.
func TestRelaxCounters(t *testing.T) {
	nl, delays := mixedKernelDesign(t)
	p, err := plan.Build(nl, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := mixedKernelStim(nl, t)

	reg := obs.NewRegistry()
	e, err := NewFromPlan(p, Options{Mode: ModeSerial, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, s := range stim {
		if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	for h := int64(2000); h < 30000; h += 2000 {
		if err := e.Advance(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.RelaxedNets == 0 {
		t.Error("sliced run relaxed no nets; the pass never engaged")
	}
	if st.VisitsWatermarkOnly == 0 {
		t.Error("no watermark-only visits counted")
	}
	if st.VisitsWatermarkOnly > st.Visits {
		t.Errorf("VisitsWatermarkOnly %d exceeds Visits %d", st.VisitsWatermarkOnly, st.Visits)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim.relax_nets"]; got != st.RelaxedNets {
		t.Errorf("sim.relax_nets counter = %d, Stats = %d", got, st.RelaxedNets)
	}
	if got := snap.Counters["sim.visits_watermark_only"]; got != st.VisitsWatermarkOnly {
		t.Errorf("sim.visits_watermark_only counter = %d, Stats = %d", got, st.VisitsWatermarkOnly)
	}

	off, err := NewFromPlan(p, Options{Mode: ModeSerial, DisableWatermarkRelax: true})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	for _, s := range stim {
		if err := off.Inject(s.Net, s.Time, s.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := off.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := off.Stats().RelaxedNets; got != 0 {
		t.Errorf("DisableWatermarkRelax still relaxed %d nets", got)
	}
}

// TestRelaxSegmentSkipNoLostWakeup is the clean-segment interplay proof: a
// script segment skipped on a zero dirty population must never strand a
// pending relax entry. Multi-slice pooled and manycore runs on a generated
// design must both relax nets and (on the dirty-filtered path) skip
// segments, while the committed streams stay identical to the relax-off
// baseline — a stranded wakeup would leave a frontier behind and diverge.
// Run under -race via scripts/check.sh.
func TestRelaxSegmentSkipNoLostWakeup(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(1234))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	p, err := plan.Build(d.Netlist, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.5, Seed: 9, ScanBurst: 5})

	baseOpts := pooledOpts(ModeParallel)
	baseOpts.DisableWatermarkRelax = true
	baseline := runCollectSliced(t, p, stim, baseOpts, 4000, 48000)

	for _, mode := range []Mode{ModeParallel, ModeManycore} {
		opts := pooledOpts(mode)
		e, err := NewFromPlan(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stim {
			if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
				t.Fatal(err)
			}
		}
		for h := int64(4000); h < 48000; h += 4000 {
			if err := e.Advance(h); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Finish(); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.RelaxedNets == 0 {
			t.Errorf("mode=%v: no nets relaxed; fixture does not exercise the interplay", mode)
		}
		// Only dirty-filtered rounds skip clean segments; the oblivious
		// manycore scan visits everything.
		if mode == ModeParallel && st.SegmentsSkipped == 0 {
			t.Error("pooled run skipped no segments; fixture does not exercise the interplay")
		}
		diffStreams(t, d.Netlist, baseline, collectEngine(e), fmt.Sprintf("mode=%v relax+skips vs baseline", mode))
		for nid := range d.Netlist.Nets {
			if w := e.Events(netlist.NetID(nid)).DeterminedUntil(); w != TimeInf {
				t.Fatalf("mode=%v: net %s watermark %d after Finish; a wakeup was lost", mode, d.Netlist.Nets[nid].Name, w)
			}
		}
		e.Close()
	}
}

// FuzzWatermarkRelax builds random comb1-only netlists and checks the
// relax-enabled engine against the DisableWatermarkRelax baseline under
// sliced advances: the committed event streams must be byte-identical.
func FuzzWatermarkRelax(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 5})
	f.Add([]byte{1, 4, 1, 7, 2, 9, 0, 2, 1, 3, 2, 8, 0, 1, 1, 6})
	f.Add(bytes.Repeat([]byte{2, 5, 0, 3}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("not enough bytes for a gate")
		}
		nl, err := fuzzCombNetlist(data)
		if err != nil {
			t.Skip(err)
		}
		p, err := plan.Build(nl, testLib, sdf.Uniform(nl, int64(1+data[0]%9)))
		if err != nil {
			t.Skip(err)
		}
		var stim []gen.Change
		for i := 0; i < 3; i++ {
			nid, ok := nl.Net(fmt.Sprintf("i%d", i))
			if !ok {
				t.Fatalf("input i%d missing", i)
			}
			step := int64(200 + 100*int(data[i%len(data)]%7))
			for c := int64(0); c < 8; c++ {
				stim = append(stim, gen.Change{Net: nid, Time: 500 + int64(i)*130 + c*step, Val: logic.Value(c % 2)})
			}
		}
		slice := int64(700 + 300*int(data[len(data)-1]%5))
		relaxed := runCollectSliced(t, p, stim, Options{Mode: ModeSerial}, slice, 12000)
		baseline := runCollectSliced(t, p, stim, Options{Mode: ModeSerial, DisableWatermarkRelax: true}, slice, 12000)
		diffStreams(t, nl, relaxed, baseline, "fuzz relax vs disabled")
	})
}
