package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/obs"
)

// TestStatsPollDuringRunStream is the concurrent-access proof for the
// engine's counters: a goroutine hammers Stats() while RunStreamCtx runs on
// the pooled executor. Under -race (scripts/check.sh) any non-atomic
// counter access between the coordinator, pool workers, and the poller is
// reported.
func TestStatsPollDuringRunStream(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), pooledOpts(ModeParallel))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := e.Stats()
			if s.Sweeps < last.Sweeps || s.EventsCommitted < last.EventsCommitted {
				t.Errorf("stats went backwards: %+v then %+v", last, s)
				return
			}
			last = s
		}
	}()

	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 30, ActivityFactor: 0.7, Seed: 42, ScanBurst: 5})
	src := NewSliceSource(toChanges(stim))
	err = e.RunStreamCtx(context.Background(), src, StreamConfig{SlicePS: 4000})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("RunStreamCtx: %v", err)
	}
	if s := e.Stats(); s.Sweeps == 0 || s.EventsCommitted == 0 {
		t.Errorf("expected nonzero sweeps/events, got %+v", s)
	}
}

// traceNames decodes a written trace and returns the set of B-span names
// and C-counter names it contains.
func traceNames(t *testing.T, data []byte) (spans, counters map[string]int) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	spans, counters = map[string]int{}, map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			spans[ev.Name]++
		case "C":
			counters[ev.Name]++
		}
	}
	return spans, counters
}

// TestStreamTraceAndMetrics runs an instrumented engine through a streamed
// stimulus and checks the recorded artifacts end to end: the trace is valid
// Chrome trace-event JSON carrying per-slice, per-sweep and pool-round
// spans plus counter tracks, and the registry's counters agree with the
// engine's own Stats.
func TestStreamTraceAndMetrics(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	opts := pooledOpts(ModeParallel)
	opts.Metrics = reg
	opts.Trace = tr
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.7, Seed: 7, ScanBurst: 5})
	if err := e.RunStream(NewSliceSource(toChanges(stim)), StreamConfig{SlicePS: 4000}); err != nil {
		t.Fatalf("RunStream: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := obs.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace fails validation: %v\n%s", err, buf.Bytes())
	}

	spans, counters := traceNames(t, buf.Bytes())
	st := e.Stats()
	if spans["sweep"] != int(st.Sweeps) {
		t.Errorf("sweep spans = %d, Stats().Sweeps = %d", spans["sweep"], st.Sweeps)
	}
	if spans["slice"] < 2 {
		t.Errorf("expected multiple slice spans with SlicePS=4000, got %d", spans["slice"])
	}
	for _, want := range []string{"checkpoint", "pool-round"} {
		if spans[want] == 0 {
			t.Errorf("no %q spans in trace; spans: %v", want, spans)
		}
	}
	for _, want := range []string{"sim.events_committed", "sim.watermark_ps", "pool.parks", "pool.wakes"} {
		if counters[want] == 0 {
			t.Errorf("no %q counter samples in trace; counters: %v", want, counters)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["sim.sweeps"]; got != st.Sweeps {
		t.Errorf("sim.sweeps counter = %d, Stats().Sweeps = %d", got, st.Sweeps)
	}
	if got := snap.Counters["sim.events_committed"]; got != st.EventsCommitted {
		t.Errorf("sim.events_committed counter = %d, Stats().EventsCommitted = %d", got, st.EventsCommitted)
	}
	if got := snap.Counters["sim.checkpoints"]; got != st.Checkpoints {
		t.Errorf("sim.checkpoints counter = %d, Stats().Checkpoints = %d", got, st.Checkpoints)
	}
	if snap.Counters["pool.rounds"] == 0 {
		t.Error("pool.rounds counter never incremented on the pooled path")
	}
	for _, h := range []string{"sim.sweep_ns", "sim.slice_ns", "sim.checkpoint_ns"} {
		hs, ok := snap.Histograms[h]
		if !ok || hs.Count == 0 {
			t.Errorf("histogram %s missing or empty", h)
		}
	}
	phases := snap.PhaseNS()
	if phases["sim.sweep"] <= 0 {
		t.Errorf("PhaseNS missing sim.sweep: %v", phases)
	}
}

// TestSerialTraceHasLevelSpans checks the serial executor's finer span
// granularity: one seq-phase plus per-level spans inside each sweep.
func TestSerialTraceHasLevelSpans(t *testing.T) {
	d, err := gen.Build(smallSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Mode: ModeSerial, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 10, ActivityFactor: 0.7, Seed: 9, ScanBurst: 5})
	for _, c := range toChanges(stim) {
		if err := e.Inject(c.Net, c.Time, c.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}
	spans, _ := traceNames(t, buf.Bytes())
	if spans["sweep"] == 0 || spans["seq-phase"] == 0 || spans["level"]+spans["level.comb1"] == 0 {
		t.Errorf("serial trace missing sweep/seq-phase/level spans: %v", spans)
	}
	// The generator's designs are dominated by packable combinational
	// cells, so the comb1 kernel buckets must show up under their own name.
	if spans["level.comb1"] == 0 {
		t.Errorf("serial trace missing level.comb1 spans: %v", spans)
	}
	if spans["pool-round"] != 0 {
		t.Errorf("serial trace should have no pool-round spans: %v", spans)
	}
}

// TestWatermarkGaugeOnAdvancePath pins the fix for the sim.watermark_ps
// gauge only ever being set on the stream path (emitSliceCounters): the
// plain Advance/Finish run paths must keep it live too, updated at sweep
// boundaries.
func TestWatermarkGaugeOnAdvancePath(t *testing.T) {
	d, err := gen.Build(smallSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Mode: ModeSerial, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 10, ActivityFactor: 0.7, Seed: 11, ScanBurst: 5})
	for _, c := range toChanges(stim) {
		if err := e.Inject(c.Net, c.Time, c.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Advance(4000); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["sim.watermark_ps"]; got <= 0 {
		t.Fatalf("sim.watermark_ps gauge = %d after Advance; never set on the non-stream path", got)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["sim.watermark_ps"]; got != TimeInf {
		t.Fatalf("sim.watermark_ps gauge = %d after Finish, want TimeInf", got)
	}
}

// TestDisabledObsZeroAllocAdvance is the overhead guard for the disabled
// path at the sweep level: with no Metrics and no Trace attached, a
// converged engine's Advance — which still runs one full dirty-scan sweep
// through all the instrumented record sites — must not allocate.
func TestDisabledObsZeroAllocAdvance(t *testing.T) {
	d, err := gen.Build(smallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 10, ActivityFactor: 0.7, Seed: 5, ScanBurst: 5})
	for _, c := range toChanges(stim) {
		if err := e.Inject(c.Net, c.Time, c.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := e.Advance(TimeInf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-obs Advance allocates %.1f per run, want 0", allocs)
	}
}
