package sim

import (
	"bytes"
	"fmt"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/lane"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
)

// checkLaneVsRefsim is the lane-mode acceptance oracle: one lane engine run
// over the merged per-lane stimuli, then every lane's extracted stream on
// every net must be byte-identical to a reference-simulator run of that
// lane's stimulus alone.
func checkLaneVsRefsim(t *testing.T, d *gen.Design, spec gen.StimSpec, lanes int, opts Options) {
	t.Helper()
	delays := gen.Delays(d, 7)
	perLaneG := gen.LaneStimuli(d, spec, lanes)

	wants := make([]refsim.Collect, lanes)
	for l := range wants {
		ref, err := refsim.New(d.Netlist, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		rstim := make([]refsim.Stim, len(perLaneG[l]))
		for i, s := range perLaneG[l] {
			rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		wants[l] = refsim.Collect{}
		if err := ref.Run(rstim, wants[l].Add); err != nil {
			t.Fatal(err)
		}
	}

	perLane := make([][]Change, lanes)
	for l, cs := range perLaneG {
		perLane[l] = make([]Change, len(cs))
		for i, c := range cs {
			perLane[l][i] = Change{Net: c.Net, Time: c.Time, Val: c.Val}
		}
	}
	merged, err := MergeLaneChanges(perLane)
	if err != nil {
		t.Fatal(err)
	}
	opts.Lanes = lanes
	e, err := New(d.Netlist, testLib, delays, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.RunLaneStream(merged, LaneStreamConfig{SlicePS: 4 * d.Spec.ClockPeriodPS}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().VisitsLane == 0 {
		t.Error("lane run recorded no lane visits")
	}

	for nid := range d.Netlist.Nets {
		for l := 0; l < lanes; l++ {
			got := e.LaneEvents(netlist.NetID(nid), l)
			want := wants[l][netlist.NetID(nid)]
			if len(got) != len(want) {
				t.Fatalf("net %s lane %d: %d events vs refsim %d\nwant %v\ngot  %v",
					d.Netlist.Nets[nid].Name, l, len(got), len(want), want, got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("net %s lane %d event %d: got %+v want %+v",
						d.Netlist.Nets[nid].Name, l, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLaneMatchesRefsim32Serial is the core acceptance test: 32 lanes of
// independently seeded stimulus through one serial lane run, every lane's
// committed stream on every net identical to 32 scalar reference runs. The
// generated designs cover FFs, latches, scan chains and clock gates, so
// both the lane comb1 kernel and the generic lane interpreter are on the
// path.
func TestLaneMatchesRefsim32Serial(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		d, err := gen.Build(smallSpec(seed + 500))
		if err != nil {
			t.Fatal(err)
		}
		spec := gen.StimSpec{Cycles: 15, ActivityFactor: 0.6, Seed: seed, ScanBurst: 5}
		checkLaneVsRefsim(t, d, spec, lane.MaxLanes, Options{Mode: ModeSerial})
	}
}

// TestLaneMatchesRefsimFewLanes covers lane counts below a full word,
// where the high lanes of every word sit outside laneMask.
func TestLaneMatchesRefsimFewLanes(t *testing.T) {
	d, err := gen.Build(smallSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	spec := gen.StimSpec{Cycles: 12, ActivityFactor: 0.7, Seed: 0, ScanBurst: 4}
	for _, lanes := range []int{2, 5, 8} {
		checkLaneVsRefsim(t, d, spec, lanes, Options{Mode: ModeSerial})
	}
}

// TestLaneMatchesRefsimPooled runs the 32-lane oracle through the worker
// pool; under -race (scripts/check.sh) this doubles as the data-race check
// on the lane stores' copy-on-grow page directories.
func TestLaneMatchesRefsimPooled(t *testing.T) {
	force4Procs(t)
	d, err := gen.Build(smallSpec(501))
	if err != nil {
		t.Fatal(err)
	}
	spec := gen.StimSpec{Cycles: 12, ActivityFactor: 0.6, Seed: 1, ScanBurst: 5}
	checkLaneVsRefsim(t, d, spec, lane.MaxLanes, pooledOpts(ModeParallel))
}

// TestLanesOneIsScalar pins the default: Options.Lanes <= 1 runs the
// unmodified scalar engine (lane arrays never allocated, scalar Inject and
// snapshots usable).
func TestLanesOneIsScalar(t *testing.T) {
	d, err := gen.Build(smallSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 10, ActivityFactor: 0.6, Seed: 2, ScanBurst: 4})
	runBoth(t, d, stim, Options{Mode: ModeSerial, Lanes: 1})

	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Mode: ModeSerial, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Lanes() != 1 {
		t.Fatalf("Lanes() = %d, want 1", e.Lanes())
	}
	if err := e.Inject(d.Netlist.PortsIn[0], 10, logic.V1); err != nil {
		t.Fatalf("scalar Inject rejected with Lanes=1: %v", err)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := e.SaveSnapshot(&snap); err != nil {
		t.Fatalf("snapshot rejected with Lanes=1: %v", err)
	}
}

// TestLaneModeGuards pins the lane-mode API surface: construction limits
// and the scalar entry points that lane mode must refuse (Inject, scalar
// streaming, snapshots) or ignore (Checkpoint).
func TestLaneModeGuards(t *testing.T) {
	d, err := gen.Build(smallSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	p, err := plan.Build(d.Netlist, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromPlan(p, Options{Lanes: lane.MaxLanes + 1}); err == nil {
		t.Error("Lanes above lane.MaxLanes accepted")
	}
	if _, err := NewFromPlan(p, Options{Lanes: 8, DisableScripts: true}); err == nil {
		t.Error("lane mode with DisableScripts accepted")
	}
	if _, err := NewFromPlan(p, Options{Lanes: 8, DisableKernels: true}); err == nil {
		t.Error("lane mode with DisableKernels accepted")
	}

	e, err := NewFromPlan(p, Options{Mode: ModeSerial, Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Lanes() != 8 {
		t.Fatalf("Lanes() = %d, want 8", e.Lanes())
	}
	pi := d.Netlist.PortsIn[0]
	if err := e.Inject(pi, 10, logic.V1); err == nil {
		t.Error("scalar Inject accepted in lane mode")
	}
	if err := e.RunStream(NewSliceSource(nil), StreamConfig{}); err == nil {
		t.Error("scalar RunStream accepted in lane mode")
	}
	var snap bytes.Buffer
	if err := e.SaveSnapshot(&snap); err == nil {
		t.Error("SaveSnapshot accepted in lane mode")
	}
	if err := e.LoadSnapshot(&snap); err == nil {
		t.Error("LoadSnapshot accepted in lane mode")
	}
	if err := e.InjectLanes(pi, 10, lane.Broadcast(logic.V1), 0xFF); err != nil {
		t.Fatalf("InjectLanes: %v", err)
	}
	e.Checkpoint() // must be an inert no-op, not a panic
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	// InjectLanes on a scalar engine must refuse too.
	es, err := NewFromPlan(p, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	if err := es.InjectLanes(pi, 10, lane.Broadcast(logic.V1), 1); err == nil {
		t.Error("InjectLanes accepted on a scalar engine")
	}
}

// TestMergeLaneChanges checks the fold: shared stimulus (the clock) merges
// into full-mask entries, per-lane data diverges into partial masks, and
// the result is globally time-sorted.
func TestMergeLaneChanges(t *testing.T) {
	clk, da := netlist.NetID(0), netlist.NetID(1)
	perLane := [][]Change{
		{{Net: clk, Time: 0, Val: logic.V0}, {Net: da, Time: 5, Val: logic.V1}, {Net: clk, Time: 10, Val: logic.V1}},
		{{Net: clk, Time: 0, Val: logic.V0}, {Net: da, Time: 7, Val: logic.V1}, {Net: clk, Time: 10, Val: logic.V1}},
	}
	merged, err := MergeLaneChanges(perLane)
	if err != nil {
		t.Fatal(err)
	}
	want := []LaneChange{
		{Net: clk, Time: 0, Mask: 0b11, Word: lane.Word(0)},
		{Net: da, Time: 5, Mask: 0b01, Word: lane.Word(0).Set(0, logic.V1)},
		{Net: da, Time: 7, Mask: 0b10, Word: lane.Word(0).Set(1, logic.V1)},
		{Net: clk, Time: 10, Mask: 0b11, Word: lane.Word(0).Set(0, logic.V1).Set(1, logic.V1)},
	}
	if len(merged) != len(want) {
		t.Fatalf("merged %d entries, want %d: %+v", len(merged), len(want), merged)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, merged[i], want[i])
		}
	}
	if _, err := MergeLaneChanges(nil); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := MergeLaneChanges(make([][]Change, lane.MaxLanes+1)); err == nil {
		t.Error("too many lanes accepted")
	}
}

// TestLaneStreamOnEvent checks the lane stream callback: watched events
// arrive in global (time, net) order with masks and merged words matching
// what LaneEvents later extracts.
func TestLaneStreamOnEvent(t *testing.T) {
	d, err := gen.Build(smallSpec(15))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	perLaneG := gen.LaneStimuli(d, gen.StimSpec{Cycles: 10, ActivityFactor: 0.6, Seed: 4, ScanBurst: 4}, 4)
	perLane := make([][]Change, len(perLaneG))
	for l, cs := range perLaneG {
		perLane[l] = make([]Change, len(cs))
		for i, c := range cs {
			perLane[l][i] = Change{Net: c.Net, Time: c.Time, Val: c.Val}
		}
	}
	merged, err := MergeLaneChanges(perLane)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(d.Netlist, testLib, delays, Options{Mode: ModeSerial, Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	type got struct {
		nid  netlist.NetID
		t    int64
		mask uint32
		w    lane.Word
	}
	var seen []got
	err = e.RunLaneStream(merged, LaneStreamConfig{
		Watch: d.Outs,
		OnEvent: func(nid netlist.NetID, tm int64, mask uint32, w lane.Word) {
			seen = append(seen, got{nid, tm, mask, w})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(seen); i++ {
		a, b := seen[i-1], seen[i]
		if b.t < a.t || (b.t == a.t && b.nid < a.nid) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}
	// Cross-check against direct extraction per watched net.
	byNet := make(map[netlist.NetID][]got)
	for _, g := range seen {
		byNet[g.nid] = append(byNet[g.nid], g)
	}
	for _, nid := range d.Outs {
		q := e.Events(nid)
		n := q.Len() - q.Start()
		if int64(len(byNet[nid])) != n {
			t.Fatalf("net %s: OnEvent saw %d events, queue has %d", d.Netlist.Nets[nid].Name, len(byNet[nid]), n)
		}
	}
}

// FuzzLaneKernel builds random comb1-only netlists and random per-lane
// toggle schedules, then checks every lane of one lane-mode run against
// scalar runs of each lane's stimulus alone — the same differential as the
// refsim tests, under fuzzed structure and timing.
func FuzzLaneKernel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 5})
	f.Add([]byte{1, 4, 1, 7, 2, 9, 0, 2, 1, 3, 2, 8, 0, 1, 1, 6})
	f.Add(bytes.Repeat([]byte{3, 5, 0, 7}, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("not enough bytes for a gate")
		}
		nl, err := fuzzCombNetlist(data)
		if err != nil {
			t.Skip(err)
		}
		p, err := plan.Build(nl, testLib, sdf.Uniform(nl, int64(1+data[0]%9)))
		if err != nil {
			t.Skip(err)
		}
		const lanes = 4
		perLane := make([][]Change, lanes)
		for l := 0; l < lanes; l++ {
			for i := 0; i < 3; i++ {
				nid, ok := nl.Net(fmt.Sprintf("i%d", i))
				if !ok {
					t.Fatalf("input i%d missing", i)
				}
				step := int64(200 + 100*int(data[(i+l)%len(data)]%7))
				for c := int64(0); c < 6; c++ {
					perLane[l] = append(perLane[l], Change{
						Net: nid, Time: 500 + int64(i)*130 + int64(l)*37 + c*step, Val: logic.Value(c % 2),
					})
				}
			}
		}
		merged, err := MergeLaneChanges(perLane)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewFromPlan(p, Options{Mode: ModeSerial, Lanes: lanes})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for _, c := range merged {
			if err := e.InjectLanes(c.Net, c.Time, c.Word, c.Mask); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Finish(); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < lanes; l++ {
			gstim := make([]gen.Change, len(perLane[l]))
			for i, c := range perLane[l] {
				gstim[i] = gen.Change{Net: c.Net, Time: c.Time, Val: c.Val}
			}
			want := runCollect(t, p, gstim, Options{Mode: ModeSerial})
			for nid := range nl.Nets {
				got := e.LaneEvents(netlist.NetID(nid), l)
				w := want[netlist.NetID(nid)]
				if len(got) != len(w) {
					t.Fatalf("net %s lane %d: %d events vs scalar %d\nwant %v\ngot  %v",
						nl.Nets[nid].Name, l, len(got), len(w), w, got)
				}
				for i := range w {
					if got[i] != w[i] {
						t.Fatalf("net %s lane %d event %d: got %+v want %+v",
							nl.Nets[nid].Name, l, i, got[i], w[i])
					}
				}
			}
		}
	})
}

// TestLaneEventsEmptyOutsideMask pins extraction on quiet lanes: a lane
// never touched by a net's events yields an empty stream even though the
// shared queue holds other lanes' traffic.
func TestLaneEventsEmptyOutsideMask(t *testing.T) {
	d, err := gen.Build(smallSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(d.Netlist, testLib, gen.Delays(d, 7), Options{Mode: ModeSerial, Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	pi := d.Netlist.PortsIn[0]
	// Only lane 3 toggles.
	w := lane.Word(0).Set(3, logic.V1)
	if err := e.InjectLanes(pi, 100, w, 1<<3); err != nil {
		t.Fatal(err)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if evs := e.LaneEvents(pi, 3); len(evs) != 1 || evs[0] != (event.Event{Time: 100, Val: logic.V1}) {
		t.Fatalf("lane 3 events: %v", evs)
	}
	for _, l := range []int{0, 1, 2, 4, 7} {
		if evs := e.LaneEvents(pi, l); len(evs) != 0 {
			t.Fatalf("quiet lane %d has events: %v", l, evs)
		}
	}
}
