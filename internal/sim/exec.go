package sim

import (
	"sync"
	"sync/atomic"

	"gatesim/internal/netlist"
)

// executor runs batches of independent gates, serially or on a worker pool,
// with one scratch area per worker. Gates within a batch never share output
// nets or write-visible state, so the only cross-worker traffic is the
// atomic work index and the idempotent dirty flags.
type executor struct {
	e         *Engine
	threads   int
	scratches []*scratch

	work     []netlist.CellID
	idx      atomic.Int64
	progress atomic.Bool
}

// serialBatchThreshold is the batch size below which forking workers costs
// more than it saves.
const serialBatchThreshold = 192

// workChunk is the number of gates a worker claims per atomic increment.
const workChunk = 64

func newExecutor(e *Engine) *executor {
	threads := 1
	if e.mode == ModeParallel || e.mode == ModeManycore {
		threads = e.opts.Threads
	}
	x := &executor{e: e, threads: threads}
	x.scratches = make([]*scratch, threads)
	for i := range x.scratches {
		x.scratches[i] = newScratch(e)
	}
	return x
}

// runBatch visits every gate in ids and reports whether any made progress.
func (x *executor) runBatch(ids []netlist.CellID) bool {
	if len(ids) == 0 {
		return false
	}
	if x.threads == 1 || len(ids) < serialBatchThreshold {
		sc := x.scratches[0]
		progress := false
		for _, id := range ids {
			if x.e.visit(id, sc) {
				progress = true
			}
		}
		x.mergeStats()
		return progress
	}
	x.work = ids
	x.idx.Store(0)
	x.progress.Store(false)
	var wg sync.WaitGroup
	for w := 1; w < x.threads; w++ {
		wg.Add(1)
		go func(sc *scratch) {
			defer wg.Done()
			x.drain(sc)
		}(x.scratches[w])
	}
	x.drain(x.scratches[0])
	wg.Wait()
	x.mergeStats()
	return x.progress.Load()
}

func (x *executor) drain(sc *scratch) {
	progress := false
	for {
		lo := x.idx.Add(workChunk) - workChunk
		if lo >= int64(len(x.work)) {
			break
		}
		hi := lo + workChunk
		if hi > int64(len(x.work)) {
			hi = int64(len(x.work))
		}
		for _, id := range x.work[lo:hi] {
			if x.e.visit(id, sc) {
				progress = true
			}
		}
	}
	if progress {
		x.progress.Store(true)
	}
}

// runCheckpoint folds bases for all gates in parallel.
func (x *executor) runCheckpoint() {
	n := len(x.e.gate)
	if x.threads == 1 || n < serialBatchThreshold {
		for i := 0; i < n; i++ {
			x.e.checkpoint(netlist.CellID(i), x.scratches[0])
		}
		return
	}
	x.idx.Store(0)
	drain := func(sc *scratch) {
		for {
			lo := x.idx.Add(workChunk) - workChunk
			if lo >= int64(n) {
				return
			}
			hi := lo + workChunk
			if hi > int64(n) {
				hi = int64(n)
			}
			for id := lo; id < hi; id++ {
				x.e.checkpoint(netlist.CellID(id), sc)
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < x.threads; w++ {
		wg.Add(1)
		go func(sc *scratch) {
			defer wg.Done()
			drain(sc)
		}(x.scratches[w])
	}
	drain(x.scratches[0])
	wg.Wait()
}

// mergeStats folds the per-worker counters into the engine totals. Called
// from the coordinating goroutine only.
func (x *executor) mergeStats() {
	for _, sc := range x.scratches {
		x.e.stats.Visits += sc.visits
		x.e.stats.Queries += sc.queries
		x.e.stats.EventsCommitted += sc.events
		sc.visits, sc.queries, sc.events = 0, 0, 0
	}
}
