package sim

import (
	"runtime"
	"sync/atomic"

	"gatesim/internal/netlist"
	"gatesim/internal/workpool"
)

// executor runs the per-sweep level segments, serially or on a persistent
// spin-then-park worker pool (internal/workpool). One whole sweep — the
// sequential phase plus every combinational level — is dispatched as a
// single pool round whose workers claim chunks off per-segment atomic
// indices; consecutive segments are separated by a completion barrier
// (segDone[s-1] must reach the segment length before anyone claims in s),
// so level ordering is preserved while the pool is woken once per sweep
// instead of once per level. The dirty-set filter runs inside the round,
// after the barrier, which keeps the in-sweep cascade: a gate dirtied by
// level L is picked up by level L+1's scan in the same sweep.
//
// Gates within a segment never share output nets or write-visible state, so
// cross-worker traffic is the claim indices, the idempotent dirty flags,
// and the release/acquire-published event queues.
type executor struct {
	e         *Engine
	threads   int
	threshold int
	scratches []*scratch
	pool      *workpool.Pool
	roundFn   func(int) // persistent closure handed to the pool each round

	segs     [][]netlist.CellID
	segIdx   []int64 // atomic: next unclaimed offset within segs[s]
	segDone  []int64 // atomic: processed item count within segs[s]
	kind     roundKind
	claimed  atomic.Int64 // dirty gates claimed this round
	progress atomic.Bool

	allGates []netlist.CellID // identity work list for checkpoint rounds
}

// roundKind selects what a sweep round does with each gate it scans.
type roundKind int

const (
	// roundDirty visits only gates whose dirty flag it wins via CAS.
	roundDirty roundKind = iota
	// roundOblivious visits every gate (the manycore full-level scan).
	roundOblivious
	// roundCheckpoint folds every gate's base state (no visits).
	roundCheckpoint
)

// defaultSerialBatchThreshold is the expected work size below which waking
// the pool costs more than it saves.
const defaultSerialBatchThreshold = 192

// workChunk is the number of gates a worker claims per atomic increment.
const workChunk = 64

func newExecutor(e *Engine) *executor {
	threads := 1
	if e.mode == ModeParallel || e.mode == ModeManycore {
		threads = e.opts.Threads
	}
	x := &executor{e: e, threads: threads, threshold: e.opts.SerialBatchThreshold}
	x.scratches = make([]*scratch, threads)
	for i := range x.scratches {
		x.scratches[i] = newScratch(e)
	}
	x.pool = workpool.New(threads)
	x.roundFn = x.drainRound
	x.allGates = make([]netlist.CellID, e.p.NumGates())
	for i := range x.allGates {
		x.allGates[i] = netlist.CellID(i)
	}
	return x
}

// runSweep executes the segments in order with a barrier between
// consecutive ones. expected is the caller's estimate of the work (dirty
// gates for roundDirty, total gates otherwise); sweeps expected to be small
// run on the calling goroutine. Returns the number of dirty gates claimed
// and whether any visit made progress.
func (x *executor) runSweep(segs [][]netlist.CellID, kind roundKind, expected int) (int64, bool) {
	if x.threads == 1 || expected < x.threshold {
		sc := x.scratches[0]
		var claimed int64
		progress := false
		for _, seg := range segs {
			for _, id := range seg {
				switch kind {
				case roundDirty:
					if !x.e.gate[id].dirty.CompareAndSwap(true, false) {
						continue
					}
					claimed++
					if x.e.visit(id, sc) {
						progress = true
					}
				case roundOblivious:
					if x.e.visit(id, sc) {
						progress = true
					}
				case roundCheckpoint:
					x.e.checkpoint(id, sc)
				}
			}
		}
		x.mergeStats()
		return claimed, progress
	}

	x.segs = segs
	if cap(x.segIdx) < len(segs) {
		x.segIdx = make([]int64, len(segs))
		x.segDone = make([]int64, len(segs))
	}
	x.segIdx = x.segIdx[:len(segs)]
	x.segDone = x.segDone[:len(segs)]
	for i := range x.segIdx {
		x.segIdx[i] = 0
		x.segDone[i] = 0
	}
	x.kind = kind
	x.claimed.Store(0)
	x.progress.Store(false)
	x.pool.Run(x.threads, x.roundFn)
	x.segs = nil
	if len(segs) > 1 {
		x.e.stats.LevelsFused += int64(len(segs) - 1)
	}
	x.mergeStats()
	return x.claimed.Load(), x.progress.Load()
}

// drainRound is one worker's share of a pool round: for each segment, wait
// for the previous segment to complete, then claim and process chunks. The
// barrier waits on completed work, not on worker arrival, so a worker that
// serves several round slots back-to-back (the pool hands slots out
// greedily) can always make progress by finishing the pending chunks
// itself.
func (x *executor) drainRound(w int) {
	sc := x.scratches[w]
	var claimed int64
	progress := false
	for s := range x.segs {
		if s > 0 {
			for atomic.LoadInt64(&x.segDone[s-1]) < int64(len(x.segs[s-1])) {
				runtime.Gosched()
			}
		}
		seg := x.segs[s]
		n := int64(len(seg))
		for {
			lo := atomic.AddInt64(&x.segIdx[s], workChunk) - workChunk
			if lo >= n {
				break
			}
			hi := lo + workChunk
			if hi > n {
				hi = n
			}
			for _, id := range seg[lo:hi] {
				switch x.kind {
				case roundDirty:
					if !x.e.gate[id].dirty.CompareAndSwap(true, false) {
						continue
					}
					claimed++
					if x.e.visit(id, sc) {
						progress = true
					}
				case roundOblivious:
					if x.e.visit(id, sc) {
						progress = true
					}
				case roundCheckpoint:
					x.e.checkpoint(id, sc)
				}
			}
			atomic.AddInt64(&x.segDone[s], hi-lo)
		}
	}
	if claimed != 0 {
		x.claimed.Add(claimed)
	}
	if progress {
		x.progress.Store(true)
	}
}

// runCheckpoint folds bases for all gates, reusing the sweep machinery with
// a single all-gates segment.
func (x *executor) runCheckpoint() {
	x.runSweep([][]netlist.CellID{x.allGates}, roundCheckpoint, len(x.allGates))
}

// mergeStats folds the per-worker counters into the engine totals. Called
// from the coordinating goroutine only.
func (x *executor) mergeStats() {
	for _, sc := range x.scratches {
		x.e.stats.Visits += sc.visits
		x.e.stats.Queries += sc.queries
		x.e.stats.EventsCommitted += sc.events
		sc.visits, sc.queries, sc.events = 0, 0, 0
	}
}
