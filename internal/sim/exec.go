package sim

import (
	mathbits "math/bits"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/truthtab"
	"gatesim/internal/workpool"
)

// executor runs the per-sweep level segments, serially or on a persistent
// spin-then-park worker pool (internal/workpool). One whole sweep — the
// sequential phase plus every combinational level — is dispatched as a
// single pool round whose workers claim chunks off per-segment atomic
// indices; consecutive barrier groups are separated by a completion barrier
// (segDone of every segment in the previous group must reach its item count
// before anyone claims in the new group), so level ordering is preserved
// while the pool is woken once per sweep instead of once per level. The
// dirty-set filter runs inside the round, after the barrier, which keeps
// the in-sweep cascade: a gate dirtied by level L is picked up by level
// L+1's scan in the same sweep.
//
// Segments come in two shapes (execSeg): interpreted segments claim gate
// chunks and filter on per-gate dirty flags; compiled segments claim dirty
// bitset words and replay the plan's flat script for each set bit — one
// atomic swap test-and-clears 64 gates, and a segment whose dirty
// population reads zero is skipped without touching its words at all.
//
// Gates within a segment never share output nets or write-visible state, so
// cross-worker traffic is the claim indices, the idempotent dirty marks,
// and the release/acquire-published event queues.
//
// Fault tolerance: every chunk executes under recover, and the deferred
// completion accounting runs whether or not the chunk panicked, so the
// inter-segment barrier can never deadlock on a dying worker. A panic
// inside gate code is recorded (with gate and level coordinates) in
// `failed` — the engine poisons itself on it. A panic outside gate code
// (pool machinery, chaos FaultHook) surfaces as a workpool.PanicError with
// Started=false; since no gate work was lost, the executor downgrades to
// serial execution for the remainder of the run and re-runs the sweep.
type executor struct {
	e         *Engine
	threads   int
	threshold int
	scratches []*scratch
	pool      *workpool.Pool
	roundFn   func(int) // persistent closure handed to the pool each round

	segs     []execSeg
	segIdx   []int64 // atomic: next unclaimed item offset within segs[s]
	segDone  []int64 // atomic: completed item count within segs[s]
	waitFrom []int   // coordinator-written: first segment of the barrier's wait range, -1 = no wait
	kind     roundKind
	claimed  atomic.Int64 // dirty gates claimed this round
	progress atomic.Bool

	// failed holds the first contained gate-code panic; once set, workers
	// stop executing gates (they only drain claim counters) and the engine
	// poisons itself when the sweep returns.
	failed atomic.Pointer[panicRecord]
	// degraded is set after a pool infrastructure failure: the executor
	// abandons the pool and runs every remaining sweep on the calling
	// goroutine. Read/written by the coordinator only.
	degraded bool

	allGates []netlist.CellID // identity work list for checkpoint rounds
	ckptSegs []execSeg        // single-segment schedule over allGates
}

// execSeg is one schedulable segment of a sweep. Exactly one of gates and
// script is set: gate-list segments are claimed in gate chunks and filtered
// by per-gate dirty flags; script segments are claimed in dirty-bitset
// words and replayed from the compiled instruction array. items is the
// claim-unit count — gates or words — that segIdx/segDone run over.
type execSeg struct {
	gates   []netlist.CellID
	script  *plan.Script
	dirty   *int64 // the segment's dirty population (script path)
	kernel  truthtab.Class
	level   int // -1 for the sequential phase
	barrier bool
	items   int64
}

// panicRecord is the containment record for a panic inside per-gate
// simulation code, with the coordinates the recovery point knew. seg keeps
// PanicInfo.Level's convention — 0 = sequential phase, k>0 = combinational
// level k-1 — independent of how many kernel buckets a level was split into.
type panicRecord struct {
	value any
	stack []byte
	gate  netlist.CellID // gate being visited, -1 when outside gate code
	seg   int            // segment level coordinate (0 = sequential phase), -1 unknown
}

// roundKind selects what a sweep round does with each gate it scans.
type roundKind int

const (
	// roundDirty visits only gates whose dirty mark it wins (flag CAS or
	// bitset word swap).
	roundDirty roundKind = iota
	// roundOblivious visits every gate (the manycore full-level scan).
	roundOblivious
	// roundCheckpoint folds every gate's base state (no visits).
	roundCheckpoint
)

// defaultSerialBatchThreshold is the expected work size below which waking
// the pool costs more than it saves.
const defaultSerialBatchThreshold = 192

// workChunk is the number of gates a worker claims per atomic increment on
// a gate-list segment.
const workChunk = 64

// scriptWordChunk is the number of dirty-bitset words a worker claims per
// atomic increment on a script segment. Each word covers 64 gates, so the
// claim granularity is coarser than workChunk while sparse words cost only
// a swap apiece.
const scriptWordChunk = 4

// Barrier wait tuning: a worker blocked on a predecessor segment yields the
// processor for a bounded number of iterations (the common case — the
// barrier closes within a few scheduling quanta), then falls back to
// sleeping with exponential backoff so a long wait burns no CPU.
const (
	barrierSpinIters  = 128
	barrierBackoffMin = time.Microsecond
	barrierBackoffMax = 128 * time.Microsecond
)

func newExecutor(e *Engine) *executor {
	threads := 1
	if e.mode == ModeParallel || e.mode == ModeManycore {
		threads = e.opts.Threads
	}
	x := &executor{e: e, threads: threads, threshold: e.opts.SerialBatchThreshold}
	x.scratches = make([]*scratch, threads)
	for i := range x.scratches {
		x.scratches[i] = newScratch(e)
	}
	x.pool = workpool.New(threads)
	x.pool.FaultHook = e.opts.FaultHook
	m := e.opts.Metrics
	x.pool.Observe(m.Counter("pool.spawned"), m.Counter("pool.rounds"),
		m.Counter("pool.wakes"), m.Counter("pool.parks"))
	x.roundFn = x.drainRound
	x.allGates = make([]netlist.CellID, e.p.NumGates())
	for i := range x.allGates {
		x.allGates[i] = netlist.CellID(i)
	}
	x.ckptSegs = []execSeg{{gates: x.allGates, level: -1, barrier: true, items: int64(len(x.allGates))}}
	return x
}

// runSweep executes the segments in order with a barrier between
// consecutive barrier groups. expected is the caller's estimate of the work
// (dirty gates for roundDirty, total gates otherwise); sweeps expected to
// be small run on the calling goroutine. Returns the number of dirty gates
// claimed and whether any visit made progress; a contained gate panic is
// left in x.failed for the engine to collect.
func (x *executor) runSweep(segs []execSeg, kind roundKind, expected int) (int64, bool) {
	if x.threads == 1 || x.degraded || expected < x.threshold {
		return x.runSweepSerial(segs, kind)
	}

	x.segs = segs
	if cap(x.segIdx) < len(segs) {
		x.segIdx = make([]int64, len(segs))
		x.segDone = make([]int64, len(segs))
		x.waitFrom = make([]int, len(segs))
	}
	x.segIdx = x.segIdx[:len(segs)]
	x.segDone = x.segDone[:len(segs)]
	x.waitFrom = x.waitFrom[:len(segs)]
	groupStart := 0
	for i := range x.segIdx {
		x.segIdx[i] = 0
		x.segDone[i] = 0
		// A barrier segment opens a new group and waits for the whole
		// previous group [groupStart, i); same-group successors (a level's
		// later kernel buckets, or a whole level fused at plan time) are
		// independent of it and don't wait. The wait range never needs to
		// reach further back: work in the previous group only started after
		// its own barrier saw everything before groupStart complete.
		x.waitFrom[i] = -1
		if i > 0 && segs[i].barrier {
			x.waitFrom[i] = groupStart
		}
		if segs[i].barrier {
			groupStart = i
		}
	}
	x.kind = kind
	x.claimed.Store(0)
	x.progress.Store(false)
	x.e.obs.trace.Begin(x.e.obs.tid, "pool-round")
	err := x.pool.Run(x.threads, x.roundFn)
	x.e.obs.trace.End(x.e.obs.tid)
	x.segs = nil
	x.mergeStats()
	if err != nil && x.failed.Load() == nil {
		pe := err.(*workpool.PanicError)
		if pe.Started {
			// The panic unwound drainRound outside the per-chunk recover —
			// not per-gate code, but the round's completion accounting may
			// be suspect. Treat it like a gate panic: poison.
			x.failed.CompareAndSwap(nil, &panicRecord{value: pe.Value, stack: pe.Stack, gate: -1, seg: -1})
		} else {
			// The worker died before its round slot ran any gate code (chaos
			// hook or spawn-path failure). No gate work is lost — surviving
			// slots claim every chunk — but the pool is no longer trusted:
			// downgrade to serial for the rest of this engine's life and
			// redo the sweep on the calling goroutine. Visits are idempotent
			// and the dirty marks still flag exactly the unprocessed gates,
			// so the serial pass completes whatever the round left behind.
			x.degraded = true
			x.e.stats.downgrades.Add(1)
			x.e.obs.downgrades.Inc()
			x.pool.Close()
			sc, sp := x.runSweepSerial(segs, kind)
			return x.claimed.Load() + sc, x.progress.Load() || sp
		}
	}
	return x.claimed.Load(), x.progress.Load()
}

// runSweepSerial is the single-goroutine sweep path, also used as the
// degradation target after a pool failure. Each segment runs under the same
// panic containment as the pooled chunks; on a contained panic the rest of
// the sweep is abandoned (the engine poisons itself anyway). Script
// segments whose dirty population is zero are skipped on that single load.
func (x *executor) runSweepSerial(segs []execSeg, kind roundKind) (int64, bool) {
	sc := x.scratches[0]
	var claimed int64
	progress := false
	for si := range segs {
		seg := &segs[si]
		// Boundary frontier drain: before scanning a segment, settle every
		// staged watermark move at the net levels its gates can read
		// (NetLevel <= gate level), so the sweep's in-level cascade works
		// through walks exactly as it did through visits; deeper stagings
		// stay bucketed, batching later moves into one walk per gate per
		// sweep. The sequential segment (level -1) drains with bound 0:
		// primary-input moves staged by AdvanceCtx and flop-output moves
		// from the previous sweep live in net bucket 0, and their seq
		// readers must be dirty before the seq scan, not a sweep later.
		// Single-goroutine rounds only — this is the coordinator.
		if f := &x.e.front; f.on && kind == roundDirty && f.staged > 0 {
			bound := seg.level
			if bound < 0 {
				bound = 0
			}
			if _, rec := x.e.frontierPass(bound); rec != nil {
				x.failed.CompareAndSwap(nil, rec)
				break
			}
		}
		if seg.script != nil && kind == roundDirty && atomic.LoadInt64(seg.dirty) == 0 {
			x.e.stats.segsSkipped.Add(1)
			x.e.obs.segsSkipped.Inc()
			continue
		}
		// Per-segment spans exist only on this path; the pooled path fuses
		// all levels into one round (see drainRound) and gets a pool-round
		// span. Names are constant strings — the disabled-obs zero-alloc
		// guard covers this loop.
		name := "level"
		if seg.level < 0 && kind != roundCheckpoint {
			name = "seq-phase"
		} else if seg.kernel == truthtab.ClassComb1 {
			name = "level.comb1"
		}
		x.e.obs.trace.Begin(x.e.obs.tid, name)
		var ok bool
		if seg.script != nil {
			ok = x.runScriptChunk(kind, seg.level+1, seg, 0, seg.items, sc, &claimed, &progress)
		} else {
			ok = x.runChunk(kind, seg.level+1, seg.gates, sc, &claimed, &progress)
		}
		x.e.obs.trace.End(x.e.obs.tid)
		if !ok {
			break
		}
	}
	x.mergeStats()
	return claimed, progress
}

// drainRound is one worker's share of a pool round: for each segment, wait
// for the previous barrier group to complete, then claim and process
// chunks. The barrier waits on completed work, not on worker arrival, so a
// worker that serves several round slots back-to-back (the pool hands slots
// out greedily) can always make progress by finishing the pending chunks
// itself. Chunk completion accounting is deferred inside
// runSegChunkCounted, so even a panicking chunk advances segDone and the
// barrier never deadlocks.
//
// A clean script segment (dirty population zero) is retired by claiming all
// of its remaining words in one grab and crediting them unprocessed. The
// credit is sound — "no more work will happen here this round" — and a
// concurrent mark that slips past the zero check keeps its bit (word swaps
// only happen on the processing path), so the segment scans next sweep.
func (x *executor) drainRound(w int) {
	sc := x.scratches[w]
	var claimed int64
	progress := false
	for s := range x.segs {
		if from := x.waitFrom[s]; from >= 0 {
			x.waitSegs(from, s)
		}
		seg := &x.segs[s]
		n := seg.items
		chunk := int64(workChunk)
		if seg.script != nil {
			chunk = scriptWordChunk
			if x.kind == roundDirty && atomic.LoadInt64(seg.dirty) == 0 {
				lo := atomic.AddInt64(&x.segIdx[s], n) - n
				if lo < n {
					atomic.AddInt64(&x.segDone[s], n-lo)
					if lo == 0 {
						// Sole claimer: count the skip once per segment.
						x.e.stats.segsSkipped.Add(1)
						x.e.obs.segsSkipped.Inc()
					}
				}
				continue
			}
		}
		for {
			lo := atomic.AddInt64(&x.segIdx[s], chunk) - chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			x.runSegChunkCounted(s, seg, lo, hi, sc, &claimed, &progress)
		}
	}
	if claimed != 0 {
		x.claimed.Add(claimed)
	}
	if progress {
		x.progress.Store(true)
	}
}

// waitSegs blocks until every segment in [from, s) has completed all its
// items. The spin is bounded: after barrierSpinIters yields the worker
// sleeps with exponential backoff, so a barrier held open for long (one
// huge predecessor chunk, an oversubscribed machine) costs no CPU instead
// of an unbounded Gosched loop.
func (x *executor) waitSegs(from, s int) {
	spins := 0
	backoff := barrierBackoffMin
	for i := from; i < s; {
		if atomic.LoadInt64(&x.segDone[i]) >= x.segs[i].items {
			i++
			continue
		}
		if spins < barrierSpinIters {
			spins++
			runtime.Gosched()
			continue
		}
		time.Sleep(backoff)
		if backoff < barrierBackoffMax {
			backoff *= 2
		}
	}
}

// runSegChunkCounted runs one claimed chunk (gates or bitset words) and —
// panicking or not — credits its full item count to the segment's
// completion counter so the inter-segment barrier always closes.
func (x *executor) runSegChunkCounted(s int, seg *execSeg, lo, hi int64, sc *scratch, claimed *int64, progress *bool) {
	defer atomic.AddInt64(&x.segDone[s], hi-lo)
	// Once a panic is recorded the sweep is doomed; surviving workers stop
	// executing gate code and only drain the claim counters so the round
	// finishes quickly.
	if x.failed.Load() != nil {
		return
	}
	if seg.script != nil {
		x.runScriptChunk(x.kind, seg.level+1, seg, lo, hi, sc, claimed, progress)
	} else {
		x.runChunk(x.kind, seg.level+1, seg.gates[lo:hi], sc, claimed, progress)
	}
}

// runChunk processes one slice of a gate-list segment under panic
// containment. lvl is the PanicInfo.Level coordinate of the segment
// (segment level + 1, so 0 is the sequential phase). It returns false when
// a panic was contained (recorded in x.failed with the panicking gate's
// coordinates); the remainder of the chunk is skipped.
func (x *executor) runChunk(kind roundKind, lvl int, chunk []netlist.CellID, sc *scratch, claimed *int64, progress *bool) (ok bool) {
	cur := netlist.CellID(-1)
	defer func() {
		if v := recover(); v != nil {
			x.failed.CompareAndSwap(nil, &panicRecord{
				value: v, stack: debug.Stack(), gate: cur, seg: lvl,
			})
			ok = false
		}
	}()
	hook := x.e.opts.GateHook
	for _, id := range chunk {
		cur = id
		switch kind {
		case roundDirty:
			if !x.e.gate[id].dirty.CompareAndSwap(true, false) {
				continue
			}
			*claimed++
			if hook != nil {
				hook(id)
			}
			if x.e.visitGate(id, sc) {
				*progress = true
			}
		case roundOblivious:
			if hook != nil {
				hook(id)
			}
			if x.e.visitGate(id, sc) {
				*progress = true
			}
		case roundCheckpoint:
			x.e.checkpoint(id, sc)
		}
	}
	return true
}

// runScriptChunk replays words [lo, hi) of a script segment under the same
// panic containment as runChunk. Each word is swapped out of the dirty
// bitset (crediting its popcount back to the segment's population) and the
// surviving bits index straight into the flat instruction array; comb1
// segments run the compiled kernel, anything else dispatches the gate to
// its interpreted kernel. Oblivious rounds visit every instruction in the
// word range and use the swap only to drain stale marks.
func (x *executor) runScriptChunk(kind roundKind, lvl int, seg *execSeg, lo, hi int64, sc *scratch, claimed *int64, progress *bool) (ok bool) {
	cur := netlist.CellID(-1)
	defer func() {
		if v := recover(); v != nil {
			x.failed.CompareAndSwap(nil, &panicRecord{
				value: v, stack: debug.Stack(), gate: cur, seg: lvl,
			})
			ok = false
		}
	}()
	e := x.e
	sp := seg.script
	base := int(sp.BitOff) >> 6
	comb1 := sp.Kernel == truthtab.ClassComb1
	hook := e.opts.GateHook
	nOps := int64(len(sp.Ops))
	for w := lo; w < hi; w++ {
		// Clean words cost one load: the swap (an atomic RMW) only runs
		// when bits are set. A mark racing past the zero load keeps its
		// bit and its segDirty credit, so the word scans next sweep.
		bits := atomic.LoadUint64(&e.dirtyBits[base+int(w)])
		if bits != 0 {
			bits = atomic.SwapUint64(&e.dirtyBits[base+int(w)], 0)
			atomic.AddInt64(seg.dirty, -int64(mathbits.OnesCount64(bits)))
		}
		if kind == roundOblivious {
			first := w * 64
			last := first + 64
			if last > nOps {
				last = nOps
			}
			for i := first; i < last; i++ {
				op := &sp.Ops[i]
				cur = op.Gate
				if hook != nil {
					hook(op.Gate)
				}
				var prog bool
				if comb1 {
					ev0 := sc.events
					if e.lanes > 1 {
						prog = e.visitLaneScriptComb1(op, sc)
					} else {
						prog = e.visitScriptComb1(op, sc)
					}
					if sc.events == ev0 {
						sc.visitsWMOnly++
					}
				} else {
					prog = e.visitGate(op.Gate, sc)
				}
				if prog {
					*progress = true
				}
			}
			continue
		}
		for bits != 0 {
			tz := mathbits.TrailingZeros64(bits)
			bits &= bits - 1
			op := &sp.Ops[w*64+int64(tz)]
			cur = op.Gate
			*claimed++
			if hook != nil {
				hook(op.Gate)
			}
			var prog bool
			if comb1 {
				ev0 := sc.events
				if e.lanes > 1 {
					prog = e.visitLaneScriptComb1(op, sc)
				} else {
					prog = e.visitScriptComb1(op, sc)
				}
				if sc.events == ev0 {
					sc.visitsWMOnly++
				}
			} else {
				prog = e.visitGate(op.Gate, sc)
			}
			if prog {
				*progress = true
			}
		}
	}
	return true
}

// takeFailure returns and clears the contained-panic record of the last
// sweep, if any. Coordinator-only.
func (x *executor) takeFailure() *panicRecord {
	rec := x.failed.Load()
	if rec != nil {
		x.failed.Store(nil)
	}
	return rec
}

// runCheckpoint folds bases for all gates, reusing the sweep machinery with
// a single all-gates segment.
func (x *executor) runCheckpoint() {
	x.runSweep(x.ckptSegs, roundCheckpoint, len(x.allGates))
}

// mergeStats folds the per-worker counters into the engine totals. Called
// from the coordinating goroutine only.
func (x *executor) mergeStats() {
	var visits, queries [truthtab.NumClasses]int64
	var events, wmOnly, laneVisits, qSaved int64
	for _, sc := range x.scratches {
		for c := range sc.visits {
			visits[c] += sc.visits[c]
			queries[c] += sc.queries[c]
			sc.visits[c], sc.queries[c] = 0, 0
		}
		events += sc.events
		sc.events = 0
		wmOnly += sc.visitsWMOnly
		sc.visitsWMOnly = 0
		laneVisits += sc.visitsLane
		sc.visitsLane = 0
		qSaved += sc.queriesSaved
		sc.queriesSaved = 0
	}
	if qSaved != 0 {
		x.e.stats.queriesSaved.Add(qSaved)
		x.e.obs.queriesSaved.Add(qSaved)
	}
	if laneVisits != 0 {
		x.e.stats.visitsLane.Add(laneVisits)
		x.e.obs.visitsLane.Add(laneVisits)
	}
	if wmOnly != 0 {
		x.e.stats.visitsWMOnly.Add(wmOnly)
		x.e.obs.visitsWMOnly.Add(wmOnly)
	}
	var vTotal, qTotal int64
	for c := range visits {
		if visits[c] != 0 {
			x.e.stats.visitsBy[c].Add(visits[c])
			x.e.obs.visitsBy[c].Add(visits[c])
			vTotal += visits[c]
		}
		if queries[c] != 0 {
			x.e.stats.queriesBy[c].Add(queries[c])
			x.e.obs.queriesBy[c].Add(queries[c])
			qTotal += queries[c]
		}
	}
	x.e.stats.visits.Add(vTotal)
	x.e.stats.queries.Add(qTotal)
	x.e.stats.events.Add(events)
	x.e.obs.events.Add(events)
}
