package sim

import (
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"gatesim/internal/netlist"
	"gatesim/internal/workpool"
)

// executor runs the per-sweep level segments, serially or on a persistent
// spin-then-park worker pool (internal/workpool). One whole sweep — the
// sequential phase plus every combinational level — is dispatched as a
// single pool round whose workers claim chunks off per-segment atomic
// indices; consecutive segments are separated by a completion barrier
// (segDone[s-1] must reach the segment length before anyone claims in s),
// so level ordering is preserved while the pool is woken once per sweep
// instead of once per level. The dirty-set filter runs inside the round,
// after the barrier, which keeps the in-sweep cascade: a gate dirtied by
// level L is picked up by level L+1's scan in the same sweep.
//
// Gates within a segment never share output nets or write-visible state, so
// cross-worker traffic is the claim indices, the idempotent dirty flags,
// and the release/acquire-published event queues.
//
// Fault tolerance: every chunk executes under recover, and the deferred
// completion accounting runs whether or not the chunk panicked, so the
// inter-segment barrier can never deadlock on a dying worker. A panic
// inside gate code is recorded (with gate and level coordinates) in
// `failed` — the engine poisons itself on it. A panic outside gate code
// (pool machinery, chaos FaultHook) surfaces as a workpool.PanicError with
// Started=false; since no gate work was lost, the executor downgrades to
// serial execution for the remainder of the run and re-runs the sweep.
type executor struct {
	e         *Engine
	threads   int
	threshold int
	scratches []*scratch
	pool      *workpool.Pool
	roundFn   func(int) // persistent closure handed to the pool each round

	segs     [][]netlist.CellID
	segIdx   []int64 // atomic: next unclaimed offset within segs[s]
	segDone  []int64 // atomic: processed item count within segs[s]
	kind     roundKind
	claimed  atomic.Int64 // dirty gates claimed this round
	progress atomic.Bool

	// failed holds the first contained gate-code panic; once set, workers
	// stop executing gates (they only drain claim counters) and the engine
	// poisons itself when the sweep returns.
	failed atomic.Pointer[panicRecord]
	// degraded is set after a pool infrastructure failure: the executor
	// abandons the pool and runs every remaining sweep on the calling
	// goroutine. Read/written by the coordinator only.
	degraded bool

	allGates []netlist.CellID // identity work list for checkpoint rounds
}

// panicRecord is the containment record for a panic inside per-gate
// simulation code, with the coordinates the recovery point knew.
type panicRecord struct {
	value any
	stack []byte
	gate  netlist.CellID // gate being visited, -1 when outside gate code
	seg   int            // sweep segment (0 = sequential phase), -1 unknown
}

// roundKind selects what a sweep round does with each gate it scans.
type roundKind int

const (
	// roundDirty visits only gates whose dirty flag it wins via CAS.
	roundDirty roundKind = iota
	// roundOblivious visits every gate (the manycore full-level scan).
	roundOblivious
	// roundCheckpoint folds every gate's base state (no visits).
	roundCheckpoint
)

// defaultSerialBatchThreshold is the expected work size below which waking
// the pool costs more than it saves.
const defaultSerialBatchThreshold = 192

// workChunk is the number of gates a worker claims per atomic increment.
const workChunk = 64

func newExecutor(e *Engine) *executor {
	threads := 1
	if e.mode == ModeParallel || e.mode == ModeManycore {
		threads = e.opts.Threads
	}
	x := &executor{e: e, threads: threads, threshold: e.opts.SerialBatchThreshold}
	x.scratches = make([]*scratch, threads)
	for i := range x.scratches {
		x.scratches[i] = newScratch(e)
	}
	x.pool = workpool.New(threads)
	x.pool.FaultHook = e.opts.FaultHook
	m := e.opts.Metrics
	x.pool.Observe(m.Counter("pool.spawned"), m.Counter("pool.rounds"),
		m.Counter("pool.wakes"), m.Counter("pool.parks"))
	x.roundFn = x.drainRound
	x.allGates = make([]netlist.CellID, e.p.NumGates())
	for i := range x.allGates {
		x.allGates[i] = netlist.CellID(i)
	}
	return x
}

// runSweep executes the segments in order with a barrier between
// consecutive ones. expected is the caller's estimate of the work (dirty
// gates for roundDirty, total gates otherwise); sweeps expected to be small
// run on the calling goroutine. Returns the number of dirty gates claimed
// and whether any visit made progress; a contained gate panic is left in
// x.failed for the engine to collect.
func (x *executor) runSweep(segs [][]netlist.CellID, kind roundKind, expected int) (int64, bool) {
	if x.threads == 1 || x.degraded || expected < x.threshold {
		return x.runSweepSerial(segs, kind)
	}

	x.segs = segs
	if cap(x.segIdx) < len(segs) {
		x.segIdx = make([]int64, len(segs))
		x.segDone = make([]int64, len(segs))
	}
	x.segIdx = x.segIdx[:len(segs)]
	x.segDone = x.segDone[:len(segs)]
	for i := range x.segIdx {
		x.segIdx[i] = 0
		x.segDone[i] = 0
	}
	x.kind = kind
	x.claimed.Store(0)
	x.progress.Store(false)
	x.e.obs.trace.Begin(x.e.obs.tid, "pool-round")
	err := x.pool.Run(x.threads, x.roundFn)
	x.e.obs.trace.End(x.e.obs.tid)
	x.segs = nil
	if len(segs) > 1 {
		x.e.stats.levelsFused.Add(int64(len(segs) - 1))
	}
	x.mergeStats()
	if err != nil && x.failed.Load() == nil {
		pe := err.(*workpool.PanicError)
		if pe.Started {
			// The panic unwound drainRound outside the per-chunk recover —
			// not per-gate code, but the round's completion accounting may
			// be suspect. Treat it like a gate panic: poison.
			x.failed.CompareAndSwap(nil, &panicRecord{value: pe.Value, stack: pe.Stack, gate: -1, seg: -1})
		} else {
			// The worker died before its round slot ran any gate code (chaos
			// hook or spawn-path failure). No gate work is lost — surviving
			// slots claim every chunk — but the pool is no longer trusted:
			// downgrade to serial for the rest of this engine's life and
			// redo the sweep on the calling goroutine. Visits are idempotent
			// and the dirty flags still mark exactly the unprocessed gates,
			// so the serial pass completes whatever the round left behind.
			x.degraded = true
			x.e.stats.downgrades.Add(1)
			x.e.obs.downgrades.Inc()
			x.pool.Close()
			sc, sp := x.runSweepSerial(segs, kind)
			return x.claimed.Load() + sc, x.progress.Load() || sp
		}
	}
	return x.claimed.Load(), x.progress.Load()
}

// runSweepSerial is the single-goroutine sweep path, also used as the
// degradation target after a pool failure. Each segment runs under the same
// panic containment as the pooled chunks; on a contained panic the rest of
// the sweep is abandoned (the engine poisons itself anyway).
func (x *executor) runSweepSerial(segs [][]netlist.CellID, kind roundKind) (int64, bool) {
	sc := x.scratches[0]
	var claimed int64
	progress := false
	for s, seg := range segs {
		// Per-level spans exist only on this path; the pooled path fuses all
		// levels into one round (see drainRound) and gets a pool-round span.
		name := "level"
		if s == 0 && kind != roundCheckpoint {
			name = "seq-phase"
		}
		x.e.obs.trace.Begin(x.e.obs.tid, name)
		ok := x.runChunk(kind, s, seg, sc, &claimed, &progress)
		x.e.obs.trace.End(x.e.obs.tid)
		if !ok {
			break
		}
	}
	x.mergeStats()
	return claimed, progress
}

// drainRound is one worker's share of a pool round: for each segment, wait
// for the previous segment to complete, then claim and process chunks. The
// barrier waits on completed work, not on worker arrival, so a worker that
// serves several round slots back-to-back (the pool hands slots out
// greedily) can always make progress by finishing the pending chunks
// itself. Chunk completion accounting is deferred inside runChunk, so even
// a panicking chunk advances segDone and the barrier never deadlocks.
func (x *executor) drainRound(w int) {
	sc := x.scratches[w]
	var claimed int64
	progress := false
	for s := range x.segs {
		if s > 0 {
			for atomic.LoadInt64(&x.segDone[s-1]) < int64(len(x.segs[s-1])) {
				runtime.Gosched()
			}
		}
		seg := x.segs[s]
		n := int64(len(seg))
		for {
			lo := atomic.AddInt64(&x.segIdx[s], workChunk) - workChunk
			if lo >= n {
				break
			}
			hi := lo + workChunk
			if hi > n {
				hi = n
			}
			x.runChunkCounted(s, seg[lo:hi], sc, &claimed, &progress)
		}
	}
	if claimed != 0 {
		x.claimed.Add(claimed)
	}
	if progress {
		x.progress.Store(true)
	}
}

// runChunkCounted runs one claimed chunk and — panicking or not — credits
// its full length to the segment's completion counter so the inter-segment
// barrier always closes.
func (x *executor) runChunkCounted(s int, chunk []netlist.CellID, sc *scratch, claimed *int64, progress *bool) {
	defer atomic.AddInt64(&x.segDone[s], int64(len(chunk)))
	// Once a panic is recorded the sweep is doomed; surviving workers stop
	// executing gate code and only drain the claim counters so the round
	// finishes quickly.
	if x.failed.Load() != nil {
		return
	}
	x.runChunk(x.kind, s, chunk, sc, claimed, progress)
}

// runChunk processes one slice of a segment under panic containment. It
// returns false when a panic was contained (recorded in x.failed with the
// panicking gate's coordinates); the remainder of the chunk is skipped.
func (x *executor) runChunk(kind roundKind, s int, chunk []netlist.CellID, sc *scratch, claimed *int64, progress *bool) (ok bool) {
	cur := netlist.CellID(-1)
	defer func() {
		if v := recover(); v != nil {
			x.failed.CompareAndSwap(nil, &panicRecord{
				value: v, stack: debug.Stack(), gate: cur, seg: s,
			})
			ok = false
		}
	}()
	hook := x.e.opts.GateHook
	for _, id := range chunk {
		cur = id
		switch kind {
		case roundDirty:
			if !x.e.gate[id].dirty.CompareAndSwap(true, false) {
				continue
			}
			*claimed++
			if hook != nil {
				hook(id)
			}
			if x.e.visit(id, sc) {
				*progress = true
			}
		case roundOblivious:
			if hook != nil {
				hook(id)
			}
			if x.e.visit(id, sc) {
				*progress = true
			}
		case roundCheckpoint:
			x.e.checkpoint(id, sc)
		}
	}
	return true
}

// takeFailure returns and clears the contained-panic record of the last
// sweep, if any. Coordinator-only.
func (x *executor) takeFailure() *panicRecord {
	rec := x.failed.Load()
	if rec != nil {
		x.failed.Store(nil)
	}
	return rec
}

// runCheckpoint folds bases for all gates, reusing the sweep machinery with
// a single all-gates segment.
func (x *executor) runCheckpoint() {
	x.runSweep([][]netlist.CellID{x.allGates}, roundCheckpoint, len(x.allGates))
}

// mergeStats folds the per-worker counters into the engine totals. Called
// from the coordinating goroutine only.
func (x *executor) mergeStats() {
	var visits, queries, events int64
	for _, sc := range x.scratches {
		visits += sc.visits
		queries += sc.queries
		events += sc.events
		sc.visits, sc.queries, sc.events = 0, 0, 0
	}
	x.e.stats.visits.Add(visits)
	x.e.stats.queries.Add(queries)
	x.e.stats.events.Add(events)
	x.e.obs.events.Add(events)
}
