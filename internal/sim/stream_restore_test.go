package sim

import (
	"bytes"
	"errors"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
)

// streamEvents runs a stream over the given changes and collects the watched
// events in emission order.
func streamChanges(stim []gen.Change) []Change {
	out := make([]Change, len(stim))
	for i, s := range stim {
		out[i] = Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	// gen.Stimuli is globally time-sorted at the source.
	return out
}

type emitted struct {
	nid netlist.NetID
	ev  event.Event
}

// TestStreamAfterSliceSuspendRestoreCrossEngine is the cross-engine restore
// regression for cache-shared plans: a session streams on engine A, suspends
// mid-stream via the AfterSlice seam (snapshot at a slice boundary), and a
// *different* engine built from the same plan — deliberately warmed on other
// stimulus first, so its frontier worklist and dirty-bitset populations hold
// stale state — restores the snapshot and streams the tail. The
// concatenated emission must be byte-identical to an uninterrupted stream.
func TestStreamAfterSliceSuspendRestoreCrossEngine(t *testing.T) {
	for _, mode := range []struct {
		label string
		opts  Options
	}{
		{"serial", Options{Mode: ModeSerial}},
		{"pooled", Options{Mode: ModeParallel, Threads: 4}},
	} {
		t.Run(mode.label, func(t *testing.T) {
			d, err := gen.Build(smallSpec(21))
			if err != nil {
				t.Fatal(err)
			}
			delays := gen.Delays(d, 3)
			p, err := plan.Build(d.Netlist, testLib, delays)
			if err != nil {
				t.Fatal(err)
			}
			stim := streamChanges(gen.Stimuli(d, gen.StimSpec{
				Cycles: 40, ActivityFactor: 0.6, Seed: 9, ScanBurst: 8,
			}))
			const slice = int64(4000)

			// Uninterrupted reference stream from the shared plan.
			var want []emitted
			ref, err := NewFromPlan(p, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			err = ref.RunStream(NewSliceSource(stim), StreamConfig{
				SlicePS: slice,
				OnEvent: func(nid netlist.NetID, ev event.Event) {
					want = append(want, emitted{nid, ev})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			ref.Close()

			// Session engine A: suspend at the third slice boundary.
			errSuspend := errors.New("suspend")
			var got []emitted
			var snap bytes.Buffer
			var cut int64
			slices := 0
			eA, err := NewFromPlan(p, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			err = eA.RunStream(NewSliceSource(stim), StreamConfig{
				SlicePS: slice,
				OnEvent: func(nid netlist.NetID, ev event.Event) {
					got = append(got, emitted{nid, ev})
				},
				AfterSlice: func(end int64) error {
					slices++
					if slices == 3 {
						cut = end
						if err := eA.SaveSnapshot(&snap); err != nil {
							return err
						}
						return errSuspend
					}
					return nil
				},
			})
			var se *SimError
			if !errors.As(err, &se) || se.Op != "stream" || !errors.Is(err, errSuspend) {
				t.Fatalf("suspend error = %v, want *SimError{Op: stream} wrapping sentinel", err)
			}
			if cut == 0 || snap.Len() == 0 {
				t.Fatal("AfterSlice never reached the suspend point")
			}
			// The seam must not poison: the engine stays advanceable.
			if err := eA.Advance(cut); err != nil {
				t.Fatalf("engine poisoned by AfterSlice abort: %v", err)
			}
			eA.Close()

			// Engine B from the same shared plan, warmed on unrelated stimulus
			// so restore must displace live frontier/dirty state, not fresh
			// zero-state.
			eB, err := NewFromPlan(p, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			warm := streamChanges(gen.Stimuli(d, gen.StimSpec{
				Cycles: 10, ActivityFactor: 0.9, Seed: 77,
			}))
			if err := eB.RunStream(NewSliceSource(warm), StreamConfig{SlicePS: slice}); err != nil {
				t.Fatal(err)
			}
			if err := eB.LoadSnapshot(&snap); err != nil {
				t.Fatal(err)
			}
			// Resume from the first change at or past the cut — exactly the
			// changes session A had not yet injected.
			tail := stim[:0:0]
			for _, c := range stim {
				if c.Time >= cut {
					tail = append(tail, c)
				}
			}
			err = eB.RunStream(NewSliceSource(tail), StreamConfig{
				SlicePS: slice,
				OnEvent: func(nid netlist.NetID, ev event.Event) {
					got = append(got, emitted{nid, ev})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			eB.Close()

			if len(got) != len(want) {
				t.Fatalf("resumed stream emitted %d events, reference %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("event %d: got %+v want %+v (net %s vs %s)", i,
						got[i].ev, want[i].ev,
						d.Netlist.Nets[got[i].nid].Name, d.Netlist.Nets[want[i].nid].Name)
				}
			}
		})
	}
}

// TestSnapshotCrossRestoreFrontierModes pins that snapshots are portable
// across the frontier A/B switch, in both directions: a session suspended
// on a frontier-on engine restores into a DisableFrontier engine (and vice
// versa) and the concatenated emission stays byte-identical to an
// uninterrupted baseline run. Restoring must work because the snapshot
// captures only persistent state — staged frontier entries and idle-walk
// memos are scratch, dropped on save and rebuilt from the restored marks —
// so neither engine's arming choice can leak through the snapshot.
func TestSnapshotCrossRestoreFrontierModes(t *testing.T) {
	d, err := gen.Build(smallSpec(55))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 3)
	p, err := plan.Build(d.Netlist, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := streamChanges(gen.Stimuli(d, gen.StimSpec{
		Cycles: 40, ActivityFactor: 0.6, Seed: 13, ScanBurst: 8,
	}))
	const slice = int64(4000)

	// Uninterrupted baseline emission, frontier off: the reference both
	// cross-restore directions must reproduce.
	var want []emitted
	ref, err := NewFromPlan(p, Options{Mode: ModeSerial, DisableFrontier: true})
	if err != nil {
		t.Fatal(err)
	}
	err = ref.RunStream(NewSliceSource(stim), StreamConfig{
		SlicePS: slice,
		OnEvent: func(nid netlist.NetID, ev event.Event) {
			want = append(want, emitted{nid, ev})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	for _, dir := range []struct {
		label      string
		save, load Options
	}{
		{"on-to-off", Options{Mode: ModeSerial}, Options{Mode: ModeSerial, DisableFrontier: true}},
		{"off-to-on", Options{Mode: ModeSerial, DisableFrontier: true}, Options{Mode: ModeSerial}},
	} {
		t.Run(dir.label, func(t *testing.T) {
			errSuspend := errors.New("suspend")
			var got []emitted
			var snap bytes.Buffer
			var cut int64
			slices := 0
			eA, err := NewFromPlan(p, dir.save)
			if err != nil {
				t.Fatal(err)
			}
			err = eA.RunStream(NewSliceSource(stim), StreamConfig{
				SlicePS: slice,
				OnEvent: func(nid netlist.NetID, ev event.Event) {
					got = append(got, emitted{nid, ev})
				},
				AfterSlice: func(end int64) error {
					slices++
					if slices == 3 {
						cut = end
						if err := eA.SaveSnapshot(&snap); err != nil {
							return err
						}
						return errSuspend
					}
					return nil
				},
			})
			if !errors.Is(err, errSuspend) {
				t.Fatalf("suspend error = %v, want wrapped sentinel", err)
			}
			if cut == 0 || snap.Len() == 0 {
				t.Fatal("AfterSlice never reached the suspend point")
			}
			eA.Close()

			// Warm the restoring engine on unrelated stimulus first so the
			// restore displaces live frontier/dirty state, not fresh zeros.
			eB, err := NewFromPlan(p, dir.load)
			if err != nil {
				t.Fatal(err)
			}
			warm := streamChanges(gen.Stimuli(d, gen.StimSpec{
				Cycles: 10, ActivityFactor: 0.9, Seed: 78,
			}))
			if err := eB.RunStream(NewSliceSource(warm), StreamConfig{SlicePS: slice}); err != nil {
				t.Fatal(err)
			}
			if err := eB.LoadSnapshot(&snap); err != nil {
				t.Fatal(err)
			}
			tail := stim[:0:0]
			for _, c := range stim {
				if c.Time >= cut {
					tail = append(tail, c)
				}
			}
			err = eB.RunStream(NewSliceSource(tail), StreamConfig{
				SlicePS: slice,
				OnEvent: func(nid netlist.NetID, ev event.Event) {
					got = append(got, emitted{nid, ev})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			eB.Close()

			if len(got) != len(want) {
				t.Fatalf("resumed stream emitted %d events, reference %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("event %d: got %+v want %+v (net %s vs %s)", i,
						got[i].ev, want[i].ev,
						d.Netlist.Nets[got[i].nid].Name, d.Netlist.Nets[want[i].nid].Name)
				}
			}
		})
	}
}

// TestStreamAfterSliceErrorResumable: an AfterSlice error aborts the stream
// as a resumable *SimError and a later RunStream on the SAME engine picks up
// where the first stopped, with no events lost or duplicated.
func TestStreamAfterSliceErrorResumable(t *testing.T) {
	d, err := gen.Build(smallSpec(33))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, 5)
	p, err := plan.Build(d.Netlist, testLib, delays)
	if err != nil {
		t.Fatal(err)
	}
	stim := streamChanges(gen.Stimuli(d, gen.StimSpec{Cycles: 20, ActivityFactor: 0.5, Seed: 2}))
	const slice = int64(4000)

	var want []emitted
	ref, err := NewFromPlan(p, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunStream(NewSliceSource(stim), StreamConfig{SlicePS: slice,
		OnEvent: func(nid netlist.NetID, ev event.Event) { want = append(want, emitted{nid, ev}) },
	}); err != nil {
		t.Fatal(err)
	}
	ref.Close()

	e, err := NewFromPlan(p, Options{Mode: ModeSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stop := errors.New("budget")
	var got []emitted
	var cut int64
	err = e.RunStream(NewSliceSource(stim), StreamConfig{SlicePS: slice,
		OnEvent: func(nid netlist.NetID, ev event.Event) { got = append(got, emitted{nid, ev}) },
		AfterSlice: func(end int64) error {
			if end >= 2*slice {
				cut = end
				return stop
			}
			return nil
		},
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	tail := stim[:0:0]
	for _, c := range stim {
		if c.Time >= cut {
			tail = append(tail, c)
		}
	}
	if err := e.RunStream(NewSliceSource(tail), StreamConfig{SlicePS: slice,
		OnEvent: func(nid netlist.NetID, ev event.Event) { got = append(got, emitted{nid, ev}) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed emission %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
