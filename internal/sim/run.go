package sim

import (
	"context"
	"fmt"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

// Inject appends a stimulus event to a primary-input net. Re-assertions of
// the current value are dropped first — VCD streams routinely re-dump every
// signal at a slice boundary ($dumpvars), including at the exact time of an
// earlier event — and only a genuine value change is held to the ordering
// rules: it must not fall below the net's watermark (the determined past is
// immutable) and times must strictly increase per net.
func (e *Engine) Inject(nid netlist.NetID, t int64, v logic.Value) error {
	if e.poison != nil {
		return e.poisonError("inject")
	}
	if e.lanes > 1 {
		return fmt.Errorf("sim: Inject on a lane-mode engine; use InjectLanes")
	}
	if int(nid) >= len(e.queues) || !e.p.IsPI[nid] {
		return fmt.Errorf("sim: net %d is not a primary input", nid)
	}
	q := &e.queues[nid]
	v = v.Settle()
	if q.LastVal() == v {
		return nil
	}
	if t < q.DeterminedUntil() {
		return fmt.Errorf("sim: inject at %d below watermark %d on %s", t, q.DeterminedUntil(), e.nl.Nets[nid].Name)
	}
	if lt := q.LastTime(); t <= lt {
		return fmt.Errorf("sim: inject at %d not after last event %d on %s", t, lt, e.nl.Nets[nid].Name)
	}
	q.Append(t, v)
	e.markLoads(nid, -1, true)
	return nil
}

// Advance declares every primary input determined up to the horizon
// (exclusive) — input values hold between injected events — and then runs
// propagation sweeps until the simulation converges for this input range.
// It is AdvanceCtx without cancellation.
func (e *Engine) Advance(horizon int64) error {
	return e.AdvanceCtx(context.Background(), horizon)
}

// AdvanceCtx is Advance under a context: cancellation and deadline are
// checked at every sweep boundary, so an expired context aborts the run
// within one sweep. The abort is clean — all committed state is kept, the
// engine is NOT poisoned, and a later AdvanceCtx resumes the convergence
// where this one stopped. The returned error is a *SimError wrapping
// ctx.Err().
func (e *Engine) AdvanceCtx(ctx context.Context, horizon int64) error {
	if e.poison != nil {
		return e.poisonError("advance")
	}
	if horizon > TimeInf {
		horizon = TimeInf
	}
	for nid := range e.queues {
		if !e.p.IsPI[nid] {
			continue
		}
		q := &e.queues[nid]
		w := horizon
		// Injection is append-only, so everything up to the last injected
		// event is already immutable: events beyond the horizon simply
		// extend the determined range past it.
		if lt := q.LastTime(); lt+1 > w {
			w = lt + 1
		}
		if q.DeterminedUntil() < w {
			// A pure watermark advance: any injected events already marked
			// their loads at Append time (Inject above), so this is the
			// no-new-events case — readers with unconsumed input events fall
			// back to dirty marks inside the frontier machinery.
			wOld := q.DeterminedUntil()
			q.SetDeterminedUntil(w)
			e.markLoads(netlist.NetID(nid), wOld, false)
		}
	}
	return e.converge(ctx, horizon)
}

// Finish declares the inputs frozen at their final values forever and runs
// the simulation to completion.
func (e *Engine) Finish() error { return e.Advance(TimeInf) }

// FinishCtx is Finish under a context (see AdvanceCtx).
func (e *Engine) FinishCtx(ctx context.Context) error { return e.AdvanceCtx(ctx, TimeInf) }

// converge repeats sweeps (sequential phase, then each combinational level)
// until no gate makes progress. Each sweep is one executor round over the
// precomputed level segments: the dirty filter runs inside the round after
// the per-level barrier, so a gate dirtied by level L is still picked up by
// level L+1 within the same sweep, and the worker pool is woken once per
// sweep rather than once per level.
//
// Termination needs one extra rule beyond "no progress": in designs with
// stable feedback loops (a flop whose data input equals its state stays
// determined even through an undetermined clock), watermarks creep forward
// by one arc delay per sweep forever. The creep-stop below ends a converge
// once a sweep commits no events and every gate's remaining work lies at or
// beyond the horizon: such work can only ever produce events at or beyond
// the horizon, so nothing this Advance owes its callers is still in flight.
// Quiescence must be judged against the horizon, not globally — a gate
// blocked on the next slice's clock edge would otherwise keep the stop rule
// off while a stable loop creeps forever. On the final advance (horizon
// TimeInf) the same test degenerates to full quiescence, which additionally
// proves no event can ever occur again, and every watermark jumps to
// TimeInf at once (the engine's analogue of the reference simulator's empty
// event queue).
func (e *Engine) converge(ctx context.Context, horizon int64) error {
	oblivious := e.mode == ModeManycore
	jumped := false
	// Nets staged outside the sweep loop — AdvanceCtx's primary-input
	// watermark moves — are picked up by the first sweep's segment-boundary
	// drains on a single-goroutine engine, each level just before the first
	// segment that can read it, so one commit there covers the stimulus
	// move and the in-sweep cascade alike. A pooled engine has no boundary
	// drains and drains the staging up front instead.
	if !e.front.serial {
		if _, rec := e.frontierPass(frontierAllLevels); rec != nil {
			return e.poisonFromPanic("advance", rec)
		}
	}
	for sweep := 0; sweep < e.opts.MaxSweeps; sweep++ {
		// Cancellation is honored at sweep boundaries only: a sweep is the
		// unit of consistency (events commit, dirty flags settle), so
		// stopping here leaves the engine resumable — a later AdvanceCtx
		// picks the convergence back up from the committed state.
		if err := ctx.Err(); err != nil {
			return &SimError{Op: "advance", Cause: err}
		}

		sweepStart := time.Now()
		eventsBefore := e.stats.events.Load()

		kind, expected := roundDirty, e.lastDirty
		if oblivious {
			kind, expected = roundOblivious, e.p.NumGates()
		}
		e.obs.trace.Begin(e.obs.tid, "sweep")
		levelStart := time.Now()
		processed, progress := e.exec.runSweep(e.sweepSegs, kind, expected)
		levelNS := time.Since(levelStart).Nanoseconds()
		e.stats.levelNS.Add(levelNS)
		e.obs.levelNS.Observe(levelNS)
		e.stats.sweeps.Add(1)
		e.obs.sweeps.Inc()
		if e.fusedLevs > 0 {
			// Plan-time fused levels: combinational levels this sweep crossed
			// without a barrier of their own (serial sweeps never had one;
			// pooled sweeps share the group's claim ranges).
			e.stats.levelsFused.Add(int64(e.fusedLevs))
		}
		if !oblivious {
			e.lastDirty = int(processed)
		}
		if rec := e.exec.takeFailure(); rec != nil {
			e.obs.trace.End(e.obs.tid)
			return e.poisonFromPanic("advance", rec)
		}

		// Post-sweep frontier pass: drains what the sweep's last segments
		// staged (single-goroutine sweeps already drained at every earlier
		// segment boundary; pooled sweeps staged everything, since only the
		// coordinator may drain). Fallback dirty marks are work owed to the
		// next sweep; events the pass commits count against the creep-stop's
		// events delta below.
		passDirtied, rec := e.frontierPass(frontierAllLevels)
		if rec != nil {
			e.obs.trace.End(e.obs.tid)
			return e.poisonFromPanic("advance", rec)
		}
		done := processed == 0
		if oblivious {
			done = !progress
		}
		if done && !oblivious {
			e.lastDirty = int(passDirtied)
		}

		sweepNS := time.Since(sweepStart).Nanoseconds()
		e.stats.sweepNS.Add(sweepNS)
		e.obs.sweepNS.Observe(sweepNS)
		e.obs.trace.End(e.obs.tid)
		e.obs.trace.Count("sim.events_committed", e.stats.events.Load())
		e.updateWatermarkGauge()

		if done && passDirtied == 0 {
			return nil
		}

		// A sweep that commits no events while every gate's remaining work
		// lies at or beyond the horizon can only be creeping watermarks
		// around stable loops. That creep carries no information this
		// advance owes anyone: stop. On the final advance the quiescent
		// state additionally proves no event can ever occur again, so every
		// watermark jumps to TimeInf at once.
		if !jumped && e.stats.events.Load() == eventsBefore && e.quiescentBelow(horizon) {
			if horizon < TimeInf {
				return nil
			}
			jumped = true
			for nid := range e.queues {
				if e.queues[nid].DeterminedUntil() < TimeInf {
					e.queues[nid].SetDeterminedUntil(TimeInf)
				}
			}
			// The jump just rewrote every watermark; the sample taken after
			// the sweep is stale.
			e.updateWatermarkGauge()
			return nil
		}
	}
	// Watchdog trip: the netlist is still moving after the full sweep
	// budget — almost always an oscillating loop (e.g. a ring through a
	// transparent latch). Diagnose, but do NOT poison: the committed state
	// is consistent, and the caller may raise MaxSweeps and resume.
	return &SimError{
		Op:          "advance",
		Cause:       fmt.Errorf("%w (%d sweeps)", ErrNoConvergence, e.opts.MaxSweeps),
		Oscillation: e.oscillationReport(horizon, e.opts.MaxSweeps),
	}
}

// updateWatermarkGauge samples the design's watermark frontier into the
// sim.watermark_ps gauge (and the trace counter track when tracing). Called
// at every sweep boundary so the gauge is live on the Advance/Finish run
// paths, not only at stream slice boundaries (emitSliceCounters). The
// frontier is the minimum watermark over the primary outputs — the
// externally meaningful "how far has the run got" measure — falling back to
// all nets when the netlist declares no output ports. The scan is skipped
// entirely when nothing observes it.
func (e *Engine) updateWatermarkGauge() {
	if e.obs.watermark == nil && e.obs.trace == nil {
		return
	}
	w := int64(TimeInf)
	if len(e.nl.PortsOut) > 0 {
		for _, nid := range e.nl.PortsOut {
			if d := e.queues[nid].DeterminedUntil(); d < w {
				w = d
			}
		}
	} else {
		for nid := range e.queues {
			if d := e.queues[nid].DeterminedUntil(); d < w {
				w = d
			}
		}
	}
	e.obs.watermark.Set(w)
	e.obs.trace.Count("sim.watermark_ps", w)
}

// quiescentBelow reports whether no gate can ever produce an event below
// the horizon: every unconsumed input event and uncommitted pending
// transition lies at or beyond it, and consuming work at time t only
// creates events at or after t. Gates not visited since their inputs last
// changed cannot be stale: a clean gate keeps the frontier of its last
// visit, and its inputs have not changed since.
func (e *Engine) quiescentBelow(horizon int64) bool {
	start := time.Now()
	quiet := true
	for i := range e.gate {
		if e.gate[i].futureMin < horizon {
			quiet = false
			break
		}
	}
	e.obs.quiesceNS.Observe(time.Since(start).Nanoseconds())
	return quiet
}

// Events exposes the committed event queue of a net. Callers must treat it
// as read-only and must not hold references across Checkpoint calls if they
// also lower read marks.
func (e *Engine) Events(nid netlist.NetID) *event.Queue { return &e.queues[nid] }

// Value returns the committed value of the net at the given time, or U when
// the time is at or beyond the net's watermark.
func (e *Engine) Value(nid netlist.NetID, t int64) logic.Value {
	q := &e.queues[nid]
	if t >= q.DeterminedUntil() {
		return logic.VU
	}
	// Persistent per-net readers: repeated queries at nondecreasing times
	// cost O(changes in the window) via the reader's cursor, and a cold or
	// backward query costs one page-skipping seek instead of an O(events)
	// scan from the retained start.
	if e.valRd == nil {
		e.valRd = make([]event.Reader, len(e.queues))
	}
	return e.valRd[nid].ValueAt(q, t)
}

// SetReadMark records, per net, the event index below which an external
// consumer (VCD writer, activity counter) has finished reading. Nets
// without a mark are assumed unwatched. This is how streaming drivers
// allow storage reclamation.
func (e *Engine) SetReadMark(nid netlist.NetID, idx int64) {
	e.readMarks[nid] = idx
}

// Checkpoint folds the determined-and-committed history into per-gate base
// state and releases event pages that no gate cursor or read mark still
// needs. Call between stream slices. On a poisoned engine it is a no-op
// (the state it would fold is suspect); a panic contained during the fold
// itself poisons the engine like a sweep panic would.
func (e *Engine) Checkpoint() {
	if e.poison != nil {
		return
	}
	// Lane mode never folds or trims: per-lane stream extraction reads the
	// full queue + lane-store history, and the lane base state is the
	// broadcast initial values for the whole run.
	if e.lanes > 1 {
		return
	}
	start := time.Now()
	e.obs.trace.Begin(e.obs.tid, "checkpoint")
	defer func() {
		e.obs.trace.End(e.obs.tid)
		e.obs.checkpointNS.Observe(time.Since(start).Nanoseconds())
	}()
	e.exec.runCheckpoint()
	if rec := e.exec.takeFailure(); rec != nil {
		e.poisonFromPanic("checkpoint", rec)
		return
	}
	e.stats.checkpoints.Add(1)
	e.obs.checkpoints.Inc()

	// keep[nid] = lowest event index still needed.
	keep := make([]int64, len(e.queues))
	for i := range keep {
		keep[i] = unreadMark
	}
	for s, nid := range e.p.InNet {
		if e.baseCur[s] < keep[nid] {
			keep[nid] = e.baseCur[s]
		}
	}
	for nid, idx := range e.readMarks {
		if idx < keep[nid] {
			keep[nid] = idx
		}
	}
	for nid := range e.queues {
		e.queues[nid].TrimTo(keep[nid])
	}
}

// DebugBlocked returns diagnostic lines for up to n gates whose
// determination frontier lags behind `before`, including each input net's
// watermark — the tool for investigating convergence issues.
func (e *Engine) DebugBlocked(before int64, n int) []string {
	var out []string
	for gi := range e.gate {
		g := &e.gate[gi]
		if g.detUntil.Load() >= before || len(out) >= n {
			continue
		}
		inst := &e.nl.Instances[gi]
		line := fmt.Sprintf("%s(%s) det=%d base=%d futureMin=%d ins:", inst.Name, inst.Type.Name, g.detUntil.Load(), g.baseNow, g.futureMin)
		inB := int(e.p.InOff[gi])
		for pi, nid := range e.p.GateInputs(netlist.CellID(gi)) {
			q := &e.queues[nid]
			line += fmt.Sprintf(" %s[W=%d len=%d cur=%d]", e.nl.Nets[nid].Name, q.DeterminedUntil(), q.Len(), e.baseCur[inB+pi])
		}
		out = append(out, line)
	}
	return out
}
