package sim

import (
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sched"
	"gatesim/internal/truthtab"
)

// kernelVisit is the per-class dispatch table for gate visits. The plan
// classifies each interned table once (plan.KernelOf); the engine caches the
// per-gate class in e.kern so dispatch is one byte load and an indexed call.
// Options.DisableKernels forces every gate to ClassSeq, which routes the
// whole design through the generic interpreter — the test/bench knob that
// lets the same gates run both paths.
var kernelVisit = [truthtab.NumClasses]func(*Engine, netlist.CellID, *scratch) bool{
	truthtab.ClassSeq:   (*Engine).visit,
	truthtab.ClassComb1: (*Engine).visitComb1,
}

// visitGate dispatches one gate visit to its class kernel. A visit that
// commits no events only moved watermarks (or did nothing at all); those are
// tallied separately so the relax pass's win is measurable.
func (e *Engine) visitGate(id netlist.CellID, sc *scratch) bool {
	ev0 := sc.events
	var r bool
	if e.lanes > 1 {
		// Lane mode routes every interpreted gate through the generic lane
		// visit; lane comb1 kernels dispatch from the script loop directly.
		r = e.visitLaneGate(id, sc)
	} else {
		r = kernelVisit[e.kern[id]](e, id, sc)
	}
	if sc.events == ev0 {
		sc.visitsWMOnly++
	}
	return r
}

// visitComb1 is the ClassComb1 kernel: the straight-line replay loop for a
// single-output, zero-state gate with no edge-sensitive inputs. It follows
// visit (gate.go) exactly, minus everything such a gate cannot need: no
// state vector or semantic-output copies, no edge coding (the query value
// of an event is just its settled value), one pending output instead of a
// loop over outputs, and a packed-LUT probe — the raw input values shifted
// into 3-bit fields — instead of the generic mixed-radix table walk. When
// the plan proved every arc delay of the gate equal (ArcUniform), the
// per-changed-input minimum scan collapses to the gate's first arc.
// Confluence of the sweep fixpoint makes its committed stream byte-equal to
// the generic path's, which the kernel equivalence tests check.
func (e *Engine) visitComb1(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	lut := p.LUTs[p.TableOf[id]]
	arcB := int(p.ArcOff[id])
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]
	softCur := e.softCur[inB : inB+ni]
	uniform := p.ArcUniform[id]
	sc.visits[truthtab.ClassComb1]++

	// Soft-resume / idle checks, exactly as in visit.
	resume := g.softValid
	idle := resume
	if resume {
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if softCur[i] < iq.Len() {
				idle = false
				if iq.MustAt(softCur[i]).Time < g.softNow {
					resume = false
					break
				}
			}
		}
	}
	if resume && idle {
		return e.idleComb1(id, sc)
	}
	// A real visit may change the soft input values the idle walks' memo
	// was proven against; drop it (cheap, and stale masks are unsound).
	g.maskDet, g.maskUndet = 0, 0
	out := &sc.outs[0]
	var now int64
	var sem logic.Value
	if resume {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(softCur[i])
			sc.vals[i] = e.softVals[inB+i]
		}
		sem = e.softSem[outB]
		out.Restore(e.lastCommitted[outB], e.softPend[outB])
		now = g.softNow
	} else {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(e.baseCur[inB+i])
			sc.vals[i] = e.baseVals[inB+i]
		}
		sem = e.semBase[outB]
		out.Reset(e.lastCommitted[outB])
		now = g.baseNow
	}
	detUntil := TimeInf
	frontOn := e.front.on
	fullU := uint32(0)
	if frontOn && lut.AllU {
		fullU = uint32(1)<<uint(ni) - 1
	}
	for {
		// Next change point: earliest unconsumed event or stable-time
		// expiry strictly after `now`.
		t := TimeInf
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if sc.cur[i].Idx < iq.Len() {
				if et := sc.cur[i].Peek(iq).Time; et < t {
					t = et
				}
			}
			if w := iq.DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}

		// Build the packed query index directly: settled values and U are
		// their own 3-bit fields. exp tracks the expired pins so trailing
		// pure-expiry probes can seed the idle walks' determinedness memo.
		idx := 0
		var exp uint32
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			v := sc.vals[i]
			if sc.cur[i].Idx < iq.Len() {
				if ev := sc.cur[i].Peek(iq); ev.Time == t {
					v = ev.Val.Settle()
					sc.evIn = append(sc.evIn, i)
					idx |= int(v) << (3 * i)
					continue
				}
			}
			if t >= iq.DeterminedUntil() {
				v = logic.VU
				exp |= 1 << uint(i)
			}
			idx |= int(v) << (3 * i)
		}
		// Every pin expired and the function is input-sensitive: the verdict
		// is U by construction (PackedLUT.AllU), no probe needed. exp only
		// covers pins that took the expiry branch, so this is event-free.
		// (fullU is zero unless the frontier is armed and the LUT qualifies,
		// so the nonzero compare is the whole check on the hot path.)
		if exp == fullU && fullU != 0 {
			sc.queriesSaved++
			detUntil = t
			break
		}
		nv := lut.Data[idx]
		sc.queries[truthtab.ClassComb1]++
		if nv == logic.VU {
			// An event-free probe used exactly the values this visit will
			// store as the soft snapshot, so its verdict seeds the memo and
			// the post-visit wakeup walk skips the re-probe.
			if frontOn && len(sc.evIn) == 0 && (g.maskUndet == 0 || exp&^g.maskUndet == 0) {
				g.maskUndet = exp
			}
			detUntil = t
			break
		}

		// Consume the change point.
		if len(sc.evIn) > 0 {
			// The new input values invalidate any memo seeded at earlier
			// expiry-only probes of this visit.
			g.maskDet, g.maskUndet = 0, 0
			if nv != sem {
				var d int64
				if uniform {
					d = sched.DelayFor(p.Arcs[arcB], nv)
				} else {
					d = int64(1) << 62
					for _, i := range sc.evIn {
						if ad := sched.DelayFor(p.Arcs[arcB+i], nv); ad < d {
							d = ad
						}
					}
				}
				out.Schedule(t+d, nv)
				sem = nv
			}
			for _, i := range sc.evIn {
				sc.vals[i] = sc.cur[i].Peek(inQ[i]).Val.Settle()
				sc.cur[i].Advance()
			}
		} else if frontOn && exp&g.maskDet == g.maskDet {
			g.maskDet = exp
		}
		now = t
	}
	g.detUntil.Store(detUntil)

	// Commit the single output and advance its watermark.
	limit := detUntil
	if limit < TimeInf {
		limit += p.MinArc[outB]
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	for {
		te, ok := out.NextPending()
		if !ok || te > commitThrough {
			break
		}
		ev := out.PopFront()
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(p.OutNet[outB], wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	if te, ok := out.NextPending(); ok {
		futureMin = te
	}
	blocked := false
	for i := 0; i < ni; i++ {
		if sc.cur[i].Idx < inQ[i].Len() {
			blocked = true
			if et := sc.cur[i].Peek(inQ[i]).Time; et < futureMin {
				futureMin = et
			}
		}
	}
	g.futureMin = futureMin
	g.blocked = blocked

	// Save the soft snapshot for the next visit.
	g.softNow = now
	for i := 0; i < ni; i++ {
		softCur[i] = sc.cur[i].Idx
		e.softVals[inB+i] = sc.vals[i]
	}
	e.softSem[outB] = sem
	e.softPend[outB] = append(e.softPend[outB][:0], out.Pend()...)
	g.softValid = true
	return progress
}

// idleComb1 is idleVisit specialized the same way: a watermark-expiry-only
// walk with a packed-LUT probe per expiry and a single output to commit
// from the soft pending list. The gate's determinedness memo
// (gateState.maskDet/maskUndet) elides probes whose expired-input set a
// previous walk already decided under the same soft values.
func (e *Engine) idleComb1(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	lut := p.LUTs[p.TableOf[id]]
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]

	// One coherent watermark snapshot per walk (see scratch.wm), folding in
	// the maximal expired set and its last expiry instant for the shortcut
	// below, then the expiry loop: at each expiry the set of expired inputs
	// alone decides the probe (the non-expired values are the unchanged
	// soft values), so the gate's determinedness memo can skip the LUT
	// probe whenever the set is inside a proven-determined mask or covers
	// a proven-U one.
	wm := sc.wm[:ni]
	var expMax uint32
	tLast := int64(0)
	for i := 0; i < ni; i++ {
		w := inQ[i].DeterminedUntil()
		wm[i] = w
		if w < TimeInf {
			expMax |= 1 << uint(i)
			if w > tLast {
				tLast = w
			}
		}
	}
	now := g.softNow
	detUntil := TimeInf
	frontOn := e.front.on
	// Maximal-set shortcut: the expired set only grows along the walk, and
	// determinedness is antitone in it, so if the probe with *every*
	// finite-watermark input expired at once comes back determined, every
	// instant of the walk is determined — one probe (or a memo hit) settles
	// the whole walk and the loop below degenerates to the TimeInf break. A
	// U verdict seeds the memo and the loop finds the first U instant.
	full := uint32(1)<<uint(ni) - 1
	if tLast > now && g.maskDet != 0 && !(expMax == full && lut.AllU) &&
		(g.maskUndet == 0 || expMax&g.maskUndet != g.maskUndet) {
		det := false
		if expMax&^g.maskDet == 0 {
			sc.queriesSaved++
			det = true
		} else {
			idx := 0
			for i := 0; i < ni; i++ {
				v := e.softVals[inB+i]
				if expMax&(1<<uint(i)) != 0 {
					v = logic.VU
				}
				idx |= int(v) << (3 * i)
			}
			sc.queries[truthtab.ClassComb1]++
			if lut.Data[idx] != logic.VU {
				det = true
				if expMax&g.maskDet == g.maskDet {
					g.maskDet = expMax
				}
			} else if g.maskUndet == 0 || expMax&^g.maskUndet == 0 {
				g.maskUndet = expMax
			}
		}
		if det {
			now = tLast
		}
	}
	// Incremental probe state: the expired set only grows as the walk
	// advances, so the set and the packed probe index are maintained in
	// place — pins expired at `now` start as VU, the rest hold their soft
	// value and flip to VU once the walk crosses their watermark — instead
	// of rebuilding both O(ni) scans at every change point.
	exp := uint32(0)
	idx := 0
	for i := 0; i < ni; i++ {
		v := e.softVals[inB+i]
		if now >= wm[i] {
			v = logic.VU
			exp |= 1 << uint(i)
		}
		idx |= int(v) << (3 * i)
	}
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			if w := wm[i]; w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}
		for i := 0; i < ni; i++ {
			if b := uint32(1) << uint(i); exp&b == 0 && t >= wm[i] {
				exp |= b
				idx = idx&^(7<<(3*uint(i))) | int(logic.VU)<<(3*uint(i))
			}
		}
		if frontOn && exp == full && lut.AllU {
			sc.queriesSaved++
			detUntil = t
			break
		}
		if g.maskUndet != 0 && exp&g.maskUndet == g.maskUndet {
			sc.queriesSaved++
			detUntil = t
			break
		}
		if exp&^g.maskDet == 0 {
			sc.queriesSaved++
			now = t
			continue
		}
		sc.queries[truthtab.ClassComb1]++
		if lut.Data[idx] == logic.VU {
			if frontOn && (g.maskUndet == 0 || exp&^g.maskUndet == 0) {
				g.maskUndet = exp
			}
			detUntil = t
			break
		}
		if frontOn && exp&g.maskDet == g.maskDet {
			g.maskDet = exp
		}
		now = t
	}
	g.softNow = now
	g.detUntil.Store(detUntil)

	limit := detUntil
	if limit < TimeInf {
		limit += p.MinArc[outB]
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	pend := e.softPend[outB]
	k := 0
	for k < len(pend) && pend[k].Time <= commitThrough {
		ev := pend[k]
		k++
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if k > 0 {
		e.softPend[outB] = append(pend[:0], pend[k:]...)
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(p.OutNet[outB], wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	for _, ev := range e.softPend[outB] {
		if ev.Time < futureMin {
			futureMin = ev.Time
		}
	}
	g.futureMin = futureMin
	return progress
}
