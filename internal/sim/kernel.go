package sim

import (
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sched"
	"gatesim/internal/truthtab"
)

// kernelVisit is the per-class dispatch table for gate visits. The plan
// classifies each interned table once (plan.KernelOf); the engine caches the
// per-gate class in e.kern so dispatch is one byte load and an indexed call.
// Options.DisableKernels forces every gate to ClassSeq, which routes the
// whole design through the generic interpreter — the test/bench knob that
// lets the same gates run both paths.
var kernelVisit = [truthtab.NumClasses]func(*Engine, netlist.CellID, *scratch) bool{
	truthtab.ClassSeq:   (*Engine).visit,
	truthtab.ClassComb1: (*Engine).visitComb1,
}

// visitGate dispatches one gate visit to its class kernel. A visit that
// commits no events only moved watermarks (or did nothing at all); those are
// tallied separately so the relax pass's win is measurable.
func (e *Engine) visitGate(id netlist.CellID, sc *scratch) bool {
	ev0 := sc.events
	var r bool
	if e.lanes > 1 {
		// Lane mode routes every interpreted gate through the generic lane
		// visit; lane comb1 kernels dispatch from the script loop directly.
		r = e.visitLaneGate(id, sc)
	} else {
		r = kernelVisit[e.kern[id]](e, id, sc)
	}
	if sc.events == ev0 {
		sc.visitsWMOnly++
	}
	return r
}

// visitComb1 is the ClassComb1 kernel: the straight-line replay loop for a
// single-output, zero-state gate with no edge-sensitive inputs. It follows
// visit (gate.go) exactly, minus everything such a gate cannot need: no
// state vector or semantic-output copies, no edge coding (the query value
// of an event is just its settled value), one pending output instead of a
// loop over outputs, and a packed-LUT probe — the raw input values shifted
// into 3-bit fields — instead of the generic mixed-radix table walk. When
// the plan proved every arc delay of the gate equal (ArcUniform), the
// per-changed-input minimum scan collapses to the gate's first arc.
// Confluence of the sweep fixpoint makes its committed stream byte-equal to
// the generic path's, which the kernel equivalence tests check.
func (e *Engine) visitComb1(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	lut := p.LUTs[p.TableOf[id]]
	arcB := int(p.ArcOff[id])
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]
	softCur := e.softCur[inB : inB+ni]
	uniform := p.ArcUniform[id]
	sc.visits[truthtab.ClassComb1]++

	// Soft-resume / idle checks, exactly as in visit.
	resume := g.softValid
	idle := resume
	if resume {
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if softCur[i] < iq.Len() {
				idle = false
				if iq.MustAt(softCur[i]).Time < g.softNow {
					resume = false
					break
				}
			}
		}
	}
	if resume && idle {
		return e.idleComb1(id, sc)
	}
	out := &sc.outs[0]
	var now int64
	var sem logic.Value
	if resume {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(softCur[i])
			sc.vals[i] = e.softVals[inB+i]
		}
		sem = e.softSem[outB]
		out.Restore(e.lastCommitted[outB], e.softPend[outB])
		now = g.softNow
	} else {
		for i := 0; i < ni; i++ {
			sc.cur[i] = inQ[i].NewCursor(e.baseCur[inB+i])
			sc.vals[i] = e.baseVals[inB+i]
		}
		sem = e.semBase[outB]
		out.Reset(e.lastCommitted[outB])
		now = g.baseNow
	}
	detUntil := TimeInf
	for {
		// Next change point: earliest unconsumed event or stable-time
		// expiry strictly after `now`.
		t := TimeInf
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			if sc.cur[i].Idx < iq.Len() {
				if et := sc.cur[i].Peek(iq).Time; et < t {
					t = et
				}
			}
			if w := iq.DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}

		// Build the packed query index directly: settled values and U are
		// their own 3-bit fields.
		idx := 0
		sc.evIn = sc.evIn[:0]
		for i := 0; i < ni; i++ {
			iq := inQ[i]
			v := sc.vals[i]
			if sc.cur[i].Idx < iq.Len() {
				if ev := sc.cur[i].Peek(iq); ev.Time == t {
					v = ev.Val.Settle()
					sc.evIn = append(sc.evIn, i)
					idx |= int(v) << (3 * i)
					continue
				}
			}
			if t >= iq.DeterminedUntil() {
				v = logic.VU
			}
			idx |= int(v) << (3 * i)
		}
		nv := lut.Data[idx]
		sc.queries[truthtab.ClassComb1]++
		if nv == logic.VU {
			detUntil = t
			break
		}

		// Consume the change point.
		if len(sc.evIn) > 0 {
			if nv != sem {
				var d int64
				if uniform {
					d = sched.DelayFor(p.Arcs[arcB], nv)
				} else {
					d = int64(1) << 62
					for _, i := range sc.evIn {
						if ad := sched.DelayFor(p.Arcs[arcB+i], nv); ad < d {
							d = ad
						}
					}
				}
				out.Schedule(t+d, nv)
				sem = nv
			}
			for _, i := range sc.evIn {
				sc.vals[i] = sc.cur[i].Peek(inQ[i]).Val.Settle()
				sc.cur[i].Advance()
			}
		}
		now = t
	}
	g.detUntil.Store(detUntil)

	// Commit the single output and advance its watermark.
	limit := detUntil
	if limit < TimeInf {
		limit += p.MinArc[outB]
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	for {
		te, ok := out.NextPending()
		if !ok || te > commitThrough {
			break
		}
		ev := out.PopFront()
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(p.OutNet[outB], wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	if te, ok := out.NextPending(); ok {
		futureMin = te
	}
	blocked := false
	for i := 0; i < ni; i++ {
		if sc.cur[i].Idx < inQ[i].Len() {
			blocked = true
			if et := sc.cur[i].Peek(inQ[i]).Time; et < futureMin {
				futureMin = et
			}
		}
	}
	g.futureMin = futureMin
	g.blocked = blocked

	// Save the soft snapshot for the next visit.
	g.softNow = now
	for i := 0; i < ni; i++ {
		softCur[i] = sc.cur[i].Idx
		e.softVals[inB+i] = sc.vals[i]
	}
	e.softSem[outB] = sem
	e.softPend[outB] = append(e.softPend[outB][:0], out.Pend()...)
	g.softValid = true
	return progress
}

// idleComb1 is idleVisit specialized the same way: a watermark-expiry-only
// walk with a packed-LUT probe per expiry and a single output to commit
// from the soft pending list.
func (e *Engine) idleComb1(id netlist.CellID, sc *scratch) bool {
	p := e.p
	g := &e.gate[id]
	inB := int(p.InOff[id])
	ni := int(p.InOff[id+1]) - inB
	outB := int(p.OutOff[id])
	lut := p.LUTs[p.TableOf[id]]
	inQ := e.inQ[inB : inB+ni]
	q := e.outQ[outB]

	now := g.softNow
	detUntil := TimeInf
	for {
		t := int64(TimeInf)
		for i := 0; i < ni; i++ {
			if w := inQ[i].DeterminedUntil(); w > now && w < t {
				t = w
			}
		}
		if t >= TimeInf {
			break
		}
		idx := 0
		for i := 0; i < ni; i++ {
			v := e.softVals[inB+i]
			if t >= inQ[i].DeterminedUntil() {
				v = logic.VU
			}
			idx |= int(v) << (3 * i)
		}
		sc.queries[truthtab.ClassComb1]++
		if lut.Data[idx] == logic.VU {
			detUntil = t
			break
		}
		now = t
	}
	g.softNow = now
	g.detUntil.Store(detUntil)

	limit := detUntil
	if limit < TimeInf {
		limit += p.MinArc[outB]
		if limit > TimeInf {
			limit = TimeInf
		}
	}
	commitThrough := limit - 1
	progress := false
	newEvents := false
	pend := e.softPend[outB]
	k := 0
	for k < len(pend) && pend[k].Time <= commitThrough {
		ev := pend[k]
		k++
		if ev.Time > e.committedUntil[outB] {
			if q != nil {
				q.Append(ev.Time, ev.Val)
				newEvents = true
				sc.events++
			}
			e.lastCommitted[outB] = ev.Val
		}
	}
	if k > 0 {
		e.softPend[outB] = append(pend[:0], pend[k:]...)
	}
	if commitThrough > e.committedUntil[outB] {
		e.committedUntil[outB] = commitThrough
	}
	wOld := int64(-1)
	if q != nil && q.DeterminedUntil() < limit {
		wOld = q.DeterminedUntil()
		q.SetDeterminedUntil(limit)
	}
	if newEvents || wOld >= 0 {
		progress = true
		e.markLoads(p.OutNet[outB], wOld, newEvents)
	}

	futureMin := int64(TimeInf)
	for _, ev := range e.softPend[outB] {
		if ev.Time < futureMin {
			futureMin = ev.Time
		}
	}
	g.futureMin = futureMin
	return progress
}
