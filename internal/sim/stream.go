package sim

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

// Change is one stimulus event for the streaming driver.
type Change struct {
	Net  netlist.NetID
	Time int64
	Val  logic.Value
}

// StimulusSource yields primary-input changes in nondecreasing time order.
// Implementations return io.EOF when exhausted.
type StimulusSource interface {
	Next() (Change, error)
}

// SliceSource adapts an in-memory stimulus slice (sorted by time here).
type SliceSource struct {
	changes []Change
	pos     int
}

// NewSliceSource sorts the changes by time (stable, preserving per-net
// order) and returns a source over them.
func NewSliceSource(changes []Change) *SliceSource {
	s := &SliceSource{changes: append([]Change(nil), changes...)}
	sort.SliceStable(s.changes, func(a, b int) bool { return s.changes[a].Time < s.changes[b].Time })
	return s
}

// Next implements StimulusSource.
func (s *SliceSource) Next() (Change, error) {
	if s.pos >= len(s.changes) {
		return Change{}, io.EOF
	}
	c := s.changes[s.pos]
	s.pos++
	return c, nil
}

// StreamConfig configures RunStream.
type StreamConfig struct {
	// SlicePS is the streaming window length; input is consumed and the
	// simulation converged one window at a time, with event storage
	// reclaimed between windows. Default 65536 ps.
	SlicePS int64
	// Watch lists the nets whose committed events are reported. Default:
	// the primary outputs.
	Watch []netlist.NetID
	// OnEvent receives watched events in global time order (ties broken by
	// net id). May be nil (useful for pure performance runs).
	OnEvent func(nid netlist.NetID, ev event.Event)
	// AfterSlice, when non-nil, runs at the end of every completed slice —
	// after the window's events are flushed and Checkpoint has folded
	// history, i.e. at a quiescent point where SaveSnapshot is legal and the
	// slice's read marks are recorded. `end` is the absolute end time of the
	// slice just finished. Returning a non-nil error aborts the stream with a
	// resumable *SimError (Op "stream"): the engine is NOT poisoned, events
	// already emitted stay emitted, and a later RunStreamCtx may continue
	// from the same source position. Serving layers hang periodic snapshot
	// checkpoints, event budgets and suspend gates off this seam.
	AfterSlice func(end int64) error
}

// RunStream drives the engine from a stimulus source in streaming slices:
// the paper's streamed signal I/O (§III-D.2). Memory stays bounded by the
// slice contents regardless of total trace length. It is RunStreamCtx
// without cancellation.
func (e *Engine) RunStream(src StimulusSource, cfg StreamConfig) error {
	return e.RunStreamCtx(context.Background(), src, cfg)
}

// RunStreamCtx is RunStream under a context: the context is threaded into
// every slice's AdvanceCtx, so cancellation aborts within one sweep
// boundary. Events already flushed stay flushed; the engine remains
// resumable (see AdvanceCtx).
func (e *Engine) RunStreamCtx(ctx context.Context, src StimulusSource, cfg StreamConfig) error {
	if e.poison != nil {
		return e.poisonError("stream")
	}
	if e.lanes > 1 {
		return fmt.Errorf("sim: RunStream on a lane-mode engine; use RunLaneStream")
	}
	if cfg.SlicePS <= 0 {
		cfg.SlicePS = 65536
	}
	watch := cfg.Watch
	if watch == nil {
		watch = e.nl.PortsOut
	}
	// Start each watched net at its queue start, not at absolute index 0: a
	// snapshot-restored engine retains queues whose indices begin past zero.
	// A read mark recorded before the snapshot resumes exactly where the
	// previous stream stopped reading.
	read := make(map[netlist.NetID]int64, len(watch))
	for _, nid := range watch {
		i := e.Events(nid).Start()
		if m := e.readMarks[nid]; m != unreadMark && m > i {
			i = m
		}
		read[nid] = i
	}
	var batch []Change // reused: one pending change between slices
	pending, pendErr := src.Next()
	havePending := pendErr == nil
	if pendErr != nil && pendErr != io.EOF {
		return pendErr
	}

	var emitBuf []timedEvent
	flush := func(limit int64) error {
		emitBuf = emitBuf[:0]
		for _, nid := range watch {
			q := e.Events(nid)
			i := read[nid]
			if i < q.Start() {
				return fmt.Errorf("sim: stream read mark trimmed on %s", e.nl.Nets[nid].Name)
			}
			for ; i < q.Len(); i++ {
				ev := q.MustAt(i)
				if ev.Time >= limit {
					break
				}
				emitBuf = append(emitBuf, timedEvent{nid, ev})
			}
			read[nid] = i
			e.SetReadMark(nid, i)
		}
		if cfg.OnEvent != nil {
			sort.Slice(emitBuf, func(a, b int) bool {
				if emitBuf[a].ev.Time != emitBuf[b].ev.Time {
					return emitBuf[a].ev.Time < emitBuf[b].ev.Time
				}
				return emitBuf[a].nid < emitBuf[b].nid
			})
			for _, te := range emitBuf {
				cfg.OnEvent(te.nid, te.ev)
			}
		}
		return nil
	}

	start := int64(0)
	if havePending {
		start = (pending.Time / cfg.SlicePS) * cfg.SlicePS
	}
	for havePending {
		end := start + cfg.SlicePS
		sliceStart := time.Now()
		e.obs.trace.Begin(e.obs.tid, "slice")
		batch = batch[:0]
		for havePending && pending.Time < end {
			batch = append(batch, pending)
			var err error
			pending, err = src.Next()
			if err == io.EOF {
				havePending = false
			} else if err != nil {
				return err
			}
		}
		for _, c := range batch {
			if err := e.Inject(c.Net, c.Time, c.Val); err != nil {
				e.obs.trace.End(e.obs.tid)
				return err
			}
		}
		if err := e.AdvanceCtx(ctx, end); err != nil {
			e.obs.trace.End(e.obs.tid)
			return err
		}
		// Events are only safe to emit in global order up to the slowest
		// watched watermark.
		limit := end
		for _, nid := range watch {
			if w := e.Events(nid).DeterminedUntil(); w < limit {
				limit = w
			}
		}
		if err := flush(limit); err != nil {
			e.obs.trace.End(e.obs.tid)
			return err
		}
		e.Checkpoint()
		e.obs.trace.End(e.obs.tid)
		e.obs.sliceNS.Observe(time.Since(sliceStart).Nanoseconds())
		e.emitSliceCounters(limit)
		if cfg.AfterSlice != nil {
			if err := cfg.AfterSlice(end); err != nil {
				return &SimError{Op: "stream", Cause: err}
			}
		}
		start = end
	}
	if err := e.FinishCtx(ctx); err != nil {
		return err
	}
	if err := flush(TimeInf + 1); err != nil {
		return err
	}
	e.emitSliceCounters(TimeInf)
	return nil
}

// emitSliceCounters samples the slice-boundary counter tracks: the trace's
// "where did the run get to" lanes (events committed, watermark advance,
// downgrades, pool parks/wakes) and the live watermark gauge. All sinks are
// nil-safe, so a disabled run pays a few pointer tests per slice.
func (e *Engine) emitSliceCounters(watermark int64) {
	e.obs.watermark.Set(watermark)
	if e.obs.trace == nil {
		return
	}
	ps := e.exec.pool.Stats()
	e.obs.trace.Count("sim.watermark_ps", watermark)
	e.obs.trace.Count("sim.downgrades", e.stats.downgrades.Load())
	e.obs.trace.Count("pool.parks", ps.Parks)
	e.obs.trace.Count("pool.wakes", ps.Wakes)
}

type timedEvent struct {
	nid netlist.NetID
	ev  event.Event
}
