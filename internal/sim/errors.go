package sim

import (
	"errors"
	"fmt"
	"strings"

	"gatesim/internal/netlist"
)

// This file is the engine's structured error model — the run-control layer
// that turns the three ways a long simulation can die (a panicking gate
// visit, a never-converging netlist, a caller-imposed deadline) into typed,
// inspectable errors instead of process crashes or silent spins.
//
// The failure ladder:
//
//   - Cancellation (context expired): the engine aborts at the next sweep
//     boundary and stays RESUMABLE — no committed state was lost, a later
//     AdvanceCtx continues where the run stopped.
//   - Watchdog trip (Options.MaxSweeps exhausted): the engine returns an
//     OscillationReport naming the gates/nets still moving and stays
//     resumable — raising MaxSweeps and advancing again continues the run.
//   - Contained panic (a gate visit or pool worker panicked): the sweep's
//     results are suspect, so the engine POISONS itself — every later call
//     returns ErrPoisoned wrapping the original PanicInfo. Close still
//     releases the worker pool cleanly, and LoadSnapshot (which replaces
//     all state) clears the poison.
//   - Pool infrastructure failure before any gate ran (a chaos-injected or
//     real worker death outside simulation code): the executor downgrades
//     to serial execution for the remainder of the run, re-runs the
//     interrupted sweep, and records the downgrade in Stats.Downgrades —
//     the run completes correctly, just slower.

// ErrPoisoned is the sentinel wrapped by every error returned from an
// engine that contained a panic. Match with errors.Is(err, ErrPoisoned).
var ErrPoisoned = errors.New("sim: engine poisoned by an earlier contained panic")

// ErrNoConvergence is the sentinel wrapped by the convergence watchdog when
// an Advance exhausts Options.MaxSweeps. Match with errors.Is; the
// *SimError carrying it holds the OscillationReport.
var ErrNoConvergence = errors.New("sim: no convergence within the sweep budget")

// SimError is the structured error returned by the engine's run-control
// paths (AdvanceCtx, RunStreamCtx, Inject on a poisoned engine, ...). It
// wraps the cause so errors.Is/As see through it, and carries whichever
// diagnostic payload the failure produced.
type SimError struct {
	// Op names the engine operation that failed: "advance", "stream",
	// "inject", "checkpoint", "snapshot".
	Op string
	// Cause is the underlying error: context.Canceled /
	// context.DeadlineExceeded, ErrNoConvergence, ErrPoisoned, or a
	// workpool.PanicError.
	Cause error
	// Panic is set when Cause stems from a contained panic: the recovered
	// value, the stack, and the gate/level coordinates where it fired.
	Panic *PanicInfo
	// Oscillation is set when Cause is ErrNoConvergence: the gates and nets
	// whose watermarks were still moving when the watchdog tripped.
	Oscillation *OscillationReport
}

func (e *SimError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s: %v", e.Op, e.Cause)
	if e.Panic != nil {
		fmt.Fprintf(&b, " (%s)", e.Panic.coords())
	}
	if e.Oscillation != nil {
		fmt.Fprintf(&b, "; %s", e.Oscillation.Summary())
	}
	return b.String()
}

func (e *SimError) Unwrap() error { return e.Cause }

// PanicInfo records where a contained panic fired. Gate coordinates are
// best-effort: a panic outside per-gate code (pool machinery, chaos hooks)
// has Gate = -1.
type PanicInfo struct {
	Value any    // recovered panic value
	Stack []byte // stack captured at the recovery point

	Gate     netlist.CellID // panicking gate, or -1 when unknown
	GateName string         // instance name of Gate ("" when unknown)
	CellType string         // library cell type of Gate ("" when unknown)
	// Level is the sweep segment that was executing: 0 is the sequential
	// phase, k>0 is combinational level k-1, -1 is unknown.
	Level int
}

func (p *PanicInfo) coords() string {
	if p.Gate < 0 {
		return "outside gate code"
	}
	seg := "sequential phase"
	if p.Level > 0 {
		seg = fmt.Sprintf("level %d", p.Level-1)
	} else if p.Level < 0 {
		seg = "unknown level"
	}
	return fmt.Sprintf("gate %s(%s) id=%d in %s", p.GateName, p.CellType, p.Gate, seg)
}

// OscillationReport names the simulation state still in motion when the
// convergence watchdog tripped: the gates whose remaining work lies inside
// the advance horizon (the livelocked set) and the nets they drive. A
// combinational ring routed through a transparent latch, for example, shows
// up here as the latch and inverter with watermarks far behind the horizon.
type OscillationReport struct {
	Sweeps  int   // sweeps executed before the watchdog tripped
	Horizon int64 // advance horizon of the tripped call
	Gates   []OscillatingGate
	// Truncated reports how many additional moving gates were elided from
	// Gates (the report caps itself to stay readable).
	Truncated int
}

// OscillatingGate is one gate still making in-horizon progress when the
// watchdog tripped.
type OscillatingGate struct {
	Gate      netlist.CellID
	Name      string   // instance name
	CellType  string   // library cell type
	Nets      []string // driven nets whose watermark lags the horizon
	DetUntil  int64    // determination frontier of the last visit
	FutureMin int64    // earliest pending work the gate left behind
}

// Summary renders the report as one line naming the moving gates and nets.
func (r *OscillationReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d gates still moving after %d sweeps (horizon %d):", len(r.Gates)+r.Truncated, r.Sweeps, r.Horizon)
	for i, g := range r.Gates {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s(%s)", g.Name, g.CellType)
		if len(g.Nets) > 0 {
			fmt.Fprintf(&b, " nets=%s", strings.Join(g.Nets, "|"))
		}
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, " … and %d more", r.Truncated)
	}
	return b.String()
}

// oscReportLimit caps the gates included in an OscillationReport.
const oscReportLimit = 8

// oscillationReport scans the gate states for in-horizon pending work and
// builds the watchdog diagnosis. Called only on the MaxSweeps trip path, so
// clarity beats speed.
func (e *Engine) oscillationReport(horizon int64, sweeps int) *OscillationReport {
	rep := &OscillationReport{Sweeps: sweeps, Horizon: horizon}
	for gi := range e.gate {
		g := &e.gate[gi]
		if g.futureMin >= horizon && !g.dirty.Load() {
			continue
		}
		if len(rep.Gates) >= oscReportLimit {
			rep.Truncated++
			continue
		}
		inst := &e.nl.Instances[gi]
		og := OscillatingGate{
			Gate:      netlist.CellID(gi),
			Name:      inst.Name,
			CellType:  inst.Type.Name,
			DetUntil:  g.detUntil.Load(),
			FutureMin: g.futureMin,
		}
		for _, nid := range e.p.GateOutputs(netlist.CellID(gi)) {
			if nid < 0 {
				continue
			}
			if e.queues[nid].DeterminedUntil() < horizon {
				og.Nets = append(og.Nets, e.nl.Nets[nid].Name)
			}
		}
		rep.Gates = append(rep.Gates, og)
	}
	return rep
}

// poisonError returns the error every call on a poisoned engine gets: a
// SimError for the requested op whose cause chain carries both ErrPoisoned
// and the original contained panic.
func (e *Engine) poisonError(op string) error {
	return &SimError{Op: op, Cause: e.poison.Cause, Panic: e.poison.Panic}
}

// poisonFromPanic converts a contained-panic record collected from the
// executor into the engine's poison state and returns the first-report
// SimError. The sweep's partial results are suspect (a gate died mid-visit),
// so every later run-control call answers with ErrPoisoned until
// LoadSnapshot replaces the state.
func (e *Engine) poisonFromPanic(op string, rec *panicRecord) error {
	info := &PanicInfo{Value: rec.value, Stack: rec.stack, Gate: rec.gate, Level: rec.seg}
	if rec.gate >= 0 && int(rec.gate) < len(e.nl.Instances) {
		inst := &e.nl.Instances[rec.gate]
		info.GateName = inst.Name
		info.CellType = inst.Type.Name
	}
	e.poison = &SimError{
		Op:    op,
		Cause: fmt.Errorf("%w: contained panic: %v", ErrPoisoned, rec.value),
		Panic: info,
	}
	return e.poison
}
