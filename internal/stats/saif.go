package stats

import (
	"fmt"
	"strings"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

// SAIF (Switching Activity Interchange Format) is how gate-level simulators
// hand switching activity to power-analysis tools — one of the signoff
// integrations the paper motivates. DurationTracker accumulates per-net
// state-duration and toggle counts from a committed event stream, and
// WriteSAIF renders the standard backward-annotation file.

// DurationTracker accumulates T0/T1/TX durations and toggle counts.
type DurationTracker struct {
	nl    *netlist.Netlist
	last  []logic.Value
	since []int64
	t0    []int64
	t1    []int64
	tx    []int64
	tc    []int64
	final bool
}

// NewDurationTracker starts tracking from time 0 with the given initial net
// values (pass the engine's initial conditions, or nil for all-X).
func NewDurationTracker(nl *netlist.Netlist, initial []logic.Value) *DurationTracker {
	n := len(nl.Nets)
	d := &DurationTracker{
		nl:    nl,
		last:  make([]logic.Value, n),
		since: make([]int64, n),
		t0:    make([]int64, n),
		t1:    make([]int64, n),
		tx:    make([]int64, n),
		tc:    make([]int64, n),
	}
	for i := range d.last {
		if initial != nil {
			d.last[i] = initial[i]
		} else {
			d.last[i] = logic.VX
		}
	}
	return d
}

// Record consumes one committed event; events per net must be in time order.
func (d *DurationTracker) Record(nid netlist.NetID, ev event.Event) {
	d.credit(nid, ev.Time)
	d.last[nid] = ev.Val.Settle()
	d.since[nid] = ev.Time
	d.tc[nid]++
}

func (d *DurationTracker) credit(nid netlist.NetID, until int64) {
	dt := until - d.since[nid]
	if dt <= 0 {
		return
	}
	switch d.last[nid].ToKleene() {
	case logic.V0:
		d.t0[nid] += dt
	case logic.V1:
		d.t1[nid] += dt
	default:
		d.tx[nid] += dt
	}
}

// Finalize credits the tail interval up to the simulation end time.
func (d *DurationTracker) Finalize(endTime int64) {
	if d.final {
		return
	}
	d.final = true
	for nid := range d.last {
		d.credit(netlist.NetID(nid), endTime)
		d.since[nid] = endTime
	}
}

// Toggles returns the toggle count of a net.
func (d *DurationTracker) Toggles(nid netlist.NetID) int64 { return d.tc[nid] }

// WriteSAIF renders the tracked activity as a SAIF 2.0 file covering
// [0, duration]. Finalize(duration) is called implicitly.
func (d *DurationTracker) WriteSAIF(duration int64) string {
	d.Finalize(duration)
	var b strings.Builder
	b.WriteString("(SAIFILE\n")
	b.WriteString("  (SAIFVERSION \"2.0\")\n")
	b.WriteString("  (DIRECTION \"backward\")\n")
	fmt.Fprintf(&b, "  (DESIGN \"%s\")\n", d.nl.Name)
	b.WriteString("  (TIMESCALE 1 ps)\n")
	fmt.Fprintf(&b, "  (DURATION %d)\n", duration)
	fmt.Fprintf(&b, "  (INSTANCE %s\n    (NET\n", saifName(d.nl.Name))
	for nid := range d.nl.Nets {
		// Only report nets with any recorded state (skip fully idle X nets
		// with no toggles to keep files small, matching common practice).
		if d.tc[nid] == 0 && d.t0[nid] == 0 && d.t1[nid] == 0 {
			continue
		}
		fmt.Fprintf(&b, "      (%s (T0 %d) (T1 %d) (TX %d) (TC %d))\n",
			saifName(d.nl.Nets[nid].Name), d.t0[nid], d.t1[nid], d.tx[nid], d.tc[nid])
	}
	b.WriteString("    )\n  )\n)\n")
	return b.String()
}

// saifName escapes identifiers that SAIF tools would reject.
func saifName(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c == '/' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	return "\\" + strings.ReplaceAll(s, " ", "_") + " "
}
