package stats

import (
	"strings"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

func build(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("t", liberty.MustBuiltin())
	if err := nl.MarkInput(nl.AddNet("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g1", "INV", map[string]string{"A": "a", "Y": "n1"}); err != nil {
		t.Fatal(err)
	}
	// n1 fans out to two gates: load cap = 2 * 1.0 (INV) ... one INV + one XOR2 (1.2)
	if _, err := nl.AddInstance("g2", "INV", map[string]string{"A": "n1", "Y": "n2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("g3", "XOR2", map[string]string{"A": "n1", "B": "a", "Y": "n3"}); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestActivityCounts(t *testing.T) {
	nl := build(t)
	a := NewActivity(nl)
	n1, _ := nl.Net("n1")
	aNet, _ := nl.Net("a")
	for i := 0; i < 10; i++ {
		a.Record(n1, event.Event{Time: int64(i), Val: logic.Value(i % 2)})
	}
	a.Record(aNet, event.Event{Time: 5, Val: logic.VX})
	if a.Toggles(n1) != 10 || a.Total() != 11 {
		t.Errorf("toggles %d total %d", a.Toggles(n1), a.Total())
	}
	if got := a.GlitchRatio(); got < 0.08 || got > 0.1 {
		t.Errorf("glitch ratio %v", got)
	}
	if af := a.ActivityFactor(10); af <= 0 {
		t.Errorf("activity factor %v", af)
	}
	if a.ActivityFactor(0) != 0 {
		t.Error("zero cycles should yield 0")
	}
}

func TestPowerModel(t *testing.T) {
	nl := build(t)
	a := NewActivity(nl)
	n1, _ := nl.Net("n1")
	n2, _ := nl.Net("n2")
	for i := 0; i < 100; i++ {
		a.Record(n1, event.Event{Time: int64(i), Val: logic.Value(i % 2)})
	}
	a.Record(n2, event.Event{Time: 1, Val: logic.V1})
	rep := a.Power(1_000_000, 1.0)
	if rep.TotalDynamic <= 0 {
		t.Fatal("no power computed")
	}
	if len(rep.PerNet) != 2 || rep.PerNet[0].Net != "n1" {
		t.Fatalf("ranking wrong: %+v", rep.PerNet)
	}
	// n1 load = INV(1.0) + XOR2 A(1.2) = 2.2; power = 0.5*2.2*1*100/1e-6.
	want := 0.5 * 2.2 * 100 / 1e-6
	if got := rep.PerNet[0].Power; got < want*0.99 || got > want*1.01 {
		t.Errorf("n1 power %g, want %g", got, want)
	}
	out := rep.Format(1)
	if !strings.Contains(out, "n1") || strings.Contains(out, "n2\n") && false {
		t.Errorf("format output:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 { // header x2 + one row
		t.Errorf("Format(1) rows wrong:\n%s", out)
	}
}

func TestPowerZeroDuration(t *testing.T) {
	nl := build(t)
	a := NewActivity(nl)
	rep := a.Power(0, 1.0)
	if rep.TotalDynamic != 0 || len(rep.PerNet) != 0 {
		t.Error("empty activity should produce empty report")
	}
}

func TestDurationTracker(t *testing.T) {
	nl := build(t)
	d := NewDurationTracker(nl, nil)
	n1, _ := nl.Net("n1")
	// X from 0..100, 1 from 100..250, 0 from 250..1000.
	d.Record(n1, event.Event{Time: 100, Val: logic.V1})
	d.Record(n1, event.Event{Time: 250, Val: logic.V0})
	d.Finalize(1000)
	saif := d.WriteSAIF(1000)
	if !strings.Contains(saif, "(n1 (T0 750) (T1 150) (TX 100) (TC 2))") {
		t.Errorf("SAIF:\n%s", saif)
	}
	for _, want := range []string{"(SAIFILE", "(DURATION 1000)", "(TIMESCALE 1 ps)"} {
		if !strings.Contains(saif, want) {
			t.Errorf("SAIF missing %q", want)
		}
	}
	if d.Toggles(n1) != 2 {
		t.Errorf("toggles: %d", d.Toggles(n1))
	}
	// Idle nets are omitted.
	if strings.Contains(saif, "(n3 ") {
		t.Error("idle net reported")
	}
}

func TestDurationTrackerInitialValues(t *testing.T) {
	nl := build(t)
	n2, _ := nl.Net("n2")
	init := make([]logic.Value, len(nl.Nets))
	for i := range init {
		init[i] = logic.V0
	}
	d := NewDurationTracker(nl, init)
	d.Record(n2, event.Event{Time: 400, Val: logic.V1})
	saif := d.WriteSAIF(1000)
	if !strings.Contains(saif, "(n2 (T0 400) (T1 600) (TX 0) (TC 1))") {
		t.Errorf("SAIF:\n%s", saif)
	}
}

func TestSaifNameEscaping(t *testing.T) {
	if saifName("plain_name/ok9") != "plain_name/ok9" {
		t.Error("plain names must pass through")
	}
	if got := saifName("odd[3]"); !strings.HasPrefix(got, "\\") {
		t.Errorf("escaped name: %q", got)
	}
}
