// Package stats collects switching activity from simulation event streams
// and derives the dynamic-power estimate that is one of the downstream uses
// the paper motivates (power analysis from delay-annotated gate-level
// simulation).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"gatesim/internal/event"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
)

// Activity accumulates per-net toggle counts. It is not safe for concurrent
// use; feed it from a single collector goroutine or after the run.
type Activity struct {
	nl      *netlist.Netlist
	toggles []int64
	glitchy []int64 // transitions to or from X
	total   int64
	// load capacitance per net: sum of fanout input pin caps.
	loadCap []float64
}

// NewActivity prepares a collector for the netlist.
func NewActivity(nl *netlist.Netlist) *Activity {
	a := &Activity{
		nl:      nl,
		toggles: make([]int64, len(nl.Nets)),
		glitchy: make([]int64, len(nl.Nets)),
		loadCap: make([]float64, len(nl.Nets)),
	}
	for nid := range nl.Nets {
		for _, load := range nl.Nets[nid].Fanout {
			inst := &nl.Instances[load.Cell]
			pin := inst.Type.Pin(inst.Type.Inputs[load.InIdx])
			if pin != nil {
				a.loadCap[nid] += pin.Cap
			}
		}
	}
	return a
}

// Record counts one committed event.
func (a *Activity) Record(nid netlist.NetID, ev event.Event) {
	a.toggles[nid]++
	a.total++
	if ev.Val.ToKleene() == logic.VX {
		a.glitchy[nid]++
	}
}

// Toggles returns the toggle count for one net.
func (a *Activity) Toggles(nid netlist.NetID) int64 { return a.toggles[nid] }

// Total returns the design-wide toggle count.
func (a *Activity) Total() int64 { return a.total }

// ActivityFactor returns average toggles per net per clock cycle.
func (a *Activity) ActivityFactor(cycles int) float64 {
	if cycles == 0 || len(a.toggles) == 0 {
		return 0
	}
	return float64(a.total) / float64(cycles) / float64(len(a.toggles))
}

// PowerReport estimates dynamic switching power. The model is the standard
// P = 1/2 * C * Vdd^2 * toggle-rate per net; capacitance is in library
// units, so the absolute number is arbitrary but comparisons across runs of
// the same library are meaningful.
type PowerReport struct {
	TotalDynamic float64 // library-cap units * V^2 / s
	PerNet       []NetPower
}

// NetPower is one line of the power report.
type NetPower struct {
	Net     string
	Toggles int64
	Cap     float64
	Power   float64
}

// Power computes the report for a simulated duration (in picoseconds) at
// the given supply voltage.
func (a *Activity) Power(durationPS int64, vdd float64) PowerReport {
	if durationPS <= 0 {
		durationPS = 1
	}
	seconds := float64(durationPS) * 1e-12
	var rep PowerReport
	for nid := range a.toggles {
		if a.toggles[nid] == 0 {
			continue
		}
		p := 0.5 * a.loadCap[nid] * vdd * vdd * float64(a.toggles[nid]) / seconds
		rep.TotalDynamic += p
		rep.PerNet = append(rep.PerNet, NetPower{
			Net:     a.nl.Nets[nid].Name,
			Toggles: a.toggles[nid],
			Cap:     a.loadCap[nid],
			Power:   p,
		})
	}
	sort.Slice(rep.PerNet, func(i, j int) bool { return rep.PerNet[i].Power > rep.PerNet[j].Power })
	return rep
}

// Format renders the top-N rows as a table.
func (r PowerReport) Format(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "total dynamic power: %.4g (lib-cap*V^2/s)\n", r.TotalDynamic)
	fmt.Fprintf(&b, "%-24s %10s %8s %12s\n", "net", "toggles", "cap", "power")
	for i, np := range r.PerNet {
		if i >= topN {
			break
		}
		fmt.Fprintf(&b, "%-24s %10d %8.2f %12.4g\n", np.Net, np.Toggles, np.Cap, np.Power)
	}
	return b.String()
}

// GlitchRatio returns the fraction of transitions that moved to/from X.
func (a *Activity) GlitchRatio() float64 {
	if a.total == 0 {
		return 0
	}
	var g int64
	for _, v := range a.glitchy {
		g += v
	}
	return float64(g) / float64(a.total)
}
