package plan_test

import (
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

var testLib = mustCompile()

func mustCompile() *truthtab.CompiledLibrary {
	cl, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		panic(err)
	}
	return cl
}

func spec(seed int64) gen.Spec {
	return gen.Spec{
		Name: "pl", Seed: seed,
		CombGates: 160, FFs: 32, Latches: 6, ScanFFs: 6, ClockGates: 2,
		Depth: 6, DataInputs: 10, Outputs: 6, ClockPeriodPS: 2000,
	}
}

// TestGolden checks that every lowered array round-trips against the
// netlist, library, delays and initial-condition fixpoint it was built from.
func TestGolden(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		d, err := gen.Build(spec(seed))
		if err != nil {
			t.Fatal(err)
		}
		nl := d.Netlist
		delays := gen.Delays(d, seed)
		p, err := plan.Build(nl, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumGates() != len(nl.Instances) || p.NumNets() != len(nl.Nets) {
			t.Fatalf("seed %d: plan shape %d/%d vs netlist %d/%d",
				seed, p.NumGates(), p.NumNets(), len(nl.Instances), len(nl.Nets))
		}

		ic, err := truthtab.ComputeInitialConditions(nl, testLib)
		if err != nil {
			t.Fatal(err)
		}
		for n := range nl.Nets {
			if p.IsPI[n] != nl.Nets[n].IsInput {
				t.Fatalf("seed %d net %d: IsPI mismatch", seed, n)
			}
			if p.NetInit[n] != ic.NetVals[n] {
				t.Fatalf("seed %d net %d: NetInit %v want %v", seed, n, p.NetInit[n], ic.NetVals[n])
			}
		}

		for i := range nl.Instances {
			id := netlist.CellID(i)
			inst := &nl.Instances[i]
			tab := testLib.Tables[inst.Type.Name]
			if p.Table(id) != tab {
				t.Fatalf("seed %d gate %d: interned table differs from library lookup", seed, i)
			}
			ins, outs := p.GateInputs(id), p.GateOutputs(id)
			if len(ins) != len(inst.InNets) || len(outs) != len(inst.OutNets) {
				t.Fatalf("seed %d gate %d: pin slot counts %d/%d want %d/%d",
					seed, i, len(ins), len(outs), len(inst.InNets), len(inst.OutNets))
			}
			for pi, nid := range inst.InNets {
				if ins[pi] != nid {
					t.Fatalf("seed %d gate %d in %d: net %d want %d", seed, i, pi, ins[pi], nid)
				}
				if p.InInit[int(p.InOff[i])+pi] != ic.NetVals[nid] {
					t.Fatalf("seed %d gate %d in %d: InInit mismatch", seed, i, pi)
				}
			}
			for po, nid := range inst.OutNets {
				if outs[po] != nid {
					t.Fatalf("seed %d gate %d out %d: net %d want %d", seed, i, po, outs[po], nid)
				}
			}
			stB := int(p.StateOff[i])
			for si, v := range ic.States[i] {
				if p.StateInit[stB+si] != v {
					t.Fatalf("seed %d gate %d state %d: init mismatch", seed, i, si)
				}
			}
			outB := int(p.OutOff[i])
			for o, v := range ic.Outs[i] {
				if p.OutInit[outB+o] != v {
					t.Fatalf("seed %d gate %d out %d: OutInit mismatch", seed, i, o)
				}
			}

			// Arc delays, minArc, maxArc against the sdf accessors.
			maxArc := int64(0)
			for o := 0; o < len(outs); o++ {
				want := delays.MinArc(id, o)
				if len(ins) == 0 {
					want = 0
				}
				if got := p.MinArc[outB+o]; got != want {
					t.Fatalf("seed %d gate %d out %d: MinArc %d want %d", seed, i, o, got, want)
				}
				for in := 0; in < len(ins); in++ {
					if got, want := p.Arc(id, o, in), delays.Arc(id, o, in); got != want {
						t.Fatalf("seed %d gate %d arc %d->%d: %+v want %+v", seed, i, in, o, got, want)
					}
					if m := delays.Arc(id, o, in).Max(); m > maxArc {
						maxArc = m
					}
				}
			}
			if p.MaxArc[i] != maxArc {
				t.Fatalf("seed %d gate %d: MaxArc %d want %d", seed, i, p.MaxArc[i], maxArc)
			}
		}

		// Fanout CSR round-trips against the netlist.
		for n := range nl.Nets {
			fan := nl.Nets[n].Fanout
			lo, hi := p.FanOff[n], p.FanOff[n+1]
			if int(hi-lo) != len(fan) {
				t.Fatalf("seed %d net %d: fanout CSR len %d want %d", seed, n, hi-lo, len(fan))
			}
			for k, load := range fan {
				if p.FanCell[lo+int32(k)] != load.Cell || p.FanPin[lo+int32(k)] != load.InIdx {
					t.Fatalf("seed %d net %d load %d: CSR (%d,%d) want (%d,%d)",
						seed, n, k, p.FanCell[lo+int32(k)], p.FanPin[lo+int32(k)], load.Cell, load.InIdx)
				}
			}
		}

		if p.Lev.NumCells() != len(nl.Instances) {
			t.Fatalf("seed %d: levelization covers %d cells, want %d", seed, p.Lev.NumCells(), len(nl.Instances))
		}
	}
}

// TestWithDelays checks that re-annotation shares structure and re-derives
// exactly the delay-dependent vectors.
func TestWithDelays(t *testing.T) {
	d, err := gen.Build(spec(5))
	if err != nil {
		t.Fatal(err)
	}
	sdfDelays := gen.Delays(d, 5)
	unitDelays := sdf.Uniform(d.Netlist, 120)
	p, err := plan.Build(d.Netlist, testLib, sdfDelays)
	if err != nil {
		t.Fatal(err)
	}
	q := p.WithDelays(unitDelays)

	// Structural arrays are shared (same backing storage).
	if &q.InNet[0] != &p.InNet[0] || &q.FanCell[0] != &p.FanCell[0] || q.Lev != p.Lev {
		t.Error("WithDelays must share structural arrays")
	}
	if q.Delays != unitDelays {
		t.Error("WithDelays must adopt the new annotation")
	}
	for g := 0; g < q.NumGates(); g++ {
		id := netlist.CellID(g)
		ni, no := q.NumIn(id), q.NumOut(id)
		for o := 0; o < no; o++ {
			want := unitDelays.MinArc(id, o)
			if ni == 0 {
				want = 0
			}
			if got := q.MinArc[int(q.OutOff[g])+o]; got != want {
				t.Fatalf("gate %d out %d: MinArc %d want %d", g, o, got, want)
			}
			for in := 0; in < ni; in++ {
				if q.Arc(id, o, in) != unitDelays.Arc(id, o, in) {
					t.Fatalf("gate %d arc %d->%d not re-lowered", g, in, o)
				}
			}
		}
	}
	// The original plan is untouched.
	for g := 0; g < p.NumGates(); g++ {
		id := netlist.CellID(g)
		for o := 0; o < p.NumOut(id); o++ {
			for in := 0; in < p.NumIn(id); in++ {
				if p.Arc(id, o, in) != sdfDelays.Arc(id, o, in) {
					t.Fatalf("gate %d: WithDelays mutated the source plan", g)
				}
			}
		}
	}
}

// TestKernelLowering checks the plan's kernel classification and bucketed
// sweep schedule: KernelOf/LUTs agree with the table classifier, every gate
// appears in exactly one segment with matching class and level, buckets
// keep the original within-level order, and ArcUniform matches a
// brute-force scan of the arcs.
func TestKernelLowering(t *testing.T) {
	d, err := gen.Build(spec(11))
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(d.Netlist, testLib, gen.Delays(d, 11))
	if err != nil {
		t.Fatal(err)
	}

	for tid, tab := range p.Tables {
		wantClass := tab.Class()
		if p.KernelOf[tid] != wantClass {
			t.Errorf("table %s: KernelOf %v, want %v", tab.Cell.Name, p.KernelOf[tid], wantClass)
		}
		if (p.LUTs[tid] != nil) != (wantClass == truthtab.ClassComb1) {
			t.Errorf("table %s: LUT nil-ness disagrees with class %v", tab.Cell.Name, wantClass)
		}
	}

	// Segment coverage and per-level stable order.
	levelOf := make(map[netlist.CellID]int)
	for _, id := range p.Lev.Sequential {
		levelOf[id] = -1
	}
	for lv, gates := range p.Lev.Levels {
		for _, id := range gates {
			levelOf[id] = lv
		}
	}
	seen := make(map[netlist.CellID]bool)
	perLevelOrder := make(map[int][]netlist.CellID)
	for i, seg := range p.Segs {
		if len(seg.Gates) == 0 {
			t.Fatalf("segment %d empty", i)
		}
		for _, id := range seg.Gates {
			if seen[id] {
				t.Fatalf("gate %d in two segments", id)
			}
			seen[id] = true
			if p.Kernel(id) != seg.Kernel {
				t.Errorf("gate %d: class %v in %v segment", id, p.Kernel(id), seg.Kernel)
			}
			if levelOf[id] != seg.Level {
				t.Errorf("gate %d: level %d in level-%d segment", id, levelOf[id], seg.Level)
			}
			perLevelOrder[seg.Level] = append(perLevelOrder[seg.Level], id)
		}
	}
	if len(seen) != p.NumGates() {
		t.Fatalf("segments cover %d of %d gates", len(seen), p.NumGates())
	}
	// Within each bucket the original instance order must be preserved:
	// gates of one class stay in ascending schedule position. Verify per
	// level by filtering the original order per class and comparing.
	levels := append([][]netlist.CellID{p.Lev.Sequential}, p.Lev.Levels...)
	for li, gates := range levels {
		lv := li - 1
		var want []netlist.CellID
		for cls := truthtab.Class(0); cls < truthtab.NumClasses; cls++ {
			for _, id := range gates {
				if p.Kernel(id) == cls {
					want = append(want, id)
				}
			}
		}
		got := perLevelOrder[lv]
		if len(got) != len(want) {
			t.Fatalf("level %d: %d gates in segments, want %d", lv, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("level %d: bucketed order diverges at %d: got gate %d, want %d", lv, i, got[i], want[i])
			}
		}
	}

	// ArcUniform vs brute force.
	for g := 0; g < p.NumGates(); g++ {
		id := netlist.CellID(g)
		ni, no := p.NumIn(id), p.NumOut(id)
		uniform := true
		for o := 0; o < no && uniform; o++ {
			for in := 0; in < ni; in++ {
				if p.Arc(id, o, in) != p.Arc(id, 0, 0) {
					uniform = false
					break
				}
			}
		}
		if p.ArcUniform[g] != uniform {
			t.Errorf("gate %d: ArcUniform %v, brute force %v", g, p.ArcUniform[g], uniform)
		}
	}
}

// TestWithDelaysKernels checks the structural/delay split of the kernel
// arrays: WithDelays shares the classification, LUTs and schedule but
// recomputes ArcUniform against the new annotation.
func TestWithDelaysKernels(t *testing.T) {
	d, err := gen.Build(spec(13))
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(d.Netlist, testLib, gen.Delays(d, 13))
	if err != nil {
		t.Fatal(err)
	}
	q := p.WithDelays(sdf.Uniform(d.Netlist, 50))

	if &q.KernelOf[0] != &p.KernelOf[0] || &q.LUTs[0] != &p.LUTs[0] || &q.Segs[0] != &p.Segs[0] {
		t.Error("WithDelays must share KernelOf/LUTs/Segs")
	}
	// Uniform annotation: every gate with arcs is trivially arc-uniform.
	for g := 0; g < q.NumGates(); g++ {
		if !q.ArcUniform[g] {
			t.Fatalf("gate %d not ArcUniform under a uniform annotation", g)
		}
	}
	if len(p.ArcUniform) > 0 && len(q.ArcUniform) > 0 && &p.ArcUniform[0] == &q.ArcUniform[0] {
		t.Error("WithDelays must not share the ArcUniform backing array")
	}
}

// TestBuildRejectsUnknownCell checks the library-coverage error path.
func TestBuildRejectsUnknownCell(t *testing.T) {
	d, err := gen.Build(spec(2))
	if err != nil {
		t.Fatal(err)
	}
	empty := &truthtab.CompiledLibrary{Tables: map[string]*truthtab.Table{}}
	if _, err := plan.Build(d.Netlist, empty, gen.Delays(d, 2)); err == nil {
		t.Error("plan.Build must reject cell types missing from the library")
	}
}
