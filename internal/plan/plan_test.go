package plan_test

import (
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/plan"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

var testLib = mustCompile()

func mustCompile() *truthtab.CompiledLibrary {
	cl, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		panic(err)
	}
	return cl
}

func spec(seed int64) gen.Spec {
	return gen.Spec{
		Name: "pl", Seed: seed,
		CombGates: 160, FFs: 32, Latches: 6, ScanFFs: 6, ClockGates: 2,
		Depth: 6, DataInputs: 10, Outputs: 6, ClockPeriodPS: 2000,
	}
}

// TestGolden checks that every lowered array round-trips against the
// netlist, library, delays and initial-condition fixpoint it was built from.
func TestGolden(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		d, err := gen.Build(spec(seed))
		if err != nil {
			t.Fatal(err)
		}
		nl := d.Netlist
		delays := gen.Delays(d, seed)
		p, err := plan.Build(nl, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumGates() != len(nl.Instances) || p.NumNets() != len(nl.Nets) {
			t.Fatalf("seed %d: plan shape %d/%d vs netlist %d/%d",
				seed, p.NumGates(), p.NumNets(), len(nl.Instances), len(nl.Nets))
		}

		ic, err := truthtab.ComputeInitialConditions(nl, testLib)
		if err != nil {
			t.Fatal(err)
		}
		for n := range nl.Nets {
			if p.IsPI[n] != nl.Nets[n].IsInput {
				t.Fatalf("seed %d net %d: IsPI mismatch", seed, n)
			}
			if p.NetInit[n] != ic.NetVals[n] {
				t.Fatalf("seed %d net %d: NetInit %v want %v", seed, n, p.NetInit[n], ic.NetVals[n])
			}
		}

		for i := range nl.Instances {
			id := netlist.CellID(i)
			inst := &nl.Instances[i]
			tab := testLib.Tables[inst.Type.Name]
			if p.Table(id) != tab {
				t.Fatalf("seed %d gate %d: interned table differs from library lookup", seed, i)
			}
			ins, outs := p.GateInputs(id), p.GateOutputs(id)
			if len(ins) != len(inst.InNets) || len(outs) != len(inst.OutNets) {
				t.Fatalf("seed %d gate %d: pin slot counts %d/%d want %d/%d",
					seed, i, len(ins), len(outs), len(inst.InNets), len(inst.OutNets))
			}
			for pi, nid := range inst.InNets {
				if ins[pi] != nid {
					t.Fatalf("seed %d gate %d in %d: net %d want %d", seed, i, pi, ins[pi], nid)
				}
				if p.InInit[int(p.InOff[i])+pi] != ic.NetVals[nid] {
					t.Fatalf("seed %d gate %d in %d: InInit mismatch", seed, i, pi)
				}
			}
			for po, nid := range inst.OutNets {
				if outs[po] != nid {
					t.Fatalf("seed %d gate %d out %d: net %d want %d", seed, i, po, outs[po], nid)
				}
			}
			stB := int(p.StateOff[i])
			for si, v := range ic.States[i] {
				if p.StateInit[stB+si] != v {
					t.Fatalf("seed %d gate %d state %d: init mismatch", seed, i, si)
				}
			}
			outB := int(p.OutOff[i])
			for o, v := range ic.Outs[i] {
				if p.OutInit[outB+o] != v {
					t.Fatalf("seed %d gate %d out %d: OutInit mismatch", seed, i, o)
				}
			}

			// Arc delays, minArc, maxArc against the sdf accessors.
			maxArc := int64(0)
			for o := 0; o < len(outs); o++ {
				want := delays.MinArc(id, o)
				if len(ins) == 0 {
					want = 0
				}
				if got := p.MinArc[outB+o]; got != want {
					t.Fatalf("seed %d gate %d out %d: MinArc %d want %d", seed, i, o, got, want)
				}
				for in := 0; in < len(ins); in++ {
					if got, want := p.Arc(id, o, in), delays.Arc(id, o, in); got != want {
						t.Fatalf("seed %d gate %d arc %d->%d: %+v want %+v", seed, i, in, o, got, want)
					}
					if m := delays.Arc(id, o, in).Max(); m > maxArc {
						maxArc = m
					}
				}
			}
			if p.MaxArc[i] != maxArc {
				t.Fatalf("seed %d gate %d: MaxArc %d want %d", seed, i, p.MaxArc[i], maxArc)
			}
		}

		// Fanout CSR round-trips against the netlist.
		for n := range nl.Nets {
			fan := nl.Nets[n].Fanout
			lo, hi := p.FanOff[n], p.FanOff[n+1]
			if int(hi-lo) != len(fan) {
				t.Fatalf("seed %d net %d: fanout CSR len %d want %d", seed, n, hi-lo, len(fan))
			}
			for k, load := range fan {
				if p.FanCell[lo+int32(k)] != load.Cell || p.FanPin[lo+int32(k)] != load.InIdx {
					t.Fatalf("seed %d net %d load %d: CSR (%d,%d) want (%d,%d)",
						seed, n, k, p.FanCell[lo+int32(k)], p.FanPin[lo+int32(k)], load.Cell, load.InIdx)
				}
			}
		}

		if p.Lev.NumCells() != len(nl.Instances) {
			t.Fatalf("seed %d: levelization covers %d cells, want %d", seed, p.Lev.NumCells(), len(nl.Instances))
		}
	}
}

// TestWithDelays checks that re-annotation shares structure and re-derives
// exactly the delay-dependent vectors.
func TestWithDelays(t *testing.T) {
	d, err := gen.Build(spec(5))
	if err != nil {
		t.Fatal(err)
	}
	sdfDelays := gen.Delays(d, 5)
	unitDelays := sdf.Uniform(d.Netlist, 120)
	p, err := plan.Build(d.Netlist, testLib, sdfDelays)
	if err != nil {
		t.Fatal(err)
	}
	q := p.WithDelays(unitDelays)

	// Structural arrays are shared (same backing storage).
	if &q.InNet[0] != &p.InNet[0] || &q.FanCell[0] != &p.FanCell[0] || q.Lev != p.Lev {
		t.Error("WithDelays must share structural arrays")
	}
	if q.Delays != unitDelays {
		t.Error("WithDelays must adopt the new annotation")
	}
	for g := 0; g < q.NumGates(); g++ {
		id := netlist.CellID(g)
		ni, no := q.NumIn(id), q.NumOut(id)
		for o := 0; o < no; o++ {
			want := unitDelays.MinArc(id, o)
			if ni == 0 {
				want = 0
			}
			if got := q.MinArc[int(q.OutOff[g])+o]; got != want {
				t.Fatalf("gate %d out %d: MinArc %d want %d", g, o, got, want)
			}
			for in := 0; in < ni; in++ {
				if q.Arc(id, o, in) != unitDelays.Arc(id, o, in) {
					t.Fatalf("gate %d arc %d->%d not re-lowered", g, in, o)
				}
			}
		}
	}
	// The original plan is untouched.
	for g := 0; g < p.NumGates(); g++ {
		id := netlist.CellID(g)
		for o := 0; o < p.NumOut(id); o++ {
			for in := 0; in < p.NumIn(id); in++ {
				if p.Arc(id, o, in) != sdfDelays.Arc(id, o, in) {
					t.Fatalf("gate %d: WithDelays mutated the source plan", g)
				}
			}
		}
	}
}

// TestBuildRejectsUnknownCell checks the library-coverage error path.
func TestBuildRejectsUnknownCell(t *testing.T) {
	d, err := gen.Build(spec(2))
	if err != nil {
		t.Fatal(err)
	}
	empty := &truthtab.CompiledLibrary{Tables: map[string]*truthtab.Table{}}
	if _, err := plan.Build(d.Netlist, empty, gen.Delays(d, 2)); err == nil {
		t.Error("plan.Build must reject cell types missing from the library")
	}
}
