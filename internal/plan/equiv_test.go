package plan_test

import (
	"fmt"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/netlist"
	"gatesim/internal/partsim"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sim"
)

// TestSharedPlanEquivalence is the cross-simulator property test: ONE plan
// is built per randomized circuit, and every consumer — the stable-time
// engine in all executor modes, the sequential oracle, and the partitioned
// simulator — must commit the identical per-net event stream from it.
func TestSharedPlanEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d, err := gen.Build(spec(seed))
		if err != nil {
			t.Fatal(err)
		}
		delays := gen.Delays(d, seed)
		p, err := plan.Build(d.Netlist, testLib, delays)
		if err != nil {
			t.Fatal(err)
		}
		stim := gen.Stimuli(d, gen.StimSpec{Cycles: 25, ActivityFactor: 0.6, Seed: seed, ScanBurst: 6})

		// Sequential oracle.
		ref, err := refsim.NewFromPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		want := refsim.Collect{}
		rstim := make([]refsim.Stim, len(stim))
		for i, s := range stim {
			rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		if err := ref.Run(rstim, want.Add); err != nil {
			t.Fatal(err)
		}

		// Stable-time engine, every executor mode, same plan.
		for _, run := range []struct {
			label string
			opts  sim.Options
		}{
			{"serial", sim.Options{Mode: sim.ModeSerial}},
			{"parallel", sim.Options{Mode: sim.ModeParallel, Threads: 4}},
			{"manycore", sim.Options{Mode: sim.ModeManycore, Threads: 4}},
		} {
			e, err := sim.NewFromPlan(p, run.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range stim {
				if err := e.Inject(s.Net, s.Time, s.Val); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Finish(); err != nil {
				t.Fatal(err)
			}
			got := map[netlist.NetID][]event.Event{}
			for n := 0; n < p.NumNets(); n++ {
				q := e.Events(netlist.NetID(n))
				for i := q.Start(); i < q.Len(); i++ {
					got[netlist.NetID(n)] = append(got[netlist.NetID(n)], q.MustAt(i))
				}
			}
			diffStreams(t, p, want, got, fmt.Sprintf("seed %d sim/%s", seed, run.label))
		}

		// Partitioned simulator, same plan.
		ps, err := partsim.NewFromPlan(p, partsim.Options{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		pstim := make([]partsim.Stim, len(stim))
		for i, s := range stim {
			pstim[i] = partsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		got := map[netlist.NetID][]event.Event{}
		if err := ps.Run(pstim, func(nid netlist.NetID, ev event.Event) {
			got[nid] = append(got[nid], ev)
		}); err != nil {
			t.Fatal(err)
		}
		diffStreams(t, p, want, got, fmt.Sprintf("seed %d partsim", seed))
	}
}

func diffStreams(t *testing.T, p *plan.Plan, want, got map[netlist.NetID][]event.Event, label string) {
	t.Helper()
	for n := 0; n < p.NumNets(); n++ {
		nid := netlist.NetID(n)
		w, g := want[nid], got[nid]
		if len(w) != len(g) {
			t.Fatalf("%s: net %s: %d events vs %d\nwant %v\ngot  %v",
				label, p.Netlist.Nets[nid].Name, len(w), len(g), w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: net %s event %d: want %+v got %+v",
					label, p.Netlist.Nets[nid].Name, i, w[i], g[i])
			}
		}
	}
}
