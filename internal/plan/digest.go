// Plan content digests: a stable hash over everything plan.Build consumes,
// so a resident server can key a cache of lowered plans by request content.
// Two input sets with equal digests lower to structurally equal plans —
// Build is deterministic and reads nothing outside the hashed inputs — which
// is what lets many concurrent sessions share one cached immutable Plan.
package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"sort"

	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

// DigestKey is the content hash identifying one (netlist, library, delays)
// lowering input set.
type DigestKey [sha256.Size]byte

// String renders the key as lowercase hex.
func (k DigestKey) String() string { return hex.EncodeToString(k[:]) }

// Digest hashes the three inputs of a plan lowering: the netlist structure
// (nets, instances, connectivity, ports), the compiled truth tables of every
// cell type the design instantiates, and the full delay annotation (every
// arc's rise/fall). The hash is canonical — independent of map iteration
// order, pointer identity and source-text formatting — so textually
// different but structurally identical inputs collide on purpose, while any
// semantic change (one arc delay, one connection, one table entry) produces
// a different key.
func Digest(nl *netlist.Netlist, lib *truthtab.CompiledLibrary, delays *sdf.Delays) DigestKey {
	h := sha256.New()

	// Netlist structure. Net and instance order is significant (IDs index
	// every lowered array), so hash in ID order.
	sec(h, "netlist")
	writeStr(h, nl.Name)
	writeInt(h, int64(len(nl.Nets)), int64(len(nl.Instances)))
	for i := range nl.Nets {
		n := &nl.Nets[i]
		writeStr(h, n.Name)
		b := byte(0)
		if n.IsInput {
			b = 1
		}
		h.Write([]byte{b})
	}
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		writeStr(h, inst.Name)
		writeStr(h, inst.Type.Name)
		writeInt(h, int64(len(inst.InNets)), int64(len(inst.OutNets)))
		for _, nid := range inst.InNets {
			writeInt(h, int64(nid))
		}
		for _, nid := range inst.OutNets {
			writeInt(h, int64(nid))
		}
	}
	sec(h, "ports")
	for _, nid := range nl.PortsIn {
		writeInt(h, int64(nid))
	}
	writeInt(h, -1)
	for _, nid := range nl.PortsOut {
		writeInt(h, int64(nid))
	}

	// Library: only the cell types the design uses contribute — the lowered
	// plan depends on nothing else — hashed in sorted name order via each
	// table's canonical serialization.
	sec(h, "library")
	used := make(map[string]*truthtab.Table)
	for i := range nl.Instances {
		name := nl.Instances[i].Type.Name
		if _, ok := used[name]; !ok {
			used[name] = lib.Tables[name]
		}
	}
	names := make([]string, 0, len(used))
	for name := range used {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if t := used[name]; t != nil {
			t.DigestInto(h)
		} else {
			// Uncompiled type: Build would reject this input set; still hash
			// the name so the failure is cached under a stable key.
			writeStr(h, name)
		}
	}

	// Delay annotation: every arc of every instance, in instance/arc order.
	sec(h, "delays")
	for i := range nl.Instances {
		inst := &nl.Instances[i]
		ni, no := len(inst.Type.Inputs), len(inst.Type.Outputs)
		for o := 0; o < no; o++ {
			for in := 0; in < ni; in++ {
				d := delays.Arc(netlist.CellID(i), o, in)
				writeInt(h, d.Rise, d.Fall)
			}
		}
	}

	var k DigestKey
	h.Sum(k[:0])
	return k
}

// sec writes a section marker so adjacent variable-length sections cannot
// alias each other.
func sec(h hash.Hash, name string) {
	h.Write([]byte{0})
	io.WriteString(h, name)
	h.Write([]byte{0})
}

func writeStr(h hash.Hash, s string) {
	writeInt(h, int64(len(s)))
	io.WriteString(h, s)
}

func writeInt(h hash.Hash, vs ...int64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
}
