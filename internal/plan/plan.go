// Package plan lowers a netlist plus its compiled library, delay
// annotation, levelization and initial-condition fixpoint into a flat,
// structure-of-arrays SimPlan that all three simulators construct from.
//
// The lowering runs once per (design, delays) pair and produces:
//
//   - interned truth-table pointers: each distinct cell type used by the
//     design gets a dense table ID, so the hot path never consults the
//     library's string-keyed map;
//   - CSR pin adjacency: per-gate input/output/state slots live in flat
//     arrays addressed by offset slices (InOff/OutOff/StateOff), replacing
//     the per-gate [][] slices each simulator used to allocate;
//   - CSR net fanout: the (cell, pin) loads of every net in two flat arrays
//     addressed by FanOff, replacing pointer-chasing through netlist.Load
//     slices;
//   - flattened arc delays plus the derived per-output MinArc (commit
//     lookahead) and per-gate MaxArc (checkpoint safety) vectors;
//   - the settled pre-time-zero initial conditions as flat per-slot vectors
//     shared verbatim by every simulator, which is what keeps their event
//     streams byte-identical.
//
// Building a Plan is the only O(design) construction cost; engines built
// from an existing Plan allocate a fixed number of arrays, not O(gates)
// slices. WithDelays re-lowers only the delay-derived vectors so harness
// experiments can share one structural lowering across annotations.
package plan

import (
	"fmt"

	"gatesim/internal/levelize"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

// Plan is the flat lowered form of one design under one delay annotation.
// All slices are read-only after Build; simulators may share one Plan
// concurrently.
type Plan struct {
	Netlist *netlist.Netlist
	Lib     *truthtab.CompiledLibrary
	Delays  *sdf.Delays
	Lev     *levelize.Levelization

	// Interned truth tables: Tables[TableOf[g]] is gate g's table.
	Tables  []*truthtab.Table
	TableOf []int32

	// CSR pin layout. Gate g's input slots are [InOff[g], InOff[g+1]),
	// likewise OutOff for outputs and StateOff for internal state.
	InOff    []int32
	OutOff   []int32
	StateOff []int32
	// InNet[s] / OutNet[s] is the net on slot s (-1 = unconnected output).
	InNet  []netlist.NetID
	OutNet []netlist.NetID

	// CSR net fanout: net n's loads are FanCell/FanPin[FanOff[n]:FanOff[n+1]].
	FanOff  []int32
	FanCell []netlist.CellID
	FanPin  []int32

	// Flattened arc delays: Arc(g, o, i) = Arcs[ArcOff[g] + o*numIn(g) + i].
	ArcOff []int32
	Arcs   []sdf.Delay
	// MinArc[s] is the minimum arc delay into output slot s (OutOff layout;
	// 0 for gates with no inputs). MaxArc[g] is the gate's largest arc max.
	MinArc []int64
	MaxArc []int64

	// Kernel classification. KernelOf[tid] is the kernel class of interned
	// table tid — ClassComb1 only when a packed LUT was built, so consumers
	// may index LUTs unconditionally on that class. ArcUniform[g] reports
	// that every arc delay of gate g is identical, letting kernels replace
	// the per-changed-input minimum scan with Arcs[ArcOff[g]] (delay-derived:
	// recomputed by WithDelays). Segs is the kernel-bucketed sweep schedule
	// shared by the engines.
	KernelOf   []truthtab.Class
	LUTs       []*truthtab.PackedLUT
	ArcUniform []bool
	Segs       []Segment

	// Compiled segment scripts: Scripts[i] is Segs[i] lowered into a flat
	// instruction array, BitOf/SegOf map each gate to its dirty bit and
	// owning script, and ScriptWords sizes the engine's dirty bitset.
	// Delay-derived (instructions bake arc delays in): rebuilt by WithDelays.
	Scripts     []Script
	BitOf       []int32
	SegOf       []int32
	ScriptWords int

	// FusedLevels counts combinational levels whose segments were folded
	// into the preceding barrier group at plan time (low-population levels
	// need no barrier of their own; see lowerSegments).
	FusedLevels int

	// Frontier plane lowering (structural, shared by WithDelays): the
	// net→reader-cloud structure the engine's frontier pass publishes
	// watermark advances through, one commit per net instead of one walk
	// per reader visit.
	//
	// FrontEligible[g] marks gates whose quiet watermark advance the engine
	// may compute without a scheduled visit: exactly the ClassComb1 gates —
	// single output, zero state, no edge-sensitive inputs, packed LUT built —
	// whose idle walk (idleComb1 and its script/lane twins) is a pure
	// function of input watermarks and soft state. NetLevel[n] is the net's
	// topological depth for the frontier drain order: 0 for primary inputs,
	// undriven nets and outputs of sequential-phase gates, driver's
	// combinational level + 1 otherwise, so an eligible reader's output net
	// is always at a strictly higher level than any of its input nets.
	// NumNetLevels bounds the values in NetLevel.
	//
	// NetFront[n] classifies net n's readers for the watermark-only mark
	// path: FrontNetNone nets (no eligible reader, or no readers) fall
	// straight through to the baseline mark loop without touching frontier
	// state; FrontNetAll nets have only eligible readers, so a frontier
	// commit needs no fallback scan; FrontNetMixed nets additionally walk
	// their full fanout at drain time to dirty-mark the ineligible readers.
	// The eligible reader cloud itself is a planned unit:
	// FrontCell[FrontOff[n]:FrontOff[n+1]] lists net n's eligible readers,
	// so a commit iterates exactly the cloud, not the whole fanout.
	//
	// FrontLevel[g] is the eligible gate's walk level — its (single) output
	// net's NetLevel — pre-gathered so the staging path pays one load
	// instead of three. Zero for ineligible gates (never staged).
	FrontEligible []bool
	FrontLevel    []int32
	NetFront      []uint8
	FrontOff      []int32
	FrontCell     []netlist.CellID
	NetLevel      []int32
	NumNetLevels  int

	// Initial-condition fixpoint, flattened to the slot layouts above.
	NetInit   []logic.Value // per net
	InInit    []logic.Value // per input slot
	StateInit []logic.Value // per state slot
	OutInit   []logic.Value // per output slot (semantic pre-delay values)

	// IsPI[n] marks primary-input nets.
	IsPI []bool

	// Aggregate shape, precomputed so consumers avoid re-walking the design.
	Pins       int
	MaxInputs  int
	MaxOutputs int
	MaxStates  int
}

// Segment is one kernel-homogeneous slice of the sweep schedule. Segments
// run in order: the sequential phase (Level -1) first, then each
// combinational level, each split into per-class buckets in Class order.
// Barrier marks the segments that must wait for every earlier segment to
// complete — the first bucket of each phase/level, except for
// low-population levels fused into the preceding group (see lowerSegments
// and Plan.FusedLevels). Buckets of one level
// never share output nets or state, so they need no barrier between them;
// the stable instance order inside each bucket keeps committed event
// streams byte-identical with the unbucketed schedule (fixpoint sweeps are
// confluent under any within-level visit order).
type Segment struct {
	Gates   []netlist.CellID
	Kernel  truthtab.Class
	Level   int // -1 for the sequential phase
	Barrier bool
}

// Build validates and lowers the design. The compiled library must cover
// every cell type; delays must come from sdf.Apply/sdf.Uniform on the same
// netlist.
func Build(nl *netlist.Netlist, lib *truthtab.CompiledLibrary, delays *sdf.Delays) (*Plan, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	lv, err := levelize.Compute(nl)
	if err != nil {
		return nil, err
	}
	ic, err := truthtab.ComputeInitialConditions(nl, lib)
	if err != nil {
		return nil, err
	}

	p := &Plan{Netlist: nl, Lib: lib, Delays: delays, Lev: lv}
	n := len(nl.Instances)

	// Intern tables and size the slot arrays.
	tableID := make(map[*truthtab.Table]int32, 16)
	p.TableOf = make([]int32, n)
	p.InOff = make([]int32, n+1)
	p.OutOff = make([]int32, n+1)
	p.StateOff = make([]int32, n+1)
	p.ArcOff = make([]int32, n+1)
	totalIn, totalOut, totalState, totalArc := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		inst := &nl.Instances[i]
		tab := lib.Tables[inst.Type.Name]
		if tab == nil {
			return nil, fmt.Errorf("plan: cell type %s not in compiled library", inst.Type.Name)
		}
		id, ok := tableID[tab]
		if !ok {
			id = int32(len(p.Tables))
			tableID[tab] = id
			p.Tables = append(p.Tables, tab)
			if tab.NumInputs > p.MaxInputs {
				p.MaxInputs = tab.NumInputs
			}
			if tab.NumOutputs > p.MaxOutputs {
				p.MaxOutputs = tab.NumOutputs
			}
			if tab.NumStates > p.MaxStates {
				p.MaxStates = tab.NumStates
			}
		}
		p.TableOf[i] = id
		p.InOff[i] = int32(totalIn)
		p.OutOff[i] = int32(totalOut)
		p.StateOff[i] = int32(totalState)
		p.ArcOff[i] = int32(totalArc)
		totalIn += tab.NumInputs
		totalOut += tab.NumOutputs
		totalState += tab.NumStates
		totalArc += tab.NumInputs * tab.NumOutputs
	}
	p.InOff[n] = int32(totalIn)
	p.OutOff[n] = int32(totalOut)
	p.StateOff[n] = int32(totalState)
	p.ArcOff[n] = int32(totalArc)
	p.Pins = nl.Stats().Pins

	// Pin slots and flattened initial conditions.
	p.InNet = make([]netlist.NetID, totalIn)
	p.OutNet = make([]netlist.NetID, totalOut)
	p.InInit = make([]logic.Value, totalIn)
	p.StateInit = make([]logic.Value, totalState)
	p.OutInit = make([]logic.Value, totalOut)
	for i := 0; i < n; i++ {
		inst := &nl.Instances[i]
		inB, outB, stB := p.InOff[i], p.OutOff[i], p.StateOff[i]
		for pi, nid := range inst.InNets {
			p.InNet[inB+int32(pi)] = nid
			p.InInit[inB+int32(pi)] = ic.NetVals[nid]
		}
		copy(p.OutNet[outB:p.OutOff[i+1]], inst.OutNets)
		copy(p.StateInit[stB:p.StateOff[i+1]], ic.States[i])
		copy(p.OutInit[outB:p.OutOff[i+1]], ic.Outs[i])
	}
	p.NetInit = make([]logic.Value, len(ic.NetVals))
	copy(p.NetInit, ic.NetVals)

	// Net fanout CSR and PI marks.
	nn := len(nl.Nets)
	p.FanOff = make([]int32, nn+1)
	p.IsPI = make([]bool, nn)
	totalFan := 0
	for nid := range nl.Nets {
		p.FanOff[nid] = int32(totalFan)
		totalFan += len(nl.Nets[nid].Fanout)
		p.IsPI[nid] = nl.Nets[nid].IsInput
	}
	p.FanOff[nn] = int32(totalFan)
	p.FanCell = make([]netlist.CellID, totalFan)
	p.FanPin = make([]int32, totalFan)
	for nid := range nl.Nets {
		base := p.FanOff[nid]
		for k, load := range nl.Nets[nid].Fanout {
			p.FanCell[base+int32(k)] = load.Cell
			p.FanPin[base+int32(k)] = load.InIdx
		}
	}

	// Kernel classification is per interned table; a ClassComb1 verdict is
	// only kept when the packed LUT actually materialized.
	p.KernelOf = make([]truthtab.Class, len(p.Tables))
	p.LUTs = make([]*truthtab.PackedLUT, len(p.Tables))
	for i, tab := range p.Tables {
		if lut := tab.PackLUT(); lut != nil {
			p.KernelOf[i] = truthtab.ClassComb1
			p.LUTs[i] = lut
		}
	}
	p.lowerSegments()
	p.lowerFrontier()

	p.lowerDelays(delays)
	return p, nil
}

// lowerFrontier precomputes the frontier-plane vectors: per-gate
// eligibility (the kernel-classification verdict widened to a dense bool so
// the mark path pays one byte load per reader), the per-net reader-cloud
// CSR a frontier commit iterates, and the per-net topological level the
// frontier pass drains in. All structural — a function of the netlist and
// levelization only — so WithDelays shares them.
func (p *Plan) lowerFrontier() {
	n := p.NumGates()
	p.FrontEligible = make([]bool, n)
	for g := 0; g < n; g++ {
		p.FrontEligible[g] = p.KernelOf[p.TableOf[g]] == truthtab.ClassComb1
	}
	nets := len(p.Netlist.Nets)
	p.NetFront = make([]uint8, nets)
	p.FrontOff = make([]int32, nets+1)
	eligible := 0
	for nid := 0; nid < nets; nid++ {
		all, any := true, false
		for k := p.FanOff[nid]; k < p.FanOff[nid+1]; k++ {
			if p.FrontEligible[p.FanCell[k]] {
				any = true
				eligible++
			} else {
				all = false
			}
		}
		switch {
		case !any:
			p.NetFront[nid] = FrontNetNone
		case all:
			p.NetFront[nid] = FrontNetAll
		default:
			p.NetFront[nid] = FrontNetMixed
		}
	}
	p.FrontCell = make([]netlist.CellID, 0, eligible)
	for nid := 0; nid < nets; nid++ {
		p.FrontOff[nid] = int32(len(p.FrontCell))
		if p.NetFront[nid] == FrontNetNone {
			continue
		}
		for k := p.FanOff[nid]; k < p.FanOff[nid+1]; k++ {
			if c := p.FanCell[k]; p.FrontEligible[c] {
				p.FrontCell = append(p.FrontCell, c)
			}
		}
	}
	p.FrontOff[nets] = int32(len(p.FrontCell))
	p.NetLevel = make([]int32, nets)
	for lv, gates := range p.Lev.Levels {
		for _, id := range gates {
			for _, nid := range p.GateOutputs(id) {
				if nid >= 0 {
					p.NetLevel[nid] = int32(lv) + 1
				}
			}
		}
	}
	p.NumNetLevels = len(p.Lev.Levels) + 1
	p.FrontLevel = make([]int32, n)
	for g := 0; g < n; g++ {
		if p.FrontEligible[g] {
			p.FrontLevel[g] = p.NetLevel[p.OutNet[p.OutOff[g]]]
		}
	}
}

// NetFront classes (see the field doc).
const (
	FrontNetNone uint8 = iota
	FrontNetMixed
	FrontNetAll
)

// fuseMaxGates caps the population of a fused barrier group: a level is
// folded into the preceding group only while the whole group stays within
// one worker claim chunk, so dropping the barrier can't cost parallelism —
// the group was never going to be split across workers productively anyway.
const fuseMaxGates = 64

// lowerSegments buckets the levelization's sweep segments by kernel class:
// one backing array in schedule order, sub-sliced per (level, class) run.
// Within a bucket the original instance order is kept, so each bucket —
// and the concatenation of a level's buckets — is a stable reordering of
// the level.
//
// A second pass fuses adjacent low-population combinational levels into one
// barrier group by clearing the Barrier flag on a level whose gates fit,
// together with the running group, under fuseMaxGates. Dropping the barrier
// only relaxes ordering between levels: a gate that scans before its
// predecessor finishes either sees the published events (queues support one
// writer with concurrent readers) or is re-marked dirty by the write and
// revisited next sweep — the fixpoint is confluent, so committed streams
// are unchanged while shallow levels stop paying a barrier each. The
// sequential phase always keeps its barrier, and level 0 is never fused
// into it.
func (p *Plan) lowerSegments() {
	total := len(p.Lev.Sequential)
	for _, lv := range p.Lev.Levels {
		total += len(lv)
	}
	backing := make([]netlist.CellID, 0, total)
	p.Segs = make([]Segment, 0, 1+len(p.Lev.Levels))
	addLevel := func(level int, gates []netlist.CellID) {
		first := true
		for cls := truthtab.Class(0); cls < truthtab.NumClasses; cls++ {
			start := len(backing)
			for _, id := range gates {
				if p.KernelOf[p.TableOf[id]] == cls {
					backing = append(backing, id)
				}
			}
			if len(backing) == start {
				continue
			}
			p.Segs = append(p.Segs, Segment{
				Gates:   backing[start:len(backing):len(backing)],
				Kernel:  cls,
				Level:   level,
				Barrier: first,
			})
			first = false
		}
	}
	addLevel(-1, p.Lev.Sequential)
	for lv, gates := range p.Lev.Levels {
		addLevel(lv, gates)
	}

	// Fusion pass: pop tracks the running barrier-group population.
	pop := 0
	for i := range p.Segs {
		s := &p.Segs[i]
		if s.Barrier {
			if s.Level >= 1 && pop+len(p.Lev.Levels[s.Level]) <= fuseMaxGates {
				s.Barrier = false
				p.FusedLevels++
			} else {
				pop = 0
			}
		}
		pop += len(s.Gates)
	}
}

// lowerDelays fills the delay-derived vectors from the annotation.
func (p *Plan) lowerDelays(delays *sdf.Delays) {
	n := p.NumGates()
	p.Delays = delays
	p.Arcs = make([]sdf.Delay, p.ArcOff[n])
	p.MinArc = make([]int64, len(p.OutNet))
	p.MaxArc = make([]int64, n)
	p.ArcUniform = make([]bool, n)
	for g := 0; g < n; g++ {
		id := netlist.CellID(g)
		ni := int(p.InOff[g+1] - p.InOff[g])
		no := int(p.OutOff[g+1] - p.OutOff[g])
		arcB := int(p.ArcOff[g])
		outB := int(p.OutOff[g])
		maxArc := int64(0)
		for o := 0; o < no; o++ {
			minArc := int64(0)
			if ni > 0 {
				minArc = delays.MinArc(id, o)
			}
			p.MinArc[outB+o] = minArc
			for i := 0; i < ni; i++ {
				d := delays.Arc(id, o, i)
				p.Arcs[arcB+o*ni+i] = d
				if m := d.Max(); m > maxArc {
					maxArc = m
				}
			}
		}
		p.MaxArc[g] = maxArc
		arcs := p.Arcs[arcB : arcB+ni*no]
		uniform := true
		for i := 1; i < len(arcs); i++ {
			if arcs[i] != arcs[0] {
				uniform = false
				break
			}
		}
		p.ArcUniform[g] = uniform
	}
	p.lowerScripts()
}

// WithDelays returns a plan sharing every structural array with p but
// lowered against a different delay annotation (which must target the same
// netlist). Harness experiments use this to compare SDF vs unit delays
// without re-running levelization, interning or the IC fixpoint.
func (p *Plan) WithDelays(delays *sdf.Delays) *Plan {
	q := *p
	q.lowerDelays(delays)
	return &q
}

// NumGates returns the instance count.
func (p *Plan) NumGates() int { return len(p.TableOf) }

// NumNets returns the net count.
func (p *Plan) NumNets() int { return len(p.NetInit) }

// Table returns gate g's interned truth table.
func (p *Plan) Table(g netlist.CellID) *truthtab.Table { return p.Tables[p.TableOf[g]] }

// Kernel returns gate g's kernel class.
func (p *Plan) Kernel(g netlist.CellID) truthtab.Class { return p.KernelOf[p.TableOf[g]] }

// NumIn returns gate g's input count.
func (p *Plan) NumIn(g netlist.CellID) int { return int(p.InOff[g+1] - p.InOff[g]) }

// NumOut returns gate g's output count.
func (p *Plan) NumOut(g netlist.CellID) int { return int(p.OutOff[g+1] - p.OutOff[g]) }

// GateInputs returns gate g's input nets (shared storage; read-only).
func (p *Plan) GateInputs(g netlist.CellID) []netlist.NetID {
	return p.InNet[p.InOff[g]:p.InOff[g+1]]
}

// GateOutputs returns gate g's output nets (shared storage; read-only;
// -1 entries are unconnected).
func (p *Plan) GateOutputs(g netlist.CellID) []netlist.NetID {
	return p.OutNet[p.OutOff[g]:p.OutOff[g+1]]
}

// Arc returns the (in -> out) delay of gate g from the flattened arcs.
func (p *Plan) Arc(g netlist.CellID, out, in int) sdf.Delay {
	ni := int(p.InOff[g+1] - p.InOff[g])
	return p.Arcs[int(p.ArcOff[g])+out*ni+in]
}
