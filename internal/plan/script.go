package plan

import (
	"gatesim/internal/netlist"
	"gatesim/internal/truthtab"
)

// Script is the compiled form of one sweep segment: the segment's gates
// lowered into a flat instruction array replayed by a tight per-kernel loop
// in the executor, with no per-gate plan lookups on the hot path. Scripts
// parallel Segs one-to-one (same gates, order, level and barrier), so the
// script schedule is a drop-in replacement for the interpreted one.
//
// Each script owns a word-aligned range of the plan-wide dirty bitset
// starting at BitOff: op i's dirty bit is BitOff+i, so a sweep tests and
// clears dirtiness 64 gates at a time (one atomic swap per word) instead of
// one flag load per gate, and a clean segment costs a single counter load.
type Script struct {
	Ops     []ScriptOp
	Kernel  truthtab.Class
	Level   int // -1 for the sequential phase
	Barrier bool
	BitOff  int32 // first dirty-bit index; always a multiple of 64
}

// Words returns the number of dirty-bitset words the script spans.
func (s *Script) Words() int { return (len(s.Ops) + 63) / 64 }

// ScriptOp is one flat instruction: every plan-derived operand a kernel
// visit needs, gathered at lowering time. Comb1 scripts carry the full
// operand set; other classes dispatch through the generic interpreter and
// use only Gate.
type ScriptOp struct {
	Gate    netlist.CellID
	InBase  int32 // first input slot (InOff layout)
	NIn     int32
	OutSlot int32 // the single output slot (comb1 only)
	ArcBase int32 // first flattened arc (ArcOff layout)
	OutNet  netlist.NetID
	LUT     *truthtab.PackedLUT
	MinArc  int64 // commit lookahead of the output slot
	// Delay is the uniform-arc transition delay indexed directly by the
	// settled new output value (V0..VZ = 0..3): Fall, Rise, Max, Max —
	// exactly sched.DelayFor's verdicts, precomputed so the scheduling
	// branch collapses to one indexed load. Valid only when Uniform.
	Delay   [4]int64
	Uniform bool
}

// lowerScripts compiles Segs into Scripts and lays out the dirty bitset:
// BitOf/SegOf map each gate to its bit and owning script, ScriptWords sizes
// the bitset. Arc delays are baked into the instructions, so the whole
// lowering is delay-derived and re-run by WithDelays; the layout is a pure
// function of Segs, which WithDelays shares.
func (p *Plan) lowerScripts() {
	n := p.NumGates()
	p.BitOf = make([]int32, n)
	p.SegOf = make([]int32, n)
	p.Scripts = make([]Script, len(p.Segs))
	bit := int32(0)
	for si := range p.Segs {
		seg := &p.Segs[si]
		s := &p.Scripts[si]
		s.Kernel = seg.Kernel
		s.Level = seg.Level
		s.Barrier = seg.Barrier
		s.BitOff = bit
		s.Ops = make([]ScriptOp, len(seg.Gates))
		for k, id := range seg.Gates {
			p.BitOf[id] = bit + int32(k)
			p.SegOf[id] = int32(si)
			op := &s.Ops[k]
			op.Gate = id
			if seg.Kernel != truthtab.ClassComb1 {
				continue
			}
			op.InBase = p.InOff[id]
			op.NIn = p.InOff[id+1] - p.InOff[id]
			op.OutSlot = p.OutOff[id]
			op.ArcBase = p.ArcOff[id]
			op.OutNet = p.OutNet[op.OutSlot]
			op.LUT = p.LUTs[p.TableOf[id]]
			op.MinArc = p.MinArc[op.OutSlot]
			op.Uniform = p.ArcUniform[id]
			if op.Uniform && op.NIn > 0 {
				d := p.Arcs[op.ArcBase]
				op.Delay[0] = d.Fall // DelayFor toward V0
				op.Delay[1] = d.Rise // toward V1
				op.Delay[2] = d.Max()
				op.Delay[3] = d.Max()
			}
		}
		// Word-align the next script's range so a swapped word never spans
		// two segments.
		bit += int32(s.Words()) * 64
	}
	p.ScriptWords = int(bit) / 64
}
