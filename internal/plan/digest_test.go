package plan_test

import (
	"reflect"
	"regexp"
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/plan"
	"gatesim/internal/sdf"
	"gatesim/internal/truthtab"
)

// digestFixture builds a design once and returns independently parsed
// (library, delays) pairs from the same SDF text, so equal digests cannot be
// explained by shared pointers.
func digestFixture(t *testing.T) (*gen.Design, string) {
	t.Helper()
	d, err := gen.Build(spec(11))
	if err != nil {
		t.Fatal(err)
	}
	return d, gen.SDFText(d, 5)
}

func applySDF(t *testing.T, d *gen.Design, text string) (*truthtab.CompiledLibrary, *sdf.Delays) {
	t.Helper()
	cl, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	delays, err := sdf.Apply(f, d.Netlist, sdf.Delay{Rise: 1, Fall: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cl, delays
}

// TestDigestEqualImpliesStructuralEquality: the same sources parsed twice
// through fresh library compilations and SDF parses must digest identically,
// and the plans they lower to must be structurally equal vector-for-vector.
func TestDigestEqualImpliesStructuralEquality(t *testing.T) {
	d, text := digestFixture(t)
	cl1, del1 := applySDF(t, d, text)
	cl2, del2 := applySDF(t, d, text)
	if cl1 == cl2 || del1 == del2 {
		t.Fatal("fixture must produce independent objects")
	}

	k1 := plan.Digest(d.Netlist, cl1, del1)
	k2 := plan.Digest(d.Netlist, cl2, del2)
	if k1 != k2 {
		t.Fatalf("digests of identical inputs differ: %s vs %s", k1, k2)
	}
	if len(k1.String()) != 64 {
		t.Fatalf("DigestKey.String() = %q, want 64 hex chars", k1)
	}

	p1, err := plan.Build(d.Netlist, cl1, del1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan.Build(d.Netlist, cl2, del2)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equality over the lowered vectors the engines actually
	// index. Table/LUT pointers differ between compilations, so compare the
	// value-typed arrays.
	check := func(name string, a, b any) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("plans differ structurally in %s", name)
		}
	}
	check("TableOf", p1.TableOf, p2.TableOf)
	check("InOff", p1.InOff, p2.InOff)
	check("OutOff", p1.OutOff, p2.OutOff)
	check("StateOff", p1.StateOff, p2.StateOff)
	check("InNet", p1.InNet, p2.InNet)
	check("OutNet", p1.OutNet, p2.OutNet)
	check("FanOff", p1.FanOff, p2.FanOff)
	check("FanCell", p1.FanCell, p2.FanCell)
	check("FanPin", p1.FanPin, p2.FanPin)
	check("ArcOff", p1.ArcOff, p2.ArcOff)
	check("Arcs", p1.Arcs, p2.Arcs)
	check("MinArc", p1.MinArc, p2.MinArc)
	check("MaxArc", p1.MaxArc, p2.MaxArc)
	check("KernelOf", p1.KernelOf, p2.KernelOf)
	check("ArcUniform", p1.ArcUniform, p2.ArcUniform)
	check("Segs", p1.Segs, p2.Segs)
	check("BitOf", p1.BitOf, p2.BitOf)
	check("SegOf", p1.SegOf, p2.SegOf)
	check("NetInit", p1.NetInit, p2.NetInit)
	check("InInit", p1.InInit, p2.InInit)
	check("StateInit", p1.StateInit, p2.StateInit)
	check("OutInit", p1.OutInit, p2.OutInit)
	check("FrontEligible", p1.FrontEligible, p2.FrontEligible)
	check("FrontLevel", p1.FrontLevel, p2.FrontLevel)
	check("NetFront", p1.NetFront, p2.NetFront)
	check("FrontOff", p1.FrontOff, p2.FrontOff)
	check("FrontCell", p1.FrontCell, p2.FrontCell)
	check("IsPI", p1.IsPI, p2.IsPI)
}

// TestDigestOneByteSDFChange: flipping a single digit of one IOPATH delay in
// the SDF text must change the digest.
func TestDigestOneByteSDFChange(t *testing.T) {
	d, text := digestFixture(t)
	cl, del := applySDF(t, d, text)
	base := plan.Digest(d.Netlist, cl, del)

	// Locate the first parenthesized integer — an IOPATH delay value — and
	// flip its leading digit.
	loc := regexp.MustCompile(`\((\d+)\)`).FindStringSubmatchIndex(text)
	if loc == nil {
		t.Fatal("no delay literal found in generated SDF")
	}
	b := []byte(text)
	i := loc[2]
	if b[i] == '9' {
		b[i] = '8'
	} else {
		b[i]++
	}
	mutated := string(b)
	if mutated == text {
		t.Fatal("mutation did not change the text")
	}

	_, del2 := applySDF(t, d, mutated)
	if got := plan.Digest(d.Netlist, cl, del2); got == base {
		t.Fatalf("digest unchanged after one-byte SDF mutation: %s", got)
	}
}

// TestDigestNetlistSensitivity: a different design must digest differently
// even under identical default delays.
func TestDigestNetlistSensitivity(t *testing.T) {
	d1, err := gen.Build(spec(11))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := gen.Build(spec(12))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		t.Fatal(err)
	}
	u1 := sdf.Uniform(d1.Netlist, 10)
	u2 := sdf.Uniform(d2.Netlist, 10)
	if plan.Digest(d1.Netlist, cl, u1) == plan.Digest(d2.Netlist, cl, u2) {
		t.Fatal("different netlists digested identically")
	}
}
