package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/sim"
)

// checkNoLeak polls the goroutine count back to the baseline. Engine and
// pool Close join their workers synchronously, but unrelated runtime
// goroutines wind down asynchronously, so poll instead of sampling once.
func checkNoLeak(t *testing.T, before int, label string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%s: %d goroutines, started with %d", label, runtime.NumGoroutine(), before)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosConcurrentSessions is the acceptance scenario: ten concurrent
// sessions over two shared plans, gate faults injected into two of them.
//
//   - session 2 takes a one-shot gate panic mid-run and must recover via
//     snapshot restore-and-retry, its stream still byte-identical to refsim;
//   - session 3 takes a persistent gate panic with checkpoints disabled and
//     must fail with a structured error — poisoning only its own engine;
//   - the eight untouched sessions (mixed serial/parallel) must stream
//     byte-identical to refsim;
//   - the plan cache must serve all ten sessions from exactly two lowerings;
//   - drain must shut the server down with zero leaked goroutines.
//
// Run under -race via check.sh.
func TestChaosConcurrentSessions(t *testing.T) {
	force4Procs(t)
	before := runtime.NumGoroutine()

	// Fault plumbing, keyed by the server's session sequence numbers. The
	// probe (seq 1) runs alone first and counts gate visits, so the one-shot
	// fault for seq 2 can be planted deterministically mid-run — well after
	// the first checkpoint, well before the end.
	var probeVisits, recoverCount, persistCount atomic.Int64
	var recoverAt atomic.Int64 // 0 = disarmed
	hooks := func(seq int64) (func(netlist.CellID), func(int)) {
		switch seq {
		case 1:
			return func(netlist.CellID) { probeVisits.Add(1) }, nil
		case 2:
			return func(netlist.CellID) {
				if n, at := recoverCount.Add(1), recoverAt.Load(); at > 0 && n == at {
					panic("chaos: one-shot gate fault")
				}
			}, nil
		case 3:
			return func(netlist.CellID) {
				if persistCount.Add(1) >= 50 {
					panic("chaos: persistent gate fault")
				}
			}, nil
		}
		return nil, nil
	}

	reg := obs.NewRegistry()
	sv := NewServer(Config{Registry: reg, DrainTimeout: 5 * time.Second, SessionHooks: hooks})

	reqA := testReq("aes128", 11)
	reqA.Cycles = 30
	reqA.Mode = "serial"
	reqA.SnapshotEverySlices = 1
	reqA.MaxRetries = 2
	reqB := testReq("blabla", 7)
	reqB.Cycles = 30
	reqB.Mode = "serial"
	reqB.SnapshotEverySlices = -1 // no checkpoints: a panic is unrecoverable

	// Probe: same request as the recovering session, counting visits.
	probeCol := newCollector()
	probe, err := sv.StartSession(context.Background(), reqA, nil, probeCol.sink)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	wantA := refStream(t, probe.cp, reqA)
	diffEvents(t, "probe vs refsim", wantA, probeCol.events)
	if probeVisits.Load() < 100 {
		t.Fatalf("probe visits = %d, too few to plant a mid-run fault", probeVisits.Load())
	}
	recoverAt.Store(probeVisits.Load() / 2)

	type result struct {
		s   *Session
		err error
	}

	// Session 2: one-shot fault, must recover from its slice-1 checkpoint.
	admit2 := make(chan *Session, 1)
	res2 := make(chan result, 1)
	col2 := newCollector()
	go func() {
		s, err := sv.StartSession(context.Background(), reqA, func(s *Session) { admit2 <- s }, col2.sink)
		res2 <- result{s, err}
	}()
	s2 := <-admit2
	if s2.ID != "s2" {
		t.Fatalf("fault session got ID %s, want s2", s2.ID)
	}

	// Session 3: persistent fault, checkpoints disabled.
	admit3 := make(chan *Session, 1)
	res3 := make(chan result, 1)
	go func() {
		s, err := sv.StartSession(context.Background(), reqB, func(s *Session) { admit3 <- s }, nil)
		res3 <- result{s, err}
	}()
	s3 := <-admit3
	if s3.ID != "s3" {
		t.Fatalf("persistent-fault session got ID %s, want s3", s3.ID)
	}

	// Eight untouched sessions over the same two plans, mixed engine modes.
	clean := make([]result, 8)
	cols := make([]*collector, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		req := reqA
		if i%2 == 1 {
			req = reqB
		}
		if i%4 >= 2 {
			r := *req // parallel variant of the same stimulus
			r.Mode = "parallel"
			r.Threads = 2
			r.BatchThreshold = 1
			req = &r
		}
		cols[i] = newCollector()
		wg.Add(1)
		go func(i int, req *SessionRequest) {
			defer wg.Done()
			s, err := sv.StartSession(context.Background(), req, nil, cols[i].sink)
			clean[i] = result{s, err}
		}(i, req)
	}
	wg.Wait()
	r2, r3 := <-res2, <-res3

	// Faulted session 2: recovered, stream intact.
	if r2.err != nil {
		t.Fatalf("recovering session failed: %v", r2.err)
	}
	if r2.s.State() != StateDone {
		t.Errorf("recovering session state = %v, want done", r2.s.State())
	}
	if r2.s.retries < 1 {
		t.Errorf("recovering session retries = %d, want >= 1", r2.s.retries)
	}
	diffEvents(t, "recovered session vs refsim", wantA, col2.events)

	// Faulted session 3: structured terminal error, only its engine died.
	if r3.err == nil {
		t.Fatal("persistent-fault session returned nil error")
	}
	if !errors.Is(r3.err, sim.ErrPoisoned) {
		t.Errorf("persistent fault err = %v, want ErrPoisoned", r3.err)
	}
	var se *sim.SimError
	if !errors.As(r3.err, &se) || se.Panic == nil {
		t.Errorf("persistent fault err = %v, want *sim.SimError with panic info", r3.err)
	}
	if r3.s.State() != StateFailed {
		t.Errorf("persistent-fault session state = %v, want failed", r3.s.State())
	}

	// Untouched sessions: all done, byte-identical to refsim.
	wantB := refStream(t, r3.s.cp, reqB)
	for i, r := range clean {
		if r.err != nil {
			t.Fatalf("clean session %d: %v", i, r.err)
		}
		if r.s.State() != StateDone {
			t.Errorf("clean session %d state = %v, want done", i, r.s.State())
		}
		want := wantA
		if i%2 == 1 {
			want = wantB
		}
		diffEvents(t, "clean session "+r.s.ID, want, cols[i].events)
	}

	// Plan cache: eleven sessions, two lowerings, everything else hits.
	if got := reg.Counter("serve.lowerings").Load(); got != 2 {
		t.Errorf("lowerings = %d, want 2", got)
	}
	if got := reg.Counter("serve.cache_hits").Load(); got != 9 {
		t.Errorf("cache hits = %d, want 9", got)
	}
	if got := reg.Counter("serve.sessions_poisoned").Load(); got < 2 {
		t.Errorf("poisoned sessions = %d, want >= 2", got)
	}
	if got := reg.Counter("serve.sessions_retried").Load(); got < 1 {
		t.Errorf("session retries = %d, want >= 1", got)
	}

	// Drain: no new arrivals, everything unwinds, no goroutines left.
	if err := sv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := sv.StartSession(context.Background(), reqA, nil, nil); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain StartSession: %v, want ErrDraining", err)
	}
	checkNoLeak(t, before, "after drain")
}

// TestDrainCancelsInflight verifies a drain past its timeout cancels the
// stragglers instead of hanging, and nothing leaks.
func TestDrainCancelsInflight(t *testing.T) {
	before := runtime.NumGoroutine()
	sv := NewServer(Config{Registry: obs.NewRegistry(), DrainTimeout: 50 * time.Millisecond})

	req := testReq("aes128", 3)
	req.Cycles = 100000 // far more work than the drain window allows
	admit := make(chan *Session, 1)
	res := make(chan error, 1)
	go func() {
		_, err := sv.StartSession(context.Background(), req, func(s *Session) { admit <- s }, nil)
		res <- err
	}()
	s := <-admit

	if err := sv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	err := <-res
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled session err = %v, want context.Canceled", err)
	}
	if s.State() != StateCanceled {
		t.Errorf("state = %v, want canceled", s.State())
	}
	checkNoLeak(t, before, "after forced drain")
}
