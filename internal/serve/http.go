package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"gatesim/internal/event"
	"gatesim/internal/lane"
	"gatesim/internal/netlist"
	"gatesim/internal/sim"
)

// The HTTP surface streams sessions as NDJSON: one header line, one line
// per committed watched event, and one terminal line. Admission rejections
// map to 429 + Retry-After (or 503 while draining) so well-behaved clients
// back off instead of hammering a saturated server.
//
//	POST /v1/sessions               run a session (body: SessionRequest JSON)
//	GET  /v1/sessions               list session IDs
//	GET  /v1/sessions/{id}          session status JSON
//	POST /v1/sessions/{id}/cancel   abort at the next sweep boundary
//	POST /v1/sessions/{id}/suspend  checkpoint + stop at the next slice
//	POST /v1/sessions/{id}/resume   continue a suspended session (streams)

// streamLine is one NDJSON line of a session stream.
type streamLine struct {
	Type     string `json:"type"` // header | event | done | suspended | error
	Session  string `json:"session,omitempty"`
	Plan     string `json:"plan,omitempty"`
	Cache    string `json:"cache,omitempty"`
	Net      string `json:"net,omitempty"`
	Time     int64  `json:"t,omitempty"`
	Val      string `json:"v,omitempty"`
	Events   int64  `json:"events,omitempty"`
	State    string `json:"state,omitempty"`
	Error    string `json:"error,omitempty"`
	ResumeAt int64  `json:"resume_at,omitempty"`

	// Lane sessions only. The header carries the lane count; each event
	// carries the changed-lane bitmask (bit l = lane l changed here) and
	// every lane's value rendered lane 0 first ("01XZ…").
	Lanes int    `json:"lanes,omitempty"`
	Mask  uint32 `json:"mask,omitempty"`
	Vals  string `json:"vals,omitempty"`
}

// Handler returns the server's HTTP API.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			sv.handleStart(w, r)
		case http.MethodGet:
			writeJSON(w, map[string]any{"sessions": sv.Sessions()})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/v1/sessions/", sv.handleSession)
	return mux
}

func (sv *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "serve: bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Lanes > 1 {
		sv.streamLaneSession(w, r, &req)
		return
	}
	sv.streamSession(w, func(onAdmit func(*Session), sink func(netlist.NetID, event.Event)) (*Session, error) {
		return sv.StartSession(r.Context(), &req, onAdmit, sink)
	})
}

func (sv *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	id, action, _ := strings.Cut(rest, "/")
	s := sv.Session(id)
	if s == nil {
		http.NotFound(w, r)
		return
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		status := map[string]any{
			"session": s.ID,
			"state":   s.State().String(),
			"plan":    s.PlanKey,
			"events":  s.Events(),
		}
		if err := s.Err(); err != nil {
			status["error"] = err.Error()
		}
		writeJSON(w, status)
	case action == "cancel" && r.Method == http.MethodPost:
		s.Cancel()
		writeJSON(w, map[string]any{"session": s.ID, "state": s.State().String()})
	case action == "suspend" && r.Method == http.MethodPost:
		s.Suspend()
		writeJSON(w, map[string]any{"session": s.ID, "suspending": true})
	case action == "resume" && r.Method == http.MethodPost:
		sv.streamSession(w, func(onAdmit func(*Session), sink func(netlist.NetID, event.Event)) (*Session, error) {
			return sv.ResumeSession(r.Context(), id, onAdmit, sink)
		})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// streamSession runs a session whose events stream to the response as they
// commit. The HTTP status must be decided before the first byte, so errors
// surfaced after the header (lowering ran, session started) arrive as a
// terminal NDJSON error line under a 200, while admission/preparation
// rejections — which always precede the header — get their proper status
// (429/503/400).
func (sv *Server) streamSession(w http.ResponseWriter, run func(func(*Session), func(netlist.NetID, event.Event)) (*Session, error)) {
	flusher, _ := w.(http.Flusher)
	var (
		enc     = json.NewEncoder(w)
		started bool
		nl      *netlist.Netlist
	)
	// onAdmit, sink and the post-run epilogue all run on the handler's
	// session: no concurrent writers, no lock needed.
	writeLine := func(l *streamLine) {
		enc.Encode(l)
		if flusher != nil {
			flusher.Flush()
		}
	}
	onAdmit := func(s *Session) {
		started = true
		nl = s.cp.Plan.Netlist
		cacheState := "miss"
		if s.reg.Gauge("serve.cache_hit").Load() == 1 {
			cacheState = "hit"
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		writeLine(&streamLine{Type: "header", Session: s.ID, Plan: s.PlanKey, Cache: cacheState, State: "running"})
	}
	s, err := run(onAdmit, func(nid netlist.NetID, ev event.Event) {
		writeLine(&streamLine{Type: "event", Net: nl.Nets[nid].Name, Time: ev.Time, Val: ev.Val.String()})
	})
	if err != nil {
		if !started {
			writeAdmissionError(w, err)
			return
		}
		writeLine(&streamLine{Type: "error", Session: s.ID, Error: err.Error(), State: s.State().String(), Events: s.Events()})
		return
	}
	if s.State() == StateSuspended {
		writeLine(&streamLine{Type: "suspended", Session: s.ID, Events: s.Events(), State: s.State().String(), ResumeAt: s.resumePoint()})
		return
	}
	writeLine(&streamLine{Type: "done", Session: s.ID, Events: s.Events(), State: s.State().String()})
}

// streamLaneSession is streamSession's lane twin: the header line carries
// the lane count, each event line carries the changed-lane mask and all
// lane values, and there is no suspended epilogue — lane sessions cannot
// suspend.
func (sv *Server) streamLaneSession(w http.ResponseWriter, r *http.Request, req *SessionRequest) {
	flusher, _ := w.(http.Flusher)
	var (
		enc     = json.NewEncoder(w)
		started bool
		nl      *netlist.Netlist
	)
	writeLine := func(l *streamLine) {
		enc.Encode(l)
		if flusher != nil {
			flusher.Flush()
		}
	}
	onAdmit := func(s *Session) {
		started = true
		nl = s.cp.Plan.Netlist
		cacheState := "miss"
		if s.reg.Gauge("serve.cache_hit").Load() == 1 {
			cacheState = "hit"
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		writeLine(&streamLine{Type: "header", Session: s.ID, Plan: s.PlanKey, Cache: cacheState, State: "running", Lanes: req.Lanes})
	}
	s, err := sv.StartLaneSession(r.Context(), req, onAdmit, func(nid netlist.NetID, lc sim.LaneChange) {
		writeLine(&streamLine{Type: "event", Net: nl.Nets[nid].Name, Time: lc.Time, Mask: lc.Mask, Vals: laneVals(lc.Word, req.Lanes)})
	})
	if err != nil {
		if !started {
			writeAdmissionError(w, err)
			return
		}
		writeLine(&streamLine{Type: "error", Session: s.ID, Error: err.Error(), State: s.State().String(), Events: s.Events()})
		return
	}
	writeLine(&streamLine{Type: "done", Session: s.ID, Events: s.Events(), State: s.State().String()})
}

// laneVals renders a packed lane word lane 0 first, one value rune per lane.
func laneVals(w lane.Word, lanes int) string {
	b := make([]byte, 0, lanes)
	for l := 0; l < lanes; l++ {
		b = append(b, w.Get(l).String()...)
	}
	return string(b)
}

// writeAdmissionError maps pre-stream failures onto HTTP status codes.
func writeAdmissionError(w http.ResponseWriter, err error) {
	var busy *BusyError
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &busy):
		secs := int(busy.RetryAfter.Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case isClientError(err):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// isClientError classifies pre-run failures the client caused (bad preset,
// unparsable sources, invalid mode) versus server-side faults.
func isClientError(err error) bool {
	var se *sim.SimError
	if errors.As(err, &se) {
		return false
	}
	// Parse/validation errors from the input packages are fmt.Errorf chains
	// without structured types; treat every pre-run non-Sim error as the
	// client's input problem.
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
