package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/harness"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
)

// ---------- helpers ----------

// force4Procs lifts GOMAXPROCS so sim.Options.Threads is not clamped to 1
// on single-CPU machines (parallel-mode tests need a real worker pool).
func force4Procs(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// testKey makes a distinct digest key without running a real lowering.
func testKey(b byte) plan.DigestKey {
	var k plan.DigestKey
	k[0] = b
	return k
}

func testPlan(t *testing.T, preset string, seed int64) *CachedPlan {
	t.Helper()
	clib, err := harness.CompiledBuiltin()
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.PresetByName(preset)
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Build(p.Spec(0.0001, seed))
	if err != nil {
		t.Fatal(err)
	}
	delays := gen.Delays(d, seed)
	key := plan.Digest(d.Netlist, clib, delays)
	pl, err := plan.Build(d.Netlist, clib, delays)
	if err != nil {
		t.Fatal(err)
	}
	return &CachedPlan{Key: key, Plan: pl, Design: d}
}

// testReq is a tiny preset session request with explicit stimulus knobs so
// reference runs can mirror it exactly.
func testReq(preset string, seed int64) *SessionRequest {
	return &SessionRequest{
		Preset:   preset,
		Scale:    0.0001,
		Seed:     seed,
		Cycles:   12,
		Activity: 0.6,
		SlicePS:  8000,
	}
}

// refStream runs the golden refsim over the cached plan with the request's
// stimulus and returns the committed events per watched (output-port) net.
func refStream(t *testing.T, cp *CachedPlan, req *SessionRequest) map[netlist.NetID][]event.Event {
	t.Helper()
	ref, err := refsim.NewFromPlan(cp.Plan)
	if err != nil {
		t.Fatal(err)
	}
	gcs := gen.Stimuli(cp.Design, gen.StimSpec{
		Cycles: req.Cycles, ActivityFactor: req.Activity, Seed: req.Seed, ScanBurst: req.ScanBurst,
	})
	stim := make([]refsim.Stim, len(gcs))
	for i, c := range gcs {
		stim[i] = refsim.Stim{Net: c.Net, Time: c.Time, Val: c.Val}
	}
	col := refsim.Collect{}
	if err := ref.Run(stim, col.Add); err != nil {
		t.Fatal(err)
	}
	out := map[netlist.NetID][]event.Event{}
	for _, nid := range cp.Plan.Netlist.PortsOut {
		out[nid] = col[nid]
	}
	return out
}

// collector gathers one session's streamed events per net. Each session has
// its own collector and sink runs on the session's goroutine, so no lock.
type collector struct {
	events map[netlist.NetID][]event.Event
}

func newCollector() *collector {
	return &collector{events: map[netlist.NetID][]event.Event{}}
}

func (c *collector) sink(nid netlist.NetID, ev event.Event) {
	c.events[nid] = append(c.events[nid], ev)
}

// diffEvents asserts two per-net event maps are byte-identical over the
// watched nets of want.
func diffEvents(t *testing.T, label string, want, got map[netlist.NetID][]event.Event) {
	t.Helper()
	for nid, w := range want {
		g := got[nid]
		if len(g) != len(w) {
			t.Errorf("%s: net %d: %d events, want %d", label, nid, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i].Time != w[i].Time || g[i].Val != w[i].Val {
				t.Errorf("%s: net %d event %d: got (%d,%v) want (%d,%v)",
					label, nid, i, g[i].Time, g[i].Val, w[i].Time, w[i].Val)
				break
			}
		}
	}
}

// ---------- plan cache ----------

func TestPlanCacheSingleflight(t *testing.T) {
	c := NewPlanCache(4, obs.NewRegistry())
	key := testKey(1)
	var builds atomic.Int64
	build := func() (*CachedPlan, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the herd window
		return &CachedPlan{Key: key}, nil
	}

	const n = 8
	var wg sync.WaitGroup
	var fromCache atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cp, hit, err := c.Get(context.Background(), key, build)
			if err != nil || cp == nil {
				t.Errorf("Get: %v", err)
				return
			}
			if hit {
				fromCache.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", got)
	}
	if got := fromCache.Load(); got != n-1 {
		t.Errorf("served from cache = %d, want %d", got, n-1)
	}
}

func TestPlanCacheNegativeBackoff(t *testing.T) {
	c := NewPlanCache(4, obs.NewRegistry())
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	key := testKey(2)
	var builds int
	failing := func() (*CachedPlan, error) {
		builds++
		return nil, errors.New("broken netlist")
	}

	if _, _, err := c.Get(context.Background(), key, failing); err == nil {
		t.Fatal("first Get of failing build returned nil error")
	}
	// Within the backoff window: cached error, no rebuild.
	_, hit, err := c.Get(context.Background(), key, failing)
	if err == nil || !hit {
		t.Fatalf("negative-cached Get: hit=%v err=%v", hit, err)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (negative cache)", builds)
	}
	// Past the first backoff: re-arm, build again, backoff doubles.
	clock = clock.Add(negBackoffBase + time.Millisecond)
	if _, _, err := c.Get(context.Background(), key, failing); err == nil {
		t.Fatal("re-armed Get returned nil error")
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 after backoff expiry", builds)
	}
	// The doubled window holds where the base window would have expired.
	clock = clock.Add(negBackoffBase + time.Millisecond)
	if _, _, _ = c.Get(context.Background(), key, failing); builds != 2 {
		t.Fatalf("builds = %d, want 2 inside doubled backoff", builds)
	}
	// After the doubled window a fixed build heals the entry.
	clock = clock.Add(negBackoffBase)
	cp, _, err := c.Get(context.Background(), key, func() (*CachedPlan, error) {
		return &CachedPlan{Key: key}, nil
	})
	if err != nil || cp == nil {
		t.Fatalf("healed Get: %v", err)
	}
	if _, hit, err := c.Get(context.Background(), key, failing); err != nil || !hit {
		t.Fatalf("post-heal Get: hit=%v err=%v", hit, err)
	}
}

func TestPlanCachePanicContained(t *testing.T) {
	c := NewPlanCache(4, obs.NewRegistry())
	_, _, err := c.Get(context.Background(), testKey(3), func() (*CachedPlan, error) {
		panic("lowering exploded")
	})
	if err == nil {
		t.Fatal("panicking build returned nil error")
	}
	// The panic is negative-cached like any other failure.
	_, hit, err2 := c.Get(context.Background(), testKey(3), func() (*CachedPlan, error) {
		t.Error("build re-ran inside the backoff window")
		return nil, nil
	})
	if err2 == nil || !hit {
		t.Fatalf("panic not negative-cached: hit=%v err=%v", hit, err2)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPlanCache(2, reg)
	ok := func(k plan.DigestKey) BuildFunc {
		return func() (*CachedPlan, error) { return &CachedPlan{Key: k}, nil }
	}
	for b := byte(1); b <= 3; b++ {
		if _, _, err := c.Get(context.Background(), testKey(b), ok(testKey(b))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if got := reg.Counter("serve.cache_evictions").Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// Key 1 was least recently used: a fresh Get must rebuild it.
	_, hit, err := c.Get(context.Background(), testKey(1), ok(testKey(1)))
	if err != nil || hit {
		t.Fatalf("evicted key Get: hit=%v err=%v", hit, err)
	}
	// Keys 2 and 3 are still resident.
	if _, hit, _ := c.Get(context.Background(), testKey(3), ok(testKey(3))); !hit {
		t.Error("key 3 was evicted, want resident")
	}
}

// ---------- admission ----------

func TestAdmissionConcurrencyAndQueue(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 2 * time.Second, Rate: -1,
	}, obs.NewRegistry())

	rel1, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second admit queues for the one slot.
	got2 := make(chan error, 1)
	go func() {
		rel2, err := a.Admit(context.Background())
		if err == nil {
			rel2()
		}
		got2 <- err
	}()
	// Wait until it occupies the queue.
	for i := 0; ; i++ {
		a.mu.Lock()
		w := a.waiting
		a.mu.Unlock()
		if w == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("second Admit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third admit overflows the bounded queue: immediate rejection.
	_, err = a.Admit(context.Background())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("queue-full Admit: %v, want BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", busy.RetryAfter)
	}
	// Releasing the slot admits the queued caller.
	rel1()
	if err := <-got2; err != nil {
		t.Fatalf("queued Admit after release: %v", err)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond, Rate: -1,
	}, obs.NewRegistry())
	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = a.Admit(context.Background())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("queue-timeout Admit: %v, want BusyError", err)
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxConcurrent: 8, Rate: 0.001, Burst: 1,
	}, obs.NewRegistry())
	clock := time.Unix(2000, 0)
	a.now = func() time.Time { return clock }
	a.lastRefill = clock

	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	_, err = a.Admit(context.Background())
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("rate-limited Admit: %v, want BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", busy.RetryAfter)
	}
	// Tokens accrue with time: an hour later the bucket has refilled.
	clock = clock.Add(time.Hour)
	rel, err = a.Admit(context.Background())
	if err != nil {
		t.Fatalf("refilled Admit: %v", err)
	}
	rel()
}

func TestAdmissionDraining(t *testing.T) {
	a := NewAdmission(AdmissionConfig{}, nil)
	a.SetDraining(true)
	if _, err := a.Admit(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining Admit: %v, want ErrDraining", err)
	}
}

// ---------- server sessions ----------

func TestServerSessionMatchesRefsim(t *testing.T) {
	reg := obs.NewRegistry()
	sv := NewServer(Config{Registry: reg})
	req := testReq("aes128", 11)

	col := newCollector()
	var admitted *Session
	s, err := sv.StartSession(context.Background(), req, func(s *Session) { admitted = s }, col.sink)
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	if admitted != s {
		t.Error("onAdmit saw a different session")
	}
	if s.State() != StateDone {
		t.Fatalf("state = %v, want done", s.State())
	}
	want := refStream(t, s.cp, req)
	diffEvents(t, "session vs refsim", want, col.events)
	if s.Events() == 0 {
		t.Error("session delivered zero events")
	}

	// Same request again: plan served from cache, still byte-identical.
	col2 := newCollector()
	s2, err := sv.StartSession(context.Background(), req, nil, col2.sink)
	if err != nil {
		t.Fatalf("second StartSession: %v", err)
	}
	if s2.reg.Gauge("serve.cache_hit").Load() != 1 {
		t.Error("second session missed the plan cache")
	}
	if got := reg.Counter("serve.lowerings").Load(); got != 1 {
		t.Errorf("lowerings = %d, want 1", got)
	}
	diffEvents(t, "cached session vs refsim", want, col2.events)
}

func TestServerSuspendResume(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	req := testReq("blabla", 7)
	req.SnapshotEverySlices = 1

	col := newCollector()
	// Suspend immediately: the first completed slice checkpoints and stops.
	s, err := sv.StartSession(context.Background(), req, func(s *Session) { s.Suspend() }, col.sink)
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	if s.State() != StateSuspended {
		t.Fatalf("state = %v, want suspended", s.State())
	}
	if s.SnapshotAt() == 0 {
		t.Fatal("suspended session has no snapshot")
	}
	partial := s.Events()

	s2, err := sv.ResumeSession(context.Background(), s.ID, nil, col.sink)
	if err != nil {
		t.Fatalf("ResumeSession: %v", err)
	}
	if s2 != s {
		t.Fatal("resume returned a different session")
	}
	if s.State() != StateDone {
		t.Fatalf("resumed state = %v, want done", s.State())
	}
	if s.Events() <= partial {
		t.Errorf("resume delivered no further events (%d -> %d)", partial, s.Events())
	}
	want := refStream(t, s.cp, req)
	diffEvents(t, "suspend+resume vs refsim", want, col.events)
}

func TestServerEventBudget(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	req := testReq("aes128", 5)
	req.EventBudget = 1

	s, err := sv.StartSession(context.Background(), req, nil, nil)
	if err == nil {
		t.Fatal("budget-1 session completed, want ErrEventBudget")
	}
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	if s.State() != StateFailed {
		t.Errorf("state = %v, want failed", s.State())
	}
}

func TestServerPoolFaultDegradesTransparently(t *testing.T) {
	// A pool-infrastructure fault (FaultHook panic) is handled inside the
	// engine by degrading to serial; the session and its stream are intact.
	force4Procs(t)
	var tripped atomic.Bool
	sv := NewServer(Config{
		Registry: obs.NewRegistry(),
		SessionHooks: func(seq int64) (func(netlist.CellID), func(int)) {
			return nil, func(item int) {
				if tripped.CompareAndSwap(false, true) {
					panic("injected pool fault")
				}
			}
		},
	})
	req := testReq("aes128", 11)
	req.Mode = "parallel"
	req.Threads = 4
	req.BatchThreshold = 1 // engage the pool even on this tiny design

	col := newCollector()
	s, err := sv.StartSession(context.Background(), req, nil, col.sink)
	if err != nil {
		t.Fatalf("StartSession with pool fault: %v", err)
	}
	if s.State() != StateDone {
		t.Fatalf("state = %v, want done", s.State())
	}
	if !tripped.Load() {
		t.Fatal("fault hook never fired")
	}
	diffEvents(t, "pool-fault session vs refsim", refStream(t, s.cp, req), col.events)
}

func TestServerDrainRejectsArrivals(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry(), DrainTimeout: time.Second})
	if err := sv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := sv.StartSession(context.Background(), testReq("aes128", 1), nil, nil)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("StartSession after drain: %v, want ErrDraining", err)
	}
}

func TestServerBadRequests(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	cases := []*SessionRequest{
		{},
		{Preset: "no-such-preset"},
		{Preset: "aes128", Verilog: "module m; endmodule"},
		{Preset: "aes128", Mode: "warp"},
	}
	for i, req := range cases {
		if _, err := sv.StartSession(context.Background(), req, nil, nil); err == nil {
			t.Errorf("case %d: bad request accepted", i)
		}
	}
}
