package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gatesim/internal/obs"
)

// AdmissionConfig bounds how much concurrent and queued work the server
// accepts. Zero values pick serving defaults.
type AdmissionConfig struct {
	// MaxConcurrent caps sessions running simultaneously (default 8).
	MaxConcurrent int
	// Rate is the sustained admission rate in sessions per second and Burst
	// the token-bucket depth (defaults 50/s, burst 100). Rate < 0 disables
	// rate limiting.
	Rate  float64
	Burst float64
	// MaxQueue caps sessions waiting for a concurrency slot (default 16).
	// Arrivals beyond it are rejected with Retry-After instead of queueing
	// unboundedly.
	MaxQueue int
	// QueueTimeout caps how long an admitted-by-rate session may wait for a
	// slot before being rejected (default 5s). A caller context deadline
	// shorter than this wins.
	QueueTimeout time.Duration
}

func (c *AdmissionConfig) defaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.Rate == 0 {
		c.Rate = 50
	}
	if c.Burst <= 0 {
		c.Burst = 100
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
}

// ErrDraining is returned to arrivals while the server drains.
var ErrDraining = errors.New("serve: server is draining")

// BusyError is an admission rejection carrying the earliest time a retry
// could plausibly succeed; HTTP handlers render it as 429 + Retry-After.
type BusyError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: busy (%s), retry after %s", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Admission is the server's front door: a token bucket shapes the arrival
// rate, a semaphore caps concurrency, and a bounded deadline-aware queue
// absorbs bursts. Anything beyond those bounds is rejected immediately with
// a Retry-After hint — the queue never grows without limit.
type Admission struct {
	cfg AdmissionConfig

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time
	waiting    int
	draining   bool

	slots   chan struct{}
	running atomic.Int64

	admitted  *obs.Counter
	rejected  *obs.Counter
	queueWait *obs.Histogram
	active    *obs.Gauge

	now func() time.Time // test seam
}

// NewAdmission builds the admission controller. reg may be nil.
func NewAdmission(cfg AdmissionConfig, reg *obs.Registry) *Admission {
	cfg.defaults()
	a := &Admission{
		cfg:        cfg,
		tokens:     cfg.Burst,
		lastRefill: time.Now(),
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		admitted:   reg.Counter("serve.admitted"),
		rejected:   reg.Counter("serve.rejected"),
		queueWait:  reg.Histogram("serve.queue_wait_ns"),
		active:     reg.Gauge("serve.sessions_active"),
		now:        time.Now,
	}
	return a
}

// SetDraining flips the drain gate: while set, every Admit is rejected with
// ErrDraining.
func (a *Admission) SetDraining(v bool) {
	a.mu.Lock()
	a.draining = v
	a.mu.Unlock()
}

// Admit blocks until the caller holds a concurrency slot, or rejects. On
// success it returns a release func the session MUST call when finished.
func (a *Admission) Admit(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		a.rejected.Add(1)
		return nil, ErrDraining
	}
	// Token bucket: refill by elapsed time, then take one token or reject
	// with the time until one accrues.
	if a.cfg.Rate > 0 {
		now := a.now()
		a.tokens += now.Sub(a.lastRefill).Seconds() * a.cfg.Rate
		if a.tokens > a.cfg.Burst {
			a.tokens = a.cfg.Burst
		}
		a.lastRefill = now
		if a.tokens < 1 {
			wait := time.Duration((1 - a.tokens) / a.cfg.Rate * float64(time.Second))
			a.mu.Unlock()
			a.rejected.Add(1)
			return nil, &BusyError{RetryAfter: wait, Reason: "rate limit"}
		}
		a.tokens--
	}
	// Bounded wait queue for a concurrency slot.
	if a.waiting >= a.cfg.MaxQueue {
		a.mu.Unlock()
		a.rejected.Add(1)
		// Every queued session ahead must finish or time out first; half the
		// queue timeout is an honest middle-of-the-road hint.
		return nil, &BusyError{RetryAfter: a.cfg.QueueTimeout / 2, Reason: "queue full"}
	}
	a.waiting++
	a.mu.Unlock()

	start := a.now()
	timer := time.NewTimer(a.cfg.QueueTimeout)
	defer timer.Stop()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		a.queueWait.Observe(a.now().Sub(start).Nanoseconds())
		a.admitted.Add(1)
		a.active.Set(a.running.Add(1))
		var once sync.Once
		return func() {
			once.Do(func() {
				a.active.Set(a.running.Add(-1))
				<-a.slots
			})
		}, nil
	case <-timer.C:
		a.rejected.Add(1)
		return nil, &BusyError{RetryAfter: a.cfg.QueueTimeout, Reason: "queue timeout"}
	case <-ctx.Done():
		a.rejected.Add(1)
		return nil, ctx.Err()
	}
}
