package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/refsim"
	"gatesim/internal/sim"
)

// laneCollector gathers a lane session's merged events and splits them back
// into per-lane scalar streams: lane l's stream is the (time, value) pairs
// of every event whose changed-lane mask has bit l set.
type laneCollector struct {
	lanes   int
	perLane []map[netlist.NetID][]event.Event
}

func newLaneCollector(lanes int) *laneCollector {
	c := &laneCollector{lanes: lanes, perLane: make([]map[netlist.NetID][]event.Event, lanes)}
	for l := range c.perLane {
		c.perLane[l] = map[netlist.NetID][]event.Event{}
	}
	return c
}

func (c *laneCollector) sink(nid netlist.NetID, lc sim.LaneChange) {
	for l := 0; l < c.lanes; l++ {
		if lc.Mask&(1<<uint(l)) != 0 {
			c.perLane[l][nid] = append(c.perLane[l][nid], event.Event{Time: lc.Time, Val: lc.Word.Get(l)})
		}
	}
}

// TestServerLaneSessionMatchesRefsim runs one lane session and checks every
// lane's reconstructed output stream against a scalar refsim run of that
// lane's stimulus alone: the server surface must preserve the engine's
// per-lane exactness guarantee.
func TestServerLaneSessionMatchesRefsim(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	req := testReq("aes128", 11)
	req.Lanes = 4

	col := newLaneCollector(req.Lanes)
	s, err := sv.StartLaneSession(context.Background(), req, nil, col.sink)
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != StateDone {
		t.Fatalf("lane session state = %v, err = %v", s.State(), s.Err())
	}
	if s.Events() == 0 {
		t.Fatal("lane session committed no events")
	}

	cp := testPlan(t, req.Preset, req.Seed)
	perLane := gen.LaneStimuli(cp.Design, gen.StimSpec{
		Cycles: req.Cycles, ActivityFactor: req.Activity, Seed: req.Seed, ScanBurst: req.ScanBurst,
	}, req.Lanes)
	for l, gcs := range perLane {
		ref, err := refsim.NewFromPlan(cp.Plan)
		if err != nil {
			t.Fatal(err)
		}
		stim := make([]refsim.Stim, len(gcs))
		for i, c := range gcs {
			stim[i] = refsim.Stim{Net: c.Net, Time: c.Time, Val: c.Val}
		}
		rc := refsim.Collect{}
		if err := ref.Run(stim, rc.Add); err != nil {
			t.Fatal(err)
		}
		want := map[netlist.NetID][]event.Event{}
		for _, nid := range cp.Plan.Netlist.PortsOut {
			want[nid] = rc[nid]
		}
		diffEvents(t, "lane "+string(rune('0'+l)), want, col.perLane[l])
	}
}

// TestServerLaneSessionGuards exercises the request-validation edges of the
// lane surface: wrong entry point, wrong lane counts, non-preset sources.
func TestServerLaneSessionGuards(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	ctx := context.Background()

	laneReq := testReq("aes128", 1)
	laneReq.Lanes = 4
	if _, err := sv.StartSession(ctx, laneReq, nil, nil); err == nil {
		t.Error("StartSession accepted a lane request")
	}
	if _, err := sv.StartLaneSession(ctx, testReq("aes128", 1), nil, nil); err == nil {
		t.Error("StartLaneSession accepted lanes <= 1")
	}
	over := testReq("aes128", 1)
	over.Lanes = 64
	if _, err := sv.StartLaneSession(ctx, over, nil, nil); err == nil {
		t.Error("StartLaneSession accepted 64 lanes")
	}
	raw := &SessionRequest{Verilog: "module top; endmodule", Top: "top", Lanes: 4}
	if _, err := sv.StartLaneSession(ctx, raw, nil, nil); err == nil {
		t.Error("StartLaneSession accepted a verilog source")
	}
	if _, err := sv.StartLaneSession(ctx, &SessionRequest{Lanes: 4}, nil, nil); err == nil {
		t.Error("StartLaneSession accepted a request with no design source")
	}
}

// TestHTTPLaneSessionStream drives a lane session through the HTTP surface:
// the header carries the lane count, every event line carries a non-empty
// changed-lane mask and one value per lane, and the stream terminates done.
func TestHTTPLaneSessionStream(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	req := testReq("aes128", 11)
	req.Lanes = 4
	resp, lines := postSession(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(lines) < 3 {
		t.Fatalf("stream has %d lines, want header+events+done", len(lines))
	}
	head, tail := lines[0], lines[len(lines)-1]
	if head.Type != "header" || head.Lanes != 4 {
		t.Errorf("header line = %+v", head)
	}
	for _, l := range lines[1 : len(lines)-1] {
		if l.Type != "event" || l.Net == "" || l.Mask == 0 || len(l.Vals) != 4 {
			t.Errorf("lane event line = %+v", l)
		}
	}
	if tail.Type != "done" || tail.State != "done" || tail.Events == 0 {
		t.Errorf("terminal line = %+v", tail)
	}
}
