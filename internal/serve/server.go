package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/harness"
	"gatesim/internal/lane"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/truthtab"
	"gatesim/internal/vcd"
)

// Config assembles the server. Zero values pick serving defaults.
type Config struct {
	// CacheSize is the plan-cache capacity in lowered plans (default 8).
	CacheSize int
	// Admission bounds concurrent and queued sessions.
	Admission AdmissionConfig
	// Limits are the default per-session resource bounds; requests may
	// tighten or (within server policy) adjust them.
	Limits SessionLimits
	// DrainTimeout is how long Drain lets in-flight sessions finish before
	// cancelling them (default 10s).
	DrainTimeout time.Duration
	// Registry receives server-level metrics. May be nil.
	Registry *obs.Registry
	// Debug, when set, gets each session's registry registered under
	// sessions/<id> for /debug/metrics/<name> introspection.
	Debug *obs.DebugServer
	// SessionHooks is a test seam: called with each session's sequence
	// number, the returned gate/fault hooks are installed into that
	// session's engine for chaos injection. May be nil.
	SessionHooks func(seq int64) (gate func(netlist.CellID), fault func(int))
}

// Server runs concurrent streamed simulation sessions over cache-shared
// plans. See the package comment for the robustness contract.
type Server struct {
	cfg   Config
	cache *PlanCache
	adm   *Admission

	mu       sync.Mutex
	sessions map[string]*Session

	seq      atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup

	sessionsDone   *obs.Counter
	sessionsFailed *obs.Counter
	drains         *obs.Counter
}

// NewServer assembles a server from the config.
func NewServer(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 8
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	cfg.Limits.defaults()
	return &Server{
		cfg:            cfg,
		cache:          NewPlanCache(cfg.CacheSize, cfg.Registry),
		adm:            NewAdmission(cfg.Admission, cfg.Registry),
		sessions:       make(map[string]*Session),
		sessionsDone:   cfg.Registry.Counter("serve.sessions_done"),
		sessionsFailed: cfg.Registry.Counter("serve.sessions_failed"),
		drains:         cfg.Registry.Counter("serve.drains"),
	}
}

// Cache exposes the plan cache (for tests and introspection).
func (sv *Server) Cache() *PlanCache { return sv.cache }

// SessionRequest describes one streamed run. Exactly one of Preset or
// Verilog selects the design source.
type SessionRequest struct {
	// Preset mode: a synthetic Table I design family.
	Preset    string  `json:"preset,omitempty"`
	Scale     float64 `json:"scale,omitempty"`    // default 0.01
	Seed      int64   `json:"seed,omitempty"`     // design + stimulus seed
	Cycles    int     `json:"cycles,omitempty"`   // stimulus cycles (default 20)
	Activity  float64 `json:"activity,omitempty"` // default 0.5
	ScanBurst int     `json:"scan_burst,omitempty"`

	// Raw mode: sources shipped in the request (built-in Liberty library).
	Verilog string `json:"verilog,omitempty"`
	Top     string `json:"top,omitempty"`
	SDF     string `json:"sdf,omitempty"`
	VCD     string `json:"vcd,omitempty"`

	// Per-session limit overrides (0 = server default).
	DeadlineMS          int64  `json:"deadline_ms,omitempty"`
	MaxSweeps           int    `json:"max_sweeps,omitempty"`
	EventBudget         int64  `json:"event_budget,omitempty"`
	SlicePS             int64  `json:"slice_ps,omitempty"`
	SnapshotEverySlices int    `json:"snapshot_every_slices,omitempty"`
	MaxRetries          int    `json:"max_retries,omitempty"`
	Mode                string `json:"mode,omitempty"` // auto|serial|parallel|manycore
	Threads             int    `json:"threads,omitempty"`
	BatchThreshold      int    `json:"batch_threshold,omitempty"` // pool engagement floor
	WatchAll            bool   `json:"watch_all,omitempty"`

	// Lanes > 1 runs a multi-stimulus lane session: Lanes independently
	// seeded vectors of the preset stimulus evaluated in one lane-mode pass,
	// streaming merged lane events (changed-lane mask + packed word) instead
	// of scalar ones. Preset sessions only (a raw VCD is a single vector),
	// and lane engines have no snapshots, so such sessions cannot suspend,
	// resume, or restore-and-retry. Start them through StartLaneSession or
	// the HTTP surface.
	Lanes int `json:"lanes,omitempty"`
}

func (r *SessionRequest) limits(def SessionLimits) SessionLimits {
	l := def
	if r.DeadlineMS > 0 {
		l.Deadline = time.Duration(r.DeadlineMS) * time.Millisecond
	}
	if r.MaxSweeps > 0 {
		l.MaxSweeps = r.MaxSweeps
	}
	if r.EventBudget != 0 {
		l.EventBudget = r.EventBudget
	}
	if r.SlicePS > 0 {
		l.SlicePS = r.SlicePS
	}
	if r.SnapshotEverySlices != 0 {
		l.SnapshotEverySlices = r.SnapshotEverySlices
	}
	if r.MaxRetries != 0 {
		l.MaxRetries = r.MaxRetries
	}
	return l
}

func (r *SessionRequest) mode() (sim.Mode, error) {
	switch r.Mode {
	case "", "auto":
		return sim.ModeAuto, nil
	case "serial":
		return sim.ModeSerial, nil
	case "parallel":
		return sim.ModeParallel, nil
	case "manycore":
		return sim.ModeManycore, nil
	}
	return 0, fmt.Errorf("serve: unknown mode %q", r.Mode)
}

// StartSession admits, plans and runs one session to completion (or
// suspension/failure), delivering watched events to sink as they commit.
// onAdmit, when non-nil, fires once the session exists (admitted, plan
// resolved) and before the first event — HTTP handlers emit their stream
// header there. The returned session is non-nil whenever onAdmit fired, so
// the caller can inspect state/metrics even after a failure; the error is
// the session's terminal error. Blocks for the whole run: HTTP handlers
// stream from inside sink, tests drive N of these concurrently.
func (sv *Server) StartSession(ctx context.Context, req *SessionRequest, onAdmit func(*Session), sink func(netlist.NetID, event.Event)) (*Session, error) {
	if req.Lanes > 1 {
		return nil, errors.New("serve: lane requests (lanes > 1) must go through StartLaneSession")
	}
	return sv.start(ctx, req, onAdmit, func(ctx context.Context, s *Session) error {
		return s.run(ctx, sink)
	})
}

// StartLaneSession is StartSession's multi-stimulus twin: one lane-mode run
// carrying req.Lanes independently seeded vectors of the preset stimulus,
// delivering merged lane events (changed-lane mask + packed word) to sink as
// they commit. Lane engines have no snapshots, so the session cannot
// suspend, resume, or restore-and-retry; the deadline, sweep watchdog,
// event budget and Cancel still apply.
func (sv *Server) StartLaneSession(ctx context.Context, req *SessionRequest, onAdmit func(*Session), sink func(netlist.NetID, sim.LaneChange)) (*Session, error) {
	if req.Lanes <= 1 {
		return nil, fmt.Errorf("serve: lane session needs lanes > 1, got %d", req.Lanes)
	}
	return sv.start(ctx, req, onAdmit, func(ctx context.Context, s *Session) error {
		return s.runLane(ctx, sink)
	})
}

// start owns the shared session lifecycle — admission, plan resolution,
// registration, onAdmit — around a mode-specific run function.
func (sv *Server) start(ctx context.Context, req *SessionRequest, onAdmit func(*Session), run func(context.Context, *Session) error) (*Session, error) {
	if sv.draining.Load() {
		return nil, ErrDraining
	}
	release, err := sv.adm.Admit(ctx)
	if err != nil {
		return nil, err
	}
	sv.wg.Add(1)
	defer func() { release(); sv.wg.Done() }()

	var (
		cp       *CachedPlan
		hit      bool
		stim     []sim.Change
		laneStim []sim.LaneChange
		watch    []netlist.NetID
	)
	if req.Lanes > 1 {
		cp, hit, laneStim, watch, err = sv.prepareLane(ctx, req)
	} else {
		cp, hit, stim, watch, err = sv.prepare(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	mode, err := req.mode()
	if err != nil {
		return nil, err
	}

	seq := sv.seq.Add(1)
	s := &Session{
		ID:               "s" + strconv.FormatInt(seq, 10),
		PlanKey:          cp.Key.String(),
		limits:           req.limits(sv.cfg.Limits),
		opts:             sim.Options{Mode: mode, Threads: req.Threads, SerialBatchThreshold: req.BatchThreshold, Lanes: req.Lanes},
		cp:               cp,
		stim:             stim,
		laneStim:         laneStim,
		watch:            watch,
		reg:              obs.NewRegistry(),
		lastSent:         make(map[netlist.NetID]int64),
		poisonedSessions: sv.cfg.Registry.Counter("serve.sessions_poisoned"),
		retriesCounter:   sv.cfg.Registry.Counter("serve.sessions_retried"),
	}
	s.reg.Gauge("serve.cache_hit").Set(b2i(hit))
	if sv.cfg.SessionHooks != nil {
		s.opts.GateHook, s.opts.FaultHook = sv.cfg.SessionHooks(seq)
	}
	sv.mu.Lock()
	sv.sessions[s.ID] = s
	sv.mu.Unlock()
	if sv.cfg.Debug != nil {
		sv.cfg.Debug.Register("sessions/"+s.ID, s.reg)
	}
	if onAdmit != nil {
		onAdmit(s)
	}

	err = run(ctx, s)
	sv.finish(s, err)
	return s, err
}

// ResumeSession continues a suspended session under a fresh admission slot,
// streaming the remaining events to sink. onAdmit fires before the stream
// restarts, as in StartSession.
func (sv *Server) ResumeSession(ctx context.Context, id string, onAdmit func(*Session), sink func(netlist.NetID, event.Event)) (*Session, error) {
	if sv.draining.Load() {
		return nil, ErrDraining
	}
	s := sv.Session(id)
	if s == nil {
		return nil, fmt.Errorf("serve: no session %q", id)
	}
	if s.State() != StateSuspended {
		return s, fmt.Errorf("serve: session %s is %s, not suspended", id, s.State())
	}
	release, err := sv.adm.Admit(ctx)
	if err != nil {
		return s, err
	}
	sv.wg.Add(1)
	defer func() { release(); sv.wg.Done() }()
	if onAdmit != nil {
		onAdmit(s)
	}
	err = s.run(ctx, sink)
	sv.finish(s, err)
	return s, err
}

func (sv *Server) finish(s *Session, err error) {
	switch s.State() {
	case StateDone:
		sv.sessionsDone.Add(1)
	case StateFailed, StateCanceled:
		sv.sessionsFailed.Add(1)
	}
	// Suspended sessions keep their debug registry visible for resume.
	if sv.cfg.Debug != nil && s.State() != StateSuspended {
		sv.cfg.Debug.Unregister("sessions/" + s.ID)
	}
}

// Session looks up a session by ID (nil if unknown).
func (sv *Server) Session(id string) *Session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.sessions[id]
}

// Sessions returns a snapshot of all session IDs, sorted.
func (sv *Server) Sessions() []string {
	sv.mu.Lock()
	ids := make([]string, 0, len(sv.sessions))
	for id := range sv.sessions {
		ids = append(ids, id)
	}
	sv.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Drain gracefully shuts the server down: stop admitting, let in-flight
// sessions finish within the drain timeout, then cancel the stragglers and
// wait for them to unwind. Always returns with zero sessions running.
func (sv *Server) Drain(ctx context.Context) error {
	sv.draining.Store(true)
	sv.adm.SetDraining(true)
	sv.drains.Add(1)

	done := make(chan struct{})
	go func() { sv.wg.Wait(); close(done) }()
	timer := time.NewTimer(sv.cfg.DrainTimeout)
	defer timer.Stop()
	graceful := true
	select {
	case <-done:
	case <-timer.C:
		graceful = false
	case <-ctx.Done():
		graceful = false
	}
	if !graceful {
		sv.mu.Lock()
		for _, s := range sv.sessions {
			s.Cancel()
		}
		sv.mu.Unlock()
		<-done
	}
	return nil
}

// prepare turns the request into a cache-shared plan plus this session's
// stimulus and watch list. Only the plan lowering is cached and shared;
// stimulus generation is per-session.
func (sv *Server) prepare(ctx context.Context, req *SessionRequest) (cp *CachedPlan, hit bool, stim []sim.Change, watch []netlist.NetID, err error) {
	clib, err := harness.CompiledBuiltin()
	if err != nil {
		return nil, false, nil, nil, err
	}
	switch {
	case req.Preset != "" && req.Verilog != "":
		return nil, false, nil, nil, errors.New("serve: request has both preset and verilog")
	case req.Preset != "":
		cp, hit, err = sv.preparePreset(ctx, req, clib)
	case req.Verilog != "":
		cp, hit, err = sv.prepareRaw(ctx, req, clib)
	default:
		return nil, false, nil, nil, errors.New("serve: request needs a preset or verilog source")
	}
	if err != nil {
		return nil, false, nil, nil, err
	}
	stim, err = sv.stimulus(req, cp)
	if err != nil {
		return nil, false, nil, nil, err
	}
	nl := cp.Plan.Netlist
	if req.WatchAll {
		watch = make([]netlist.NetID, len(nl.Nets))
		for i := range nl.Nets {
			watch[i] = netlist.NetID(i)
		}
	} else {
		watch = nl.PortsOut
	}
	return cp, hit, stim, watch, nil
}

// prepareLane is prepare's lane-mode twin: preset sessions only (a raw VCD
// is a single stimulus vector), producing the merged multi-vector trace —
// a shared clock/reset/scan schedule with per-lane data seeds — in place of
// the scalar stimulus. The plan is cache-shared exactly as in scalar mode:
// lane state lives in the engine, not the plan.
func (sv *Server) prepareLane(ctx context.Context, req *SessionRequest) (cp *CachedPlan, hit bool, laneStim []sim.LaneChange, watch []netlist.NetID, err error) {
	if req.Lanes > lane.MaxLanes {
		return nil, false, nil, nil, fmt.Errorf("serve: %d lanes exceeds the %d-lane limit", req.Lanes, lane.MaxLanes)
	}
	if req.Verilog != "" || req.VCD != "" {
		return nil, false, nil, nil, errors.New("serve: lane sessions are preset-only (a raw VCD is a single stimulus vector)")
	}
	if req.Preset == "" {
		return nil, false, nil, nil, errors.New("serve: lane session needs a preset")
	}
	clib, err := harness.CompiledBuiltin()
	if err != nil {
		return nil, false, nil, nil, err
	}
	cp, hit, err = sv.preparePreset(ctx, req, clib)
	if err != nil {
		return nil, false, nil, nil, err
	}
	if cp.Design == nil {
		return nil, false, nil, nil, errors.New("serve: cached preset plan lacks its design")
	}
	cycles := req.Cycles
	if cycles <= 0 {
		cycles = 20
	}
	activity := req.Activity
	if activity <= 0 {
		activity = 0.5
	}
	perLane := gen.LaneStimuli(cp.Design, gen.StimSpec{
		Cycles: cycles, ActivityFactor: activity, Seed: req.Seed, ScanBurst: req.ScanBurst,
	}, req.Lanes)
	changes := make([][]sim.Change, len(perLane))
	for l, cs := range perLane {
		changes[l] = make([]sim.Change, len(cs))
		for i, c := range cs {
			changes[l][i] = sim.Change{Net: c.Net, Time: c.Time, Val: c.Val}
		}
	}
	laneStim, err = sim.MergeLaneChanges(changes)
	if err != nil {
		return nil, false, nil, nil, err
	}
	nl := cp.Plan.Netlist
	if req.WatchAll {
		watch = make([]netlist.NetID, len(nl.Nets))
		for i := range nl.Nets {
			watch[i] = netlist.NetID(i)
		}
	} else {
		watch = nl.PortsOut
	}
	return cp, hit, laneStim, watch, nil
}

func (sv *Server) preparePreset(ctx context.Context, req *SessionRequest, clib *truthtab.CompiledLibrary) (*CachedPlan, bool, error) {
	p, err := gen.PresetByName(req.Preset)
	if err != nil {
		return nil, false, err
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 0.01
	}
	spec := p.Spec(scale, req.Seed)
	d, err := gen.Build(spec)
	if err != nil {
		return nil, false, err
	}
	delays := gen.Delays(d, req.Seed)
	key := plan.Digest(d.Netlist, clib, delays)
	return sv.cacheGet(ctx, key, func() (*CachedPlan, error) {
		pl, err := plan.Build(d.Netlist, clib, delays)
		if err != nil {
			return nil, err
		}
		return &CachedPlan{Key: key, Plan: pl, Design: d}, nil
	})
}

func (sv *Server) prepareRaw(ctx context.Context, req *SessionRequest, clib *truthtab.CompiledLibrary) (*CachedPlan, bool, error) {
	lib := liberty.MustBuiltin()
	nl, err := netlist.ParseVerilogHierarchy(req.Verilog, lib, req.Top)
	if err != nil {
		return nil, false, err
	}
	var delays *sdf.Delays
	if req.SDF != "" {
		f, err := sdf.Parse(req.SDF)
		if err != nil {
			return nil, false, err
		}
		if delays, err = sdf.Apply(f, nl, sdf.Delay{Rise: 1, Fall: 1}); err != nil {
			return nil, false, err
		}
	} else {
		delays = gen.Delays(&gen.Design{Netlist: nl}, 1)
	}
	key := plan.Digest(nl, clib, delays)
	return sv.cacheGet(ctx, key, func() (*CachedPlan, error) {
		pl, err := plan.Build(nl, clib, delays)
		if err != nil {
			return nil, err
		}
		return &CachedPlan{Key: key, Plan: pl}, nil
	})
}

func (sv *Server) cacheGet(ctx context.Context, key plan.DigestKey, build BuildFunc) (*CachedPlan, bool, error) {
	return sv.cache.Get(ctx, key, build)
}

// stimulus produces this session's sorted input changes. Preset sessions
// generate against the CACHED design so NetIDs always index the shared
// plan's netlist; raw sessions decode the request's VCD the same way.
func (sv *Server) stimulus(req *SessionRequest, cp *CachedPlan) ([]sim.Change, error) {
	if req.Preset != "" {
		if cp.Design == nil {
			return nil, errors.New("serve: cached preset plan lacks its design")
		}
		cycles := req.Cycles
		if cycles <= 0 {
			cycles = 20
		}
		activity := req.Activity
		if activity <= 0 {
			activity = 0.5
		}
		gcs := gen.Stimuli(cp.Design, gen.StimSpec{
			Cycles: cycles, ActivityFactor: activity, Seed: req.Seed, ScanBurst: req.ScanBurst,
		})
		// gen.Stimuli is globally time-sorted at the source; the session's
		// slice streaming and snapshot-resume cut consume it directly.
		out := make([]sim.Change, len(gcs))
		for i, c := range gcs {
			out[i] = sim.Change{Net: c.Net, Time: c.Time, Val: c.Val}
		}
		return out, nil
	}
	if req.VCD == "" {
		return nil, errors.New("serve: raw session needs vcd stimulus")
	}
	r, err := vcd.NewReader(strings.NewReader(req.VCD))
	if err != nil {
		return nil, err
	}
	src, err := harness.NewVCDSource(r, cp.Plan.Netlist)
	if err != nil {
		return nil, err
	}
	var out []sim.Change
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Time < out[b].Time })
	return out, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
