// Package serve is the resident simulation service: it keeps lowered
// plan.Plans in a content-hash-keyed LRU cache and runs many concurrent
// streamed sessions against the shared immutable plans, with token-bucket
// admission control, per-session resource limits, session-level fault
// isolation (a gate panic poisons one session's engine, never the plan or
// its neighbors), snapshot-based suspend/resume and restore-and-retry, and
// graceful drain. Robustness is the spine: one hostile or crashing session
// must never take down, starve, or corrupt the others.
package serve

import (
	"container/list"
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"gatesim/internal/gen"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
)

// CachedPlan is one immutable lowered design shared by every session whose
// request digests to the same key. Plan is safe for concurrent engines
// (plan.Plan is read-only after Build); Design is non-nil for preset-built
// requests so sessions can generate stimuli against the shared netlist.
type CachedPlan struct {
	Key    plan.DigestKey
	Plan   *plan.Plan
	Design *gen.Design
}

// BuildFunc lowers a plan on a cache miss. It runs outside the cache lock;
// panics are contained and negative-cached.
type BuildFunc func() (*CachedPlan, error)

type cacheEntry struct {
	key  plan.DigestKey
	done chan struct{} // closed when val/err are settled
	val  *CachedPlan
	err  error

	// Negative cache: after a failed or panicking lowering the entry stays,
	// answering with the cached error until failUntil passes; then the next
	// caller re-arms the build. Backoff doubles per consecutive failure so a
	// hot loop of identical broken requests lowers at a bounded rate.
	failures  int
	failUntil time.Time

	elem *list.Element
}

// PlanCache is the content-addressed store of lowered plans. Lookups under
// one key collapse to a single lowering (singleflight): the first caller
// builds, a thundering herd of identical requests waits on the same entry.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[plan.DigestKey]*cacheEntry
	lru     *list.List // front = most recently used settled entry

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	negative  *obs.Counter
	lowerings *obs.Counter

	now func() time.Time // test seam
}

// negBackoffBase is the first negative-cache hold; it doubles per
// consecutive failure up to negBackoffMax.
const (
	negBackoffBase = 100 * time.Millisecond
	negBackoffMax  = 30 * time.Second
)

// NewPlanCache creates a cache holding at most capacity settled plans
// (minimum 1). reg may be nil; metrics are then discarded.
func NewPlanCache(capacity int, reg *obs.Registry) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		cap:       capacity,
		entries:   make(map[plan.DigestKey]*cacheEntry),
		lru:       list.New(),
		hits:      reg.Counter("serve.cache_hits"),
		misses:    reg.Counter("serve.cache_misses"),
		evictions: reg.Counter("serve.cache_evictions"),
		negative:  reg.Counter("serve.cache_negative_hits"),
		lowerings: reg.Counter("serve.lowerings"),
		now:       time.Now,
	}
}

// Get returns the plan for key, lowering it via build if absent. The
// returned bool reports whether the plan was served from cache (true) or
// this call ran the lowering (false). Concurrent callers for the same key
// share one lowering. A build that fails (or panics — the panic is
// contained here) is negative-cached: subsequent Gets return the same error
// without re-building until the backoff expires. ctx aborts the caller's
// wait, never the shared build.
func (c *PlanCache) Get(ctx context.Context, key plan.DigestKey, build BuildFunc) (*CachedPlan, bool, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			// Miss: this caller builds.
			e = &cacheEntry{key: key, done: make(chan struct{})}
			c.entries[key] = e
			c.misses.Add(1)
			c.mu.Unlock()
			val, err := c.runBuild(e, build)
			return val, false, err
		}
		select {
		case <-e.done:
			// Settled entry.
			if e.err == nil {
				c.touch(e)
				c.hits.Add(1)
				c.mu.Unlock()
				return e.val, true, nil
			}
			if c.now().Before(e.failUntil) {
				c.negative.Add(1)
				err := e.err
				c.mu.Unlock()
				return nil, true, err
			}
			// Backoff expired: re-arm under the same entry, keeping the
			// failure count for the next backoff step.
			e.done = make(chan struct{})
			e.err = nil
			if e.elem != nil {
				c.lru.Remove(e.elem)
				e.elem = nil
			}
			c.misses.Add(1)
			c.mu.Unlock()
			val, err := c.runBuild(e, build)
			return val, false, err
		default:
		}
		// In flight: wait for the builder (singleflight), then loop to read
		// the settled result.
		done := e.done
		c.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// runBuild executes build for the entry this caller owns, containing panics,
// and settles the entry under the lock.
func (c *PlanCache) runBuild(e *cacheEntry, build BuildFunc) (*CachedPlan, error) {
	c.lowerings.Add(1)
	val, err := func() (cp *CachedPlan, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: plan lowering panicked: %v\n%s", r, debug.Stack())
			}
		}()
		return build()
	}()
	c.mu.Lock()
	e.val, e.err = val, err
	if err == nil {
		e.failures = 0
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	} else {
		e.failures++
		backoff := negBackoffBase << (e.failures - 1)
		if backoff > negBackoffMax || backoff <= 0 {
			backoff = negBackoffMax
		}
		e.failUntil = c.now().Add(backoff)
	}
	close(e.done)
	c.mu.Unlock()
	return val, err
}

// touch moves a settled positive entry to the LRU front. Caller holds mu.
func (c *PlanCache) touch(e *cacheEntry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// evictLocked drops least-recently-used settled plans beyond capacity.
// In-flight and negative entries don't occupy LRU slots. Caller holds mu.
func (c *PlanCache) evictLocked() {
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.evictions.Add(1)
	}
}

// Len reports the number of settled plans resident in the cache.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
