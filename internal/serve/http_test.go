package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gatesim/internal/obs"
)

// postSession posts a SessionRequest and decodes the NDJSON stream.
func postSession(t *testing.T, ts *httptest.Server, req *SessionRequest) (*http.Response, []streamLine) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil // error responses are plain text, not NDJSON
	}
	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return resp, lines
}

func TestHTTPSessionStream(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	resp, lines := postSession(t, ts, testReq("aes128", 11))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(lines) < 3 {
		t.Fatalf("stream has %d lines, want header+events+done", len(lines))
	}
	head, tail := lines[0], lines[len(lines)-1]
	if head.Type != "header" || head.Session == "" || head.Plan == "" || head.Cache != "miss" {
		t.Errorf("header line = %+v", head)
	}
	events := 0
	for _, l := range lines[1 : len(lines)-1] {
		if l.Type != "event" || l.Net == "" {
			t.Errorf("mid-stream line = %+v", l)
		}
		events++
	}
	if tail.Type != "done" || tail.State != "done" || tail.Events != int64(events) {
		t.Errorf("terminal line = %+v (saw %d events)", tail, events)
	}

	// Second identical request streams from the cached plan.
	_, lines2 := postSession(t, ts, testReq("aes128", 11))
	if lines2[0].Cache != "hit" {
		t.Errorf("second session header cache = %q, want hit", lines2[0].Cache)
	}

	// Status endpoint for the finished session.
	st, err := http.Get(ts.URL + "/v1/sessions/" + head.Session)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status map[string]any
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status["state"] != "done" {
		t.Errorf("status = %v", status)
	}
}

func TestHTTPBadRequestsAndStatuses(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Malformed body and unknown preset are client errors.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postSession(t, ts, &SessionRequest{Preset: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown preset status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/sessions/s999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPRateLimit429(t *testing.T) {
	sv := NewServer(Config{
		Registry:  obs.NewRegistry(),
		Admission: AdmissionConfig{Rate: 0.0001, Burst: 1},
	})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	resp, _ := postSession(t, ts, testReq("aes128", 11))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first session status = %d, want 200", resp.StatusCode)
	}
	resp, _ = postSession(t, ts, testReq("aes128", 11))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}
}

func TestHTTPDrain503(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry(), DrainTimeout: time.Second})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	if err := sv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, _ := postSession(t, ts, testReq("aes128", 11))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPSuspendResume(t *testing.T) {
	sv := NewServer(Config{Registry: obs.NewRegistry()})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Run a session that suspends at the first checkpoint: easiest to drive
	// through the Go API, then resume over HTTP.
	req := testReq("blabla", 7)
	req.SnapshotEverySlices = 1
	col := newCollector()
	s, err := sv.StartSession(t.Context(), req, func(s *Session) { s.Suspend() }, col.sink)
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != StateSuspended {
		t.Fatalf("state = %v, want suspended", s.State())
	}

	resp, err := http.Post(ts.URL+"/v1/sessions/"+s.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status = %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var last streamLine
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		last = streamLine{}
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Type != "done" || s.State() != StateDone {
		t.Errorf("resume terminal = %+v, state = %v", last, s.State())
	}
}
