package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/lane"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/sim"
)

// SessionState is the lifecycle of one streamed run.
type SessionState int32

const (
	StateQueued SessionState = iota
	StateRunning
	StateSuspended
	StateDone
	StateFailed
	StateCanceled
)

func (s SessionState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return "unknown"
}

// SessionLimits are the per-session resource bounds. Zero values pick
// serving defaults.
type SessionLimits struct {
	// Deadline is the wall-clock budget (default 60s).
	Deadline time.Duration
	// MaxSweeps bounds convergence per Advance (engine watchdog; default
	// 10000).
	MaxSweeps int
	// EventBudget caps committed events; the session fails with
	// ErrEventBudget when exceeded (default 50M; < 0 disables).
	EventBudget int64
	// SlicePS is the streaming window (default engine default).
	SlicePS int64
	// SnapshotEverySlices checkpoints the engine every N completed slices
	// for suspend/resume and restore-and-retry (default 4; < 0 disables).
	SnapshotEverySlices int
	// MaxRetries bounds automatic restore-and-retry after a contained gate
	// panic (default 1). The last retry degrades to ModeSerial.
	MaxRetries int
}

func (l *SessionLimits) defaults() {
	if l.Deadline <= 0 {
		l.Deadline = 60 * time.Second
	}
	if l.MaxSweeps <= 0 {
		l.MaxSweeps = 10000
	}
	if l.EventBudget == 0 {
		l.EventBudget = 50_000_000
	}
	if l.SnapshotEverySlices == 0 {
		l.SnapshotEverySlices = 4
	}
	if l.MaxRetries == 0 {
		l.MaxRetries = 1
	}
}

// ErrEventBudget marks a session stopped for exceeding its event budget.
var ErrEventBudget = errors.New("serve: session event budget exceeded")

// errSuspend threads the suspend request through the stream seam.
var errSuspend = errors.New("serve: session suspended")

// Session is one streamed simulation run over a cached plan. The engine is
// private to the session — a gate panic poisons this engine only; the plan
// and every other session keep running.
type Session struct {
	ID      string
	PlanKey string

	limits SessionLimits
	opts   sim.Options
	cp     *CachedPlan
	stim   []sim.Change
	// laneStim replaces stim for lane sessions (opts.Lanes > 1): the merged
	// multi-vector trace, one entry per (time, net) change point carrying
	// every lane's value.
	laneStim []sim.LaneChange
	watch    []netlist.NetID
	reg      *obs.Registry

	state   atomic.Int32
	suspend atomic.Bool

	mu       sync.Mutex
	cancel   context.CancelFunc
	snapshot bytes.Buffer // latest checkpoint (valid when snapAt > 0)
	snapAt   int64        // slice end the snapshot was taken at
	resumeAt int64        // where a suspended stream restarts
	lastErr  error
	events   atomic.Int64
	retries  int

	// lastSent dedups re-emitted events after a restore-and-retry: committed
	// streams are flushed in clean per-net time-prefix cuts, so an event at
	// or before the net's last delivered time was already delivered.
	lastSent map[netlist.NetID]int64

	poisonedSessions *obs.Counter
	retriesCounter   *obs.Counter
}

// State reports the session's lifecycle state.
func (s *Session) State() SessionState { return SessionState(s.state.Load()) }

// SnapshotAt reports the slice end of the latest checkpoint (0 = none yet).
func (s *Session) SnapshotAt() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapAt
}

// Events reports committed events delivered so far.
func (s *Session) Events() int64 { return s.events.Load() }

// Err reports the terminal error of a failed session.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Registry exposes the session's metrics registry.
func (s *Session) Registry() *obs.Registry { return s.reg }

// Suspend asks the session to stop at the next slice boundary, snapshotting
// for a later Resume. No-op unless running. Lane sessions ignore it: lane
// engines have no snapshots, so they run to completion or cancellation.
func (s *Session) Suspend() { s.suspend.Store(true) }

// Cancel aborts the session at the next sweep boundary.
func (s *Session) Cancel() {
	s.mu.Lock()
	c := s.cancel
	s.mu.Unlock()
	if c != nil {
		c()
	}
}

// setCancel publishes the run's cancel func under the session lock, so a
// concurrent Cancel (e.g. from Drain) never races the run's startup.
func (s *Session) setCancel(c context.CancelFunc) {
	s.mu.Lock()
	s.cancel = c
	s.mu.Unlock()
}

// run drives the session to completion, suspension, or failure, delivering
// watched events to sink in global time order. It owns the engine's whole
// lifecycle: build from the shared plan, stream with periodic snapshots,
// restore-and-retry after a contained panic (bounded, final retry in serial
// mode), surface everything else as a structured error.
func (s *Session) run(ctx context.Context, sink func(netlist.NetID, event.Event)) error {
	ctx, cancelDeadline := context.WithTimeout(ctx, s.limits.Deadline)
	defer cancelDeadline()
	ctx, cancel := context.WithCancel(ctx)
	s.setCancel(cancel)
	defer cancel()

	s.state.Store(int32(StateRunning))
	err := s.runAttempts(ctx, sink)
	switch {
	case err == nil:
		s.state.Store(int32(StateDone))
	case errors.Is(err, errSuspend):
		s.state.Store(int32(StateSuspended))
		err = nil
	case errors.Is(err, context.Canceled):
		s.setErr(err)
		s.state.Store(int32(StateCanceled))
	default:
		s.setErr(err)
		s.state.Store(int32(StateFailed))
	}
	return err
}

func (s *Session) setErr(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// runAttempts loops engine attempts: a contained gate panic with a usable
// snapshot triggers restore-and-retry up to MaxRetries (the final retry
// forces ModeSerial, mirroring the engine's own degrade ladder); any other
// error is terminal.
func (s *Session) runAttempts(ctx context.Context, sink func(netlist.NetID, event.Event)) error {
	opts := s.opts
	opts.MaxSweeps = s.limits.MaxSweeps
	opts.Metrics = s.reg

	e, err := sim.NewFromPlan(s.cp.Plan, opts)
	if err != nil {
		return fmt.Errorf("serve: engine construction: %w", err)
	}
	defer func() { e.Close() }()

	// A resumed session starts from its suspension snapshot.
	if s.resumeAt > 0 {
		s.mu.Lock()
		snap := append([]byte(nil), s.snapshot.Bytes()...)
		s.mu.Unlock()
		if err := e.LoadSnapshot(bytes.NewReader(snap)); err != nil {
			return fmt.Errorf("serve: resume restore: %w", err)
		}
	}

	for {
		err := s.streamOnce(ctx, e, sink)
		if err == nil {
			return nil
		}
		if !errors.Is(err, sim.ErrPoisoned) {
			return err
		}
		s.poisonedSessions.Add(1)
		s.mu.Lock()
		haveSnap := s.snapAt > 0
		s.mu.Unlock()
		if s.retries >= s.limits.MaxRetries || !haveSnap || ctx.Err() != nil {
			return err
		}
		s.retries++
		s.retriesCounter.Add(1)
		if s.retries >= s.limits.MaxRetries && e.Mode() != sim.ModeSerial {
			// Final retry: degrade to serial, the engine's own last rung.
			e.Close()
			serialOpts := opts
			serialOpts.Mode = sim.ModeSerial
			e2, err2 := sim.NewFromPlan(s.cp.Plan, serialOpts)
			if err2 != nil {
				return err
			}
			e = e2
		}
		s.mu.Lock()
		snap := append([]byte(nil), s.snapshot.Bytes()...)
		s.mu.Unlock()
		// LoadSnapshot replaces all engine state and clears the poison.
		if rerr := e.LoadSnapshot(bytes.NewReader(snap)); rerr != nil {
			return errors.Join(err, fmt.Errorf("serve: retry restore: %w", rerr))
		}
	}
}

// streamOnce runs one stream attempt from the current engine state. The
// stimulus source is positioned at the engine's restore point; the lastSent
// filter drops any events a prior attempt already delivered.
func (s *Session) streamOnce(ctx context.Context, e *sim.Engine, sink func(netlist.NetID, event.Event)) error {
	from := s.resumePoint()
	// First change at or past the restore point: everything before it was
	// injected (and converged past) before the snapshot was taken.
	idx := sort.Search(len(s.stim), func(i int) bool { return s.stim[i].Time >= from })
	src := sim.NewSliceSource(s.stim[idx:])

	slices := 0
	return e.RunStreamCtx(ctx, src, sim.StreamConfig{
		SlicePS: s.limits.SlicePS,
		Watch:   s.watch,
		OnEvent: func(nid netlist.NetID, ev event.Event) {
			if last, ok := s.lastSent[nid]; ok && ev.Time <= last {
				return // already delivered before a retry's restore point
			}
			s.lastSent[nid] = ev.Time
			s.events.Add(1)
			if sink != nil {
				sink(nid, ev)
			}
		},
		AfterSlice: func(end int64) error {
			if s.limits.EventBudget > 0 {
				if st := e.Stats(); st.EventsCommitted > s.limits.EventBudget {
					return fmt.Errorf("%w: %d committed > budget %d",
						ErrEventBudget, st.EventsCommitted, s.limits.EventBudget)
				}
			}
			slices++
			wantSnap := s.limits.SnapshotEverySlices > 0 && slices%s.limits.SnapshotEverySlices == 0
			if s.suspend.Load() {
				wantSnap = true
			}
			if wantSnap {
				s.mu.Lock()
				s.snapshot.Reset()
				err := e.SaveSnapshot(&s.snapshot)
				if err != nil {
					s.snapshot.Reset()
				} else {
					s.snapAt = end
				}
				s.mu.Unlock()
				if err != nil {
					return fmt.Errorf("serve: checkpoint: %w", err)
				}
			}
			if s.suspend.Load() {
				s.suspend.Store(false)
				s.mu.Lock()
				s.resumeAt = end
				s.mu.Unlock()
				return errSuspend
			}
			return nil
		},
	})
}

// runLane is run's lane-mode twin. Lane engines have no snapshots, so there
// is no checkpoint cadence, no suspension, and no restore-and-retry: a
// contained gate panic is terminal for this session (the shared plan and
// every other session keep running). Deadline, cancel, sweep watchdog and
// event budget apply exactly as in scalar sessions.
func (s *Session) runLane(ctx context.Context, sink func(netlist.NetID, sim.LaneChange)) error {
	ctx, cancelDeadline := context.WithTimeout(ctx, s.limits.Deadline)
	defer cancelDeadline()
	ctx, cancel := context.WithCancel(ctx)
	s.setCancel(cancel)
	defer cancel()

	s.state.Store(int32(StateRunning))
	err := s.streamLane(ctx, sink)
	switch {
	case err == nil:
		s.state.Store(int32(StateDone))
	case errors.Is(err, context.Canceled):
		s.setErr(err)
		s.state.Store(int32(StateCanceled))
	default:
		if errors.Is(err, sim.ErrPoisoned) {
			s.poisonedSessions.Add(1)
		}
		s.setErr(err)
		s.state.Store(int32(StateFailed))
	}
	return err
}

// streamLane runs the session's single lane-mode attempt: the whole merged
// trace through a fresh engine, watched lane events to sink in global time
// order. No lastSent dedup is needed — with no retries every event commits
// exactly once.
func (s *Session) streamLane(ctx context.Context, sink func(netlist.NetID, sim.LaneChange)) error {
	opts := s.opts
	opts.MaxSweeps = s.limits.MaxSweeps
	opts.Metrics = s.reg

	e, err := sim.NewFromPlan(s.cp.Plan, opts)
	if err != nil {
		return fmt.Errorf("serve: engine construction: %w", err)
	}
	defer e.Close()

	return e.RunLaneStreamCtx(ctx, s.laneStim, sim.LaneStreamConfig{
		SlicePS: s.limits.SlicePS,
		Watch:   s.watch,
		OnEvent: func(nid netlist.NetID, t int64, mask uint32, w lane.Word) {
			s.events.Add(1)
			if sink != nil {
				sink(nid, sim.LaneChange{Net: nid, Time: t, Mask: mask, Word: w})
			}
		},
		AfterSlice: func(end int64) error {
			if s.limits.EventBudget > 0 {
				if st := e.Stats(); st.EventsCommitted > s.limits.EventBudget {
					return fmt.Errorf("%w: %d committed > budget %d",
						ErrEventBudget, st.EventsCommitted, s.limits.EventBudget)
				}
			}
			return nil
		},
	})
}

// resumePoint is the stimulus time the current engine state corresponds to:
// the restore snapshot's slice end, or 0 on a fresh engine.
func (s *Session) resumePoint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resumeAt > 0 {
		return s.resumeAt
	}
	if s.retries > 0 {
		return s.snapAt
	}
	return 0
}
