package logic

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := map[Value]string{V0: "0", V1: "1", VX: "X", VZ: "Z", VR: "R", VF: "F", VU: "U"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Value(%d).String() = %q, want %q", v, got, want)
		}
	}
	if got := Value(99).String(); got != "Value(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseValue(t *testing.T) {
	for _, c := range []byte("01xXzZrRfFuU") {
		v, err := ParseValue(c)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c, err)
		}
		if v >= NumValues {
			t.Fatalf("ParseValue(%q) = %d out of range", c, v)
		}
	}
	if _, err := ParseValue('q'); err == nil {
		t.Error("ParseValue('q') should fail")
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	for v := V0; v < NumValues; v++ {
		got, err := ParseValue(v.String()[0])
		if err != nil || got != v {
			t.Errorf("round trip %v -> %v, err=%v", v, got, err)
		}
	}
}

func TestSettleBefore(t *testing.T) {
	if VR.Settle() != V1 || VF.Settle() != V0 {
		t.Error("edge Settle wrong")
	}
	if VR.Before() != V0 || VF.Before() != V1 {
		t.Error("edge Before wrong")
	}
	for _, v := range []Value{V0, V1, VX, VZ, VU} {
		if v.Settle() != v || v.Before() != v {
			t.Errorf("%v should be fixed by Settle/Before", v)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !V0.IsSteady() || !VZ.IsSteady() || VR.IsSteady() || VU.IsSteady() {
		t.Error("IsSteady wrong")
	}
	if !VR.IsEdge() || !VF.IsEdge() || V1.IsEdge() {
		t.Error("IsEdge wrong")
	}
	if VU.IsDetermined() || !VX.IsDetermined() {
		t.Error("IsDetermined wrong")
	}
}

func TestKleeneTables(t *testing.T) {
	// Exhaustive truth tables over {0,1,X}.
	type binCase struct {
		f       func(a, b Value) Value
		name    string
		results [3][3]Value // indexed [a][b] over 0,1,X
	}
	cases := []binCase{
		{And, "And", [3][3]Value{{V0, V0, V0}, {V0, V1, VX}, {V0, VX, VX}}},
		{Or, "Or", [3][3]Value{{V0, V1, VX}, {V1, V1, V1}, {VX, V1, VX}}},
		{Xor, "Xor", [3][3]Value{{V0, V1, VX}, {V1, V0, VX}, {VX, VX, VX}}},
	}
	vals := []Value{V0, V1, VX}
	for _, c := range cases {
		for i, a := range vals {
			for j, b := range vals {
				if got := c.f(a, b); got != c.results[i][j] {
					t.Errorf("%s(%v,%v) = %v, want %v", c.name, a, b, got, c.results[i][j])
				}
			}
		}
	}
	if Not(V0) != V1 || Not(V1) != V0 || Not(VX) != VX || Not(VZ) != VX {
		t.Error("Not wrong")
	}
}

func TestZAndUReadAsX(t *testing.T) {
	for _, v := range []Value{VZ, VU} {
		if And(v, V1) != VX || Or(v, V0) != VX || Xor(v, V1) != VX {
			t.Errorf("%v must behave as X in gates", v)
		}
	}
	// But dominant inputs still win.
	if And(VZ, V0) != V0 || Or(VU, V1) != V1 {
		t.Error("dominance through Z/U broken")
	}
}

func TestMerge(t *testing.T) {
	if Merge(V1, V1) != V1 || Merge(V0, V0) != V0 {
		t.Error("Merge of equals must be identity")
	}
	if Merge(V0, V1) != VX || Merge(V1, VX) != VX {
		t.Error("Merge of conflicts must be X")
	}
}

// Property: And/Or/Xor are commutative and monotone with respect to
// information: replacing an input by X never turns an X output into a
// determined one that disagrees.
func TestKleenePropertyCommutative(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Value(a%NumValues), Value(b%NumValues)
		return And(x, y) == And(y, x) && Or(x, y) == Or(y, x) && Xor(x, y) == Xor(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKleenePropertyXAbsorbs(t *testing.T) {
	// If f(a,b) is determined, then it must equal f(a',b) whenever a' could
	// be a: i.e. determined results never depend on an X input alone.
	ops := []func(a, b Value) Value{And, Or, Xor}
	for _, f := range ops {
		for _, b := range []Value{V0, V1, VX} {
			r := f(VX, b)
			if r == VX {
				continue
			}
			if f(V0, b) != r || f(V1, b) != r {
				t.Errorf("determined f(X,%v)=%v but refinements disagree", b, r)
			}
		}
	}
}

func TestFormatValues(t *testing.T) {
	if got := FormatValues([]Value{V0, V1, VX, VR}); got != "01XR" {
		t.Errorf("FormatValues = %q", got)
	}
}

func TestEdgeCode(t *testing.T) {
	cases := []struct{ old, new, want Value }{
		{V0, V1, VR},
		{V1, V0, VF},
		{V0, V0, V0},
		{V1, V1, V1},
		{VX, V1, VX}, // maybe-edge
		{VU, V1, VX},
		{VZ, V0, VX},
		{V0, VX, VX},
		{V1, VX, VX},
		{VX, VX, VX},
	}
	for _, c := range cases {
		if got := EdgeCode(c.old, c.new); got != c.want {
			t.Errorf("EdgeCode(%v,%v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}
