package logic

import (
	"fmt"
	"strings"
)

// Expr is a parsed Liberty boolean function over named variables.
//
// Supported syntax (the common subset found in Liberty function strings):
//
//	expr   := term   (('|' | '+') term)*
//	term   := factor (('&' | '*' | ' ') factor)*     -- juxtaposition = AND
//	factor := unary ('^' unary)*
//	unary  := '!' unary | atom '\''* | atom
//	atom   := IDENT | '0' | '1' | '(' expr ')'
//
// Both '!' prefix and '\” postfix negation are accepted, matching Liberty
// practice.
type Expr struct {
	root exprNode
	vars []string // distinct variable names in first-appearance order
	src  string
}

type exprKind uint8

const (
	exprVar exprKind = iota
	exprConst
	exprNot
	exprAnd
	exprOr
	exprXor
)

type exprNode struct {
	kind exprKind
	// exprVar: index into Expr.vars. exprConst: 0 or 1.
	arg int
	// children (nil for leaves)
	a, b *exprNode
}

// ParseExpr parses a Liberty boolean function string.
func ParseExpr(src string) (*Expr, error) {
	p := &exprParser{src: src, e: &Expr{src: src}}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("logic: trailing input at %d in %q", p.pos, src)
	}
	p.e.root = root
	return p.e, nil
}

// MustParseExpr is ParseExpr that panics on error, for static tables.
func MustParseExpr(src string) *Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Vars returns the distinct variable names referenced by the expression, in
// order of first appearance.
func (e *Expr) Vars() []string { return e.vars }

// String returns the original source of the expression.
func (e *Expr) String() string { return e.src }

// Eval evaluates the expression with the given variable binding. Missing
// variables read as X. Values are collapsed to Kleene {0,1,X} first.
func (e *Expr) Eval(env map[string]Value) Value {
	vals := make([]Value, len(e.vars))
	for i, name := range e.vars {
		if v, ok := env[name]; ok {
			vals[i] = v.ToKleene()
		} else {
			vals[i] = VX
		}
	}
	return e.EvalVec(vals)
}

// EvalVec evaluates with values bound positionally to Vars(). It collapses
// each input to the Kleene domain first, so edges and U read as their
// conservative steady interpretation (R->1, F->0, U->X).
func (e *Expr) EvalVec(vals []Value) Value {
	return evalNode(&e.root, vals)
}

func evalNode(n *exprNode, vals []Value) Value {
	switch n.kind {
	case exprVar:
		if n.arg < len(vals) {
			return vals[n.arg].ToKleene()
		}
		return VX
	case exprConst:
		if n.arg == 0 {
			return V0
		}
		return V1
	case exprNot:
		return Not(evalNode(n.a, vals))
	case exprAnd:
		return And(evalNode(n.a, vals), evalNode(n.b, vals))
	case exprOr:
		return Or(evalNode(n.a, vals), evalNode(n.b, vals))
	case exprXor:
		return Xor(evalNode(n.a, vals), evalNode(n.b, vals))
	}
	return VX
}

type exprParser struct {
	src string
	pos int
	e   *Expr
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) parseOr() (exprNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return exprNode{}, err
	}
	for {
		p.skipSpace()
		c := p.peek()
		if c != '|' && c != '+' {
			return left, nil
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return exprNode{}, err
		}
		l := left
		left = exprNode{kind: exprOr, a: &l, b: &right}
	}
}

// parseAnd handles explicit '&'/'*' and implicit juxtaposition ("A B" = A&B).
func (p *exprParser) parseAnd() (exprNode, error) {
	left, err := p.parseXor()
	if err != nil {
		return exprNode{}, err
	}
	for {
		save := p.pos
		p.skipSpace()
		c := p.peek()
		switch {
		case c == '&' || c == '*':
			p.pos++
		case c == '!' || c == '(' || isIdentStart(c) || c == '0' || c == '1':
			// implicit AND via juxtaposition; keep pos (already skipped space)
		default:
			p.pos = save
			return left, nil
		}
		right, err := p.parseXor()
		if err != nil {
			return exprNode{}, err
		}
		l := left
		left = exprNode{kind: exprAnd, a: &l, b: &right}
	}
}

func (p *exprParser) parseXor() (exprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return exprNode{}, err
	}
	for {
		p.skipSpace()
		if p.peek() != '^' {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return exprNode{}, err
		}
		l := left
		left = exprNode{kind: exprXor, a: &l, b: &right}
	}
}

func (p *exprParser) parseUnary() (exprNode, error) {
	p.skipSpace()
	if p.peek() == '!' {
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return exprNode{}, err
		}
		return exprNode{kind: exprNot, a: &inner}, nil
	}
	atom, err := p.parseAtom()
	if err != nil {
		return exprNode{}, err
	}
	// Postfix ' negation, possibly repeated.
	for p.peek() == '\'' {
		p.pos++
		a := atom
		atom = exprNode{kind: exprNot, a: &a}
	}
	return atom, nil
}

func (p *exprParser) parseAtom() (exprNode, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return exprNode{}, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return exprNode{}, fmt.Errorf("logic: expected ')' at %d in %q", p.pos, p.src)
		}
		p.pos++
		return inner, nil
	case c == '0' || c == '1':
		p.pos++
		return exprNode{kind: exprConst, arg: int(c - '0')}, nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		return exprNode{kind: exprVar, arg: p.varIndex(name)}, nil
	}
	return exprNode{}, fmt.Errorf("logic: unexpected character %q at %d in %q", c, p.pos, p.src)
}

func (p *exprParser) varIndex(name string) int {
	for i, v := range p.e.vars {
		if v == name {
			return i
		}
	}
	p.e.vars = append(p.e.vars, name)
	return len(p.e.vars) - 1
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '[' || c == ']' || c == '.'
}

// RenameVars returns a copy of the expression whose variable list is the
// given superset ordering; every variable of e must appear in vars.
// It is used to align an output function and the sequential control
// expressions of a cell onto one shared input ordering.
func (e *Expr) RenameVars(vars []string) (*Expr, error) {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	remap := make([]int, len(e.vars))
	for i, v := range e.vars {
		j, ok := idx[v]
		if !ok {
			return nil, fmt.Errorf("logic: variable %q of %q not in %s", v, e.src, strings.Join(vars, ","))
		}
		remap[i] = j
	}
	out := &Expr{vars: append([]string(nil), vars...), src: e.src}
	out.root = remapNode(&e.root, remap)
	return out, nil
}

func remapNode(n *exprNode, remap []int) exprNode {
	out := *n
	if n.kind == exprVar {
		out.arg = remap[n.arg]
	}
	if n.a != nil {
		a := remapNode(n.a, remap)
		out.a = &a
	}
	if n.b != nil {
		b := remapNode(n.b, remap)
		out.b = &b
	}
	return out
}
