package logic

import (
	"math/rand"
	"testing"
)

func env(pairs ...any) map[string]Value {
	m := make(map[string]Value)
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(Value)
	}
	return m
}

func TestParseExprBasic(t *testing.T) {
	cases := []struct {
		src  string
		env  map[string]Value
		want Value
	}{
		{"A & B", env("A", V1, "B", V1), V1},
		{"A & B", env("A", V1, "B", V0), V0},
		{"A * B", env("A", V1, "B", V1), V1},
		{"A | B", env("A", V0, "B", V1), V1},
		{"A + B", env("A", V0, "B", V0), V0},
		{"A ^ B", env("A", V1, "B", V1), V0},
		{"!A", env("A", V0), V1},
		{"A'", env("A", V1), V0},
		{"A''", env("A", V1), V1},
		{"(A & B) | C", env("A", V0, "B", V1, "C", V1), V1},
		{"!(A | B)", env("A", V0, "B", V0), V1},
		{"A B", env("A", V1, "B", V1), V1}, // juxtaposition AND
		{"A B", env("A", V1, "B", V0), V0},
		{"1", nil, V1},
		{"0", nil, V0},
		{"A & 1", env("A", V1), V1},
		{"CLK_N'", env("CLK_N", V0), V1},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.src, err)
		}
		if got := e.Eval(c.env); got != c.want {
			t.Errorf("%q with %v = %v, want %v", c.src, c.env, got, c.want)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	// OR binds loosest, then AND, then XOR, then NOT.
	e := MustParseExpr("A | B & C")
	if got := e.Eval(env("A", V1, "B", V0, "C", V0)); got != V1 {
		t.Errorf("A|B&C mis-parsed: got %v", got)
	}
	e = MustParseExpr("A & B ^ C") // = A & (B ^ C)
	if got := e.Eval(env("A", V1, "B", V1, "C", V1)); got != V0 {
		t.Errorf("A&B^C mis-parsed: got %v", got)
	}
	e = MustParseExpr("!A & B")
	if got := e.Eval(env("A", V0, "B", V1)); got != V1 {
		t.Errorf("!A&B mis-parsed: got %v", got)
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{"", "A &", "(A", "A ) B", "&A", "A @ B", "A B &"} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestExprVarsOrder(t *testing.T) {
	e := MustParseExpr("(B & A) | C | A")
	vars := e.Vars()
	if len(vars) != 3 || vars[0] != "B" || vars[1] != "A" || vars[2] != "C" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestExprMissingVarIsX(t *testing.T) {
	e := MustParseExpr("A & B")
	if got := e.Eval(env("A", V1)); got != VX {
		t.Errorf("missing var should read X: got %v", got)
	}
	if got := e.Eval(env("A", V0)); got != V0 {
		t.Errorf("0 should dominate missing var: got %v", got)
	}
}

func TestExprEvalVec(t *testing.T) {
	e := MustParseExpr("A ^ B")
	if got := e.EvalVec([]Value{V1, V0}); got != V1 {
		t.Errorf("EvalVec = %v", got)
	}
	// Edges settle before evaluation.
	if got := e.EvalVec([]Value{VR, V0}); got != V1 {
		t.Errorf("EvalVec with R = %v", got)
	}
}

func TestRenameVars(t *testing.T) {
	e := MustParseExpr("B & A")
	r, err := e.RenameVars([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.EvalVec([]Value{V1, V1, V0}); got != V1 {
		t.Errorf("renamed eval = %v", got)
	}
	if got := r.EvalVec([]Value{V0, V1, V1}); got != V0 {
		t.Errorf("renamed eval = %v", got)
	}
	if _, err := e.RenameVars([]string{"A"}); err == nil {
		t.Error("RenameVars with missing variable should fail")
	}
}

// Property test: evaluation on random expressions agrees with a separately
// written reference evaluator over {0,1}.
func TestExprRandomAgainstBool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []string{"A", "B", "C", "D"}
	var build func(depth int) string
	build = func(depth int) string {
		if depth == 0 || rng.Intn(3) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		switch rng.Intn(4) {
		case 0:
			return "(" + build(depth-1) + " & " + build(depth-1) + ")"
		case 1:
			return "(" + build(depth-1) + " | " + build(depth-1) + ")"
		case 2:
			return "(" + build(depth-1) + " ^ " + build(depth-1) + ")"
		default:
			return "!" + "(" + build(depth-1) + ")"
		}
	}
	for trial := 0; trial < 200; trial++ {
		src := build(4)
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		for assign := 0; assign < 16; assign++ {
			m := make(map[string]Value)
			bools := make(map[string]bool)
			for i, v := range vars {
				b := assign&(1<<i) != 0
				bools[v] = b
				if b {
					m[v] = V1
				} else {
					m[v] = V0
				}
			}
			want := boolEval(src, bools)
			got := e.Eval(m)
			wantV := V0
			if want {
				wantV = V1
			}
			if got != wantV {
				t.Fatalf("%q under %v: got %v want %v", src, bools, got, wantV)
			}
		}
	}
}

// boolEval is an independent recursive-descent evaluator over pure booleans,
// used only as a test oracle.
func boolEval(src string, env map[string]bool) bool {
	pos := 0
	var or func() bool
	var and func() bool
	var xor func() bool
	var unary func() bool
	skip := func() {
		for pos < len(src) && src[pos] == ' ' {
			pos++
		}
	}
	unary = func() bool {
		skip()
		if src[pos] == '!' {
			pos++
			return !unary()
		}
		if src[pos] == '(' {
			pos++
			v := or()
			skip()
			pos++ // ')'
			return v
		}
		start := pos
		for pos < len(src) && isIdentChar(src[pos]) {
			pos++
		}
		return env[src[start:pos]]
	}
	xor = func() bool {
		v := unary()
		for {
			skip()
			if pos < len(src) && src[pos] == '^' {
				pos++
				v = v != unary()
			} else {
				return v
			}
		}
	}
	and = func() bool {
		v := xor()
		for {
			skip()
			if pos < len(src) && src[pos] == '&' {
				pos++
				w := xor()
				v = v && w
			} else {
				return v
			}
		}
	}
	or = func() bool {
		v := and()
		for {
			skip()
			if pos < len(src) && src[pos] == '|' {
				pos++
				w := and()
				v = v || w
			} else {
				return v
			}
		}
	}
	return or()
}
