// Package logic implements the multi-valued logic system used throughout the
// simulator: the four steady-state values 0, 1, X, Z; the transient edge
// markers R (rising) and F (falling) used when querying sequential truth
// tables; and the undetermined marker U that powers the stable-time
// mechanism of the paper (§III-A).
//
// It also provides a parser and Kleene-style evaluator for Liberty boolean
// function expressions ("(A & !B) | C"), which are used both for
// combinational cell functions and for sequential control expressions such
// as clocked_on, enable, clear and preset.
package logic

import "fmt"

// Value is one symbol of the extended logic alphabet.
//
// The ordering is load-bearing: V0..VZ are the four steady-state values used
// as internal-state table indices, VR/VF extend the alphabet for
// edge-sensitive inputs, and VU ("undetermined") always sorts last so that a
// table dimension with k determined choices uses indices 0..k-1 and index k
// for U.
type Value uint8

const (
	V0 Value = iota // logic low
	V1              // logic high
	VX              // unknown
	VZ              // high impedance
	VR              // rising edge (0 -> 1) at this instant
	VF              // falling edge (1 -> 0) at this instant
	VU              // undetermined: beyond the pin's stable time

	// NumValues is the size of the full alphabet.
	NumValues = 7
)

// String returns the canonical single-letter spelling of v.
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	case VX:
		return "X"
	case VZ:
		return "Z"
	case VR:
		return "R"
	case VF:
		return "F"
	case VU:
		return "U"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// ParseValue converts a single character to a Value. It accepts the VCD
// spellings (0, 1, x, z) as well as the truth-table spellings (R, F, U).
func ParseValue(c byte) (Value, error) {
	switch c {
	case '0':
		return V0, nil
	case '1':
		return V1, nil
	case 'x', 'X':
		return VX, nil
	case 'z', 'Z':
		return VZ, nil
	case 'r', 'R':
		return VR, nil
	case 'f', 'F':
		return VF, nil
	case 'u', 'U':
		return VU, nil
	}
	return VX, fmt.Errorf("logic: invalid value character %q", c)
}

// IsSteady reports whether v is one of the four steady-state values.
func (v Value) IsSteady() bool { return v <= VZ }

// IsEdge reports whether v is a transient edge marker.
func (v Value) IsEdge() bool { return v == VR || v == VF }

// IsDetermined reports whether v carries information (anything but U).
func (v Value) IsDetermined() bool { return v != VU }

// Settle maps an edge marker to the steady value it settles to after the
// instant of the edge, and leaves every other value unchanged.
func (v Value) Settle() Value {
	switch v {
	case VR:
		return V1
	case VF:
		return V0
	}
	return v
}

// Before returns the steady value an edge marker implies immediately before
// the instant of the edge, and leaves every other value unchanged.
func (v Value) Before() Value {
	switch v {
	case VR:
		return V0
	case VF:
		return V1
	}
	return v
}

// ToKleene collapses the value onto the three-valued {0,1,X} domain used for
// boolean evaluation: Z and U read as X, edges read as their settled value.
func (v Value) ToKleene() Value {
	switch v {
	case V0, V1:
		return v
	case VR:
		return V1
	case VF:
		return V0
	default:
		return VX
	}
}

// Merge combines two candidate values for the same storage element: equal
// values survive, conflicting values collapse to X. It is used when an
// ambiguous clock edge may or may not have captured new data.
func Merge(a, b Value) Value {
	if a == b {
		return a
	}
	return VX
}

// Not returns the Kleene negation of v.
func Not(v Value) Value {
	switch v.ToKleene() {
	case V0:
		return V1
	case V1:
		return V0
	default:
		return VX
	}
}

// And returns the Kleene conjunction of a and b (0 dominates X).
func And(a, b Value) Value {
	ka, kb := a.ToKleene(), b.ToKleene()
	switch {
	case ka == V0 || kb == V0:
		return V0
	case ka == V1 && kb == V1:
		return V1
	default:
		return VX
	}
}

// Or returns the Kleene disjunction of a and b (1 dominates X).
func Or(a, b Value) Value {
	ka, kb := a.ToKleene(), b.ToKleene()
	switch {
	case ka == V1 || kb == V1:
		return V1
	case ka == V0 && kb == V0:
		return V0
	default:
		return VX
	}
}

// Xor returns the Kleene exclusive-or of a and b.
func Xor(a, b Value) Value {
	ka, kb := a.ToKleene(), b.ToKleene()
	if ka == VX || kb == VX {
		return VX
	}
	if ka == kb {
		return V0
	}
	return V1
}

// FormatValues renders a value vector like "01XR".
func FormatValues(vs []Value) string {
	b := make([]byte, len(vs))
	for i, v := range vs {
		b[i] = v.String()[0]
	}
	return string(b)
}

// EdgeCode returns the value to present to a truth-table query at the
// instant an input transitions from old to new: a definite edge marker for
// 0->1 / 1->0, the steady value when nothing changed, and X (the
// conservative "maybe edge") when the previous value is unknown (X, Z or U).
// Every simulator in this repository uses this one rule, which is what makes
// their event streams comparable.
func EdgeCode(old, new Value) Value {
	o, n := old.ToKleene(), new.ToKleene()
	switch {
	case o == V0 && n == V1:
		return VR
	case o == V1 && n == V0:
		return VF
	case o == n:
		return n
	default:
		return VX
	}
}
