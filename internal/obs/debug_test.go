package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func debugGet(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func debugReport(t *testing.T, addr, path string) Report {
	t.Helper()
	code, body := debugGet(t, addr, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, code)
	}
	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("GET %s: not a report: %v", path, err)
	}
	return rep
}

// TestDebugServerNoLatestWinsSteal is the regression for the "latest wins"
// pointer swap: starting a second DebugServer must not redirect the first
// server's /debug/metrics to the second registry.
func TestDebugServerNoLatestWinsSteal(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("first.count").Add(11)
	d1, err := StartDebug("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()

	r2 := NewRegistry()
	r2.Counter("second.count").Add(22)
	d2, err := StartDebug("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	rep1 := debugReport(t, d1.Addr(), "/debug/metrics")
	if rep1.Counters["first.count"] != 11 {
		t.Fatalf("first server report = %v, want its own registry", rep1.Counters)
	}
	if _, stolen := rep1.Counters["second.count"]; stolen {
		t.Fatal("second StartDebug stole the first server's /debug/metrics")
	}
	rep2 := debugReport(t, d2.Addr(), "/debug/metrics")
	if rep2.Counters["second.count"] != 22 {
		t.Fatalf("second server report = %v, want its own registry", rep2.Counters)
	}
}

// TestDebugServerNamedRegistries covers Register/Unregister: per-session
// registries appear under /debug/metrics/<name>, the index lists them, and
// unregistering returns them to 404 — all without touching the primary.
func TestDebugServerNamedRegistries(t *testing.T) {
	prim := NewRegistry()
	prim.Counter("proc.up").Add(1)
	d, err := StartDebug("127.0.0.1:0", prim)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sess := NewRegistry()
	sess.Counter("sim.sweeps").Add(7)
	d.Register("session-1", sess)
	other := NewRegistry()
	other.Counter("sim.sweeps").Add(9)
	d.Register("session-2", other)

	rep := debugReport(t, d.Addr(), "/debug/metrics/session-1")
	if rep.Counters["sim.sweeps"] != 7 {
		t.Fatalf("named registry report = %v, want sim.sweeps=7", rep.Counters)
	}
	if prim := debugReport(t, d.Addr(), "/debug/metrics"); prim.Counters["proc.up"] != 1 {
		t.Fatalf("primary clobbered by Register: %v", prim.Counters)
	}

	code, body := debugGet(t, d.Addr(), "/debug/metrics/")
	if code != http.StatusOK {
		t.Fatalf("index status %d", code)
	}
	if s := string(body); !strings.Contains(s, `"session-1"`) || !strings.Contains(s, `"session-2"`) {
		t.Fatalf("index %s missing registered names", s)
	}

	// Re-registering a name replaces its registry.
	repl := NewRegistry()
	repl.Counter("sim.sweeps").Add(100)
	d.Register("session-1", repl)
	if rep := debugReport(t, d.Addr(), "/debug/metrics/session-1"); rep.Counters["sim.sweeps"] != 100 {
		t.Fatalf("re-Register did not replace: %v", rep.Counters)
	}

	d.Unregister("session-1")
	if code, _ := debugGet(t, d.Addr(), "/debug/metrics/session-1"); code != http.StatusNotFound {
		t.Fatalf("unregistered name served status %d, want 404", code)
	}
	if code, _ := debugGet(t, d.Addr(), "/debug/metrics/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown name served status %d, want 404", code)
	}
}
