// Package obs is the repository's always-on observability subsystem: a
// low-overhead metrics layer (atomic counters, gauges and fixed-bucket
// latency histograms behind a named registry), a structured trace recorder
// emitting Chrome/Perfetto trace-event JSON, a JSON run-report writer, and
// an optional live introspection HTTP endpoint (expvar + pprof).
//
// # The disabled path is the default path
//
// Every instrument is a pointer whose methods are nil-receiver-safe: a nil
// *Counter, *Gauge, *Histogram or *Trace turns each record site into a
// single predictable-branch pointer test (~1 ns, zero allocations — the
// obs tests assert this). A nil *Registry hands out nil instruments, so
// instrumented code asks for its metrics unconditionally at construction
// and never branches on "is observability on" anywhere else:
//
//	sweeps := opts.Metrics.Counter("sim.sweeps") // nil registry -> nil counter
//	...
//	sweeps.Inc() // no-op when disabled
//
// Simulator hot loops (per-gate visits, truth-table queries) stay on their
// existing scratch counters; obs instruments sit at sweep, round, slice and
// phase granularity, where one atomic add is noise.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; 0 on a nil receiver.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument.
type Gauge struct{ v atomic.Int64 }

// Set records the current value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger. No-op on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value; 0 on a nil receiver.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). 44 buckets cover 1 ns up to
// ~2.4 hours when observing nanoseconds.
const histBuckets = 44

// Histogram is a fixed-bucket power-of-two latency histogram. Observe is one
// atomic add per bucket plus count and sum; there is no locking and no
// allocation after construction.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample (conventionally nanoseconds). Negative samples
// clamp to 0. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Count returns the number of samples; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sample total; 0 on a nil receiver.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot copies the histogram, trimming trailing empty buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	top := 0
	var b [histBuckets]int64
	for i := range b {
		b[i] = h.buckets[i].Load()
		if b[i] != 0 {
			top = i + 1
		}
	}
	s.Buckets = append([]int64(nil), b[:top]...)
	return s
}

// Registry hands out named instruments and snapshots them all at once.
// Asking twice for the same name returns the same instrument; distinct
// kinds share one namespace per kind. A nil *Registry returns nil
// instruments, which is the whole disabled path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil on a nil
// receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil on a
// nil receiver.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
