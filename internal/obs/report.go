package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"strings"
)

// HistogramSnapshot is the serialized form of one Histogram. Bucket i counts
// samples v with v == 0 (i = 0) or 2^(i-1) <= v < 2^i; trailing empty
// buckets are trimmed.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Report is the full metric snapshot of one run: the machine-readable
// record the -metrics CLI flag writes and the debug endpoint serves. It is
// also embedded in the harness's BENCH_*.json reports, making them a
// superset of the pre-obs schema.
type Report struct {
	GoVersion  string `json:"go_version,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`

	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument in the registry. Counters and
// histograms keep accumulating afterwards; the snapshot is a consistent
// point-in-time copy per instrument (not across instruments, which polling
// a live run cannot have anyway). Returns a zero Report on a nil receiver.
func (r *Registry) Snapshot() Report {
	rep := Report{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		rep.Counters = make(map[string]int64, len(r.counters))
		for _, k := range sortedKeys(r.counters) {
			rep.Counters[k] = r.counters[k].Load()
		}
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]int64, len(r.gauges))
		for _, k := range sortedKeys(r.gauges) {
			rep.Gauges[k] = r.gauges[k].Load()
		}
	}
	if len(r.hists) > 0 {
		rep.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for _, k := range sortedKeys(r.hists) {
			rep.Histograms[k] = r.hists[k].snapshot()
		}
	}
	return rep
}

// PhaseNS extracts total wall time per instrumented phase from the report:
// every histogram whose name ends in "_ns" contributes its sum under the
// name with the suffix stripped. This is the "where does the time go"
// breakdown the bench reports carry.
func (rep Report) PhaseNS() map[string]int64 {
	if len(rep.Histograms) == 0 {
		return nil
	}
	out := make(map[string]int64)
	for name, h := range rep.Histograms {
		if phase, ok := strings.CutSuffix(name, "_ns"); ok {
			out[phase] = h.Sum
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteReport serializes the registry snapshot as indented JSON.
func (r *Registry) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
