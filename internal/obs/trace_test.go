package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestTraceGolden is the golden validity test from the issue: record a
// realistic span/counter mix and check the emitted bytes are valid Chrome
// trace-event JSON with monotonic timestamps and balanced begin/end pairs.
func TestTraceGolden(t *testing.T) {
	tr := NewTrace()
	coord := tr.Thread("coordinator")
	worker := tr.Thread("worker-0")
	if coord != 1 || worker != 2 {
		t.Fatalf("thread ids = %d, %d, want 1, 2", coord, worker)
	}

	tr.Begin(coord, "slice")
	for i := 0; i < 3; i++ {
		tr.Begin(coord, "sweep")
		tr.Begin(worker, "round")
		tr.End(worker)
		tr.End(coord)
		tr.Count("events_committed", int64(10*(i+1)))
	}
	tr.Count("watermark_ps", 5000)
	tr.End(coord)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace failed validation: %v\n%s", err, buf.String())
	}

	// Spot-check structure beyond the shared validator.
	var file struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if file.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", file.DisplayTimeUnit)
	}
	var sweeps, counters, meta int
	for _, ev := range file.TraceEvents {
		switch {
		case ev.Ph == "B" && ev.Name == "sweep":
			sweeps++
		case ev.Ph == "C":
			counters++
		case ev.Ph == "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event name = %q, want thread_name", ev.Name)
			}
			if _, ok := ev.Args["name"]; !ok {
				t.Fatalf("thread_name metadata missing args.name")
			}
		}
	}
	if sweeps != 3 {
		t.Fatalf("sweep begin events = %d, want 3", sweeps)
	}
	if counters != 4 {
		t.Fatalf("counter events = %d, want 4", counters)
	}
	if meta != 2 {
		t.Fatalf("metadata events = %d, want 2", meta)
	}
}

// TestTraceClosesOpenSpans: a trace written mid-run (e.g. after ctrl-C) must
// still be balanced — WriteJSON closes whatever is open.
func TestTraceClosesOpenSpans(t *testing.T) {
	tr := NewTrace()
	tid := tr.Thread("coordinator")
	tr.Begin(tid, "outer")
	tr.Begin(tid, "inner") // never ended

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace with auto-closed spans failed validation: %v", err)
	}
}

func TestTraceUnmatchedEndDropped(t *testing.T) {
	tr := NewTrace()
	tid := tr.Thread("w")
	tr.End(tid) // no matching Begin: must be ignored
	tr.Begin(tid, "s")
	tr.End(tid)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("validation: %v", err)
	}
}

func TestTraceNameEscaping(t *testing.T) {
	tr := NewTrace()
	tid := tr.Thread(`odd "name"\with escapes`)
	tr.Begin(tid, "span\nwith newline")
	tr.End(tid)
	tr.Count(`counter "q"`, 1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("escaped names broke the trace: %v\n%s", err, buf.String())
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid := tr.Thread("w")
			for j := 0; j < 100; j++ {
				tr.Begin(tid, "work")
				tr.Count("n", int64(j))
				tr.End(tid)
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("concurrent trace failed validation: %v", err)
	}
}

func TestValidateTraceJSONRejectsBad(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"foo": 1}`,
		"missing pid":     `{"traceEvents":[{"tid":1,"ph":"B","ts":1,"name":"x"}]}`,
		"unknown phase":   `{"traceEvents":[{"pid":1,"tid":1,"ph":"Z","ts":1}]}`,
		"missing ts":      `{"traceEvents":[{"pid":1,"tid":1,"ph":"B","name":"x"}]}`,
		"backwards ts":    `{"traceEvents":[{"pid":1,"tid":1,"ph":"B","ts":5,"name":"x"},{"pid":1,"tid":1,"ph":"E","ts":2}]}`,
		"nameless begin":  `{"traceEvents":[{"pid":1,"tid":1,"ph":"B","ts":1}]}`,
		"unmatched end":   `{"traceEvents":[{"pid":1,"tid":1,"ph":"E","ts":1}]}`,
		"unbalanced":      `{"traceEvents":[{"pid":1,"tid":1,"ph":"B","ts":1,"name":"x"}]}`,
		"valueless count": `{"traceEvents":[{"pid":1,"tid":1,"ph":"C","ts":1,"name":"x","args":{}}]}`,
	}
	for label, data := range cases {
		if err := ValidateTraceJSON([]byte(data)); err == nil {
			t.Errorf("%s: validation accepted bad trace %s", label, data)
		}
	}
	good := `{"traceEvents":[{"pid":1,"tid":1,"ph":"B","ts":1,"name":"x"},{"pid":1,"tid":1,"ph":"E","ts":2}]}`
	if err := ValidateTraceJSON([]byte(good)); err != nil {
		t.Errorf("validation rejected good trace: %v", err)
	}
}

func TestTraceCap(t *testing.T) {
	tr := NewTrace()
	tr.events = make([]traceEvent, maxTraceEvents) // simulate a full buffer
	tid := tr.Thread("w")
	tr.Begin(tid, "s")
	tr.Count("k", 1)
	if tr.Len() != maxTraceEvents {
		t.Fatalf("capped trace grew to %d events", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestWriteMicros(t *testing.T) {
	var buf bytes.Buffer
	cases := map[int64]string{
		0:          "0.000",
		999:        "0.999",
		1000:       "1.000",
		1234567:    "1234.567",
		5000000000: "5000000.000",
	}
	for ns, want := range cases {
		buf.Reset()
		bw := bufio.NewWriter(&buf)
		writeMicros(bw, ns)
		bw.Flush()
		if got := buf.String(); got != want {
			t.Errorf("writeMicros(%d) = %q, want %q", ns, got, want)
		}
	}
}
