package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// expvarRegistry is the registry the process-wide expvar export reads.
// expvar.Publish is permanent, so the published Func indirects through this
// pointer. Ownership is first-wins: the first StartDebug claims the export
// for its registry and releases it on Close, so a second server instance
// cannot silently steal the process-wide view (it still serves its own
// /debug/metrics routes from its own registry).
var (
	expvarRegistry atomic.Pointer[Registry]
	publishOnce    sync.Once
)

// DebugServer is the live introspection endpoint: metric snapshots, expvar
// and pprof over HTTP, for watching a long simulation from outside the
// process. It binds 127.0.0.1 unless the caller names an explicit host —
// the handlers expose process internals (heap/goroutine profiles, command
// line), so exposure beyond the local machine must be a deliberate choice.
//
// Routes:
//
//	/debug/metrics         primary registry snapshot as JSON (run-report schema)
//	/debug/metrics/        index of registered named registries
//	/debug/metrics/<name>  a named registry (see Register/Unregister)
//	/debug/vars            expvar (includes the registry under "gatesim")
//	/debug/pprof/          the standard pprof index, profile, trace, symbol
//
// Each DebugServer owns its routes: starting a second server does not
// redirect the first one's /debug/metrics to the new registry. Named
// registries let a multi-tenant process (glsimd) expose per-session metrics
// next to the process registry without clobbering it.
type DebugServer struct {
	srv     *http.Server
	ln      net.Listener
	primary *Registry

	mu        sync.Mutex
	named     map[string]*Registry
	ownExpvar bool
}

// StartDebug listens on addr and serves the introspection routes in a
// background goroutine. An addr without a host (":6060") binds localhost.
// reg may be nil; /debug/metrics then serves an empty report.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	d := &DebugServer{ln: ln, primary: reg, named: make(map[string]*Registry)}
	// Claim the process-wide expvar export only if unclaimed, and remember
	// whether this server is the owner so Close can release it.
	d.ownExpvar = expvarRegistry.CompareAndSwap(nil, reg)
	publishOnce.Do(func() {
		expvar.Publish("gatesim", expvar.Func(func() any {
			return expvarRegistry.Load().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		d.primary.WriteReport(w)
	})
	mux.HandleFunc("/debug/metrics/", d.serveNamed)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln)
	return d, nil
}

// Register exposes reg under /debug/metrics/<name>. Registering a name again
// replaces the previous registry (a restarted session reuses its slot).
func (d *DebugServer) Register(name string, reg *Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.named[name] = reg
}

// Unregister removes a named registry; requests for it then return 404.
func (d *DebugServer) Unregister(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.named, name)
}

func (d *DebugServer) serveNamed(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/debug/metrics/")
	if name == "" {
		d.mu.Lock()
		names := make([]string, 0, len(d.named))
		for n := range d.named {
			names = append(names, n)
		}
		d.mu.Unlock()
		sort.Strings(names)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"registries":[`)
		for i, n := range names {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%q", n)
		}
		fmt.Fprint(w, "]}\n")
		return
	}
	d.mu.Lock()
	reg, ok := d.named[name]
	d.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	reg.WriteReport(w)
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and in-flight handlers, and releases the expvar
// export if this server owned it (a later StartDebug may then claim it).
func (d *DebugServer) Close() error {
	if d.ownExpvar {
		expvarRegistry.CompareAndSwap(d.primary, nil)
	}
	return d.srv.Close()
}
