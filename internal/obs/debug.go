package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
)

// debugRegistry is the registry the process-wide expvar export reads.
// expvar.Publish is permanent, so the published Func indirects through this
// pointer instead of capturing one registry; the latest StartDebug wins.
var (
	debugRegistry atomic.Pointer[Registry]
	publishOnce   sync.Once
)

// DebugServer is the live introspection endpoint: metric snapshots, expvar
// and pprof over HTTP, for watching a long simulation from outside the
// process. It binds 127.0.0.1 unless the caller names an explicit host —
// the handlers expose process internals (heap/goroutine profiles, command
// line), so exposure beyond the local machine must be a deliberate choice.
//
// Routes:
//
//	/debug/metrics  registry snapshot as JSON (the run-report schema)
//	/debug/vars     expvar (includes the registry under "gatesim")
//	/debug/pprof/   the standard pprof index, profile, trace, symbol
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebug listens on addr and serves the introspection routes in a
// background goroutine. An addr without a host (":6060") binds localhost.
// reg may be nil; /debug/metrics then serves an empty report.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	debugRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("gatesim", expvar.Func(func() any {
			return debugRegistry.Load().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		debugRegistry.Load().WriteReport(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{srv: &http.Server{Handler: mux}, ln: ln}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error { return d.srv.Close() }
